(* Whole-suite invariant: pool-debug mode poisons released pool buffers
   and rejects double-release (satellite of the zero-allocation PR). *)
let () = Tt_util.Debug.set_pool_debug true

(* End-to-end smoke tests: the same SPMD programs must run and produce
   identical data on both machines, with plausible relative timing. *)

module Run = Tt_harness.Run
module Machine = Tt_harness.Machine
module Env = Tt_app.Env

let small_params nodes = { Params.default with nodes; cpu_cache_bytes = 4096 }

(* Every proc increments every slot of a shared array once per round;
   proc 0 checks the grand total. *)
let counter_app ~slots ~rounds (base : int ref) (env : Env.t) =
  if env.Env.proc = 0 then base := env.Env.alloc (slots * Env.word);
  env.Env.barrier ();
  for _round = 1 to rounds do
    for s = 0 to slots - 1 do
      let a = !base + (s * Env.word) in
      env.Env.lock s;
      env.Env.write a (env.Env.read a +. 1.0);
      env.Env.unlock s
    done;
    env.Env.barrier ()
  done;
  if env.Env.proc = 0 then begin
    let total = ref 0.0 in
    for s = 0 to slots - 1 do
      total := !total +. env.Env.read (!base + (s * Env.word))
    done;
    let expect = float_of_int (slots * rounds * env.Env.nprocs) in
    if !total <> expect then
      failwith
        (Printf.sprintf "counter mismatch: got %f, want %f" !total expect)
  end

(* Owner-computes stencil: each proc owns a chunk, reads neighbours from
   adjacent procs, iterates. *)
let stencil_app ~cells_per_proc ~iters (base : int ref) (env : Env.t) =
  let n = env.Env.nprocs * cells_per_proc in
  if env.Env.proc = 0 then begin
    base := env.Env.alloc (2 * n * Env.word);
    for i = 0 to n - 1 do
      env.Env.write (!base + (i * Env.word)) (float_of_int i)
    done
  end;
  env.Env.barrier ();
  let addr gen i = !base + (((gen * n) + i) * Env.word) in
  let lo = env.Env.proc * cells_per_proc in
  let hi = lo + cells_per_proc - 1 in
  for it = 0 to iters - 1 do
    let src = it mod 2 and dst = 1 - (it mod 2) in
    for i = lo to hi do
      let left = if i = 0 then n - 1 else i - 1 in
      let right = if i = n - 1 then 0 else i + 1 in
      let v =
        (env.Env.read (addr src left)
        +. env.Env.read (addr src i)
        +. env.Env.read (addr src right))
        /. 3.0
      in
      env.Env.work 5;
      env.Env.write (addr dst i) v
    done;
    env.Env.barrier ()
  done

(* Sequential oracle for the stencil. *)
let stencil_oracle ~n ~iters =
  let a = Array.init n float_of_int and b = Array.make n 0.0 in
  let cur = ref a and nxt = ref b in
  for _ = 1 to iters do
    for i = 0 to n - 1 do
      let left = if i = 0 then n - 1 else i - 1 in
      let right = if i = n - 1 then 0 else i + 1 in
      (!nxt).(i) <- ((!cur).(left) +. (!cur).(i) +. (!cur).(right)) /. 3.0
    done;
    let t = !cur in
    cur := !nxt;
    nxt := t
  done;
  !cur

let machines () =
  [ ("dirnnb", fun p -> Machine.dirnnb p);
    ("stache", fun p -> Machine.typhoon_stache p) ]

let test_counter () =
  List.iter
    (fun (label, make) ->
      let machine = make (small_params 4) in
      let base = ref 0 in
      let r =
        Run.spmd machine ~name:"counter" (counter_app ~slots:16 ~rounds:3 base)
      in
      Alcotest.(check bool)
        (label ^ ": positive cycles")
        true (r.Run.cycles > 0))
    (machines ())

let test_stencil_values () =
  let cells = 32 and iters = 4 and nodes = 4 in
  let oracle = stencil_oracle ~n:(nodes * cells) ~iters in
  List.iter
    (fun (label, make) ->
      let machine = make (small_params nodes) in
      let base = ref 0 in
      let r =
        Run.spmd machine ~name:"stencil"
          (stencil_app ~cells_per_proc:cells ~iters base)
      in
      ignore r;
      (* read back the final generation through node 0's view *)
      let m2 = machine in
      ignore m2;
      let n = nodes * cells in
      let gen = iters mod 2 in
      (* run a tiny checking pass on the same machine *)
      let checker (env : Env.t) =
        if env.Env.proc = 0 then
          for i = 0 to n - 1 do
            let a = !base + (((gen * n) + i) * Env.word) in
            let v = env.Env.read a in
            if abs_float (v -. oracle.(i)) > 1e-9 then
              failwith
                (Printf.sprintf "%s: cell %d = %.12g, oracle %.12g" label i v
                   oracle.(i))
          done
      in
      ignore (Run.spmd machine ~name:"stencil-check" ~check:false checker))
    (machines ())

let test_stache_beats_remote_rereads () =
  (* With a data set larger than the CPU cache, Stache should win (Figure 3's
     headline): capacity misses are satisfied locally. *)
  let nodes = 4 in
  let p = { Params.default with nodes; cpu_cache_bytes = 4096 } in
  (* all data homed on node 0; all procs stream over it repeatedly *)
  let streaming (base : int ref) (env : Env.t) =
    let words = 4096 in
    if env.Env.proc = 0 then base := env.Env.alloc ~home:0 (words * Env.word);
    env.Env.barrier ();
    (* write once from the home to initialize *)
    if env.Env.proc = 0 then
      for i = 0 to words - 1 do
        env.Env.write (!base + (i * Env.word)) 1.0
      done;
    env.Env.barrier ();
    let acc = ref 0.0 in
    for _pass = 1 to 3 do
      for i = 0 to words - 1 do
        acc := !acc +. env.Env.read (!base + (i * Env.word))
      done
    done;
    ignore !acc
  in
  let run make =
    let machine = make p in
    let base = ref 0 in
    (Run.spmd machine ~name:"streaming" (streaming base)).Run.cycles
  in
  let dir_cycles = run Machine.dirnnb in
  let stache_cycles = run (fun p -> Machine.typhoon_stache p) in
  Alcotest.(check bool)
    (Printf.sprintf "stache (%d) < dirnnb (%d) on capacity-miss streaming"
       stache_cycles dir_cycles)
    true
    (stache_cycles < dir_cycles)

let () =
  Alcotest.run "smoke"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "shared counter on both machines" `Quick
            test_counter;
          Alcotest.test_case "stencil matches sequential oracle" `Quick
            test_stencil_values;
          Alcotest.test_case "stache wins when working set exceeds cache"
            `Quick test_stache_beats_remote_rereads;
        ] );
    ]
