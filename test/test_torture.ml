(* Whole-suite invariant: pool-debug mode poisons released pool buffers
   and rejects double-release (satellite of the zero-allocation PR). *)
let () = Tt_util.Debug.set_pool_debug true

(* Tier-1 tests for the consistency torture subsystem: the SC outcome
   oracle, a small deterministic litmus grid over both machines, schedule
   perturbation, trace record/replay, the sabotage-driven shrink pipeline,
   and artifact round-trips. *)

module Engine = Tt_sim.Engine
module Faults = Tt_net.Faults
module Faultsweep = Tt_harness.Faultsweep
module Stache = Tt_stache.Stache
module L = Tt_torture.Litmus
module Trace = Tt_torture.Trace
module Shrink = Tt_torture.Shrink
module T = Tt_torture.Torture

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let case ?(litmus = "SB") ?(machine = "stache") ?(drop = 0.0)
    ?(fault_seed = 1) ?(perturb_rate = 0.0) ?(perturb_seed = 0) ?(iters = 2)
    ?(sabotage = false) () =
  { T.litmus; machine; drop; fault_seed; perturb_rate; perturb_seed; iters;
    sabotage }

(* ---------------- SC oracle ---------------- *)

let test_oracle_sb () =
  let chk regs want =
    check_bool
      (Printf.sprintf "SB %d/%d" regs.(0) regs.(1))
      want
      (L.check L.sb ~regs ~locs:[| 1; 1 |])
  in
  chk [| 0; 0 |] false (* the litmus outcome SC forbids *);
  chk [| 1; 0 |] true;
  chk [| 0; 1 |] true;
  chk [| 1; 1 |] true;
  check_int "SB allowed set" 3 (L.allowed_count L.sb)

let test_oracle_mp () =
  (* flag observed (r0=1) but payload stale (r1=0) is the forbidden pair *)
  check_bool "MP 1/0 forbidden" false
    (L.check L.mp ~regs:[| 1; 0 |] ~locs:[| 1; 1 |]);
  check_bool "MP 1/1 allowed" true
    (L.check L.mp ~regs:[| 1; 1 |] ~locs:[| 1; 1 |]);
  check_bool "MP 0/0 allowed" true
    (L.check L.mp ~regs:[| 0; 0 |] ~locs:[| 1; 1 |]);
  check_int "MP allowed set" 3 (L.allowed_count L.mp)

let test_oracle_lb () =
  check_bool "LB 1/1 forbidden" false
    (L.check L.lb ~regs:[| 1; 1 |] ~locs:[| 1; 1 |]);
  check_bool "LB 0/0 allowed" true
    (L.check L.lb ~regs:[| 0; 0 |] ~locs:[| 1; 1 |])

let test_oracle_coherence () =
  (* CoRR: reading the new value then the old one runs time backwards *)
  check_bool "CoRR 1/0 forbidden" false
    (L.check L.corr ~regs:[| 1; 0 |] ~locs:[| 1 |]);
  check_bool "CoRR 0/1 allowed" true
    (L.check L.corr ~regs:[| 0; 1 |] ~locs:[| 1 |]);
  (* CoWW: the overwritten 1 can never be the final value *)
  check_bool "CoWW final 2 allowed" true
    (L.check L.coww ~regs:[||] ~locs:[| 2 |]);
  check_bool "CoWW final 3 allowed" true
    (L.check L.coww ~regs:[||] ~locs:[| 3 |]);
  check_bool "CoWW final 1 forbidden" false
    (L.check L.coww ~regs:[||] ~locs:[| 1 |]);
  check_int "CoWW allowed set" 2 (L.allowed_count L.coww)

let test_oracle_iriw () =
  (* the two readers disagreeing on the write order *)
  check_bool "IRIW split order forbidden" false
    (L.check L.iriw ~regs:[| 1; 0; 1; 0 |] ~locs:[| 1; 1 |]);
  check_bool "IRIW agreed order allowed" true
    (L.check L.iriw ~regs:[| 1; 0; 0; 1 |] ~locs:[| 1; 1 |]);
  check_bool "IRIW all-new allowed" true
    (L.check L.iriw ~regs:[| 1; 1; 1; 1 |] ~locs:[| 1; 1 |])

let test_oracle_lock () =
  (* regs are the pre-increment counter reads: any permutation of 0..3 with
     final count 4 is a serializable lock order; a lost update is not *)
  check_bool "LOCK permutation allowed" true
    (L.check L.lock_atomic ~regs:[| 0; 1; 2; 3 |] ~locs:[| 4 |]);
  check_bool "LOCK shuffled permutation allowed" true
    (L.check L.lock_atomic ~regs:[| 3; 0; 2; 1 |] ~locs:[| 4 |]);
  check_bool "LOCK lost update forbidden" false
    (L.check L.lock_atomic ~regs:[| 0; 0; 1; 2 |] ~locs:[| 3 |]);
  check_int "LOCK allowed set = 4!" 24 (L.allowed_count L.lock_atomic)

(* ---------------- engine tie-break perturbation ---------------- *)

let order_with_salts salts =
  let e = Engine.create () in
  (match salts with
  | None -> ()
  | Some arr -> Engine.set_tiebreak e (Some (fun site -> arr.(site))));
  let log = ref [] in
  let ev tag = Engine.at e 10 (fun () -> log := tag :: !log) in
  List.iter ev [ 0; 1; 2; 3 ];
  Engine.run e;
  List.rev !log

let test_engine_salt_order () =
  check_bool "no perturber: FIFO" true
    (order_with_salts None = [ 0; 1; 2; 3 ]);
  check_bool "all-zero salts reproduce FIFO" true
    (order_with_salts (Some [| 0; 0; 0; 0 |]) = [ 0; 1; 2; 3 ]);
  (* lower salt runs first; FIFO only among equal salts *)
  check_bool "salts reorder a same-time tie" true
    (order_with_salts (Some [| 3; 1; 0; 2 |]) = [ 2; 1; 3; 0 ])

let test_engine_salt_never_crosses_timestamps () =
  let e = Engine.create () in
  Engine.set_tiebreak e (Some (fun site -> if site = 0 then 255 else 0));
  let log = ref [] in
  Engine.at e 5 (fun () -> log := `Early :: !log);
  Engine.at e 10 (fun () -> log := `Late :: !log);
  Engine.run e;
  check_bool "max salt still respects time order" true
    (!log = [ `Late; `Early ]);
  check_int "every decision drew a salt" 2 (Engine.tiebreak_sites e)

(* ---------------- grid ---------------- *)

let test_grid_perfect_passes () =
  let cases =
    T.grid ~litmus:[ "SB"; "MP"; "LOCK" ] ~machines:T.machines ~drops:[ 0.0 ]
      ~seeds:[ 1; 2 ] ~iters:2 ~perturb_rate:0.0 ~sabotage:false ()
  in
  check_int "grid size" 12 (List.length cases);
  let results = T.run_grid cases in
  check_int "no violations" 0 (List.length (T.failures results));
  List.iter
    (fun (_, r) -> check_bool "cycles advanced" true (r.T.cycles > 0))
    results

let test_grid_faulty_perturbed_passes () =
  (* drop/dup/reorder plus schedule perturbation: SC must still hold, and
     the knobs must demonstrably be exercised *)
  let cases =
    T.grid ~litmus:[ "MP"; "CoRR" ] ~machines:T.machines ~drops:[ 0.1 ]
      ~seeds:[ 1; 2 ] ~iters:2 ~perturb_rate:0.5 ~sabotage:false ()
  in
  let results = T.run_grid cases in
  check_int "no violations" 0 (List.length (T.failures results));
  check_bool "faults were injected" true
    (List.exists (fun (_, r) -> Trace.n_decisions r.T.trace > 0) results);
  check_bool "schedules were perturbed" true
    (List.exists (fun (_, r) -> Trace.n_salts r.T.trace > 0) results)

(* ---------------- determinism and replay ---------------- *)

let test_run_deterministic () =
  let c =
    case ~litmus:"LOCK" ~drop:0.08 ~fault_seed:5 ~perturb_rate:0.4
      ~perturb_seed:99 ~iters:3 ()
  in
  let a = T.run c and b = T.run c in
  check_bool "same case, same outcome" true (a.T.outcome = b.T.outcome);
  check_int "same cycles" a.T.cycles b.T.cycles;
  check_int "same perturb sites" a.T.perturb_sites b.T.perturb_sites;
  check_int "same fault sites" a.T.fault_sites b.T.fault_sites;
  check_bool "same journal" true
    (Trace.to_lines a.T.trace = Trace.to_lines b.T.trace)

let test_replay_reproduces () =
  let c =
    case ~litmus:"MP" ~machine:"dirnnb" ~drop:0.1 ~fault_seed:3
      ~perturb_rate:0.4 ~perturb_seed:17 ~iters:3 ()
  in
  let a = T.run c in
  check_bool "recorded something to replay" true
    (Trace.n_salts a.T.trace + Trace.n_decisions a.T.trace > 0);
  let b = T.run ~mode:(T.Replay a.T.trace) c in
  check_bool "replay outcome matches" true (a.T.outcome = b.T.outcome);
  check_int "replay cycles bit-identical" a.T.cycles b.T.cycles;
  check_bool "replay journal identical" true
    (Trace.to_lines a.T.trace = Trace.to_lines b.T.trace)

let test_masked_full_keep_is_generate () =
  let c = case ~litmus:"SB" ~drop:0.1 ~perturb_rate:0.3 ~perturb_seed:4 () in
  let a = T.run c in
  let m =
    T.run
      ~mode:
        (T.Masked
           { perturb_keep = Trace.salt_sites a.T.trace;
             fault_keep = Trace.fault_sites a.T.trace })
      c
  in
  check_int "masked full-keep cycles" a.T.cycles m.T.cycles;
  check_bool "masked full-keep journal" true
    (Trace.to_lines a.T.trace = Trace.to_lines m.T.trace)

(* ---------------- ddmin ---------------- *)

let test_ddmin_finds_minimal_pair () =
  let probes = ref 0 in
  let test kept =
    incr probes;
    List.mem 3 kept && List.mem 7 kept
  in
  let r = Shrink.ddmin ~test (List.init 10 (fun i -> i)) in
  check_bool "exact minimal pair" true (List.sort compare r = [ 3; 7 ])

let test_ddmin_empty_and_irreducible () =
  check_bool "vacuous failure shrinks to nothing" true
    (Shrink.ddmin ~test:(fun _ -> true) [ 1; 2; 3 ] = []);
  check_bool "non-reproducing input returned unchanged" true
    (Shrink.ddmin ~test:(fun _ -> false) [ 1; 2; 3 ] = [ 1; 2; 3 ])

(* ---------------- sabotage: catch, shrink, replay ---------------- *)

let test_sabotage_caught_and_shrunk () =
  (* break Stache's invalidation handler for this case only: the grid must
     flag it, the shrinker must minimize it, and the written artifact must
     replay to the same violation kind *)
  let c =
    case ~litmus:"SB" ~drop:0.05 ~fault_seed:2 ~perturb_rate:0.25
      ~perturb_seed:11 ~iters:3 ~sabotage:true ()
  in
  let r = T.run c in
  (match r.T.outcome with
  | T.Pass -> Alcotest.fail "sabotaged run must violate SC"
  | T.Fail v ->
      check_bool "kind is observable" true
        (v.T.kind = T.Stale || v.T.kind = T.Sc));
  check_bool "sabotage global restored" true (not (Stache.sabotage_enabled ()));
  match T.shrink c with
  | Error m -> Alcotest.fail ("shrink failed: " ^ m)
  | Ok s ->
      check_bool "iters minimized" true
        (s.T.s_case.T.iters <= c.T.iters);
      check_bool "fault sites not grown" true
        (s.T.s_fault_after <= s.T.s_fault_before);
      check_bool "perturb sites not grown" true
        (s.T.s_perturb_after <= s.T.s_perturb_before);
      let file = Filename.temp_file "tt-torture" ".txt" in
      Fun.protect
        ~finally:(fun () -> Sys.remove file)
        (fun () ->
          T.write_artifact file s;
          let c', trace', kind' = T.read_artifact file in
          check_bool "artifact round-trips the case" true (c' = s.T.s_case);
          check_bool "artifact round-trips the kind" true
            (kind' = s.T.s_violation.T.kind);
          check_bool "artifact round-trips the journal" true
            (Trace.to_lines trace' = Trace.to_lines s.T.s_trace);
          let _, expected, res = T.replay file in
          match res.T.outcome with
          | T.Pass -> Alcotest.fail "replayed artifact must reproduce"
          | T.Fail v ->
              check_bool "replay reproduces the violation kind" true
                (v.T.kind = expected))

(* ---------------- per-vnet fault config (Faultsweep.config_of) -------- *)

let test_config_of_per_vnet () =
  let close a b = Float.abs (a -. b) < 1e-9 in
  let cfg = Faultsweep.config_of ~drop:0.08 ~seed:7 () in
  check_bool "symmetric drop" true
    (close cfg.Faults.request.Faults.drop 0.08
    && close cfg.Faults.response.Faults.drop 0.08);
  check_bool "dup = drop/4" true (close cfg.Faults.request.Faults.dup 0.02);
  check_bool "reorder = drop/2" true
    (close cfg.Faults.request.Faults.reorder 0.04);
  let cfg =
    Faultsweep.config_of ~request_drop:0.2 ~response_drop:0.0 ~drop:0.08
      ~seed:7 ()
  in
  check_bool "request override" true
    (close cfg.Faults.request.Faults.drop 0.2
    && close cfg.Faults.request.Faults.dup 0.05
    && close cfg.Faults.request.Faults.reorder 0.1);
  check_bool "response override" true
    (close cfg.Faults.response.Faults.drop 0.0
    && close cfg.Faults.response.Faults.dup 0.0
    && close cfg.Faults.response.Faults.reorder 0.0)

let () =
  Alcotest.run "torture"
    [
      ( "oracle",
        [
          Alcotest.test_case "SB" `Quick test_oracle_sb;
          Alcotest.test_case "MP" `Quick test_oracle_mp;
          Alcotest.test_case "LB" `Quick test_oracle_lb;
          Alcotest.test_case "CoRR/CoWW" `Quick test_oracle_coherence;
          Alcotest.test_case "IRIW" `Quick test_oracle_iriw;
          Alcotest.test_case "LOCK" `Quick test_oracle_lock;
        ] );
      ( "perturb",
        [
          Alcotest.test_case "salt order" `Quick test_engine_salt_order;
          Alcotest.test_case "salts never cross timestamps" `Quick
            test_engine_salt_never_crosses_timestamps;
        ] );
      ( "grid",
        [
          Alcotest.test_case "perfect transport passes" `Slow
            test_grid_perfect_passes;
          Alcotest.test_case "faulty + perturbed passes" `Slow
            test_grid_faulty_perturbed_passes;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same case reproduces exactly" `Quick
            test_run_deterministic;
          Alcotest.test_case "journal replay is bit-identical" `Quick
            test_replay_reproduces;
          Alcotest.test_case "masked full keep = generate" `Quick
            test_masked_full_keep_is_generate;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "ddmin minimal pair" `Quick
            test_ddmin_finds_minimal_pair;
          Alcotest.test_case "ddmin edge cases" `Quick
            test_ddmin_empty_and_irreducible;
          Alcotest.test_case "sabotage caught, shrunk, replayed" `Slow
            test_sabotage_caught_and_shrunk;
        ] );
      ( "sweep-config",
        [
          Alcotest.test_case "per-vnet rates" `Quick test_config_of_per_vnet;
        ] );
    ]
