(* Whole-suite invariant: pool-debug mode poisons released pool buffers
   and rejects double-release (satellite of the zero-allocation PR). *)
let () = Tt_util.Debug.set_pool_debug true

(* Unit and property tests for tt_util: PRNG, heap, vector, bit set,
   statistics, table formatting. *)

module Prng = Tt_util.Prng
module Heap = Tt_util.Heap
module Intheap = Tt_util.Intheap
module Calqueue = Tt_util.Calqueue
module Vec = Tt_util.Vec
module Bitset = Tt_util.Bitset
module Stats = Tt_util.Stats
module Tablefmt = Tt_util.Tablefmt

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ---------------- PRNG ---------------- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:123 and b = Prng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  check_bool "different seeds diverge" false
    (Prng.next_int64 a = Prng.next_int64 b)

let test_prng_int_bounds () =
  let t = Prng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let v = Prng.int t 13 in
    check_bool "in [0,13)" true (v >= 0 && v < 13)
  done

let test_prng_int_covers_range () =
  let t = Prng.create ~seed:11 in
  let seen = Array.make 8 false in
  for _ = 1 to 1000 do
    seen.(Prng.int t 8) <- true
  done;
  Array.iteri (fun i s -> check_bool (Printf.sprintf "value %d seen" i) true s) seen

let test_prng_int_in () =
  let t = Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Prng.int_in t ~lo:(-3) ~hi:4 in
    check_bool "in [-3,4]" true (v >= -3 && v <= 4)
  done

let test_prng_float_bounds () =
  let t = Prng.create ~seed:9 in
  for _ = 1 to 1000 do
    let v = Prng.float t 2.5 in
    check_bool "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_prng_chance_extremes () =
  let t = Prng.create ~seed:3 in
  for _ = 1 to 100 do
    check_bool "p=0 never" false (Prng.chance t 0.0)
  done;
  for _ = 1 to 100 do
    check_bool "p=1 always" true (Prng.chance t 1.0)
  done

let test_prng_shuffle_is_permutation () =
  let t = Prng.create ~seed:21 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_prng_split_independent () =
  let parent = Prng.create ~seed:77 in
  let child = Prng.split parent in
  check_bool "child differs from parent" false
    (Prng.next_int64 child = Prng.next_int64 parent)

let test_prng_copy () =
  let a = Prng.create ~seed:13 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.next_int64 a)
    (Prng.next_int64 b)

let prop_prng_nonnegative =
  QCheck.Test.make ~name:"prng int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let t = Prng.create ~seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Prng.int t bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

(* ---------------- Heap ---------------- *)

let test_heap_basic () =
  let h = Heap.create ~cmp:compare () in
  check_bool "empty" true (Heap.is_empty h);
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2 ];
  check_int "length" 6 (Heap.length h);
  check_int "peek is min" 1 (Option.get (Heap.peek h));
  check_int "pop order 1" 1 (Heap.pop_exn h);
  check_int "pop order 2" 2 (Heap.pop_exn h);
  Heap.push h 0;
  check_int "new min" 0 (Heap.pop_exn h)

let test_heap_pop_empty () =
  let h = Heap.create ~cmp:compare () in
  Alcotest.(check (option int)) "pop on empty" None (Heap.pop h);
  Alcotest.check_raises "pop_exn on empty"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let test_heap_to_sorted_list () =
  let h = Heap.create ~cmp:compare () in
  List.iter (Heap.push h) [ 4; 1; 3; 2 ];
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4 ] (Heap.to_sorted_list h);
  check_int "non-destructive" 4 (Heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:500
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare () in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

let prop_heap_interleaved =
  QCheck.Test.make ~name:"heap min is correct under interleaved push/pop"
    ~count:200
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let h = Heap.create ~cmp:compare () in
      let model = ref [] in
      List.for_all
        (fun (is_push, v) ->
          if is_push then begin
            Heap.push h v;
            model := List.sort compare (v :: !model);
            true
          end
          else
            match Heap.pop h, !model with
            | None, [] -> true
            | Some x, m :: rest ->
                model := rest;
                x = m
            | Some _, [] | None, _ :: _ -> false)
        ops)

let test_heap_capacity () =
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Heap.create: capacity must be positive") (fun () ->
      ignore (Heap.create ~capacity:0 ~cmp:compare ()));
  (* a tiny initial capacity still grows correctly *)
  let h = Heap.create ~capacity:2 ~cmp:compare () in
  for i = 9 downto 0 do
    Heap.push h i
  done;
  Alcotest.(check (list int)) "order preserved across growth"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (Heap.to_sorted_list h)

(* ---------------- Intheap ---------------- *)

let test_intheap_basic () =
  let h = Intheap.create ~dummy:"" () in
  check_bool "empty" true (Intheap.is_empty h);
  List.iter (fun k -> Intheap.push h k (string_of_int k)) [ 5; 3; 8; 1 ];
  check_int "length" 4 (Intheap.length h);
  check_int "min_key" 1 (Intheap.min_key h);
  Alcotest.(check string) "pop payload of min" "1" (Intheap.pop_exn h);
  Alcotest.(check string) "next" "3" (Intheap.pop_exn h);
  Intheap.push h 0 "0";
  Alcotest.(check string) "new min" "0" (Intheap.pop_exn h);
  Intheap.clear h;
  check_bool "cleared" true (Intheap.is_empty h);
  Alcotest.check_raises "min_key on empty"
    (Invalid_argument "Intheap.min_key: empty heap") (fun () ->
      ignore (Intheap.min_key h));
  Alcotest.check_raises "pop_exn on empty"
    (Invalid_argument "Intheap.pop_exn: empty heap") (fun () ->
      ignore (Intheap.pop_exn h))

let prop_intheap_sorts =
  QCheck.Test.make ~name:"intheap pops keys in sorted order, keyed payloads"
    ~count:500
    QCheck.(list int)
    (fun keys ->
      let h = Intheap.create ~capacity:1 ~dummy:min_int () in
      List.iter (fun k -> Intheap.push h k k) keys;
      let rec drain acc =
        if Intheap.is_empty h then List.rev acc
        else begin
          let k = Intheap.min_key h in
          let v = Intheap.pop_exn h in
          drain ((k, v) :: acc)
        end
      in
      let got = drain [] in
      List.map fst got = List.sort compare keys
      && List.for_all (fun (k, v) -> k = v) got)

let prop_intheap_matches_heap =
  QCheck.Test.make ~name:"intheap agrees with the generic heap" ~count:300
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let a = Intheap.create ~dummy:0 () in
      let b = Heap.create ~cmp:compare () in
      List.for_all
        (fun (is_push, k) ->
          if is_push then begin
            Intheap.push a k k;
            Heap.push b k;
            true
          end
          else if Intheap.is_empty a then Heap.pop b = None
          else Heap.pop b = Some (Intheap.pop_exn a))
        ops)

(* ---------------- Calqueue ---------------- *)

let test_calqueue_basic () =
  let q = Calqueue.create ~dummy:"" () in
  check_bool "empty" true (Calqueue.is_empty q);
  List.iter (fun k -> Calqueue.push q k (string_of_int k)) [ 5; 3; 8; 1 ];
  check_int "length" 4 (Calqueue.length q);
  check_int "min_key" 1 (Calqueue.min_key q);
  Alcotest.(check string) "pop payload of min" "1" (Calqueue.pop_exn q);
  Alcotest.(check string) "next" "3" (Calqueue.pop_exn q);
  Calqueue.push q 0 "0";
  Alcotest.(check string) "new min" "0" (Calqueue.pop_exn q);
  Calqueue.clear q;
  check_bool "cleared" true (Calqueue.is_empty q);
  Alcotest.check_raises "min_key on empty"
    (Invalid_argument "Calqueue.min_key: empty queue") (fun () ->
      ignore (Calqueue.min_key q));
  Alcotest.check_raises "pop_exn on empty"
    (Invalid_argument "Calqueue.pop_exn: empty queue") (fun () ->
      ignore (Calqueue.pop_exn q));
  Alcotest.check_raises "negative key"
    (Invalid_argument "Calqueue.push: negative key") (fun () ->
      Calqueue.push q (-1) "x")

let test_calqueue_ladder_far_future () =
  (* near-term cluster plus events one "year" out: the far ones ride the
     overflow ladder and still drain in exact key order *)
  let q = Calqueue.create ~capacity:8 ~dummy:(-1) () in
  let keys =
    [ 3; 1_000_000_000_000; 7; 999_999_999_999; 1; 4; 1_000_000_000_001 ]
  in
  List.iter (fun k -> Calqueue.push q k k) keys;
  let rec drain acc =
    if Calqueue.is_empty q then List.rev acc
    else begin
      let k = Calqueue.min_key q in
      let v = Calqueue.pop_exn q in
      check_int "payload matches key" k v;
      drain (k :: acc)
    end
  in
  Alcotest.(check (list int)) "exact key order across the ladder"
    (List.sort compare keys) (drain [])

let test_calqueue_fifo_equal_keys () =
  (* equal keys drain in insertion order (buckets are append-only runs) *)
  let q = Calqueue.create ~dummy:(-1) () in
  for i = 0 to 19 do
    Calqueue.push q 42 i
  done;
  Calqueue.push q 7 100;
  let got = ref [] in
  while not (Calqueue.is_empty q) do
    got := Calqueue.pop_exn q :: !got
  done;
  Alcotest.(check (list int)) "FIFO among equal keys"
    (100 :: List.init 20 (fun i -> i))
    (List.rev !got)

let test_calqueue_fallback_on_duplicate_storm () =
  (* thousands of identical keys: bucket-width estimation degenerates and
     the queue must hand itself over to its private heap, preserving key
     order *)
  let q = Calqueue.create ~dummy:(-1) () in
  for i = 0 to 4095 do
    Calqueue.push q 1000 i
  done;
  check_bool "fell back" true (Calqueue.fell_back q);
  check_int "nothing lost" 4096 (Calqueue.length q);
  let n = ref 0 in
  while not (Calqueue.is_empty q) do
    check_int "all keys intact" 1000 (Calqueue.min_key q);
    ignore (Calqueue.pop_exn q);
    incr n
  done;
  check_int "drained all" 4096 !n

let prop_calqueue_matches_intheap_uniform =
  QCheck.Test.make
    ~name:"calqueue drains the same key order as intheap (uniform keys)"
    ~count:300
    QCheck.(list (pair bool (int_bound 100_000)))
    (fun ops ->
      let q = Calqueue.create ~dummy:0 () in
      let h = Intheap.create ~dummy:0 () in
      List.for_all
        (fun (is_push, k) ->
          if is_push then begin
            Calqueue.push q k k;
            Intheap.push h k k;
            true
          end
          else if Intheap.is_empty h then Calqueue.is_empty q
          else begin
            let mk = Intheap.min_key h in
            ignore (Intheap.pop_exn h);
            (not (Calqueue.is_empty q))
            && Calqueue.min_key q = mk
            && Calqueue.pop_exn q = mk
          end)
        ops
      && Calqueue.length q = Intheap.length h)

let prop_calqueue_matches_intheap_clustered =
  (* engine-like keys: (time lsl 20) lor seq, times clustered near a
     monotonically advancing now with occasional far-future jumps — the
     distribution the calendar queue is built for, including the ladder *)
  QCheck.Test.make
    ~name:"calqueue drains the same key order as intheap (clustered keys)"
    ~count:150
    QCheck.(list (pair (int_bound 300) (int_bound 9)))
    (fun steps ->
      let q = Calqueue.create ~wshift:20 ~dummy:0 () in
      let h = Intheap.create ~dummy:0 () in
      let now = ref 0 and seq = ref 0 and ok = ref true in
      List.iter
        (fun (dt, burst) ->
          (* push a small burst clustered at now+dt, rarely a year out *)
          let time = !now + if dt = 300 then 5_000_000 else dt in
          for _ = 0 to burst do
            let key = (time lsl 20) lor (!seq land 0xFFFFF) in
            incr seq;
            Calqueue.push q key key;
            Intheap.push h key key
          done;
          (* drain roughly half the queue, advancing now *)
          for _ = 0 to burst / 2 do
            if not (Intheap.is_empty h) then begin
              let mk = Intheap.min_key h in
              ignore (Intheap.pop_exn h);
              if Calqueue.is_empty q || Calqueue.pop_exn q <> mk then
                ok := false
              else now := max !now (mk asr 20)
            end
          done)
        steps;
      while not (Intheap.is_empty h) do
        let mk = Intheap.min_key h in
        ignore (Intheap.pop_exn h);
        if Calqueue.is_empty q || Calqueue.pop_exn q <> mk then ok := false
      done;
      !ok && Calqueue.is_empty q)

(* ---------------- Vec ---------------- *)

let test_vec_basic () =
  let v = Vec.create () in
  check_bool "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v (i * 2)
  done;
  check_int "length" 100 (Vec.length v);
  check_int "get" 42 (Vec.get v 21);
  Vec.set v 21 7;
  check_int "set" 7 (Vec.get v 21);
  Alcotest.(check (option int)) "pop" (Some 198) (Vec.pop v);
  check_int "length after pop" 99 (Vec.length v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Vec: index out of bounds") (fun () ->
      ignore (Vec.get v 3))

let test_vec_conversions () =
  let v = Vec.of_list [ 3; 1; 4; 1; 5 ] in
  Alcotest.(check (list int)) "to_list" [ 3; 1; 4; 1; 5 ] (Vec.to_list v);
  Alcotest.(check (array int)) "to_array" [| 3; 1; 4; 1; 5 |] (Vec.to_array v);
  check_int "fold" 14 (Vec.fold_left ( + ) 0 v);
  let seen = ref [] in
  Vec.iteri (fun i x -> seen := (i, x) :: !seen) v;
  check_int "iteri count" 5 (List.length !seen)

let test_vec_truncate () =
  let v = Vec.of_list [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] in
  Vec.truncate v 4;
  Alcotest.(check (list int)) "prefix kept" [ 0; 1; 2; 3 ] (Vec.to_list v);
  (* truncation keeps storage: growing back within the old footprint must
     see fresh pushes, not stale retained elements *)
  Vec.push v 40;
  Alcotest.(check (list int)) "push after truncate" [ 0; 1; 2; 3; 40 ]
    (Vec.to_list v);
  Vec.truncate v 0;
  check_bool "truncate to empty" true (Vec.is_empty v);
  Alcotest.check_raises "truncate beyond length"
    (Invalid_argument "Vec.truncate") (fun () -> Vec.truncate v 1)

let test_vec_reset_reuses_storage () =
  let v = Vec.create () in
  let fill () =
    for i = 0 to 9_999 do
      Vec.push v i
    done
  in
  fill ();
  (* warm a second time so any lazy growth is done before measuring *)
  Vec.reset v;
  fill ();
  Vec.reset v;
  let before = Gc.minor_words () in
  for _ = 1 to 10 do
    fill ();
    Vec.reset v
  done;
  let allocated = Gc.minor_words () -. before in
  check_int "refill count" 0 (Vec.length v);
  (* ints into a retained backing array: repeated fill/drain cycles must
     not allocate (small slack for the Gc sampling itself) *)
  check_bool
    (Printf.sprintf "no allocation across fill/drain cycles (got %.0f words)"
       allocated)
    true (allocated < 256.)

(* ---------------- Bitset ---------------- *)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  check_bool "initially empty" true (Bitset.is_empty b);
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 99;
  check_int "cardinal" 3 (Bitset.cardinal b);
  check_bool "mem 63" true (Bitset.mem b 63);
  Bitset.remove b 63;
  check_bool "removed" false (Bitset.mem b 63);
  Alcotest.(check (list int)) "to_list sorted" [ 0; 99 ] (Bitset.to_list b);
  Bitset.clear b;
  check_bool "cleared" true (Bitset.is_empty b)

let test_bitset_range_check () =
  let b = Bitset.create 8 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Bitset: element out of range") (fun () -> Bitset.add b 8)

let test_bitset_copy_equal () =
  let a = Bitset.create 40 in
  Bitset.add a 5;
  Bitset.add a 35;
  let b = Bitset.copy a in
  check_bool "copies equal" true (Bitset.equal a b);
  Bitset.add b 7;
  check_bool "diverged" false (Bitset.equal a b)

let prop_bitset_model =
  QCheck.Test.make ~name:"bitset agrees with a set model" ~count:300
    QCheck.(list (pair bool (int_range 0 61)))
    (fun ops ->
      let b = Bitset.create 62 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (add, x) ->
          if add then begin
            Bitset.add b x;
            Hashtbl.replace model x ()
          end
          else begin
            Bitset.remove b x;
            Hashtbl.remove model x
          end)
        ops;
      Bitset.cardinal b = Hashtbl.length model
      && List.for_all (fun x -> Hashtbl.mem model x) (Bitset.to_list b))

(* ---------------- Stats ---------------- *)

let test_stats_counters () =
  let s = Stats.create "test" in
  check_int "missing reads 0" 0 (Stats.get s "nope");
  Stats.incr s "a";
  Stats.incr s "a";
  Stats.add s "a" 3;
  check_int "incr+add" 5 (Stats.get s "a")

let test_stats_observe_mean () =
  let s = Stats.create "test" in
  List.iter (Stats.observe s "lat") [ 10; 20; 30 ];
  check_int "count" 3 (Stats.get s "lat.count");
  check_int "sum" 60 (Stats.get s "lat.sum");
  check_int "min" 10 (Stats.get s "lat.min");
  check_int "max" 30 (Stats.get s "lat.max");
  Alcotest.(check (float 0.001)) "mean" 20.0 (Stats.mean s "lat")

let test_stats_merge () =
  let a = Stats.create "a" and b = Stats.create "b" in
  Stats.add a "x" 5;
  Stats.add b "x" 7;
  Stats.set_max a "m" 10;
  Stats.set_max b "m" 4;
  Stats.merge_into ~dst:a b;
  check_int "sums add" 12 (Stats.get a "x");
  check_int "maxima take max" 10 (Stats.get a "m")

let test_stats_set_max () =
  let s = Stats.create "t" in
  Stats.set_max s "peak" 5;
  Stats.set_max s "peak" 3;
  check_int "keeps max" 5 (Stats.get s "peak");
  Stats.set_max s "peak" 9;
  check_int "raises max" 9 (Stats.get s "peak")

let test_stats_reset () =
  let s = Stats.create "t" in
  Stats.add s "x" 3;
  Stats.reset s;
  check_int "cleared" 0 (Stats.get s "x")

let test_stats_interned_counter () =
  let s = Stats.create "t" in
  let c = Stats.counter s "hot" in
  (* an interned-but-never-bumped counter must not show up in reports *)
  check_bool "untouched cell invisible" true
    (List.assoc_opt "hot" (Stats.counters s) = None);
  check_int "string get on untouched" 0 (Stats.get s "hot");
  Stats.Counter.incr c;
  Stats.Counter.add c 4;
  check_int "visible via string get" 5 (Stats.get s "hot");
  check_int "Counter.get" 5 (Stats.Counter.get c);
  check_bool "touched cell listed" true
    (List.assoc_opt "hot" (Stats.counters s) = Some 5);
  Stats.incr s "hot";
  check_int "string incr hits the same cell" 6 (Stats.Counter.get c);
  Stats.reset s;
  check_int "reset zeroes in place" 0 (Stats.Counter.get c);
  Stats.Counter.incr c;
  check_int "interned ref survives reset" 1 (Stats.get s "hot")

let test_stats_untouched_not_merged () =
  let a = Stats.create "a" and b = Stats.create "b" in
  let _quiet = Stats.counter b "quiet" in
  Stats.add b "loud" 2;
  Stats.merge_into ~dst:a b;
  check_bool "untouched counter not merged" true
    (List.assoc_opt "quiet" (Stats.counters a) = None);
  check_int "touched counter merged" 2 (Stats.get a "loud")

(* ---------------- Tablefmt ---------------- *)

let test_tablefmt_render () =
  let t =
    Tablefmt.create ~title:"demo"
      ~columns:[ ("name", Tablefmt.Left); ("value", Tablefmt.Right) ]
  in
  Tablefmt.add_row t [ "alpha"; "1" ];
  Tablefmt.add_separator t;
  Tablefmt.add_row t [ "beta"; "22" ];
  let out = Tablefmt.render t in
  List.iter
    (fun needle ->
      check_bool (Printf.sprintf "contains %S" needle) true (contains out needle))
    [ "demo"; "alpha"; "beta"; "22" ]

let test_tablefmt_arity () =
  let t =
    Tablefmt.create ~title:"x"
      ~columns:[ ("a", Tablefmt.Left); ("b", Tablefmt.Left) ]
  in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Tablefmt.add_row: cell count mismatch") (fun () ->
      Tablefmt.add_row t [ "only-one" ])

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int covers range" `Quick test_prng_int_covers_range;
          Alcotest.test_case "int_in bounds" `Quick test_prng_int_in;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "chance extremes" `Quick test_prng_chance_extremes;
          Alcotest.test_case "shuffle permutes" `Quick
            test_prng_shuffle_is_permutation;
          Alcotest.test_case "split independence" `Quick
            test_prng_split_independent;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          qc prop_prng_nonnegative;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic order" `Quick test_heap_basic;
          Alcotest.test_case "pop empty" `Quick test_heap_pop_empty;
          Alcotest.test_case "to_sorted_list" `Quick test_heap_to_sorted_list;
          Alcotest.test_case "capacity" `Quick test_heap_capacity;
          qc prop_heap_sorts;
          qc prop_heap_interleaved;
        ] );
      ( "intheap",
        [
          Alcotest.test_case "basic" `Quick test_intheap_basic;
          qc prop_intheap_sorts;
          qc prop_intheap_matches_heap;
        ] );
      ( "calqueue",
        [
          Alcotest.test_case "basic" `Quick test_calqueue_basic;
          Alcotest.test_case "ladder far future" `Quick
            test_calqueue_ladder_far_future;
          Alcotest.test_case "FIFO equal keys" `Quick
            test_calqueue_fifo_equal_keys;
          Alcotest.test_case "duplicate-storm fallback" `Quick
            test_calqueue_fallback_on_duplicate_storm;
          qc prop_calqueue_matches_intheap_uniform;
          qc prop_calqueue_matches_intheap_clustered;
        ] );
      ( "vec",
        [
          Alcotest.test_case "basic" `Quick test_vec_basic;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "conversions" `Quick test_vec_conversions;
          Alcotest.test_case "truncate" `Quick test_vec_truncate;
          Alcotest.test_case "reset reuses storage" `Quick
            test_vec_reset_reuses_storage;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "range check" `Quick test_bitset_range_check;
          Alcotest.test_case "copy/equal" `Quick test_bitset_copy_equal;
          qc prop_bitset_model;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counters" `Quick test_stats_counters;
          Alcotest.test_case "observe/mean" `Quick test_stats_observe_mean;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "set_max" `Quick test_stats_set_max;
          Alcotest.test_case "reset" `Quick test_stats_reset;
          Alcotest.test_case "interned counter" `Quick
            test_stats_interned_counter;
          Alcotest.test_case "untouched not merged" `Quick
            test_stats_untouched_not_merged;
        ] );
      ( "tablefmt",
        [
          Alcotest.test_case "render" `Quick test_tablefmt_render;
          Alcotest.test_case "arity" `Quick test_tablefmt_arity;
        ] );
    ]
