(* Whole-suite invariant: pool-debug mode poisons released pool buffers
   and rejects double-release (satellite of the zero-allocation PR). *)
let () = Tt_util.Debug.set_pool_debug true

(* Tests for the set-associative cache model. *)

module Cache = Tt_cache.Cache
module Mbus = Tt_cache.Mbus
module Tag = Tt_mem.Tag
module Prng = Tt_util.Prng

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let mk ?(size = 4096) ?(assoc = 4) () =
  Cache.create ~size_bytes:size ~assoc ~prng:(Prng.create ~seed:99) ()

let test_create_validation () =
  List.iter
    (fun (size, assoc) ->
      try
        ignore (Cache.create ~size_bytes:size ~assoc ~prng:(Prng.create ~seed:1) ());
        Alcotest.fail "bad geometry must raise"
      with Invalid_argument _ -> ())
    [ (0, 4); (100, 4); (4096, 0) ]

let test_geometry () =
  let c = mk () in
  check_int "sets = size/(assoc*32)" 32 (Cache.sets c)

let test_hit_miss_accounting () =
  let c = mk () in
  Alcotest.(check (option reject)) "cold miss" None (Cache.lookup c ~block:5);
  ignore (Cache.insert c ~block:5 ~state:Cache.Shared);
  check_bool "hit after insert" true (Cache.lookup c ~block:5 <> None);
  check_int "hits" 1 (Cache.hits c);
  check_int "misses" 1 (Cache.misses c)

let test_probe_does_not_count () =
  let c = mk () in
  ignore (Cache.probe c ~block:9);
  check_int "probe not counted" 0 (Cache.misses c)

let test_insert_updates_state () =
  let c = mk () in
  ignore (Cache.insert c ~block:5 ~state:Cache.Shared);
  Alcotest.(check bool) "shared" true (Cache.probe c ~block:5 = Some Cache.Shared);
  (* re-inserting an existing block updates state, evicts nothing *)
  Alcotest.(check bool) "no eviction" true
    (Cache.insert c ~block:5 ~state:Cache.Exclusive = None);
  check_bool "now exclusive" true (Cache.probe c ~block:5 = Some Cache.Exclusive)

let test_eviction_only_when_set_full () =
  let c = mk () in
  let nsets = Cache.sets c in
  (* four blocks mapping to set 0: no eviction (4-way) *)
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "way %d free" i)
      true
      (Cache.insert c ~block:(i * nsets) ~state:Cache.Shared = None)
  done;
  (* the fifth must evict one of them *)
  match Cache.insert c ~block:(4 * nsets) ~state:Cache.Shared with
  | Some (victim, Cache.Shared) ->
      check_int "victim from same set" 0 (victim mod nsets);
      check_int "one shared eviction" 1 (Cache.evictions_shared c)
  | Some (_, Cache.Exclusive) -> Alcotest.fail "victim state wrong"
  | None -> Alcotest.fail "expected an eviction"

let test_state_transitions () =
  let c = mk () in
  ignore (Cache.insert c ~block:7 ~state:Cache.Exclusive);
  Cache.downgrade c ~block:7;
  check_bool "downgraded" true (Cache.probe c ~block:7 = Some Cache.Shared);
  Cache.set_state c ~block:7 Cache.Exclusive;
  check_bool "promoted" true (Cache.probe c ~block:7 = Some Cache.Exclusive);
  check_bool "invalidate returns presence" true (Cache.invalidate c ~block:7);
  check_bool "gone" true (Cache.probe c ~block:7 = None);
  check_bool "invalidate absent" false (Cache.invalidate c ~block:7);
  Cache.downgrade c ~block:7 (* no-op on absent *);
  Alcotest.check_raises "set_state absent"
    (Invalid_argument "Cache.set_state: block not cached") (fun () ->
      Cache.set_state c ~block:7 Cache.Shared)

let test_flush_page () =
  let c = mk () in
  let vpage = 3 in
  let first_block = vpage * Tt_mem.Addr.blocks_per_page in
  for i = 0 to 7 do
    ignore (Cache.insert c ~block:(first_block + i) ~state:Cache.Shared)
  done;
  ignore (Cache.insert c ~block:9999 ~state:Cache.Exclusive);
  Cache.flush_page c ~vpage;
  for i = 0 to 7 do
    check_bool "page block flushed" true (Cache.probe c ~block:(first_block + i) = None)
  done;
  check_bool "other block survives" true (Cache.probe c ~block:9999 <> None)

let test_occupancy_iter () =
  let c = mk () in
  for i = 0 to 9 do
    ignore (Cache.insert c ~block:(1000 + i) ~state:Cache.Shared)
  done;
  check_int "occupancy" 10 (Cache.occupancy c);
  let n = ref 0 in
  Cache.iter c (fun _ _ -> incr n);
  check_int "iter agrees" 10 !n

let prop_no_duplicate_tags =
  QCheck.Test.make ~name:"a block occupies at most one line" ~count:100
    QCheck.(list (int_range 0 500))
    (fun blocks ->
      let c = mk ~size:1024 ~assoc:2 () in
      List.iter (fun b -> ignore (Cache.insert c ~block:b ~state:Cache.Shared)) blocks;
      let seen = Hashtbl.create 64 in
      let dup = ref false in
      Cache.iter c (fun b _ ->
          if Hashtbl.mem seen b then dup := true;
          Hashtbl.replace seen b ());
      not !dup)

let prop_capacity_bound =
  QCheck.Test.make ~name:"occupancy never exceeds capacity" ~count:100
    QCheck.(list (int_range 0 2000))
    (fun blocks ->
      let c = mk ~size:1024 ~assoc:2 () in
      List.iter (fun b -> ignore (Cache.insert c ~block:b ~state:Cache.Exclusive)) blocks;
      Cache.occupancy c <= 1024 / 32)

let prop_inserted_blocks_hit =
  QCheck.Test.make ~name:"an inserted block hits until evicted/invalidated"
    ~count:100
    QCheck.(list (int_range 0 100))
    (fun blocks ->
      let c = mk ~size:65536 ~assoc:4 () in
      (* cache big enough that nothing evicts *)
      List.iter (fun b -> ignore (Cache.insert c ~block:b ~state:Cache.Shared)) blocks;
      List.for_all (fun b -> Cache.probe c ~block:b <> None) blocks)

let test_mbus_access_of () =
  check_bool "read is load" true (Mbus.access_of Mbus.Read = Tag.Load);
  check_bool "read-inval is store" true
    (Mbus.access_of Mbus.Read_invalidate = Tag.Store);
  check_bool "invalidate is store" true (Mbus.access_of Mbus.Invalidate = Tag.Store)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "cache"
    [
      ( "cache",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "geometry" `Quick test_geometry;
          Alcotest.test_case "hit/miss accounting" `Quick test_hit_miss_accounting;
          Alcotest.test_case "probe not counted" `Quick test_probe_does_not_count;
          Alcotest.test_case "insert updates state" `Quick test_insert_updates_state;
          Alcotest.test_case "eviction only when full" `Quick
            test_eviction_only_when_set_full;
          Alcotest.test_case "state transitions" `Quick test_state_transitions;
          Alcotest.test_case "flush page" `Quick test_flush_page;
          Alcotest.test_case "occupancy/iter" `Quick test_occupancy_iter;
          qc prop_no_duplicate_tags;
          qc prop_capacity_bound;
          qc prop_inserted_blocks_hit;
        ] );
      ("mbus", [ Alcotest.test_case "access_of" `Quick test_mbus_access_of ]);
    ]
