(* Whole-suite invariant: pool-debug mode poisons released pool buffers
   and rejects double-release (satellite of the zero-allocation PR). *)
let () = Tt_util.Debug.set_pool_debug true

(* Shape assertions for the reproduced experiments (DESIGN.md §3):

   1. when the working set exceeds the CPU cache, Typhoon/Stache beats
      DirNNB (Figure 3's headline);
   2. when the data fits, the two are comparable (the paper's ±30% band,
      with generous slack for scaled-down data sets);
   3. the EM3D update protocol beats both, its advantage grows with the
      fraction of non-local edges and is substantial at 50%. *)

module H = Tt_harness

let nodes = 8

let scale = 0.05

let test_fig3_shape () =
  let rows = H.Fig3.run ~apps:[ "em3d"; "barnes" ] ~scale ~nodes () in
  List.iter
    (fun row ->
      let cell_of label =
        List.find
          (fun (c : H.Fig3.cell) -> c.H.Fig3.config_label = label)
          row.H.Fig3.cells
      in
      let tight = H.Fig3.ratio (cell_of "small/4K") in
      let roomy = H.Fig3.ratio (cell_of "small/256K") in
      Alcotest.(check bool)
        (Printf.sprintf
           "%s: stache gains more (or loses less) with a small cache \
            (4K ratio %.2f vs 256K ratio %.2f)"
           row.H.Fig3.bench tight roomy)
        true (tight <= roomy +. 0.02);
      Alcotest.(check bool)
        (Printf.sprintf "%s: comparable when data fits (ratio %.2f)"
           row.H.Fig3.bench roomy)
        true
        (roomy > 0.5 && roomy < 1.5))
    rows

let test_fig3_all_cells_positive () =
  let rows = H.Fig3.run ~apps:[ "ocean" ] ~scale:0.1 ~nodes () in
  List.iter
    (fun row ->
      Alcotest.(check int) "five configurations" 5 (List.length row.H.Fig3.cells);
      List.iter
        (fun (c : H.Fig3.cell) ->
          Alcotest.(check bool) "cycles positive" true
            (c.H.Fig3.dirnnb_cycles > 0 && c.H.Fig3.stache_cycles > 0))
        row.H.Fig3.cells)
    rows

let test_fig4_shape () =
  (* the per-processor problem must be large enough to amortize the NP's
     serial flush work, so use a moderate scale *)
  let points = H.Fig4.run ~pcts:[ 10; 30; 50 ] ~scale:0.05 ~nodes () in
  List.iter
    (fun (p : H.Fig4.point) ->
      Alcotest.(check bool)
        (Printf.sprintf "update wins at %d%% (upd %.1f dir %.1f sta %.1f)"
           p.H.Fig4.pct_remote p.H.Fig4.update p.H.Fig4.dirnnb p.H.Fig4.stache)
        true
        (p.H.Fig4.update < p.H.Fig4.dirnnb
        && p.H.Fig4.update < p.H.Fig4.stache))
    points;
  let adv pct = H.Fig4.advantage_at points pct in
  Alcotest.(check bool)
    (Printf.sprintf "advantage grows with remote fraction (10%%: %.2f, 50%%: %.2f)"
       (adv 10) (adv 50))
    true
    (adv 50 >= adv 10 -. 0.02);
  Alcotest.(check bool)
    (Printf.sprintf "substantial advantage at 50%% (%.2f, paper ~0.35)" (adv 50))
    true
    (adv 50 > 0.2)

let test_fig4_monotone_cost_in_remoteness () =
  let points = H.Fig4.run ~pcts:[ 0; 25; 50 ] ~scale:0.05 ~nodes () in
  let costs = List.map (fun p -> p.H.Fig4.dirnnb) points in
  match costs with
  | [ a; b; c ] ->
      Alcotest.(check bool) "dirnnb cycles/edge grow with remoteness" true
        (a < b && b < c)
  | _ -> Alcotest.fail "expected three points"

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_tables_render () =
  let t1 = H.Tables.table1 () in
  List.iter
    (fun op -> Alcotest.(check bool) ("table1 has " ^ op) true (contains t1 op))
    [ "read"; "write"; "force-read"; "force-write"; "read-tag"; "set-RW";
      "set-RO"; "invalidate"; "resume" ];
  let t2 = H.Tables.table2 () in
  List.iter
    (fun v -> Alcotest.(check bool) ("table2 has " ^ v) true (contains t2 v))
    [ "29 cycles"; "25 cycles"; "11 cycles"; "32 bytes"; "4 Kbytes" ];
  let t3 = H.Tables.table3 () in
  List.iter
    (fun v -> Alcotest.(check bool) ("table3 has " ^ v) true (contains t3 v))
    [ "12x12x12"; "24x24x24"; "2048 bodies"; "8192 bodies"; "10000 mols";
      "50000 mols"; "98x98 grid"; "386x386 grid"; "64000 nodes";
      "192000 nodes" ]

let test_render_fig3 () =
  let rows = H.Fig3.run ~apps:[ "ocean" ] ~scale:0.1 ~nodes () in
  let out = H.Fig3.render rows in
  Alcotest.(check bool) "mentions ocean" true (contains out "ocean");
  Alcotest.(check bool) "mentions configs" true (contains out "small/4K")

let test_render_fig4 () =
  let points = H.Fig4.run ~pcts:[ 0 ] ~scale:0.02 ~nodes () in
  let out = H.Fig4.render points in
  Alcotest.(check bool) "mentions DirNNB" true (contains out "DirNNB");
  Alcotest.(check bool) "mentions update" true (contains out "Typhoon/Update")

let () =
  Alcotest.run "experiments"
    [
      ( "fig3",
        [
          Alcotest.test_case "shape" `Slow test_fig3_shape;
          Alcotest.test_case "all cells populated" `Slow
            test_fig3_all_cells_positive;
          Alcotest.test_case "render" `Slow test_render_fig3;
        ] );
      ( "fig4",
        [
          Alcotest.test_case "update protocol wins and grows" `Slow
            test_fig4_shape;
          Alcotest.test_case "cost grows with remoteness" `Slow
            test_fig4_monotone_cost_in_remoteness;
          Alcotest.test_case "render" `Slow test_render_fig4;
        ] );
      ("tables", [ Alcotest.test_case "tables render" `Quick test_tables_render ]);
    ]
