(* Whole-suite invariant: pool-debug mode poisons released pool buffers
   and rejects double-release (satellite of the zero-allocation PR). *)
let () = Tt_util.Debug.set_pool_debug true

(* Tests for the EM3D delayed-update protocol. *)

module Engine = Tt_sim.Engine
module Thread = Tt_sim.Thread
module System = Tt_typhoon.System
module Stache = Tt_stache.Stache
module Proto = Tt_custom.Em3d_proto
module Machine = Tt_harness.Machine
module Run = Tt_harness.Run
module Em3d = Tt_app.Em3d
module Addr = Tt_mem.Addr
module Tag = Tt_mem.Tag
module Stats = Tt_util.Stats

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let mk ?(nodes = 4) () =
  let engine = Engine.create () in
  let sys = System.create engine { Params.default with Params.nodes } in
  let st = Stache.install sys () in
  let proto = Proto.install sys st in
  (engine, sys, st, proto)

let run_cpus engine bodies =
  let threads =
    Array.mapi
      (fun i body -> Thread.spawn engine ~name:(Printf.sprintf "cpu%d" i) body)
      bodies
  in
  Engine.run engine;
  Array.iteri
    (fun i th ->
      if not (Thread.finished th) then
        Alcotest.fail (Printf.sprintf "cpu%d did not finish" i))
    threads

(* custom alloc retypes the page and registers it *)
let test_alloc_retypes_page () =
  let engine, sys, _, proto = mk () in
  let va = ref 0 in
  run_cpus engine
    [|
      (fun th ->
        va := Proto.alloc proto ~th ~node:0 ~kind:"e" ~home:1 ~bytes:64 ());
      (fun _ -> ()); (fun _ -> ()); (fun _ -> ());
    |];
  let page =
    Tt_mem.Pagemem.get_page (System.node_mem sys 1) ~vpage:(Addr.page_of !va)
  in
  check_int "custom home mode" Proto.mode_custom_home page.Tt_mem.Pagemem.mode

(* a consumer copy never faults the home on write, and updates flow at the
   flush *)
let test_update_flow () =
  let engine, sys, _, proto = mk () in
  let va = ref 0 in
  run_cpus engine
    [|
      (fun th ->
        va := Proto.alloc proto ~th ~node:0 ~kind:"e" ~home:0 ~bytes:64 ();
        System.cpu_write_f64 sys ~node:0 th !va 1.0;
        Thread.yield th;
        (* give node 1 time to fetch a copy *)
        Thread.advance th 5000;
        Thread.yield th;
        (* rewrite: with the update protocol the home never faults *)
        System.cpu_write_f64 sys ~node:0 th !va 2.0;
        (* push the update *)
        Proto.flush_and_wait proto ~th ~node:0 ~kind:"e");
      (fun th ->
        Thread.advance th 2000;
        Thread.yield th;
        Alcotest.(check (float 0.0)) "initial fetch" 1.0
          (System.cpu_read_f64 sys ~node:1 th !va);
        (* wait for the update of step 1 *)
        Proto.flush_and_wait proto ~th ~node:1 ~kind:"e";
        Alcotest.(check (float 0.0)) "updated in place" 2.0
          (System.cpu_read_f64 sys ~node:1 th !va));
      (fun th -> Proto.flush_and_wait proto ~th ~node:2 ~kind:"e");
      (fun th -> Proto.flush_and_wait proto ~th ~node:3 ~kind:"e");
    |];
  check_int "exactly one update sent" 1
    (Stats.get (Proto.stats proto) "updates_sent");
  check_bool "home tag stays ReadWrite" true
    (Tag.equal Tag.Read_write
       (Tt_mem.Pagemem.get_tag (System.node_mem sys 0) ~vaddr:!va))

let test_write_to_remote_copy_rejected () =
  let engine, sys, _, proto = mk () in
  let va = ref 0 in
  let threads =
    [|
      (fun th ->
        va := Proto.alloc proto ~th ~node:0 ~kind:"e" ~home:0 ~bytes:64 ();
        System.cpu_write_f64 sys ~node:0 th !va 1.0;
        Thread.yield th);
      (fun th ->
        Thread.advance th 2000;
        Thread.yield th;
        ignore (System.cpu_read_f64 sys ~node:1 th !va);
        (* owners-compute violation *)
        System.cpu_write_f64 sys ~node:1 th !va 9.9);
      (fun _ -> ());
      (fun _ -> ());
    |]
    |> Array.mapi (fun i body ->
           Thread.spawn engine ~name:(Printf.sprintf "cpu%d" i) body)
  in
  (try
     Engine.run engine;
     Alcotest.fail "expected a protocol error"
   with
  | Thread.Failure_in (_, Invalid_argument _) | Invalid_argument _ -> ());
  ignore threads

(* Full-application correctness on the update machine, including buffering
   of early updates, across remote fractions. *)
let test_em3d_correct_on_update_machine () =
  List.iter
    (fun pct_remote ->
      let nodes = 8 in
      let cfg =
        { Em3d.total_nodes = 1600; degree = 4; pct_remote; iters = 4;
          seed = 17;
      software_prefetch = false }
      in
      let machine = Machine.typhoon_em3d { Params.default with Params.nodes } in
      let inst = Em3d.make cfg ~nprocs:nodes in
      ignore (Run.spmd machine ~name:"em3d" inst.Em3d.body);
      ignore (Run.spmd machine ~name:"em3d-v" ~check:false inst.Em3d.verify))
    [ 0; 25; 50 ]

(* Steady-state message economy: far fewer messages than Stache on the same
   configuration. *)
let test_update_message_economy () =
  let nodes = 8 in
  let cfg =
    { Em3d.total_nodes = 1600; degree = 4; pct_remote = 40; iters = 4;
      seed = 23;
      software_prefetch = false }
  in
  let messages machine =
    let inst = Em3d.make cfg ~nprocs:nodes in
    let r = Run.spmd machine ~name:"em3d" inst.Em3d.body in
    Stats.get r.Run.run_stats "msgs.request"
    + Stats.get r.Run.run_stats "msgs.response"
  in
  let p = { Params.default with Params.nodes } in
  let stache_msgs = messages (Machine.typhoon_stache p) in
  let update_msgs = messages (Machine.typhoon_em3d p) in
  check_bool
    (Printf.sprintf "update (%d) << stache (%d)" update_msgs stache_msgs)
    true
    (2 * update_msgs < stache_msgs)

let () =
  Alcotest.run "custom"
    [
      ( "em3d-protocol",
        [
          Alcotest.test_case "alloc retypes pages" `Quick test_alloc_retypes_page;
          Alcotest.test_case "update flow" `Quick test_update_flow;
          Alcotest.test_case "owners-compute enforced" `Quick
            test_write_to_remote_copy_rejected;
          Alcotest.test_case "full app correct at 0/25/50% remote" `Slow
            test_em3d_correct_on_update_machine;
          Alcotest.test_case "message economy vs stache" `Slow
            test_update_message_economy;
        ] );
    ]
