(* Whole-suite invariant: pool-debug mode poisons released pool buffers
   and rejects double-release (satellite of the zero-allocation PR). *)
let () = Tt_util.Debug.set_pool_debug true

(* Tests for the harness layer: the machine facade, the SPMD runner, and
   regression tests for subtle simulator timing semantics. *)

module Machine = Tt_harness.Machine
module Run = Tt_harness.Run
module Env = Tt_app.Env
module Engine = Tt_sim.Engine
module Thread = Tt_sim.Thread
module Np = Tt_typhoon.Np
module System = Tt_typhoon.System

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let params nodes = { Params.default with Params.nodes }

let test_spmd_reports_cycles_per_proc () =
  let machine = Machine.dirnnb (params 4) in
  let r =
    Run.spmd machine ~name:"unbalanced" (fun env ->
        env.Env.work (100 * (env.Env.proc + 1)))
  in
  check_int "four procs" 4 (Array.length r.Run.proc_cycles);
  check_int "cycles is the max" 400 r.Run.cycles;
  check_int "proc 0 clock" 100 r.Run.proc_cycles.(0);
  Alcotest.(check string) "label" "dirnnb" r.Run.machine_label

let test_spmd_detects_stuck_thread () =
  let machine = Machine.dirnnb (params 2) in
  try
    ignore
      (Run.spmd machine ~name:"deadlock" (fun env ->
           (* proc 0 never reaches the barrier *)
           if env.Env.proc <> 0 then env.Env.barrier ()));
    Alcotest.fail "expected Stuck"
  with Run.Stuck msg ->
    check_bool "names the blocked processor" true
      (String.length msg > 0)

let test_hooks_default_to_noop () =
  let machine = Machine.dirnnb (params 2) in
  let r =
    Run.spmd machine ~name:"hooks" (fun env ->
        check_bool "hook absent" false (env.Env.has_hook "em3d.sync:e");
        env.Env.hook "em3d.sync:e" (* must be a silent no-op *))
  in
  ignore r

let test_update_machine_exposes_hooks () =
  let machine = Machine.typhoon_em3d (params 2) in
  ignore
    (Run.spmd machine ~name:"hooks" (fun env ->
         check_bool "sync:e" true (env.Env.has_hook "em3d.sync:e");
         check_bool "sync:h" true (env.Env.has_hook "em3d.sync:h")))

let test_alloc_kind_falls_back () =
  let machine = Machine.dirnnb (params 2) in
  ignore
    (Run.spmd machine ~name:"alloc" (fun env ->
         if env.Env.proc = 0 then begin
           let a = env.Env.alloc_kind "em3d:e" 64 in
           check_bool "fallback returns an address" true (a > 0);
           env.Env.write a 1.5;
           Alcotest.(check (float 0.0)) "usable" 1.5 (env.Env.read a)
         end))

let test_prefetch_is_noop_on_dirnnb () =
  let machine = Machine.dirnnb (params 2) in
  ignore
    (Run.spmd machine ~name:"pf" (fun env ->
         if env.Env.proc = 0 then begin
           let a = env.Env.alloc 64 in
           env.Env.prefetch a (* must not raise or deadlock *);
           env.Env.write a 1.0
         end))

let test_machines_share_alloc_layout () =
  (* the same allocation sequence must give identical addresses and homes on
     both machines — Figure 3 depends on identical data placement *)
  let trace make =
    let machine : Machine.t = make (params 4) in
    let out = ref [] in
    ignore
      (Run.spmd machine ~name:"layout" (fun env ->
           if env.Env.proc = 0 then begin
             out := [ env.Env.alloc 100; env.Env.alloc ~home:2 5000;
                      env.Env.alloc 64 ]
           end));
    !out
  in
  Alcotest.(check (list int))
    "identical layout" (trace Machine.dirnnb)
    (trace (fun p -> Machine.typhoon_stache p))

(* Regression: a block fault raised by a thread running ahead of global
   time must not be serviced before the thread's own clock — the NP work
   queue respects ready times. *)
let test_np_respects_fault_ready_time () =
  let engine = Engine.create () in
  let sys = System.create engine (params 2) in
  let handled_at = ref (-1) in
  Tempest.Handlers.set_block_fault (System.handlers sys) ~mode:0
    (fun ep fault ->
      handled_at := Np.clock (System.node_np sys 0);
      ep.Tempest.set_rw ~vaddr:fault.Tempest.fault_vaddr;
      ep.Tempest.resume fault.Tempest.fault_resumption);
  let page = 0x4000 in
  let va = page * Tt_mem.Addr.page_size in
  let ep = System.endpoint sys 0 in
  ep.Tempest.map_page ~vpage:page ~home:0 ~mode:0
    ~init_tag:Tt_mem.Tag.Invalid;
  let _th =
    Thread.spawn engine ~quantum:1_000_000 ~name:"runahead" (fun th ->
        (* run far ahead of global time without yielding, then fault *)
        Thread.advance th 5000;
        ignore (System.cpu_read_f64 sys ~node:0 th va))
  in
  Engine.run engine;
  check_bool
    (Printf.sprintf "handler ran at NP clock %d >= fault time 5000"
       !handled_at)
    true (!handled_at >= 5000)

(* Regression: deferred (bulk) work must not starve when queued behind
   in-flight messages with future ready times. *)
let test_np_wait_then_run () =
  let engine = Engine.create () in
  let sys = System.create engine (params 2) in
  let order = ref [] in
  let h =
    Tempest.Handlers.register_message (System.handlers sys) ~name:"mark"
      (fun _ ~src:_ ~args ~data:_ -> order := args.(0) :: !order)
  in
  let ep = System.endpoint sys 0 in
  (* two self-sends: both arrive at t+1 and execute in order *)
  ep.Tempest.send ~dst:0 ~vnet:Tt_net.Message.Request ~handler:h
    ~args:[| 1 |] ();
  ep.Tempest.send ~dst:0 ~vnet:Tt_net.Message.Request ~handler:h
    ~args:[| 2 |] ();
  Engine.run engine;
  Alcotest.(check (list int)) "both ran in order" [ 1; 2 ] (List.rev !order)

(* Stress: coherence fuzz with aggressive page replacement (2-page stache)
   — exercises writeback-on-replacement against the oracle. *)
let test_fuzz_with_page_replacement () =
  let nodes = 4 in
  let words_per_page = Tt_mem.Addr.page_size / 8 in
  let pages = 5 in
  List.iter
    (fun seed ->
      let machine =
        Machine.typhoon_stache ~max_stache_pages:2
          { Params.default with Params.nodes; seed }
      in
      let bases = Array.make pages 0 in
      let expect = Array.make_matrix pages 4 0.0 in
      let r =
        Run.spmd machine ~name:"replacement-fuzz" (fun env ->
            if env.Env.proc = 0 then
              for pg = 0 to pages - 1 do
                bases.(pg) <-
                  env.Env.alloc ~home:0 (words_per_page * Env.word)
              done;
            env.Env.barrier ();
            let prng = Tt_util.Prng.create ~seed:(seed + env.Env.proc) in
            (* every proc sweeps pages in different orders, writing to its
               private slot of the first block of each page *)
            for _round = 1 to 6 do
              let pg = Tt_util.Prng.int prng pages in
              let a = bases.(pg) + (env.Env.proc * Env.word) in
              env.Env.write a (env.Env.read a +. 1.0);
              if env.Env.proc = 0 then
                expect.(pg).(0) <- expect.(pg).(0)
            done;
            env.Env.barrier ())
      in
      ignore r;
      (* replay: per-proc increments are private slots, so final value =
         number of times that proc picked that page *)
      let counts = Array.make_matrix pages nodes 0 in
      for proc = 0 to nodes - 1 do
        let prng = Tt_util.Prng.create ~seed:(seed + proc) in
        for _round = 1 to 6 do
          let pg = Tt_util.Prng.int prng pages in
          counts.(pg).(proc) <- counts.(pg).(proc) + 1
        done
      done;
      ignore
        (Run.spmd machine ~name:"replacement-check" ~check:false (fun env ->
             if env.Env.proc = 0 then
               for pg = 0 to pages - 1 do
                 for proc = 0 to nodes - 1 do
                   let a = bases.(pg) + (proc * Env.word) in
                   let got = env.Env.read a in
                   let want = float_of_int counts.(pg).(proc) in
                   if got <> want then
                     failwith
                       (Printf.sprintf
                          "seed %d: page %d proc %d = %g, want %g" seed pg
                          proc got want)
                 done
               done)))
    [ 1; 2; 3; 4; 5 ]

let () =
  Alcotest.run "harness"
    [
      ( "runner",
        [
          Alcotest.test_case "per-proc cycles" `Quick
            test_spmd_reports_cycles_per_proc;
          Alcotest.test_case "stuck detection" `Quick
            test_spmd_detects_stuck_thread;
          Alcotest.test_case "hooks default to no-op" `Quick
            test_hooks_default_to_noop;
          Alcotest.test_case "update machine exposes hooks" `Quick
            test_update_machine_exposes_hooks;
          Alcotest.test_case "alloc_kind fallback" `Quick
            test_alloc_kind_falls_back;
          Alcotest.test_case "prefetch no-op on dirnnb" `Quick
            test_prefetch_is_noop_on_dirnnb;
          Alcotest.test_case "identical data layout across machines" `Quick
            test_machines_share_alloc_layout;
        ] );
      ( "np-timing",
        [
          Alcotest.test_case "fault ready time honoured" `Quick
            test_np_respects_fault_ready_time;
          Alcotest.test_case "message ordering" `Quick test_np_wait_then_run;
        ] );
      ( "stress",
        [
          Alcotest.test_case "fuzz with page replacement" `Slow
            test_fuzz_with_page_replacement;
        ] );
    ]
