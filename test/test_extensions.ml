(* Whole-suite invariant: pool-debug mode poisons released pool buffers
   and rejects double-release (satellite of the zero-allocation PR). *)
let () = Tt_util.Debug.set_pool_debug true

(* Tests for the Tempest extensions beyond the paper's core evaluation:
   user-level synchronization (§2 footnote), nonbinding prefetch (§5.4's
   Busy tag) and explicit page migration (§7). *)

module Engine = Tt_sim.Engine
module Thread = Tt_sim.Thread
module System = Tt_typhoon.System
module Stache = Tt_stache.Stache
module Msg_sync = Tt_sync.Msg_sync
module Addr = Tt_mem.Addr
module Tag = Tt_mem.Tag
module Stats = Tt_util.Stats

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let mk ?(nodes = 4) () =
  let engine = Engine.create () in
  let sys = System.create engine { Params.default with Params.nodes } in
  let st = Stache.install sys () in
  (engine, sys, st)

let run_cpus engine bodies =
  let threads =
    Array.mapi
      (fun i body -> Thread.spawn engine ~name:(Printf.sprintf "cpu%d" i) body)
      bodies
  in
  Engine.run engine;
  Array.iteri
    (fun i th ->
      if not (Thread.finished th) then
        Alcotest.fail (Printf.sprintf "cpu%d did not finish" i))
    threads;
  threads

(* ---------------- Msg_sync ---------------- *)

let test_fetch_add_atomic () =
  let nodes = 8 in
  let engine = Engine.create () in
  let sys = System.create engine { Params.default with Params.nodes } in
  let sync = Msg_sync.install sys in
  let counter = ref None in
  let per_proc = 25 in
  let seen = Array.make (nodes * per_proc) false in
  let bodies =
    Array.init nodes (fun node th ->
        if node = 0 then
          counter := Some (Msg_sync.alloc_counter sync ~th ~node ~home:2 ~init:0);
        Thread.yield th;
        Thread.advance th 100;
        Thread.yield th;
        let c = Option.get !counter in
        for _ = 1 to per_proc do
          let ticket = Msg_sync.fetch_add sync ~th ~node c 1 in
          check_bool "ticket in range" true
            (ticket >= 0 && ticket < nodes * per_proc);
          check_bool "ticket unique" false seen.(ticket);
          seen.(ticket) <- true
        done)
  in
  ignore (run_cpus engine (Array.map (fun b th -> b th) (Array.mapi (fun i b -> ignore i; b) bodies)));
  check_bool "all tickets issued" true (Array.for_all (fun x -> x) seen);
  check_int "fetch_adds counted" (nodes * per_proc)
    (Stats.get (Msg_sync.stats sync) "fetch_adds")

let test_msg_barrier_releases_everyone () =
  let nodes = 6 in
  let engine = Engine.create () in
  let sys = System.create engine { Params.default with Params.nodes } in
  let sync = Msg_sync.install sys in
  let barrier = ref None in
  let arrived = ref 0 and released_when = Array.make nodes (-1) in
  let bodies =
    Array.init nodes (fun node th ->
        if node = 0 then
          barrier :=
            Some
              (Msg_sync.alloc_barrier sync ~th ~node ~home:0
                 ~participants:nodes);
        Thread.yield th;
        Thread.advance th (100 * (node + 1));
        Thread.yield th;
        let b = Option.get !barrier in
        for _round = 1 to 3 do
          incr arrived;
          let before = !arrived in
          Msg_sync.barrier_wait sync ~th ~node b;
          (* by release time, everyone must have arrived this round *)
          check_bool "no early release" true (before <= !arrived);
          released_when.(node) <- Thread.clock th
        done)
  in
  ignore (run_cpus engine (Array.map (fun b th -> b th) bodies));
  check_int "three episodes" 3
    (Stats.get (Msg_sync.stats sync) "barrier_episodes")

let test_msg_barrier_vs_hardware_cost () =
  (* the message barrier must cost more than the idealized hardware
     barrier, but stay the same order of magnitude *)
  let nodes = 8 in
  let engine = Engine.create () in
  let sys = System.create engine { Params.default with Params.nodes } in
  let sync = Msg_sync.install sys in
  let hw = Tt_sim.Barrier.create engine ~participants:nodes ~latency:11 in
  let barrier = ref None in
  let msg_cost = ref 0 and hw_cost = ref 0 in
  let bodies =
    Array.init nodes (fun node th ->
        if node = 0 then
          barrier :=
            Some
              (Msg_sync.alloc_barrier sync ~th ~node ~home:0
                 ~participants:nodes);
        Thread.yield th;
        let b = Option.get !barrier in
        let c0 = Thread.clock th in
        Tt_sim.Barrier.wait hw th;
        if node = 0 then hw_cost := Thread.clock th - c0;
        let c1 = Thread.clock th in
        Msg_sync.barrier_wait sync ~th ~node b;
        if node = 0 then msg_cost := Thread.clock th - c1)
  in
  ignore (run_cpus engine (Array.map (fun b th -> b th) bodies));
  check_bool
    (Printf.sprintf "msg barrier (%d) costs more than hw (%d)" !msg_cost
       !hw_cost)
    true
    (!msg_cost > !hw_cost);
  check_bool "but within ~40x" true (!msg_cost < 40 * max 1 !hw_cost)

(* ---------------- Prefetch ---------------- *)

let test_prefetch_hides_latency () =
  let engine, sys, st = mk () in
  let va = ref 0 in
  let cold = ref 0 and warm = ref 0 in
  run_cpus engine
    [|
      (fun th ->
        va := Stache.alloc st ~th ~node:0 ~home:0 ~bytes:128 ();
        System.cpu_write_f64 sys ~node:0 th !va 1.0;
        System.cpu_write_f64 sys ~node:0 th (!va + 64) 2.0;
        Thread.yield th);
      (fun th ->
        Thread.advance th 3000;
        Thread.yield th;
        (* block 0: plain demand fetch *)
        let c0 = Thread.clock th in
        ignore (System.cpu_read_f64 sys ~node:1 th !va);
        cold := Thread.clock th - c0;
        (* block 2: prefetch, compute a while, then read *)
        Stache.prefetch st ~th ~node:1 ~vaddr:(!va + 64) `Ro;
        Thread.advance th 500;
        Thread.yield th;
        let c1 = Thread.clock th in
        Alcotest.(check (float 0.0)) "prefetched value" 2.0
          (System.cpu_read_f64 sys ~node:1 th (!va + 64));
        warm := Thread.clock th - c1);
      (fun _ -> ()); (fun _ -> ());
    |] |> ignore;
  check_int "one prefetch issued" 1 (Stats.get (Stache.stats st) "prefetch_issued");
  check_int "prefetch completed without a fault" 1
    (Stats.get (Stache.stats st) "prefetch_completed");
  check_bool
    (Printf.sprintf "prefetched access (%d) much cheaper than cold (%d)" !warm
       !cold)
    true
    (!warm * 2 < !cold)

let test_prefetch_raced_by_demand_access () =
  (* the CPU touches the block before the prefetch data returns: it must
     simply join the outstanding request *)
  let engine, sys, st = mk () in
  let va = ref 0 in
  run_cpus engine
    [|
      (fun th ->
        va := Stache.alloc st ~th ~node:0 ~home:0 ~bytes:64 ();
        System.cpu_write_f64 sys ~node:0 th !va 7.5;
        Thread.yield th);
      (fun th ->
        Thread.advance th 3000;
        Thread.yield th;
        (* map the page first via a touch of... the same block would defeat
           the test; instead prefetch triggers only on mapped pages, so
           fault the page in via the block itself, then invalidate happens
           on home write. Simpler: demand-read once, let home reclaim it. *)
        ignore (System.cpu_read_f64 sys ~node:1 th !va);
        Thread.yield th);
      (fun th ->
        (* node 2 takes the block exclusively, invalidating node 1 *)
        Thread.advance th 9000;
        Thread.yield th;
        System.cpu_write_f64 sys ~node:2 th !va 9.5;
        Thread.yield th);
      (fun th ->
        ignore th);
    |] |> ignore;
  (* now node 1's copy is Invalid on a mapped page: prefetch then race *)
  let engine2 = Engine.create () in
  ignore engine2;
  (* second phase on the same system: prefetch and immediately read *)
  let e2 = System.engine sys in
  let th =
    Thread.spawn e2 ~name:"racer" (fun th ->
        Stache.prefetch st ~th ~node:1 ~vaddr:!va `Ro;
        (* no pause: the read faults while the prefetch is in flight *)
        Alcotest.(check (float 0.0)) "joined request sees fresh data" 9.5
          (System.cpu_read_f64 sys ~node:1 th !va))
  in
  Engine.run e2;
  check_bool "racer finished" true (Thread.finished th);
  (* exactly one get was outstanding for that block during the race: the
     fault joined it rather than issuing a duplicate *)
  match Stache.check_invariants st with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_prefetch_noop_cases () =
  let engine, sys, st = mk () in
  let va = ref 0 in
  run_cpus engine
    [|
      (fun th ->
        va := Stache.alloc st ~th ~node:0 ~home:0 ~bytes:64 ();
        System.cpu_write_f64 sys ~node:0 th !va 1.0;
        (* unmapped page on node 1: no-op; home page on node 0: no-op *)
        Stache.prefetch st ~th ~node:0 ~vaddr:!va `Ro);
      (fun th ->
        Thread.yield th;
        Thread.advance th 2000;
        Stache.prefetch st ~th ~node:1 ~vaddr:!va `Ro);
      (fun _ -> ()); (fun _ -> ());
    |] |> ignore;
  check_int "nothing issued" 0 (Stats.get (Stache.stats st) "prefetch_issued")

(* ---------------- Page migration ---------------- *)

let test_migration_moves_home () =
  let engine, sys, st = mk () in
  let va = ref 0 in
  run_cpus engine
    [|
      (fun th ->
        va := Stache.alloc st ~th ~node:0 ~home:0 ~bytes:256 ();
        for w = 0 to 31 do
          System.cpu_write_f64 sys ~node:0 th (!va + (w * 8)) (float_of_int w)
        done;
        Thread.yield th;
        Stache.migrate_page st ~th ~node:0 ~vpage:(Addr.page_of !va)
          ~new_home:2;
        Thread.yield th);
      (fun _ -> ()); (fun _ -> ()); (fun _ -> ());
    |] |> ignore;
  check_int "registry updated" 2 (Stache.home_of st ~vaddr:!va);
  let new_mem = System.node_mem sys 2 in
  check_bool "new home mapped" true
    (Tt_mem.Pagemem.is_mapped new_mem ~vpage:(Addr.page_of !va));
  Alcotest.(check (float 0.0)) "data moved" 5.0
    (Tt_mem.Pagemem.read_f64 new_mem ~vaddr:(!va + 40));
  (* old home keeps a readable stached copy *)
  let old_mem = System.node_mem sys 0 in
  check_bool "old home copy RO" true
    (Tag.equal Tag.Read_only (Tt_mem.Pagemem.get_tag old_mem ~vaddr:!va));
  check_int "migration counted" 1
    (Stats.get (Stache.stats st) "page_migrations");
  match Stache.check_invariants st with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_migration_then_access_from_everywhere () =
  let engine, sys, st = mk () in
  let va = ref 0 in
  let barrier =
    Tt_sim.Barrier.create engine ~participants:4 ~latency:11
  in
  run_cpus engine
    [|
      (fun th ->
        va := Stache.alloc st ~th ~node:0 ~home:0 ~bytes:64 ();
        System.cpu_write_f64 sys ~node:0 th !va 3.25;
        Tt_sim.Barrier.wait barrier th;
        (* node 1 fetched a copy pre-migration (stale local_homes) *)
        Tt_sim.Barrier.wait barrier th;
        Stache.migrate_page st ~th ~node:0 ~vpage:(Addr.page_of !va)
          ~new_home:3;
        Tt_sim.Barrier.wait barrier th;
        (* old home can still read its (now stached) copy *)
        Alcotest.(check (float 0.0)) "old home reads" 3.25
          (System.cpu_read_f64 sys ~node:0 th !va);
        Tt_sim.Barrier.wait barrier th);
      (fun th ->
        Tt_sim.Barrier.wait barrier th;
        Alcotest.(check (float 0.0)) "pre-migration fetch" 3.25
          (System.cpu_read_f64 sys ~node:1 th !va);
        Tt_sim.Barrier.wait barrier th;
        Tt_sim.Barrier.wait barrier th;
        (* node 1 writes post-migration: its stale table points at the old
           home, which must forward the upgrade to the new home *)
        System.cpu_write_f64 sys ~node:1 th !va 4.5;
        Tt_sim.Barrier.wait barrier th);
      (fun th ->
        Tt_sim.Barrier.wait barrier th;
        Tt_sim.Barrier.wait barrier th;
        Tt_sim.Barrier.wait barrier th;
        Tt_sim.Barrier.wait barrier th;
        (* fresh consumer after everything: sees the latest value *)
        Alcotest.(check (float 0.0)) "fresh consumer" 4.5
          (System.cpu_read_f64 sys ~node:2 th !va));
      (fun th ->
        Tt_sim.Barrier.wait barrier th;
        Tt_sim.Barrier.wait barrier th;
        Tt_sim.Barrier.wait barrier th;
        Tt_sim.Barrier.wait barrier th);
    |] |> ignore;
  check_bool "a request was forwarded" true
    (Stats.get (Stache.stats st) "forwarded" >= 1)

let test_migration_rejects_remote_owner () =
  let engine, sys, st = mk () in
  let va = ref 0 in
  let threads =
    [|
      (fun th ->
        va := Stache.alloc st ~th ~node:0 ~home:0 ~bytes:64 ();
        System.cpu_write_f64 sys ~node:0 th !va 1.0;
        Thread.yield th;
        Thread.advance th 10_000;
        Thread.yield th;
        (* node 1 owns the block now: migration must refuse *)
        try
          Stache.migrate_page st ~th ~node:0 ~vpage:(Addr.page_of !va)
            ~new_home:2;
          Alcotest.fail "migration with remote owner must raise"
        with Invalid_argument _ -> ());
      (fun th ->
        Thread.advance th 2000;
        Thread.yield th;
        System.cpu_write_f64 sys ~node:1 th !va 2.0);
      (fun _ -> ());
      (fun _ -> ());
    |]
    |> Array.mapi (fun i body ->
           Thread.spawn engine ~name:(Printf.sprintf "cpu%d" i) body)
  in
  Engine.run engine;
  Array.iter (fun th -> check_bool "finished" true (Thread.finished th)) threads

let test_em3d_software_prefetch () =
  (* §4: prefetching hides latency but does not reduce message traffic *)
  let nodes = 8 in
  let run software_prefetch =
    let cfg =
      { Tt_app.Em3d.total_nodes = 2400; degree = 6; pct_remote = 30;
        iters = 3; seed = 47; software_prefetch }
    in
    let machine =
      Tt_harness.Machine.typhoon_stache { Params.default with Params.nodes }
    in
    let inst = Tt_app.Em3d.make cfg ~nprocs:nodes in
    let r = Tt_harness.Run.spmd machine ~name:"em3d" inst.Tt_app.Em3d.body in
    ignore
      (Tt_harness.Run.spmd machine ~name:"em3d-v" ~check:false
         inst.Tt_app.Em3d.verify);
    ( r.Tt_harness.Run.cycles,
      Stats.get r.Tt_harness.Run.run_stats "msgs.request"
      + Stats.get r.Tt_harness.Run.run_stats "msgs.response" )
  in
  let plain_c, plain_m = run false in
  let pf_c, pf_m = run true in
  check_bool
    (Printf.sprintf "prefetch faster (%d vs %d)" pf_c plain_c)
    true (pf_c < plain_c);
  check_bool
    (Printf.sprintf "traffic not reduced (%d vs %d)" pf_m plain_m)
    true (pf_m >= plain_m)

(* Fuzz: random accesses interleaved with page migrations at quiescent
   barriers; values must survive the moves and every machine invariant must
   hold.  Migrations that catch a block remotely owned are legitimately
   refused and skipped. *)
let test_migration_under_load () =
  let nodes = 4 in
  let pages = 3 in
  let migrated = ref 0 in
  List.iter
    (fun seed ->
      let machine, _sys, st =
        Tt_harness.Machine.typhoon_stache_full
          { Params.default with Params.nodes; seed }
      in
      let bases = Array.make pages 0 in
      let migrate_target = ref None in
      Hashtbl.replace machine.Tt_harness.Machine.hooks "migrate"
        (fun ~node th ->
          match !migrate_target with
          | None -> ()
          | Some (vpage, new_home) -> (
              migrate_target := None;
              try
                Stache.migrate_page st ~th ~node ~vpage ~new_home;
                incr migrated
              with Invalid_argument _ -> () (* not quiescent: skip *)));
      let r =
        Tt_harness.Run.spmd machine ~name:"migration-fuzz" (fun env ->
            let open Tt_app in
            if env.Env.proc = 0 then
              for pg = 0 to pages - 1 do
                (* page-sized so each region owns its page: migration moves
                   whole pages *)
                bases.(pg) <- env.Env.alloc ~home:0 Tt_mem.Addr.page_size
              done;
            env.Env.barrier ();
            let prng = Tt_util.Prng.create ~seed:((seed * 7) + env.Env.proc) in
            for round = 1 to 4 do
              for _op = 1 to 8 do
                let pg = Tt_util.Prng.int prng pages in
                let a = bases.(pg) + (env.Env.proc * Env.word) in
                env.Env.write a (env.Env.read a +. 1.0)
              done;
              env.Env.barrier ();
              if env.Env.proc = 0 then begin
                let pg = round mod pages in
                (* reclaim remotely-owned blocks: a home read recalls the
                   owner, leaving the block migratable (Shared) *)
                for b = 0 to (512 / 32) - 1 do
                  ignore (env.Env.read (bases.(pg) + (b * 32)))
                done;
                migrate_target :=
                  Some
                    ( Tt_mem.Addr.page_of bases.(pg),
                      1 + (round mod (nodes - 1)) );
                env.Env.hook "migrate"
              end;
              env.Env.barrier ()
            done;
            (* verify: slot (pg, proc) counts that proc's picks of pg *)
            env.Env.barrier ();
            if env.Env.proc = 0 then begin
              let counts = Array.make_matrix pages nodes 0 in
              for proc = 0 to nodes - 1 do
                let replay = Tt_util.Prng.create ~seed:((seed * 7) + proc) in
                for _round = 1 to 4 do
                  for _op = 1 to 8 do
                    let pg = Tt_util.Prng.int replay pages in
                    counts.(pg).(proc) <- counts.(pg).(proc) + 1
                  done
                done
              done;
              for pg = 0 to pages - 1 do
                for proc = 0 to nodes - 1 do
                  let got = env.Env.read (bases.(pg) + (proc * Env.word)) in
                  let want = float_of_int counts.(pg).(proc) in
                  if got <> want then
                    failwith
                      (Printf.sprintf "seed %d: page %d proc %d = %g, want %g"
                         seed pg proc got want)
                done
              done
            end)
      in
      ignore r)
    [ 1; 2; 3 ];
  check_bool
    (Printf.sprintf "some migrations actually happened (%d)" !migrated)
    true (!migrated > 0)

let () =
  Alcotest.run "extensions"
    [
      ( "msg_sync",
        [
          Alcotest.test_case "fetch-add is atomic" `Quick test_fetch_add_atomic;
          Alcotest.test_case "message barrier" `Quick
            test_msg_barrier_releases_everyone;
          Alcotest.test_case "cost vs hardware barrier" `Quick
            test_msg_barrier_vs_hardware_cost;
        ] );
      ( "prefetch",
        [
          Alcotest.test_case "hides latency" `Quick test_prefetch_hides_latency;
          Alcotest.test_case "raced by demand access" `Quick
            test_prefetch_raced_by_demand_access;
          Alcotest.test_case "no-op cases" `Quick test_prefetch_noop_cases;
          Alcotest.test_case "em3d: latency hidden, traffic not reduced" `Slow
            test_em3d_software_prefetch;
        ] );
      ( "migration",
        [
          Alcotest.test_case "moves home and data" `Quick
            test_migration_moves_home;
          Alcotest.test_case "stale requesters are forwarded" `Quick
            test_migration_then_access_from_everywhere;
          Alcotest.test_case "rejects remote owner" `Quick
            test_migration_rejects_remote_owner;
          Alcotest.test_case "fuzz under load" `Slow
            test_migration_under_load;
        ] );
    ]
