(* Whole-suite invariant: pool-debug mode poisons released pool buffers
   and rejects double-release (satellite of the zero-allocation PR). *)
let () = Tt_util.Debug.set_pool_debug true

(* Finite buffering (§5.1): credit-based backpressure, the overflow/spill
   path with status-handler drains, graceful Overload aborts, NP ring
   capacities, and the watchdog's stall/deadlock detection.

   Two regimes are covered: with the default ample credits the flow layer
   must be timing-invisible (the direct path is pure integer bookkeeping),
   and with squeezed credits the machine must degrade gracefully — spill,
   block, or abort with a diagnostic — never hang and never corrupt
   results. *)

module Engine = Tt_sim.Engine
module Thread = Tt_sim.Thread
module System = Tt_typhoon.System
module Np = Tt_typhoon.Np
module Message = Tt_net.Message
module Fabric = Tt_net.Fabric
module Reliable = Tt_net.Reliable
module Flow = Tt_net.Flow
module Faults = Tt_net.Faults
module Overload = Tt_net.Overload
module Stats = Tt_util.Stats
module Prng = Tt_util.Prng
module Tlb = Tt_mem.Tlb
module Cache = Tt_cache.Cache
module H = Tt_harness
module Run = Tt_harness.Run
module Watchdog = Tt_harness.Watchdog
module Faultsweep = Tt_harness.Faultsweep
module Env = Tt_app.Env
module T = Tt_torture.Torture

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let check_contains what sub s =
  if not (contains s sub) then
    Alcotest.failf "%s: expected %S inside %S" what sub s

let with_flow on f =
  let prev = Flow.enabled () in
  Flow.set_enabled on;
  Fun.protect ~finally:(fun () -> Flow.set_enabled prev) f

(* ---------------- Ample credits: timing parity ---------------- *)

(* The Fig. 3 unit event (one 512-byte block fetched word by word between
   two nodes) with the flow layer on vs. off: cycles, per-proc cycles, and
   every counter except the flow layer's own must be bit-identical, because
   ample credits keep every send on the direct path. *)

let roundtrip make_machine =
  let params = { Params.default with Params.nodes = 2 } in
  let machine : H.Machine.t = make_machine params in
  let base = ref 0 in
  Run.spmd machine ~name:"roundtrip" ~check:false (fun env ->
      if env.Env.proc = 0 then base := env.Env.alloc ~home:0 512;
      env.Env.barrier ();
      if env.Env.proc = 1 then
        for w = 0 to 63 do
          ignore (env.Env.read (!base + (w * 8)))
        done)

let comparable_stats r =
  Stats.counters r.Run.run_stats
  |> List.filter (fun (k, _) ->
         (not (String.length k >= 5 && String.sub k 0 5 = "flow."))
         && not (String.length k >= 12 && String.sub k 0 12 = "suspensions_"))

let check_parity name make_machine =
  let on = with_flow true (fun () -> roundtrip make_machine) in
  let off = with_flow false (fun () -> roundtrip make_machine) in
  check_int (name ^ ": cycles identical") off.Run.cycles on.Run.cycles;
  check_bool
    (name ^ ": per-proc cycles identical")
    true
    (on.Run.proc_cycles = off.Run.proc_cycles);
  check_bool
    (name ^ ": stats identical (minus flow counters)")
    true
    (comparable_stats on = comparable_stats off)

let test_roundtrip_parity () =
  check_parity "stache" (fun p -> H.Machine.typhoon_stache p);
  check_parity "dirnnb" H.Machine.dirnnb

(* ---------------- Squeezed credits: CPU senders block ---------------- *)

let squeezed ?(spill = Params.default.Params.flow_spill_capacity) ~credits
    ~nodes () =
  {
    Params.default with
    Params.nodes;
    flow_request_credits = credits;
    flow_response_credits = credits;
    flow_spill_capacity = spill;
  }

let test_cpu_sender_blocks_and_resumes () =
  with_flow true (fun () ->
      let engine = Engine.create () in
      let sys = System.create engine (squeezed ~credits:1 ~nodes:2 ()) in
      let received = ref 0 in
      let sink =
        Tempest.Handlers.register_message (System.handlers sys) ~name:"sink"
          (fun _ep ~src:_ ~args:_ ~data:_ -> incr received)
      in
      let statuses = ref 0 and last_pending = ref (-1) in
      Tempest.Handlers.set_status (System.handlers sys) (fun ep ~pending ->
          incr statuses;
          last_pending := pending;
          check_int "status pending matches endpoint probe" pending
            (ep.Tempest.overflow_pending ()));
      let ep = System.endpoint sys 0 in
      let th =
        Thread.spawn engine ~name:"cpu0" (fun th ->
            for _ = 1 to 20 do
              (* a tail send is the one suspension with_cpu_context allows *)
              System.with_cpu_context sys ~node:0 th (fun () ->
                  ep.Tempest.send_raw ~dst:1 ~vnet:Message.Request
                    ~handler:sink ~args:[||] ~data:Bytes.empty)
            done)
      in
      Engine.run engine;
      check_bool "sender finished" true (Thread.finished th);
      check_int "all messages delivered" 20 !received;
      let s = System.merged_stats sys in
      (* one credit: the first send is direct, every later one parks the
         thread until the predecessor's credit returns *)
      check_int "CPU sends blocked" 19 (Stats.get s "flow.blocked");
      check_int "parked messages drained" 19 (Stats.get s "flow.drained");
      check_int "no handler spills" 0 (Stats.get s "flow.spilled");
      check_bool "status handler ran" true (!statuses > 0);
      check_int "backlog empty at the end" 0 !last_pending)

(* ---------------- Squeezed credits: handler sends spill ---------------- *)

let test_handler_sends_spill_and_drain () =
  with_flow true (fun () ->
      let engine = Engine.create () in
      let sys = System.create engine (squeezed ~credits:1 ~nodes:2 ()) in
      let received = ref 0 in
      let sink =
        Tempest.Handlers.register_message (System.handlers sys) ~name:"sink"
          (fun _ep ~src:_ ~args:_ ~data:_ -> incr received)
      in
      let last_pending = ref (-1) in
      Tempest.Handlers.set_status (System.handlers sys)
        (fun _ep ~pending -> last_pending := pending);
      let ep1 = System.endpoint sys 1 in
      (* NP context runs to completion: out of credits it must spill into
         the overflow buffer, never block *)
      Np.post_deferred (System.node_np sys 1) ~at:0 (fun () ->
          for _ = 1 to 20 do
            ep1.Tempest.send_raw ~dst:0 ~vnet:Message.Request ~handler:sink
              ~args:[||] ~data:Bytes.empty
          done);
      Engine.run engine;
      check_int "all messages delivered" 20 !received;
      let s = System.merged_stats sys in
      check_int "handler sends spilled" 19 (Stats.get s "flow.spilled");
      check_int "spilled messages drained" 19 (Stats.get s "flow.drained");
      check_int "no CPU sends blocked" 0 (Stats.get s "flow.blocked");
      check_int "overflow high-water mark" 19 (Stats.get s "flow.peak_queued");
      check_bool "drain chores dispatched" true
        (Stats.get s "flow.drain_chores" > 0);
      check_int "backlog empty at the end" 0 !last_pending)

let test_spill_overflow_aborts_with_diagnostic () =
  with_flow true (fun () ->
      let engine = Engine.create () in
      let sys =
        System.create engine (squeezed ~credits:1 ~spill:4 ~nodes:2 ())
      in
      let sink =
        Tempest.Handlers.register_message (System.handlers sys) ~name:"sink"
          (fun _ep ~src:_ ~args:_ ~data:_ -> ())
      in
      let ep1 = System.endpoint sys 1 in
      Np.post_deferred (System.node_np sys 1) ~at:0 (fun () ->
          (* 1 direct + 4 spilled fill everything; the 6th must abort *)
          for _ = 1 to 10 do
            ep1.Tempest.send_raw ~dst:0 ~vnet:Message.Request ~handler:sink
              ~args:[||] ~data:Bytes.empty
          done);
      match Engine.run engine with
      | () -> Alcotest.fail "expected Overload out of the overfull spill"
      | exception Overload.Overload msg ->
          check_contains "diagnostic" "overflow buffer full" msg;
          check_contains "diagnostic names the node" "node 1" msg)

(* ---------------- Waits-for graph probe (Flow unit) ---------------- *)

let test_flow_deadlock_probe () =
  let e = Engine.create () in
  let f = Fabric.create e ~nodes:2 ~latency:11 () in
  let net = Reliable.create e f Reliable.Perfect in
  let fl =
    Flow.create net ~nodes:2 ~request_credits:1 ~response_credits:1
      ~spill_capacity:10 ~spill_cost:0 ~drain_cost:0 ~status_cost:0 ()
  in
  let chores = ref [] in
  Flow.set_hooks fl
    ~post:(fun _ chore -> chores := chore :: !chores)
    ~clock:(fun _ -> 0)
    ~charge:(fun _ _ -> ())
    ~status:(fun _ ~pending:_ -> ());
  let m ~src ~dst =
    Message.Pool.acquire_raw ~src ~dst ~vnet:Message.Request ~handler:0
      ~args:[||] ~data:Bytes.empty
  in
  (* each direction: one direct send eats the credit, one send parks *)
  Flow.send_from_handler fl ~at:0 (m ~src:0 ~dst:1);
  Flow.send_from_handler fl ~at:0 (m ~src:0 ~dst:1);
  Flow.send_from_handler fl ~at:0 (m ~src:1 ~dst:0);
  Flow.send_from_handler fl ~at:0 (m ~src:1 ~dst:0);
  check_int "node 0 parked" 1 (Flow.node_queued fl 0);
  check_int "node 1 parked" 1 (Flow.node_queued fl 1);
  (match Flow.deadlock fl with
  | None -> Alcotest.fail "expected a waits-for cycle"
  | Some d ->
      check_contains "cycle rendered" "waits-for cycle" d;
      check_contains "cycle names a node" "0" d);
  (* one returning credit makes node 0's parked message releasable: the
     cycle is broken and a drain chore was posted *)
  Flow.credit_return fl ~src:0 ~dst:1 Message.Request;
  check_bool "cycle broken by a releasable credit" true
    (Flow.deadlock fl = None);
  check_bool "drain chore posted" true (!chores <> []);
  List.iter (fun chore -> chore ()) !chores;
  check_int "node 0 drained" 0 (Flow.node_queued fl 0)

(* ---------------- NP ring capacity and wraparound ---------------- *)

let mk_np ~capacity =
  let engine = Engine.create () in
  let np =
    Np.create engine
      ~rtlb:(Tlb.create ~entries:64 ~miss_penalty:10 ())
      ~dcache:
        (Cache.create ~name:"np.dcache" ~size_bytes:4096 ~assoc:2
           ~prng:(Prng.create ~seed:1) ())
      ~capacity ~name:"npT" ()
  in
  (engine, np)

let test_np_ring_wraparound_at_capacity () =
  let engine, np = mk_np ~capacity:16 in
  let order = ref [] in
  Np.set_msg_exec np (fun m ->
      order := m.Message.handler :: !order;
      Message.Pool.release m);
  let post i at =
    Np.post_message np ~at
      (Message.Pool.acquire_raw ~src:0 ~dst:0 ~vnet:Message.Request
         ~handler:i ~args:[||] ~data:Bytes.empty)
  in
  (* fill half, drain it — the ring's head is now mid-array, so refilling
     to exactly the capacity wraps the ring around the array boundary *)
  for i = 0 to 7 do
    post i 0
  done;
  ignore (Engine.run_until engine ~limit:500);
  check_int "first batch handled" 8 (Np.handled np);
  check_int "ring empty between batches" 0 (Np.depth np);
  for i = 8 to 23 do
    post i 1000
  done;
  check_int "ring holds exactly its capacity" 16 (Np.depth np);
  (let m =
     Message.Pool.acquire_raw ~src:0 ~dst:0 ~vnet:Message.Request ~handler:99
       ~args:[||] ~data:Bytes.empty
   in
   match Np.post_message np ~at:1000 m with
   | () -> Alcotest.fail "expected Overload on a full ring"
   | exception Overload.Overload msg ->
       Message.Pool.release m;
       check_contains "diagnostic names the NP" "npT" msg;
       check_contains "diagnostic names the ring" "request ring full" msg);
  Engine.run engine;
  check_int "everything handled" 24 (Np.handled np);
  check_int "FIFO order across the wraparound" 0
    (compare (List.init 24 (fun i -> i)) (List.rev !order))

(* ---------------- Watchdog: stall budget and deadlock probe -------- *)

(* A self-rescheduling no-op event keeps the engine busy forever without
   delivering anything — the delivered-work stall budget must abort. *)
let ticking_engine () =
  let e = Engine.create () in
  let rec tick () = Engine.after e 100 tick in
  tick ();
  e

let test_watchdog_stall_budget () =
  let e = ticking_engine () in
  let w = Watchdog.create ~max_stall:50_000 ~check_interval:10_000 () in
  match
    Watchdog.drive w e
      ~progress:(fun () -> 0)
      ~queues:(fun () -> "QSUMMARY")
      ~retransmits:(fun () -> 0)
  with
  | () -> Alcotest.fail "expected Expired on a stalled run"
  | exception Watchdog.Expired msg ->
      check_contains "stall named" "no delivery progress" msg;
      check_contains "queue summary appended" "QSUMMARY" msg

let test_watchdog_deadlock_probe () =
  let e = ticking_engine () in
  let w =
    Watchdog.create ~max_stall:10_000_000 ~check_interval:10_000 ()
  in
  match
    Watchdog.drive w e
      ~progress:(fun () -> 0)
      ~queues:(fun () -> "QSUMMARY")
      ~deadlock:(fun () -> Some "waits-for cycle 0 -> 1 -> 0")
      ~retransmits:(fun () -> 0)
  with
  | () -> Alcotest.fail "expected Expired on a detected deadlock"
  | exception Watchdog.Expired msg ->
      check_contains "deadlock named" "deadlock detected" msg;
      check_contains "probe diagnostic included" "waits-for cycle 0 -> 1 -> 0"
        msg

let test_watchdog_progress_defuses_stall () =
  (* the same ticking engine, but with a progress counter that advances:
     the stall budget must NOT fire; the cycle budget ends the run *)
  let e = ticking_engine () in
  let w =
    Watchdog.create ~max_cycles:200_000 ~max_stall:50_000
      ~check_interval:10_000 ()
  in
  let n = ref 0 in
  match
    Watchdog.drive w e
      ~progress:(fun () -> incr n; !n)
      ~retransmits:(fun () -> 0)
  with
  | () -> Alcotest.fail "expected Expired on the cycle budget"
  | exception Watchdog.Expired msg ->
      check_bool "stall did not fire" true
        (not (contains msg "no delivery progress"))

(* ---------------- Overload grids: apps and litmus shapes ---------- *)

(* Fig. 3 app under squeezed credits, bursty loss, and fault storms: every
   cell must terminate with correct results or a captured diagnostic —
   reaching the assertions at all proves no silent hang. *)
let test_overload_grid_faultsweep () =
  with_flow true (fun () ->
      let points =
        Faultsweep.run ~apps:[ "em3d" ] ~machine:"stache" ~drops:[ 0.05 ]
          ~seeds:[ 1; 2 ] ~burst:(Faults.bursty ()) ~credits:2 ~spill:10_000
          ~scale:0.05 ~nodes:4 ()
      in
      check_int "grid size" 2 (List.length points);
      List.iter
        (fun p ->
          match p.Faultsweep.outcome with
          | Faultsweep.Passed -> ()
          | Faultsweep.Failed msg ->
              check_bool "failure carries a diagnostic" true
                (String.length msg > 0))
        points)

(* Torture litmus shapes under tiny credits and queue capacities with
   perturbed schedules and faults: backpressure may slow or abort a run
   (Hang carries the diagnostic; Link is the transport giving up), but it
   must never corrupt coherence — no SC, stale, or invariant violations. *)
let test_torture_under_overload () =
  with_flow true (fun () ->
      let tweak p =
        {
          p with
          Params.flow_request_credits = 2;
          flow_response_credits = 2;
          flow_spill_capacity = 64;
          np_queue_capacity = 256;
        }
      in
      List.iter
        (fun (litmus, drop) ->
          let case =
            {
              T.litmus;
              machine = "stache";
              drop;
              fault_seed = 3;
              perturb_rate = 0.25;
              perturb_seed = 7;
              iters = 2;
              sabotage = false;
            }
          in
          let r = T.run ~tweak_params:tweak case in
          match r.T.outcome with
          | T.Pass -> ()
          | T.Fail v -> (
              match v.T.kind with
              | T.Hang | T.Link ->
                  check_bool
                    (litmus ^ ": diagnosed abort carries detail")
                    true
                    (String.length v.T.detail > 0)
              | T.Sc | T.Stale | T.Invariant | T.Crash ->
                  Alcotest.failf "%s: overload corrupted coherence: %s" litmus
                    v.T.detail))
        [ ("SB", 0.0); ("SB", 0.1); ("MP", 0.1); ("LOCK", 0.08) ])

let () =
  Alcotest.run "flow"
    [
      ( "timing-parity",
        [ Alcotest.test_case "fig3 roundtrips" `Quick test_roundtrip_parity ]
      );
      ( "backpressure",
        [
          Alcotest.test_case "CPU sender blocks and resumes" `Quick
            test_cpu_sender_blocks_and_resumes;
          Alcotest.test_case "handler sends spill and drain" `Quick
            test_handler_sends_spill_and_drain;
          Alcotest.test_case "overfull spill aborts with diagnostic" `Quick
            test_spill_overflow_aborts_with_diagnostic;
        ] );
      ( "deadlock",
        [
          Alcotest.test_case "waits-for probe" `Quick test_flow_deadlock_probe;
          Alcotest.test_case "watchdog stall budget" `Quick
            test_watchdog_stall_budget;
          Alcotest.test_case "watchdog deadlock probe" `Quick
            test_watchdog_deadlock_probe;
          Alcotest.test_case "progress defuses the stall budget" `Quick
            test_watchdog_progress_defuses_stall;
        ] );
      ( "np-capacity",
        [
          Alcotest.test_case "ring wraparound at capacity" `Quick
            test_np_ring_wraparound_at_capacity;
        ] );
      ( "overload-grids",
        [
          Alcotest.test_case "faultsweep under squeezed credits" `Quick
            test_overload_grid_faultsweep;
          Alcotest.test_case "torture litmus under overload" `Quick
            test_torture_under_overload;
        ] );
    ]
