(* Whole-suite invariant: pool-debug mode poisons released pool buffers
   and rejects double-release (satellite of the zero-allocation PR). *)
let () = Tt_util.Debug.set_pool_debug true

(* Tests for crash-stop recovery: the Recovery harness end to end, the
   Faultsweep crash axis, and the TT_RECOVERY kill switch. *)

module Engine = Tt_sim.Engine
module Fabric = Tt_net.Fabric
module Faults = Tt_net.Faults
module Recovery = Tt_harness.Recovery
module Faultsweep = Tt_harness.Faultsweep

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* The grid tests inject crash windows, so they must hold the recovery
   switch on for their duration: the suite also runs under TT_RECOVERY=0
   (see scripts/check_recovery.sh), where [Faults.create] would
   otherwise ignore the schedule and every cell would run fault-free. *)
let with_recovery_on f () =
  let prior = Faults.recovery_enabled () in
  Fun.protect
    ~finally:(fun () -> Faults.set_recovery prior)
    (fun () ->
      Faults.set_recovery true;
      f ())

let test_grid_stache () =
  (* the full rejoin axis on one app: every cell must end in verified
     results or a diagnosed abort, the sub-lease outage must be masked,
     and a death verdict must fire exactly when the window outlasts the
     lease *)
  let points = Recovery.run ~apps:[ "ocean" ] ~victims:[ 0 ] () in
  check_int "one cell per rejoin mode" 3 (List.length points);
  check_bool "all cells verified or diagnosed" true
    (Recovery.all_passed points);
  List.iter
    (fun p ->
      match p.Recovery.rejoin with
      | Recovery.Quick ->
          check_bool "sub-lease outage masked" true
            (p.Recovery.outcome = Recovery.Masked);
          check_int "no death verdict" 0 p.Recovery.deaths
      | Recovery.Never | Recovery.Late -> (
          check_int "death verdict fired" 1 p.Recovery.deaths;
          match p.Recovery.outcome with
          | Recovery.Rehomed | Recovery.Rolled_back _ -> ()
          | o ->
              Alcotest.failf "super-lease outage ended as %s"
                (Recovery.outcome_label o)))
    points

let test_grid_deterministic () =
  (* bit-reproducible per seed: the whole point list, cycles and outcomes
     included, must be identical across runs *)
  let sweep () =
    Recovery.run ~apps:[ "ocean" ] ~victims:[ 3 ]
      ~rejoins:[ Recovery.Never; Recovery.Quick ] ()
  in
  check_bool "identical point lists" true (sweep () = sweep ())

let test_grid_dirnnb () =
  let points =
    Recovery.run ~apps:[ "ocean" ] ~machine:"dirnnb" ~victims:[ 3 ]
      ~rejoins:[ Recovery.Late ] ()
  in
  check_int "one cell" 1 (List.length points);
  check_bool "verified or diagnosed" true (Recovery.all_passed points);
  check_int "death verdict fired" 1 (List.hd points).Recovery.deaths

let test_faultsweep_crash_axis () =
  (* the faults grid's crash column: a crash cell runs under the full
     recovery stack and reports how it reached verified results *)
  let points =
    Faultsweep.run ~apps:[ "ocean" ] ~drops:[ 0.0 ] ~seeds:[ 1 ]
      ~crashes:[ None; Some Recovery.Quick ] ()
  in
  check_int "two cells" 2 (List.length points);
  check_bool "all passed" true (Faultsweep.all_passed points);
  List.iter
    (fun p ->
      match p.Faultsweep.crash with
      | None ->
          check_bool "plain cell has no recovery verdict" true
            (p.Faultsweep.recovery = None)
      | Some Recovery.Quick ->
          check_bool "crash cell masked" true
            (p.Faultsweep.recovery = Some Recovery.Masked)
      | Some _ -> Alcotest.fail "unexpected crash mode")
    points

let test_faultsweep_update_crash_rejects () =
  (* the custom update protocol has no recovery entry points: asking for
     crash cells on it must be refused up front, not fail mid-sweep *)
  match
    Faultsweep.run ~apps:[ "em3d" ] ~machine:"update"
      ~crashes:[ Some Recovery.Never ] ()
  with
  | _ -> Alcotest.fail "update + crash must be refused"
  | exception Invalid_argument _ -> ()

let test_kill_switch () =
  (* TT_RECOVERY=0 semantics: with recovery off, a crash schedule is
     ignored at Faults.create, so no window ever exists *)
  let prior = Faults.recovery_enabled () in
  Fun.protect
    ~finally:(fun () -> Faults.set_recovery prior)
    (fun () ->
      Faults.set_recovery false;
      check_bool "switch reads back off" false (Faults.recovery_enabled ());
      let e = Engine.create () in
      let f = Fabric.create e ~nodes:2 ~latency:11 () in
      let fl =
        Faults.create
          (Faults.uniform ~seed:1
             ~crashes:[ Faults.crash ~victim:1 ~at:0 ~rejoin:100 () ]
             ())
          f
      in
      check_bool "no crash window" true (Faults.crash_window fl ~node:1 = None);
      check_bool "never down" false (Faults.is_down fl ~node:1 ~at:50))

let () =
  Alcotest.run "recovery"
    [
      ( "grid",
        [
          Alcotest.test_case "stache rejoin axis" `Quick
            (with_recovery_on test_grid_stache);
          Alcotest.test_case "bit-reproducible" `Quick
            (with_recovery_on test_grid_deterministic);
          Alcotest.test_case "dirnnb late rejoin" `Quick
            (with_recovery_on test_grid_dirnnb);
        ] );
      ( "faultsweep",
        [
          Alcotest.test_case "crash axis" `Quick
            (with_recovery_on test_faultsweep_crash_axis);
          Alcotest.test_case "update machine refused" `Quick
            test_faultsweep_update_crash_rejects;
        ] );
      ( "kill-switch",
        [ Alcotest.test_case "TT_RECOVERY=0" `Quick test_kill_switch ] );
    ]
