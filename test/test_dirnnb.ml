(* Whole-suite invariant: pool-debug mode poisons released pool buffers
   and rejects double-release (satellite of the zero-allocation PR). *)
let () = Tt_util.Debug.set_pool_debug true

(* Tests for the DirNNB all-hardware directory machine: cost formulas,
   protocol flows, invariants under randomized workloads. *)

module Engine = Tt_sim.Engine
module Thread = Tt_sim.Thread
module Dirnnb = Tt_dirnnb.System
module Directory = Tt_dirnnb.Directory
module Addr = Tt_mem.Addr
module Bitset = Tt_util.Bitset
module Stats = Tt_util.Stats

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let mk ?(nodes = 4) ?(cache = 256 * 1024) () =
  let engine = Engine.create () in
  let sys =
    Dirnnb.create engine
      { Params.default with Params.nodes; cpu_cache_bytes = cache }
  in
  (engine, sys)

let page = 0x3000

let base = page * Addr.page_size

(* run one thread per node in lockstep-ish; bodies index by node *)
let run_cpus engine bodies =
  let threads =
    Array.mapi
      (fun i body -> Thread.spawn engine ~name:(Printf.sprintf "cpu%d" i) body)
      bodies
  in
  Engine.run engine;
  Array.iteri
    (fun i th ->
      if not (Thread.finished th) then
        Alcotest.fail (Printf.sprintf "cpu%d did not finish" i))
    threads;
  threads

let test_local_clean_miss_cost () =
  let engine, sys = mk () in
  Dirnnb.map_shared_page sys ~vpage:page ~home:0;
  let cost = ref 0 in
  let _ =
    run_cpus engine
      [|
        (fun th ->
          let c0 = Thread.clock th in
          ignore (Dirnnb.cpu_read_f64 sys ~node:0 th base);
          cost := Thread.clock th - c0);
      |]
  in
  check_int "instr + tlb + local miss" (1 + 25 + 29) !cost

let test_remote_clean_miss_cost () =
  let engine, sys = mk ~nodes:2 () in
  Dirnnb.map_shared_page sys ~vpage:page ~home:1;
  let cost = ref 0 in
  let _ =
    run_cpus engine
      [|
        (fun th ->
          let c0 = Thread.clock th in
          ignore (Dirnnb.cpu_read_f64 sys ~node:0 th base);
          cost := Thread.clock th - c0);
        (fun _ -> ());
      |]
  in
  (* instr 1 + tlb 25 + base 23 + net 11 + dir(16 + per_msg 5 + block_send 11)
     + ctrl reply charge 1 at requester? (charged to ctrl) + net 11 + finish 34 *)
  let p = Params.default in
  let expect =
    1 + 25 + p.Params.remote_miss_base + p.Params.net_latency
    + p.Params.dir_op + p.Params.dir_per_msg + p.Params.dir_block_send
    + p.Params.net_latency + 1 + p.Params.remote_miss_finish
  in
  check_int "Table 2 remote miss formula" expect !cost

let test_read_then_write_invalidates_sharer () =
  let engine, sys = mk ~nodes:3 () in
  Dirnnb.map_shared_page sys ~vpage:page ~home:0;
  let phase = Tt_sim.Barrier.create engine ~participants:3 ~latency:11 in
  let _ =
    run_cpus engine
      [|
        (fun th ->
          (* home writes, establishing ownership *)
          Dirnnb.cpu_write_f64 sys ~node:0 th base 1.0;
          Tt_sim.Barrier.wait phase th;
          (* reader has a copy now *)
          Tt_sim.Barrier.wait phase th;
          (* write again: must invalidate node 1 *)
          Dirnnb.cpu_write_f64 sys ~node:0 th base 2.0;
          Tt_sim.Barrier.wait phase th);
        (fun th ->
          Tt_sim.Barrier.wait phase th;
          Alcotest.(check (float 0.0)) "reader sees value" 1.0
            (Dirnnb.cpu_read_f64 sys ~node:1 th base);
          Tt_sim.Barrier.wait phase th;
          Tt_sim.Barrier.wait phase th;
          Alcotest.(check (float 0.0)) "reader sees new value" 2.0
            (Dirnnb.cpu_read_f64 sys ~node:1 th base));
        (fun th ->
          Tt_sim.Barrier.wait phase th;
          Tt_sim.Barrier.wait phase th;
          Tt_sim.Barrier.wait phase th);
      |]
  in
  check_bool "an invalidation was delivered" true
    (Stats.get (Dirnnb.node_stats sys 1) "invals_received" >= 1);
  match Dirnnb.check_invariants sys with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_recall_from_remote_owner () =
  let engine, sys = mk ~nodes:3 () in
  Dirnnb.map_shared_page sys ~vpage:page ~home:0;
  let phase = Tt_sim.Barrier.create engine ~participants:2 ~latency:11 in
  let _ =
    run_cpus engine
      [|
        (fun _ -> ());
        (fun th ->
          Dirnnb.cpu_write_f64 sys ~node:1 th base 5.0;
          Tt_sim.Barrier.wait phase th);
        (fun th ->
          Tt_sim.Barrier.wait phase th;
          Alcotest.(check (float 0.0)) "recalled value" 5.0
            (Dirnnb.cpu_read_f64 sys ~node:2 th base));
      |]
  in
  check_bool "a recall happened" true
    (Stats.get (Dirnnb.node_stats sys 0) "recalls" >= 1);
  (* after a read recall the old owner keeps a shared copy *)
  let entry = Directory.entry (Dirnnb.directory sys 0) ~block:(Addr.block_of base) in
  check_bool "owner cleared" true (entry.Directory.owner = None);
  check_bool "both are sharers" true
    (Bitset.mem entry.Directory.sharers 1 && Bitset.mem entry.Directory.sharers 2);
  match Dirnnb.check_invariants sys with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_eviction_writeback_updates_directory () =
  (* tiny cache forces exclusive evictions; the directory must track them *)
  let engine, sys = mk ~nodes:2 ~cache:4096 () in
  Dirnnb.map_shared_page sys ~vpage:page ~home:0;
  Dirnnb.map_shared_page sys ~vpage:(page + 1) ~home:0;
  let _ =
    run_cpus engine
      [|
        (fun _ -> ());
        (fun th ->
          (* write far more blocks than a 4 KB cache holds *)
          for i = 0 to 511 do
            Dirnnb.cpu_write_f64 sys ~node:1 th (base + (i * 16)) 1.0
          done);
      |]
  in
  check_bool "writebacks happened" true
    (Stats.get (Dirnnb.node_stats sys 1) "writebacks" > 0);
  match Dirnnb.check_invariants sys with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_alloc_round_robin () =
  let engine, sys = mk ~nodes:4 () in
  let homes = ref [] in
  let _ =
    run_cpus engine
      [|
        (fun th ->
          for _ = 1 to 4 do
            let va = Dirnnb.alloc sys ~th ~node:0 ~bytes:Addr.page_size () in
            homes := Dirnnb.page_home sys ~vpage:(Addr.page_of va) :: !homes
          done);
        (fun _ -> ());
        (fun _ -> ());
        (fun _ -> ());
      |]
  in
  Alcotest.(check (list int)) "round robin" [ 0; 1; 2; 3 ] (List.rev !homes)

let test_alloc_pinned_home () =
  let engine, sys = mk ~nodes:4 () in
  let _ =
    run_cpus engine
      [|
        (fun th ->
          let va = Dirnnb.alloc sys ~th ~node:0 ~home:3 ~bytes:64 () in
          check_int "pinned" 3 (Dirnnb.page_home sys ~vpage:(Addr.page_of va)));
        (fun _ -> ());
        (fun _ -> ());
        (fun _ -> ());
      |]
  in
  ()

(* Randomized workload: invariants must hold at quiescence and all values
   must match a sequential model (writes are serialized by a lock). *)
let prop_random_program =
  QCheck.Test.make ~name:"random shared accesses keep invariants" ~count:25
    QCheck.(int_bound 1000)
    (fun seed ->
      let nodes = 4 in
      let engine = Engine.create () in
      let sys =
        Dirnnb.create engine
          { Params.default with Params.nodes; cpu_cache_bytes = 4096; seed = seed + 1 }
      in
      Dirnnb.map_shared_page sys ~vpage:page ~home:0;
      Dirnnb.map_shared_page sys ~vpage:(page + 1) ~home:1;
      let lock = Tt_sim.Lock.create engine () in
      let body node th =
        let prng = Tt_util.Prng.create ~seed:(seed + node) in
        for _op = 1 to 200 do
          let va = base + (Tt_util.Prng.int prng 1024 * 8) in
          if Tt_util.Prng.bool prng then
            ignore (Dirnnb.cpu_read_f64 sys ~node th va)
          else begin
            Tt_sim.Lock.acquire lock th;
            Dirnnb.cpu_write_f64 sys ~node th va
              (Dirnnb.cpu_read_f64 sys ~node th va +. 1.0);
            Tt_sim.Lock.release lock th
          end
        done
      in
      let threads =
        Array.init nodes (fun i ->
            Thread.spawn engine ~name:(Printf.sprintf "cpu%d" i) (body i))
      in
      Engine.run engine;
      Array.for_all Thread.finished threads
      && Dirnnb.check_invariants sys = Ok ())

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "dirnnb"
    [
      ( "costs",
        [
          Alcotest.test_case "local clean miss" `Quick test_local_clean_miss_cost;
          Alcotest.test_case "remote clean miss (Table 2)" `Quick
            test_remote_clean_miss_cost;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "write invalidates sharer" `Quick
            test_read_then_write_invalidates_sharer;
          Alcotest.test_case "recall from remote owner" `Quick
            test_recall_from_remote_owner;
          Alcotest.test_case "eviction writeback" `Quick
            test_eviction_writeback_updates_directory;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "round robin" `Quick test_alloc_round_robin;
          Alcotest.test_case "pinned home" `Quick test_alloc_pinned_home;
        ] );
      ("random", [ qc prop_random_program ]);
    ]
