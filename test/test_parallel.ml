(* The domains-parallel conservative engine and its harness integration.

   The determinism contract under test, from strongest to broadest:

   - Mailbox: the SPSC handoff ring delivers FIFO across domains.
   - Domains: per-partition event-key logs (via Engine.set_trace) are
     bit-identical for every domain count, including the 1-domain oracle;
     the lookahead and capacity bounds are enforced.
   - Partitioned Fabric/Flow: a fabric split across partitions delivers
     the same messages at the same times as the single-fabric oracle, and
     credit returns land in the owning partition's Flow.
   - Harness sweeps: scaling / fault / torture grids fan out over domains
     with bit-identical points, and a whole machine simulation is
     domain-relocatable (same cycles when run inside Domain.spawn). *)

module Engine = Tt_sim.Engine
module Mailbox = Tt_sim.Mailbox
module Domains = Tt_sim.Domains
module Fabric = Tt_net.Fabric
module Message = Tt_net.Message
module Reliable = Tt_net.Reliable
module Flow = Tt_net.Flow
module H = Tt_harness

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* ---------------- Mailbox ---------------- *)

let test_mailbox_fifo_and_capacity () =
  let b = Mailbox.create ~capacity:5 ~dummy:(-1) () in
  check_int "capacity rounds up to a power of two" 8 (Mailbox.capacity b);
  check_bool "fresh is empty" true (Mailbox.is_empty b);
  for i = 0 to 7 do
    check_bool "push accepted" true (Mailbox.try_push b i)
  done;
  check_bool "push past capacity refused" false (Mailbox.try_push b 99);
  check_int "length" 8 (Mailbox.length b);
  for i = 0 to 7 do
    check_int "FIFO pop" i (Mailbox.pop_exn b)
  done;
  Alcotest.check_raises "pop on empty"
    (Failure "Mailbox.pop_exn: empty")
    (fun () -> ignore (Mailbox.pop_exn b))

(* head/tail are monotone counters; exercise the ring across several
   wraparounds of the slot array *)
let test_mailbox_wraparound () =
  let b = Mailbox.create ~capacity:4 ~dummy:0 () in
  for round = 0 to 63 do
    for i = 0 to 3 do
      check_bool "push" true (Mailbox.try_push b ((round * 10) + i))
    done;
    for i = 0 to 3 do
      check_int "pop" ((round * 10) + i) (Mailbox.pop_exn b)
    done
  done;
  check_bool "empty after rounds" true (Mailbox.is_empty b)

(* one producer domain, one consumer domain, no barrier: the atomic
   tail/head publication alone must carry every element across intact *)
let test_mailbox_cross_domain () =
  let n = 10_000 in
  let b = Mailbox.create ~capacity:64 ~dummy:(-1) () in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          while not (Mailbox.try_push b i) do
            Domain.cpu_relax ()
          done
        done)
  in
  let got = ref 0 and ok = ref true in
  while !got < n do
    if Mailbox.is_empty b then Domain.cpu_relax ()
    else begin
      if Mailbox.pop_exn b <> !got then ok := false;
      incr got
    end
  done;
  Domain.join producer;
  check_bool "all elements in order" true !ok;
  check_bool "drained" true (Mailbox.is_empty b)

(* ---------------- Domains: bounds ---------------- *)

let test_domains_lookahead_violation () =
  let t = Domains.create ~partitions:2 ~lookahead:11 () in
  (* same-partition posts may be arbitrarily near *)
  Domains.post t ~src:0 ~dst:0 0 (fun () -> ());
  Alcotest.check_raises "cross-partition post below the window"
    (Invalid_argument
       "Domains.post: time 10 from partition 0 (now=0) violates the \
        lookahead window (now + 11)")
    (fun () -> Domains.post t ~src:0 ~dst:1 10 (fun () -> ()))

let test_domains_mailbox_full () =
  let t =
    Domains.create ~partitions:2 ~lookahead:1 ~mailbox_capacity:4 ()
  in
  for _ = 1 to 4 do
    Domains.post t ~src:0 ~dst:1 100 (fun () -> ())
  done;
  check_bool "fifth post overflows" true
    (match Domains.post t ~src:0 ~dst:1 100 (fun () -> ()) with
    | () -> false
    | exception Domains.Mailbox_full _ -> true)

(* a partition event raising must surface here, not deadlock the group *)
let test_domains_error_propagates () =
  List.iter
    (fun domains ->
      (* fresh group per run: the failing event is consumed by firing *)
      let t = Domains.create ~partitions:2 ~lookahead:11 () in
      Engine.at (Domains.engine t 1) 5 (fun () -> failwith "boom");
      check_bool "failure re-raised" true
        (match Domains.run ~domains t with
        | (_ : bool) -> false
        | exception Failure msg -> msg = "boom"))
    [ 1; 2 ]

(* ---------------- Domains: PHOLD determinism ---------------- *)

let phold ?(nodes = 24) ?(partitions = 4) ?(horizon = 8_000) ?(seed = 42)
    domains =
  H.Pdes.run ~seed ~nodes ~partitions ~horizon ~domains ()

let test_phold_domain_count_invariance () =
  let oracle = phold 1 in
  check_bool "oracle drains" true oracle.H.Pdes.drained;
  check_bool "oracle fired events" true (oracle.H.Pdes.total > 0);
  List.iter
    (fun domains ->
      let r = phold domains in
      Alcotest.(check (array int))
        (Printf.sprintf "per-partition log hashes, %d domains" domains)
        oracle.H.Pdes.log_hashes r.H.Pdes.log_hashes;
      Alcotest.(check (array int))
        (Printf.sprintf "per-node counts, %d domains" domains)
        oracle.H.Pdes.counts r.H.Pdes.counts;
      check_int
        (Printf.sprintf "final time, %d domains" domains)
        oracle.H.Pdes.final_time r.H.Pdes.final_time;
      check_int
        (Printf.sprintf "epochs, %d domains" domains)
        oracle.H.Pdes.epochs r.H.Pdes.epochs)
    [ 2; 3; 4; 7 ]

(* partition count changes the schedule split but may not change what any
   node does or when the simulation ends *)
let test_phold_partition_count_invariance () =
  let oracle = phold ~partitions:1 1 in
  List.iter
    (fun partitions ->
      let r = phold ~partitions 2 in
      Alcotest.(check (array int))
        (Printf.sprintf "per-node counts, %d partitions" partitions)
        oracle.H.Pdes.counts r.H.Pdes.counts;
      check_int
        (Printf.sprintf "final time, %d partitions" partitions)
        oracle.H.Pdes.final_time r.H.Pdes.final_time)
    [ 2; 3; 4 ]

(* random schedules: the parallel drain must match the 1-domain oracle on
   every (nodes, partitions, seed, horizon) draw *)
let prop_phold_parallel_matches_oracle =
  QCheck.Test.make ~name:"parallel PHOLD event logs match the 1-domain oracle"
    ~count:25
    QCheck.(
      quad (int_range 2 24) (int_range 1 6) (int_range 0 1000)
        (int_range 500 4000))
    (fun (nodes, partitions, seed, horizon) ->
      let go domains =
        let r = H.Pdes.run ~seed ~nodes ~partitions ~horizon ~domains () in
        (r.H.Pdes.log_hashes, r.H.Pdes.counts, r.H.Pdes.final_time,
         r.H.Pdes.epochs)
      in
      go 1 = go 3)

(* ---------------- Partitioned fabric vs single-fabric oracle -------- *)

(* A ring of relaying receivers: node i counts each arrival and forwards
   to node i+1 until the hop budget is spent.  Run once on a single
   fabric, once split over two partitions with the remote-handoff glue,
   and demand identical per-node arrival logs (time and hop count). *)
let relay_workload ~nodes ~latency ~hops ~kickoffs =
  let single () =
    let e = Engine.create () in
    let f = Fabric.create e ~nodes ~latency () in
    let log = Array.make nodes [] in
    for node = 0 to nodes - 1 do
      Fabric.set_receiver f ~node (fun msg ->
          let h = msg.Message.args.(0) in
          log.(node) <- (Engine.now e, h) :: log.(node);
          if h > 0 then
            Fabric.send f ~at:(Engine.now e)
              (Message.make ~src:node ~dst:((node + 1) mod nodes)
                 ~vnet:Message.Request ~handler:0
                 ~args:[| h - 1 |] ()))
    done;
    List.iter
      (fun (src, at) ->
        Fabric.send f ~at
          (Message.make ~src ~dst:((src + 1) mod nodes)
             ~vnet:Message.Request ~handler:0 ~args:[| hops |] ()))
      kickoffs;
    Engine.run e;
    log
  in
  let partitioned domains =
    let parts = 2 in
    let part_of n = n mod parts in
    let t = Domains.create ~partitions:parts ~lookahead:latency () in
    let log = Array.make nodes [] in
    let fabrics =
      Array.init parts (fun p ->
          Fabric.create (Domains.engine t p) ~nodes ~latency ())
    in
    Array.iteri
      (fun p f ->
        Fabric.set_partition f
          ~local:(fun n -> part_of n = p)
          ~remote:(fun ~at msg ->
            let dst = part_of msg.Message.dst in
            let arrive = at + latency in
            Domains.post t ~src:p ~dst arrive (fun () ->
                Fabric.inject fabrics.(dst) ~at:arrive msg)))
      fabrics;
    for node = 0 to nodes - 1 do
      let p = part_of node in
      let f = fabrics.(p) in
      Fabric.set_receiver f ~node (fun msg ->
          let h = msg.Message.args.(0) in
          log.(node) <- (Engine.now (Domains.engine t p), h) :: log.(node);
          if h > 0 then
            Fabric.send f
              ~at:(Engine.now (Domains.engine t p))
              (Message.make ~src:node ~dst:((node + 1) mod nodes)
                 ~vnet:Message.Request ~handler:0
                 ~args:[| h - 1 |] ()))
    done;
    List.iter
      (fun (src, at) ->
        Fabric.send fabrics.(part_of src) ~at
          (Message.make ~src ~dst:((src + 1) mod nodes)
             ~vnet:Message.Request ~handler:0 ~args:[| hops |] ()))
      kickoffs;
    check_bool "partitioned run drains" true (Domains.run ~domains t);
    log
  in
  (single (), partitioned)

let test_partitioned_fabric_matches_oracle () =
  let nodes = 6 and latency = 11 in
  (* two concurrent relay chains from different sources, plus a same-time
     pair racing into one destination *)
  let kickoffs = [ (0, 0); (3, 0); (1, 5) ] in
  let oracle, partitioned =
    relay_workload ~nodes ~latency ~hops:40 ~kickoffs
  in
  List.iter
    (fun domains ->
      let got = partitioned domains in
      for node = 0 to nodes - 1 do
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "node %d arrival log (%d domains)" node domains)
          oracle.(node) got.(node)
      done)
    [ 1; 2 ]

(* ---------------- Flow: remote credit return ---------------- *)

let make_flow e =
  let f = Fabric.create e ~nodes:4 ~latency:11 () in
  let net = Reliable.create e f Reliable.Perfect in
  Flow.create net ~nodes:4 ~request_credits:3 ~response_credits:3
    ~spill_capacity:8 ~spill_cost:0 ~drain_cost:0 ~status_cost:0 ()

let test_flow_remote_credit_forwarded () =
  let e = Engine.create () in
  (* partition 0 owns even nodes, partition 1 odd; one Flow each *)
  let fl = Array.init 2 (fun _ -> make_flow e) in
  let forwarded = ref [] in
  Array.iteri
    (fun p f ->
      Flow.set_remote f
        ~owner:(fun n -> n mod 2 = p)
        ~forward:(fun ~src ~dst vnet ->
          forwarded := (p, src, dst) :: !forwarded;
          Flow.credit_return fl.(src mod 2) ~src ~dst vnet))
    fl;
  (* consume a credit for src=1 (odd, partition 1) out of its own Flow,
     then return it through partition 0's instance: it must be forwarded,
     not absorbed locally *)
  let level f = Flow.credit_level f ~src:1 ~dst:2 Message.Request in
  let before = level fl.(1) in
  Flow.credit_return fl.(0) ~src:1 ~dst:2 Message.Request;
  check_int "forwarded exactly once" 1 (List.length !forwarded);
  check_bool "routed via the non-owner" true
    (List.hd !forwarded = (0, 1, 2));
  check_int "credit landed in the owner instance" (before + 1) (level fl.(1));
  check_int "non-owner instance untouched" before (level fl.(0));
  (* owned returns stay local *)
  Flow.credit_return fl.(0) ~src:2 ~dst:1 Message.Request;
  check_int "no forward for an owned src" 1 (List.length !forwarded)

(* ---------------- Harness sweeps: parallel parity ---------------- *)

let strip_cpu (p : H.Scaling.point) =
  (p.H.Scaling.app, p.H.Scaling.nodes, p.H.Scaling.dirnnb_cycles,
   p.H.Scaling.stache_cycles)

let test_scaling_parallel_parity () =
  let sweep domains =
    H.Scaling.run ~apps:[ "em3d"; "ocean" ] ~nodes:[ 4; 8 ] ~scale:0.05
      ~cache_kb:256 ~domains ()
    |> List.map strip_cpu
  in
  let seq = sweep 0 in
  check_int "grid size" 4 (List.length seq);
  check_bool "parallel sweep bit-identical" true (seq = sweep 3)

let test_faultsweep_parallel_parity () =
  let sweep domains =
    H.Faultsweep.run ~apps:[ "em3d"; "mp3d" ] ~drops:[ 0.05 ] ~seeds:[ 1 ]
      ~scale:0.05 ~nodes:4 ~domains ()
  in
  let seq = sweep 0 in
  check_int "grid size" 2 (List.length seq);
  check_bool "every cell passed" true (H.Faultsweep.all_passed seq);
  check_bool "parallel sweep bit-identical" true (seq = sweep 2)

let test_torture_parallel_parity () =
  let module T = Tt_torture.Torture in
  let cases =
    T.grid
      ~litmus:[ "SB"; "MP" ]
      ~machines:[ "stache" ] ~drops:[ 0.0 ] ~seeds:[ 1; 2 ] ~iters:2
      ~perturb_rate:0.25 ()
  in
  let seq = T.run_grid cases in
  check_bool "grid has cases" true (List.length seq > 0);
  check_bool "parallel grid bit-identical" true (seq = T.run_grid ~domains:3 cases)

(* A whole machine simulation must be domain-relocatable: running the same
   pinned round trip inside a fresh Domain.spawn (fresh DLS: message-pool
   freelists, scratch arrays) must cost the identical simulated cycles. *)
let round_trip () =
  let params = { Params.default with Params.nodes = 4 } in
  let machine = H.Machine.typhoon_stache params in
  let base = ref 0 in
  let r =
    H.Run.spmd machine ~name:"relocate" ~check:false (fun env ->
        if env.Tt_app.Env.proc = 0 then
          base := env.Tt_app.Env.alloc ~home:0 512;
        env.Tt_app.Env.barrier ();
        if env.Tt_app.Env.proc = 1 then
          for w = 0 to 63 do
            ignore (env.Tt_app.Env.read (!base + (w * 8)))
          done)
  in
  r.H.Run.cycles

let test_machine_sim_domain_relocatable () =
  let here = round_trip () in
  let there = Domain.join (Domain.spawn round_trip) in
  check_int "identical cycles on a worker domain" here there;
  (* and concurrently with the main domain also simulating *)
  let d = Domain.spawn round_trip in
  let here2 = round_trip () in
  let there2 = Domain.join d in
  check_int "identical cycles under concurrent simulations (main)" here here2;
  check_int "identical cycles under concurrent simulations (worker)" here
    there2

let () =
  Alcotest.run "parallel"
    [
      ( "mailbox",
        [
          Alcotest.test_case "FIFO and capacity" `Quick
            test_mailbox_fifo_and_capacity;
          Alcotest.test_case "wraparound" `Quick test_mailbox_wraparound;
          Alcotest.test_case "cross-domain SPSC" `Quick
            test_mailbox_cross_domain;
        ] );
      ( "domains",
        [
          Alcotest.test_case "lookahead violation rejected" `Quick
            test_domains_lookahead_violation;
          Alcotest.test_case "mailbox capacity bound" `Quick
            test_domains_mailbox_full;
          Alcotest.test_case "partition failure propagates" `Quick
            test_domains_error_propagates;
          Alcotest.test_case "PHOLD invariant across domain counts" `Quick
            test_phold_domain_count_invariance;
          Alcotest.test_case "PHOLD invariant across partition counts" `Quick
            test_phold_partition_count_invariance;
          QCheck_alcotest.to_alcotest prop_phold_parallel_matches_oracle;
        ] );
      ( "partitioned net",
        [
          Alcotest.test_case "fabric matches single-fabric oracle" `Quick
            test_partitioned_fabric_matches_oracle;
          Alcotest.test_case "remote credit return forwarded" `Quick
            test_flow_remote_credit_forwarded;
        ] );
      ( "harness",
        [
          Alcotest.test_case "scaling sweep parity" `Slow
            test_scaling_parallel_parity;
          Alcotest.test_case "fault sweep parity" `Slow
            test_faultsweep_parallel_parity;
          Alcotest.test_case "torture grid parity" `Slow
            test_torture_parallel_parity;
          Alcotest.test_case "machine sim is domain-relocatable" `Quick
            test_machine_sim_domain_relocatable;
        ] );
    ]
