(* Whole-suite invariant: pool-debug mode poisons released pool buffers
   and rejects double-release (satellite of the zero-allocation PR). *)
let () = Tt_util.Debug.set_pool_debug true

(* Tests for active messages and the interconnect. *)

module Engine = Tt_sim.Engine
module Message = Tt_net.Message
module Fabric = Tt_net.Fabric
module Faults = Tt_net.Faults
module Reliable = Tt_net.Reliable
module Stats = Tt_util.Stats

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let msg ?(src = 0) ?(dst = 1) ?(vnet = Message.Request) ?(handler = 0)
    ?(args = [||]) ?(data = Bytes.empty) () =
  Message.make ~src ~dst ~vnet ~handler ~args ~data ()

(* ---------------- Message ---------------- *)

let test_message_word_accounting () =
  check_int "handler only" 1 (Message.words (msg ()));
  check_int "args count" 4 (Message.words (msg ~args:[| 1; 2; 3 |] ()));
  check_int "data rounds up" (1 + 2)
    (Message.words (msg ~data:(Bytes.create 5) ()));
  check_int "32-byte block" 9 (Message.words (msg ~data:(Bytes.create 32) ()))

let test_message_packet_limit () =
  (* 1 + 3 + 16 = 20 words: exactly the Typhoon maximum *)
  ignore (msg ~args:[| 1; 2; 3 |] ~data:(Bytes.create 64) ());
  try
    ignore (msg ~args:[| 1; 2; 3; 4 |] ~data:(Bytes.create 64) ());
    Alcotest.fail "over-limit packet must raise"
  with Invalid_argument _ -> ()

(* ---------------- Fabric ---------------- *)

let mk_fabric ?(nodes = 4) ?(latency = 11) () =
  let e = Engine.create () in
  (e, Fabric.create e ~nodes ~latency ())

let test_fabric_delivery_time () =
  let e, f = mk_fabric () in
  let arrival = ref (-1) in
  Fabric.set_receiver f ~node:1 (fun _ -> arrival := Engine.now e);
  Fabric.send f ~at:100 (msg ());
  Engine.run e;
  check_int "arrives at send + latency" 111 !arrival

let test_fabric_local_short_circuit () =
  let e, f = mk_fabric () in
  let arrival = ref (-1) in
  Fabric.set_receiver f ~node:0 (fun _ -> arrival := Engine.now e);
  Fabric.send f ~at:50 (msg ~dst:0 ());
  Engine.run e;
  check_int "local latency 1" 51 !arrival;
  check_int "local counted" 1 (Stats.get (Fabric.stats f) "msgs.local")

let test_fabric_pairwise_fifo () =
  let e, f = mk_fabric () in
  let log = ref [] in
  Fabric.set_receiver f ~node:1 (fun m -> log := m.Message.handler :: !log);
  (* same source, increasing send times: must arrive in order *)
  Fabric.send f ~at:10 (msg ~handler:1 ());
  Fabric.send f ~at:11 (msg ~handler:2 ());
  Fabric.send f ~at:11 (msg ~handler:3 ());
  Engine.run e;
  Alcotest.(check (list int)) "FIFO" [ 1; 2; 3 ] (List.rev !log)

let test_fabric_stats () =
  let e, f = mk_fabric () in
  Fabric.set_receiver f ~node:1 (fun _ -> ());
  Fabric.send f ~at:0 (msg ~vnet:Message.Request ~args:[| 1 |] ());
  Fabric.send f ~at:0 (msg ~vnet:Message.Response ~data:(Bytes.create 32) ());
  Engine.run e;
  let s = Fabric.stats f in
  check_int "request msgs" 1 (Stats.get s "msgs.request");
  check_int "response msgs" 1 (Stats.get s "msgs.response");
  check_int "request words" 2 (Stats.get s "words.request");
  check_int "response words" 9 (Stats.get s "words.response")

let test_fabric_no_receiver () =
  let e, f = mk_fabric () in
  Fabric.send f ~at:0 (msg ~dst:2 ());
  try
    Engine.run e;
    Alcotest.fail "missing receiver must raise"
  with Invalid_argument _ -> ()

let test_fabric_bad_destination () =
  let _, f = mk_fabric ~nodes:2 () in
  try
    Fabric.send f ~at:0 (msg ~dst:7 ());
    Alcotest.fail "bad destination must raise"
  with Invalid_argument _ -> ()

let test_fabric_no_receiver_message () =
  (* the error fires inside the delivery event, long after the send call
     site: it must name the message so the offender is diagnosable *)
  let e, f = mk_fabric () in
  Fabric.send f ~at:0 (msg ~src:0 ~dst:2 ~handler:5 ());
  match Engine.run e with
  | () -> Alcotest.fail "missing receiver must raise"
  | exception Invalid_argument m ->
      check_bool "names src" true (contains m "src=0");
      check_bool "names dst" true (contains m "dst=2");
      check_bool "names handler" true (contains m "handler=5")

let test_fabric_bad_source () =
  let _, f = mk_fabric ~nodes:2 () in
  (match Fabric.send f ~at:0 (msg ~src:7 ~dst:1 ()) with
  | () -> Alcotest.fail "bad source must raise"
  | exception Invalid_argument m ->
      check_bool "says bad source" true (contains m "bad source"));
  (match Fabric.send f ~at:0 (msg ~src:(-1) ~dst:1 ()) with
  | () -> Alcotest.fail "negative source must raise"
  | exception Invalid_argument m ->
      check_bool "says bad source" true (contains m "bad source"));
  (* in bandwidth mode a bad src used to index port_free out of bounds;
     it must now fail the same validation before touching the array *)
  let e = Engine.create () in
  let f = Fabric.create e ~nodes:2 ~latency:11 ~words_per_cycle:1 () in
  match Fabric.send f ~at:0 (msg ~src:7 ~dst:1 ()) with
  | () -> Alcotest.fail "bad source must raise in bandwidth mode"
  | exception Invalid_argument m ->
      check_bool "says bad source" true (contains m "bad source")

(* Property test: the bandwidth/contention accounting agrees with an
   independent shadow model — port_free entries are monotone, deliveries
   never precede depart + latency, and port_wait_cycles is exactly the sum
   of the observed waits. *)
let test_fabric_bandwidth_property =
  let gen =
    QCheck.Gen.(
      let* nodes = 2 -- 4 in
      let* w = 1 -- 4 in
      let* sends =
        list_size (1 -- 40)
          (quad (0 -- 100) (0 -- 100) (0 -- 10) (0 -- 30))
      in
      return (nodes, w, sends))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200
       ~name:"bandwidth accounting matches shadow model"
       (QCheck.make gen) (fun (nodes, w, sends) ->
         let lat = 11 in
         let e = Engine.create () in
         let f = Fabric.create e ~nodes ~latency:lat ~words_per_cycle:w () in
         let arrivals = Hashtbl.create 64 in
         for n = 0 to nodes - 1 do
           Fabric.set_receiver f ~node:n (fun m ->
               Hashtbl.replace arrivals m.Message.handler (Engine.now e))
         done;
         let port_free = Array.make nodes 0 in
         let expected = Hashtbl.create 64 in
         let floors = Hashtbl.create 64 in
         let wait_sum = ref 0 in
         let t = ref 0 in
         List.iteri
           (fun i (s, d, nargs, gap) ->
             let src = s mod nodes in
             let dst =
               let d = d mod nodes in
               if d = src then (src + 1) mod nodes else d
             in
             t := !t + gap;
             let at = !t in
             let m =
               Message.make ~src ~dst ~vnet:Message.Request ~handler:i
                 ~args:(Array.make nargs 0) ()
             in
             (* shadow accounting *)
             let occupancy = (Message.words m + w - 1) / w in
             let depart = max at port_free.(src) in
             assert (depart + occupancy >= port_free.(src)) (* monotone *);
             port_free.(src) <- depart + occupancy;
             let arrive = max (depart + lat) port_free.(dst) in
             assert (arrive + occupancy >= port_free.(dst)) (* monotone *);
             port_free.(dst) <- arrive + occupancy;
             wait_sum := !wait_sum + (depart - at) + (arrive - (depart + lat));
             Hashtbl.replace expected i (arrive + occupancy);
             Hashtbl.replace floors i (depart + lat);
             Fabric.send f ~at m)
           sends;
         Engine.run e;
         Hashtbl.iter
           (fun i want ->
             let got = Hashtbl.find arrivals i in
             if got <> want then
               QCheck.Test.fail_reportf
                 "message %d delivered at %d, shadow model says %d" i got want;
             if got < Hashtbl.find floors i then
               QCheck.Test.fail_reportf
                 "message %d delivered at %d, before depart + latency %d" i got
                 (Hashtbl.find floors i))
           expected;
         let waited = Stats.get (Fabric.stats f) "port_wait_cycles" in
         if waited <> !wait_sum then
           QCheck.Test.fail_reportf
             "port_wait_cycles %d, shadow model says %d" waited !wait_sum;
         true))

(* ---------------- Faults ---------------- *)

let faulty_run ~seed () =
  let e = Engine.create () in
  let f = Fabric.create e ~nodes:2 ~latency:11 () in
  let fl =
    Faults.create
      (Faults.uniform ~seed ~drop:0.2 ~dup:0.1 ~reorder:0.2 ())
      f
  in
  let log = ref [] in
  Fabric.set_receiver f ~node:1 (fun m ->
      log := (m.Message.handler, Engine.now e) :: !log);
  Fabric.set_receiver f ~node:0 (fun _ -> ());
  for i = 0 to 199 do
    Faults.send fl ~at:(i * 3) (msg ~handler:i ())
  done;
  Engine.run e;
  let s = Faults.stats fl in
  ( List.rev !log,
    Stats.get s "faults.dropped",
    Stats.get s "faults.duplicated",
    Stats.get s "faults.reordered" )

let test_faults_reproducible () =
  let log_a, d_a, u_a, r_a = faulty_run ~seed:42 () in
  let log_b, d_b, u_b, r_b = faulty_run ~seed:42 () in
  check_bool "same seed, same deliveries" true (log_a = log_b);
  check_int "same dropped" d_a d_b;
  check_int "same duplicated" u_a u_b;
  check_int "same reordered" r_a r_b;
  check_bool "faults actually injected" true (d_a > 0 && u_a > 0 && r_a > 0);
  check_int "drops + deliveries account for every send"
    (200 + u_a) (List.length log_a + d_a)

(* Seed-stability regression (pinned): the PRNG draw order documented in
   faults.mli — drop first; survivors draw reorder chance, reorder jitter
   iff hit, dup chance, dup jitter iff hit — determines every recorded
   fault pattern.  Reordering the draws would silently rewrite them all, so
   the exact counter triple for this known traffic sequence is pinned here.
   If this test fails, the fault model's stream contract changed: every
   recorded torture artifact and faultsweep baseline is invalidated. *)
let test_faults_seed_stability () =
  let _, d, u, r = faulty_run ~seed:42 () in
  check_int "dropped (pinned)" 39 d;
  check_int "duplicated (pinned)" 16 u;
  check_int "reordered (pinned)" 39 r

let decisions_under_tap ~mask () =
  let e = Engine.create () in
  let f = Fabric.create e ~nodes:2 ~latency:11 () in
  let fl =
    Faults.create
      (Faults.uniform ~seed:42 ~drop:0.2 ~dup:0.1 ~reorder:0.2 ())
      f
  in
  let naturals = ref [] in
  Faults.set_tap fl
    (Some
       (fun ~site d ->
         naturals := (site, d) :: !naturals;
         if mask then Faults.deliver else d));
  Fabric.set_receiver f ~node:1 (fun _ -> ());
  for i = 0 to 99 do
    Faults.send fl ~at:(i * 3) (msg ~handler:i ())
  done;
  Engine.run e;
  (List.rev !naturals, Faults.dropped fl)

let test_faults_tap_stream_alignment () =
  (* the tap contract: the PRNG is consumed identically whether decisions
     are applied or masked, so a masking tap (the torture shrinker's probe
     mechanism) sees exactly the natural run's decision stream *)
  let nat, d_nat = decisions_under_tap ~mask:false () in
  let masked, d_masked = decisions_under_tap ~mask:true () in
  check_bool "masking never shifts later draws" true (nat = masked);
  check_bool "natural run applied faults" true (d_nat > 0);
  check_int "masked run applied none" 0 d_masked

let test_faults_per_vnet_rates () =
  (* a dead request net under a clean response net: only requests vanish *)
  let e = Engine.create () in
  let f = Fabric.create e ~nodes:2 ~latency:11 () in
  let cfg =
    Faults.per_vnet ~seed:9
      ~request:{ Faults.drop = 1.0; dup = 0.0; reorder = 0.0 }
      ~response:Faults.no_faults ()
  in
  let fl = Faults.create cfg f in
  let got = ref 0 in
  Fabric.set_receiver f ~node:1 (fun _ -> incr got);
  for i = 0 to 9 do
    Faults.send fl ~at:i (msg ~handler:i ~vnet:Message.Request ());
    Faults.send fl ~at:i (msg ~handler:(100 + i) ~vnet:Message.Response ())
  done;
  Engine.run e;
  check_int "responses delivered" 10 !got;
  check_int "requests dropped" 10 (Faults.dropped fl)

let test_faults_full_drop () =
  let e = Engine.create () in
  let f = Fabric.create e ~nodes:2 ~latency:11 () in
  let fl = Faults.create (Faults.uniform ~seed:1 ~drop:1.0 ()) f in
  let got = ref 0 in
  Fabric.set_receiver f ~node:1 (fun _ -> incr got);
  for i = 0 to 49 do
    Faults.send fl ~at:i (msg ~handler:i ())
  done;
  Engine.run e;
  check_int "nothing delivered" 0 !got;
  check_int "all dropped" 50 (Faults.dropped fl)

(* ---------------- Gilbert–Elliott bursty loss ---------------- *)

let bursty_run ?burst ~seed () =
  let e = Engine.create () in
  let f = Fabric.create e ~nodes:2 ~latency:11 () in
  let fl =
    Faults.create
      (Faults.uniform ~seed ~drop:0.05 ~dup:0.02 ~reorder:0.05 ?burst ())
      f
  in
  let log = ref [] in
  Fabric.set_receiver f ~node:1 (fun m ->
      log := (m.Message.handler, Engine.now e) :: !log);
  Fabric.set_receiver f ~node:0 (fun _ -> ());
  for i = 0 to 399 do
    Faults.send fl ~at:(i * 3) (msg ~handler:i ())
  done;
  Engine.run e;
  let s = Faults.stats fl in
  ( List.rev !log,
    Stats.get s "faults.dropped",
    Stats.get s "faults.duplicated",
    Stats.get s "faults.reordered",
    Stats.get s "faults.burst_bad_sends" )

let test_burst_reproducible () =
  let a = bursty_run ~burst:(Faults.bursty ()) ~seed:42 () in
  let b = bursty_run ~burst:(Faults.bursty ()) ~seed:42 () in
  check_bool "same seed, same burst pattern" true (a = b);
  let _, d, _, _, bad = a in
  check_bool "bad states entered" true (bad > 0);
  check_bool "bursts actually dropped" true (d > 0)

let test_burst_scale_one_is_draw_identical () =
  (* the burst chain draws from private per-link streams; with both scales
     at 1.0 the effective rates are the plain rates, so the delivery log
     and every fault counter must match the no-burst run draw for draw —
     the contract that lets recorded artifacts survive the burst knob *)
  let neutral =
    Faults.bursty ~p_enter:0.05 ~p_exit:0.25 ~good_scale:1.0 ~bad_scale:1.0 ()
  in
  let log_b, d_b, u_b, r_b, _ = bursty_run ~burst:neutral ~seed:42 () in
  let log_p, d_p, u_p, r_p, bad_p = bursty_run ~seed:42 () in
  check_bool "delivery log identical" true (log_b = log_p);
  check_int "dropped identical" d_p d_b;
  check_int "duplicated identical" u_p u_b;
  check_int "reordered identical" r_p r_b;
  check_int "plain run never enters a bad state" 0 bad_p

let test_burst_differs_from_plain () =
  let log_b, _, _, _, _ = bursty_run ~burst:(Faults.bursty ()) ~seed:42 () in
  let log_p, _, _, _, _ = bursty_run ~seed:42 () in
  check_bool "default burst changes the fault pattern" true (log_b <> log_p)

(* ---------------- Reliable ---------------- *)

let mk_reliable ?(nodes = 2) ?(drop = 0.0) ?(dup = 0.0) ?(reorder = 0.0)
    ?(seed = 1) ?max_retries () =
  let e = Engine.create () in
  let f = Fabric.create e ~nodes ~latency:11 () in
  let cfg = Faults.uniform ~seed ~drop ~dup ~reorder () in
  (e, Reliable.create ?max_retries e f (Reliable.Flaky cfg))

let test_reliable_exactly_once_in_order () =
  (* heavy drop + dup + reorder on both vnets: the receiver must still see
     every message exactly once, in send order (pair FIFO spans vnets) *)
  let e, r = mk_reliable ~drop:0.3 ~dup:0.2 ~reorder:0.3 ~seed:7 () in
  let got = ref [] in
  Reliable.set_receiver r ~node:1 (fun m -> got := m.Message.handler :: !got);
  Reliable.set_receiver r ~node:0 (fun _ -> ());
  let n = 200 in
  for i = 0 to n - 1 do
    let vnet = if i mod 3 = 0 then Message.Response else Message.Request in
    Reliable.send r ~at:(i * 2) (msg ~handler:i ~vnet ())
  done;
  Engine.run e;
  Alcotest.(check (list int))
    "exactly once, in order"
    (List.init n (fun i -> i))
    (List.rev !got);
  check_bool "losses were repaired by retransmission" true
    (Reliable.retransmits r > 0)

let test_reliable_link_failed () =
  let e, r = mk_reliable ~drop:1.0 ~max_retries:3 () in
  Reliable.set_receiver r ~node:1 (fun _ -> ());
  Reliable.set_receiver r ~node:0 (fun _ -> ());
  Reliable.send r ~at:0 (msg ());
  match Engine.run e with
  | () -> Alcotest.fail "dead link must escalate"
  | exception Reliable.Link_failed m ->
      check_bool "names the link" true (contains m "0->1")

(* Direct edge-path tests below use a tap on the wrapped injector to force
   one precise fault pattern (rates stay 0, so every untapped site is a
   clean delivery). *)
let mk_reliable_tuned ?base_rto ?rto_cap ?max_retries ?window ?(seed = 1) () =
  let e = Engine.create () in
  let f = Fabric.create e ~nodes:2 ~latency:11 () in
  let r =
    Reliable.create ?base_rto ?rto_cap ?max_retries ?window e f
      (Reliable.Flaky (Faults.uniform ~seed ()))
  in
  (e, r, Option.get (Reliable.faults r))

let test_reliable_window_full_drops () =
  (* delay the first message past the retransmit timeout: with a 2-entry
     reassembly window, seqs 2..4 arrive out of range and must be dropped
     without acking, then repaired by the sender's retransmission *)
  let e, r, fl = mk_reliable_tuned ~window:2 () in
  Faults.set_tap fl
    (Some
       (fun ~site d ->
         if site = 0 then { d with Faults.reorder_jitter = 2000 } else d));
  let got = ref [] in
  Reliable.set_receiver r ~node:1 (fun m -> got := m.Message.handler :: !got);
  Reliable.set_receiver r ~node:0 (fun _ -> ());
  for i = 0 to 4 do
    Reliable.send r ~at:i (msg ~handler:i ())
  done;
  Engine.run e;
  Alcotest.(check (list int))
    "exactly once, in order despite window drops" [ 0; 1; 2; 3; 4 ]
    (List.rev !got);
  check_int "beyond-window arrivals refused" 3
    (Stats.get (Reliable.stats r) "reliable.window_drops");
  check_bool "late original suppressed as duplicate" true
    (Stats.get (Reliable.stats r) "reliable.dup_dropped" >= 1)

let dead_link_timing ~rto_cap =
  let e, r, fl = mk_reliable_tuned ~base_rto:100 ~rto_cap ~max_retries:3 () in
  Faults.set_tap fl
    (Some
       (fun ~site:_ _ ->
         { Faults.dropped = true; reorder_jitter = 0; dup_jitter = 0 }));
  Reliable.set_receiver r ~node:1 (fun _ -> ());
  Reliable.set_receiver r ~node:0 (fun _ -> ());
  Reliable.send r ~at:0 (msg ());
  match Engine.run e with
  | () -> Alcotest.fail "dead link must escalate"
  | exception Reliable.Link_failed m ->
      check_bool "names the link" true (contains m "0->1");
      (Engine.now e, Reliable.retransmits r)

let test_reliable_backoff_cap () =
  (* base_rto 100, max_retries 3.  Uncapped the retry timers double:
     100, 300, 700, then give up at 1500.  Capped at 200 they flatten:
     100, 300, 500, give up at 700.  Both fail after exactly max_retries
     retransmit rounds. *)
  let t_uncapped, rx_uncapped = dead_link_timing ~rto_cap:100_000 in
  let t_capped, rx_capped = dead_link_timing ~rto_cap:200 in
  check_int "uncapped exponential backoff" 1_500 t_uncapped;
  check_int "capped backoff flattens" 700 t_capped;
  check_int "uncapped: max_retries rounds" 3 rx_uncapped;
  check_int "capped: max_retries rounds" 3 rx_capped

let test_reliable_dup_of_retransmit () =
  (* the original is delayed past the RTO, so the retransmitted copy is
     delivered first; the late original must be suppressed as a duplicate *)
  let e, r, fl = mk_reliable_tuned () in
  Faults.set_tap fl
    (Some
       (fun ~site d ->
         if site = 0 then { d with Faults.reorder_jitter = 1000 } else d));
  let got = ref 0 in
  Reliable.set_receiver r ~node:1 (fun _ -> incr got);
  Reliable.set_receiver r ~node:0 (fun _ -> ());
  Reliable.send r ~at:0 (msg ());
  Engine.run e;
  check_int "delivered exactly once" 1 !got;
  check_int "one retransmission" 1 (Reliable.retransmits r);
  check_int "late original dropped as dup" 1
    (Stats.get (Reliable.stats r) "reliable.dup_dropped")

let test_reliable_perfect_passthrough () =
  (* Perfect policy is an exact Fabric pass-through: same arrival time, no
     transport envelope *)
  let e = Engine.create () in
  let f = Fabric.create e ~nodes:2 ~latency:11 () in
  let r = Reliable.create e f Reliable.Perfect in
  let arrival = ref (-1) and seq = ref 0 in
  Reliable.set_receiver r ~node:1 (fun m ->
      arrival := Engine.now e;
      seq := m.Message.seq);
  Reliable.send r ~at:100 (msg ());
  Engine.run e;
  check_int "fabric timing" 111 !arrival;
  check_int "unsequenced" (-1) !seq;
  check_int "no transport traffic" 0
    (Stats.get (Reliable.stats r) "reliable.data_sent")

(* ---------------- crash-stop failures ---------------- *)

(* Tests that inject crash windows must hold the recovery switch on for
   their duration: the suite also runs under TT_RECOVERY=0 (see
   scripts/check_recovery.sh), where [Faults.create] would otherwise
   ignore the schedule and the window under test would never open. *)
let with_recovery_on f () =
  let prior = Faults.recovery_enabled () in
  Fun.protect
    ~finally:(fun () -> Faults.set_recovery prior)
    (fun () ->
      Faults.set_recovery true;
      f ())

let test_bidirectional_link_failed () =
  (* both directions of a pair exhaust their retry budgets against a 100%
     lossy fabric at the same time: the escalation must still be a single
     deterministic Link_failed naming one link, not a race *)
  let failure () =
    let e, r = mk_reliable ~drop:1.0 ~max_retries:3 () in
    Reliable.set_receiver r ~node:1 (fun _ -> ());
    Reliable.set_receiver r ~node:0 (fun _ -> ());
    Reliable.send r ~at:0 (msg ~src:0 ~dst:1 ());
    Reliable.send r ~at:0 (msg ~src:1 ~dst:0 ());
    match Engine.run e with
    | () -> Alcotest.fail "two dead links must escalate"
    | exception Reliable.Link_failed m -> m
  in
  let first = failure () in
  Alcotest.(check string) "deterministic loser" first (failure ());
  check_bool "names a link" true (contains first "->")

let test_dead_peer_parks_without_retransmits () =
  (* satellite guarantee: once the liveness verdict says the destination
     is dead, retransmissions toward it stop counting against the
     watchdog's budget — the channel parks, the death notice fires, and
     the held queue replays only at the revival verdict (counted under
     rejoin_retransmits instead) *)
  let e, r, fl = mk_reliable_tuned ~base_rto:100 () in
  let dead = ref true in
  Reliable.set_liveness r ~is_dead:(fun n -> !dead && n = 1);
  let notices = ref [] in
  Reliable.set_death_notice r
    (Some (fun ~src ~dst -> notices := (src, dst) :: !notices));
  Faults.set_tap fl
    (Some
       (fun ~site:_ d ->
         if !dead then { d with Faults.dropped = true } else d));
  let got = ref 0 in
  Reliable.set_receiver r ~node:1 (fun _ -> incr got);
  Reliable.set_receiver r ~node:0 (fun _ -> ());
  Reliable.send r ~at:0 (msg ());
  Engine.at e 5_000 (fun () ->
      dead := false;
      Faults.set_tap fl None;
      Reliable.on_peer_alive r ~node:1);
  Engine.run e;
  check_int "delivered after revival" 1 !got;
  check_int "no budget-counted retransmits" 0 (Reliable.retransmits r);
  check_bool "replay counted separately" true
    (Stats.get (Reliable.stats r) "reliable.rejoin_retransmits" >= 1);
  Alcotest.(check (list (pair int int))) "one death notice" [ (0, 1) ] !notices

let test_peer_dead_raises_without_recovery () =
  (* no recovery layer listening: the dead-peer encounter must escalate
     promptly as Peer_dead, not grind through a retransmission storm *)
  let e, r, _ = mk_reliable_tuned () in
  Reliable.set_liveness r ~is_dead:(fun n -> n = 1);
  Reliable.set_receiver r ~node:1 (fun _ -> ());
  Reliable.set_receiver r ~node:0 (fun _ -> ());
  match
    Reliable.send r ~at:0 (msg ());
    Engine.run e
  with
  | () -> Alcotest.fail "dead peer must escalate"
  | exception Reliable.Peer_dead m ->
      check_bool "names the peer" true (contains m "1");
      check_int "promptly: no retransmission storm" 0 (Reliable.retransmits r)

let test_crash_window_heals_after_rejoin () =
  (* victim 1 is down for cycles [0, 2000): sends toward it are swallowed
     at delivery, its own sends at the source; after the rejoin, ordinary
     retransmission repairs both directions without any death verdict —
     the sub-lease "masked outage" path *)
  let e = Engine.create () in
  let f = Fabric.create e ~nodes:2 ~latency:11 () in
  let cfg =
    Faults.uniform ~seed:1
      ~crashes:[ Faults.crash ~victim:1 ~at:0 ~rejoin:2_000 () ]
      ()
  in
  let r = Reliable.create e f (Reliable.Flaky cfg) in
  let got0 = ref 0 and got1 = ref 0 in
  Reliable.set_receiver r ~node:0 (fun _ -> incr got0);
  Reliable.set_receiver r ~node:1 (fun _ -> incr got1);
  Reliable.send r ~at:100 (msg ~src:0 ~dst:1 ());
  Reliable.send r ~at:100 (msg ~src:1 ~dst:0 ());
  Engine.run e;
  check_int "survivor's message reached the revived victim" 1 !got1;
  check_int "the victim's own held queue replayed after rejoin" 1 !got0;
  check_bool "the window swallowed traffic" true
    (Stats.get (Option.get (Reliable.fault_stats r)) "faults.crash_dropped"
    >= 1)

let test_liveness_verdicts () =
  (* lease/heartbeat detection over a crash window: one death verdict once
     the victim has been silent past the lease, one revival verdict after
     its heartbeats resume; the election picks the lowest live rank *)
  let e = Engine.create () in
  let f = Fabric.create e ~nodes:4 ~latency:11 () in
  let cfg =
    Faults.uniform ~seed:1
      ~crashes:[ Faults.crash ~victim:2 ~at:500 ~rejoin:20_000 () ]
      ()
  in
  let r = Reliable.create e f (Reliable.Flaky cfg) in
  for n = 0 to 3 do
    Reliable.set_receiver r ~node:n (fun _ -> ())
  done;
  let lv = Tt_net.Liveness.create e r in
  let dead_seen = ref [] and alive_seen = ref [] in
  Tt_net.Liveness.set_on_dead lv (fun n -> dead_seen := n :: !dead_seen);
  Tt_net.Liveness.set_on_alive lv (fun n -> alive_seen := n :: !alive_seen);
  (* period = 32 × latency = 352, lease = 4 periods = 1408 *)
  ignore (Engine.run_until e ~limit:10_000);
  check_bool "declared dead" true (Tt_net.Liveness.is_dead lv 2);
  check_int "one death verdict" 1 (Tt_net.Liveness.deaths lv);
  check_int "lowest live rank" 0 (Tt_net.Liveness.lowest_live lv);
  ignore (Engine.run_until e ~limit:30_000);
  check_bool "revived after heartbeats resumed" false
    (Tt_net.Liveness.is_dead lv 2);
  check_int "one revival verdict" 1 (Tt_net.Liveness.revivals lv);
  Alcotest.(check (list int)) "death hook" [ 2 ] !dead_seen;
  Alcotest.(check (list int)) "revival hook" [ 2 ] !alive_seen;
  Tt_net.Liveness.stop lv

let test_scrub_unacked_neutralizes () =
  (* scrubbing rewrites held messages' handlers to the recovery no-op in
     both directions while preserving sequence numbers, so a later replay
     keeps per-pair ordering but delivers only no-ops *)
  let e, r, fl = mk_reliable_tuned ~base_rto:100 () in
  let dead = ref true in
  Reliable.set_liveness r ~is_dead:(fun n -> !dead && n = 1);
  Reliable.set_death_notice r (Some (fun ~src:_ ~dst:_ -> ()));
  Faults.set_tap fl
    (Some
       (fun ~site:_ d ->
         if !dead then { d with Faults.dropped = true } else d));
  let got = ref [] in
  Reliable.set_receiver r ~node:1 (fun m -> got := m.Message.handler :: !got);
  Reliable.set_receiver r ~node:0 (fun _ -> ());
  Reliable.send r ~at:0 (msg ~handler:7 ());
  Reliable.send r ~at:0 (msg ~handler:8 ());
  Engine.at e 5_000 (fun () ->
      check_int "both held messages scrubbed" 2
        (Reliable.scrub_unacked r ~node:1 ~handler:99);
      dead := false;
      Faults.set_tap fl None;
      Reliable.on_peer_alive r ~node:1);
  Engine.run e;
  Alcotest.(check (list int))
    "replay delivers the no-op, in order" [ 99; 99 ] (List.rev !got)

let test_fabric_causality_clamp () =
  (* a send stamped in the past (sender clock lagging) still delivers at or
     after 'now' *)
  let e, f = mk_fabric () in
  let arrival = ref (-1) in
  Fabric.set_receiver f ~node:1 (fun _ -> arrival := Engine.now e);
  Engine.at e 500 (fun () -> Fabric.send f ~at:3 (msg ()));
  Engine.run e;
  check_bool "clamped to now" true (!arrival >= 500)

let () =
  Alcotest.run "net"
    [
      ( "message",
        [
          Alcotest.test_case "word accounting" `Quick test_message_word_accounting;
          Alcotest.test_case "packet limit" `Quick test_message_packet_limit;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "delivery time" `Quick test_fabric_delivery_time;
          Alcotest.test_case "local short circuit" `Quick
            test_fabric_local_short_circuit;
          Alcotest.test_case "pairwise FIFO" `Quick test_fabric_pairwise_fifo;
          Alcotest.test_case "traffic stats" `Quick test_fabric_stats;
          Alcotest.test_case "missing receiver" `Quick test_fabric_no_receiver;
          Alcotest.test_case "missing receiver names message" `Quick
            test_fabric_no_receiver_message;
          Alcotest.test_case "bad destination" `Quick test_fabric_bad_destination;
          Alcotest.test_case "bad source" `Quick test_fabric_bad_source;
          Alcotest.test_case "causality clamp" `Quick test_fabric_causality_clamp;
          test_fabric_bandwidth_property;
        ] );
      ( "faults",
        [
          Alcotest.test_case "reproducible per seed" `Quick
            test_faults_reproducible;
          Alcotest.test_case "seed stability (pinned triple)" `Quick
            test_faults_seed_stability;
          Alcotest.test_case "tap stream alignment" `Quick
            test_faults_tap_stream_alignment;
          Alcotest.test_case "per-vnet rates" `Quick test_faults_per_vnet_rates;
          Alcotest.test_case "full drop" `Quick test_faults_full_drop;
          Alcotest.test_case "bursty loss reproducible" `Quick
            test_burst_reproducible;
          Alcotest.test_case "neutral burst scales draw-identical" `Quick
            test_burst_scale_one_is_draw_identical;
          Alcotest.test_case "bursty loss differs from plain" `Quick
            test_burst_differs_from_plain;
        ] );
      ( "reliable",
        [
          Alcotest.test_case "exactly once, in order" `Quick
            test_reliable_exactly_once_in_order;
          Alcotest.test_case "dead link escalates" `Quick
            test_reliable_link_failed;
          Alcotest.test_case "window-full arrivals refused" `Quick
            test_reliable_window_full_drops;
          Alcotest.test_case "backoff caps at rto_cap" `Quick
            test_reliable_backoff_cap;
          Alcotest.test_case "retransmit beats delayed original" `Quick
            test_reliable_dup_of_retransmit;
          Alcotest.test_case "perfect pass-through" `Quick
            test_reliable_perfect_passthrough;
        ] );
      ( "crash-stop",
        [
          Alcotest.test_case "simultaneous bidirectional link failure" `Quick
            test_bidirectional_link_failed;
          Alcotest.test_case "dead peer parks without retransmits" `Quick
            test_dead_peer_parks_without_retransmits;
          Alcotest.test_case "Peer_dead without a recovery layer" `Quick
            test_peer_dead_raises_without_recovery;
          Alcotest.test_case "crash window heals after rejoin" `Quick
            (with_recovery_on test_crash_window_heals_after_rejoin);
          Alcotest.test_case "liveness verdicts" `Quick
            (with_recovery_on test_liveness_verdicts);
          Alcotest.test_case "scrub neutralizes held queues" `Quick
            test_scrub_unacked_neutralizes;
        ] );
    ]
