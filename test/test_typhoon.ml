(* Whole-suite invariant: pool-debug mode poisons released pool buffers
   and rejects double-release (satellite of the zero-allocation PR). *)
let () = Tt_util.Debug.set_pool_debug true

(* Tests for the Typhoon machine: Table 1 semantics end-to-end, fault
   dispatch, NP scheduling, bulk transfer, cost charging. *)

module Engine = Tt_sim.Engine
module Thread = Tt_sim.Thread
module System = Tt_typhoon.System
module Np = Tt_typhoon.Np
module Addr = Tt_mem.Addr
module Tag = Tt_mem.Tag
module Message = Tt_net.Message

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let mk ?(nodes = 4) () =
  let engine = Engine.create () in
  let sys = System.create engine { Params.default with Params.nodes } in
  (engine, sys)

let page = 0x2000

let base = page * Addr.page_size

let map_rw sys node =
  let ep = System.endpoint sys node in
  ep.Tempest.map_page ~vpage:page ~home:node ~mode:0 ~init_tag:Tag.Read_write

(* ---------------- Table 1 semantics ---------------- *)

let test_read_write_permitted () =
  let engine, sys = mk () in
  map_rw sys 0;
  let th =
    Thread.spawn engine ~name:"cpu0" (fun th ->
        System.cpu_write_f64 sys ~node:0 th base 2.5;
        Alcotest.(check (float 0.0)) "read back" 2.5
          (System.cpu_read_f64 sys ~node:0 th base))
  in
  Engine.run engine;
  check_bool "finished" true (Thread.finished th)

let test_read_only_allows_loads_blocks_stores () =
  let engine, sys = mk () in
  map_rw sys 0;
  let ep = System.endpoint sys 0 in
  ep.Tempest.force_write_f64 ~vaddr:base 7.0;
  ep.Tempest.set_ro ~vaddr:base;
  (* a store on a ReadOnly block must fault into the mode-0 handler *)
  let faulted = ref None in
  Tempest.Handlers.set_block_fault (System.handlers sys) ~mode:0
    (fun ep fault ->
      faulted := Some (fault.Tempest.fault_access, fault.Tempest.fault_tag);
      (* make it legal and restart the thread (Table 1: set-RW; resume) *)
      ep.Tempest.set_rw ~vaddr:fault.Tempest.fault_vaddr;
      ep.Tempest.resume fault.Tempest.fault_resumption);
  let th =
    Thread.spawn engine ~name:"cpu0" (fun th ->
        Alcotest.(check (float 0.0)) "load allowed" 7.0
          (System.cpu_read_f64 sys ~node:0 th base);
        System.cpu_write_f64 sys ~node:0 th base 9.0)
  in
  Engine.run engine;
  check_bool "finished" true (Thread.finished th);
  (match !faulted with
  | Some (Tag.Store, Tag.Read_only) -> ()
  | Some _ -> Alcotest.fail "wrong fault contents"
  | None -> Alcotest.fail "store did not fault");
  Alcotest.(check (float 0.0)) "store landed after resume" 9.0
    (Tt_mem.Pagemem.read_f64 (System.node_mem sys 0) ~vaddr:base)

let test_invalid_blocks_loads () =
  let engine, sys = mk () in
  map_rw sys 0;
  let ep = System.endpoint sys 0 in
  ep.Tempest.invalidate ~vaddr:base;
  let faults = ref 0 in
  Tempest.Handlers.set_block_fault (System.handlers sys) ~mode:0
    (fun ep fault ->
      incr faults;
      ep.Tempest.set_rw ~vaddr:fault.Tempest.fault_vaddr;
      ep.Tempest.resume fault.Tempest.fault_resumption);
  let th =
    Thread.spawn engine ~name:"cpu0" (fun th ->
        ignore (System.cpu_read_f64 sys ~node:0 th base))
  in
  Engine.run engine;
  check_bool "finished" true (Thread.finished th);
  check_int "one fault" 1 !faults

let test_busy_behaves_like_invalid () =
  let engine, sys = mk () in
  map_rw sys 0;
  let ep = System.endpoint sys 0 in
  ep.Tempest.set_busy ~vaddr:base;
  let observed = ref None in
  Tempest.Handlers.set_block_fault (System.handlers sys) ~mode:0
    (fun ep fault ->
      observed := Some fault.Tempest.fault_tag;
      ep.Tempest.set_rw ~vaddr:fault.Tempest.fault_vaddr;
      ep.Tempest.resume fault.Tempest.fault_resumption);
  let _th =
    Thread.spawn engine ~name:"cpu0" (fun th ->
        ignore (System.cpu_read_f64 sys ~node:0 th base))
  in
  Engine.run engine;
  check_bool "handler saw Busy" true
    (match !observed with Some Tag.Busy -> true | Some _ | None -> false)

let test_force_ops_bypass_tags () =
  let _, sys = mk () in
  map_rw sys 0;
  let ep = System.endpoint sys 0 in
  ep.Tempest.invalidate ~vaddr:base;
  ep.Tempest.force_write_f64 ~vaddr:base 5.5;
  Alcotest.(check (float 0.0)) "force read" 5.5
    (ep.Tempest.force_read_f64 ~vaddr:base);
  let blk = ep.Tempest.force_read_block ~vaddr:base in
  check_int "block size" 32 (Bytes.length blk)

let test_read_tag () =
  let _, sys = mk () in
  map_rw sys 0;
  let ep = System.endpoint sys 0 in
  check_bool "RW" true (Tag.equal Tag.Read_write (ep.Tempest.read_tag ~vaddr:base));
  ep.Tempest.set_ro ~vaddr:base;
  check_bool "RO" true (Tag.equal Tag.Read_only (ep.Tempest.read_tag ~vaddr:base));
  ep.Tempest.set_busy ~vaddr:base;
  check_bool "Busy" true (Tag.equal Tag.Busy (ep.Tempest.read_tag ~vaddr:base));
  ep.Tempest.invalidate ~vaddr:base;
  check_bool "Invalid" true
    (Tag.equal Tag.Invalid (ep.Tempest.read_tag ~vaddr:base))

let test_invalidate_drops_cpu_line () =
  let engine, sys = mk () in
  map_rw sys 0;
  let ep = System.endpoint sys 0 in
  let block = Addr.block_of base in
  let th =
    Thread.spawn engine ~name:"cpu0" (fun th ->
        ignore (System.cpu_read_f64 sys ~node:0 th base))
  in
  Engine.run engine;
  ignore th;
  check_bool "line cached after read" true
    (Tt_cache.Cache.probe (System.cpu_cache sys 0) ~block <> None);
  ep.Tempest.invalidate ~vaddr:base;
  check_bool "line dropped" true
    (Tt_cache.Cache.probe (System.cpu_cache sys 0) ~block = None)

let test_tag_granularity_is_per_block () =
  let engine, sys = mk () in
  map_rw sys 0;
  let ep = System.endpoint sys 0 in
  ep.Tempest.invalidate ~vaddr:base;
  (* the adjacent block must stay accessible without a fault *)
  Tempest.Handlers.set_block_fault (System.handlers sys) ~mode:0
    (fun _ _ -> Alcotest.fail "adjacent block must not fault");
  let _th =
    Thread.spawn engine ~name:"cpu0" (fun th ->
        ignore (System.cpu_read_f64 sys ~node:0 th (base + Addr.block_size)))
  in
  Engine.run engine

(* ---------------- Page faults ---------------- *)

let test_page_fault_dispatch () =
  let engine, sys = mk () in
  let fault_addr = ref 0 in
  Tempest.Handlers.set_page_fault (System.handlers sys)
    (fun ep ~vaddr _access resumption ->
      fault_addr := vaddr;
      ep.Tempest.map_page ~vpage:(Addr.page_of vaddr) ~home:ep.Tempest.node
        ~mode:0 ~init_tag:Tag.Read_write;
      ep.Tempest.resume resumption);
  let _th =
    Thread.spawn engine ~name:"cpu0" (fun th ->
        System.cpu_write_f64 sys ~node:0 th (base + 128) 1.25;
        Alcotest.(check (float 0.0)) "after page-in" 1.25
          (System.cpu_read_f64 sys ~node:0 th (base + 128)))
  in
  Engine.run engine;
  check_int "fault address" (base + 128) !fault_addr

let test_page_fault_without_handler_fails () =
  let engine, sys = mk () in
  let _th =
    Thread.spawn engine ~name:"cpu0" (fun th ->
        ignore (System.cpu_read_f64 sys ~node:0 th base))
  in
  try
    Engine.run engine;
    Alcotest.fail "expected failure"
  with Thread.Failure_in _ | Invalid_argument _ -> ()

(* ---------------- Messaging and the NP ---------------- *)

let test_active_message_roundtrip () =
  let engine, sys = mk () in
  let got = ref [] in
  let reply = ref (-1) in
  let h_pong =
    Tempest.Handlers.register_message (System.handlers sys) ~name:"pong"
      (fun _ ~src ~args ~data:_ -> got := (src, args.(0)) :: !got)
  in
  let h_ping =
    Tempest.Handlers.register_message (System.handlers sys) ~name:"ping"
      (fun ep ~src ~args ~data:_ ->
        ep.Tempest.send ~dst:src ~vnet:Message.Response ~handler:!reply
          ~args:[| args.(0) * 2 |] ())
  in
  reply := h_pong;
  ignore h_ping;
  let ep0 = System.endpoint sys 0 in
  ep0.Tempest.send ~dst:2 ~vnet:Message.Request ~handler:h_ping ~args:[| 21 |] ();
  Engine.run engine;
  Alcotest.(check (list (pair int int))) "pong received" [ (2, 42) ] !got

let test_np_charges_cycles () =
  let engine, sys = mk () in
  let h =
    Tempest.Handlers.register_message (System.handlers sys) ~name:"spin"
      (fun ep ~src:_ ~args:_ ~data:_ -> ep.Tempest.charge 1000)
  in
  let ep0 = System.endpoint sys 0 in
  ep0.Tempest.send ~dst:1 ~vnet:Message.Request ~handler:h ();
  Engine.run engine;
  check_bool "np clock advanced by handler" true
    (Np.clock (System.node_np sys 1) >= 1000);
  check_int "one item handled" 1 (Np.handled (System.node_np sys 1));
  check_bool "busy cycles recorded" true
    (Np.busy_cycles (System.node_np sys 1) >= 1000)

let test_np_response_priority () =
  (* queue a request and a response while the NP is busy: the response must
     run first despite arriving later *)
  let engine, sys = mk () in
  let order = ref [] in
  let tables = System.handlers sys in
  let h_block =
    Tempest.Handlers.register_message tables ~name:"block"
      (fun ep ~src:_ ~args:_ ~data:_ -> ep.Tempest.charge 500)
  in
  let h_req =
    Tempest.Handlers.register_message tables ~name:"req"
      (fun _ ~src:_ ~args:_ ~data:_ -> order := `Req :: !order)
  in
  let h_resp =
    Tempest.Handlers.register_message tables ~name:"resp"
      (fun _ ~src:_ ~args:_ ~data:_ -> order := `Resp :: !order)
  in
  let ep0 = System.endpoint sys 0 in
  ep0.Tempest.send ~dst:1 ~vnet:Message.Request ~handler:h_block ();
  (* both of these arrive while the NP is executing h_block *)
  Engine.after engine 5 (fun () ->
      let ep2 = System.endpoint sys 2 in
      ep2.Tempest.send ~dst:1 ~vnet:Message.Request ~handler:h_req ());
  Engine.after engine 10 (fun () ->
      let ep3 = System.endpoint sys 3 in
      ep3.Tempest.send ~dst:1 ~vnet:Message.Response ~handler:h_resp ());
  Engine.run engine;
  Alcotest.(check bool) "response ran before request" true
    (!order = [ `Req; `Resp ] (* reversed: Resp first *))

let test_bulk_transfer_end_to_end () =
  let engine, sys = mk () in
  map_rw sys 0;
  let ep1 = System.endpoint sys 1 in
  ep1.Tempest.map_page ~vpage:page ~home:1 ~mode:0 ~init_tag:Tag.Read_write;
  let mem0 = System.node_mem sys 0 in
  let len = 500 (* deliberately not a multiple of 64 *) in
  for i = 0 to (len / 8) - 1 do
    Tt_mem.Pagemem.write_f64 mem0 ~vaddr:(base + (i * 8)) (float_of_int i)
  done;
  let completed = ref false in
  let ep0 = System.endpoint sys 0 in
  ep0.Tempest.bulk_transfer ~dst:1 ~src_va:base ~dst_va:base ~len
    ~on_complete:(fun () -> completed := true);
  Engine.run engine;
  check_bool "completion fired" true !completed;
  let mem1 = System.node_mem sys 1 in
  for i = 0 to (len / 8) - 1 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "word %d" i)
      (float_of_int i)
      (Tt_mem.Pagemem.read_f64 mem1 ~vaddr:(base + (i * 8)))
  done

let test_force_write_invalidates_cpu_line () =
  let engine, sys = mk () in
  map_rw sys 0;
  let ep = System.endpoint sys 0 in
  let block = Addr.block_of base in
  let _th =
    Thread.spawn engine ~name:"cpu0" (fun th ->
        ignore (System.cpu_read_f64 sys ~node:0 th base))
  in
  Engine.run engine;
  check_bool "cached" true
    (Tt_cache.Cache.probe (System.cpu_cache sys 0) ~block <> None);
  ep.Tempest.force_write_block ~vaddr:base (Bytes.make 32 'x');
  check_bool "stale line dropped" true
    (Tt_cache.Cache.probe (System.cpu_cache sys 0) ~block = None)

let test_unmap_flushes_cache_and_tlb () =
  let engine, sys = mk () in
  map_rw sys 0;
  let ep = System.endpoint sys 0 in
  let block = Addr.block_of base in
  let _th =
    Thread.spawn engine ~name:"cpu0" (fun th ->
        ignore (System.cpu_read_f64 sys ~node:0 th base))
  in
  Engine.run engine;
  ep.Tempest.unmap_page ~vpage:page;
  check_bool "cache flushed" true
    (Tt_cache.Cache.probe (System.cpu_cache sys 0) ~block = None);
  check_bool "tlb flushed" false (Tt_mem.Tlb.probe (System.cpu_tlb sys 0) page);
  check_bool "unmapped" false (ep.Tempest.page_mapped ~vpage:page)

let test_local_miss_cost () =
  (* a cached-page read: 1 instr + TLB miss (25) + local miss (29), then a
     hit costs 1 instr only *)
  let engine, sys = mk () in
  map_rw sys 0;
  let costs = ref [] in
  let _th =
    Thread.spawn engine ~name:"cpu0" (fun th ->
        let c0 = Thread.clock th in
        ignore (System.cpu_read_f64 sys ~node:0 th base);
        let c1 = Thread.clock th in
        ignore (System.cpu_read_f64 sys ~node:0 th base);
        let c2 = Thread.clock th in
        costs := [ c1 - c0; c2 - c1 ])
  in
  Engine.run engine;
  match !costs with
  | [ miss; hit ] ->
      check_int "cold access = instr + tlb + miss" (1 + 25 + 29) miss;
      check_int "hit = instr" 1 hit
  | _ -> Alcotest.fail "missing measurements"

let test_upgrade_cost () =
  let engine, sys = mk () in
  map_rw sys 0;
  let ep = System.endpoint sys 0 in
  ep.Tempest.set_ro ~vaddr:base;
  (* read loads the line Shared; then RW tag + write hit-on-shared = upgrade *)
  let upgrade_cost = ref 0 in
  let _th =
    Thread.spawn engine ~name:"cpu0" (fun th ->
        ignore (System.cpu_read_f64 sys ~node:0 th base);
        System.with_cpu_context sys ~node:0 th (fun () ->
            ep.Tempest.set_rw ~vaddr:base);
        let c0 = Thread.clock th in
        System.cpu_write_f64 sys ~node:0 th base 1.0;
        upgrade_cost := Thread.clock th - c0)
  in
  Engine.run engine;
  check_int "upgrade = instr + bus invalidate"
    (1 + Params.default.Params.upgrade)
    !upgrade_cost;
  check_int "upgrade counted" 1
    (Tt_util.Stats.get (System.node_stats sys 0) "upgrades")

let () =
  Alcotest.run "typhoon"
    [
      ( "table1",
        [
          Alcotest.test_case "read/write permitted" `Quick test_read_write_permitted;
          Alcotest.test_case "RO: loads yes, stores fault" `Quick
            test_read_only_allows_loads_blocks_stores;
          Alcotest.test_case "Invalid blocks loads" `Quick test_invalid_blocks_loads;
          Alcotest.test_case "Busy behaves like Invalid" `Quick
            test_busy_behaves_like_invalid;
          Alcotest.test_case "force ops bypass tags" `Quick
            test_force_ops_bypass_tags;
          Alcotest.test_case "read-tag" `Quick test_read_tag;
          Alcotest.test_case "invalidate drops CPU line" `Quick
            test_invalidate_drops_cpu_line;
          Alcotest.test_case "per-block granularity" `Quick
            test_tag_granularity_is_per_block;
        ] );
      ( "paging",
        [
          Alcotest.test_case "page fault dispatch" `Quick test_page_fault_dispatch;
          Alcotest.test_case "missing handler fails loudly" `Quick
            test_page_fault_without_handler_fails;
          Alcotest.test_case "unmap flushes cache+TLB" `Quick
            test_unmap_flushes_cache_and_tlb;
        ] );
      ( "np",
        [
          Alcotest.test_case "active message roundtrip" `Quick
            test_active_message_roundtrip;
          Alcotest.test_case "handler charges NP cycles" `Quick
            test_np_charges_cycles;
          Alcotest.test_case "response priority" `Quick test_np_response_priority;
          Alcotest.test_case "bulk transfer end-to-end" `Quick
            test_bulk_transfer_end_to_end;
          Alcotest.test_case "force-write keeps CPU cache coherent" `Quick
            test_force_write_invalidates_cpu_line;
        ] );
      ( "costs",
        [
          Alcotest.test_case "local miss cost" `Quick test_local_miss_cost;
          Alcotest.test_case "upgrade cost" `Quick test_upgrade_cost;
        ] );
    ]
