(* Whole-suite invariant: pool-debug mode poisons released pool buffers
   and rejects double-release (satellite of the zero-allocation PR). *)
let () = Tt_util.Debug.set_pool_debug true

(* Tests for the zero-allocation messaging path: per-vnet message pools
   (freshness, refcounting, double-release), the endpoint buffer pools
   (double-recycle rejection, poisoning), bulk-transfer argument
   validation, timing neutrality of pooling, and a Gc-based proof that the
   steady-state send path allocates nothing.

   Pool-dependent cases skip themselves when TT_POOL_DISABLE is set so the
   parity run (scripts/check_pool_timing.sh) can execute the whole suite
   with pooling off. *)

module Engine = Tt_sim.Engine
module System = Tt_typhoon.System
module Addr = Tt_mem.Addr
module Tag = Tt_mem.Tag
module Message = Tt_net.Message

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let page = 0x2000

let base = page * Addr.page_size

let mk ?(nodes = 2) () =
  let engine = Engine.create () in
  let sys = System.create engine { Params.default with Params.nodes } in
  (engine, sys)

let map_rw sys node =
  let ep = System.endpoint sys node in
  ep.Tempest.map_page ~vpage:page ~home:node ~mode:0 ~init_tag:Tag.Read_write

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  | exception Invalid_argument _ -> ()

(* ---------------- Message pool semantics ---------------- *)

(* An acquired message must carry exactly the caller's values in every
   field — nothing left over from the record's previous life.  The pool is
   dirtied first with a same-shape message full of junk so a stale field
   cannot accidentally match. *)
let prop_acquired_message_is_fresh =
  QCheck.Test.make ~name:"acquired message has every field freshly set"
    ~count:500
    QCheck.(quad bool (int_range 0 10) small_int (int_range 0 9))
    (fun (req, nargs, seed, data_words) ->
      let vnet = if req then Message.Request else Message.Response in
      let data_words = min data_words (Message.max_payload_words - 1 - nargs) in
      let data_len = 4 * data_words in
      let junk =
        Message.Pool.acquire ~src:91 ~dst:92 ~vnet ~handler:93
          ~args:(Array.init nargs (fun i -> 1000 + i))
          ~data:(Bytes.make data_len 'j') ~seq:94 ~ack:95 ()
      in
      Message.Pool.release junk;
      let args = Array.init nargs (fun i -> seed + i) in
      let data = Bytes.make data_len 'd' in
      let m =
        Message.Pool.acquire ~src:3 ~dst:4 ~vnet ~handler:9 ~args ~data ()
      in
      let fresh =
        m.Message.src = 3 && m.Message.dst = 4 && m.Message.vnet = vnet
        && m.Message.handler = 9
        && m.Message.args = args
        && (nargs = 0 || m.Message.args != args) (* a private copy (all
              zero-length arrays share one atom, so only check when n > 0) *)
        && Bytes.equal m.Message.data data
        && m.Message.seq = -1 && m.Message.ack = -1
        && m.Message.pool_rc = (if Message.Pool.is_disabled () then -1 else 1)
      in
      Message.Pool.release m;
      fresh)

let test_double_release_raises () =
  if Message.Pool.is_disabled () then ()
  else begin
    let m =
      Message.Pool.acquire ~src:0 ~dst:1 ~vnet:Message.Request ~handler:0 ()
    in
    Message.Pool.release m;
    expect_invalid "second release" (fun () -> Message.Pool.release m);
    expect_invalid "retain of freelisted" (fun () -> Message.Pool.retain m)
  end

let test_retain_adds_an_owner () =
  if Message.Pool.is_disabled () then ()
  else begin
    let m =
      Message.Pool.acquire ~src:0 ~dst:1 ~vnet:Message.Response ~handler:0 ()
    in
    Message.Pool.retain m;
    check_int "two owners" 2 m.Message.pool_rc;
    Message.Pool.release m;
    check_int "one owner" 1 m.Message.pool_rc;
    let free0 = Message.Pool.free_count () in
    Message.Pool.release m;
    check_bool "returned to freelist" true
      (Message.Pool.free_count () = free0 + 1)
  end

let test_ordinary_messages_unaffected () =
  let m = Message.make ~src:0 ~dst:1 ~vnet:Message.Request ~handler:0 () in
  (* GC-owned messages tolerate any number of retain/release calls *)
  Message.Pool.retain m;
  Message.Pool.release m;
  Message.Pool.release m;
  check_int "still ordinary" (-1) m.Message.pool_rc

(* ---------------- Endpoint buffer pools ---------------- *)

let test_recycle_block_rejects_double_release () =
  let _engine, sys = mk () in
  map_rw sys 0;
  let ep = System.endpoint sys 0 in
  let b = ep.Tempest.force_read_block ~vaddr:base in
  check_int "block size" Addr.block_size (Bytes.length b);
  ep.Tempest.recycle_block b;
  check_bool "released buffer is poisoned" true (Bytes.get b 0 = '\xde');
  expect_invalid "double recycle" (fun () -> ep.Tempest.recycle_block b)

let test_recycled_block_is_reused () =
  let _engine, sys = mk () in
  map_rw sys 0;
  let ep = System.endpoint sys 0 in
  let b = ep.Tempest.force_read_block ~vaddr:base in
  ep.Tempest.recycle_block b;
  let b' = ep.Tempest.force_read_block ~vaddr:base in
  check_bool "same buffer handed back" true (b == b')

(* ---------------- Bulk-transfer validation ---------------- *)

let test_bulk_transfer_validates_up_front () =
  let engine, sys = mk () in
  map_rw sys 0;
  map_rw sys 1;
  let ep0 = System.endpoint sys 0 in
  let bulk ~dst ~src_va ~dst_va ~len () =
    ep0.Tempest.bulk_transfer ~dst ~src_va ~dst_va ~len
      ~on_complete:(fun () -> Alcotest.fail "rejected transfer completed")
  in
  expect_invalid "non-positive length"
    (bulk ~dst:1 ~src_va:base ~dst_va:base ~len:0);
  expect_invalid "negative destination"
    (bulk ~dst:(-1) ~src_va:base ~dst_va:base ~len:64);
  expect_invalid "destination out of range"
    (bulk ~dst:99 ~src_va:base ~dst_va:base ~len:64);
  expect_invalid "negative src_va"
    (bulk ~dst:1 ~src_va:(-8) ~dst_va:base ~len:64);
  expect_invalid "unmapped src_va"
    (bulk ~dst:1 ~src_va:(base + (16 * Addr.page_size)) ~dst_va:base ~len:64);
  expect_invalid "src range runs off the page"
    (bulk ~dst:1 ~src_va:base ~dst_va:base ~len:(Addr.page_size + 64));
  expect_invalid "unmapped dst_va"
    (bulk ~dst:1 ~src_va:base ~dst_va:(base + (16 * Addr.page_size)) ~len:64);
  (* nothing above may leave state behind: a valid transfer still works *)
  let completed = ref false in
  ep0.Tempest.bulk_transfer ~dst:1 ~src_va:base ~dst_va:base ~len:500
    ~on_complete:(fun () -> completed := true);
  Engine.run engine;
  check_bool "valid transfer after rejections" true !completed

(* ---------------- Timing neutrality ---------------- *)

(* The same fixed scenario must report bit-identical simulated time with
   pooling on and off: pooling recycles records, it must never move an
   event. *)
let run_pinned_scenario () =
  let engine, sys = mk () in
  map_rw sys 0;
  map_rw sys 1;
  let tables = System.handlers sys in
  let remaining = ref 32 in
  let h = ref (-1) in
  let handler ep ~src ~args:_ ~data =
    ep.Tempest.recycle_block data;
    if !remaining > 0 then begin
      decr remaining;
      let vnet =
        if !remaining land 1 = 0 then Message.Request else Message.Response
      in
      let b = ep.Tempest.force_read_block ~vaddr:base in
      ep.Tempest.send_raw ~dst:src ~vnet ~handler:!h ~args:[||] ~data:b
    end
  in
  h := Tempest.Handlers.register_message tables ~name:"bounce" handler;
  let ep0 = System.endpoint sys 0 in
  let b = ep0.Tempest.force_read_block ~vaddr:base in
  ep0.Tempest.send_raw ~dst:1 ~vnet:Message.Request ~handler:!h ~args:[||]
    ~data:b;
  let completed = ref false in
  ep0.Tempest.bulk_transfer ~dst:1 ~src_va:base ~dst_va:base ~len:500
    ~on_complete:(fun () -> completed := true);
  Engine.run engine;
  check_bool "scenario ran to completion" true (!completed && !remaining = 0);
  Engine.now engine

let test_pool_is_timing_neutral () =
  let was = Message.Pool.is_disabled () in
  let on =
    Fun.protect
      ~finally:(fun () -> Message.Pool.set_disabled was)
      (fun () ->
        Message.Pool.set_disabled false;
        run_pinned_scenario ())
  in
  let off =
    Fun.protect
      ~finally:(fun () -> Message.Pool.set_disabled was)
      (fun () ->
        Message.Pool.set_disabled true;
        run_pinned_scenario ())
  in
  check_int "same simulated cycles with pools on and off" on off

(* ---------------- The tentpole claim ---------------- *)

(* Steady-state sends allocate nothing: a two-node ping-pong that moves a
   32-byte block each way, recycling buffers and drawing messages from the
   pool, must stay at ~0 minor words per send once warm (same shape as the
   engine hot-path test in test_sim.ml). *)
let test_steady_state_send_no_alloc () =
  if Message.Pool.is_disabled () then ()
  else begin
    let engine, sys = mk () in
    map_rw sys 0;
    map_rw sys 1;
    let tables = System.handlers sys in
    let remaining = ref 0 in
    let h = ref (-1) in
    let handler ep ~src ~args:_ ~data =
      ep.Tempest.recycle_block data;
      if !remaining > 0 then begin
        decr remaining;
        let vnet =
          if !remaining land 1 = 0 then Message.Request else Message.Response
        in
        let b = ep.Tempest.force_read_block ~vaddr:base in
        ep.Tempest.send_raw ~dst:src ~vnet ~handler:!h ~args:[||] ~data:b
      end
    in
    h := Tempest.Handlers.register_message tables ~name:"bounce" handler;
    let ep0 = System.endpoint sys 0 in
    let kick n =
      remaining := n;
      let b = ep0.Tempest.force_read_block ~vaddr:base in
      ep0.Tempest.send_raw ~dst:1 ~vnet:Message.Request ~handler:!h ~args:[||]
        ~data:b
    in
    (* warm up: size the event heap, fabric in-flight heap, NP rings and
       both pools before measuring *)
    kick 64;
    Engine.run engine;
    let n = 10_000 in
    kick n;
    let before = Gc.minor_words () in
    Engine.run engine;
    let delta = Gc.minor_words () -. before in
    check_bool
      (Printf.sprintf "minor words per send ~0 (delta %.0f over %d sends)"
         delta n)
      true
      (delta < 256.0)
  end

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "pool"
    [
      ( "message-pool",
        [
          qc prop_acquired_message_is_fresh;
          Alcotest.test_case "double release raises" `Quick
            test_double_release_raises;
          Alcotest.test_case "retain adds an owner" `Quick
            test_retain_adds_an_owner;
          Alcotest.test_case "ordinary messages unaffected" `Quick
            test_ordinary_messages_unaffected;
        ] );
      ( "buffer-pool",
        [
          Alcotest.test_case "double recycle rejected" `Quick
            test_recycle_block_rejects_double_release;
          Alcotest.test_case "recycled block reused" `Quick
            test_recycled_block_is_reused;
        ] );
      ( "bulk",
        [
          Alcotest.test_case "validation up front" `Quick
            test_bulk_transfer_validates_up_front;
        ] );
      ( "timing",
        [
          Alcotest.test_case "pooling is timing-neutral" `Quick
            test_pool_is_timing_neutral;
        ] );
      ( "no-alloc",
        [
          Alcotest.test_case "steady-state send allocates nothing" `Quick
            test_steady_state_send_no_alloc;
        ] );
    ]
