(* Whole-suite invariant: pool-debug mode poisons released pool buffers
   and rejects double-release (satellite of the zero-allocation PR). *)
let () = Tt_util.Debug.set_pool_debug true

(* Tests for the protocol zoo, the adaptive per-page switcher, and their
   torture/faultsweep integration. *)

module Proto = Tt_custom.Proto
module Adaptive = Tt_custom.Adaptive
module Machine = Tt_harness.Machine
module Run = Tt_harness.Run
module Catalog = Tt_harness.Catalog
module Faultsweep = Tt_harness.Faultsweep
module Protozoo = Tt_harness.Protozoo
module Torture = Tt_torture.Torture
module Stache = Tt_stache.Stache
module System = Tt_typhoon.System
module Pagemem = Tt_mem.Pagemem
module Addr = Tt_mem.Addr
module Stats = Tt_util.Stats

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let params nodes = { Params.default with Params.nodes }

(* force the adaptive kill switch for one test body (the whole suite also
   runs under TT_ADAPT=0 via scripts/check_protocols.sh) *)
let with_adapt v f =
  let was = Sys.getenv_opt "TT_ADAPT" in
  Unix.putenv "TT_ADAPT" v;
  Fun.protect
    ~finally:(fun () -> Unix.putenv "TT_ADAPT" (Option.value was ~default:"1"))
    f

(* regression: retyping a page in place must drop the home's 1-entry MRU
   translation cache, or the next access rides a stale cached mode *)
let test_mru_flushed_on_policy_switch () =
  let machine, sys, _st, proto =
    Machine.typhoon_zoo_full ~policy:Proto.Migratory (params 4)
  in
  let vaddr = ref 0 in
  let body (e : Tt_app.Env.t) =
    if e.Tt_app.Env.proc = 0 then begin
      vaddr := e.Tt_app.Env.alloc ~home:0 256;
      e.Tt_app.Env.write !vaddr 42.0;
      let vpage = Addr.page_of !vaddr in
      let mem = System.node_mem sys 0 in
      check_bool "home access warms the MRU slot" true
        (Pagemem.translation_cached mem ~vpage);
      check_bool "allocation adopted" true
        (Proto.pol_of_page proto ~vpage = Proto.Migratory);
      Proto.set_page_pol proto ~vpage Proto.Widerep;
      check_bool "retype drops the cached translation" false
        (Pagemem.translation_cached mem ~vpage);
      check_bool "page carries the new policy" true
        (Proto.pol_of_page proto ~vpage = Proto.Widerep);
      check_bool "data survives the retype" true (e.Tt_app.Env.read !vaddr = 42.0)
    end;
    e.Tt_app.Env.barrier ()
  in
  ignore (Run.spmd machine ~name:"mru-switch" body)

(* regression: a rejoining node's crash-era cached translation is dropped
   (pages may have been re-homed while it was dark) *)
let test_mru_flushed_on_rejoin () =
  let machine, sys, st, _proto =
    Machine.typhoon_zoo_full ~policy:Proto.Stachelike (params 4)
  in
  let body (e : Tt_app.Env.t) =
    if e.Tt_app.Env.proc = 0 then begin
      let vaddr = e.Tt_app.Env.alloc ~home:0 256 in
      e.Tt_app.Env.write vaddr 7.0;
      let vpage = Addr.page_of vaddr in
      let mem = System.node_mem sys 0 in
      check_bool "access warms the MRU slot" true
        (Pagemem.translation_cached mem ~vpage);
      Stache.on_node_rejoin st ~node:0;
      check_bool "rejoin drops the cached translation" false
        (Pagemem.translation_cached mem ~vpage)
    end;
    e.Tt_app.Env.barrier ()
  in
  ignore (Run.spmd machine ~name:"mru-rejoin" body)

(* the adaptive machine switches pages on the producer-consumer synthetic
   and still verifies against the oracle *)
let test_adaptive_switches_and_verifies () =
  with_adapt "1" @@ fun () ->
  let machine = Machine.typhoon_adaptive (params 8) in
  let inst = Catalog.make ~name:"synthpc" ~size:Catalog.Small ~scale:0.25 ~nprocs:8 in
  let r = Run.spmd machine ~name:"synthpc" inst.Catalog.body in
  ignore (Run.spmd machine ~name:"synthpc-verify" ~check:false inst.Catalog.verify);
  let switches = Stats.get r.Run.run_stats "switches" in
  check_bool (Printf.sprintf "switches > 0 (got %d)" switches) true (switches > 0)

(* TT_ADAPT=0 is a hard kill switch: nothing switches, results verify *)
let test_kill_switch_disables_switching () =
  with_adapt "0" (fun () ->
      let machine = Machine.typhoon_adaptive (params 8) in
      let inst =
        Catalog.make ~name:"synthpc" ~size:Catalog.Small ~scale:0.25 ~nprocs:8
      in
      let r = Run.spmd machine ~name:"synthpc" inst.Catalog.body in
      ignore
        (Run.spmd machine ~name:"synthpc-verify" ~check:false
           inst.Catalog.verify);
      check_int "no switches under TT_ADAPT=0" 0
        (Stats.get r.Run.run_stats "switches"))

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* unknown protocol names fail loudly, listing the valid ones *)
let test_unknown_protocol_lists_names () =
  let msg =
    try
      ignore (Catalog.machine_of_proto ~proto:"mesi" (params 4));
      "no exception"
    with Invalid_argument m -> m
  in
  List.iter
    (fun name ->
      check_bool (Printf.sprintf "%S lists %s" msg name) true
        (contains ~needle:name msg))
    Catalog.protocols

(* --- litmus torture under the zoo --- *)

let torture_cases ~machines ~drops =
  Torture.grid ~machines ~drops ~seeds:[ 1; 2 ] ~iters:4 ()

let run_grid cases =
  List.map (fun c -> (c, Torture.run c)) cases

(* migratory and prodcons are sequentially consistent: every litmus shape
   passes, clean and faulty fabric alike *)
let test_litmus_clean_under_sc_zoo () =
  run_grid
    (torture_cases ~machines:[ "migratory"; "prodcons" ] ~drops:[ 0.0; 0.05 ])
  |> List.iter (fun ((c : Torture.case), (r : Torture.result)) ->
         match r.Torture.outcome with
         | Torture.Pass -> ()
         | Torture.Fail v ->
             Alcotest.fail
               (Printf.sprintf "%s on %s (drop %.2f seed %d): %s" c.Torture.litmus
                  c.Torture.machine c.Torture.drop c.Torture.fault_seed
                  v.Torture.detail))

(* widerep and delayed relax consistency between synchronization points, and
   adaptive may promote racy pages to widerep: racy shapes may fail, but
   only ever as a *diagnosed* SC/staleness violation — a hang, transport
   give-up, invariant breach or protocol crash is a real bug *)
let test_litmus_diagnosed_under_update_zoo () =
  with_adapt "1" @@ fun () ->
  let results =
    run_grid
      (torture_cases
         ~machines:[ "widerep"; "delayed"; "adaptive" ]
         ~drops:[ 0.0; 0.05 ])
  in
  let diagnosed = ref 0 in
  List.iter
    (fun ((c : Torture.case), (r : Torture.result)) ->
      match r.Torture.outcome with
      | Torture.Pass -> ()
      | Torture.Fail v -> (
          match v.Torture.kind with
          | Torture.Sc | Torture.Stale -> incr diagnosed
          | Torture.Hang | Torture.Link | Torture.Invariant | Torture.Crash ->
              Alcotest.fail
                (Printf.sprintf "%s on %s (drop %.2f seed %d): [%s] %s"
                   c.Torture.litmus c.Torture.machine c.Torture.drop
                   c.Torture.fault_seed
                   (Torture.kind_to_string v.Torture.kind)
                   v.Torture.detail)))
    results;
  (* the store-buffering shape is racy by construction: the update family
     must actually exhibit (and diagnose) its relaxed window there *)
  check_bool
    (Printf.sprintf "diagnosed staleness exists (got %d)" !diagnosed)
    true (!diagnosed > 0)

(* --- faultsweep: one lossy cell per zoo protocol --- *)

let test_faultsweep_cell_per_protocol () =
  List.iter
    (fun proto ->
      Faultsweep.run ~apps:[ "ocean" ] ~machine:proto ~drops:[ 0.05 ]
        ~seeds:[ 1 ] ()
      |> List.iter (fun (p : Faultsweep.point) ->
             match p.Faultsweep.outcome with
             | Faultsweep.Passed -> ()
             | Faultsweep.Failed msg ->
                 Alcotest.fail
                   (Printf.sprintf "%s drop %.2f on %s: %s" p.Faultsweep.app
                      p.Faultsweep.drop proto msg)))
    Catalog.protocols

(* --- shootout sanity: tiny grid, adaptive gate holds --- *)

let test_mini_shootout_adaptive_gate () =
  with_adapt "1" @@ fun () ->
  let cells =
    Protozoo.run ~apps:[ "synthpc" ]
      ~protos:[ "stache"; "widerep"; "adaptive" ]
      ~nodes:[ 8 ] ()
  in
  check_int "grid size" 3 (List.length cells);
  match Protozoo.adaptive_regressions cells with
  | [] -> ()
  | rs -> Alcotest.fail (String.concat "; " rs)

let () =
  Alcotest.run "proto"
    [
      ( "zoo",
        [
          Alcotest.test_case "MRU flushed on policy switch" `Quick
            test_mru_flushed_on_policy_switch;
          Alcotest.test_case "MRU flushed on node rejoin" `Quick
            test_mru_flushed_on_rejoin;
          Alcotest.test_case "unknown protocol lists names" `Quick
            test_unknown_protocol_lists_names;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "switches and verifies" `Quick
            test_adaptive_switches_and_verifies;
          Alcotest.test_case "TT_ADAPT=0 kill switch" `Quick
            test_kill_switch_disables_switching;
          Alcotest.test_case "mini shootout gate" `Slow
            test_mini_shootout_adaptive_gate;
        ] );
      ( "torture",
        [
          Alcotest.test_case "litmus clean under SC zoo" `Slow
            test_litmus_clean_under_sc_zoo;
          Alcotest.test_case "litmus diagnosed under update zoo" `Slow
            test_litmus_diagnosed_under_update_zoo;
        ] );
      ( "faultsweep",
        [
          Alcotest.test_case "lossy cell per protocol" `Slow
            test_faultsweep_cell_per_protocol;
        ] );
    ]
