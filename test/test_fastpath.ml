(* Whole-suite invariant: pool-debug mode poisons released pool buffers
   and rejects double-release (satellite of the zero-allocation PR). *)
let () = Tt_util.Debug.set_pool_debug true

(* Equivalence tests for the suspension-free fast path.

   TT_FASTPATH=1 elides the effect suspend/resume whenever a waker fires
   before registration returns and the engine can continue the thread
   inline without reordering events; TT_FASTPATH=0 forces every blocking
   point through the full fiber suspension.  The two modes must be
   observationally identical: same event interleavings, same simulated
   cycles, same protocol counters, same torture traces.  Only the
   [suspensions_taken]/[suspensions_elided] observability counters may
   differ, so stats comparisons filter those out. *)

module Engine = Tt_sim.Engine
module Thread = Tt_sim.Thread
module Barrier = Tt_sim.Barrier
module Lock = Tt_sim.Lock
module Stats = Tt_util.Stats
module H = Tt_harness
module Run = Tt_harness.Run
module Env = Tt_app.Env
module T = Tt_torture.Torture
module Trace = Tt_torture.Trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_fastpath on f =
  let prev = Thread.fastpath_enabled () in
  Thread.set_fastpath on;
  Fun.protect ~finally:(fun () -> Thread.set_fastpath prev) f

(* ---------------- Random-schedule log equivalence ---------------- *)

(* Three threads execute the same random op list (SPMD-style, lightly
   skewed per proc so they desynchronize) over an engine with a barrier
   and a lock.  Every op appends [(proc, op index, thread clock, engine
   now)] to a shared log; the log captures the full interleaving, so any
   divergence between the elided and the suspended path shows up as a
   mismatch.  Same shape as the heap/calendar queue equivalence
   property. *)

type op = Advance of int | Yield | Bar | Critical of int | Await of int
        | Immediate

let decode code =
  let arg = code / 6 in
  match code mod 6 with
  | 0 -> Advance ((arg mod 50) + 1)
  | 1 -> Yield
  | 2 -> Bar
  | 3 -> Critical (arg mod 20)
  | 4 -> Await ((arg mod 8) + 1)
  | _ -> Immediate

let run_schedule codes =
  let nprocs = 3 in
  let ops = List.map decode codes in
  let e = Engine.create () in
  let barrier = Barrier.create e ~participants:nprocs ~latency:11 in
  let lock = Lock.create e () in
  let log = ref [] in
  for proc = 0 to nprocs - 1 do
    ignore
      (Thread.spawn e ~quantum:40 ~name:(Printf.sprintf "p%d" proc)
         (fun th ->
           List.iteri
             (fun i op ->
               (match op with
               | Advance n -> Thread.advance th (n + (proc * 3))
               | Yield -> Thread.yield th
               | Bar -> Barrier.wait barrier th
               | Critical n ->
                   Lock.acquire lock th;
                   Thread.advance th n;
                   Lock.release lock th
               | Await d ->
                   ignore
                     (Thread.await th (fun wake ->
                          Engine.after e (d + proc) (fun () -> wake d)))
               | Immediate ->
                   ignore (Thread.await th (fun wake -> wake proc)));
               log := (proc, i, Thread.clock th, Engine.now e) :: !log)
             ops))
  done;
  Engine.run e;
  List.rev !log

let prop_fastpath_log_equivalence =
  QCheck.Test.make ~name:"fastpath on/off produce identical schedules"
    ~count:60
    QCheck.(list_of_size Gen.(0 -- 25) (0 -- 119))
    (fun codes ->
      let fast = with_fastpath true (fun () -> run_schedule codes) in
      let slow = with_fastpath false (fun () -> run_schedule codes) in
      fast = slow)

(* ---------------- Fig. 3 roundtrip equivalence ---------------- *)

(* The unit event of Figure 3 (one 512-byte block fetched word by word
   between two nodes), run on both machines under both settings: the
   pinned simulated-cycle rows and every protocol counter must be
   bit-identical.  Only the suspension observability counters differ. *)

let roundtrip make_machine =
  let params = { Params.default with Params.nodes = 2 } in
  let machine : H.Machine.t = make_machine params in
  let base = ref 0 in
  Run.spmd machine ~name:"roundtrip" ~check:false (fun env ->
      if env.Env.proc = 0 then base := env.Env.alloc ~home:0 512;
      env.Env.barrier ();
      if env.Env.proc = 1 then
        for w = 0 to 63 do
          ignore (env.Env.read (!base + (w * 8)))
        done)

let comparable_stats r =
  Stats.counters r.Run.run_stats
  |> List.filter (fun (k, _) ->
         not (String.length k >= 12 && String.sub k 0 12 = "suspensions_"))

let check_roundtrip_equiv name make_machine ~pinned_cycles =
  let fast = with_fastpath true (fun () -> roundtrip make_machine) in
  let slow = with_fastpath false (fun () -> roundtrip make_machine) in
  check_int (name ^ ": fast cycles pinned") pinned_cycles fast.Run.cycles;
  check_int (name ^ ": slow cycles pinned") pinned_cycles slow.Run.cycles;
  check_bool
    (name ^ ": per-proc cycles identical")
    true
    (fast.Run.proc_cycles = slow.Run.proc_cycles);
  check_bool
    (name ^ ": stats identical (minus suspension counters)")
    true
    (comparable_stats fast = comparable_stats slow)

let test_stache_roundtrip_equiv () =
  check_roundtrip_equiv "stache"
    (fun p -> H.Machine.typhoon_stache p)
    ~pinned_cycles:2483

let test_dirnnb_roundtrip_equiv () =
  check_roundtrip_equiv "dirnnb" H.Machine.dirnnb ~pinned_cycles:1952

(* ---------------- Torture replay equivalence ---------------- *)

(* Torture cases are pure functions of their fields; the fast path must
   not perturb outcome, cycle count, decision-site numbering, or the
   recorded trace.  Perturbed cases double as a regression test for the
   auto-disable rule: with the tie-break hook installed every Engine.at
   draws a salt, so eliding one would shift all later site indices. *)

let torture_case ?(litmus = "SB") ?(machine = "stache") ?(drop = 0.0)
    ?(perturb_rate = 0.0) () =
  { T.litmus; machine; drop; fault_seed = 7; perturb_rate; perturb_seed = 3;
    iters = 2; sabotage = false }

let check_torture_equiv name case =
  let fast = with_fastpath true (fun () -> T.run case) in
  let slow = with_fastpath false (fun () -> T.run case) in
  check_bool (name ^ ": outcome identical") true
    (fast.T.outcome = slow.T.outcome);
  check_int (name ^ ": cycles identical") slow.T.cycles fast.T.cycles;
  check_int (name ^ ": perturb sites identical") slow.T.perturb_sites
    fast.T.perturb_sites;
  check_int (name ^ ": fault sites identical") slow.T.fault_sites
    fast.T.fault_sites;
  check_bool (name ^ ": trace identical") true
    (Trace.to_lines fast.T.trace = Trace.to_lines slow.T.trace)

let test_torture_equiv_plain () =
  check_torture_equiv "SB/stache" (torture_case ());
  check_torture_equiv "MP/dirnnb" (torture_case ~litmus:"MP" ~machine:"dirnnb" ())

let test_torture_equiv_faulty () =
  check_torture_equiv "SB/stache/drop"
    (torture_case ~drop:0.05 ());
  check_torture_equiv "MP/stache/drop" (torture_case ~litmus:"MP" ~drop:0.05 ())

let test_torture_equiv_perturbed () =
  check_torture_equiv "SB/stache/perturbed"
    (torture_case ~perturb_rate:0.3 ());
  check_torture_equiv "SB/dirnnb/perturbed+drop"
    (torture_case ~machine:"dirnnb" ~drop:0.05 ~perturb_rate:0.3 ())

let prop_torture_equivalence =
  QCheck.Test.make ~name:"random torture cases identical fastpath on/off"
    ~count:12
    QCheck.(
      quad (oneofl [ "SB"; "MP"; "LB"; "CoRR" ])
        (oneofl [ "stache"; "dirnnb" ])
        (oneofl [ 0.0; 0.05 ])
        (oneofl [ 0.0; 0.3 ]))
    (fun (litmus, machine, drop, perturb_rate) ->
      let case = torture_case ~litmus ~machine ~drop ~perturb_rate () in
      let fast = with_fastpath true (fun () -> T.run case) in
      let slow = with_fastpath false (fun () -> T.run case) in
      fast.T.outcome = slow.T.outcome
      && fast.T.cycles = slow.T.cycles
      && fast.T.perturb_sites = slow.T.perturb_sites
      && fast.T.fault_sites = slow.T.fault_sites
      && Trace.to_lines fast.T.trace = Trace.to_lines slow.T.trace)

let () =
  Alcotest.run "fastpath"
    [
      ( "schedule-equivalence",
        [ QCheck_alcotest.to_alcotest prop_fastpath_log_equivalence ] );
      ( "fig3-equivalence",
        [
          Alcotest.test_case "stache roundtrip" `Quick
            test_stache_roundtrip_equiv;
          Alcotest.test_case "dirnnb roundtrip" `Quick
            test_dirnnb_roundtrip_equiv;
        ] );
      ( "torture-equivalence",
        [
          Alcotest.test_case "perfect fabric" `Quick test_torture_equiv_plain;
          Alcotest.test_case "faulty fabric" `Quick test_torture_equiv_faulty;
          Alcotest.test_case "perturbed schedules" `Quick
            test_torture_equiv_perturbed;
          QCheck_alcotest.to_alcotest prop_torture_equivalence;
        ] );
    ]
