(* Whole-suite invariant: pool-debug mode poisons released pool buffers
   and rejects double-release (satellite of the zero-allocation PR). *)
let () = Tt_util.Debug.set_pool_debug true

(* Tests for the discrete-event engine, effect-based threads, barriers and
   locks. *)

module Engine = Tt_sim.Engine
module Thread = Tt_sim.Thread
module Barrier = Tt_sim.Barrier
module Lock = Tt_sim.Lock
module Stats = Tt_util.Stats

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* ---------------- Engine ---------------- *)

let test_engine_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.at e 30 (fun () -> log := 30 :: !log);
  Engine.at e 10 (fun () -> log := 10 :: !log);
  Engine.at e 20 (fun () -> log := 20 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 10; 20; 30 ] (List.rev !log);
  check_int "now = last event" 30 (Engine.now e)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Engine.at e 5 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO among equal timestamps"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.rev !log)

let test_engine_past_rejected () =
  let e = Engine.create () in
  Engine.at e 10 (fun () ->
      try
        Engine.at e 5 (fun () -> ());
        Alcotest.fail "scheduling in the past must raise"
      with Invalid_argument _ -> ());
  Engine.run e

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.at e 1 (fun () ->
      log := 1 :: !log;
      Engine.after e 5 (fun () -> log := 6 :: !log);
      Engine.after e 1 (fun () -> log := 2 :: !log));
  Engine.run e;
  Alcotest.(check (list int)) "nested" [ 1; 2; 6 ] (List.rev !log)

let prop_engine_stable_order =
  QCheck.Test.make ~name:"events fire time-major, FIFO within a time"
    ~count:200
    QCheck.(list (int_range 0 50))
    (fun times ->
      let e = Engine.create () in
      let log = ref [] in
      List.iteri
        (fun i time -> Engine.at e time (fun () -> log := (time, i) :: !log))
        times;
      Engine.run e;
      let expected =
        List.stable_sort
          (fun (a, _) (b, _) -> compare a b)
          (List.mapi (fun i time -> (time, i)) times)
      in
      List.rev !log = expected)

let test_engine_hot_path_no_alloc () =
  (* the packed-key queue must not allocate per event: everything lives in
     the heap's preallocated arrays, and the only closure is the caller's *)
  let e = Engine.create () in
  let remaining = ref 0 in
  let fn = ref (fun () -> ()) in
  (fn :=
     fun () ->
       if !remaining > 0 then begin
         decr remaining;
         Engine.after e 1 !fn
       end);
  (* warm up: run the self-rescheduling chain once so arrays are sized *)
  remaining := 10;
  Engine.after e 1 !fn;
  Engine.run e;
  let n = 10_000 in
  remaining := n;
  Engine.after e 1 !fn;
  let before = Gc.minor_words () in
  Engine.run e;
  let delta = Gc.minor_words () -. before in
  check_bool
    (Printf.sprintf "minor words per event ~0 (delta %.0f over %d events)"
       delta n)
    true
    (delta < 256.0)

let test_engine_after_overflow () =
  let e = Engine.create () in
  let max_time = max_int asr 20 in
  (* the exact boundary is schedulable *)
  Engine.after e max_time (fun () -> ());
  (* one past it must raise with both operands named, not wrap *)
  Alcotest.check_raises "after overflow"
    (Invalid_argument
       (Printf.sprintf
          "Engine.after: delay %d from now=%d overflows the schedulable time \
           budget (max %d)"
          (max_time + 1) 0 max_time))
    (fun () -> Engine.after e (max_time + 1) (fun () -> ()));
  (* a delay that wraps clean past max_int back into valid range must also
     be rejected, not silently scheduled in the "past" or future *)
  Alcotest.check_raises "after wraparound"
    (Invalid_argument
       (Printf.sprintf
          "Engine.after: delay %d from now=%d overflows the schedulable time \
           budget (max %d)"
          max_int 0 max_time))
    (fun () -> Engine.after e max_int (fun () -> ()))

(* Schedule past seq_limit coexisting events so [rebase] renumbers the live
   queue, and pin that FIFO order among equal timestamps survives it. *)
let run_rebase_fifo tiebreak () =
  let e = Engine.create () in
  Engine.set_tiebreak e tiebreak;
  let seq_limit = 1 lsl 20 in
  let log = ref [] in
  let marker i () = log := i :: !log in
  (* five markers at a far-future time, then enough same-time filler to
     exhaust the seq budget without ever draining the queue ... *)
  for i = 0 to 4 do
    Engine.at e 1_000_000 (marker i)
  done;
  let fired = ref 0 in
  for _ = 1 to seq_limit - 5 do
    Engine.after e 0 (fun () -> incr fired)
  done;
  (* ... drain only the time-0 filler: the markers stay queued and keep
     their pre-rebase seqs alive *)
  check_bool "filler drained" false (Engine.run_until e ~limit:0);
  check_int "filler fired" (seq_limit - 5) !fired;
  check_int "markers still queued" 5 (Engine.pending e);
  (* these pushes overflow seq and trigger the in-place renumbering *)
  for i = 5 to 9 do
    Engine.at e 1_000_000 (marker i)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO across rebase"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.rev !log)

let test_engine_rebase_fifo = run_rebase_fifo None

(* an all-zero salt stream must reproduce pure FIFO, including through a
   rebase of salted keys *)
let test_engine_rebase_fifo_tiebreak = run_rebase_fifo (Some (fun _ -> 0))

(* Regression: rebase under a *nonzero*-salt perturber.  Renumbering the
   full seq field would clobber the salt bits with drain position, so a
   rebased event would order against a later same-time push by position
   instead of by salt.  Pin that salts survive: three markers carrying
   salts 3, 1, 2 cross a rebase, then a fourth arrives with salt 2 — it
   must slot between the salt-2 and salt-3 survivors (salt order
   1, 2, 2', 3), not after all of them. *)
let test_engine_rebase_preserves_salt () =
  let e = Engine.create () in
  let salts = ref [ 3; 1; 2 ] in
  Engine.set_tiebreak e
    (Some
       (fun _ ->
         match !salts with
         | s :: rest ->
             salts := rest;
             s
         | [] -> 0));
  let seq_limit = 1 lsl 20 in
  let log = ref [] in
  let marker i () = log := i :: !log in
  for i = 0 to 2 do
    Engine.at e 1_000_000 (marker i)
  done;
  let fired = ref 0 in
  for _ = 1 to seq_limit - 3 do
    Engine.after e 0 (fun () -> incr fired)
  done;
  check_bool "filler drained" false (Engine.run_until e ~limit:0);
  check_int "filler fired" (seq_limit - 3) !fired;
  check_int "markers still queued" 3 (Engine.pending e);
  (* this push overflows seq, rebases the three salted markers, and then
     carries its own salt 2 *)
  salts := [ 2 ];
  Engine.at e 1_000_000 (marker 3);
  Engine.run e;
  Alcotest.(check (list int)) "salt order across rebase" [ 1; 2; 3; 0 ]
    (List.rev !log)

(* The heap and calendar queues must produce bit-identical schedules: same
   firing order, same clock, under nested scheduling and perturbed
   tiebreaks alike.

   The spec is capped at 500 root events (≤ 2000 scheduling decisions with
   nesting): past 4096 decisions without a drain, a perturbed engine wraps
   its 12-bit FIFO counter and coexisting events can carry *identical*
   packed keys — whose relative order the engine legitimately leaves to
   the queue (the heap reorders them, the calendar keeps FIFO).  Below the
   wrap, every coexisting key is distinct and the order is fully pinned. *)
let prop_engine_queue_equivalence =
  QCheck.Test.make
    ~name:"heap and calendar engines produce identical event logs" ~count:150
    QCheck.(
      pair bool
        (list_of_size
           Gen.(int_range 0 500)
           (pair (int_range 0 2000) (int_range 0 3))))
    (fun (perturb, spec) ->
      let trace queue =
        let e = Engine.create ~queue () in
        if perturb then
          Engine.set_tiebreak e (Some (fun site -> (site * 2654435761) land 0xff));
        let log = ref [] in
        List.iteri
          (fun i (time, nested) ->
            Engine.at e time (fun () ->
                log := (i, Engine.now e) :: !log;
                (* nested rescheduling at and after now *)
                for j = 1 to nested do
                  Engine.after e (j * 17 mod 5) (fun () ->
                      log := (i + (1000 * j), Engine.now e) :: !log)
                done))
          spec;
        Engine.run e;
        (List.rev !log, Engine.now e)
      in
      trace Tt_sim.Eventq.Heap = trace Tt_sim.Eventq.Calendar)

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.at e 10 (fun () -> incr fired);
  Engine.at e 100 (fun () -> incr fired);
  let finished = Engine.run_until e ~limit:50 in
  check_bool "not finished" false finished;
  check_int "one event fired" 1 !fired;
  check_int "pending" 1 (Engine.pending e);
  check_bool "finishes" true (Engine.run_until e ~limit:1000)

(* ---------------- Thread ---------------- *)

let test_thread_basic_lifecycle () =
  let e = Engine.create () in
  let ran = ref false in
  let th =
    Thread.spawn e ~name:"t" (fun th ->
        Thread.advance th 42;
        ran := true)
  in
  check_bool "not run before engine" false !ran;
  Engine.run e;
  check_bool "ran" true !ran;
  check_bool "finished" true (Thread.finished th);
  check_int "clock" 42 (Thread.clock th)

let test_thread_suspend_resume_value () =
  let e = Engine.create () in
  let got = ref 0 in
  let _th =
    Thread.spawn e ~name:"t" (fun th ->
        let v = Thread.await th (fun wake -> Engine.after e 10 (fun () -> wake 17)) in
        got := v)
  in
  Engine.run e;
  check_int "value delivered" 17 !got

let test_thread_wake_sets_clock () =
  let e = Engine.create () in
  let resumed_clock = ref 0 in
  let _th =
    Thread.spawn e ~name:"t" (fun th ->
        Thread.advance th 5;
        Thread.await_unit th (fun wake -> Engine.at e 100 (fun () -> wake ()));
        resumed_clock := Thread.clock th)
  in
  Engine.run e;
  (* woken at engine time 100 with local clock 5: clock jumps to 100 *)
  check_int "clock advanced to wake time" 100 !resumed_clock

let test_thread_wake_twice_rejected () =
  let e = Engine.create () in
  let saved = ref (fun _ -> ()) in
  let _th =
    Thread.spawn e ~name:"t" (fun th ->
        ignore (Thread.await th (fun wake -> saved := wake)))
  in
  Engine.run e;
  !saved 0;
  Engine.run e;
  Alcotest.check_raises "second wake rejected"
    (Invalid_argument "Thread t woken twice") (fun () -> !saved 0)

(* [unpark] with no park/await in flight is a distinct bug from a double
   wake and must say so: the slot is idle, nothing was ever registered. *)
let test_thread_unpark_idle_rejected () =
  let e = Engine.create () in
  let th = Thread.spawn e ~name:"t" (fun th -> Thread.advance th 1) in
  Engine.run e;
  check_bool "finished" true (Thread.finished th);
  Alcotest.check_raises "unpark on idle slot"
    (Invalid_argument
       "Thread t: woken with no blocking operation in flight (slot idle)")
    (fun () -> Thread.unpark th)

(* Fast-path slot: a waker that fires before registration returns must
   deliver its value inline, with no fiber suspension. *)
let test_thread_wake_before_registration_returns () =
  let e = Engine.create () in
  let ns = Stats.create "slot" in
  let got = ref 0 in
  let _th =
    Thread.spawn e ~name:"t" (fun th ->
        Thread.set_suspend_counters th
          ~taken:(Stats.counter ns "suspensions_taken")
          ~elided:(Stats.counter ns "suspensions_elided");
        got := Thread.await th (fun wake -> wake 42))
  in
  Engine.run e;
  check_int "value delivered inline" 42 !got;
  if Thread.fastpath_enabled () then begin
    check_int "no suspension taken" 0 (Stats.get ns "suspensions_taken");
    check_int "one suspension elided" 1 (Stats.get ns "suspensions_elided")
  end

(* A wake that fires during registration while a same-time event is already
   queued must NOT run the continuation inline: the queued event holds the
   smaller FIFO sequence number and has to fire first. *)
let test_thread_wake_during_registration_ordering () =
  let e = Engine.create () in
  let order = ref [] in
  let _th =
    Thread.spawn e ~name:"t" (fun th ->
        Thread.await_unit th (fun wake ->
            Engine.at e 0 (fun () -> order := "queued" :: !order);
            wake ());
        order := "resumed" :: !order)
  in
  Engine.run e;
  check_bool "queued event fired before the woken thread" true
    (List.rev !order = [ "queued"; "resumed" ])

(* Both wakes land inside the registration closure: the second must be
   rejected with the same error the post-suspension path raises. *)
let test_thread_double_fire_in_registration () =
  let e = Engine.create () in
  let _th =
    Thread.spawn e ~name:"t" (fun th ->
        ignore
          (Thread.await th (fun wake ->
               wake 1;
               wake 2)))
  in
  Alcotest.check_raises "second fire rejected"
    (Thread.Failure_in ("t", Invalid_argument "Thread t woken twice"))
    (fun () -> Engine.run e)

let test_thread_exception_wrapped () =
  let e = Engine.create () in
  let _th = Thread.spawn e ~name:"boom" (fun _ -> failwith "oops") in
  (try
     Engine.run e;
     Alcotest.fail "expected Failure_in"
   with Thread.Failure_in (name, Failure msg) ->
     check_bool "thread name" true (name = "boom");
     check_bool "message" true (msg = "oops"));
  ()

let test_thread_maybe_yield_interleaves () =
  (* two threads doing pure local work must interleave at quantum
     granularity rather than running to completion one after the other *)
  let e = Engine.create () in
  let order = ref [] in
  let body id th =
    for step = 0 to 3 do
      Thread.advance th 100;
      Thread.maybe_yield th;
      order := (id, step) :: !order
    done
  in
  let _a = Thread.spawn e ~quantum:50 ~name:"a" (body `A) in
  let _b = Thread.spawn e ~quantum:50 ~name:"b" (body `B) in
  Engine.run e;
  let seq = List.rev !order in
  (* with 100-cycle steps and a 50-cycle quantum, A and B must alternate *)
  let rec alternates = function
    | (a, _) :: ((b, _) :: _ as rest) -> a <> b && alternates rest
    | [ _ ] | [] -> true
  in
  check_bool "threads alternate" true (alternates seq)

let test_thread_set_clock () =
  let e = Engine.create () in
  let th = Thread.spawn e ~name:"t" (fun _ -> ()) in
  Thread.set_clock th 123;
  check_int "set_clock" 123 (Thread.clock th);
  Engine.run e

(* ---------------- Barrier ---------------- *)

let test_barrier_releases_all_at_max () =
  let e = Engine.create () in
  let b = Barrier.create e ~participants:3 ~latency:11 in
  let clocks = Array.make 3 0 in
  let spawn i arrive =
    Thread.spawn e ~name:(Printf.sprintf "p%d" i) (fun th ->
        Thread.advance th arrive;
        Barrier.wait b th;
        clocks.(i) <- Thread.clock th)
  in
  let _ = spawn 0 10 and _ = spawn 1 50 and _ = spawn 2 30 in
  Engine.run e;
  Array.iteri
    (fun i c -> check_int (Printf.sprintf "p%d released at max+latency" i) 61 c)
    clocks;
  check_int "one episode" 1 (Barrier.episodes b)

let test_barrier_reusable () =
  let e = Engine.create () in
  let b = Barrier.create e ~participants:2 ~latency:5 in
  let rounds = 4 in
  let body th =
    for _ = 1 to rounds do
      Thread.advance th 3;
      Barrier.wait b th
    done
  in
  let t1 = Thread.spawn e ~name:"x" body in
  let t2 = Thread.spawn e ~name:"y" body in
  Engine.run e;
  check_bool "both finished" true (Thread.finished t1 && Thread.finished t2);
  check_int "episodes" rounds (Barrier.episodes b)

let test_barrier_single_participant () =
  let e = Engine.create () in
  let b = Barrier.create e ~participants:1 ~latency:7 in
  let th =
    Thread.spawn e ~name:"solo" (fun th ->
        Barrier.wait b th;
        Barrier.wait b th)
  in
  Engine.run e;
  check_bool "finished" true (Thread.finished th);
  check_int "latency charged twice" 14 (Thread.clock th)

(* ---------------- Lock ---------------- *)

let test_lock_mutual_exclusion () =
  let e = Engine.create () in
  let l = Lock.create e () in
  let inside = ref 0 and max_inside = ref 0 and total = ref 0 in
  let body th =
    for _ = 1 to 5 do
      Lock.acquire l th;
      incr inside;
      if !inside > !max_inside then max_inside := !inside;
      incr total;
      Thread.advance th 20;
      Thread.yield th;
      decr inside;
      Lock.release l th
    done
  in
  let threads =
    Array.init 4 (fun i -> Thread.spawn e ~name:(Printf.sprintf "w%d" i) body)
  in
  Engine.run e;
  Array.iter (fun th -> check_bool "finished" true (Thread.finished th)) threads;
  check_int "never two holders" 1 !max_inside;
  check_int "all critical sections ran" 20 !total;
  check_int "acquires counted" 20 (Lock.acquires l);
  check_bool "some contention" true (Lock.contended_acquires l > 0)

let test_lock_uncontended_cost () =
  let e = Engine.create () in
  let l = Lock.create e ~uncontended_cost:2 ~transfer_cost:11 () in
  let th =
    Thread.spawn e ~name:"t" (fun th ->
        Lock.acquire l th;
        Lock.release l th)
  in
  Engine.run e;
  check_int "uncontended costs 2" 2 (Thread.clock th)

let test_lock_release_without_hold () =
  let e = Engine.create () in
  let l = Lock.create e () in
  let _th =
    Thread.spawn e ~name:"t" (fun th ->
        try
          Lock.release l th;
          Alcotest.fail "release without hold must raise"
        with Invalid_argument _ -> ())
  in
  Engine.run e

let test_lock_with_lock_releases_on_exn () =
  let e = Engine.create () in
  let l = Lock.create e () in
  let second_got_lock = ref false in
  let _t1 =
    Thread.spawn e ~name:"t1" (fun th ->
        try Lock.with_lock l th (fun () -> failwith "boom") with Failure _ -> ())
  in
  let _t2 =
    Thread.spawn e ~name:"t2" (fun th ->
        Thread.advance th 100;
        Thread.yield th;
        Lock.with_lock l th (fun () -> second_got_lock := true))
  in
  Engine.run e;
  check_bool "lock released after exception" true !second_got_lock

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_engine_time_order;
          Alcotest.test_case "FIFO ties" `Quick test_engine_fifo_ties;
          Alcotest.test_case "past rejected" `Quick test_engine_past_rejected;
          Alcotest.test_case "nested scheduling" `Quick
            test_engine_nested_scheduling;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "after overflow" `Quick test_engine_after_overflow;
          Alcotest.test_case "rebase keeps FIFO" `Quick test_engine_rebase_fifo;
          Alcotest.test_case "rebase keeps FIFO (zero-salt tiebreak)" `Quick
            test_engine_rebase_fifo_tiebreak;
          Alcotest.test_case "rebase preserves nonzero salts" `Quick
            test_engine_rebase_preserves_salt;
          QCheck_alcotest.to_alcotest prop_engine_stable_order;
          QCheck_alcotest.to_alcotest prop_engine_queue_equivalence;
          Alcotest.test_case "hot path does not allocate" `Quick
            test_engine_hot_path_no_alloc;
        ] );
      ( "thread",
        [
          Alcotest.test_case "lifecycle" `Quick test_thread_basic_lifecycle;
          Alcotest.test_case "suspend/resume value" `Quick
            test_thread_suspend_resume_value;
          Alcotest.test_case "wake sets clock" `Quick test_thread_wake_sets_clock;
          Alcotest.test_case "unpark on idle slot names the state" `Quick
            test_thread_unpark_idle_rejected;
          Alcotest.test_case "wake twice rejected" `Quick
            test_thread_wake_twice_rejected;
          Alcotest.test_case "wake before registration returns" `Quick
            test_thread_wake_before_registration_returns;
          Alcotest.test_case "wake during registration keeps FIFO order"
            `Quick test_thread_wake_during_registration_ordering;
          Alcotest.test_case "double fire in registration rejected" `Quick
            test_thread_double_fire_in_registration;
          Alcotest.test_case "exception wrapped" `Quick
            test_thread_exception_wrapped;
          Alcotest.test_case "quantum interleaving" `Quick
            test_thread_maybe_yield_interleaves;
          Alcotest.test_case "set_clock" `Quick test_thread_set_clock;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "releases all at max+latency" `Quick
            test_barrier_releases_all_at_max;
          Alcotest.test_case "reusable" `Quick test_barrier_reusable;
          Alcotest.test_case "single participant" `Quick
            test_barrier_single_participant;
        ] );
      ( "lock",
        [
          Alcotest.test_case "mutual exclusion" `Quick test_lock_mutual_exclusion;
          Alcotest.test_case "uncontended cost" `Quick test_lock_uncontended_cost;
          Alcotest.test_case "release without hold" `Quick
            test_lock_release_without_hold;
          Alcotest.test_case "with_lock releases on exception" `Quick
            test_lock_with_lock_releases_on_exn;
        ] );
    ]
