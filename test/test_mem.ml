(* Whole-suite invariant: pool-debug mode poisons released pool buffers
   and rejects double-release (satellite of the zero-allocation PR). *)
let () = Tt_util.Debug.set_pool_debug true

(* Tests for the memory substrate: address arithmetic, tags, paged memory,
   translation caches. *)

module Addr = Tt_mem.Addr
module Tag = Tt_mem.Tag
module Pagemem = Tt_mem.Pagemem
module Tlb = Tt_mem.Tlb

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* ---------------- Addr ---------------- *)

let test_addr_constants () =
  check_int "page size" 4096 Addr.page_size;
  check_int "block size" 32 Addr.block_size;
  check_int "blocks per page" 128 Addr.blocks_per_page;
  check_int "word size" 8 Addr.word_size

let test_addr_arithmetic () =
  let a = (7 * Addr.page_size) + 1234 in
  check_int "page_of" 7 (Addr.page_of a);
  check_int "page_base" (7 * Addr.page_size) (Addr.page_base a);
  check_int "page_offset" 1234 (Addr.page_offset a);
  check_int "block_index" (1234 / 32) (Addr.block_index a);
  check_int "block_base" ((7 * Addr.page_size) + (1234 / 32 * 32))
    (Addr.block_base a);
  check_int "block_addr roundtrip" (Addr.block_base a)
    (Addr.block_addr ~page:7 ~index:(Addr.block_index a))

let prop_addr_decompose =
  QCheck.Test.make ~name:"page/offset decomposition reconstructs" ~count:1000
    QCheck.(int_range 0 100_000_000)
    (fun a ->
      (Addr.page_of a * Addr.page_size) + Addr.page_offset a = a
      && (Addr.block_of a * Addr.block_size) + Addr.block_offset a = a
      && Addr.block_index a >= 0
      && Addr.block_index a < Addr.blocks_per_page)

let test_addr_alignment () =
  check_bool "word aligned" true (Addr.is_word_aligned 16);
  check_bool "not word aligned" false (Addr.is_word_aligned 12);
  check_bool "block aligned" true (Addr.is_block_aligned 64);
  check_bool "not block aligned" false (Addr.is_block_aligned 65);
  check_bool "page aligned" true (Addr.is_page_aligned 8192);
  check_bool "not page aligned" false (Addr.is_page_aligned 8190)

(* ---------------- Tag ---------------- *)

let test_tag_permits () =
  check_bool "RW load" true (Tag.permits Tag.Read_write Tag.Load);
  check_bool "RW store" true (Tag.permits Tag.Read_write Tag.Store);
  check_bool "RO load" true (Tag.permits Tag.Read_only Tag.Load);
  check_bool "RO store" false (Tag.permits Tag.Read_only Tag.Store);
  check_bool "Invalid load" false (Tag.permits Tag.Invalid Tag.Load);
  check_bool "Invalid store" false (Tag.permits Tag.Invalid Tag.Store);
  check_bool "Busy load" false (Tag.permits Tag.Busy Tag.Load);
  check_bool "Busy store" false (Tag.permits Tag.Busy Tag.Store)

let test_tag_bits_roundtrip () =
  List.iter
    (fun t ->
      check_bool
        ("roundtrip " ^ Tag.to_string t)
        true
        (Tag.equal t (Tag.of_bits (Tag.to_bits t))))
    [ Tag.Read_write; Tag.Read_only; Tag.Invalid; Tag.Busy ];
  Alcotest.check_raises "bad bits" (Invalid_argument "Tag.of_bits: 4")
    (fun () -> ignore (Tag.of_bits 4))

(* ---------------- Pagemem ---------------- *)

let mk () = Pagemem.create ~node:3 ()

let test_pagemem_map_unmap () =
  let m = mk () in
  check_bool "not mapped" false (Pagemem.is_mapped m ~vpage:5);
  ignore (Pagemem.map m ~vpage:5 ~home:1 ~mode:2 ~init_tag:Tag.Read_write);
  check_bool "mapped" true (Pagemem.is_mapped m ~vpage:5);
  check_int "page count" 1 (Pagemem.page_count m);
  (try
     ignore (Pagemem.map m ~vpage:5 ~home:1 ~mode:2 ~init_tag:Tag.Read_write);
     Alcotest.fail "double map must raise"
   with Invalid_argument _ -> ());
  Pagemem.unmap m ~vpage:5;
  check_bool "unmapped" false (Pagemem.is_mapped m ~vpage:5);
  try
    Pagemem.unmap m ~vpage:5;
    Alcotest.fail "double unmap must raise"
  with Invalid_argument _ -> ()

let test_pagemem_capacity () =
  let m = Pagemem.create ~max_pages:2 ~node:0 () in
  ignore (Pagemem.map m ~vpage:1 ~home:0 ~mode:0 ~init_tag:Tag.Invalid);
  ignore (Pagemem.map m ~vpage:2 ~home:0 ~mode:0 ~init_tag:Tag.Invalid);
  (try
     ignore (Pagemem.map m ~vpage:3 ~home:0 ~mode:0 ~init_tag:Tag.Invalid);
     Alcotest.fail "over capacity must raise"
   with Invalid_argument _ -> ());
  Pagemem.unmap m ~vpage:1;
  ignore (Pagemem.map m ~vpage:3 ~home:0 ~mode:0 ~init_tag:Tag.Invalid);
  check_int "capacity honoured" 2 (Pagemem.page_count m)

let test_pagemem_word_roundtrips () =
  let m = mk () in
  ignore (Pagemem.map m ~vpage:1 ~home:0 ~mode:0 ~init_tag:Tag.Read_write);
  let va = (1 * Addr.page_size) + 64 in
  Pagemem.write_f64 m ~vaddr:va 3.14159;
  Alcotest.(check (float 0.0)) "f64" 3.14159 (Pagemem.read_f64 m ~vaddr:va);
  Pagemem.write_i64 m ~vaddr:(va + 8) 0x1234_5678L;
  Alcotest.(check int64) "i64" 0x1234_5678L (Pagemem.read_i64 m ~vaddr:(va + 8));
  Pagemem.write_int m ~vaddr:(va + 16) (-42);
  check_int "int" (-42) (Pagemem.read_int m ~vaddr:(va + 16));
  Pagemem.write_u8 m ~vaddr:(va + 24) 200;
  check_int "u8" 200 (Pagemem.read_u8 m ~vaddr:(va + 24))

let test_pagemem_alignment_checked () =
  let m = mk () in
  ignore (Pagemem.map m ~vpage:1 ~home:0 ~mode:0 ~init_tag:Tag.Read_write);
  try
    ignore (Pagemem.read_f64 m ~vaddr:((1 * Addr.page_size) + 3));
    Alcotest.fail "unaligned read must raise"
  with Invalid_argument _ -> ()

let test_pagemem_unmapped_access () =
  let m = mk () in
  try
    ignore (Pagemem.read_f64 m ~vaddr:(9 * Addr.page_size));
    Alcotest.fail "unmapped access must raise"
  with Invalid_argument _ -> ()

let test_pagemem_block_ops () =
  let m = mk () in
  ignore (Pagemem.map m ~vpage:2 ~home:0 ~mode:0 ~init_tag:Tag.Read_write);
  let va = (2 * Addr.page_size) + (5 * Addr.block_size) in
  let block = Bytes.init Addr.block_size (fun i -> Char.chr (i + 1)) in
  Pagemem.write_block m ~vaddr:(va + 7 (* any addr within the block *)) block;
  Alcotest.(check bytes) "block roundtrip" block (Pagemem.read_block m ~vaddr:va);
  (* word view agrees with byte view *)
  check_int "byte 0" 1 (Pagemem.read_u8 m ~vaddr:va);
  try
    Pagemem.write_block m ~vaddr:va (Bytes.create 16);
    Alcotest.fail "short block must raise"
  with Invalid_argument _ -> ()

let test_pagemem_bytes_cross_page () =
  let m = mk () in
  ignore (Pagemem.map m ~vpage:1 ~home:0 ~mode:0 ~init_tag:Tag.Read_write);
  ignore (Pagemem.map m ~vpage:2 ~home:0 ~mode:0 ~init_tag:Tag.Read_write);
  let start = (2 * Addr.page_size) - 10 in
  let data = Bytes.init 20 (fun i -> Char.chr (65 + i)) in
  Pagemem.write_bytes m ~vaddr:start data;
  Alcotest.(check bytes) "cross-page roundtrip" data
    (Pagemem.read_bytes m ~vaddr:start ~len:20)

let test_pagemem_tags () =
  let m = mk () in
  let page = Pagemem.map m ~vpage:4 ~home:0 ~mode:1 ~init_tag:Tag.Invalid in
  let va = (4 * Addr.page_size) + (17 * Addr.block_size) in
  check_bool "init tag" true (Tag.equal Tag.Invalid (Pagemem.get_tag m ~vaddr:va));
  Pagemem.set_tag m ~vaddr:va Tag.Read_only;
  check_bool "set tag" true
    (Tag.equal Tag.Read_only (Pagemem.get_tag m ~vaddr:va));
  (* neighbouring block unaffected *)
  check_bool "neighbour untouched" true
    (Tag.equal Tag.Invalid (Pagemem.get_tag m ~vaddr:(va + Addr.block_size)));
  Pagemem.set_all_tags page Tag.Read_write;
  check_bool "set_all" true
    (Tag.equal Tag.Read_write (Pagemem.get_tag m ~vaddr:va))

let test_pagemem_user_info () =
  let m = mk () in
  let page = Pagemem.map m ~vpage:9 ~home:2 ~mode:3 ~init_tag:Tag.Read_write in
  check_int "home" 2 page.Pagemem.home;
  check_int "mode" 3 page.Pagemem.mode;
  check_bool "default user info" true (page.Pagemem.user = Pagemem.No_info)

(* ---------------- Tlb ---------------- *)

let test_tlb_hit_miss () =
  let t = Tlb.create ~entries:4 ~miss_penalty:25 () in
  check_int "first access misses" 25 (Tlb.access t 7);
  check_int "second access hits" 0 (Tlb.access t 7);
  check_int "hits" 1 (Tlb.hits t);
  check_int "misses" 1 (Tlb.misses t)

let test_tlb_fifo_eviction () =
  let t = Tlb.create ~entries:2 ~miss_penalty:10 () in
  ignore (Tlb.access t 1);
  ignore (Tlb.access t 2);
  (* touching 1 again does NOT refresh FIFO position *)
  check_int "1 still hits" 0 (Tlb.access t 1);
  ignore (Tlb.access t 3);
  (* 1 was inserted first, so it is the FIFO victim despite the recent hit *)
  check_bool "1 evicted" false (Tlb.probe t 1);
  check_bool "2 survives" true (Tlb.probe t 2);
  check_bool "3 present" true (Tlb.probe t 3)

let test_tlb_flush () =
  let t = Tlb.create ~entries:8 ~miss_penalty:25 () in
  ignore (Tlb.access t 5);
  Tlb.flush_entry t 5;
  check_int "flushed entry misses" 25 (Tlb.access t 5);
  Tlb.flush_all t;
  check_int "flush_all misses" 25 (Tlb.access t 5)

let test_tlb_stale_queue_entries () =
  (* flushing then re-filling must not confuse FIFO accounting *)
  let t = Tlb.create ~entries:2 ~miss_penalty:1 () in
  ignore (Tlb.access t 1);
  ignore (Tlb.access t 2);
  Tlb.flush_entry t 1;
  ignore (Tlb.access t 3);
  (* capacity is 2; present should be {2,3} *)
  check_bool "2 present" true (Tlb.probe t 2);
  check_bool "3 present" true (Tlb.probe t 3)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "mem"
    [
      ( "addr",
        [
          Alcotest.test_case "constants" `Quick test_addr_constants;
          Alcotest.test_case "arithmetic" `Quick test_addr_arithmetic;
          Alcotest.test_case "alignment" `Quick test_addr_alignment;
          qc prop_addr_decompose;
        ] );
      ( "tag",
        [
          Alcotest.test_case "permits" `Quick test_tag_permits;
          Alcotest.test_case "bits roundtrip" `Quick test_tag_bits_roundtrip;
        ] );
      ( "pagemem",
        [
          Alcotest.test_case "map/unmap" `Quick test_pagemem_map_unmap;
          Alcotest.test_case "capacity" `Quick test_pagemem_capacity;
          Alcotest.test_case "word roundtrips" `Quick test_pagemem_word_roundtrips;
          Alcotest.test_case "alignment checked" `Quick
            test_pagemem_alignment_checked;
          Alcotest.test_case "unmapped access" `Quick test_pagemem_unmapped_access;
          Alcotest.test_case "block ops" `Quick test_pagemem_block_ops;
          Alcotest.test_case "bytes across pages" `Quick
            test_pagemem_bytes_cross_page;
          Alcotest.test_case "tags" `Quick test_pagemem_tags;
          Alcotest.test_case "page metadata" `Quick test_pagemem_user_info;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "hit/miss" `Quick test_tlb_hit_miss;
          Alcotest.test_case "FIFO eviction" `Quick test_tlb_fifo_eviction;
          Alcotest.test_case "flush" `Quick test_tlb_flush;
          Alcotest.test_case "stale queue entries" `Quick
            test_tlb_stale_queue_entries;
        ] );
    ]
