(* Whole-suite invariant: pool-debug mode poisons released pool buffers
   and rejects double-release (satellite of the zero-allocation PR). *)
let () = Tt_util.Debug.set_pool_debug true

(* Application-level tests: every benchmark must reproduce its sequential
   oracle on every machine, and runs must be deterministic. *)

module Machine = Tt_harness.Machine
module Run = Tt_harness.Run
module Catalog = Tt_harness.Catalog

let nodes = 8

let params = { Params.default with Params.nodes; cpu_cache_bytes = 16384 }

let tiny_scale name =
  (* keep test runs fast: per-app shrink factors relative to Table 3 *)
  match name with
  | "appbt" -> 0.2
  | "barnes" -> 0.1
  | "mp3d" -> 0.05
  | "ocean" -> 0.12
  | "em3d" -> 0.04
  | _ -> 0.1

let machines =
  [ ("dirnnb", Machine.dirnnb ?reliability:None);
    ("stache", Machine.typhoon_stache ?reliability:None ?max_stache_pages:None) ]

let verified_run name (mk : Params.t -> Machine.t) =
  let machine = mk params in
  let app =
    Catalog.make ~name ~size:Catalog.Small ~scale:(tiny_scale name)
      ~nprocs:nodes
  in
  let r = Run.spmd machine ~name app.Catalog.body in
  ignore (Run.spmd machine ~name:(name ^ "-verify") ~check:false app.Catalog.verify);
  r

let test_app_matches_oracle name () =
  List.iter
    (fun (label, mk) ->
      try ignore (verified_run name mk)
      with e ->
        Alcotest.fail
          (Printf.sprintf "%s on %s: %s" name label (Printexc.to_string e)))
    machines

let test_em3d_matches_oracle_on_update_machine () =
  let machine = Machine.typhoon_em3d params in
  let app =
    Catalog.make ~name:"em3d" ~size:Catalog.Small ~scale:(tiny_scale "em3d")
      ~nprocs:nodes
  in
  ignore (Run.spmd machine ~name:"em3d" app.Catalog.body);
  ignore (Run.spmd machine ~name:"em3d-verify" ~check:false app.Catalog.verify)

let test_runs_are_deterministic () =
  (* identical seeds → identical cycle counts, on both machines *)
  List.iter
    (fun (label, mk) ->
      let c1 = (verified_run "ocean" mk).Run.cycles in
      let c2 = (verified_run "ocean" mk).Run.cycles in
      Alcotest.(check int) (label ^ " deterministic") c1 c2)
    machines

let test_seed_changes_timing () =
  (* different cache-replacement seeds must actually change something *)
  let run seed =
    let machine =
      Machine.typhoon_stache
        { params with Params.seed; cpu_cache_bytes = 4096 }
    in
    let app =
      Catalog.make ~name:"em3d" ~size:Catalog.Small ~scale:0.04 ~nprocs:nodes
    in
    (Run.spmd machine ~name:"em3d" app.Catalog.body).Run.cycles
  in
  Alcotest.(check bool) "seeds differ" true (run 1 <> run 2)

(* the synthetic workload generator: both sharing modes verify on both
   machines across a range of remote fractions *)
let test_synth_verifies () =
  List.iter
    (fun sharing ->
      List.iter
        (fun remote_pct ->
          List.iter
            (fun (label, mk) ->
              let cfg =
                { Tt_app.Synth.default with
                  Tt_app.Synth.remote_pct;
                  ops_per_proc = 400;
                  words_per_proc = 64;
                  sharing }
              in
              let machine : Machine.t = mk params in
              let inst = Tt_app.Synth.make cfg ~nprocs:nodes in
              try
                ignore
                  (Run.spmd machine ~name:"synth" inst.Tt_app.Synth.body);
                ignore
                  (Run.spmd machine ~name:"synth-v" ~check:false
                     inst.Tt_app.Synth.verify)
              with e ->
                Alcotest.fail
                  (Printf.sprintf "synth %s remote=%d on %s: %s"
                     (match sharing with
                     | Tt_app.Synth.Private_writes -> "private"
                     | Tt_app.Synth.Locked_counters -> "locked"
                     | Tt_app.Synth.Producer_consumer -> "prodcons")
                     remote_pct label (Printexc.to_string e)))
            machines)
        [ 0; 50; 100 ])
    [ Tt_app.Synth.Private_writes; Tt_app.Synth.Locked_counters;
      Tt_app.Synth.Producer_consumer ]

let test_synth_stream_deterministic () =
  (* identical configs on fresh machines reproduce identical cycle counts *)
  let cfg = Tt_app.Synth.default in
  let machine = Machine.typhoon_stache params in
  let r1 = Run.spmd machine ~name:"synth" (Tt_app.Synth.make cfg ~nprocs:nodes).Tt_app.Synth.body in
  let machine2 = Machine.typhoon_stache params in
  let r2 = Run.spmd machine2 ~name:"synth" (Tt_app.Synth.make cfg ~nprocs:nodes).Tt_app.Synth.body in
  Alcotest.(check int) "equal cycles" r1.Run.cycles r2.Run.cycles

let test_catalog_rejects_unknown () =
  Alcotest.check_raises "unknown app"
    (Invalid_argument "Catalog.make: unknown app \"nope\"") (fun () ->
      ignore (Catalog.make ~name:"nope" ~size:Catalog.Small ~scale:1.0 ~nprocs:4))

let test_data_set_descriptions () =
  List.iter
    (fun name ->
      let d =
        Catalog.data_set_description ~name ~size:Catalog.Small ~scale:1.0
      in
      Alcotest.(check bool) (name ^ " described") true (String.length d > 0))
    Catalog.names;
  (* paper's Table 3 values at scale 1.0 *)
  Alcotest.(check string) "appbt small" "12x12x12"
    (Catalog.data_set_description ~name:"appbt" ~size:Catalog.Small ~scale:1.0);
  Alcotest.(check string) "barnes large" "8192 bodies"
    (Catalog.data_set_description ~name:"barnes" ~size:Catalog.Large ~scale:1.0);
  Alcotest.(check string) "em3d small" "64000 nodes, degree 10"
    (Catalog.data_set_description ~name:"em3d" ~size:Catalog.Small ~scale:1.0)

let () =
  Alcotest.run "apps"
    [
      ( "oracle",
        List.map
          (fun name ->
            Alcotest.test_case
              (name ^ " matches oracle on both machines")
              `Slow (test_app_matches_oracle name))
          Catalog.names
        @ [
            Alcotest.test_case "em3d on the update machine" `Slow
              test_em3d_matches_oracle_on_update_machine;
          ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, same cycles" `Slow
            test_runs_are_deterministic;
          Alcotest.test_case "different seed, different cycles" `Slow
            test_seed_changes_timing;
        ] );
      ( "synth",
        [
          Alcotest.test_case "both modes verify everywhere" `Slow
            test_synth_verifies;
          Alcotest.test_case "deterministic" `Slow
            test_synth_stream_deterministic;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "unknown app rejected" `Quick
            test_catalog_rejects_unknown;
          Alcotest.test_case "Table 3 descriptions" `Quick
            test_data_set_descriptions;
        ] );
    ]
