(* Whole-suite invariant: pool-debug mode poisons released pool buffers
   and rejects double-release (satellite of the zero-allocation PR). *)
let () = Tt_util.Debug.set_pool_debug true

(* Tests for the Stache user-level protocol: sharer representation, page
   management, coherence flows, FIFO replacement, invariants under random
   workloads. *)

module Engine = Tt_sim.Engine
module Thread = Tt_sim.Thread
module System = Tt_typhoon.System
module Stache = Tt_stache.Stache
module Sharers = Tt_stache.Sharers
module Addr = Tt_mem.Addr
module Tag = Tt_mem.Tag
module Stats = Tt_util.Stats

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let mk ?(nodes = 4) ?(cache = 256 * 1024) ?max_stache_pages () =
  let engine = Engine.create () in
  let sys =
    System.create engine
      { Params.default with Params.nodes; cpu_cache_bytes = cache }
  in
  let st = Stache.install sys ?max_stache_pages () in
  (engine, sys, st)

let run_cpus engine bodies =
  let threads =
    Array.mapi
      (fun i body -> Thread.spawn engine ~name:(Printf.sprintf "cpu%d" i) body)
      bodies
  in
  Engine.run engine;
  Array.iteri
    (fun i th ->
      if not (Thread.finished th) then
        Alcotest.fail (Printf.sprintf "cpu%d did not finish" i))
    threads

let assert_invariants st =
  match Stache.check_invariants st with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* ---------------- Sharers ---------------- *)

let test_sharers_pointers () =
  let s = Sharers.create ~nodes:32 in
  check_bool "empty" true (Sharers.is_empty s);
  List.iter (Sharers.add s) [ 3; 1; 7 ];
  Sharers.add s 3 (* duplicate ignored *);
  check_int "count" 3 (Sharers.count s);
  Alcotest.(check (list int)) "sorted pointers" [ 1; 3; 7 ] (Sharers.to_list s);
  check_bool "not overflowed at 3" false (Sharers.is_overflowed s);
  Sharers.remove s 3;
  check_bool "removed" false (Sharers.mem s 3)

let test_sharers_overflow_at_seven () =
  let s = Sharers.create ~nodes:32 in
  for n = 0 to 5 do
    Sharers.add s n
  done;
  check_bool "6 pointers fit" false (Sharers.is_overflowed s);
  Sharers.add s 6;
  check_bool "7th overflows to bit vector" true (Sharers.is_overflowed s);
  check_int "one overflow event" 1 (Sharers.overflow_events s);
  check_int "all preserved" 7 (Sharers.count s);
  Alcotest.(check (list int)) "contents preserved" [ 0; 1; 2; 3; 4; 5; 6 ]
    (Sharers.to_list s);
  Sharers.clear s;
  check_bool "clear resets to pointers" false (Sharers.is_overflowed s)

let test_sharers_range () =
  let s = Sharers.create ~nodes:4 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Sharers.add: node out of range") (fun () ->
      Sharers.add s 4)

(* ---------------- Allocation and page management ---------------- *)

let test_alloc_maps_home_page () =
  let engine, sys, st = mk () in
  let va = ref 0 in
  run_cpus engine
    [|
      (fun th -> va := Stache.alloc st ~th ~node:0 ~home:2 ~bytes:64 ());
      (fun _ -> ()); (fun _ -> ()); (fun _ -> ());
    |];
  let vpage = Addr.page_of !va in
  check_int "registry knows the home" 2 (Stache.home_of st ~vaddr:!va);
  check_bool "home page mapped at home" true
    (Tt_mem.Pagemem.is_mapped (System.node_mem sys 2) ~vpage);
  check_bool "not mapped elsewhere" false
    (Tt_mem.Pagemem.is_mapped (System.node_mem sys 0) ~vpage);
  let page = Tt_mem.Pagemem.get_page (System.node_mem sys 2) ~vpage in
  check_int "home page mode" Stache.mode_home page.Tt_mem.Pagemem.mode;
  check_bool "home tags ReadWrite" true
    (Tag.equal Tag.Read_write
       (Tt_mem.Pagemem.get_tag (System.node_mem sys 2) ~vaddr:!va))

let test_first_remote_touch_creates_stache_page () =
  let engine, sys, st = mk () in
  let va = ref 0 in
  run_cpus engine
    [|
      (fun th ->
        va := Stache.alloc st ~th ~node:0 ~home:0 ~bytes:64 ();
        System.cpu_write_f64 sys ~node:0 th !va 4.25;
        Thread.yield th);
      (fun th ->
        Thread.advance th 2000;
        Thread.yield th;
        Alcotest.(check (float 0.0)) "remote read sees data" 4.25
          (System.cpu_read_f64 sys ~node:1 th !va));
      (fun _ -> ()); (fun _ -> ());
    |];
  let vpage = Addr.page_of !va in
  check_bool "stache page mapped" true
    (Tt_mem.Pagemem.is_mapped (System.node_mem sys 1) ~vpage);
  let page = Tt_mem.Pagemem.get_page (System.node_mem sys 1) ~vpage in
  check_int "stache page mode" Stache.mode_remote page.Tt_mem.Pagemem.mode;
  check_bool "fetched block RO" true
    (Tag.equal Tag.Read_only
       (Tt_mem.Pagemem.get_tag (System.node_mem sys 1) ~vaddr:!va));
  (* other blocks of the page stay Invalid *)
  check_bool "other blocks Invalid" true
    (Tag.equal Tag.Invalid
       (Tt_mem.Pagemem.get_tag (System.node_mem sys 1)
          ~vaddr:(!va + Addr.block_size)));
  assert_invariants st

let test_remote_write_gets_exclusive () =
  let engine, sys, st = mk () in
  let va = ref 0 in
  run_cpus engine
    [|
      (fun th ->
        va := Stache.alloc st ~th ~node:0 ~home:0 ~bytes:64 ();
        System.cpu_write_f64 sys ~node:0 th !va 1.0;
        Thread.yield th);
      (fun th ->
        Thread.advance th 2000;
        Thread.yield th;
        System.cpu_write_f64 sys ~node:1 th !va 2.0);
      (fun _ -> ()); (fun _ -> ());
    |];
  check_bool "writer holds RW" true
    (Tag.equal Tag.Read_write
       (Tt_mem.Pagemem.get_tag (System.node_mem sys 1) ~vaddr:!va));
  check_bool "home tag Invalid" true
    (Tag.equal Tag.Invalid
       (Tt_mem.Pagemem.get_tag (System.node_mem sys 0) ~vaddr:!va));
  assert_invariants st

let test_home_refetches_from_remote_owner () =
  let engine, sys, st = mk () in
  let va = ref 0 in
  let seen = ref 0.0 in
  run_cpus engine
    [|
      (fun th ->
        va := Stache.alloc st ~th ~node:0 ~home:0 ~bytes:64 ();
        System.cpu_write_f64 sys ~node:0 th !va 1.0;
        Thread.yield th;
        (* wait until node 1 has taken the block exclusively *)
        Thread.advance th 10_000;
        Thread.yield th;
        seen := System.cpu_read_f64 sys ~node:0 th !va);
      (fun th ->
        Thread.advance th 2000;
        Thread.yield th;
        System.cpu_write_f64 sys ~node:1 th !va 3.5);
      (fun _ -> ()); (fun _ -> ());
    |];
  Alcotest.(check (float 0.0)) "home read recalls owner's data" 3.5 !seen;
  check_bool "home fault counted" true (Stats.get (Stache.stats st) "home_faults" >= 1);
  check_bool "a recall happened" true (Stats.get (Stache.stats st) "recall" >= 1);
  assert_invariants st

let test_upgrade_message_flow () =
  let engine, sys, st = mk () in
  let va = ref 0 in
  run_cpus engine
    [|
      (fun th ->
        va := Stache.alloc st ~th ~node:0 ~home:0 ~bytes:64 ();
        System.cpu_write_f64 sys ~node:0 th !va 1.0;
        Thread.yield th);
      (fun th ->
        Thread.advance th 2000;
        Thread.yield th;
        (* read then write: the write is an upgrade of the RO copy *)
        ignore (System.cpu_read_f64 sys ~node:1 th !va);
        System.cpu_write_f64 sys ~node:1 th !va 2.0);
      (fun _ -> ()); (fun _ -> ());
    |];
  check_bool "upgrade counted" true (Stats.get (Stache.stats st) "upgrade" >= 1);
  assert_invariants st

let test_page_replacement_fifo_and_writeback () =
  (* node 1 may hold only 2 stache pages; touching 3 shared pages evicts the
     first (FIFO) and flushes its modified block home *)
  let engine, sys, st = mk ~max_stache_pages:2 () in
  let vas = Array.make 3 0 in
  run_cpus engine
    [|
      (fun th ->
        for i = 0 to 2 do
          vas.(i) <-
            Stache.alloc st ~th ~node:0 ~home:0 ~bytes:Addr.page_size
              ~align:Addr.page_size ();
          System.cpu_write_f64 sys ~node:0 th vas.(i) 0.0
        done;
        Thread.yield th);
      (fun th ->
        Thread.advance th 3000;
        Thread.yield th;
        (* dirty page 0, then touch pages 1 and 2 *)
        System.cpu_write_f64 sys ~node:1 th vas.(0) 42.0;
        ignore (System.cpu_read_f64 sys ~node:1 th vas.(1));
        ignore (System.cpu_read_f64 sys ~node:1 th vas.(2));
        Thread.yield th);
      (fun _ -> ()); (fun _ -> ());
    |];
  check_bool "page 0 evicted (FIFO)" false
    (Tt_mem.Pagemem.is_mapped (System.node_mem sys 1)
       ~vpage:(Addr.page_of vas.(0)));
  check_bool "pages 1,2 resident" true
    (Tt_mem.Pagemem.is_mapped (System.node_mem sys 1)
       ~vpage:(Addr.page_of vas.(1))
    && Tt_mem.Pagemem.is_mapped (System.node_mem sys 1)
         ~vpage:(Addr.page_of vas.(2)));
  check_int "one replacement" 1 (Stats.get (Stache.stats st) "page_replacements");
  check_bool "writeback sent" true (Stats.get (Stache.stats st) "writeback" >= 1);
  (* the dirty datum made it home *)
  Alcotest.(check (float 0.0)) "modified data flushed home" 42.0
    (Tt_mem.Pagemem.read_f64 (System.node_mem sys 0) ~vaddr:vas.(0));
  assert_invariants st

let test_many_sharers_overflow_and_invalidate () =
  (* 8 nodes read the same block (> 6 sharers: bit-vector), then the home
     writes, invalidating everyone *)
  let nodes = 8 in
  let engine, sys, st = mk ~nodes () in
  let va = ref 0 in
  let barrier = Tt_sim.Barrier.create engine ~participants:nodes ~latency:11 in
  let bodies =
    Array.init nodes (fun node th ->
        if node = 0 then begin
          va := Stache.alloc st ~th ~node:0 ~home:0 ~bytes:64 ();
          System.cpu_write_f64 sys ~node:0 th !va 1.5
        end;
        Tt_sim.Barrier.wait barrier th;
        if node > 0 then
          Alcotest.(check (float 0.0)) "all read" 1.5
            (System.cpu_read_f64 sys ~node th !va);
        Tt_sim.Barrier.wait barrier th;
        if node = 0 then System.cpu_write_f64 sys ~node:0 th !va 2.5;
        Tt_sim.Barrier.wait barrier th;
        if node > 0 then
          Alcotest.(check (float 0.0)) "all see new value" 2.5
            (System.cpu_read_f64 sys ~node th !va))
  in
  run_cpus engine (Array.map (fun b -> fun th -> b th) bodies);
  check_bool "7 sharers sent invals" true
    (Stats.get (Stache.stats st) "inval" >= 7);
  assert_invariants st

let test_message_count_for_clean_fetch () =
  (* one remote read of a clean block: exactly 1 request + 1 response *)
  let engine, sys, st = mk () in
  let va = ref 0 in
  run_cpus engine
    [|
      (fun th ->
        va := Stache.alloc st ~th ~node:0 ~home:0 ~bytes:64 ();
        System.cpu_write_f64 sys ~node:0 th !va 1.0;
        Thread.yield th);
      (fun th ->
        Thread.advance th 2000;
        Thread.yield th;
        ignore (System.cpu_read_f64 sys ~node:1 th !va));
      (fun _ -> ()); (fun _ -> ());
    |];
  let net = Tt_net.Fabric.stats (System.fabric sys) in
  check_int "one request" 1 (Stats.get net "msgs.request");
  check_int "one response" 1 (Stats.get net "msgs.response")

(* Corner: the owner's page is replaced (writeback in flight) while the
   home is recalling the block.  FIFO ordering means the writeback lands
   first; the recall is answered with a nack and the reader still sees the
   modified value. *)
let test_recall_races_page_replacement () =
  let engine, sys, st = mk ~max_stache_pages:1 () in
  let vas = Array.make 2 0 in
  run_cpus engine
    [|
      (fun th ->
        vas.(0) <-
          Stache.alloc st ~th ~node:0 ~home:0 ~bytes:Addr.page_size
            ~align:Addr.page_size ();
        vas.(1) <-
          Stache.alloc st ~th ~node:0 ~home:0 ~bytes:Addr.page_size
            ~align:Addr.page_size ();
        System.cpu_write_f64 sys ~node:0 th vas.(0) 1.0;
        Thread.yield th;
        (* wait until node 1 owns block 0 of page 0 exclusively *)
        Thread.advance th 10_000;
        Thread.yield th;
        (* home read fault: sends a recall to node 1 *)
        Alcotest.(check (float 0.0)) "home reads the modified value" 21.0
          (System.cpu_read_f64 sys ~node:0 th vas.(0)));
      (fun th ->
        Thread.advance th 2000;
        Thread.yield th;
        (* take page 0's block exclusively, then immediately touch page 1 so
           the 1-page stache replaces page 0 (writeback) *)
        System.cpu_write_f64 sys ~node:1 th vas.(0) 21.0;
        ignore (System.cpu_read_f64 sys ~node:1 th vas.(1)));
      (fun _ -> ()); (fun _ -> ());
    |];
  check_bool "a replacement happened" true
    (Stats.get (Stache.stats st) "page_replacements" >= 1);
  check_bool "the modified block was written back" true
    (Stats.get (Stache.stats st) "writeback" >= 1);
  assert_invariants st

(* ---------------- Randomized coherence oracle ---------------- *)

let prop_random_coherence =
  QCheck.Test.make
    ~name:"random programs match the sequential oracle and keep invariants"
    ~count:20
    QCheck.(int_bound 1000)
    (fun seed ->
      let nodes = 4 in
      let engine = Engine.create () in
      let sys =
        System.create engine
          { Params.default with Params.nodes; cpu_cache_bytes = 4096;
            seed = seed + 1 }
      in
      let st = Stache.install sys () in
      let words = 256 in
      let va = ref 0 in
      let lock = Tt_sim.Lock.create engine () in
      let barrier = Tt_sim.Barrier.create engine ~participants:nodes ~latency:11 in
      (* model: each slot counts its increments; reads check a plausible
         value is visible (monotonicity is guaranteed by the lock) *)
      let final = Array.make words 0.0 in
      let body node th =
        if node = 0 then begin
          va := Stache.alloc st ~th ~node:0 ~bytes:(words * 8) ();
          for w = 0 to words - 1 do
            System.cpu_write_f64 sys ~node:0 th (!va + (w * 8)) 0.0
          done
        end;
        Tt_sim.Barrier.wait barrier th;
        let prng = Tt_util.Prng.create ~seed:(seed * 31 + node) in
        for _op = 1 to 150 do
          let w = Tt_util.Prng.int prng words in
          let a = !va + (w * 8) in
          if Tt_util.Prng.bool prng then
            ignore (System.cpu_read_f64 sys ~node th a)
          else begin
            Tt_sim.Lock.acquire lock th;
            System.cpu_write_f64 sys ~node th a
              (System.cpu_read_f64 sys ~node th a +. 1.0);
            Tt_sim.Lock.release lock th
          end
        done;
        Tt_sim.Barrier.wait barrier th;
        if node = 0 then
          for w = 0 to words - 1 do
            final.(w) <- System.cpu_read_f64 sys ~node:0 th (!va + (w * 8))
          done
      in
      let threads =
        Array.init nodes (fun i ->
            Thread.spawn engine ~name:(Printf.sprintf "cpu%d" i) (body i))
      in
      Engine.run engine;
      (* oracle: replay the increments per slot *)
      let expect = Array.make words 0.0 in
      for node = 0 to nodes - 1 do
        let prng = Tt_util.Prng.create ~seed:(seed * 31 + node) in
        for _op = 1 to 150 do
          let w = Tt_util.Prng.int prng words in
          if not (Tt_util.Prng.bool prng) then expect.(w) <- expect.(w) +. 1.0
        done
      done;
      Array.for_all Thread.finished threads
      && Stache.check_invariants st = Ok ()
      && final = expect)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "stache"
    [
      ( "sharers",
        [
          Alcotest.test_case "pointer representation" `Quick test_sharers_pointers;
          Alcotest.test_case "overflow at 7 sharers" `Quick
            test_sharers_overflow_at_seven;
          Alcotest.test_case "range check" `Quick test_sharers_range;
        ] );
      ( "pages",
        [
          Alcotest.test_case "alloc maps home page" `Quick test_alloc_maps_home_page;
          Alcotest.test_case "first remote touch" `Quick
            test_first_remote_touch_creates_stache_page;
          Alcotest.test_case "FIFO replacement + writeback" `Quick
            test_page_replacement_fifo_and_writeback;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "remote write gets exclusive" `Quick
            test_remote_write_gets_exclusive;
          Alcotest.test_case "home refetches from owner" `Quick
            test_home_refetches_from_remote_owner;
          Alcotest.test_case "upgrade flow" `Quick test_upgrade_message_flow;
          Alcotest.test_case "sharer overflow + broadcast invalidate" `Quick
            test_many_sharers_overflow_and_invalidate;
          Alcotest.test_case "clean fetch = 2 messages" `Quick
            test_message_count_for_clean_fetch;
          Alcotest.test_case "recall races page replacement" `Quick
            test_recall_races_page_replacement;
        ] );
      ("random", [ qc prop_random_coherence ]);
    ]
