(* Whole-suite invariant: pool-debug mode poisons released pool buffers
   and rejects double-release (satellite of the zero-allocation PR). *)
let () = Tt_util.Debug.set_pool_debug true

(* Simulated-cycle regression pins.

   The simulator's hot paths (event queue, counters, page translation) are
   performance-tuned over time; these tests pin the *simulated* results of
   small fixed-configuration runs so any wall-clock optimisation that changes
   simulated behaviour is caught immediately.  The pinned numbers were
   recorded from the seed implementation and must never drift. *)

module H = Tt_harness
module Run = Tt_harness.Run
module Env = Tt_app.Env
module Stats = Tt_util.Stats

let check_int = Alcotest.(check int)

(* One full block-fetch round trip between two nodes (the unit event of
   Figure 3), on each machine model. *)
let roundtrip make_machine =
  let params = { Params.default with Params.nodes = 2 } in
  let machine : H.Machine.t = make_machine params in
  let base = ref 0 in
  Run.spmd machine ~name:"roundtrip" ~check:false (fun env ->
      if env.Env.proc = 0 then base := env.Env.alloc ~home:0 512;
      env.Env.barrier ();
      if env.Env.proc = 1 then
        for w = 0 to 63 do
          ignore (env.Env.read (!base + (w * 8)))
        done)

let test_stache_roundtrip_pinned () =
  let r = roundtrip (fun p -> H.Machine.typhoon_stache p) in
  let s = r.Run.run_stats in
  check_int "cycles" 2483 r.Run.cycles;
  check_int "msgs.request" 16 (Stats.get s "msgs.request");
  check_int "msgs.response" 16 (Stats.get s "msgs.response");
  check_int "words.request" 48 (Stats.get s "words.request");
  check_int "words.response" 176 (Stats.get s "words.response");
  check_int "accesses" 81 (Stats.get s "accesses");
  check_int "local_misses" 16 (Stats.get s "local_misses");
  check_int "block_faults" 16 (Stats.get s "block_faults");
  check_int "get_ro" 16 (Stats.get s "get_ro");
  check_int "page_faults" 1 (Stats.get s "page_faults")

let test_dirnnb_roundtrip_pinned () =
  let r = roundtrip H.Machine.dirnnb in
  let s = r.Run.run_stats in
  check_int "cycles" 1952 r.Run.cycles;
  check_int "accesses" 64 (Stats.get s "accesses");
  check_int "msgs.request" 16 (Stats.get s "msgs.request");
  check_int "msgs.response" 16 (Stats.get s "msgs.response");
  check_int "words.request" 32 (Stats.get s "words.request");
  check_int "remote_misses" 16 (Stats.get s "remote_misses")

(* The same roundtrip over a faulty fabric: pins the reliable transport's
   behaviour (sequencing, acks, retransmission) and the fault model's PRNG
   stream.  Any change to either shifts these counters. *)
let test_stache_flaky_roundtrip_pinned () =
  let cfg =
    Tt_net.Faults.uniform ~seed:2026 ~drop:0.05 ~dup:0.0125 ~reorder:0.025 ()
  in
  let r =
    roundtrip (fun p ->
        H.Machine.typhoon_stache ~reliability:(Tt_net.Reliable.Flaky cfg) p)
  in
  let s = r.Run.run_stats in
  check_int "cycles" 2686 r.Run.cycles;
  check_int "reliable.data_sent" 32 (Stats.get s "reliable.data_sent");
  check_int "reliable.retransmits" 2 (Stats.get s "reliable.retransmits");
  check_int "reliable.acks_sent" 18 (Stats.get s "reliable.acks_sent");
  check_int "reliable.dup_dropped" 2 (Stats.get s "reliable.dup_dropped");
  check_int "faults.dropped" 1 (Stats.get s "faults.dropped");
  check_int "faults.duplicated" 1 (Stats.get s "faults.duplicated");
  check_int "faults.reordered" 0 (Stats.get s "faults.reordered");
  check_int "msgs.request" 17 (Stats.get s "msgs.request");
  check_int "msgs.response" 35 (Stats.get s "msgs.response");
  (* the protocol still does exactly the fault-free run's work *)
  check_int "accesses" 81 (Stats.get s "accesses");
  check_int "get_ro" 16 (Stats.get s "get_ro")

(* A tiny EM3D run under the custom update protocol (the unit of Figure 4):
   covers bulk traffic, prefetch, barriers and the Stache directory. *)
let test_em3d_update_pinned () =
  let cfg =
    { Tt_app.Em3d.total_nodes = 64; degree = 3; pct_remote = 30; iters = 2;
      seed = 5; software_prefetch = false }
  in
  let params = { Params.default with Params.nodes = 4 } in
  let machine = H.Machine.typhoon_em3d params in
  let inst = Tt_app.Em3d.make cfg ~nprocs:4 in
  let r = Run.spmd machine ~name:"em3d" inst.Tt_app.Em3d.body in
  let s = r.Run.run_stats in
  check_int "cycles" 5935 r.Run.cycles;
  check_int "accesses" 1852 (Stats.get s "accesses");
  check_int "msgs.request" 146 (Stats.get s "msgs.request");
  check_int "msgs.response" 37 (Stats.get s "msgs.response");
  check_int "msgs.local" 20 (Stats.get s "msgs.local");
  check_int "words.request" 1113 (Stats.get s "words.request");
  check_int "updates_buffered" 89 (Stats.get s "updates_buffered");
  check_int "updates_sent" 89 (Stats.get s "updates_sent");
  check_int "fetches" 37 (Stats.get s "fetches");
  check_int "local_misses" 175 (Stats.get s "local_misses")

let () =
  Alcotest.run "regression"
    [
      ( "simulated-cycles",
        [
          Alcotest.test_case "stache roundtrip" `Quick
            test_stache_roundtrip_pinned;
          Alcotest.test_case "dirnnb roundtrip" `Quick
            test_dirnnb_roundtrip_pinned;
          Alcotest.test_case "stache roundtrip, flaky fabric" `Quick
            test_stache_flaky_roundtrip_pinned;
          Alcotest.test_case "em3d update tiny" `Quick test_em3d_update_pinned;
        ] );
    ]
