(* Whole-suite invariant: pool-debug mode poisons released pool buffers
   and rejects double-release (satellite of the zero-allocation PR). *)
let () = Tt_util.Debug.set_pool_debug true

(* Tests for the two ablation knobs: limited-pointer directories (Dir_iB)
   and the finite-link-bandwidth network model.  Both must preserve
   correctness; the tests also pin down their expected performance
   direction. *)

module Machine = Tt_harness.Machine
module Run = Tt_harness.Run
module Env = Tt_app.Env
module Stats = Tt_util.Stats

let nodes = 8

(* a widely-shared-then-written workload: many sharers per block *)
let broadcast_workload (base : int ref) (env : Env.t) =
  let words = 64 in
  if env.Env.proc = 0 then begin
    base := env.Env.alloc ~home:0 (words * Env.word);
    for w = 0 to words - 1 do
      env.Env.write (!base + (w * Env.word)) 1.0
    done
  end;
  env.Env.barrier ();
  for _round = 1 to 3 do
    (* six readers: more than a small pointer limit, fewer than a
       broadcast would hit *)
    if env.Env.proc >= 1 && env.Env.proc <= 6 then
      for w = 0 to words - 1 do
        ignore (env.Env.read (!base + (w * Env.word)))
      done;
    env.Env.barrier ();
    (* the owner rewrites: invalidations to all sharers *)
    if env.Env.proc = 0 then
      for w = 0 to words - 1 do
        env.Env.write (!base + (w * Env.word)) 2.0
      done;
    env.Env.barrier ()
  done;
  (* the readers verify the final value *)
  if env.Env.proc >= 1 && env.Env.proc <= 6 then
    for w = 0 to words - 1 do
      let v = env.Env.read (!base + (w * Env.word)) in
      if v <> 2.0 then failwith (Printf.sprintf "word %d = %g" w v)
    done

let run_dirnnb params =
  let machine = Machine.dirnnb params in
  let base = ref 0 in
  Run.spmd machine ~name:"broadcast" (broadcast_workload base)

let test_limited_pointers_correct_and_overflowing () =
  let params =
    { Params.default with Params.nodes; dir_limited_pointers = Some 4 }
  in
  let r = run_dirnnb params in
  Alcotest.(check bool) "overflows recorded" true
    (Stats.get r.Run.run_stats "dir_overflows" > 0);
  Alcotest.(check bool) "broadcast invalidations used" true
    (Stats.get r.Run.run_stats "broadcast_invals" > 0)

let test_limited_pointers_cost_more_invals () =
  (* six sharers of eight nodes: a 2-pointer directory broadcasts, sending
     strictly more invalidations than the full map *)
  let invals params =
    Stats.get (run_dirnnb params).Run.run_stats "invals_received"
  in
  let full = invals { Params.default with Params.nodes } in
  let limited =
    invals { Params.default with Params.nodes; dir_limited_pointers = Some 2 }
  in
  Alcotest.(check bool)
    (Printf.sprintf "limited (%d) > full map (%d)" limited full)
    true (limited > full)

let test_full_map_never_overflows () =
  let r = run_dirnnb { Params.default with Params.nodes } in
  Alcotest.(check int) "no overflows" 0 (Stats.get r.Run.run_stats "dir_overflows")

let test_contention_model_slows_hot_home () =
  (* all traffic aimed at node 0's port: finite bandwidth must cost cycles *)
  let cycles link =
    let params =
      { Params.default with Params.nodes; link_words_per_cycle = link }
    in
    let base = ref 0 in
    let machine = Machine.typhoon_stache params in
    (Run.spmd machine ~name:"hot-home" (fun env ->
         let words = 512 in
         if env.Env.proc = 0 then begin
           base := env.Env.alloc ~home:0 (words * Env.word);
           for w = 0 to words - 1 do
             env.Env.write (!base + (w * Env.word)) 1.0
           done
         end;
         env.Env.barrier ();
         for w = 0 to words - 1 do
           ignore (env.Env.read (!base + (w * Env.word)))
         done))
      .Run.cycles
  in
  let free = cycles None and tight = cycles (Some 1) in
  Alcotest.(check bool)
    (Printf.sprintf "1 word/cycle (%d) slower than contention-free (%d)" tight
       free)
    true (tight > free)

let test_contention_model_correctness () =
  (* the EM3D run must still match its oracle with a congested network *)
  let params =
    { Params.default with Params.nodes; link_words_per_cycle = Some 2 }
  in
  let cfg =
    { Tt_app.Em3d.total_nodes = 1200; degree = 4; pct_remote = 30; iters = 3;
      seed = 31;
      software_prefetch = false }
  in
  List.iter
    (fun (make : Params.t -> Machine.t) ->
      let machine = make params in
      let inst = Tt_app.Em3d.make cfg ~nprocs:nodes in
      ignore (Run.spmd machine ~name:"em3d" inst.Tt_app.Em3d.body);
      ignore
        (Run.spmd machine ~name:"em3d-v" ~check:false inst.Tt_app.Em3d.verify))
    [ Machine.dirnnb; Machine.typhoon_stache ?max_stache_pages:None;
      Machine.typhoon_em3d ?max_stache_pages:None ]

let () =
  Alcotest.run "ablations"
    [
      ( "limited-pointers",
        [
          Alcotest.test_case "correct and overflowing" `Quick
            test_limited_pointers_correct_and_overflowing;
          Alcotest.test_case "more invalidations than full map" `Quick
            test_limited_pointers_cost_more_invals;
          Alcotest.test_case "full map never overflows" `Quick
            test_full_map_never_overflows;
        ] );
      ( "link-bandwidth",
        [
          Alcotest.test_case "hot home pays for contention" `Quick
            test_contention_model_slows_hot_home;
          Alcotest.test_case "congested runs stay correct" `Slow
            test_contention_model_correctness;
        ] );
    ]
