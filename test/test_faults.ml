(* Whole-suite invariant: pool-debug mode poisons released pool buffers
   and rejects double-release (satellite of the zero-allocation PR). *)
let () = Tt_util.Debug.set_pool_debug true

(* Tier-1 fault-tolerance tests: a small fault-matrix smoke over the Fig. 3
   apps, determinism of faulty runs, and termination guarantees (watchdog
   budgets, dead-link escalation). *)

module Machine = Tt_harness.Machine
module Run = Tt_harness.Run
module Catalog = Tt_harness.Catalog
module Faultsweep = Tt_harness.Faultsweep
module Watchdog = Tt_harness.Watchdog
module Reliable = Tt_net.Reliable
module Faults = Tt_net.Faults
module Stats = Tt_util.Stats

let check_int = Alcotest.(check int)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* 2 drop rates x 3 seeds on a small em3d: every cell must complete, pass
   the coherence audit, and reproduce the fault-free oracle's results *)
let test_fault_matrix_smoke machine () =
  let points =
    Faultsweep.run ~apps:[ "em3d" ] ~machine ~drops:[ 0.01; 0.05 ]
      ~seeds:[ 1; 2; 3 ] ~scale:0.05 ~nodes:4 ()
  in
  check_int "grid size" 6 (List.length points);
  List.iter
    (fun p ->
      match p.Faultsweep.outcome with
      | Faultsweep.Passed ->
          Alcotest.(check bool)
            "faults were actually injected" true
            (p.Faultsweep.dropped > 0)
      | Faultsweep.Failed m ->
          Alcotest.fail
            (Printf.sprintf "em3d on %s drop=%.2f seed=%d: %s" machine
               p.Faultsweep.drop p.Faultsweep.seed m))
    points

let flaky_em3d ~seed ~drop =
  let params = { Params.default with Params.nodes = 4 } in
  let reliability = Reliable.Flaky (Faultsweep.config_of ~drop ~seed ()) in
  let m = Machine.typhoon_stache ~reliability params in
  let app = Catalog.make ~name:"em3d" ~size:Catalog.Small ~scale:0.05 ~nprocs:4 in
  let r = Run.spmd m ~name:"em3d" app.Catalog.body in
  let s = m.Machine.merged_stats () in
  ( r.Run.cycles,
    Stats.get s "faults.dropped",
    Stats.get s "faults.duplicated",
    Stats.get s "faults.reordered",
    Stats.get s "reliable.retransmits" )

let test_faulty_runs_deterministic () =
  (* identical seed and fault config => bit-identical timing and fault
     counters; a different seed must perturb something *)
  let a = flaky_em3d ~seed:11 ~drop:0.05 in
  let b = flaky_em3d ~seed:11 ~drop:0.05 in
  Alcotest.(check bool) "same seed reproduces exactly" true (a = b);
  let c = flaky_em3d ~seed:12 ~drop:0.05 in
  Alcotest.(check bool) "different seed differs" true (a <> c)

(* A 2-node remote read over a link that drops everything: proc 1's fetch
   can never be repaired, so the retransmit bound must fire. *)
let dead_link_run ?watchdog () =
  let params = { Params.default with Params.nodes = 2 } in
  let reliability = Reliable.Flaky (Faults.uniform ~seed:3 ~drop:1.0 ()) in
  let m = Machine.typhoon_stache ~reliability params in
  let addr = ref 0 in
  Run.spmd m ~name:"dead-link" ?watchdog (fun env ->
      let open Tt_app.Env in
      if env.proc = 0 then addr := env.alloc ~home:0 256;
      env.barrier ();
      if env.proc = 1 then ignore (env.read !addr))

let test_dead_link_terminates () =
  match dead_link_run () with
  | _ -> Alcotest.fail "a fully dead link must not complete"
  | exception Reliable.Link_failed _ -> ()

let test_watchdog_cycle_budget () =
  (* a tiny cycle budget trips the watchdog long before the transport's own
     retry bound (first Link_failed needs ~10 doubling RTOs) *)
  let watchdog = Watchdog.create ~max_cycles:2_000 ~check_interval:500 () in
  match dead_link_run ~watchdog () with
  | _ -> Alcotest.fail "budget must expire"
  | exception Watchdog.Expired m ->
      (* the diagnosis must carry the full progress picture: queue depth
         and the retransmit count at expiry *)
      Alcotest.(check bool) "reports pending events" true
        (contains m "events still pending");
      Alcotest.(check bool) "reports retransmit count" true
        (contains m "retransmissions so far")

let test_watchdog_retransmit_budget () =
  let watchdog =
    Watchdog.create ~max_retransmits:5 ~check_interval:1_000 ()
  in
  match dead_link_run ~watchdog () with
  | _ -> Alcotest.fail "retransmit budget must expire"
  | exception Watchdog.Expired m ->
      Alcotest.(check bool) "names the blown budget" true
        (contains m "retransmission");
      Alcotest.(check bool) "reports pending events" true
        (contains m "events pending");
      Alcotest.(check bool) "not a drain-time detection" false
        (contains m "(run completed)")

let test_watchdog_drain_time_check () =
  (* a run that completes but blew its retransmit budget during the final
     slice: the drain-time check must still fire, and must say the run
     completed so the report is not mistaken for a livelock *)
  let watchdog =
    Watchdog.create ~max_retransmits:0 ~check_interval:100_000_000 ()
  in
  let params = { Params.default with Params.nodes = 4 } in
  let reliability =
    Reliable.Flaky (Faultsweep.config_of ~drop:0.05 ~seed:11 ())
  in
  let m = Machine.typhoon_stache ~reliability params in
  let app =
    Catalog.make ~name:"em3d" ~size:Catalog.Small ~scale:0.05 ~nprocs:4
  in
  match Run.spmd m ~name:"em3d" ~watchdog app.Catalog.body with
  | _ -> Alcotest.fail "zero retransmit budget must expire at drain"
  | exception Watchdog.Expired msg ->
      Alcotest.(check bool) "reports drain-time detection" true
        (contains msg "(run completed)")

let test_watchdog_rejects_empty () =
  Alcotest.check_raises "no budget"
    (Invalid_argument "Watchdog.create: no budget given") (fun () ->
      ignore (Watchdog.create ()))

let () =
  Alcotest.run "faults"
    [
      ( "matrix",
        [
          Alcotest.test_case "em3d survives drop grid on stache" `Slow
            (test_fault_matrix_smoke "stache");
          Alcotest.test_case "em3d survives drop grid on dirnnb" `Slow
            (test_fault_matrix_smoke "dirnnb");
        ] );
      ( "determinism",
        [
          Alcotest.test_case "faulty runs reproduce per seed" `Slow
            test_faulty_runs_deterministic;
        ] );
      ( "termination",
        [
          Alcotest.test_case "dead link escalates" `Quick
            test_dead_link_terminates;
          Alcotest.test_case "cycle budget expires" `Quick
            test_watchdog_cycle_budget;
          Alcotest.test_case "retransmit budget expires" `Quick
            test_watchdog_retransmit_budget;
          Alcotest.test_case "drain-time budget check" `Slow
            test_watchdog_drain_time_check;
          Alcotest.test_case "empty watchdog rejected" `Quick
            test_watchdog_rejects_empty;
        ] );
    ]
