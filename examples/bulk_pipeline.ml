(* Raw Tempest mechanisms, no coherence protocol at all.

   A 4 KB token circulates around a ring of nodes.  Each hop uses exactly
   the §2.1/§2.2 machinery: the payload moves with an asynchronous bulk
   data transfer (packetized into 20-word messages by the NP's
   block-transfer unit), the hand-off signal is the transfer's completion
   at the destination, and each node's page is mapped with the user-level
   VM interface.  Every word is incremented at every hop, so the final
   buffer contents prove that laps × nodes hops really happened.

     dune exec examples/bulk_pipeline.exe *)

module Engine = Tt_sim.Engine
module Thread = Tt_sim.Thread
module System = Tt_typhoon.System
module Addr = Tt_mem.Addr
module Tag = Tt_mem.Tag

let nodes = 8

let laps = 4

let buffer_vpage = 0x9000

let buffer_va = buffer_vpage * Addr.page_size

let words = Addr.page_size / Addr.word_size

let () =
  let engine = Engine.create () in
  let params = { Params.default with Params.nodes } in
  let sys = System.create engine params in
  (* one wake slot per node: the bulk-transfer completion fires it *)
  let wakes : (int, unit -> unit) Hashtbl.t = Hashtbl.create nodes in
  let token_arrived node =
    match Hashtbl.find_opt wakes node with
    | Some wake ->
        Hashtbl.remove wakes node;
        wake ()
    | None -> failwith "token arrived with nobody waiting"
  in
  let wait_token sys node th =
    Thread.await_unit th (fun wake ->
        Hashtbl.replace wakes node (fun () ->
            Thread.set_clock th
              (max (Thread.clock th)
                 (Tt_typhoon.Np.clock (System.node_np sys node)));
            wake ()))
  in
  let process sys node th =
    (* plain tag-checked CPU accesses on the locally mapped page *)
    for w = 0 to words - 1 do
      let a = buffer_va + (w * Addr.word_size) in
      System.cpu_write_f64 sys ~node th a
        (System.cpu_read_f64 sys ~node th a +. 1.0)
    done
  in
  let send_token sys node th =
    let next = (node + 1) mod nodes in
    let ep = System.endpoint sys node in
    System.with_cpu_context sys ~node th (fun () ->
        ep.Tempest.bulk_transfer ~dst:next ~src_va:buffer_va
          ~dst_va:buffer_va ~len:Addr.page_size
          ~on_complete:(fun () -> token_arrived next))
  in
  let body node th =
    let ep = System.endpoint sys node in
    System.with_cpu_context sys ~node th (fun () ->
        (* user-level VM management: everyone maps a private buffer page *)
        ep.Tempest.map_page ~vpage:buffer_vpage ~home:node ~mode:0
          ~init_tag:Tag.Read_write);
    if node = 0 then begin
      for w = 0 to words - 1 do
        System.cpu_write_f64 sys ~node th
          (buffer_va + (w * Addr.word_size))
          (float_of_int w)
      done;
      process sys node th;
      send_token sys node th;
      for _lap = 2 to laps do
        wait_token sys node th;
        process sys node th;
        send_token sys node th
      done;
      wait_token sys node th (* the final wrap-around *)
    end
    else
      for _lap = 1 to laps do
        wait_token sys node th;
        process sys node th;
        send_token sys node th
      done
  in
  let threads =
    Array.init nodes (fun node ->
        Thread.spawn engine ~name:(Printf.sprintf "stage%d" node) (body node))
  in
  Engine.run engine;
  Array.iter (fun th -> assert (Thread.finished th)) threads;
  (* every word was incremented once per hop *)
  let hops = laps * nodes in
  let mem = System.node_mem sys 0 in
  let ok = ref true in
  for w = 0 to words - 1 do
    let got = Tt_mem.Pagemem.read_f64 mem ~vaddr:(buffer_va + (w * Addr.word_size)) in
    let want = float_of_int (w + hops) in
    if got <> want then begin
      ok := false;
      Printf.printf "word %d: got %g, want %g\n" w got want
    end
  done;
  let completion =
    Array.fold_left (fun acc th -> max acc (Thread.clock th)) 0 threads
  in
  let net = Tt_net.Fabric.stats (System.fabric sys) in
  Printf.printf "bulk pipeline: %d nodes, %d laps, %d hops of %d bytes\n"
    nodes laps hops Addr.page_size;
  Printf.printf "data integrity: %s\n" (if !ok then "OK" else "CORRUPT");
  Printf.printf "completion time: %d cycles\n" completion;
  Printf.printf "packets: %d (%d payload words)\n"
    (Tt_util.Stats.get net "msgs.request")
    (Tt_util.Stats.get net "words.request");
  if not !ok then exit 1
