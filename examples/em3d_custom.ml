(* The §4 story: custom user-level protocols pay.

   Runs the same EM3D program on three machines —

     dirnnb   all-hardware directory coherence,
     stache   Typhoon with the transparent Stache protocol,
     update   Typhoon with the EM3D delayed-update protocol installed —

   and prints cycles and message traffic.  The application code is
   identical; under "update" the value arrays land on custom pages and the
   steady-state barriers become the protocol's flush-and-wait.

     dune exec examples/em3d_custom.exe *)

module Machine = Tt_harness.Machine
module Run = Tt_harness.Run
module Em3d = Tt_app.Em3d

let () =
  let nodes = 16 in
  let cfg =
    { Em3d.total_nodes = 8000; degree = 8; pct_remote = 40; iters = 4;
      seed = 2024;
      software_prefetch = false }
  in
  Printf.printf
    "EM3D: %d graph nodes, degree %d, %d%% non-local edges, %d iterations, \
     %d processors\n\n"
    cfg.Em3d.total_nodes cfg.Em3d.degree cfg.Em3d.pct_remote cfg.Em3d.iters
    nodes;
  let params = { Params.default with Params.nodes = nodes } in
  let results =
    List.map
      (fun (label, make) ->
        let machine : Machine.t = make params in
        let inst = Em3d.make cfg ~nprocs:nodes in
        let r = Run.spmd machine ~name:"em3d" inst.Em3d.body in
        (* every machine must produce the oracle's values *)
        ignore
          (Run.spmd machine ~name:"em3d-verify" ~check:false inst.Em3d.verify);
        (label, r))
      [ ("dirnnb", (fun p -> Machine.dirnnb p));
        ("stache", fun p -> Machine.typhoon_stache p);
        ("update", fun p -> Machine.typhoon_em3d p) ]
  in
  let base_cycles =
    match results with (_, r) :: _ -> r.Run.cycles | [] -> assert false
  in
  Printf.printf "%-8s %12s %9s %10s %10s\n" "machine" "cycles" "vs dirnnb"
    "messages" "words";
  List.iter
    (fun (label, (r : Run.result)) ->
      let s = r.Run.run_stats in
      let msgs =
        Tt_util.Stats.get s "msgs.request" + Tt_util.Stats.get s "msgs.response"
      in
      let words =
        Tt_util.Stats.get s "words.request"
        + Tt_util.Stats.get s "words.response"
      in
      Printf.printf "%-8s %12d %8.0f%% %10d %10d\n" label r.Run.cycles
        (100.0 *. float_of_int r.Run.cycles /. float_of_int base_cycles)
        msgs words)
    results;
  print_newline ();
  print_endline
    "The update protocol eliminates the fetch/invalidate/re-fetch cycle: one \
     update message per remote copy per step, no acknowledgments (results \
     verified against the sequential oracle on all three machines)."
