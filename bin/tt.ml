(* tt — command-line driver for the Tempest/Typhoon reproduction.

   Subcommands:
     tt run     run one benchmark on one machine and report cycles/stats
     tt fig3    reproduce Figure 3 (Typhoon/Stache vs DirNNB)
     tt fig4    reproduce Figure 4 (EM3D update protocol)
     tt scale   64/128/256-node scaling sweep of the Figure 3 apps
     tt tables  print Tables 1-3 as implemented
     tt list    list benchmarks and machines *)

open Cmdliner
module H = Tt_harness

let machine_names = [ "dirnnb"; "stache"; "update" ]

let make_machine name params =
  match name with
  | "dirnnb" -> H.Machine.dirnnb params
  | "stache" -> H.Machine.typhoon_stache params
  | "update" -> H.Machine.typhoon_em3d params
  | other -> invalid_arg (Printf.sprintf "unknown machine %S" other)

(* --- common options --- *)

let nodes_t =
  Arg.(value & opt int 32 & info [ "n"; "nodes" ] ~doc:"Number of nodes.")

let scale_t =
  Arg.(
    value & opt float 1.0
    & info [ "scale" ]
        ~doc:"Data-set scale factor (1.0 = the paper's Table 3 sizes).")

let verify_t =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:"After each run, check results against the sequential oracle.")

let seed_t = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.")

let domains_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ]
        ~doc:
          "Worker domains for the parallel harness (0 = sequential; default \
           $(b,TT_DOMAINS), else 0).  Simulated cycles, stats and tables are \
           bit-identical at every value; only wall-clock changes.")

(* flag wins; else TT_DOMAINS; else sequential *)
let resolve_domains = function
  | Some d when d >= 0 -> d
  | Some d -> invalid_arg (Printf.sprintf "--domains %d: must be >= 0" d)
  | None -> Params.domains_of_env ()

let note_parallel domains =
  (* stderr, so gate scripts can diff stdout across TT_DOMAINS values *)
  if domains > 1 then
    Printf.eprintf "(parallel harness: %d worker domains)\n%!" domains

(* --- tt run --- *)

let proto_conv =
  let parse s =
    if List.mem s H.Catalog.protocols then Ok s
    else
      Error
        (`Msg
          (Printf.sprintf "unknown protocol %S (valid: %s)" s
             (String.concat ", " H.Catalog.protocols)))
  in
  Arg.conv (parse, Format.pp_print_string)

let proto_t =
  Arg.(
    value
    & opt (some proto_conv) None
    & info [ "proto" ] ~docv:"PROTO"
        ~doc:
          "Coherence protocol for the Typhoon machine: stache, migratory, \
           prodcons, widerep, delayed or adaptive (overrides \
           $(b,--machine)).")

let run_cmd =
  let app_t =
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun n -> (n, n)) H.Catalog.all_names)))
          None
      & info [] ~docv:"APP" ~doc:"Benchmark to run.")
  in
  let machine_t =
    Arg.(
      value
      & opt (enum (List.map (fun n -> (n, n)) machine_names)) "stache"
      & info [ "m"; "machine" ] ~doc:"Machine: dirnnb, stache or update.")
  in
  let size_t =
    Arg.(
      value
      & opt (enum [ ("small", H.Catalog.Small); ("large", H.Catalog.Large) ])
          H.Catalog.Small
      & info [ "size" ] ~doc:"Data set: small or large.")
  in
  let cache_t =
    Arg.(
      value & opt int 256
      & info [ "cache" ] ~doc:"CPU cache size in KB (Figure 3 sweeps 4..256).")
  in
  let stats_t =
    Arg.(value & flag & info [ "stats" ] ~doc:"Dump all statistics counters.")
  in
  let run app machine_name proto size cache_kb nodes scale seed verify stats =
    let params =
      { Params.default with Params.nodes; seed;
        cpu_cache_bytes = cache_kb * 1024 }
    in
    let machine_name, machine =
      match proto with
      | Some p -> (p, H.Catalog.machine_of_proto ~proto:p params)
      | None -> (machine_name, make_machine machine_name params)
    in
    let inst = H.Catalog.make ~name:app ~size ~scale ~nprocs:nodes in
    let r = H.Run.spmd machine ~name:app inst.H.Catalog.body in
    if verify then begin
      ignore
        (H.Run.spmd machine ~name:(app ^ "-verify") ~check:false
           inst.H.Catalog.verify);
      Printf.printf "verification against the sequential oracle: OK\n"
    end;
    Printf.printf "%s (%s, %s) on %s, %d nodes: %d cycles\n" app
      (H.Catalog.size_label size)
      (H.Catalog.data_set_description ~name:app ~size ~scale)
      machine_name nodes r.H.Run.cycles;
    let taken = Tt_util.Stats.get r.H.Run.run_stats "suspensions_taken"
    and elided = Tt_util.Stats.get r.H.Run.run_stats "suspensions_elided" in
    if taken + elided > 0 then
      Printf.printf
        "suspensions: %d taken, %d elided (%.1f%% suspension-free)\n" taken
        elided
        (100.0 *. float_of_int elided /. float_of_int (taken + elided));
    let spilled = Tt_util.Stats.get r.H.Run.run_stats "flow.spilled"
    and blocked = Tt_util.Stats.get r.H.Run.run_stats "flow.blocked" in
    if spilled + blocked > 0 then
      Printf.printf
        "flow control: %d handler sends spilled, %d CPU sends blocked (peak \
         %d parked)\n"
        spilled blocked
        (Tt_util.Stats.get r.H.Run.run_stats "flow.peak_queued");
    let switches = Tt_util.Stats.get r.H.Run.run_stats "switches" in
    if switches > 0 then
      Printf.printf "adaptive protocol switches: %d\n" switches;
    if stats then
      Format.printf "%a@." Tt_util.Stats.pp r.H.Run.run_stats
  in
  let doc = "Run one benchmark on one machine." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ app_t $ machine_t $ proto_t $ size_t $ cache_t $ nodes_t
      $ scale_t $ seed_t $ verify_t $ stats_t)

(* --- tt fig3 --- *)

let fig3_cmd =
  let apps_t =
    Arg.(
      value
      & opt (list (enum (List.map (fun n -> (n, n)) H.Catalog.names)))
          H.Catalog.names
      & info [ "apps" ] ~doc:"Comma-separated benchmark subset.")
  in
  let run apps nodes scale verify =
    let rows = H.Fig3.run ~apps ~scale ~nodes ~verify () in
    print_string (H.Fig3.render rows)
  in
  let doc = "Reproduce Figure 3 (Typhoon/Stache vs DirNNB)." in
  Cmd.v (Cmd.info "fig3" ~doc)
    Term.(const run $ apps_t $ nodes_t $ scale_t $ verify_t)

(* --- tt fig4 --- *)

let fig4_cmd =
  let pcts_t =
    Arg.(
      value
      & opt (list int) [ 0; 10; 20; 30; 40; 50 ]
      & info [ "pcts" ] ~doc:"Percentages of non-local edges to sweep.")
  in
  let run pcts nodes scale verify =
    let points = H.Fig4.run ~pcts ~scale ~nodes ~verify () in
    print_string (H.Fig4.render points)
  in
  let doc = "Reproduce Figure 4 (EM3D custom update protocol)." in
  Cmd.v (Cmd.info "fig4" ~doc)
    Term.(const run $ pcts_t $ nodes_t $ scale_t $ verify_t)

(* --- tt sweep --- *)

let sweep_cmd =
  let pcts_t =
    Arg.(
      value
      & opt (list int) [ 0; 20; 40; 60; 80 ]
      & info [ "remote" ] ~doc:"Remote-access percentages to sweep.")
  in
  let writes_t =
    Arg.(
      value & opt int 30 & info [ "writes" ] ~doc:"Write percentage (0-100).")
  in
  let contended_t =
    Arg.(
      value & flag
      & info [ "contended" ]
          ~doc:
            "Use lock-protected remote counters (migratory sharing) instead \
             of read-only remote sharing.")
  in
  let run pcts write_pct contended nodes seed =
    let table =
      Tt_util.Tablefmt.create
        ~title:
          (Printf.sprintf
             "synthetic workload sweep (%d nodes, %d%% writes, %s sharing): \
              cycles"
             nodes write_pct
             (if contended then "locked-counter" else "private-write"))
        ~columns:
          [ ("% remote", Tt_util.Tablefmt.Right);
            ("DirNNB", Tt_util.Tablefmt.Right);
            ("Typhoon/Stache", Tt_util.Tablefmt.Right);
            ("ratio", Tt_util.Tablefmt.Right) ]
    in
    List.iter
      (fun remote_pct ->
        let cfg =
          { Tt_app.Synth.default with
            Tt_app.Synth.remote_pct; write_pct; seed;
            sharing =
              (if contended then Tt_app.Synth.Locked_counters
               else Tt_app.Synth.Private_writes) }
        in
        let cycles make =
          let machine : H.Machine.t =
            make { Params.default with Params.nodes; seed }
          in
          let inst = Tt_app.Synth.make cfg ~nprocs:nodes in
          let r = H.Run.spmd machine ~name:"synth" inst.Tt_app.Synth.body in
          ignore
            (H.Run.spmd machine ~name:"synth-verify" ~check:false
               inst.Tt_app.Synth.verify);
          r.H.Run.cycles
        in
        let d = cycles H.Machine.dirnnb in
        let st = cycles (fun p -> H.Machine.typhoon_stache p) in
        Tt_util.Tablefmt.add_row table
          [ string_of_int remote_pct; string_of_int d; string_of_int st;
            Printf.sprintf "%.2f" (float_of_int st /. float_of_int d) ])
      pcts;
    Tt_util.Tablefmt.print table
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Explore the design space with the synthetic workload generator: \
          sweep the remote-access fraction on both machines (results are \
          verified against the generator's oracle).")
    Term.(const run $ pcts_t $ writes_t $ contended_t $ nodes_t $ seed_t)

(* --- tt scale --- *)

let scale_cmd =
  let apps_t =
    Arg.(
      value
      & opt (list (enum (List.map (fun n -> (n, n)) H.Catalog.names)))
          H.Catalog.names
      & info [ "apps" ] ~doc:"Comma-separated benchmark subset.")
  in
  let nodes_list_t =
    Arg.(
      value
      & opt (list int) H.Scaling.default_nodes
      & info [ "n"; "nodes" ] ~doc:"Comma-separated node counts to sweep.")
  in
  let scale_t =
    Arg.(
      value & opt float 0.25
      & info [ "scale" ] ~doc:"Data-set scale factor (default 0.25).")
  in
  let cache_t =
    Arg.(
      value & opt int 256
      & info [ "cache" ] ~doc:"CPU cache size in KB (default 256).")
  in
  let run apps proto nodes scale cache_kb domains =
    let domains = resolve_domains domains in
    note_parallel domains;
    let proto = Option.value proto ~default:"stache" in
    let points =
      H.Scaling.run ~apps ~proto ~nodes ~scale ~cache_kb ~domains ()
    in
    print_string (H.Scaling.render ~proto points);
    (* host-dependent: kept out of the table so gates can diff it *)
    Printf.printf "(sweep host CPU: %.1fs)\n" (H.Scaling.total_cpu_s points);
    match Sys.getenv_opt "TT_BENCH_JSON" with
    | Some path ->
        let oc = open_out path in
        output_string oc (H.Scaling.to_json points);
        close_out oc;
        Printf.printf "(wrote scaling points to %s)\n" path
    | None -> ()
  in
  let doc =
    "Scaling sweep: run the Figure 3 benchmarks on both machines at 64, 128 \
     and 256 nodes (the paper stops at 32) and report simulated cycles and \
     the Typhoon/Stache-to-DirNNB ratio per node count.  Set \
     $(b,TT_BENCH_JSON) to also write the points as JSON."
  in
  Cmd.v (Cmd.info "scale" ~doc)
    Term.(
      const run $ apps_t $ proto_t $ nodes_list_t $ scale_t $ cache_t
      $ domains_t)

(* --- tt proto --- *)

let proto_cmd =
  let apps_t =
    Arg.(
      value
      & opt (list (enum (List.map (fun n -> (n, n)) H.Catalog.all_names)))
          H.Catalog.all_names
      & info [ "apps" ] ~doc:"Comma-separated benchmark subset.")
  in
  let protos_t =
    Arg.(
      value
      & opt (list proto_conv) H.Protozoo.default_protos
      & info [ "protos" ] ~doc:"Comma-separated protocol subset.")
  in
  let nodes_list_t =
    Arg.(
      value
      & opt (list int) H.Protozoo.default_nodes
      & info [ "n"; "nodes" ] ~doc:"Comma-separated node counts to sweep.")
  in
  let scale_t =
    Arg.(
      value & opt float 0.25
      & info [ "scale" ] ~doc:"Data-set scale factor (default 0.25).")
  in
  let cache_t =
    Arg.(
      value & opt int 256
      & info [ "cache" ] ~doc:"CPU cache size in KB (default 256).")
  in
  let tolerance_t =
    Arg.(
      value & opt float 5.0
      & info [ "tolerance" ]
          ~doc:
            "Adaptive gate: maximum percent by which adaptive may exceed \
             the best static protocol at any grid point (default 5).")
  in
  let run apps protos nodes scale cache_kb tolerance domains =
    let domains = resolve_domains domains in
    note_parallel domains;
    let cells =
      H.Protozoo.run ~apps ~protos ~nodes ~scale ~cache_kb ~domains ()
    in
    print_string (H.Protozoo.render cells);
    Printf.printf "(shootout host CPU: %.1fs)\n" (H.Protozoo.total_cpu_s cells);
    (match Sys.getenv_opt "TT_BENCH_JSON" with
    | Some path ->
        let oc = open_out path in
        output_string oc (H.Protozoo.to_json cells);
        close_out oc;
        Printf.printf "(wrote shootout cells to %s)\n" path
    | None -> ());
    match H.Protozoo.adaptive_regressions ~tolerance:(tolerance /. 100.0) cells
    with
    | [] ->
        if List.mem "adaptive" protos then
          Printf.printf
            "adaptive is within %.0f%% of the best static protocol at every \
             grid point\n"
            tolerance
    | regressions ->
        List.iter (Printf.printf "ADAPTIVE REGRESSION: %s\n") regressions;
        exit 1
  in
  let doc =
    "Protocol shootout: run the app x protocol x node-count grid (Figure \
     3/4 apps plus synthetic migratory and producer-consumer companions \
     over the protocol zoo), verify every cell against its sequential \
     oracle, and gate adaptive per-page switching against the best static \
     protocol.  Set $(b,TT_BENCH_JSON) to also write the cells as JSON."
  in
  Cmd.v (Cmd.info "proto" ~doc)
    Term.(
      const run $ apps_t $ protos_t $ nodes_list_t $ scale_t $ cache_t
      $ tolerance_t $ domains_t)

(* --- tt verify --- *)

let verify_cmd =
  let run nodes scale =
    let machines =
      [ ("dirnnb", fun p -> H.Machine.dirnnb p);
        ("stache", fun p -> H.Machine.typhoon_stache p);
        ("update", fun p -> H.Machine.typhoon_em3d p) ]
    in
    let failures = ref 0 in
    List.iter
      (fun app ->
        List.iter
          (fun (mlabel, make) ->
            let machine = make { Params.default with Params.nodes } in
            let inst =
              H.Catalog.make ~name:app ~size:H.Catalog.Small ~scale
                ~nprocs:nodes
            in
            match
              let r = H.Run.spmd machine ~name:app inst.H.Catalog.body in
              ignore
                (H.Run.spmd machine ~name:(app ^ "-verify") ~check:false
                   inst.H.Catalog.verify);
              r
            with
            | r ->
                Printf.printf "  %-8s on %-8s OK (%d cycles)\n%!" app mlabel
                  r.H.Run.cycles
            | exception e ->
                incr failures;
                Printf.printf "  %-8s on %-8s FAILED: %s\n%!" app mlabel
                  (Printexc.to_string e))
          machines)
      H.Catalog.names;
    if !failures = 0 then
      print_endline "all benchmarks match their sequential oracles on every \
                     machine"
    else begin
      Printf.printf "%d failures\n" !failures;
      exit 1
    end
  in
  let scale_small =
    Arg.(
      value & opt float 0.1
      & info [ "scale" ] ~doc:"Data-set scale factor (default 0.1).")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Self-test: run every benchmark on every machine and check the \
          results against the sequential oracles.")
    Term.(const run $ nodes_t $ scale_small)

(* --- tt ablations --- *)

let ablations_cmd =
  let run nodes = print_string (H.Ablations.render_all ~nodes ()) in
  Cmd.v
    (Cmd.info "ablations"
       ~doc:
         "Run the design-choice ablations: limited-pointer directory, \
          network contention, message barrier, software prefetch.")
    Term.(const run $ nodes_t)

(* --- tt tables --- *)

let tables_cmd =
  let run () = print_string (H.Tables.all ()) in
  Cmd.v (Cmd.info "tables" ~doc:"Print Tables 1-3 as implemented.")
    Term.(const run $ const ())

(* --- tt list --- *)

(* --- tt faults --- *)

let faults_cmd =
  let apps_t =
    Arg.(
      value
      & opt (list (enum (List.map (fun n -> (n, n)) H.Catalog.names)))
          H.Catalog.names
      & info [ "apps" ] ~doc:"Comma-separated benchmarks to sweep.")
  in
  let machine_t =
    Arg.(
      value
      & opt (enum (List.map (fun n -> (n, n)) H.Faultsweep.machines)) "stache"
      & info [ "m"; "machine" ] ~doc:"Machine: stache, dirnnb or update.")
  in
  let drops_t =
    Arg.(
      value
      & opt (list float) [ 1.0; 5.0 ]
      & info [ "drops" ]
          ~doc:"Comma-separated per-message drop rates, in percent.")
  in
  let seeds_t =
    Arg.(
      value
      & opt (list int) [ 1; 2; 3 ]
      & info [ "seeds" ] ~doc:"Comma-separated fault-model seeds.")
  in
  let req_drop_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "request-drop" ]
          ~doc:
            "Drop rate for request-network traffic only, in percent \
             (overrides the $(b,--drops) axis on that vnet; dup/reorder \
             rates follow it).")
  in
  let resp_drop_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "response-drop" ]
          ~doc:
            "Drop rate for response-network traffic only, in percent \
             (overrides the $(b,--drops) axis on that vnet; dup/reorder \
             rates follow it).")
  in
  let burst_t =
    Arg.(
      value & flag
      & info [ "burst" ]
          ~doc:
            "Gilbert\xE2\x80\x93Elliott bursty loss: each link is a two-state \
             Markov chain; the bad state concentrates the configured rates \
             into bursts (clean good state, 10\xC3\x97 bad state, mean burst \
             length 4 sends).")
  in
  let credits_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "credits" ]
          ~doc:
            "Flow-control credits per (src,dst,vnet) for the faulty runs \
             (default: ample). Small values exercise the \xC2\xA75.1 \
             overflow/backpressure path.")
  in
  let spill_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "spill" ]
          ~doc:
            "Per-node overflow-buffer capacity for the faulty runs (default: \
             ample). Overflowing it aborts that grid cell with a diagnostic \
             instead of buffering without bound.")
  in
  let crash_t =
    let modes =
      [ ("none", None); ("never", Some H.Recovery.Never);
        ("quick", Some H.Recovery.Quick); ("late", Some H.Recovery.Late) ]
    in
    Arg.(
      value
      & opt (list (enum modes)) [ None ]
      & info [ "crash" ]
          ~doc:
            "Comma-separated crash axis for the grid (crashes \xC3\x97 drops \
             \xC3\x97 seeds): $(b,none) for message faults only, or \
             $(b,never)/$(b,quick)/$(b,late) to additionally crash-stop node \
             0 at 40% of the baseline runtime with that rejoin window; such \
             cells run under the full recovery stack and report how they \
             were brought to verified results.")
  in
  let run apps machine proto drops seeds crashes request_drop response_drop
      burst credits spill nodes scale domains =
    let domains = resolve_domains domains in
    note_parallel domains;
    let machine = Option.value proto ~default:machine in
    let pct = Option.map (fun p -> p /. 100.0) in
    let drops = List.map (fun p -> p /. 100.0) drops in
    let burst = if burst then Some (Tt_net.Faults.bursty ()) else None in
    let points =
      H.Faultsweep.run ~apps ~machine ~drops ~seeds ~crashes
        ?request_drop:(pct request_drop) ?response_drop:(pct response_drop)
        ?burst ?credits ?spill ~scale ~nodes ~domains ()
    in
    print_string (H.Faultsweep.render points);
    print_newline ();
    if H.Faultsweep.all_passed points then
      print_endline
        "all runs completed with results identical to the fault-free oracle"
    else begin
      print_endline "FAILURES above";
      exit 1
    end
  in
  let doc =
    "Fault sweep: run benchmarks over a lossy fabric (drop/duplicate/reorder \
     injection) behind the user-level reliable transport, verifying results \
     against the fault-free oracle and reporting retransmit overhead."
  in
  let scale_t =
    Arg.(
      value & opt float 0.25
      & info [ "scale" ] ~doc:"Data-set scale factor (default 0.25).")
  in
  let nodes_t =
    Arg.(value & opt int 8 & info [ "n"; "nodes" ] ~doc:"Number of nodes.")
  in
  Cmd.v (Cmd.info "faults" ~doc)
    Term.(
      const run $ apps_t $ machine_t $ proto_t $ drops_t $ seeds_t $ crash_t
      $ req_drop_t $ resp_drop_t $ burst_t $ credits_t $ spill_t $ nodes_t
      $ scale_t $ domains_t)

(* --- tt recover --- *)

let recover_cmd =
  let apps_t =
    Arg.(
      value
      & opt (list (enum (List.map (fun n -> (n, n)) H.Catalog.names)))
          H.Catalog.names
      & info [ "apps" ] ~doc:"Comma-separated benchmarks to sweep.")
  in
  let machine_t =
    Arg.(
      value
      & opt (enum (List.map (fun n -> (n, n)) H.Recovery.machines)) "stache"
      & info [ "m"; "machine" ] ~doc:"Machine: stache or dirnnb.")
  in
  let victims_t =
    Arg.(
      value
      & opt (list int) [ 0; 3 ]
      & info [ "victims" ] ~doc:"Comma-separated crash victims (node ranks).")
  in
  let crash_t =
    Arg.(
      value
      & opt (list float) [ 40.0 ]
      & info [ "crash-at" ]
          ~doc:
            "Comma-separated crash times, as percent of the app's \
             fault-free baseline cycles.")
  in
  let rejoins_t =
    let modes =
      [ ("never", H.Recovery.Never); ("quick", H.Recovery.Quick);
        ("late", H.Recovery.Late) ]
    in
    Arg.(
      value
      & opt (list (enum modes)) [ H.Recovery.Never; H.Recovery.Quick;
                                  H.Recovery.Late ]
      & info [ "rejoin" ]
          ~doc:
            "Comma-separated rejoin modes: $(b,never) (crash-stop \
             forever), $(b,quick) (window below the detection lease \
             \xE2\x80\x94 expect masking), $(b,late) (well past it \
             \xE2\x80\x94 expect re-homing).")
  in
  let seeds_t =
    Arg.(
      value & opt (list int) [ 1 ]
      & info [ "seeds" ] ~doc:"Comma-separated fault-model seeds.")
  in
  let scale_t =
    Arg.(
      value & opt float 0.25
      & info [ "scale" ] ~doc:"Data-set scale factor (default 0.25).")
  in
  let nodes_t =
    Arg.(value & opt int 8 & info [ "n"; "nodes" ] ~doc:"Number of nodes.")
  in
  let run apps machine victims crash_pcts rejoins seeds nodes scale domains =
    let domains = resolve_domains domains in
    note_parallel domains;
    if not (Tt_net.Faults.recovery_enabled ()) then
      print_endline
        "note: TT_RECOVERY=0 — crash injection is disabled; every cell \
         runs fault-free";
    let crash_fracs = List.map (fun p -> p /. 100.0) crash_pcts in
    let points =
      H.Recovery.run ~apps ~machine ~victims ~crash_fracs ~rejoins ~seeds
        ~scale ~nodes ~domains ()
    in
    print_string (H.Recovery.render points);
    print_newline ();
    if H.Recovery.all_passed points then
      print_endline
        "all cells ended in verified results (in place or after rollback) \
         or a diagnosed abort"
    else begin
      print_endline "FAILURES above";
      exit 1
    end
  in
  let doc =
    "Crash-stop recovery sweep: crash a node mid-run (lease/heartbeat \
     detection, page re-homing, checkpoint restore or rollback) and verify \
     every cell against the fault-free oracle."
  in
  Cmd.v (Cmd.info "recover" ~doc)
    Term.(
      const run $ apps_t $ machine_t $ victims_t $ crash_t $ rejoins_t
      $ seeds_t $ nodes_t $ scale_t $ domains_t)

(* --- tt torture --- *)

let torture_cmd =
  let module T = Tt_torture.Torture in
  let module L = Tt_torture.Litmus in
  let litmus_t =
    Arg.(
      value
      & opt (list (enum (List.map (fun n -> (n, n)) L.names))) L.names
      & info [ "litmus" ]
          ~doc:"Comma-separated litmus shapes (default: all).")
  in
  let machines_t =
    Arg.(
      value
      & opt (list (enum (List.map (fun n -> (n, n)) T.all_machines))) T.machines
      & info [ "machines" ]
          ~doc:
            "Comma-separated machines (default: stache,dirnnb; the zoo \
             protocols and adaptive are also accepted).")
  in
  let drops_t =
    Arg.(
      value
      & opt (list float) [ 0.0; 5.0 ]
      & info [ "drops" ]
          ~doc:
            "Comma-separated drop rates in percent (0 = perfect transport).")
  in
  let seeds_t =
    Arg.(
      value
      & opt (list int) T.default_seeds
      & info [ "seeds" ] ~doc:"Comma-separated seeds.")
  in
  let iters_t =
    Arg.(
      value & opt int 4
      & info [ "iters" ] ~doc:"Litmus iterations per case.")
  in
  let perturb_t =
    Arg.(
      value & opt float 0.25
      & info [ "perturb-rate" ]
          ~doc:
            "Probability that a scheduling decision gets a non-FIFO \
             tie-break salt (0 disables perturbation).")
  in
  let no_shrink_t =
    Arg.(
      value & flag
      & info [ "no-shrink" ] ~doc:"Report violations without shrinking.")
  in
  let smoke_t =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Run the default smoke grid (all litmus shapes x both machines \
             x {perfect, 5% drop} x 8 seeds), overriding any grid-axis \
             flags.  This is also the default when no axis flags are given; \
             the flag pins the grid for scripted gates.")
  in
  let out_t =
    Arg.(
      value
      & opt string "torture-repro.txt"
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Where to write the shrunk reproducer artifact.")
  in
  let table_t =
    Arg.(
      value & flag
      & info [ "table" ] ~doc:"Print the full per-case result table.")
  in
  let replay_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a reproducer artifact instead of running the grid; \
             exits 0 when the recorded violation reproduces.")
  in
  let run litmus machines drops seeds iters perturb_rate no_shrink smoke out
      table replay domains =
    let domains = resolve_domains domains in
    note_parallel domains;
    let litmus, machines, drops, seeds, iters, perturb_rate =
      if smoke then
        (L.names, T.machines, [ 0.0; 5.0 ], T.default_seeds, 4, 0.25)
      else (litmus, machines, drops, seeds, iters, perturb_rate)
    in
    match replay with
    | Some path ->
        let case, expected, r = T.replay path in
        Printf.printf "replaying %s: %s on %s, expecting a %s violation\n"
          path case.T.litmus case.T.machine
          (T.kind_to_string expected);
        (match r.T.outcome with
        | T.Fail v when v.T.kind = expected ->
            Printf.printf "reproduced: [%s] %s\n" (T.kind_to_string v.T.kind)
              v.T.detail
        | T.Fail v ->
            Printf.printf
              "DIVERGED: got [%s] %s instead of the recorded [%s]\n"
              (T.kind_to_string v.T.kind) v.T.detail
              (T.kind_to_string expected);
            exit 1
        | T.Pass ->
            Printf.printf "DID NOT REPRODUCE: the replay passed\n";
            exit 1)
    | None ->
        let drops = List.map (fun p -> p /. 100.0) drops in
        let cases =
          T.grid ~litmus ~machines ~drops ~seeds ~iters ~perturb_rate ()
        in
        let results = T.run_grid ~domains cases in
        let failed = T.failures results in
        if table then print_string (T.render results)
        else if failed <> [] then print_string (T.render failed);
        Printf.printf
          "torture grid: %d cases (%d litmus x %d machines x %d drops x %d \
           seeds), %d passed, %d violations\n"
          (List.length results) (List.length litmus) (List.length machines)
          (List.length drops) (List.length seeds)
          (List.length results - List.length failed)
          (List.length failed);
        if failed <> [] then begin
          (match failed with
          | (c, _) :: _ when not no_shrink -> (
              Printf.printf "shrinking the first violating case (%s on %s)…\n%!"
                c.T.litmus c.T.machine;
              match T.shrink c with
              | Error msg -> Printf.printf "shrink failed: %s\n" msg
              | Ok s ->
                  Printf.printf
                    "shrunk: %d -> %d fault sites, %d -> %d perturbation \
                     sites, %d -> %d iterations\n"
                    s.T.s_fault_before s.T.s_fault_after s.T.s_perturb_before
                    s.T.s_perturb_after s.T.s_iters_before s.T.s_case.T.iters;
                  Printf.printf "violation: [%s] %s\n"
                    (T.kind_to_string s.T.s_violation.T.kind)
                    s.T.s_violation.T.detail;
                  T.write_artifact out s;
                  Printf.printf "reproducer written to %s\n" out;
                  let _, expected, r = T.replay out in
                  (match r.T.outcome with
                  | T.Fail v when v.T.kind = expected ->
                      Printf.printf
                        "replay verified: tt torture --replay %s reproduces \
                         the violation\n"
                        out
                  | _ -> Printf.printf "WARNING: replay did not reproduce\n"))
          | _ -> ());
          exit 1
        end
  in
  let doc =
    "Consistency torture: run the litmus grid (SB/MP/LB/CoRR/CoWW/IRIW/LOCK \
     x machines x transports x seeds) under schedule perturbation and fault \
     injection, check every outcome against the SC oracle, and shrink any \
     violation to a minimal deterministic reproducer."
  in
  Cmd.v (Cmd.info "torture" ~doc)
    Term.(
      const run $ litmus_t $ machines_t $ drops_t $ seeds_t $ iters_t
      $ perturb_t $ no_shrink_t $ smoke_t $ out_t $ table_t $ replay_t
      $ domains_t)

(* --- tt pdes --- *)

let pdes_cmd =
  let nodes_t =
    Arg.(
      value & opt int 64
      & info [ "n"; "nodes" ] ~doc:"PHOLD logical processes.")
  in
  let partitions_t =
    Arg.(
      value & opt int 4
      & info [ "partitions" ]
          ~doc:"Event-queue partitions (clamped to the node count).")
  in
  let horizon_t =
    Arg.(
      value & opt int 100_000
      & info [ "horizon" ]
          ~doc:"Events stop reproducing at this simulated cycle.")
  in
  let initial_t =
    Arg.(
      value & opt int 4
      & info [ "initial" ] ~doc:"Initial event population per node.")
  in
  let run nodes partitions horizon initial seed domains =
    let domains = resolve_domains domains in
    note_parallel domains;
    let r =
      H.Pdes.run ~seed ~initial ~nodes ~partitions ~horizon ~domains ()
    in
    let lo = Array.fold_left min max_int r.H.Pdes.counts
    and hi = Array.fold_left max 0 r.H.Pdes.counts in
    Printf.printf
      "PHOLD: %d nodes over %d partitions, horizon %d: %d events \
       (%d..%d/node), final time %d, %d windows\n"
      nodes (Array.length r.H.Pdes.log_hashes) horizon r.H.Pdes.total lo hi
      r.H.Pdes.final_time r.H.Pdes.epochs;
    Array.iteri
      (fun p h -> Printf.printf "partition %d event-log hash: %016x\n" p h)
      r.H.Pdes.log_hashes
  in
  let doc =
    "PHOLD demo of the domains-parallel conservative engine: partitioned \
     event queues advanced in lookahead windows, with per-partition \
     event-log hashes that are bit-identical for every $(b,--domains) \
     value (the determinism witness behind TT_DOMAINS)."
  in
  Cmd.v (Cmd.info "pdes" ~doc)
    Term.(
      const run $ nodes_t $ partitions_t $ horizon_t $ initial_t $ seed_t
      $ domains_t)

let list_cmd =
  let run () =
    Printf.printf "benchmarks: %s\nmachines:   %s\nprotocols:  %s\n"
      (String.concat ", " H.Catalog.all_names)
      (String.concat ", " machine_names)
      (String.concat ", " H.Catalog.protocols)
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks, machines and protocols.")
    Term.(const run $ const ())

let () =
  let doc = "Tempest & Typhoon: user-level shared memory (reproduction)" in
  let info = Cmd.info "tt" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
       [ run_cmd; fig3_cmd; fig4_cmd; tables_cmd; ablations_cmd; sweep_cmd;
         scale_cmd; proto_cmd; faults_cmd; recover_cmd; torture_cmd;
         pdes_cmd; verify_cmd; list_cmd ]))
