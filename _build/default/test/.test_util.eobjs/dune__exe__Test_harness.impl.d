test/test_harness.ml: Alcotest Array List Params Printf String Tempest Tt_app Tt_harness Tt_mem Tt_net Tt_sim Tt_typhoon Tt_util
