test/test_custom.mli:
