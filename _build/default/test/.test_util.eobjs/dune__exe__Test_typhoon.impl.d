test/test_typhoon.ml: Alcotest Array Bytes Params Printf Tempest Tt_cache Tt_mem Tt_net Tt_sim Tt_typhoon Tt_util
