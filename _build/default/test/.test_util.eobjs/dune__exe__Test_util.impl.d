test/test_util.ml: Alcotest Array Hashtbl List Option Printf QCheck QCheck_alcotest String Tt_util
