test/test_net.ml: Alcotest Bytes List Tt_net Tt_sim Tt_util
