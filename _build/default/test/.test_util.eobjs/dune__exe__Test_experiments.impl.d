test/test_experiments.ml: Alcotest List Printf String Tt_harness
