test/test_custom.ml: Alcotest Array List Params Printf Tt_app Tt_custom Tt_harness Tt_mem Tt_sim Tt_stache Tt_typhoon Tt_util
