test/test_apps.ml: Alcotest List Params Printexc Printf String Tt_app Tt_harness
