test/test_typhoon.mli:
