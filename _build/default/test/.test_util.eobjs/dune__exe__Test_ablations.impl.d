test/test_ablations.ml: Alcotest List Params Printf Tt_app Tt_harness Tt_util
