test/test_mem.ml: Alcotest Bytes Char List QCheck QCheck_alcotest Tt_mem
