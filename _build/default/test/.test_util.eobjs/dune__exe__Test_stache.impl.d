test/test_stache.ml: Alcotest Array List Params Printf QCheck QCheck_alcotest Tt_mem Tt_net Tt_sim Tt_stache Tt_typhoon Tt_util
