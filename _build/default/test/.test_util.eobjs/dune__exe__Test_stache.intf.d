test/test_stache.mli:
