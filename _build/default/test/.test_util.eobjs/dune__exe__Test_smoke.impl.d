test/test_smoke.ml: Alcotest Array List Params Printf Tt_app Tt_harness
