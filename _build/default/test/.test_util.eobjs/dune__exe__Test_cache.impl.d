test/test_cache.ml: Alcotest Hashtbl List Printf QCheck QCheck_alcotest Tt_cache Tt_mem Tt_util
