test/test_sim.ml: Alcotest Array List Printf Tt_sim
