test/test_dirnnb.ml: Alcotest Array List Params Printf QCheck QCheck_alcotest Tt_dirnnb Tt_mem Tt_sim Tt_util
