test/test_dirnnb.mli:
