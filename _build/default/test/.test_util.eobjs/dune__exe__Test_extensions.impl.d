test/test_extensions.ml: Alcotest Array Env Hashtbl List Option Params Printf Tt_app Tt_harness Tt_mem Tt_sim Tt_stache Tt_sync Tt_typhoon Tt_util
