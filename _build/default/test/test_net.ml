(* Tests for active messages and the interconnect. *)

module Engine = Tt_sim.Engine
module Message = Tt_net.Message
module Fabric = Tt_net.Fabric
module Stats = Tt_util.Stats

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let msg ?(src = 0) ?(dst = 1) ?(vnet = Message.Request) ?(handler = 0)
    ?(args = [||]) ?(data = Bytes.empty) () =
  Message.make ~src ~dst ~vnet ~handler ~args ~data ()

(* ---------------- Message ---------------- *)

let test_message_word_accounting () =
  check_int "handler only" 1 (Message.words (msg ()));
  check_int "args count" 4 (Message.words (msg ~args:[| 1; 2; 3 |] ()));
  check_int "data rounds up" (1 + 2)
    (Message.words (msg ~data:(Bytes.create 5) ()));
  check_int "32-byte block" 9 (Message.words (msg ~data:(Bytes.create 32) ()))

let test_message_packet_limit () =
  (* 1 + 3 + 16 = 20 words: exactly the Typhoon maximum *)
  ignore (msg ~args:[| 1; 2; 3 |] ~data:(Bytes.create 64) ());
  try
    ignore (msg ~args:[| 1; 2; 3; 4 |] ~data:(Bytes.create 64) ());
    Alcotest.fail "over-limit packet must raise"
  with Invalid_argument _ -> ()

(* ---------------- Fabric ---------------- *)

let mk_fabric ?(nodes = 4) ?(latency = 11) () =
  let e = Engine.create () in
  (e, Fabric.create e ~nodes ~latency ())

let test_fabric_delivery_time () =
  let e, f = mk_fabric () in
  let arrival = ref (-1) in
  Fabric.set_receiver f ~node:1 (fun _ -> arrival := Engine.now e);
  Fabric.send f ~at:100 (msg ());
  Engine.run e;
  check_int "arrives at send + latency" 111 !arrival

let test_fabric_local_short_circuit () =
  let e, f = mk_fabric () in
  let arrival = ref (-1) in
  Fabric.set_receiver f ~node:0 (fun _ -> arrival := Engine.now e);
  Fabric.send f ~at:50 (msg ~dst:0 ());
  Engine.run e;
  check_int "local latency 1" 51 !arrival;
  check_int "local counted" 1 (Stats.get (Fabric.stats f) "msgs.local")

let test_fabric_pairwise_fifo () =
  let e, f = mk_fabric () in
  let log = ref [] in
  Fabric.set_receiver f ~node:1 (fun m -> log := m.Message.handler :: !log);
  (* same source, increasing send times: must arrive in order *)
  Fabric.send f ~at:10 (msg ~handler:1 ());
  Fabric.send f ~at:11 (msg ~handler:2 ());
  Fabric.send f ~at:11 (msg ~handler:3 ());
  Engine.run e;
  Alcotest.(check (list int)) "FIFO" [ 1; 2; 3 ] (List.rev !log)

let test_fabric_stats () =
  let e, f = mk_fabric () in
  Fabric.set_receiver f ~node:1 (fun _ -> ());
  Fabric.send f ~at:0 (msg ~vnet:Message.Request ~args:[| 1 |] ());
  Fabric.send f ~at:0 (msg ~vnet:Message.Response ~data:(Bytes.create 32) ());
  Engine.run e;
  let s = Fabric.stats f in
  check_int "request msgs" 1 (Stats.get s "msgs.request");
  check_int "response msgs" 1 (Stats.get s "msgs.response");
  check_int "request words" 2 (Stats.get s "words.request");
  check_int "response words" 9 (Stats.get s "words.response")

let test_fabric_no_receiver () =
  let e, f = mk_fabric () in
  Fabric.send f ~at:0 (msg ~dst:2 ());
  try
    Engine.run e;
    Alcotest.fail "missing receiver must raise"
  with Invalid_argument _ -> ()

let test_fabric_bad_destination () =
  let _, f = mk_fabric ~nodes:2 () in
  try
    Fabric.send f ~at:0 (msg ~dst:7 ());
    Alcotest.fail "bad destination must raise"
  with Invalid_argument _ -> ()

let test_fabric_causality_clamp () =
  (* a send stamped in the past (sender clock lagging) still delivers at or
     after 'now' *)
  let e, f = mk_fabric () in
  let arrival = ref (-1) in
  Fabric.set_receiver f ~node:1 (fun _ -> arrival := Engine.now e);
  Engine.at e 500 (fun () -> Fabric.send f ~at:3 (msg ()));
  Engine.run e;
  check_bool "clamped to now" true (!arrival >= 500)

let () =
  Alcotest.run "net"
    [
      ( "message",
        [
          Alcotest.test_case "word accounting" `Quick test_message_word_accounting;
          Alcotest.test_case "packet limit" `Quick test_message_packet_limit;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "delivery time" `Quick test_fabric_delivery_time;
          Alcotest.test_case "local short circuit" `Quick
            test_fabric_local_short_circuit;
          Alcotest.test_case "pairwise FIFO" `Quick test_fabric_pairwise_fifo;
          Alcotest.test_case "traffic stats" `Quick test_fabric_stats;
          Alcotest.test_case "missing receiver" `Quick test_fabric_no_receiver;
          Alcotest.test_case "bad destination" `Quick test_fabric_bad_destination;
          Alcotest.test_case "causality clamp" `Quick test_fabric_causality_clamp;
        ] );
    ]
