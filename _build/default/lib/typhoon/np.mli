(** Network-interface processor (§5, Figure 2).

    The NP is a run-to-completion, non-preemptive handler engine with its
    own cycle clock.  Work arrives as incoming messages (two virtual
    networks), block-access faults from the snooped bus (the BAF buffer),
    page faults, and deferred chores (bulk-transfer packetization).  The
    dispatch loop drains work in priority order: response messages first
    (so request handlers can never starve responses — §5.1's deadlock rule),
    then faults, then request messages, then deferred work.

    Handler semantics are supplied by the machine model through [exec];
    the NP itself only sequences work and accounts time. *)

type work =
  | Message of Tt_net.Message.t
  | Block_fault of Tempest.fault
  | Page_fault of {
      vaddr : int;
      access : Tt_mem.Tag.access;
      resumption : Tempest.resumption;
    }
  | Deferred of (unit -> unit)
      (** lowest priority; runs when both send queues would be idle (used by
          the block-transfer unit, §5.2) *)

type t

val create :
  Tt_sim.Engine.t ->
  rtlb:Tt_mem.Tlb.t ->
  dcache:Tt_cache.Cache.t ->
  unit ->
  t

val set_exec : t -> (work -> unit) -> unit
(** Install the handler-execution function (must be done before any
    {!post}).  Separate from {!create} to break the node/NP knot. *)

val post : t -> at:int -> work -> unit
(** Enqueue work that becomes visible to the dispatch loop at time [at]
    (the causing bus transaction or message arrival), and start the loop if
    the NP is idle.  Ready times must be monotone per work class. *)

val clock : t -> int

val charge : t -> int -> unit
(** Charge instruction cycles to the NP clock (only meaningful while a
    handler is executing). *)

val rtlb : t -> Tt_mem.Tlb.t

val dcache : t -> Tt_cache.Cache.t

val busy : t -> bool

val handled : t -> int
(** Total work items executed. *)

val busy_cycles : t -> int
(** Cycles spent executing handlers (NP utilization). *)
