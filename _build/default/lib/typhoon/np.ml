type work =
  | Message of Tt_net.Message.t
  | Block_fault of Tempest.fault
  | Page_fault of {
      vaddr : int;
      access : Tt_mem.Tag.access;
      resumption : Tempest.resumption;
    }
  | Deferred of (unit -> unit)

type t = {
  engine : Tt_sim.Engine.t;
  np_rtlb : Tt_mem.Tlb.t;
  np_dcache : Tt_cache.Cache.t;
  mutable exec : work -> unit;
  mutable np_clock : int;
  mutable np_busy : bool;
  (* each queue holds (ready_time, work); ready times are monotone within a
     queue, so checking the head suffices *)
  responses : (int * work) Queue.t;
  requests : (int * work) Queue.t;
  faults : (int * work) Queue.t;
  deferred : (int * work) Queue.t;
  mutable handled_count : int;
  mutable busy_cycle_count : int;
}

let create engine ~rtlb ~dcache () =
  { engine; np_rtlb = rtlb; np_dcache = dcache;
    exec = (fun _ -> invalid_arg "Np: exec not installed");
    np_clock = 0; np_busy = false;
    responses = Queue.create (); requests = Queue.create ();
    faults = Queue.create (); deferred = Queue.create ();
    handled_count = 0; busy_cycle_count = 0 }

let set_exec t exec = t.exec <- exec

let clock t = t.np_clock

let charge t n = t.np_clock <- t.np_clock + n

let rtlb t = t.np_rtlb

let dcache t = t.np_dcache

let busy t = t.np_busy

let handled t = t.handled_count

let busy_cycles t = t.busy_cycle_count

(* Priority: responses, then faults, then requests, then deferred chores
   (§5.1: the response network must never starve). *)
let queues t = [ t.responses; t.faults; t.requests; t.deferred ]

(* Next work item ready at the current NP clock; or the earliest future
   ready time if everything queued is still in flight. *)
let take_work t =
  let rec ready = function
    | [] -> None
    | q :: rest -> (
        match Queue.peek_opt q with
        | Some (at, _) when at <= t.np_clock ->
            let _, w = Queue.pop q in
            Some w
        | Some _ | None -> ready rest)
  in
  match ready (queues t) with
  | Some w -> `Run w
  | None ->
      let earliest =
        List.fold_left
          (fun acc q ->
            match Queue.peek_opt q with
            | Some (at, _) -> (
                match acc with Some e -> Some (min e at) | None -> Some at)
            | None -> acc)
          None (queues t)
      in
      (match earliest with Some at -> `Wait at | None -> `Idle)

let rec dispatch t () =
  match take_work t with
  | `Idle -> t.np_busy <- false
  | `Wait at ->
      (* everything queued is still in flight: idle until it lands *)
      t.np_clock <- max t.np_clock at;
      Tt_sim.Engine.at t.engine t.np_clock (dispatch t)
  | `Run work ->
      let start = t.np_clock in
      t.exec work;
      t.handled_count <- t.handled_count + 1;
      t.busy_cycle_count <- t.busy_cycle_count + (t.np_clock - start);
      (* Re-enter the loop at the NP's advanced clock so other simulation
         events interleave at the right times. *)
      Tt_sim.Engine.at t.engine t.np_clock (dispatch t)

let post t ~at work =
  (match work with
  | Message m when m.Tt_net.Message.vnet = Tt_net.Message.Response ->
      Queue.add (at, work) t.responses
  | Message _ -> Queue.add (at, work) t.requests
  | Block_fault _ | Page_fault _ -> Queue.add (at, work) t.faults
  | Deferred _ -> Queue.add (at, work) t.deferred);
  if not t.np_busy then begin
    t.np_busy <- true;
    t.np_clock <- max t.np_clock (Tt_sim.Engine.now t.engine);
    Tt_sim.Engine.at t.engine t.np_clock (dispatch t)
  end
