lib/typhoon/costs.mli:
