lib/typhoon/np.mli: Tempest Tt_cache Tt_mem Tt_net Tt_sim
