lib/typhoon/system.ml: Array Bytes Costs Fun Hashtbl Np Option Params Printf Tempest Tt_cache Tt_mem Tt_net Tt_sim Tt_util
