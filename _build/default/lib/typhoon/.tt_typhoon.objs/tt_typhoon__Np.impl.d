lib/typhoon/np.ml: List Queue Tempest Tt_cache Tt_mem Tt_net Tt_sim
