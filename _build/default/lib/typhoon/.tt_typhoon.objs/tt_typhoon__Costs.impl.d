lib/typhoon/costs.ml:
