lib/typhoon/system.mli: Np Params Tempest Tt_cache Tt_mem Tt_net Tt_sim Tt_util
