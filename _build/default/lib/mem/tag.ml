type t = Read_write | Read_only | Invalid | Busy

type access = Load | Store

let permits t access =
  match t, access with
  | Read_write, (Load | Store) -> true
  | Read_only, Load -> true
  | Read_only, Store -> false
  | (Invalid | Busy), (Load | Store) -> false

let to_string = function
  | Read_write -> "ReadWrite"
  | Read_only -> "ReadOnly"
  | Invalid -> "Invalid"
  | Busy -> "Busy"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal a b =
  match a, b with
  | Read_write, Read_write | Read_only, Read_only | Invalid, Invalid
  | Busy, Busy ->
      true
  | (Read_write | Read_only | Invalid | Busy), _ -> false

let to_bits = function
  | Read_write -> 0
  | Read_only -> 1
  | Invalid -> 2
  | Busy -> 3

let of_bits = function
  | 0 -> Read_write
  | 1 -> Read_only
  | 2 -> Invalid
  | 3 -> Busy
  | n -> invalid_arg (Printf.sprintf "Tag.of_bits: %d" n)
