type t = {
  entries : int;
  miss_penalty : int;
  present : (int, unit) Hashtbl.t;
  order : int Queue.t; (* FIFO of inserted keys; may contain flushed keys *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(entries = 64) ~miss_penalty () =
  { entries; miss_penalty; present = Hashtbl.create 128; order = Queue.create ();
    hits = 0; misses = 0 }

let probe t key = Hashtbl.mem t.present key

let rec evict_one t =
  match Queue.take_opt t.order with
  | None -> ()
  | Some victim ->
      (* Stale queue entries (flushed pages) are skipped. *)
      if Hashtbl.mem t.present victim then Hashtbl.remove t.present victim
      else evict_one t

let access t key =
  if probe t key then begin
    t.hits <- t.hits + 1;
    0
  end
  else begin
    t.misses <- t.misses + 1;
    if Hashtbl.length t.present >= t.entries then evict_one t;
    Hashtbl.replace t.present key ();
    Queue.add key t.order;
    t.miss_penalty
  end

let flush_entry t key = Hashtbl.remove t.present key

let flush_all t =
  Hashtbl.reset t.present;
  Queue.clear t.order

let hits t = t.hits

let misses t = t.misses
