lib/mem/tlb.mli:
