lib/mem/pagemem.mli: Bytes Tag
