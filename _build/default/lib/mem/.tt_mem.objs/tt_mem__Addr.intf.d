lib/mem/addr.mli:
