lib/mem/tag.ml: Format Printf
