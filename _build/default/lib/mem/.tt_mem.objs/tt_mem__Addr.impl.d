lib/mem/addr.ml:
