lib/mem/tlb.ml: Hashtbl Queue
