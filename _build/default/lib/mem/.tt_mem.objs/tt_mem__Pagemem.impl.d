lib/mem/pagemem.ml: Addr Bytes Char Hashtbl Int64 Printf Tag
