lib/mem/tag.mli: Format
