(** Fully-associative FIFO translation cache (timing model).

    Used both for the CPU TLB and the NP's TLB/RTLB (Table 2: 64 entries,
    fully associative, FIFO replacement, 25-cycle miss).  It caches only the
    *presence* of a translation; the authoritative mapping lives in
    {!Pagemem}.  Callers ask [access] and charge the returned penalty. *)

type t

val create : ?entries:int -> miss_penalty:int -> unit -> t
(** Defaults to 64 entries. *)

val access : t -> int -> int
(** [access t key] looks up [key] (a page number).  On a hit returns 0; on a
    miss inserts the entry (evicting FIFO if full) and returns the miss
    penalty. *)

val probe : t -> int -> bool
(** Hit test without updating state. *)

val flush_entry : t -> int -> unit
(** Drop one translation (page remapped/unmapped). *)

val flush_all : t -> unit

val hits : t -> int

val misses : t -> int
