(** Fine-grain access-control tags (§2.4, Table 1).

    Every 32-byte memory block carries one of these.  [Busy] is Typhoon's
    fourth RTLB state (§5.4): it denies accesses exactly like [Invalid] but
    lets protocol software distinguish blocks with an outstanding request
    (e.g. prefetched or mid-transaction). *)

type t = Read_write | Read_only | Invalid | Busy

type access = Load | Store

val permits : t -> access -> bool
(** [Read_write] permits everything; [Read_only] permits only loads;
    [Invalid] and [Busy] permit nothing. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val to_bits : t -> int
(** 2-bit RTLB encoding. *)

val of_bits : int -> t
(** @raise Invalid_argument outside [\[0, 3\]]. *)
