(** Address arithmetic for the simulated machine.

    The simulated target has a flat, paged virtual address space per node
    (§2.3 of the paper): 4 KB pages divided into 32-byte memory blocks, the
    granularity of Tempest's fine-grain access control.  Addresses are plain
    OCaml [int]s. *)

val page_size : int
(** 4096 bytes. *)

val block_size : int
(** 32 bytes (Typhoon's tag granularity). *)

val blocks_per_page : int
(** 128. *)

val word_size : int
(** 8 bytes — applications store 64-bit values. *)

val page_of : int -> int
(** Virtual page number of an address. *)

val page_base : int -> int
(** Base address of the page containing the address. *)

val page_offset : int -> int

val block_of : int -> int
(** Global block number ([addr / block_size]). *)

val block_base : int -> int

val block_offset : int -> int

val block_index : int -> int
(** Index of the address's block within its page, in [\[0, 128)]. *)

val block_addr : page:int -> index:int -> int
(** Address of block [index] of virtual page [page]. *)

val is_word_aligned : int -> bool

val is_block_aligned : int -> bool

val is_page_aligned : int -> bool
