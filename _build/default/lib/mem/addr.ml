let page_size = 4096

let block_size = 32

let blocks_per_page = page_size / block_size

let word_size = 8

let page_of a = a / page_size

let page_base a = a land lnot (page_size - 1)

let page_offset a = a land (page_size - 1)

let block_of a = a / block_size

let block_base a = a land lnot (block_size - 1)

let block_offset a = a land (block_size - 1)

let block_index a = page_offset a / block_size

let block_addr ~page ~index = (page * page_size) + (index * block_size)

let is_word_aligned a = a land (word_size - 1) = 0

let is_block_aligned a = a land (block_size - 1) = 0

let is_page_aligned a = a land (page_size - 1) = 0
