type kind = Read | Read_ex | Upgrade

type txn = { kind : kind; requester : int; mutable acks_left : int }

type entry = {
  sharers : Tt_util.Bitset.t;
  mutable owner : int option;
  mutable busy : txn option;
  mutable overflowed : bool;
  waiting : (kind * int) Queue.t;
}

type t = { node_count : int; entries : (int, entry) Hashtbl.t }

let create ~nodes = { node_count = nodes; entries = Hashtbl.create 4096 }

let entry t ~block =
  match Hashtbl.find_opt t.entries block with
  | Some e -> e
  | None ->
      let e =
        { sharers = Tt_util.Bitset.create t.node_count; owner = None;
          busy = None; overflowed = false; waiting = Queue.create () }
      in
      Hashtbl.replace t.entries block e;
      e

let find t ~block = Hashtbl.find_opt t.entries block

let iter t f = Hashtbl.iter f t.entries

let nodes t = t.node_count
