(** Hardware full-map directory state (one per home node).

    DirNNB ("Dir_N no-broadcast") keeps, for every home memory block, a
    full-map bit vector of sharers plus an optional exclusive owner.  A
    per-block busy flag serializes transactions; conflicting requests queue
    behind it, which is how the blocking hardware protocol behaves. *)

type kind = Read | Read_ex | Upgrade

type txn = {
  kind : kind;
  requester : int;
  mutable acks_left : int;
}

type entry = {
  sharers : Tt_util.Bitset.t;
  mutable owner : int option;
  mutable busy : txn option;
  mutable overflowed : bool;
      (** limited-pointer ablation: precise sharer identity was lost, so
          invalidations must broadcast *)
  waiting : (kind * int) Queue.t;
}

type t

val create : nodes:int -> t

val entry : t -> block:int -> entry
(** Lazily created: a block starts un-cached everywhere. *)

val find : t -> block:int -> entry option
(** Like {!entry} but without creating (for invariant checks). *)

val iter : t -> (int -> entry -> unit) -> unit

val nodes : t -> int
