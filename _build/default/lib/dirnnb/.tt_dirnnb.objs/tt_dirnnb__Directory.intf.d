lib/dirnnb/directory.mli: Queue Tt_util
