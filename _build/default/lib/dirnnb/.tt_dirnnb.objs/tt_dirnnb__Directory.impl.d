lib/dirnnb/directory.ml: Hashtbl Queue Tt_util
