lib/dirnnb/system.mli: Directory Params Tt_cache Tt_mem Tt_net Tt_sim Tt_util
