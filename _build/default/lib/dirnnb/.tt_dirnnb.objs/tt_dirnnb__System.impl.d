lib/dirnnb/system.ml: Array Bytes Directory Hashtbl List Option Params Printf Queue Tt_cache Tt_mem Tt_net Tt_sim Tt_util
