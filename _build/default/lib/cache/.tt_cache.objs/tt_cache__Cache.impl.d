lib/cache/cache.ml: Array Tt_mem Tt_util
