lib/cache/mbus.ml: Format Tt_mem
