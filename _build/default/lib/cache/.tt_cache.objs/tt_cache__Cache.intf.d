lib/cache/cache.mli: Tt_util
