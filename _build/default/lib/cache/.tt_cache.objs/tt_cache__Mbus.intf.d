lib/cache/mbus.mli: Format Tt_mem
