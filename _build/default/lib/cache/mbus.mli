(** MBus transaction vocabulary (§5.4).

    On a cache miss or upgrade the CPU issues a bus transaction.  In Typhoon
    the NP snoops these: transactions on blocks whose tag permits the access
    proceed to memory (with the NP asserting the "shared" line for ReadOnly
    blocks), all others are inhibited and become block access faults. *)

type transaction =
  | Read  (** read miss: acquire a copy *)
  | Read_invalidate  (** write miss: acquire an owned copy *)
  | Invalidate  (** write hit on an unowned (Shared) line: upgrade *)

type snoop_result =
  | Allow of { shared : bool }
      (** memory may respond; [shared] set means the CPU must cache the line
          Shared rather than Exclusive *)
  | Inhibit  (** snooper asserted inhibit + relinquish-and-retry: the access
                 becomes a block access fault *)

val access_of : transaction -> Tt_mem.Tag.access
(** The tag-check semantics of a transaction: [Read] checks as a load, the
    other two as stores. *)

val pp_transaction : Format.formatter -> transaction -> unit
