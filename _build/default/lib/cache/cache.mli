(** Set-associative CPU cache (timing/state model).

    Table 2: 4-way associative, random replacement, 32-byte blocks.  The
    cache tracks coherence *state* only; data values are kept coherent in
    the node memories by a write-through-for-values simplification (see
    DESIGN.md §4), so lines carry no payload.

    Lines are keyed by global block number ([vaddr / 32]); a node maps each
    virtual page to at most one place at a time, so this is equivalent to
    physical indexing (pages are flushed on remap). *)

type state =
  | Shared  (** clean, possibly other copies; read-only in the cache *)
  | Exclusive  (** owned; the CPU may write it *)

type t

val create :
  ?name:string ->
  size_bytes:int ->
  assoc:int ->
  prng:Tt_util.Prng.t ->
  unit ->
  t
(** [size_bytes] must be a multiple of [assoc * 32]. *)

val sets : t -> int

val lookup : t -> block:int -> state option
(** [None] means miss.  Counts hit/miss statistics. *)

val probe : t -> block:int -> state option
(** Like {!lookup} but without touching statistics (snoops, invariants). *)

val insert : t -> block:int -> state:state -> (int * state) option
(** Fill a line after a miss.  If the block is already present its state is
    updated and [None] is returned; otherwise a random victim may be evicted
    and is returned as [(block, state)] for replacement costing and
    writeback decisions. *)

val set_state : t -> block:int -> state -> unit
(** @raise Invalid_argument if the block is not cached. *)

val invalidate : t -> block:int -> bool
(** Drop the line if present; returns [true] if it was present. *)

val downgrade : t -> block:int -> unit
(** Exclusive → Shared if present (no-op otherwise). *)

val flush_page : t -> vpage:int -> unit
(** Invalidate every cached block of a virtual page (page remap). *)

val iter : t -> (int -> state -> unit) -> unit
(** Visit all valid lines (for invariant checks). *)

val occupancy : t -> int

val hits : t -> int

val misses : t -> int

val evictions_shared : t -> int

val evictions_exclusive : t -> int

val name : t -> string
