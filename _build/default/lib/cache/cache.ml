type state = Shared | Exclusive

type line = { mutable tag : int; mutable st : state; mutable valid : bool }

type t = {
  label : string;
  nsets : int;
  assoc : int;
  sets : line array array;
  prng : Tt_util.Prng.t;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable evict_shared : int;
  mutable evict_exclusive : int;
}

let create ?(name = "cache") ~size_bytes ~assoc ~prng () =
  let block = Tt_mem.Addr.block_size in
  if size_bytes <= 0 || assoc <= 0 || size_bytes mod (assoc * block) <> 0 then
    invalid_arg "Cache.create: size must be a positive multiple of assoc*32";
  let nsets = size_bytes / (assoc * block) in
  let sets =
    Array.init nsets (fun _ ->
        Array.init assoc (fun _ -> { tag = 0; st = Shared; valid = false }))
  in
  { label = name; nsets; assoc; sets; prng; hit_count = 0; miss_count = 0;
    evict_shared = 0; evict_exclusive = 0 }

let sets t = t.nsets

let name t = t.label

let set_of t block = t.sets.(block mod t.nsets)

let find_line t block =
  let set = set_of t block in
  let rec go i =
    if i >= t.assoc then None
    else if set.(i).valid && set.(i).tag = block then Some set.(i)
    else go (i + 1)
  in
  go 0

let probe t ~block =
  match find_line t block with Some l -> Some l.st | None -> None

let lookup t ~block =
  match probe t ~block with
  | Some _ as r ->
      t.hit_count <- t.hit_count + 1;
      r
  | None ->
      t.miss_count <- t.miss_count + 1;
      None

let insert t ~block ~state =
  match find_line t block with
  | Some l ->
      l.st <- state;
      None
  | None ->
      let set = set_of t block in
      let slot =
        let rec free i = if i >= t.assoc then None else if not set.(i).valid then Some i else free (i + 1) in
        match free 0 with
        | Some i -> i
        | None -> Tt_util.Prng.int t.prng t.assoc
      in
      let line = set.(slot) in
      let evicted =
        if line.valid then begin
          (match line.st with
          | Shared -> t.evict_shared <- t.evict_shared + 1
          | Exclusive -> t.evict_exclusive <- t.evict_exclusive + 1);
          Some (line.tag, line.st)
        end
        else None
      in
      line.tag <- block;
      line.st <- state;
      line.valid <- true;
      evicted

let set_state t ~block state =
  match find_line t block with
  | Some l -> l.st <- state
  | None -> invalid_arg "Cache.set_state: block not cached"

let invalidate t ~block =
  match find_line t block with
  | Some l ->
      l.valid <- false;
      true
  | None -> false

let downgrade t ~block =
  match find_line t block with Some l -> l.st <- Shared | None -> ()

let iter t f =
  Array.iter
    (fun set ->
      Array.iter (fun l -> if l.valid then f l.tag l.st) set)
    t.sets

let flush_page t ~vpage =
  let lo = vpage * Tt_mem.Addr.blocks_per_page in
  let hi = lo + Tt_mem.Addr.blocks_per_page - 1 in
  Array.iter
    (fun set ->
      Array.iter
        (fun l -> if l.valid && l.tag >= lo && l.tag <= hi then l.valid <- false)
        set)
    t.sets

let occupancy t =
  let n = ref 0 in
  iter t (fun _ _ -> incr n);
  !n

let hits t = t.hit_count

let misses t = t.miss_count

let evictions_shared t = t.evict_shared

let evictions_exclusive t = t.evict_exclusive
