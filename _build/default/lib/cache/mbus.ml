type transaction = Read | Read_invalidate | Invalidate

type snoop_result = Allow of { shared : bool } | Inhibit

let access_of = function
  | Read -> Tt_mem.Tag.Load
  | Read_invalidate | Invalidate -> Tt_mem.Tag.Store

let pp_transaction ppf t =
  Format.pp_print_string ppf
    (match t with
    | Read -> "Read"
    | Read_invalidate -> "ReadInvalidate"
    | Invalidate -> "Invalidate")
