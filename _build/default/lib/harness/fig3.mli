(** Figure 3: execution time of Typhoon/Stache relative to DirNNB.

    Five benchmarks × five configurations — the small data set with 4 K,
    16 K, 64 K and 256 K CPU caches, and the large data set with 256 K —
    each run on both systems; the reported value is
    [stache cycles / dirnnb cycles] (shorter bars = Typhoon/Stache wins,
    exactly as in the paper's chart). *)

type cell = {
  config_label : string;  (** e.g. "small/4K" *)
  dirnnb_cycles : int;
  stache_cycles : int;
}

type row = { bench : string; data_set : string; cells : cell list }

val configs : (Catalog.size * int) list
(** [(size, cache_bytes)] in the figure's legend order. *)

val run :
  ?apps:string list -> ?scale:float -> ?nodes:int -> ?verify:bool ->
  unit -> row list
(** Defaults: all five apps, scale 1.0 (paper data sets), 32 nodes, verify
    off (the oracle check roughly doubles wall-clock). *)

val ratio : cell -> float

val render : row list -> string
(** ASCII rendition of the figure (ratio per config), plus raw cycles. *)
