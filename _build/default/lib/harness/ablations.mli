(** Ablation studies for the design choices DESIGN.md calls out.

    Each returns measured numbers so callers (the CLI, the benchmark
    harness, tests) can render or assert on them. *)

type directory_result = {
  full_map_cycles : int;
  full_map_invals : int;
  limited_cycles : int;
  limited_invals : int;
  pointer_limit : int;
}

val directory : ?nodes:int -> ?pointer_limit:int -> unit -> directory_result
(** Full-map DirNNB vs. a Dir_iB limited-pointer directory on a
    widely-shared-then-written workload. *)

type contention_result = {
  free_cycles : int;
  contended_cycles : int;
  senders : int;
}

val contention : ?nodes:int -> unit -> contention_result
(** Bulk-transfer fan-in to one node, with and without the finite-port
    bandwidth model. *)

type barrier_result = { hw_cycles : int; msg_cycles : int; participants : int }

val barriers : ?nodes:int -> unit -> barrier_result
(** One barrier episode: the idealized hardware barrier vs. the user-level
    message barrier of [Tt_sync.Msg_sync]. *)

type prefetch_result = {
  plain_cycles : int;
  plain_msgs : int;
  prefetch_cycles : int;
  prefetch_msgs : int;
}

val prefetch : ?nodes:int -> unit -> prefetch_result
(** EM3D on Typhoon/Stache with and without software prefetch — §4's
    "hides latency, does not reduce traffic". *)

val render_all : ?nodes:int -> unit -> string
