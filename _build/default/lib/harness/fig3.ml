type cell = {
  config_label : string;
  dirnnb_cycles : int;
  stache_cycles : int;
}

type row = { bench : string; data_set : string; cells : cell list }

let configs =
  [ (Catalog.Small, 4 * 1024);
    (Catalog.Small, 16 * 1024);
    (Catalog.Small, 64 * 1024);
    (Catalog.Small, 256 * 1024);
    (Catalog.Large, 256 * 1024) ]

let config_label (size, cache) =
  Printf.sprintf "%s/%dK" (Catalog.size_label size) (cache / 1024)

let ratio c = float_of_int c.stache_cycles /. float_of_int c.dirnnb_cycles

let run_one ~name ~size ~cache ~scale ~nodes ~verify =
  let params =
    Params.with_cache { Params.default with Params.nodes } cache
  in
  let measure machine =
    let app = Catalog.make ~name ~size ~scale ~nprocs:nodes in
    let r = Run.spmd machine ~name:app.Catalog.app_name app.Catalog.body in
    if verify then
      ignore
        (Run.spmd machine ~name:(name ^ "-verify") ~check:false
           app.Catalog.verify);
    r.Run.cycles
  in
  let dirnnb_cycles = measure (Machine.dirnnb params) in
  let stache_cycles = measure (Machine.typhoon_stache params) in
  { config_label = config_label (size, cache); dirnnb_cycles; stache_cycles }

let run ?(apps = Catalog.names) ?(scale = 1.0) ?(nodes = 32) ?(verify = false)
    () =
  List.map
    (fun name ->
      let cells =
        List.map
          (fun (size, cache) ->
            run_one ~name ~size ~cache ~scale ~nodes ~verify)
          configs
      in
      {
        bench = name;
        data_set =
          Catalog.data_set_description ~name ~size:Catalog.Small ~scale;
        cells;
      })
    apps

let render rows =
  let columns =
    ("benchmark", Tt_util.Tablefmt.Left)
    :: List.map
         (fun c -> (config_label c, Tt_util.Tablefmt.Right))
         configs
  in
  let ratios =
    Tt_util.Tablefmt.create
      ~title:
        "Figure 3: execution time of Typhoon/Stache relative to DirNNB \
         (ratio < 1 means Typhoon/Stache is faster)"
      ~columns
  in
  List.iter
    (fun row ->
      Tt_util.Tablefmt.add_row ratios
        (row.bench
        :: List.map (fun c -> Printf.sprintf "%.2f" (ratio c)) row.cells))
    rows;
  let raw =
    Tt_util.Tablefmt.create ~title:"Figure 3 raw cycles (dirnnb / stache)"
      ~columns
  in
  List.iter
    (fun row ->
      Tt_util.Tablefmt.add_row raw
        (row.bench
        :: List.map
             (fun c ->
               Printf.sprintf "%d / %d" c.dirnnb_cycles c.stache_cycles)
             row.cells))
    rows;
  Tt_util.Tablefmt.render ratios ^ "\n" ^ Tt_util.Tablefmt.render raw
