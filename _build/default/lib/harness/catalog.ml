open Tt_app

type app = {
  app_name : string;
  body : Env.t -> unit;
  verify : Env.t -> unit;
  work_items : int;
}

type size = Small | Large

let size_label = function Small -> "small" | Large -> "large"

let names = [ "appbt"; "barnes"; "mp3d"; "ocean"; "em3d" ]

let make ~name ~size ~scale ~nprocs =
  match name with
  | "appbt" ->
      let base = match size with Small -> Appbt.small | Large -> Appbt.large in
      let cfg = if scale = 1.0 then base else Appbt.scale base scale in
      let i = Appbt.make cfg ~nprocs in
      { app_name = name; body = i.Appbt.body; verify = i.Appbt.verify;
        work_items = cfg.Appbt.n * cfg.Appbt.n * cfg.Appbt.n }
  | "barnes" ->
      let base = match size with Small -> Barnes.small | Large -> Barnes.large in
      let cfg = if scale = 1.0 then base else Barnes.scale base scale in
      let i = Barnes.make cfg ~nprocs in
      { app_name = name; body = i.Barnes.body; verify = i.Barnes.verify;
        work_items = cfg.Barnes.bodies }
  | "mp3d" ->
      let base = match size with Small -> Mp3d.small | Large -> Mp3d.large in
      let cfg = if scale = 1.0 then base else Mp3d.scale base scale in
      let i = Mp3d.make cfg ~nprocs in
      { app_name = name; body = i.Mp3d.body; verify = i.Mp3d.verify;
        work_items = cfg.Mp3d.molecules }
  | "ocean" ->
      let base = match size with Small -> Ocean.small | Large -> Ocean.large in
      let cfg = if scale = 1.0 then base else Ocean.scale base scale in
      let i = Ocean.make cfg ~nprocs in
      { app_name = name; body = i.Ocean.body; verify = i.Ocean.verify;
        work_items = cfg.Ocean.n * cfg.Ocean.n }
  | "em3d" ->
      let base = match size with Small -> Em3d.small | Large -> Em3d.large in
      let cfg = if scale = 1.0 then base else Em3d.scale base scale in
      let i = Em3d.make cfg ~nprocs in
      { app_name = name; body = i.Em3d.body; verify = i.Em3d.verify;
        work_items = i.Em3d.edges }
  | other -> invalid_arg (Printf.sprintf "Catalog.make: unknown app %S" other)

let data_set_description ~name ~size ~scale =
  let suffix = if scale = 1.0 then "" else Printf.sprintf " (x%.2f)" scale in
  let pick small large = match size with Small -> small | Large -> large in
  (match name with
  | "appbt" ->
      let base = pick Appbt.small Appbt.large in
      let cfg = if scale = 1.0 then base else Appbt.scale base scale in
      Printf.sprintf "%dx%dx%d" cfg.Appbt.n cfg.Appbt.n cfg.Appbt.n
  | "barnes" ->
      let base = pick Barnes.small Barnes.large in
      let cfg = if scale = 1.0 then base else Barnes.scale base scale in
      Printf.sprintf "%d bodies" cfg.Barnes.bodies
  | "mp3d" ->
      let base = pick Mp3d.small Mp3d.large in
      let cfg = if scale = 1.0 then base else Mp3d.scale base scale in
      Printf.sprintf "%d mols" cfg.Mp3d.molecules
  | "ocean" ->
      let base = pick Ocean.small Ocean.large in
      let cfg = if scale = 1.0 then base else Ocean.scale base scale in
      Printf.sprintf "%dx%d grid" cfg.Ocean.n cfg.Ocean.n
  | "em3d" ->
      let base = pick Em3d.small Em3d.large in
      let cfg = if scale = 1.0 then base else Em3d.scale base scale in
      Printf.sprintf "%d nodes, degree %d" cfg.Em3d.total_nodes cfg.Em3d.degree
  | other -> invalid_arg (Printf.sprintf "Catalog: unknown app %S" other))
  ^ suffix
