type point = {
  pct_remote : int;
  dirnnb : float;
  stache : float;
  update : float;
}

let run ?(pcts = [ 0; 10; 20; 30; 40; 50 ]) ?(scale = 1.0) ?(nodes = 32)
    ?(verify = false) () =
  let base = Tt_app.Em3d.large in
  let base = if scale = 1.0 then base else Tt_app.Em3d.scale base scale in
  List.map
    (fun pct_remote ->
      let cfg = { base with Tt_app.Em3d.pct_remote } in
      let inst = Tt_app.Em3d.make cfg ~nprocs:nodes in
      let steady_edges = inst.Tt_app.Em3d.edges * cfg.Tt_app.Em3d.iters in
      let measure machine =
        let r = Run.spmd machine ~name:"em3d" inst.Tt_app.Em3d.body in
        if verify then
          ignore
            (Run.spmd machine ~name:"em3d-verify" ~check:false
               inst.Tt_app.Em3d.verify);
        (* The paper's y-axis is execution cycles per edge *handled by one
           processor*: execution time (max processor cycles) divided by the
           edges each processor traverses.  The warm-up iteration's cycles
           are included, so count its edges too. *)
        let edges_per_proc =
          (steady_edges + inst.Tt_app.Em3d.edges) / nodes
        in
        float_of_int r.Run.cycles /. float_of_int edges_per_proc
      in
      let params = { Params.default with Params.nodes } in
      {
        pct_remote;
        dirnnb = measure (Machine.dirnnb params);
        stache = measure (Machine.typhoon_stache params);
        update = measure (Machine.typhoon_em3d params);
      })
    pcts

let render points =
  let table =
    Tt_util.Tablefmt.create
      ~title:
        "Figure 4: EM3D cycles per edge vs % non-local edges (large data \
         set)"
      ~columns:
        [ ("% non-local", Tt_util.Tablefmt.Right);
          ("DirNNB", Tt_util.Tablefmt.Right);
          ("Typhoon/Stache", Tt_util.Tablefmt.Right);
          ("Typhoon/Update", Tt_util.Tablefmt.Right);
          ("update vs dirnnb", Tt_util.Tablefmt.Right) ]
  in
  List.iter
    (fun p ->
      Tt_util.Tablefmt.add_row table
        [ string_of_int p.pct_remote;
          Printf.sprintf "%.1f" p.dirnnb;
          Printf.sprintf "%.1f" p.stache;
          Printf.sprintf "%.1f" p.update;
          Printf.sprintf "%+.0f%%" (100.0 *. ((p.update /. p.dirnnb) -. 1.0)) ])
    points;
  Tt_util.Tablefmt.render table

let advantage_at points pct =
  match List.find_opt (fun p -> p.pct_remote = pct) points with
  | Some p -> 1.0 -. (p.update /. p.dirnnb)
  | None -> invalid_arg "Fig4.advantage_at: percentage not measured"
