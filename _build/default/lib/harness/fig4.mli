(** Figure 4: EM3D update-protocol performance.

    Cycles per edge (per steady-state iteration) as the percentage of
    non-local edges sweeps 0..50 %, for DirNNB, Typhoon/Stache and
    Typhoon/Update (the custom delayed-update protocol of §4).  The paper
    runs the large data set (192,000 nodes, degree 15). *)

type point = {
  pct_remote : int;
  dirnnb : float;  (** cycles per edge *)
  stache : float;
  update : float;
}

val run :
  ?pcts:int list -> ?scale:float -> ?nodes:int -> ?verify:bool -> unit ->
  point list
(** Defaults: 0,10,20,30,40,50 %, scale 1.0 (large data set), 32 nodes. *)

val render : point list -> string

val advantage_at : point list -> int -> float
(** [advantage_at points 50] = 1 - update/dirnnb at the given percentage
    (the paper reports ≈ 0.35 at 50 %). *)
