module T = Tt_util.Tablefmt

let table1 () =
  let t =
    T.create ~title:"Table 1: operations on tagged memory blocks"
      ~columns:
        [ ("Operation", T.Left); ("Description", T.Left);
          ("Implemented by", T.Left) ]
  in
  List.iter
    (fun row -> T.add_row t row)
    [
      [ "read"; "load with tag check; fault suspends thread, invokes handler";
        "Typhoon.System.cpu_read_*" ];
      [ "write"; "store with tag check; fault suspends thread, invokes handler";
        "Typhoon.System.cpu_write_*" ];
      [ "force-read"; "load without tag check";
        "Tempest.t.force_read_block/_i64/_f64" ];
      [ "force-write"; "store without tag check";
        "Tempest.t.force_write_block/_i64/_f64" ];
      [ "read-tag"; "return value of tag"; "Tempest.t.read_tag" ];
      [ "set-RW"; "set tag value to ReadWrite"; "Tempest.t.set_rw" ];
      [ "set-RO"; "set tag value to ReadOnly"; "Tempest.t.set_ro" ];
      [ "invalidate"; "set tag to Invalid and invalidate local copies";
        "Tempest.t.invalidate" ];
      [ "resume"; "resume suspended thread(s)"; "Tempest.t.resume" ];
    ];
  T.render t

let table2 ?(params = Params.default) () =
  let t =
    T.create ~title:"Table 2: simulation parameters"
      ~columns:[ ("Parameter", T.Left); ("Value", T.Left) ]
  in
  let p = params in
  let rows =
    [
      ("nodes", string_of_int p.Params.nodes);
      ( "CPU cache",
        Printf.sprintf "%d KB, %d-way assoc., random repl."
          (p.Params.cpu_cache_bytes / 1024) p.Params.cpu_cache_assoc );
      ("block size", "32 bytes");
      ( "CPU TLB",
        Printf.sprintf "%d ent., fully assoc., FIFO repl."
          p.Params.cpu_tlb_entries );
      ("page size", "4 Kbytes");
      ("local cache miss", Printf.sprintf "%d cycles" p.Params.local_miss);
      ( "local writeback",
        Printf.sprintf "%d (perfect write buffer)" p.Params.local_writeback );
      ("TLB miss", Printf.sprintf "%d cycles" p.Params.tlb_miss);
      ("network latency", Printf.sprintf "%d cycles" p.Params.net_latency);
      ("barrier latency", Printf.sprintf "%d cycles" p.Params.barrier_latency);
      ( "remote cache miss (DirNNB)",
        Printf.sprintf "%d + %d..%d if replacement + network/directory + %d"
          p.Params.remote_miss_base p.Params.repl_shared
          p.Params.repl_exclusive p.Params.remote_miss_finish );
      ( "remote cache invalidate (DirNNB)",
        Printf.sprintf "%d + %d..%d if replacement" p.Params.remote_inval
          p.Params.repl_shared p.Params.repl_exclusive );
      ( "directory op (DirNNB)",
        Printf.sprintf "%d + %d if block rcvd + %d per msg sent + %d if block \
                        sent"
          p.Params.dir_op p.Params.dir_block_recv p.Params.dir_per_msg
          p.Params.dir_block_send );
      ( "NP TLB, RTLB (Typhoon)",
        Printf.sprintf "%d ent., fully assoc., FIFO repl."
          p.Params.np_tlb_entries );
      ("(R)TLB miss (Typhoon)", Printf.sprintf "%d cycles" p.Params.np_tlb_miss);
      ( "NP D-cache (Typhoon)",
        Printf.sprintf "%d KB, %d-way assoc." (p.Params.np_dcache_bytes / 1024)
          p.Params.np_dcache_assoc );
      ("NP I-cache (Typhoon)", "not modelled (handlers fit 8 KB; §6)");
    ]
  in
  List.iter (fun (a, b) -> T.add_row t [ a; b ]) rows;
  T.render t

let table3 ?(scale = 1.0) () =
  let t =
    T.create ~title:"Table 3: application data sets"
      ~columns:
        [ ("Application", T.Left); ("Small data set", T.Left);
          ("Large data set", T.Left) ]
  in
  List.iter
    (fun name ->
      T.add_row t
        [ String.capitalize_ascii name;
          Catalog.data_set_description ~name ~size:Catalog.Small ~scale;
          Catalog.data_set_description ~name ~size:Catalog.Large ~scale ])
    Catalog.names;
  T.render t

let all () = table1 () ^ "\n" ^ table2 () ^ "\n" ^ table3 ()
