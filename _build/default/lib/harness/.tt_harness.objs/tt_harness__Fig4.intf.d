lib/harness/fig4.mli:
