lib/harness/catalog.mli: Tt_app
