lib/harness/machine.mli: Hashtbl Params Tt_custom Tt_dirnnb Tt_sim Tt_stache Tt_typhoon Tt_util
