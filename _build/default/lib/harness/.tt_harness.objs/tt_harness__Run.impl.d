lib/harness/run.ml: Array Format Hashtbl Machine Params Printf Tt_app Tt_sim Tt_util
