lib/harness/run.mli: Format Machine Tt_app Tt_util
