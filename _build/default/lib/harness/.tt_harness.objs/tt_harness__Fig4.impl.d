lib/harness/fig4.ml: List Machine Params Printf Run Tt_app Tt_util
