lib/harness/tables.ml: Catalog List Params Printf String Tt_util
