lib/harness/tables.mli: Params
