lib/harness/catalog.ml: Appbt Barnes Em3d Env Mp3d Ocean Printf Tt_app
