lib/harness/fig3.ml: Catalog List Machine Params Printf Run Tt_util
