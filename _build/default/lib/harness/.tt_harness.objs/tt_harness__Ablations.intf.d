lib/harness/ablations.mli:
