lib/harness/ablations.ml: Array Buffer Machine Option Params Printf Run Tempest Tt_app Tt_mem Tt_sim Tt_sync Tt_typhoon Tt_util
