(** Textual renditions of the paper's Tables 1–3 as implemented here, so
    reviewers can diff the code's configuration against the paper. *)

val table1 : unit -> string
(** The nine operations on tagged memory blocks and where each lives in
    this codebase. *)

val table2 : ?params:Params.t -> unit -> string
(** Simulation parameters (defaults = the paper's values). *)

val table3 : ?scale:float -> unit -> string
(** Application data sets (small/large), with any scaling applied. *)

val all : unit -> string
