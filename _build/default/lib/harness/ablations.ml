module Env = Tt_app.Env
module Stats = Tt_util.Stats

type directory_result = {
  full_map_cycles : int;
  full_map_invals : int;
  limited_cycles : int;
  limited_invals : int;
  pointer_limit : int;
}

(* A block read by several (but not all) nodes, then rewritten by its
   owner: precise sharer lists invalidate the readers; an overflowed
   limited-pointer directory must broadcast. *)
let shared_then_written ~readers (base : int ref) (env : Env.t) =
  let words = 128 in
  if env.Env.proc = 0 then begin
    base := env.Env.alloc ~home:0 (words * Env.word);
    for w = 0 to words - 1 do
      env.Env.write (!base + (w * Env.word)) 1.0
    done
  end;
  env.Env.barrier ();
  for _round = 1 to 3 do
    if env.Env.proc >= 1 && env.Env.proc <= readers then
      for w = 0 to words - 1 do
        ignore (env.Env.read (!base + (w * Env.word)))
      done;
    env.Env.barrier ();
    if env.Env.proc = 0 then
      for w = 0 to words - 1 do
        env.Env.write (!base + (w * Env.word)) 2.0
      done;
    env.Env.barrier ()
  done

let directory ?(nodes = 16) ?(pointer_limit = 4) () =
  let run limit =
    let params =
      { Params.default with Params.nodes; dir_limited_pointers = limit }
    in
    let base = ref 0 in
    let r =
      Run.spmd (Machine.dirnnb params) ~name:"broadcast"
        (shared_then_written ~readers:6 base)
    in
    (r.Run.cycles, Stats.get r.Run.run_stats "invals_received")
  in
  let full_map_cycles, full_map_invals = run None in
  let limited_cycles, limited_invals = run (Some pointer_limit) in
  { full_map_cycles; full_map_invals; limited_cycles; limited_invals;
    pointer_limit }

type contention_result = {
  free_cycles : int;
  contended_cycles : int;
  senders : int;
}

let bulk_fan_in ~nodes link =
  let engine = Tt_sim.Engine.create () in
  let sys =
    Tt_typhoon.System.create engine
      { Params.default with Params.nodes; link_words_per_cycle = link }
  in
  let vpage = 0x7000 in
  let page_bytes = Tt_mem.Addr.page_size in
  let remaining = ref (nodes - 1) in
  let threads =
    Array.init nodes (fun node ->
        Tt_sim.Thread.spawn engine ~name:(Printf.sprintf "n%d" node)
          (fun th ->
            let ep = Tt_typhoon.System.endpoint sys node in
            Tt_typhoon.System.with_cpu_context sys ~node th (fun () ->
                ep.Tempest.map_page ~vpage:(vpage + node) ~home:node ~mode:0
                  ~init_tag:Tt_mem.Tag.Read_write);
            if node > 0 then
              Tt_typhoon.System.with_cpu_context sys ~node th (fun () ->
                  ep.Tempest.bulk_transfer ~dst:0
                    ~src_va:((vpage + node) * page_bytes)
                    ~dst_va:(vpage * page_bytes) ~len:page_bytes
                    ~on_complete:(fun () -> decr remaining))))
  in
  Tt_sim.Engine.run engine;
  ignore threads;
  assert (!remaining = 0);
  Tt_sim.Engine.now engine

let contention ?(nodes = 16) () =
  { free_cycles = bulk_fan_in ~nodes None;
    contended_cycles = bulk_fan_in ~nodes (Some 1);
    senders = nodes - 1 }

type barrier_result = { hw_cycles : int; msg_cycles : int; participants : int }

let barriers ?(nodes = 16) () =
  let engine = Tt_sim.Engine.create () in
  let sys =
    Tt_typhoon.System.create engine { Params.default with Params.nodes }
  in
  let sync = Tt_sync.Msg_sync.install sys in
  let hw = Tt_sim.Barrier.create engine ~participants:nodes ~latency:11 in
  let bar = ref None in
  let hw_cost = ref 0 and msg_cost = ref 0 in
  let threads =
    Array.init nodes (fun node ->
        Tt_sim.Thread.spawn engine ~name:(Printf.sprintf "p%d" node)
          (fun th ->
            if node = 0 then
              bar :=
                Some
                  (Tt_sync.Msg_sync.alloc_barrier sync ~th ~node ~home:0
                     ~participants:nodes);
            Tt_sim.Thread.yield th;
            let c0 = Tt_sim.Thread.clock th in
            Tt_sim.Barrier.wait hw th;
            if node = 0 then hw_cost := Tt_sim.Thread.clock th - c0;
            let c1 = Tt_sim.Thread.clock th in
            Tt_sync.Msg_sync.barrier_wait sync ~th ~node (Option.get !bar);
            if node = 0 then msg_cost := Tt_sim.Thread.clock th - c1))
  in
  Tt_sim.Engine.run engine;
  Array.iter (fun th -> assert (Tt_sim.Thread.finished th)) threads;
  { hw_cycles = !hw_cost; msg_cycles = !msg_cost; participants = nodes }

type prefetch_result = {
  plain_cycles : int;
  plain_msgs : int;
  prefetch_cycles : int;
  prefetch_msgs : int;
}

let prefetch ?(nodes = 16) () =
  let run software_prefetch =
    let cfg =
      { Tt_app.Em3d.total_nodes = 6000; degree = 8; pct_remote = 30;
        iters = 3; seed = 41; software_prefetch }
    in
    let machine =
      Machine.typhoon_stache { Params.default with Params.nodes }
    in
    let inst = Tt_app.Em3d.make cfg ~nprocs:nodes in
    let r = Run.spmd machine ~name:"em3d" inst.Tt_app.Em3d.body in
    ( r.Run.cycles,
      Stats.get r.Run.run_stats "msgs.request"
      + Stats.get r.Run.run_stats "msgs.response" )
  in
  let plain_cycles, plain_msgs = run false in
  let prefetch_cycles, prefetch_msgs = run true in
  { plain_cycles; plain_msgs; prefetch_cycles; prefetch_msgs }

let render_all ?(nodes = 16) () =
  let buf = Buffer.create 512 in
  let d = directory ~nodes () in
  Buffer.add_string buf
    (Printf.sprintf
       "directory, widely shared data:\n\
       \  full map: %d cycles, %d invalidations\n\
       \  Dir_%dB (broadcast on overflow): %d cycles, %d invalidations\n"
       d.full_map_cycles d.full_map_invals d.pointer_limit d.limited_cycles
       d.limited_invals);
  let c = contention ~nodes () in
  Buffer.add_string buf
    (Printf.sprintf
       "bulk fan-in to one node (%d senders x 4 KB):\n\
       \  contention-free network: %d cycles\n\
       \  1 word/cycle ports: %d cycles\n"
       c.senders c.free_cycles c.contended_cycles);
  let b = barriers ~nodes () in
  Buffer.add_string buf
    (Printf.sprintf
       "barrier episode (%d participants):\n\
       \  hardware primitive: %d cycles\n\
       \  user-level message barrier: %d cycles\n"
       b.participants b.hw_cycles b.msg_cycles);
  let p = prefetch ~nodes () in
  Buffer.add_string buf
    (Printf.sprintf
       "em3d on Typhoon/Stache, software prefetch:\n\
       \  plain: %d cycles, %d messages\n\
       \  prefetching: %d cycles, %d messages (latency hidden, traffic not \
        reduced)\n"
       p.plain_cycles p.plain_msgs p.prefetch_cycles p.prefetch_msgs);
  Buffer.contents buf
