let max_pointers = 6

type repr = Pointers of int list (* sorted, ≤ 6 *) | Vector of Tt_util.Bitset.t

type t = {
  nodes : int;
  mutable repr : repr;
  mutable overflows : int;
}

let create ~nodes = { nodes; repr = Pointers []; overflows = 0 }

let mem t n =
  match t.repr with
  | Pointers l -> List.mem n l
  | Vector v -> Tt_util.Bitset.mem v n

let add t n =
  if n < 0 || n >= t.nodes then invalid_arg "Sharers.add: node out of range";
  match t.repr with
  | Pointers l when List.mem n l -> ()
  | Pointers l when List.length l < max_pointers ->
      t.repr <- Pointers (List.sort compare (n :: l))
  | Pointers l ->
      (* overflow: fall back to the bit vector held in the first four
         pointer bytes *)
      let v = Tt_util.Bitset.create t.nodes in
      List.iter (Tt_util.Bitset.add v) (n :: l);
      t.overflows <- t.overflows + 1;
      t.repr <- Vector v
  | Vector v -> Tt_util.Bitset.add v n

let remove t n =
  match t.repr with
  | Pointers l -> t.repr <- Pointers (List.filter (fun x -> x <> n) l)
  | Vector v -> Tt_util.Bitset.remove v n

let count t =
  match t.repr with
  | Pointers l -> List.length l
  | Vector v -> Tt_util.Bitset.cardinal v

let is_empty t = count t = 0

let to_list t =
  match t.repr with Pointers l -> l | Vector v -> Tt_util.Bitset.to_list v

let clear t = t.repr <- Pointers []

let is_overflowed t = match t.repr with Pointers _ -> false | Vector _ -> true

let overflow_events t = t.overflows
