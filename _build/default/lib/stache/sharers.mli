(** Sharer sets in the paper's 64-bit per-block directory layout (§3).

    "The protocol preallocates 64 bits per cache block — two bytes for state
    and six one-byte pointers.  If more than six pointers are required, the
    current implementation uses the first four pointers as a bit vector."

    We keep that exact representation: up to six explicit node pointers,
    overflowing into a 32-bit-capable bit vector (32-node systems fit).
    Conversions are counted so the pointer/bit-vector ablation bench can
    report how often overflow happens. *)

type t

val create : nodes:int -> t
(** Empty set; [nodes] must be ≤ the bit-vector width for overflow to be
    representable. *)

val add : t -> int -> unit

val remove : t -> int -> unit

val mem : t -> int -> bool

val count : t -> int

val is_empty : t -> bool

val to_list : t -> int list
(** Ascending order. *)

val clear : t -> unit

val is_overflowed : t -> bool
(** Currently using the bit-vector representation. *)

val overflow_events : t -> int
(** Number of pointer→vector conversions over this set's lifetime. *)
