(** Per-home-page software directory (§3).

    A Stache home page carries one directory entry per 32-byte block,
    allocated when the page is created and reachable from the page's
    uninterpreted user word — exactly the structure the paper hangs off the
    RTLB entry.  The coherence protocol is the software LimitLESS-like
    invalidation protocol of §3. *)

type client =
  | Remote of int * [ `Ro | `Rw | `Up ]
      (** a remote node's get-read-only / get-read-write / upgrade request *)
  | Home of Tempest.resumption * Tt_mem.Tag.access
      (** the home CPU itself faulted; resume it when the block is granted *)

type pending = {
  client : client;
  mutable acks_left : int;
  mutable prev_owner : int option;
      (** owner a recall was sent to; joins the sharers on a read recall *)
}

type bstate =
  | Idle  (** home holds the only copy, tag ReadWrite *)
  | Shared  (** home tag ReadOnly; remote ReadOnly copies in [sharers] *)
  | Remote_excl of int  (** home tag Invalid; owner has the only copy *)

type block_dir = {
  mutable state : bstate;
  sharers : Sharers.t;
  mutable pending : pending option;
  waiters : client Queue.t;
}

type page_dir = block_dir array
(** 128 entries, indexed by block-within-page. *)

type Tt_mem.Pagemem.user_info += Home_dir of page_dir

val create_page_dir : nodes:int -> page_dir

val block_of : Tempest.t -> vaddr:int -> block_dir
(** Directory entry for [vaddr]'s block, fetched through the page's user
    word.  @raise Invalid_argument if the page is not a Stache home page. *)

val dir_key : vaddr:int -> int
(** Stable key identifying the directory entry's cache line for NP
    data-cache modelling ({!Tempest.t.touch}). *)
