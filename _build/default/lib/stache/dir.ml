type client =
  | Remote of int * [ `Ro | `Rw | `Up ]
  | Home of Tempest.resumption * Tt_mem.Tag.access

type pending = {
  client : client;
  mutable acks_left : int;
  mutable prev_owner : int option;
}

type bstate = Idle | Shared | Remote_excl of int

type block_dir = {
  mutable state : bstate;
  sharers : Sharers.t;
  mutable pending : pending option;
  waiters : client Queue.t;
}

type page_dir = block_dir array

type Tt_mem.Pagemem.user_info += Home_dir of page_dir

let create_page_dir ~nodes =
  Array.init Tt_mem.Addr.blocks_per_page (fun _ ->
      { state = Idle; sharers = Sharers.create ~nodes; pending = None;
        waiters = Queue.create () })

let block_of (ep : Tempest.t) ~vaddr =
  let vpage = Tt_mem.Addr.page_of vaddr in
  match ep.Tempest.page_user ~vpage with
  | Home_dir dir -> dir.(Tt_mem.Addr.block_index vaddr)
  | _ ->
      invalid_arg
        (Printf.sprintf "Stache.Dir: 0x%x is not on a stache home page" vaddr)

let dir_key ~vaddr =
  (* Directory entries are 8 bytes (64 bits), four per 32-byte NP cache
     line; derive a distinct line key per group of four blocks, disjoint
     from data block numbers by an offset. *)
  0x4000_0000 + (Tt_mem.Addr.block_of vaddr / 4)
