lib/stache/dir.mli: Queue Sharers Tempest Tt_mem
