lib/stache/sharers.mli:
