lib/stache/sharers.ml: List Tt_util
