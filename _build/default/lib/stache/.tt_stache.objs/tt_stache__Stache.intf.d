lib/stache/stache.mli: Tt_sim Tt_typhoon Tt_util
