lib/stache/stache.ml: Array Bytes Dir Hashtbl List Option Printf Queue Sharers Tempest Tt_mem Tt_net Tt_sim Tt_typhoon Tt_util
