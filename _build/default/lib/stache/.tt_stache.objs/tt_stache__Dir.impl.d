lib/stache/dir.ml: Array Printf Queue Sharers Tempest Tt_mem
