(** ASCII table rendering for experiment reports.

    The harness prints every reproduced paper table/figure as one of these,
    so output stays diffable in [test_output.txt]/[bench_output.txt]. *)

type align = Left | Right

type t

val create : title:string -> columns:(string * align) list -> t

val add_row : t -> string list -> unit
(** The row must have exactly as many cells as there are columns. *)

val add_separator : t -> unit

val render : t -> string

val print : t -> unit
(** [render] to stdout followed by a newline. *)
