(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic choice in the simulator (cache victim selection, workload
    topology, synthetic traffic) draws from an explicitly-seeded [Prng.t] so
    that simulations are reproducible bit-for-bit across runs. *)

type t

val create : seed:int -> t
(** [create ~seed] returns a fresh generator.  Equal seeds give equal
    streams. *)

val copy : t -> t
(** Independent duplicate continuing from the current state. *)

val split : t -> t
(** Derive a statistically independent child generator; the parent
    advances. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
