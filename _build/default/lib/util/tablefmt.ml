type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string;
  columns : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Tablefmt.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let headers = List.map fst t.columns in
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row ->
            match row with
            | Separator -> w
            | Cells cells -> max w (String.length (List.nth cells i)))
          (String.length h) rows)
      headers
  in
  let buf = Buffer.create 256 in
  let pad align width s =
    let fill = String.make (width - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let hline () =
    List.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let emit_cells aligns cells =
    List.iteri
      (fun i cell ->
        let w = List.nth widths i and a = List.nth aligns i in
        Buffer.add_string buf ("| " ^ pad a w cell ^ " "))
      cells;
    Buffer.add_string buf "|\n"
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  hline ();
  emit_cells (List.map (fun _ -> Left) t.columns) headers;
  hline ();
  List.iter
    (fun row ->
      match row with
      | Separator -> hline ()
      | Cells cells -> emit_cells (List.map snd t.columns) cells)
    rows;
  hline ();
  Buffer.contents buf

let print t = print_string (render t)
