(** Per-block protocol event tracing.

    Set the environment variable [TT_DEBUG_BLOCK] to a block identifier
    (for DirNNB a global block number, for Stache a block-base virtual
    address; decimal or 0x-prefixed) and every protocol event touching that
    block is streamed to stderr.  Zero cost when unset. *)

val target : int option
(** The requested block key, parsed once at startup. *)

val log : key:int -> ('a, unit, string, unit) format4 -> 'a
(** [log ~key fmt …] prints to stderr iff [key] matches [target]. *)
