let target =
  match Sys.getenv_opt "TT_DEBUG_BLOCK" with
  | Some s -> int_of_string_opt s
  | None -> None

let log ~key fmt =
  Printf.ksprintf (fun msg -> if target = Some key then prerr_endline msg) fmt
