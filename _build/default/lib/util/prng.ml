type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = next_int64 t in
  { state = s }

let int t bound =
  assert (bound > 0);
  (* keep 62 bits so the value fits OCaml's 63-bit native int *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let int_in t ~lo ~hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 high-quality bits, as in the standard double construction. *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let chance t p = float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
