(** Fixed-capacity bit set.

    Used for directory sharer vectors (the DirNNB full-map directory and the
    Stache bit-vector overflow representation) and page-residence maps. *)

type t

val create : int -> t
(** [create n] is an empty set over the universe [\[0, n)]. *)

val capacity : t -> int

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val cardinal : t -> int
(** Population count; O(words). *)

val is_empty : t -> bool

val iter : (int -> unit) -> t -> unit
(** Visit members in increasing order. *)

val to_list : t -> int list

val clear : t -> unit

val copy : t -> t

val equal : t -> t -> bool
