lib/util/tablefmt.mli:
