lib/util/vec.mli:
