lib/util/heap.mli:
