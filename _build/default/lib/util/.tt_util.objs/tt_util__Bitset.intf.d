lib/util/bitset.mli:
