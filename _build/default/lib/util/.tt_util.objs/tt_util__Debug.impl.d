lib/util/debug.ml: Printf Sys
