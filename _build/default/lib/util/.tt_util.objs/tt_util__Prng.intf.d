lib/util/prng.mli:
