lib/util/bitset.ml: Array
