lib/util/debug.mli:
