type t = { words : int array; capacity : int }

let bits_per_word = 62 (* stay clear of the OCaml int tag bit *)

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Array.make ((n + bits_per_word - 1) / bits_per_word) 0; capacity = n }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: element out of range"

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let iter f t =
  for i = 0 to t.capacity - 1 do
    if mem t i then f i
  done

let to_list t =
  let acc = ref [] in
  for i = t.capacity - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let copy t = { words = Array.copy t.words; capacity = t.capacity }

let equal a b = a.capacity = b.capacity && a.words = b.words
