(** Named counters and simple distributions.

    Every subsystem (caches, network, NP, protocols) owns a [Stats.t] group;
    the harness merges and reports them per run.  Counters are plain ints —
    nothing here is on a hot path that justifies fancier machinery. *)

type t

val create : string -> t
(** [create name] is an empty counter group labelled [name]. *)

val name : t -> string

val incr : t -> string -> unit

val add : t -> string -> int -> unit

val get : t -> string -> int
(** Missing counters read as 0. *)

val set_max : t -> string -> int -> unit
(** Keep the maximum of the current value and the argument. *)

val observe : t -> string -> int -> unit
(** Record one sample of a distribution: tracks count, sum, min and max under
    [key ^ ".count"], [".sum"], [".min"], [".max"]. *)

val mean : t -> string -> float
(** Mean of a distribution recorded with {!observe}; 0 if empty. *)

val counters : t -> (string * int) list
(** All counters, sorted by key. *)

val merge_into : dst:t -> t -> unit
(** Add every counter of the source into [dst] (maxima are max-merged). *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit
