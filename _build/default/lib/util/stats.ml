type t = {
  label : string;
  table : (string, int) Hashtbl.t;
  maxima : (string, unit) Hashtbl.t; (* keys merged with [max] rather than [+] *)
}

let create label = { label; table = Hashtbl.create 32; maxima = Hashtbl.create 4 }

let name t = t.label

let get t key = match Hashtbl.find_opt t.table key with Some v -> v | None -> 0

let set t key v = Hashtbl.replace t.table key v

let add t key n = set t key (get t key + n)

let incr t key = add t key 1

let set_max t key v =
  Hashtbl.replace t.maxima key ();
  if v > get t key then set t key v

let observe t key v =
  incr t (key ^ ".count");
  add t (key ^ ".sum") v;
  let kmin = key ^ ".min" and kmax = key ^ ".max" in
  Hashtbl.replace t.maxima kmax ();
  if not (Hashtbl.mem t.table kmin) || v < get t kmin then set t kmin v;
  if v > get t kmax then set t kmax v

let mean t key =
  let count = get t (key ^ ".count") in
  if count = 0 then 0.0 else float_of_int (get t (key ^ ".sum")) /. float_of_int count

let counters t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge_into ~dst src =
  Hashtbl.iter
    (fun k v ->
      if Hashtbl.mem src.maxima k then set_max dst k v else add dst k v)
    src.table

let reset t =
  Hashtbl.reset t.table;
  Hashtbl.reset t.maxima

let pp ppf t =
  Format.fprintf ppf "@[<v2>%s:" t.label;
  List.iter (fun (k, v) -> Format.fprintf ppf "@,%-40s %d" k v) (counters t);
  Format.fprintf ppf "@]"
