(** User-level synchronization over Tempest (§2, footnote 1).

    The paper models barriers as a fixed-latency hardware primitive
    (Table 2) but notes that Tempest is expected to grow synchronization
    primitives.  This library shows they need nothing beyond the existing
    mechanisms: atomic counters live in their home node's NP (handlers are
    serialized, so a handler *is* a critical section) and a sense-reversing
    barrier is one fetch-and-add plus a broadcast of release messages.

    All operations block the calling CPU thread and charge realistic
    message costs, so they are directly comparable to the hardware
    barrier — see the [ablation_msg_barrier] benchmark. *)

type t

val install : Tt_typhoon.System.t -> t
(** Register the handlers; call once per system, before use. *)

type counter

val alloc_counter :
  t -> th:Tt_sim.Thread.t -> node:int -> home:int -> init:int -> counter
(** An atomic counter resident at [home]'s NP. *)

val fetch_add :
  t -> th:Tt_sim.Thread.t -> node:int -> counter -> int -> int
(** Atomically add to the counter and return the *previous* value.  Blocks
    the calling thread for the message round trip (local counters
    short-circuit the network). *)

val read_counter : t -> th:Tt_sim.Thread.t -> node:int -> counter -> int
(** [fetch_add t ~th ~node c 0]. *)

type barrier

val alloc_barrier :
  t -> th:Tt_sim.Thread.t -> node:int -> home:int -> participants:int ->
  barrier
(** A reusable sense-reversing barrier coordinated by [home]'s NP. *)

val barrier_wait : t -> th:Tt_sim.Thread.t -> node:int -> barrier -> unit
(** Arrive and block until all participants have arrived: one arrival
    message per participant, one release message back — 2·(P−1) network
    messages per episode. *)

val stats : t -> Tt_util.Stats.t
(** [fetch_adds], [barrier_episodes]. *)
