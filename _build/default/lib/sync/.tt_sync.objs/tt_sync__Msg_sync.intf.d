lib/sync/msg_sync.mli: Tt_sim Tt_typhoon Tt_util
