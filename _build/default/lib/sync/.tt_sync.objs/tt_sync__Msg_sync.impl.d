lib/sync/msg_sync.ml: Array List Tempest Tt_net Tt_sim Tt_typhoon Tt_util
