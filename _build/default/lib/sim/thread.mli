(** Simulated computation threads (one per simulated CPU).

    A thread is an OCaml-5 effect fiber with a private cycle clock.  Code
    running inside the fiber charges cycles with {!advance} and blocks with
    {!suspend}; the memory system uses this to implement Tempest's
    suspend-handle-resume semantics for block access faults: the faulting
    thread performs a [Suspend] effect, protocol handlers run elsewhere in
    simulated time, and the eventual [wake] schedules the continuation.

    A thread's clock may run ahead of global time by at most [quantum]
    cycles between yields, mirroring the Wind Tunnel's quantum-based
    conservative synchronization. *)

type t

exception Failure_in of string * exn
(** Raised out of {!Engine.run} when a thread body raises: carries the thread
    name and the original exception. *)

val spawn :
  Engine.t -> ?quantum:int -> ?start:int -> name:string -> (t -> unit) -> t
(** [spawn engine ~name body] creates a thread and schedules its first step
    at time [start] (default: now).  [quantum] (default 200 cycles) bounds
    how far the local clock may run ahead before {!maybe_yield} reinserts the
    thread into the event queue. *)

val name : t -> string

val clock : t -> int
(** Local cycle count. *)

val set_clock : t -> int -> unit
(** Used by protocol completion paths: set the local clock to the simulated
    completion time before calling the thread's wake function. *)

val advance : t -> int -> unit
(** Charge [n] cycles to the local clock. *)

val finished : t -> bool

val blocked : t -> bool

val suspend : t -> (('a -> unit) -> unit) -> 'a
(** [suspend t register] must be called from inside the thread's own body.
    [register] runs immediately and receives [wake]; calling [wake v]
    (exactly once, now or later) schedules the continuation of the thread at
    [max (clock t) now] and makes [suspend] return [v]. *)

val yield : t -> unit
(** Re-enter the event queue at the current local clock, letting events with
    earlier timestamps run first. *)

val maybe_yield : t -> unit
(** {!yield} only if the local clock has outrun the last yield by more than
    the quantum.  Call this on every simulated memory access. *)
