type event = { time : int; seq : int; fn : unit -> unit }

type t = {
  events : event Tt_util.Heap.t;
  mutable now : int;
  mutable seq : int;
}

let compare_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () =
  { events = Tt_util.Heap.create ~cmp:compare_event (); now = 0; seq = 0 }

let now t = t.now

let at t time fn =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.at: scheduling at %d which is before now=%d" time t.now);
  Tt_util.Heap.push t.events { time; seq = t.seq; fn };
  t.seq <- t.seq + 1

let after t delay fn = at t (t.now + delay) fn

let pending t = Tt_util.Heap.length t.events

let step t =
  match Tt_util.Heap.pop t.events with
  | None -> false
  | Some ev ->
      t.now <- ev.time;
      ev.fn ();
      true

let run t = while step t do () done

let run_until t ~limit =
  let rec go () =
    match Tt_util.Heap.peek t.events with
    | None -> true
    | Some ev when ev.time > limit -> false
    | Some _ ->
        ignore (step t);
        go ()
  in
  go ()
