(** Reusable counting barrier.

    The paper models barrier synchronization as a dedicated low-level
    primitive with a fixed latency (Table 2: 11 cycles) rather than through
    the coherence protocol, and notes (§2, footnote) that Tempest is expected
    to grow hardware synchronization primitives.  We follow that model: all
    participants block; once the last arrives, everyone resumes at
    [max arrival time + latency]. *)

type t

val create : Engine.t -> participants:int -> latency:int -> t

val wait : t -> Thread.t -> unit
(** Must be called from inside the thread's body.  Reusable: the barrier
    resets itself when the last participant arrives. *)

val episodes : t -> int
(** Number of completed barrier episodes (for statistics). *)
