type t = {
  engine : Engine.t;
  uncontended_cost : int;
  transfer_cost : int;
  mutable held : bool;
  mutable holder_release_clock : int;
  waiters : (Thread.t * (unit -> unit)) Queue.t;
  mutable acquires : int;
  mutable contended : int;
}

let create engine ?(uncontended_cost = 2) ?(transfer_cost = 11) () =
  { engine; uncontended_cost; transfer_cost; held = false;
    holder_release_clock = 0; waiters = Queue.create (); acquires = 0;
    contended = 0 }

let acquires t = t.acquires

let contended_acquires t = t.contended

let acquire t th =
  t.acquires <- t.acquires + 1;
  Thread.advance th t.uncontended_cost;
  if not t.held then t.held <- true
  else begin
    t.contended <- t.contended + 1;
    Thread.suspend th (fun wake -> Queue.add (th, wake) t.waiters)
  end

let release t th =
  if not t.held then invalid_arg "Lock.release: lock not held";
  t.holder_release_clock <- Thread.clock th;
  match Queue.take_opt t.waiters with
  | None -> t.held <- false
  | Some (waiter, wake) ->
      (* Hand off: the waiter resumes after the holder's release plus a
         transfer latency, or at its own arrival time if that is later. *)
      let resume_at =
        max (Thread.clock waiter) (t.holder_release_clock + t.transfer_cost)
      in
      Thread.set_clock waiter resume_at;
      wake ()

let with_lock t th f =
  acquire t th;
  match f () with
  | v ->
      release t th;
      v
  | exception e ->
      release t th;
      raise e
