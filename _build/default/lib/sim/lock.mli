(** Queueing mutual-exclusion lock with simple latency costs.

    Like barriers, locks are modelled as a synchronization primitive outside
    the coherence protocols (the paper defers synchronization primitives to
    future Tempest extensions).  An uncontended acquire costs
    [uncontended_cost] cycles; a contended acquire additionally waits for the
    holder and pays [transfer_cost] (a network-ish handoff). *)

type t

val create :
  Engine.t -> ?uncontended_cost:int -> ?transfer_cost:int -> unit -> t
(** Costs default to 2 cycles (local atomic) and 11 cycles (one network
    latency). *)

val acquire : t -> Thread.t -> unit
(** Must be called from inside the thread's body.  FIFO among waiters. *)

val release : t -> Thread.t -> unit

val with_lock : t -> Thread.t -> (unit -> 'a) -> 'a

val contended_acquires : t -> int

val acquires : t -> int
