type t = {
  engine : Engine.t;
  participants : int;
  latency : int;
  mutable arrived : int;
  mutable release_time : int;
  mutable waiters : (Thread.t * (unit -> unit)) list;
  mutable episodes : int;
}

let create engine ~participants ~latency =
  if participants <= 0 then invalid_arg "Barrier.create";
  { engine; participants; latency; arrived = 0; release_time = 0; waiters = [];
    episodes = 0 }

let episodes t = t.episodes

let wait t th =
  Thread.suspend th (fun wake ->
      t.arrived <- t.arrived + 1;
      t.release_time <- max t.release_time (Thread.clock th + t.latency);
      t.waiters <- (th, wake) :: t.waiters;
      if t.arrived = t.participants then begin
        let release_time = t.release_time and waiters = t.waiters in
        t.arrived <- 0;
        t.release_time <- 0;
        t.waiters <- [];
        t.episodes <- t.episodes + 1;
        List.iter
          (fun (waiter, waiter_wake) ->
            Thread.set_clock waiter release_time;
            waiter_wake ())
          waiters
      end)
