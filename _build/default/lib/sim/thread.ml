type state = Runnable | Blocked | Finished

type t = {
  engine : Engine.t;
  thread_name : string;
  quantum : int;
  mutable clock : int;
  mutable last_yield : int;
  mutable state : state;
}

exception Failure_in of string * exn

type _ Effect.t += Suspend : (('a -> unit) -> unit) -> 'a Effect.t

let name t = t.thread_name

let clock t = t.clock

let set_clock t c = t.clock <- c

let advance t n = t.clock <- t.clock + n

let finished t = t.state = Finished

let blocked t = t.state = Blocked

let suspend (_ : t) register = Effect.perform (Suspend register)

let wake_time t = max t.clock (Engine.now t.engine)

let spawn engine ?(quantum = 200) ?start ~name body =
  let start = match start with Some s -> s | None -> Engine.now engine in
  let t =
    { engine; thread_name = name; quantum; clock = start; last_yield = start;
      state = Runnable }
  in
  let handler =
    {
      Effect.Deep.retc = (fun () -> t.state <- Finished);
      exnc =
        (fun exn ->
          let bt = Printexc.get_raw_backtrace () in
          t.state <- Finished;
          Printexc.raise_with_backtrace (Failure_in (t.thread_name, exn)) bt);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
              Some
                (fun (k : (a, _) Effect.Deep.continuation) ->
                  t.state <- Blocked;
                  let woken = ref false in
                  let wake v =
                    if !woken then
                      invalid_arg
                        (Printf.sprintf "Thread %s woken twice" t.thread_name);
                    woken := true;
                    t.state <- Runnable;
                    t.clock <- wake_time t;
                    (* blocking re-synchronized us with global time: reset
                       the run-ahead bookkeeping so the continuation is not
                       immediately preempted by maybe_yield.  This is what
                       lets a CPU's retried access win against a queued
                       invalidation after a fill — the hardware's
                       forward-progress guarantee. *)
                    t.last_yield <- t.clock;
                    Engine.at t.engine t.clock (fun () ->
                        Effect.Deep.continue k v)
                  in
                  register wake)
          | _ -> None);
    }
  in
  Engine.at engine start (fun () -> Effect.Deep.match_with body t handler);
  t

let yield t = suspend t (fun wake -> wake ())

let maybe_yield t =
  if t.clock - t.last_yield >= t.quantum then begin
    t.last_yield <- t.clock;
    yield t
  end
