lib/sim/engine.ml: Printf Tt_util
