lib/sim/thread.mli: Engine
