lib/sim/engine.mli:
