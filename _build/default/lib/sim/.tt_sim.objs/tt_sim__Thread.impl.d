lib/sim/thread.ml: Effect Engine Printexc Printf
