lib/sim/lock.ml: Engine Queue Thread
