lib/sim/lock.mli: Engine Thread
