lib/sim/barrier.mli: Engine Thread
