(** The EM3D delayed-update protocol (§4).

    A custom coherence protocol, written against the same Tempest endpoint
    as Stache, that exploits EM3D's sharing pattern: graph-node values are
    produced by exactly one owner per step (owners-compute) and read by a
    static set of consumers.  Instead of invalidating consumer copies on
    every write and letting consumers re-fetch them (4+ messages per remote
    value per iteration), the protocol:

    - introduces two new page types — custom home and custom stache pages —
      and allocates graph values on them ({!alloc});
    - lets consumer copies go stale *within* a step: home blocks stay
      ReadWrite at the home, so owner writes never fault or invalidate;
    - keeps, at each home, a list of outstanding copies per block (reusing
      Stache's sharer representation);
    - at the end of a step, the owner's flush handler walks that list and
      sends one update message per (block, consumer) — the minimum one
      message per remote datum;
    - needs no acknowledgments: every consumer knows how many blocks of
      each array it has stached and simply counts arriving updates (a fuzzy
      barrier).  Updates that arrive early — for a step the consumer has not
      finished reading — are buffered and applied when the consumer enters
      its wait, which is what keeps delayed consistency from becoming
      incorrectness.

    Applications use it through two machine hooks:
    ["em3d.step:<kind>"] — flush my updates for array [kind] and wait for
    all updates of [kind] I am owed this step. *)

type t

val mode_custom_home : int

val mode_custom_remote : int

val install : Tt_typhoon.System.t -> Tt_stache.Stache.t -> t
(** Must be installed after Stache: it wraps Stache's page-fault handler so
    non-custom pages keep their transparent behaviour. *)

val alloc :
  t -> th:Tt_sim.Thread.t -> node:int -> kind:string -> ?home:int ->
  bytes:int -> unit -> int
(** Allocate a chunk of a named value array on custom home pages at [home].
    Chunks of the same [kind] share one update/expectation domain. *)

val flush_and_wait : t -> th:Tt_sim.Thread.t -> node:int -> kind:string -> unit
(** End-of-step synchronization for one array: post the flush of this node's
    outstanding copies to the NP, then block the CPU until all expected
    updates of [kind] for the current step have been applied. *)

val stats : t -> Tt_util.Stats.t
(** [updates_sent], [updates_buffered], [fetches]. *)
