lib/custom/em3d_proto.ml: Array Bytes Hashtbl List Printf Tempest Tt_mem Tt_net Tt_sim Tt_stache Tt_typhoon Tt_util
