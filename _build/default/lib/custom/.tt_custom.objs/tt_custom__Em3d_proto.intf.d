lib/custom/em3d_proto.mli: Tt_sim Tt_stache Tt_typhoon Tt_util
