(** Appbt (NAS): block-tridiagonal CFD solver on a 3-D grid.

    Each cell carries a 5-component state vector.  An iteration computes a
    7-point-stencil right-hand side (nearest-neighbour sharing across the
    z-partitioned slabs), then performs line solves along x, y and z.  The
    x and y lines are slab-local; the z lines cross every partition, so the
    forward and backward substitutions pipeline through the processors —
    the communication structure of the NAS code.  5×5 block operations are
    modelled as scalar recurrences per component plus their flop cost.
    Table 3: 12³ (small) / 24³ (large). *)

type config = { n : int; iters : int; seed : int }

val small : config

val large : config

val scale : config -> float -> config

type instance = { body : Env.t -> unit; verify : Env.t -> unit }

val make : config -> nprocs:int -> instance
