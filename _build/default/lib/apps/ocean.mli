(** Ocean (SPLASH): hydrodynamic simulation of a cuboidal ocean basin
    cross-section.

    The kernel is the dominant phase of the SPLASH code: iterated 5-point
    Jacobi relaxation over a 2-D grid, row-block partitioned, with nearest-
    neighbour sharing along partition boundaries and a global residual
    reduction each sweep.  Table 3 data sets: 98×98 (small), 386×386
    (large). *)

type config = { n : int;  (** grid side *) iters : int; seed : int }

val small : config

val large : config

val scale : config -> float -> config

type instance = { body : Env.t -> unit; verify : Env.t -> unit }

val make : config -> nprocs:int -> instance
