(** EM3D: electromagnetic wave propagation on a bipartite graph (§4, [7]).

    E nodes hold electric-field values, H nodes magnetic-field values.  Each
    iteration recomputes every E value as a weighted sum of its H neighbours,
    then every H value from its E neighbours.  Nodes are block-distributed
    and each processor updates the nodes it owns (owners-compute), fetching
    neighbour values that may live on other processors — the paper's
    motivating irregular workload.

    The fraction of edges whose endpoint lives on a remote processor is the
    Figure 4 x-axis ([pct_remote]).

    The same body runs on every machine: under DirNNB or Typhoon/Stache the
    end-of-phase synchronization is a barrier; when the machine provides the
    EM3D update protocol (hooks ["em3d.sync:e"]/["em3d.sync:h"]) the body
    allocates its value arrays on custom pages and replaces the steady-state
    barriers with the protocol's flush-and-wait. *)

type config = {
  total_nodes : int;  (** E nodes + H nodes *)
  degree : int;
  pct_remote : int;  (** 0..100, share of edges crossing processors *)
  iters : int;  (** steady-state iterations after one warm-up iteration *)
  seed : int;
  software_prefetch : bool;
      (** issue nonbinding prefetches one graph node ahead — §4's
          observation: "prefetching can hide communication latency, but
          does not reduce the message traffic" *)
}

val small : config
(** Table 3: 64,000 nodes, degree 10. *)

val large : config
(** Table 3: 192,000 nodes, degree 15. *)

val scale : config -> float -> config
(** Shrink [total_nodes] by a factor (for wall-clock-bounded runs); degree,
    structure and seed are preserved. *)

type instance = {
  body : Env.t -> unit;
  verify : Env.t -> unit;
      (** second SPMD pass: compare every owned value against the sequential
          oracle; raises [Failure] on mismatch *)
  edges : int;  (** total directed edges (both phases), for cycles/edge *)
}

val make : config -> nprocs:int -> instance
