module Prng = Tt_util.Prng

type config = { bodies : int; iters : int; theta : float; dt : float; seed : int }

let small = { bodies = 2048; iters = 2; theta = 0.7; dt = 0.01; seed = 13 }

let large = { bodies = 8192; iters = 2; theta = 0.7; dt = 0.01; seed = 13 }

let scale cfg factor =
  { cfg with bodies = max 64 (int_of_float (float_of_int cfg.bodies *. factor)) }

type instance = { body : Env.t -> unit; verify : Env.t -> unit }

let softening = 1e-3

(* ------------------------------------------------------------------ *)
(* Octree over the unit box, shared by the oracle and the SPMD body.   *)
(* Topology is a host-side structure (the "pointers"); node summaries  *)
(* (mass, centre of mass) live wherever the accessors point.           *)
(* ------------------------------------------------------------------ *)

type tnode = {
  id : int;
  cx : float;  (* geometric cell centre *)
  cy : float;
  cz : float;
  half : float;
  mutable children : tnode option array;  (* length 8, Some when split *)
  mutable leaf_body : int;  (* body index, -1 when internal/empty *)
  mutable count : int;
  (* summary, filled bottom-up *)
  mutable mass : float;
  mutable mx : float;
  mutable my : float;
  mutable mz : float;
}

let fresh_node next_id ~cx ~cy ~cz ~half =
  let id = !next_id in
  incr next_id;
  { id; cx; cy; cz; half; children = [||]; leaf_body = -1; count = 0;
    mass = 0.0; mx = 0.0; my = 0.0; mz = 0.0 }

let octant node x y z =
  (if x >= node.cx then 1 else 0)
  lor (if y >= node.cy then 2 else 0)
  lor if z >= node.cz then 4 else 0

let child_cell next_id node o =
  let q = node.half /. 2.0 in
  fresh_node next_id
    ~cx:(node.cx +. if o land 1 = 1 then q else -.q)
    ~cy:(node.cy +. if o land 2 = 2 then q else -.q)
    ~cz:(node.cz +. if o land 4 = 4 then q else -.q)
    ~half:q

(* Build the tree over all bodies; [pos b] yields body b's coordinates. *)
let build_tree ~n ~pos =
  let next_id = ref 0 in
  let root = fresh_node next_id ~cx:0.5 ~cy:0.5 ~cz:0.5 ~half:0.5 in
  let rec insert node b x y z depth =
    node.count <- node.count + 1;
    if node.children = [||] && node.leaf_body = -1 && node.count = 1 then
      node.leaf_body <- b
    else begin
      if node.children = [||] then node.children <- Array.make 8 None;
      (if node.leaf_body >= 0 && depth < 40 then begin
         let old = node.leaf_body in
         node.leaf_body <- -1;
         let ox, oy, oz = pos old in
         let o = octant node ox oy oz in
         let child =
           match node.children.(o) with
           | Some c -> c
           | None ->
               let c = child_cell next_id node o in
               node.children.(o) <- Some c;
               c
         in
         insert child old ox oy oz (depth + 1)
       end);
      if depth >= 40 then
        (* pathological coincident bodies: keep as a degenerate leaf list by
           folding into the summary only *)
        ()
      else begin
        let o = octant node x y z in
        let child =
          match node.children.(o) with
          | Some c -> c
          | None ->
              let c = child_cell next_id node o in
              node.children.(o) <- Some c;
              c
        in
        insert child b x y z (depth + 1)
      end
    end
  in
  for b = 0 to n - 1 do
    let x, y, z = pos b in
    insert root b x y z 0
  done;
  root, !next_id

(* Fill node summaries bottom-up from body positions/masses. *)
let rec summarize node ~pos ~mass =
  if node.leaf_body >= 0 then begin
    let x, y, z = pos node.leaf_body in
    let m = mass node.leaf_body in
    node.mass <- m;
    node.mx <- x;
    node.my <- y;
    node.mz <- z
  end
  else begin
    let m = ref 0.0 and sx = ref 0.0 and sy = ref 0.0 and sz = ref 0.0 in
    Array.iter
      (function
        | None -> ()
        | Some c ->
            summarize c ~pos ~mass;
            m := !m +. c.mass;
            sx := !sx +. (c.mass *. c.mx);
            sy := !sy +. (c.mass *. c.my);
            sz := !sz +. (c.mass *. c.mz))
      node.children;
    node.mass <- !m;
    if !m > 0.0 then begin
      node.mx <- !sx /. !m;
      node.my <- !sy /. !m;
      node.mz <- !sz /. !m
    end
  end

(* Force on body [b] at (x,y,z): [summary node] reads a node's (mass,cm)
   through the machine (or host) and [leaf bi] a body's (mass,pos); [step]
   charges traversal cost. *)
let force_on ~theta ~summary ~leaf ~step ~b ~x ~y ~z root =
  let ax = ref 0.0 and ay = ref 0.0 and az = ref 0.0 in
  let add m dx dy dz =
    let d2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. softening in
    let d = sqrt d2 in
    let f = m /. (d2 *. d) in
    ax := !ax +. (f *. dx);
    ay := !ay +. (f *. dy);
    az := !az +. (f *. dz)
  in
  let rec visit node =
    if node.count = 0 then ()
    else if node.leaf_body >= 0 then begin
      if node.leaf_body <> b then begin
        let m, bx, by, bz = leaf node.leaf_body in
        add m (bx -. x) (by -. y) (bz -. z)
      end
    end
    else begin
      step ();
      let m, mx, my, mz = summary node in
      let dx = mx -. x and dy = my -. y and dz = mz -. z in
      let d = sqrt ((dx *. dx) +. (dy *. dy) +. (dz *. dz)) +. 1e-12 in
      if 2.0 *. node.half /. d < theta then add m dx dy dz
      else
        Array.iter (function None -> () | Some c -> visit c) node.children
    end
  in
  visit root;
  !ax, !ay, !az

let initial_body cfg b =
  let prng = Prng.create ~seed:(cfg.seed lxor (b * 40503)) in
  let x = Prng.float prng 1.0
  and y = Prng.float prng 1.0
  and z = Prng.float prng 1.0 in
  let m = 0.5 +. Prng.float prng 1.0 in
  x, y, z, m

let wrap v = v -. floor v

(* One full simulation on host arrays: the oracle. *)
let oracle cfg =
  let n = cfg.bodies in
  let x = Array.make n 0.0 and y = Array.make n 0.0 and z = Array.make n 0.0 in
  let vx = Array.make n 0.0 and vy = Array.make n 0.0 and vz = Array.make n 0.0 in
  let m = Array.make n 0.0 in
  for b = 0 to n - 1 do
    let bx, by, bz, bm = initial_body cfg b in
    x.(b) <- bx;
    y.(b) <- by;
    z.(b) <- bz;
    m.(b) <- bm
  done;
  for _it = 1 to cfg.iters do
    let pos b = x.(b), y.(b), z.(b) in
    let root, _ = build_tree ~n ~pos in
    summarize root ~pos ~mass:(fun b -> m.(b));
    let ax = Array.make n 0.0 and ay = Array.make n 0.0 and az = Array.make n 0.0 in
    for b = 0 to n - 1 do
      let fx, fy, fz =
        force_on ~theta:cfg.theta
          ~summary:(fun node -> node.mass, node.mx, node.my, node.mz)
          ~leaf:(fun bi -> m.(bi), x.(bi), y.(bi), z.(bi))
          ~step:(fun () -> ())
          ~b ~x:x.(b) ~y:y.(b) ~z:z.(b) root
      in
      ax.(b) <- fx;
      ay.(b) <- fy;
      az.(b) <- fz
    done;
    for b = 0 to n - 1 do
      vx.(b) <- vx.(b) +. (ax.(b) *. cfg.dt);
      vy.(b) <- vy.(b) +. (ay.(b) *. cfg.dt);
      vz.(b) <- vz.(b) +. (az.(b) *. cfg.dt);
      x.(b) <- wrap (x.(b) +. (vx.(b) *. cfg.dt));
      y.(b) <- wrap (y.(b) +. (vy.(b) *. cfg.dt));
      z.(b) <- wrap (z.(b) +. (vz.(b) *. cfg.dt))
    done
  done;
  x, y, z, vx, vy, vz

(* Body record layout in shared memory: x y z vx vy vz mass pad (8 words,
   two 32-byte blocks). *)
let body_words = 8

let make cfg ~nprocs =
  let n = cfg.bodies in
  let per_proc = (n + nprocs - 1) / nprocs in
  let ex, ey, ez, evx, evy, evz = oracle cfg in
  let body_base = Array.make nprocs 0 in
  let node_base = ref 0 in
  let max_nodes = (4 * n) + 64 in
  let baddr b field =
    body_base.(b / per_proc)
    + ((((b mod per_proc) * body_words) + field) * Env.word)
  in
  let naddr id field = !node_base + (((id * 4) + field) * Env.word) in
  (* tree topology of the current iteration, rebuilt by proc 0 *)
  let tree_root = ref None in
  let body (env : Env.t) =
    let p = env.Env.proc in
    if p = 0 then begin
      for q = 0 to nprocs - 1 do
        body_base.(q) <- env.Env.alloc ~home:q (per_proc * body_words * Env.word)
      done;
      node_base := env.Env.alloc ~home:0 (max_nodes * 4 * Env.word)
    end;
    env.Env.barrier ();
    let b_lo = p * per_proc in
    let b_hi = min (b_lo + per_proc) n - 1 in
    for b = b_lo to b_hi do
      let x, y, z, m = initial_body cfg b in
      env.Env.write (baddr b 0) x;
      env.Env.write (baddr b 1) y;
      env.Env.write (baddr b 2) z;
      env.Env.write (baddr b 3) 0.0;
      env.Env.write (baddr b 4) 0.0;
      env.Env.write (baddr b 5) 0.0;
      env.Env.write (baddr b 6) m
    done;
    env.Env.barrier ();
    for _it = 1 to cfg.iters do
      (* phase 1: proc 0 rebuilds the tree and publishes node summaries *)
      if p = 0 then begin
        let pos b =
          env.Env.read (baddr b 0), env.Env.read (baddr b 1),
          env.Env.read (baddr b 2)
        in
        let root, nnodes = build_tree ~n ~pos in
        if nnodes > max_nodes then failwith "barnes: tree node overflow";
        env.Env.work (10 * n);
        summarize root ~pos ~mass:(fun b -> env.Env.read (baddr b 6));
        let rec publish node =
          env.Env.write (naddr node.id 0) node.mass;
          env.Env.write (naddr node.id 1) node.mx;
          env.Env.write (naddr node.id 2) node.my;
          env.Env.write (naddr node.id 3) node.mz;
          Array.iter (function None -> () | Some c -> publish c) node.children
        in
        publish root;
        tree_root := Some root
      end;
      env.Env.barrier ();
      (* phase 2: forces on owned bodies, reading shared tree + bodies *)
      let root = Option.get !tree_root in
      let acc = Array.make (max 1 (b_hi - b_lo + 1)) (0.0, 0.0, 0.0) in
      for b = b_lo to b_hi do
        let x = env.Env.read (baddr b 0)
        and y = env.Env.read (baddr b 1)
        and z = env.Env.read (baddr b 2) in
        let f =
          force_on ~theta:cfg.theta
            ~summary:(fun node ->
              ( env.Env.read (naddr node.id 0),
                env.Env.read (naddr node.id 1),
                env.Env.read (naddr node.id 2),
                env.Env.read (naddr node.id 3) ))
            ~leaf:(fun bi ->
              ( env.Env.read (baddr bi 6),
                env.Env.read (baddr bi 0),
                env.Env.read (baddr bi 1),
                env.Env.read (baddr bi 2) ))
            ~step:(fun () -> env.Env.work 12)
            ~b ~x ~y ~z root
        in
        acc.(b - b_lo) <- f
      done;
      env.Env.barrier ();
      (* phase 3: integrate owned bodies *)
      for b = b_lo to b_hi do
        let fx, fy, fz = acc.(b - b_lo) in
        let upd vfield ffield a =
          let v = env.Env.read (baddr b vfield) +. (a *. cfg.dt) in
          env.Env.write (baddr b vfield) v;
          let x = wrap (env.Env.read (baddr b ffield) +. (v *. cfg.dt)) in
          env.Env.write (baddr b ffield) x
        in
        upd 3 0 fx;
        upd 4 1 fy;
        upd 5 2 fz;
        env.Env.work 12
      done;
      env.Env.barrier ()
    done
  in
  let verify (env : Env.t) =
    let p = env.Env.proc in
    let b_lo = p * per_proc in
    let b_hi = min (b_lo + per_proc) n - 1 in
    let check label b got want =
      if abs_float (got -. want) > 1e-9 *. (1.0 +. abs_float want) then
        failwith
          (Printf.sprintf "barnes %s[%d] = %.15g, oracle %.15g" label b got
             want)
    in
    for b = b_lo to b_hi do
      check "x" b (env.Env.read (baddr b 0)) ex.(b);
      check "y" b (env.Env.read (baddr b 1)) ey.(b);
      check "z" b (env.Env.read (baddr b 2)) ez.(b);
      check "vx" b (env.Env.read (baddr b 3)) evx.(b);
      check "vy" b (env.Env.read (baddr b 4)) evy.(b);
      check "vz" b (env.Env.read (baddr b 5)) evz.(b)
    done
  in
  { body; verify }
