module Prng = Tt_util.Prng

type config = { molecules : int; steps : int; cells_per_dim : int; seed : int }

let small = { molecules = 10_000; steps = 4; cells_per_dim = 12; seed = 3 }

let large = { molecules = 50_000; steps = 4; cells_per_dim = 20; seed = 3 }

let scale cfg factor =
  { cfg with
    molecules = max 128 (int_of_float (float_of_int cfg.molecules *. factor)) }

type instance = { body : Env.t -> unit; verify : Env.t -> unit }

(* Deterministic trajectory: molecule m's cell at a given step depends only
   on (seed, m, step), so any execution order yields the same per-cell
   population counts. *)
let cell_at cfg ~molecule ~step =
  let mix = Prng.create ~seed:(cfg.seed lxor (molecule * 2654435761)) in
  let x0 = Prng.int mix cfg.cells_per_dim
  and y0 = Prng.int mix cfg.cells_per_dim
  and z0 = Prng.int mix cfg.cells_per_dim
  and dx = 1 + Prng.int mix 3
  and dy = 1 + Prng.int mix 3
  and dz = 1 + Prng.int mix 3 in
  let wrap v = ((v mod cfg.cells_per_dim) + cfg.cells_per_dim) mod cfg.cells_per_dim in
  let x = wrap (x0 + (dx * step))
  and y = wrap (y0 + (dy * step))
  and z = wrap (z0 + (dz * step)) in
  ((x * cfg.cells_per_dim) + y) * cfg.cells_per_dim + z

(* Oracle: per-cell visit counts over the whole run. *)
let oracle cfg =
  let ncells = cfg.cells_per_dim * cfg.cells_per_dim * cfg.cells_per_dim in
  let counts = Array.make ncells 0 in
  for m = 0 to cfg.molecules - 1 do
    for step = 1 to cfg.steps do
      let c = cell_at cfg ~molecule:m ~step in
      counts.(c) <- counts.(c) + 1
    done
  done;
  counts

let make cfg ~nprocs =
  let ncells = cfg.cells_per_dim * cfg.cells_per_dim * cfg.cells_per_dim in
  let per_proc = (cfg.molecules + nprocs - 1) / nprocs in
  let expect = oracle cfg in
  let cells_base = ref 0 in
  (* lock striping: one lock per 64 cells *)
  let lock_of c = c / 64 in
  let cell_addr c = !cells_base + (c * Env.word) in
  let body (env : Env.t) =
    let p = env.Env.proc in
    if p = 0 then begin
      (* space cells spread round-robin across nodes (pages interleave) *)
      cells_base := env.Env.alloc (ncells * Env.word);
      for c = 0 to ncells - 1 do
        env.Env.write_int (cell_addr c) 0
      done
    end;
    env.Env.barrier ();
    let m_lo = p * per_proc in
    let m_hi = min (m_lo + per_proc) cfg.molecules - 1 in
    for step = 1 to cfg.steps do
      for m = m_lo to m_hi do
        (* advance the molecule: local position/velocity arithmetic *)
        env.Env.work 20;
        let c = cell_at cfg ~molecule:m ~step in
        env.Env.lock (lock_of c);
        env.Env.write_int (cell_addr c) (env.Env.read_int (cell_addr c) + 1);
        env.Env.unlock (lock_of c)
      done;
      env.Env.barrier ()
    done
  in
  let verify (env : Env.t) =
    if env.Env.proc = 0 then
      for c = 0 to ncells - 1 do
        let got = env.Env.read_int (cell_addr c) in
        if got <> expect.(c) then
          failwith
            (Printf.sprintf "mp3d cell %d count = %d, oracle %d" c got
               expect.(c))
      done
  in
  { body; verify }
