(** Application execution environment (SPMD).

    Benchmarks are single-program-multiple-data OCaml functions: the same
    body runs once per simulated processor, parameterized by this record.
    The record is the only way an application touches the machine, so the
    identical program runs unmodified on DirNNB and on Typhoon/Stache —
    the paper's "existing shared-memory programs only need to be linked with
    the Stache library".

    Host-level values (OCaml refs shared between the per-processor closures)
    may carry addresses and sizes computed by processor 0 during setup, but
    all *data* the benchmark computes on must live in simulated shared
    memory via [read]/[write]. *)

type t = {
  proc : int;
  nprocs : int;
  (* shared-memory accesses (64-bit values) *)
  read : int -> float;
  write : int -> float -> unit;
  read_int : int -> int;
  write_int : int -> int -> unit;
  (* local computation: charge [n] cycles *)
  work : int -> unit;
  (* nonbinding software prefetch hint; no-op on machines without one *)
  prefetch : int -> unit;
  (* synchronization *)
  barrier : unit -> unit;
  lock : int -> unit;  (** acquire lock [i] from the global pool *)
  unlock : int -> unit;
  (* shared-heap allocation; call from processor 0 during setup phases *)
  alloc : ?home:int -> int -> int;
  alloc_kind : string -> ?home:int -> int -> int;
      (** allocate memory managed by a named custom protocol (e.g. EM3D's
          update-protocol pages); falls back to [alloc] when the machine has
          no protocol of that name *)
  (* protocol-specific entry points (e.g. the EM3D update protocol's
     end-of-step flush); no-op when the machine provides none *)
  hook : string -> unit;
  has_hook : string -> bool;
}

val word : int
(** Bytes per shared value (8). *)
