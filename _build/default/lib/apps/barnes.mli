(** Barnes: gravitational N-body simulation with the Barnes-Hut O(N log N)
    algorithm (SPLASH).

    Bodies are block-distributed; each iteration an octree is rebuilt over
    all body positions and every processor computes forces on its own bodies
    by traversing the tree, reading node summaries (mass, centre of mass)
    and leaf bodies from shared memory.  The tree data is read-mostly and
    very widely shared — the workload that drives directory sharer-set
    overflow (the LimitLESS-style pointer→bit-vector fallback) and rewards a
    large stache.  Table 3: 2048 (small) / 8192 (large) bodies. *)

type config = {
  bodies : int;
  iters : int;
  theta : float;  (** opening criterion *)
  dt : float;
  seed : int;
}

val small : config

val large : config

val scale : config -> float -> config

type instance = { body : Env.t -> unit; verify : Env.t -> unit }

val make : config -> nprocs:int -> instance
