(** MP3D (SPLASH): rarefied hypersonic flow in a wind tunnel.

    The sharing pattern that matters for coherence studies: each processor
    owns a set of molecules (local data) that fly through a shared 3-D grid
    of space cells, and every move scatters updates into the cells —
    fine-grain, migratory, poorly-cached writes that made MP3D a notorious
    coherence stress test.  We keep exactly that structure: deterministic
    per-molecule trajectories (no inter-molecule collisions, which MP3D
    resolves stochastically anyway) and per-cell population/momentum
    accumulators updated under a cell-region lock.  Table 3: 10,000 (small)
    and 50,000 (large) molecules. *)

type config = {
  molecules : int;
  steps : int;
  cells_per_dim : int;  (** the space array is [cells_per_dim³] cells *)
  seed : int;
}

val small : config

val large : config

val scale : config -> float -> config

type instance = { body : Env.t -> unit; verify : Env.t -> unit }

val make : config -> nprocs:int -> instance
