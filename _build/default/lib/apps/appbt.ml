type config = { n : int; iters : int; seed : int }

let small = { n = 12; iters = 3; seed = 9 }

let large = { n = 24; iters = 3; seed = 9 }

let scale cfg factor =
  { cfg with
    n = max 6 (int_of_float (float_of_int cfg.n *. (factor ** (1.0 /. 3.0)))) }

type instance = { body : Env.t -> unit; verify : Env.t -> unit }

let comps = 5

(* deterministic sweep coefficients per component *)
let coef_a k = 0.11 +. (0.01 *. float_of_int k)

let coef_d k = 1.9 +. (0.03 *. float_of_int k)

let coef_c k = 0.07 +. (0.01 *. float_of_int k)

let initial ~n x y z k =
  let f v = float_of_int v /. float_of_int n in
  (1.0 +. f x) *. (1.3 +. f y) *. (0.8 +. f z) +. (0.1 *. float_of_int k)

(* The per-iteration math, shared verbatim by the SPMD body and the oracle
   through the [get]/[set] accessors (u = state, r = rhs scratch).
   Sequence: rhs stencil; x-sweep; y-sweep; z-sweep; update. *)
module Kernel = struct
  let rhs ~n ~get_u ~set_r ~range_z ~work =
    let lo, hi = range_z in
    for z = lo to hi do
      for y = 0 to n - 1 do
        for x = 0 to n - 1 do
          for k = 0 to comps - 1 do
            let u o_x o_y o_z =
              let cx = (x + o_x + n) mod n
              and cy = (y + o_y + n) mod n
              and cz = (z + o_z + n) mod n in
              get_u cx cy cz k
            in
            work 10;
            let v =
              (0.4 *. u 0 0 0)
              +. (0.1 *. (u 1 0 0 +. u (-1) 0 0))
              +. (0.1 *. (u 0 1 0 +. u 0 (-1) 0))
              +. (0.1 *. (u 0 0 1 +. u 0 0 (-1)))
            in
            set_r x y z k v
          done
        done
      done
    done

  (* forward/backward substitution along one axis; [cell i] maps a line
     coordinate to (x,y,z) *)
  let line_solve ~n ~get_r ~set_r ~cell ~work =
    for k = 0 to comps - 1 do
      let a = coef_a k and d = coef_d k and c = coef_c k in
      for i = 1 to n - 1 do
        let x, y, z = cell i and px, py, pz = cell (i - 1) in
        work 25 (* 5x5 block multiply-subtract *);
        set_r x y z k ((get_r x y z k -. (a *. get_r px py pz k)) /. d)
      done;
      for i = n - 2 downto 0 do
        let x, y, z = cell i and sx, sy, sz = cell (i + 1) in
        work 25;
        set_r x y z k (get_r x y z k -. (c *. get_r sx sy sz k))
      done
    done

  let update ~n ~get_u ~set_u ~get_r ~range_z ~work =
    let lo, hi = range_z in
    for z = lo to hi do
      for y = 0 to n - 1 do
        for x = 0 to n - 1 do
          for k = 0 to comps - 1 do
            work 2;
            set_u x y z k (get_u x y z k +. (0.5 *. get_r x y z k))
          done
        done
      done
    done
end

let oracle cfg ~nprocs =
  let n = cfg.n in
  let size = n * n * n * comps in
  let u = Array.make size 0.0 and r = Array.make size 0.0 in
  let idx x y z k = ((((z * n) + y) * n) + x) * comps + k in
  for z = 0 to n - 1 do
    for y = 0 to n - 1 do
      for x = 0 to n - 1 do
        for k = 0 to comps - 1 do
          u.(idx x y z k) <- initial ~n x y z k
        done
      done
    done
  done;
  let get_u x y z k = u.(idx x y z k) and set_u x y z k v = u.(idx x y z k) <- v in
  let get_r x y z k = r.(idx x y z k) and set_r x y z k v = r.(idx x y z k) <- v in
  let work _ = () in
  ignore nprocs;
  for _it = 1 to cfg.iters do
    Kernel.rhs ~n ~get_u ~set_r ~range_z:(0, n - 1) ~work;
    for z = 0 to n - 1 do
      for y = 0 to n - 1 do
        Kernel.line_solve ~n ~get_r ~set_r ~cell:(fun i -> i, y, z) ~work
      done
    done;
    for z = 0 to n - 1 do
      for x = 0 to n - 1 do
        Kernel.line_solve ~n ~get_r ~set_r ~cell:(fun i -> x, i, z) ~work
      done
    done;
    for y = 0 to n - 1 do
      for x = 0 to n - 1 do
        Kernel.line_solve ~n ~get_r ~set_r ~cell:(fun i -> x, y, i) ~work
      done
    done;
    Kernel.update ~n ~get_u ~set_u ~get_r ~range_z:(0, n - 1) ~work
  done;
  u

let make cfg ~nprocs =
  let n = cfg.n in
  let slabs = (n + nprocs - 1) / nprocs in
  let expect = oracle cfg ~nprocs in
  (* u and rhs slabs homed per owner *)
  let u_base = Array.make nprocs 0 and r_base = Array.make nprocs 0 in
  let addr base x y z k =
    base.(z / slabs)
    + ((((((z mod slabs) * n) + y) * n) + x) * comps + k) * Env.word
  in
  let slab_range p =
    let lo = min (p * slabs) n in
    let hi = min (lo + slabs) n - 1 in
    lo, hi
  in
  let body (env : Env.t) =
    let p = env.Env.proc in
    let z_lo, z_hi = slab_range p in
    if p = 0 then
      for q = 0 to nprocs - 1 do
        let lo, hi = slab_range q in
        let cells = max 0 (hi - lo + 1) * n * n * comps in
        if cells > 0 then begin
          u_base.(q) <- env.Env.alloc ~home:q (cells * Env.word);
          r_base.(q) <- env.Env.alloc ~home:q (cells * Env.word)
        end
      done;
    env.Env.barrier ();
    for z = z_lo to z_hi do
      for y = 0 to n - 1 do
        for x = 0 to n - 1 do
          for k = 0 to comps - 1 do
            env.Env.write (addr u_base x y z k) (initial ~n x y z k)
          done
        done
      done
    done;
    env.Env.barrier ();
    let get_u x y z k = env.Env.read (addr u_base x y z k) in
    let set_u x y z k v = env.Env.write (addr u_base x y z k) v in
    let get_r x y z k = env.Env.read (addr r_base x y z k) in
    let set_r x y z k v = env.Env.write (addr r_base x y z k) v in
    let work = env.Env.work in
    for _it = 1 to cfg.iters do
      (* rhs over the owned slab; neighbour reads cross slab boundaries *)
      if z_lo <= z_hi then
        Kernel.rhs ~n ~get_u ~set_r ~range_z:(z_lo, z_hi) ~work;
      env.Env.barrier ();
      (* x and y line solves are slab-local *)
      if z_lo <= z_hi then begin
        for z = z_lo to z_hi do
          for y = 0 to n - 1 do
            Kernel.line_solve ~n ~get_r ~set_r ~cell:(fun i -> i, y, z) ~work
          done
        done;
        for z = z_lo to z_hi do
          for x = 0 to n - 1 do
            Kernel.line_solve ~n ~get_r ~set_r ~cell:(fun i -> x, i, z) ~work
          done
        done
      end;
      env.Env.barrier ();
      (* z lines pipeline through the slabs: forward wave down, then
         backward wave up, one stage barrier per processor *)
      for stage = 0 to nprocs - 1 do
        if p = stage && z_lo <= z_hi then begin
          for y = 0 to n - 1 do
            for x = 0 to n - 1 do
              for k = 0 to comps - 1 do
                let a = coef_a k and d = coef_d k in
                let z_start = if z_lo = 0 then 1 else z_lo in
                for z = z_start to z_hi do
                  work 25;
                  set_r x y z k
                    ((get_r x y z k -. (a *. get_r x y (z - 1) k)) /. d)
                done
              done
            done
          done
        end;
        env.Env.barrier ()
      done;
      for stage = nprocs - 1 downto 0 do
        if p = stage && z_lo <= z_hi then begin
          for y = 0 to n - 1 do
            for x = 0 to n - 1 do
              for k = 0 to comps - 1 do
                let c = coef_c k in
                let z_end = if z_hi = n - 1 then n - 2 else z_hi in
                for z = z_end downto z_lo do
                  work 25;
                  set_r x y z k (get_r x y z k -. (c *. get_r x y (z + 1) k))
                done
              done
            done
          done
        end;
        env.Env.barrier ()
      done;
      if z_lo <= z_hi then
        Kernel.update ~n ~get_u ~set_u ~get_r ~range_z:(z_lo, z_hi) ~work;
      env.Env.barrier ()
    done
  in
  let verify (env : Env.t) =
    let p = env.Env.proc in
    let z_lo, z_hi = slab_range p in
    let idx x y z k = ((((z * n) + y) * n) + x) * comps + k in
    for z = z_lo to z_hi do
      for y = 0 to n - 1 do
        for x = 0 to n - 1 do
          for k = 0 to comps - 1 do
            let got = env.Env.read (addr u_base x y z k) in
            let want = expect.(idx x y z k) in
            if abs_float (got -. want) > 1e-9 *. (1.0 +. abs_float want) then
              failwith
                (Printf.sprintf "appbt u[%d,%d,%d,%d] = %.15g, oracle %.15g" x
                   y z k got want)
          done
        done
      done
    done
  in
  { body; verify }
