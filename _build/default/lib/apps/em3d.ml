module Prng = Tt_util.Prng

type config = {
  total_nodes : int;
  degree : int;
  pct_remote : int;
  iters : int;
  seed : int;
  software_prefetch : bool;
}

let small =
  { total_nodes = 64_000; degree = 10; pct_remote = 10; iters = 3; seed = 7;
    software_prefetch = false }

let large =
  { total_nodes = 192_000; degree = 15; pct_remote = 10; iters = 3; seed = 7;
    software_prefetch = false }

let scale cfg factor =
  let n = max 64 (int_of_float (float_of_int cfg.total_nodes *. factor)) in
  { cfg with total_nodes = n }

type instance = {
  body : Env.t -> unit;
  verify : Env.t -> unit;
  edges : int;
}

(* One side of the bipartite graph: for each global node, the global indices
   of its neighbours on the other side and the edge weights. *)
type side = { targets : int array array; weights : float array array }

let build_side prng ~n_side ~degree ~pct_remote ~nprocs ~per_proc =
  let p_remote = float_of_int pct_remote /. 100.0 in
  let targets =
    Array.init n_side (fun i ->
        let owner = i / per_proc in
        Array.init degree (fun _ ->
            if nprocs > 1 && Prng.chance prng p_remote then begin
              (* a neighbour owned by some other processor *)
              let q =
                let q = Prng.int prng (nprocs - 1) in
                if q >= owner then q + 1 else q
              in
              (q * per_proc) + Prng.int prng per_proc
            end
            else (owner * per_proc) + Prng.int prng per_proc))
  in
  let weights =
    Array.init n_side (fun _ ->
        Array.init degree (fun _ -> 0.5 +. Prng.float prng 1.0))
  in
  { targets; weights }

(* The per-phase kernel both the SPMD body and the oracle use: the
   value-update rule of Program 1. *)
let updated_value ~old_value ~neighbour_values ~weights =
  let v = ref old_value in
  for k = 0 to Array.length weights - 1 do
    v := !v -. (neighbour_values k *. weights.(k))
  done;
  !v

let initial_e i = 1.0 +. (float_of_int (i mod 97) /. 97.0)

let initial_h j = 2.0 -. (float_of_int (j mod 89) /. 89.0)

(* Sequential oracle: plain arrays, same phase order as the parallel code. *)
let oracle cfg ~e_side ~h_side ~n_side ~rounds =
  let e = Array.init n_side initial_e and h = Array.init n_side initial_h in
  ignore cfg;
  for _round = 1 to rounds do
    for i = 0 to n_side - 1 do
      e.(i) <-
        updated_value ~old_value:e.(i)
          ~neighbour_values:(fun k -> h.(e_side.targets.(i).(k)))
          ~weights:e_side.weights.(i)
    done;
    for j = 0 to n_side - 1 do
      h.(j) <-
        updated_value ~old_value:h.(j)
          ~neighbour_values:(fun k -> e.(h_side.targets.(j).(k)))
          ~weights:h_side.weights.(j)
    done
  done;
  e, h

let make cfg ~nprocs =
  let n_side_raw = cfg.total_nodes / 2 in
  let per_proc = max 1 ((n_side_raw + nprocs - 1) / nprocs) in
  let n_side = per_proc * nprocs in
  let prng = Prng.create ~seed:cfg.seed in
  let e_side =
    build_side prng ~n_side ~degree:cfg.degree ~pct_remote:cfg.pct_remote
      ~nprocs ~per_proc
  in
  let h_side =
    build_side prng ~n_side ~degree:cfg.degree ~pct_remote:cfg.pct_remote
      ~nprocs ~per_proc
  in
  let rounds = cfg.iters + 1 (* one warm-up + steady iterations *) in
  let e_expect, h_expect = oracle cfg ~e_side ~h_side ~n_side ~rounds in
  (* chunk base addresses, published by proc 0 during setup *)
  let e_base = Array.make nprocs 0
  and h_base = Array.make nprocs 0
  and we_base = Array.make nprocs 0
  and wh_base = Array.make nprocs 0 in
  let chunk_bytes = per_proc * Env.word in
  let weight_bytes = per_proc * cfg.degree * Env.word in
  let addr base i = base.(i / per_proc) + ((i mod per_proc) * Env.word) in
  let weight_addr base ~owner ~local_i k =
    base.(owner) + (((local_i * cfg.degree) + k) * Env.word)
  in
  let body (env : Env.t) =
    let p = env.Env.proc in
    let custom = env.Env.has_hook "em3d.sync:e" in
    if p = 0 then
      for q = 0 to nprocs - 1 do
        e_base.(q) <- env.Env.alloc_kind "em3d:e" ~home:q chunk_bytes;
        h_base.(q) <- env.Env.alloc_kind "em3d:h" ~home:q chunk_bytes;
        we_base.(q) <- env.Env.alloc ~home:q weight_bytes;
        wh_base.(q) <- env.Env.alloc ~home:q weight_bytes
      done;
    env.Env.barrier ();
    (* owners initialize their values and weights *)
    let lo = p * per_proc in
    for li = 0 to per_proc - 1 do
      let i = lo + li in
      env.Env.write (addr e_base i) (initial_e i);
      env.Env.write (addr h_base i) (initial_h i);
      for k = 0 to cfg.degree - 1 do
        env.Env.write
          (weight_addr we_base ~owner:p ~local_i:li k)
          e_side.weights.(i).(k);
        env.Env.write
          (weight_addr wh_base ~owner:p ~local_i:li k)
          h_side.weights.(i).(k)
      done
    done;
    env.Env.barrier ();
    let compute (side : side) ~value_base ~neigh_base ~w_base =
      for li = 0 to per_proc - 1 do
        let i = lo + li in
        (* hide fetch latency for the NEXT node's neighbours (§4) *)
        if cfg.software_prefetch && li + 1 < per_proc then begin
          let next = i + 1 in
          Array.iter
            (fun target -> env.Env.prefetch (addr neigh_base target))
            side.targets.(next)
        end;
        let a = addr value_base i in
        let old_value = env.Env.read a in
        let v =
          updated_value ~old_value
            ~neighbour_values:(fun k ->
              env.Env.work 2 (* pointer chase through the adjacency list *);
              env.Env.read (addr neigh_base side.targets.(i).(k))
              *. 1.0)
            ~weights:(Array.init cfg.degree (fun k ->
                env.Env.read (weight_addr w_base ~owner:p ~local_i:li k)))
        in
        env.Env.work (4 * cfg.degree) (* multiply-accumulate flops *);
        env.Env.write a v
      done
    in
    let compute_e () =
      compute e_side ~value_base:e_base ~neigh_base:h_base ~w_base:we_base
    in
    let compute_h () =
      compute h_side ~value_base:h_base ~neigh_base:e_base ~w_base:wh_base
    in
    (* warm-up iteration under full barriers: establishes every stached
       copy, so the update protocol's expectation counts are stable *)
    compute_e ();
    env.Env.barrier ();
    compute_h ();
    env.Env.barrier ();
    if custom then env.Env.hook "em3d.sync:h";
    (* steady state: the measured iterations *)
    for _it = 1 to cfg.iters do
      compute_e ();
      if custom then env.Env.hook "em3d.sync:e" else env.Env.barrier ();
      compute_h ();
      if custom then env.Env.hook "em3d.sync:h" else env.Env.barrier ()
    done;
    env.Env.barrier ()
  in
  let verify (env : Env.t) =
    let p = env.Env.proc in
    let lo = p * per_proc in
    for li = 0 to per_proc - 1 do
      let i = lo + li in
      let check label got want =
        if abs_float (got -. want) > 1e-9 *. (1.0 +. abs_float want) then
          failwith
            (Printf.sprintf "em3d %s[%d] = %.15g, oracle %.15g" label i got
               want)
      in
      check "e" (env.Env.read (addr e_base i)) e_expect.(i);
      check "h" (env.Env.read (addr h_base i)) h_expect.(i)
    done
  in
  { body; verify; edges = 2 * n_side * cfg.degree }
