type config = { n : int; iters : int; seed : int }

let small = { n = 98; iters = 4; seed = 5 }

let large = { n = 386; iters = 4; seed = 5 }

let scale cfg factor =
  { cfg with n = max 16 (int_of_float (float_of_int cfg.n *. sqrt factor)) }

type instance = { body : Env.t -> unit; verify : Env.t -> unit }

let initial ~n r c =
  (* smooth deterministic initial field with a few bumps *)
  let x = float_of_int c /. float_of_int n
  and y = float_of_int r /. float_of_int n in
  sin (6.0 *. x) +. cos (4.0 *. y) +. (x *. y)

(* Jacobi sweep on host arrays: the sequential oracle. *)
let oracle cfg =
  let n = cfg.n in
  let cur = Array.init (n * n) (fun i -> initial ~n (i / n) (i mod n)) in
  let nxt = Array.make (n * n) 0.0 in
  let a = ref cur and b = ref nxt in
  for _it = 1 to cfg.iters do
    let src = !a and dst = !b in
    for r = 0 to n - 1 do
      for c = 0 to n - 1 do
        let v =
          if r = 0 || c = 0 || r = n - 1 || c = n - 1 then src.((r * n) + c)
          else
            0.25
            *. (src.(((r - 1) * n) + c)
               +. src.(((r + 1) * n) + c)
               +. src.((r * n) + c - 1)
               +. src.((r * n) + c + 1))
        in
        dst.((r * n) + c) <- v
      done
    done;
    let t = !a in
    a := !b;
    b := t
  done;
  !a

let make cfg ~nprocs =
  let n = cfg.n in
  let rows_per = (n + nprocs - 1) / nprocs in
  let expect = oracle cfg in
  (* Each generation of the grid is split into row bands, band q homed on
     processor q.  [bands.(gen).(q)] is the band's base address. *)
  let bands = Array.make_matrix 2 nprocs 0 in
  let addr gen r c =
    bands.(gen).(r / rows_per) + ((((r mod rows_per) * n) + c) * Env.word)
  in
  let band_range p =
    let lo = min (p * rows_per) n in
    let hi = min (lo + rows_per) n - 1 in
    lo, hi
  in
  let body (env : Env.t) =
    let p = env.Env.proc in
    let r_lo, r_hi = band_range p in
    if p = 0 then
      for gen = 0 to 1 do
        for q = 0 to nprocs - 1 do
          let lo, hi = band_range q in
          let rows = max 0 (hi - lo + 1) in
          if rows > 0 then
            bands.(gen).(q) <- env.Env.alloc ~home:q (rows * n * Env.word)
        done
      done;
    env.Env.barrier ();
    for r = r_lo to r_hi do
      for c = 0 to n - 1 do
        env.Env.write (addr 0 r c) (initial ~n r c);
        env.Env.write (addr 1 r c) 0.0
      done
    done;
    env.Env.barrier ();
    for it = 1 to cfg.iters do
      let src = (it - 1) mod 2 and dst = it mod 2 in
      for r = r_lo to r_hi do
        for c = 0 to n - 1 do
          let v =
            if r = 0 || c = 0 || r = n - 1 || c = n - 1 then
              env.Env.read (addr src r c)
            else begin
              env.Env.work 6;
              0.25
              *. (env.Env.read (addr src (r - 1) c)
                 +. env.Env.read (addr src (r + 1) c)
                 +. env.Env.read (addr src r (c - 1))
                 +. env.Env.read (addr src r (c + 1)))
            end
          in
          env.Env.write (addr dst r c) v
        done
      done;
      env.Env.barrier ()
    done
  in
  let verify (env : Env.t) =
    let p = env.Env.proc in
    let r_lo, r_hi = band_range p in
    let gen = cfg.iters mod 2 in
    for r = r_lo to r_hi do
      for c = 0 to n - 1 do
        let got = env.Env.read (addr gen r c) in
        let want = expect.((r * n) + c) in
        if abs_float (got -. want) > 1e-9 *. (1.0 +. abs_float want) then
          failwith
            (Printf.sprintf "ocean[%d,%d] = %.15g, oracle %.15g" r c got want)
      done
    done
  in
  { body; verify }
