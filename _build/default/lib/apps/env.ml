type t = {
  proc : int;
  nprocs : int;
  read : int -> float;
  write : int -> float -> unit;
  read_int : int -> int;
  write_int : int -> int -> unit;
  work : int -> unit;
  prefetch : int -> unit;
  barrier : unit -> unit;
  lock : int -> unit;
  unlock : int -> unit;
  alloc : ?home:int -> int -> int;
  alloc_kind : string -> ?home:int -> int -> int;
  hook : string -> unit;
  has_hook : string -> bool;
}

let word = 8
