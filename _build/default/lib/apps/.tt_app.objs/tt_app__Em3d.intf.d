lib/apps/em3d.mli: Env
