lib/apps/barnes.ml: Array Env Option Printf Tt_util
