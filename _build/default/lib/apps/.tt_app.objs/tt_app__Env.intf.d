lib/apps/env.mli:
