lib/apps/em3d.ml: Array Env Printf Tt_util
