lib/apps/appbt.ml: Array Env Printf
