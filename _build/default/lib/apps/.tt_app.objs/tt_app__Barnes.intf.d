lib/apps/barnes.mli: Env
