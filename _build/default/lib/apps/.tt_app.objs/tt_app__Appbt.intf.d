lib/apps/appbt.mli: Env
