lib/apps/synth.ml: Array Env Printf Tt_util
