lib/apps/mp3d.ml: Array Env Printf Tt_util
