lib/apps/ocean.mli: Env
