lib/apps/mp3d.mli: Env
