lib/apps/synth.mli: Env
