lib/apps/env.ml:
