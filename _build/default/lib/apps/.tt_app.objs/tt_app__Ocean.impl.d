lib/apps/ocean.ml: Array Env Printf
