lib/net/fabric.ml: Array Message Printf Tt_sim Tt_util
