lib/net/message.mli: Bytes
