lib/net/message.ml: Array Bytes Printf
