lib/net/fabric.mli: Message Tt_sim Tt_util
