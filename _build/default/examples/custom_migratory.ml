(* Writing a coherence protocol from scratch against raw Tempest.

   Migratory data — objects that are read-and-then-written by one processor
   at a time (work queues, reduction cells) — is a worst case for an
   invalidation protocol: every visit costs a read miss *and* an upgrade.
   The ~100 lines of protocol below exploit the pattern: every fault fetches
   the block exclusively, so each migration is a single request/recall/data
   round.

   The same workload (counters visited round-robin by every processor) runs
   under transparent Stache and under the migratory protocol; the custom
   protocol should roughly halve the protocol transactions per visit.

     dune exec examples/custom_migratory.exe *)

module Engine = Tt_sim.Engine
module Thread = Tt_sim.Thread
module System = Tt_typhoon.System
module Stache = Tt_stache.Stache
module Addr = Tt_mem.Addr
module Tag = Tt_mem.Tag
module Message = Tt_net.Message
module Env = Tt_app.Env
module Machine = Tt_harness.Machine
module Run = Tt_harness.Run

(* ---------------- the migratory protocol ---------------- *)

let mode_mig_home = 8

let mode_mig_remote = 9

type mig = {
  sys : System.t;
  stache : Stache.t;  (* reused for its allocator/registry only *)
  owners : (int, int) Hashtbl.t;  (* block va -> current owner *)
  pending_req : (int, int Queue.t) Hashtbl.t;  (* home: waiting requesters *)
  pending_cpu : (int, Tempest.resumption) Hashtbl.t array;
  mig_pages : (int, unit) Hashtbl.t;
  mutable h_get : int;
  mutable h_recall : int;
  mutable h_data : int;
}

let queue_of t block =
  match Hashtbl.find_opt t.pending_req block with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace t.pending_req block q;
      q

(* home: grant the block to the next queued requester, recalling it first *)
let rec serve t (ep : Tempest.t) block =
  let q = queue_of t block in
  match Queue.peek_opt q with
  | None -> ()
  | Some requester -> (
      let owner =
        Option.value ~default:ep.Tempest.node (Hashtbl.find_opt t.owners block)
      in
      if owner = ep.Tempest.node then begin
        (* we hold it: hand it over *)
        ignore (Queue.pop q);
        let data = ep.Tempest.force_read_block ~vaddr:block in
        ep.Tempest.invalidate ~vaddr:block;
        Hashtbl.replace t.owners block requester;
        ep.Tempest.charge 6;
        ep.Tempest.send ~dst:requester ~vnet:Message.Response ~handler:t.h_data
          ~args:[| block |] ~data ();
        serve t ep block
      end
      else begin
        ep.Tempest.charge 4;
        ep.Tempest.send ~dst:owner ~vnet:Message.Request ~handler:t.h_recall
          ~args:[| block |] ()
      end)

let install sys stache =
  let t =
    { sys; stache; owners = Hashtbl.create 512;
      pending_req = Hashtbl.create 512;
      pending_cpu =
        Array.init (System.nnodes sys) (fun _ -> Hashtbl.create 4);
      mig_pages = Hashtbl.create 64; h_get = -1; h_recall = -1; h_data = -1 }
  in
  let tables = System.handlers sys in
  let reg name f = Tempest.Handlers.register_message tables ~name f in
  t.h_get <-
    reg "mig.get" (fun ep ~src ~args ~data:_ ->
        let block = args.(0) in
        ep.Tempest.charge 4;
        Queue.add src (queue_of t block);
        (* only kick the service loop for the new head *)
        if Queue.length (queue_of t block) = 1 then serve t ep block);
  t.h_recall <-
    reg "mig.recall" (fun ep ~src ~args ~data:_ ->
        let block = args.(0) in
        let data = ep.Tempest.force_read_block ~vaddr:block in
        ep.Tempest.invalidate ~vaddr:block;
        ep.Tempest.charge 4;
        (* send it home; home forwards to the waiting requester *)
        ep.Tempest.send ~dst:src ~vnet:Message.Response ~handler:t.h_data
          ~args:[| block; 1 |] ~data ());
  t.h_data <-
    reg "mig.data" (fun ep ~src:_ ~args ~data ->
        let block = args.(0) in
        let via_home = Array.length args > 1 in
        ep.Tempest.force_write_block ~vaddr:block data;
        ep.Tempest.charge 4;
        if via_home then begin
          (* we are the home, mid-recall: now hand to the requester *)
          Hashtbl.replace t.owners block ep.Tempest.node;
          serve t ep block
        end
        else begin
          ep.Tempest.set_rw ~vaddr:block;
          match Hashtbl.find_opt t.pending_cpu.(ep.Tempest.node) block with
          | Some resumption ->
              Hashtbl.remove t.pending_cpu.(ep.Tempest.node) block;
              ep.Tempest.resume resumption
          | None -> failwith "mig: data with no waiting fault"
        end);
  let fault ep (f : Tempest.fault) =
    let block = Addr.block_base f.Tempest.fault_vaddr in
    ep.Tempest.set_busy ~vaddr:block;
    Hashtbl.replace t.pending_cpu.(ep.Tempest.node) block
      f.Tempest.fault_resumption;
    ep.Tempest.charge 6;
    ep.Tempest.send ~dst:(Stache.home_of stache ~vaddr:block)
      ~vnet:Message.Request ~handler:t.h_get ~args:[| block |] ()
  in
  Tempest.Handlers.set_block_fault tables ~mode:mode_mig_home (fault);
  Tempest.Handlers.set_block_fault tables ~mode:mode_mig_remote (fault);
  let stache_pf = Option.get (Tempest.Handlers.page_fault tables) in
  Tempest.Handlers.set_page_fault tables (fun ep ~vaddr access resumption ->
      let vpage = Addr.page_of vaddr in
      if Hashtbl.mem t.mig_pages vpage then begin
        ep.Tempest.charge 10;
        ep.Tempest.map_page ~vpage ~home:(Stache.home_of stache ~vaddr)
          ~mode:mode_mig_remote ~init_tag:Tag.Invalid;
        ep.Tempest.resume resumption
      end
      else stache_pf ep ~vaddr access resumption);
  t

let mig_alloc t ~th ~node bytes =
  let va =
    Stache.alloc t.stache ~th ~node ~align:Addr.page_size ~bytes ()
  in
  let home = Stache.home_of t.stache ~vaddr:va in
  let ep = System.endpoint t.sys home in
  System.with_cpu_context t.sys ~node th (fun () ->
      for vpage = Addr.page_of va to Addr.page_of (va + bytes - 1) do
        Hashtbl.replace t.mig_pages vpage ();
        ep.Tempest.set_page_mode ~vpage ~mode:mode_mig_home
      done);
  va

(* ---------------- the migratory workload ---------------- *)

let counters = 64

let rounds = 6

let workload (base : int ref) (env : Env.t) =
  if env.Env.proc = 0 then begin
    base := env.Env.alloc_kind "migratory" (counters * Env.word);
    for c = 0 to counters - 1 do
      env.Env.write (!base + (c * Env.word)) 0.0
    done
  end;
  env.Env.barrier ();
  (* each round, every processor visits every counter (staggered start so
     ownership migrates around the machine) *)
  for round = 1 to rounds do
    ignore round;
    for k = 0 to counters - 1 do
      let c = (k + (env.Env.proc * counters / env.Env.nprocs)) mod counters in
      let a = !base + (c * Env.word) in
      env.Env.lock c;
      env.Env.write a (env.Env.read a +. 1.0);
      env.Env.unlock c
    done
  done;
  env.Env.barrier ();
  if env.Env.proc = 0 then
    for c = 0 to counters - 1 do
      let v = env.Env.read (!base + (c * Env.word)) in
      let want = float_of_int (rounds * env.Env.nprocs) in
      if v <> want then
        failwith (Printf.sprintf "counter %d: %g, want %g" c v want)
    done

let run_on label machine =
  let base = ref 0 in
  let r = Run.spmd machine ~name:"migratory" ~check:false (workload base) in
  let s = r.Run.run_stats in
  let msgs =
    Tt_util.Stats.get s "msgs.request" + Tt_util.Stats.get s "msgs.response"
  in
  Printf.printf "%-22s %10d cycles %8d protocol messages\n" label
    r.Run.cycles msgs;
  (r.Run.cycles, msgs)

let () =
  let params = { Params.default with Params.nodes = 8 } in
  Printf.printf
    "migratory counters: %d counters x %d rounds x %d processors\n\n" counters
    rounds params.Params.nodes;
  let stache_machine = Machine.typhoon_stache params in
  let _ = run_on "typhoon/stache" stache_machine in
  let machine, sys, stache = Machine.typhoon_stache_full params in
  let mig = install sys stache in
  Hashtbl.replace machine.Machine.special_allocs "migratory"
    (fun ~node th ?home bytes ->
      ignore home;
      mig_alloc mig ~th ~node bytes);
  let _ = run_on "typhoon/migratory" machine in
  print_newline ();
  print_endline
    "The migratory protocol fetches exclusively on first touch, so each \
     visit is one transaction instead of Stache's read-miss + upgrade pair \
     — written in ~100 lines of user-level OCaml against the Tempest \
     endpoint.";
  print_endline
    "(Both runs checked the counters against the expected totals.)"
