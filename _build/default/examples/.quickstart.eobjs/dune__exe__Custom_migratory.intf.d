examples/custom_migratory.mli:
