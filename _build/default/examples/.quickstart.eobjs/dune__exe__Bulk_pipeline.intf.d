examples/bulk_pipeline.mli:
