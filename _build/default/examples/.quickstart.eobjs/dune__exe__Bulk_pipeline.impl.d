examples/bulk_pipeline.ml: Array Hashtbl Params Printf Tempest Tt_mem Tt_net Tt_sim Tt_typhoon Tt_util
