examples/custom_migratory.ml: Array Hashtbl Option Params Printf Queue Tempest Tt_app Tt_harness Tt_mem Tt_net Tt_sim Tt_stache Tt_typhoon Tt_util
