examples/quickstart.ml: List Params Printf Tt_app Tt_harness Tt_util
