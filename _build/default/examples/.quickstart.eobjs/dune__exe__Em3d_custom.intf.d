examples/em3d_custom.mli:
