examples/em3d_custom.ml: List Params Printf Tt_app Tt_harness Tt_util
