examples/quickstart.mli:
