(* Quickstart: transparent shared memory on Typhoon/Stache.

   Allocates a shared array, runs a parallel reduction + relaxation on 8
   simulated nodes, and prints execution time and protocol statistics.
   The program is ordinary shared-memory code: every coherence action
   happens in the user-level Stache library.

     dune exec examples/quickstart.exe *)

module Machine = Tt_harness.Machine
module Run = Tt_harness.Run
module Env = Tt_app.Env

let cells = 4096

let iterations = 5

let app (base : int ref) (env : Env.t) =
  let n = env.Env.nprocs in
  let per = cells / n in
  (* processor 0 allocates and initializes the shared array *)
  if env.Env.proc = 0 then begin
    base := env.Env.alloc (cells * Env.word);
    for i = 0 to cells - 1 do
      env.Env.write (!base + (i * Env.word)) (float_of_int (i mod 17))
    done
  end;
  env.Env.barrier ();
  let addr i = !base + (i * Env.word) in
  let lo = env.Env.proc * per in
  for _it = 1 to iterations do
    (* local relaxation with neighbour reads that cross processors *)
    for i = lo to lo + per - 1 do
      let left = addr ((i + cells - 1) mod cells)
      and right = addr ((i + 1) mod cells) in
      env.Env.work 4;
      env.Env.write (addr i)
        ((env.Env.read left +. env.Env.read (addr i) +. env.Env.read right)
        /. 3.0)
    done;
    env.Env.barrier ()
  done;
  (* parallel reduction through a lock-protected accumulator *)
  let local = ref 0.0 in
  for i = lo to lo + per - 1 do
    local := !local +. env.Env.read (addr i)
  done;
  env.Env.lock 0;
  env.Env.write (addr 0) (env.Env.read (addr 0) +. !local);
  env.Env.unlock 0;
  env.Env.barrier ()

let () =
  let params = { Params.default with Params.nodes = 8 } in
  let machine = Machine.typhoon_stache params in
  let base = ref 0 in
  let result = Run.spmd machine ~name:"quickstart" (app base) in
  Printf.printf "quickstart: %d cells, %d iterations on %d nodes\n" cells
    iterations params.Params.nodes;
  Printf.printf "execution time: %d cycles\n\n" result.Run.cycles;
  let stats = result.Run.run_stats in
  List.iter
    (fun key ->
      Printf.printf "  %-24s %d\n" key (Tt_util.Stats.get stats key))
    [ "block_faults"; "page_faults"; "get_ro"; "get_rw"; "upgrade"; "inval";
      "msgs.request"; "msgs.response" ];
  print_newline ();
  print_endline
    "All of the coherence work above ran as user-level Stache handlers on \
     the simulated network-interface processors."
