(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, then runs Bechamel micro-benchmarks (one Test.make per
   table/figure plus the DESIGN.md ablations).

   Environment knobs (all optional):
     TT_BENCH_SCALE   data-set scale factor for the figures (default 0.5)
     TT_BENCH_NODES   simulated nodes for the figures    (default 32)
     TT_BENCH_FAST    set to 1 to skip the full figure reproduction
     TT_BENCH_JSON    path: also write the micro-benchmark ns/run
                      estimates as a JSON object to this file *)

module H = Tt_harness
open Bechamel
open Toolkit

let getenv_float name default =
  match Sys.getenv_opt name with
  | Some s -> (try float_of_string s with Failure _ -> default)
  | None -> default

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> (try int_of_string s with Failure _ -> default)
  | None -> default

let scale = getenv_float "TT_BENCH_SCALE" 0.5

let nodes = getenv_int "TT_BENCH_NODES" 32

let fast = Sys.getenv_opt "TT_BENCH_FAST" = Some "1"

(* ------------------------------------------------------------------ *)
(* Paper reproduction: the real tables and figures                      *)
(* ------------------------------------------------------------------ *)

let reproduce_figures () =
  Printf.printf
    "data-set scale %.2f, %d nodes (TT_BENCH_SCALE / TT_BENCH_NODES to \
     change)\n\n%!"
    scale nodes;
  print_string (H.Tables.all ());
  print_newline ();
  let t0 = Unix.gettimeofday () in
  let rows = H.Fig3.run ~scale ~nodes () in
  print_string (H.Fig3.render rows);
  Printf.printf "(figure 3 wall-clock: %.0fs)\n\n%!"
    (Unix.gettimeofday () -. t0);
  let t0 = Unix.gettimeofday () in
  let points = H.Fig4.run ~scale ~nodes () in
  print_string (H.Fig4.render points);
  Printf.printf "(figure 4 wall-clock: %.0fs)\n\n%!"
    (Unix.gettimeofday () -. t0);
  Printf.printf
    "update-protocol advantage over DirNNB at 50%% non-local edges: %.0f%% \
     (paper: ~35%%)\n\n%!"
    (100.0 *. H.Fig4.advantage_at points 50);
  (* scaling past the paper's 32 nodes; capped at scale 0.25 so the
     256-node column stays CI-sized *)
  let t0 = Unix.gettimeofday () in
  let points = H.Scaling.run ~scale:(Float.min scale 0.25) () in
  print_string (H.Scaling.render points);
  Printf.printf "(scaling sweep wall-clock: %.0fs)\n\n%!"
    (Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Ablations: simulated-cycle comparisons for DESIGN.md's design choices *)
(* ------------------------------------------------------------------ *)

let ablation_summary () =
  print_endline "== Ablations (simulated cycles) ==";
  print_string (H.Ablations.render_all ~nodes:16 ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

(* Table 1: the tagged-block operations on a live Typhoon endpoint. *)
let bench_table1 =
  let engine = Tt_sim.Engine.create () in
  let sys =
    Tt_typhoon.System.create engine { Params.default with Params.nodes = 2 }
  in
  let ep = Tt_typhoon.System.endpoint sys 0 in
  let va = 0x5000 * Tt_mem.Addr.page_size in
  ep.Tempest.map_page ~vpage:(Tt_mem.Addr.page_of va) ~home:0 ~mode:0
    ~init_tag:Tt_mem.Tag.Read_write;
  Test.make ~name:"table1_tag_operations"
    (Staged.stage (fun () ->
         ep.Tempest.set_ro ~vaddr:va;
         ignore (ep.Tempest.read_tag ~vaddr:va);
         ep.Tempest.set_rw ~vaddr:va;
         ep.Tempest.force_write_f64 ~vaddr:va 1.0;
         ignore (ep.Tempest.force_read_f64 ~vaddr:va)))

(* Table 2: the modelled memory-hierarchy primitives (cache + TLB). *)
let bench_table2 =
  let prng = Tt_util.Prng.create ~seed:1 in
  let cache =
    Tt_cache.Cache.create ~size_bytes:(256 * 1024) ~assoc:4 ~prng ()
  in
  let tlb = Tt_mem.Tlb.create ~miss_penalty:25 () in
  let i = ref 0 in
  Test.make ~name:"table2_cache_and_tlb"
    (Staged.stage (fun () ->
         incr i;
         let block = !i land 0xffff in
         (match Tt_cache.Cache.lookup cache ~block with
         | Some _ -> ()
         | None ->
             ignore
               (Tt_cache.Cache.insert cache ~block
                  ~state:Tt_cache.Cache.Shared));
         ignore (Tt_mem.Tlb.access tlb (block lsr 7))))

(* Table 3: workload construction (graph/oracle generation). *)
let bench_table3 =
  Test.make ~name:"table3_workload_generation"
    (Staged.stage (fun () ->
         ignore
           (Tt_app.Em3d.make
              { Tt_app.Em3d.total_nodes = 512; degree = 4; pct_remote = 20;
                iters = 1; seed = 3;
      software_prefetch = false }
              ~nprocs:4)))

(* Figure 3's unit event: one full block-fetch round trip between two
   nodes, on each system. *)
let fetch_round_trip make_machine =
  let params = { Params.default with Params.nodes = 2 } in
  let machine : H.Machine.t = make_machine params in
  let base = ref 0 in
  H.Run.spmd machine ~name:"roundtrip" ~check:false (fun env ->
      if env.Tt_app.Env.proc = 0 then
        base := env.Tt_app.Env.alloc ~home:0 512;
      env.Tt_app.Env.barrier ();
      if env.Tt_app.Env.proc = 1 then
        for w = 0 to 63 do
          ignore (env.Tt_app.Env.read (!base + (w * 8)))
        done)

let bench_fig3_stache =
  Test.make ~name:"fig3_block_fetch_stache"
    (Staged.stage (fun () ->
         ignore (fetch_round_trip (fun p -> H.Machine.typhoon_stache p))))

let bench_fig3_dirnnb =
  Test.make ~name:"fig3_block_fetch_dirnnb"
    (Staged.stage (fun () ->
         ignore (fetch_round_trip (fun p -> H.Machine.dirnnb p))))

(* Reliable-delivery overhead: the same round trip with the user-level
   transport active over a 5%-drop fabric (sequencing, acks, retransmit
   timers).  Compare against fig3_block_fetch_stache for the wall-clock
   cost of the reliability layer. *)
let bench_fig3_stache_reliable =
  let cfg =
    Tt_net.Faults.uniform ~seed:2026 ~drop:0.05 ~dup:0.0125 ~reorder:0.025 ()
  in
  Test.make ~name:"fig3_block_fetch_stache_reliable"
    (Staged.stage (fun () ->
         ignore
           (fetch_round_trip
              (H.Machine.typhoon_stache
                 ~reliability:(Tt_net.Reliable.Flaky cfg)))))

(* Ablation: the per-vnet message pool.  The same round trip with pooling
   disabled (every send allocates a fresh record) — compare against
   fig3_block_fetch_stache for the wall-clock cost of allocation on the
   messaging path.  The simulated cycle counts are asserted identical by
   [pool_timing_parity] below. *)
let bench_ablation_message_pool =
  Test.make ~name:"ablation_message_pool"
    (Staged.stage (fun () ->
         Tt_net.Message.Pool.set_disabled true;
         Fun.protect
           ~finally:(fun () -> Tt_net.Message.Pool.set_disabled false)
           (fun () ->
             ignore (fetch_round_trip (fun p -> H.Machine.typhoon_stache p)))))

(* Pooling must be timing-neutral: recycling message records and bulk
   buffers may never move a simulated event.  Run the pinned round trip
   both ways and demand bit-identical cycle counts before benchmarking. *)
let pool_timing_parity () =
  let was = Tt_net.Message.Pool.is_disabled () in
  let run disabled =
    Tt_net.Message.Pool.set_disabled disabled;
    Fun.protect
      ~finally:(fun () -> Tt_net.Message.Pool.set_disabled was)
      (fun () ->
        let stache =
          (fetch_round_trip (fun p -> H.Machine.typhoon_stache p)).H.Run.cycles
        in
        let dirnnb =
          (fetch_round_trip (fun p -> H.Machine.dirnnb p)).H.Run.cycles
        in
        (stache, dirnnb))
  in
  let on = run false and off = run true in
  if on <> off then begin
    Printf.eprintf
      "FATAL: message pooling changed simulated timing: pools on %s, off %s\n"
      (Printf.sprintf "(stache %d, dirnnb %d)" (fst on) (snd on))
      (Printf.sprintf "(stache %d, dirnnb %d)" (fst off) (snd off));
    exit 1
  end;
  Printf.printf
    "pool timing parity: OK (stache round trip %d cycles, dirnnb %d, \
     identical with pooling disabled)\n\n%!"
    (fst on) (snd on)

(* The suspension-free fast path must be timing-neutral: eliding a fiber
   suspension may never move a simulated event.  Run the pinned round
   trips with the fast path on and off and demand bit-identical cycle
   counts before benchmarking (scripts/check_fastpath.sh runs the whole
   test suite the same way). *)
let fastpath_timing_parity () =
  let was = Tt_sim.Thread.fastpath_enabled () in
  let run on =
    Tt_sim.Thread.set_fastpath on;
    Fun.protect
      ~finally:(fun () -> Tt_sim.Thread.set_fastpath was)
      (fun () ->
        let stache =
          (fetch_round_trip (fun p -> H.Machine.typhoon_stache p)).H.Run.cycles
        in
        let dirnnb =
          (fetch_round_trip (fun p -> H.Machine.dirnnb p)).H.Run.cycles
        in
        (stache, dirnnb))
  in
  let on = run true and off = run false in
  if on <> off then begin
    Printf.eprintf
      "FATAL: the suspension fast path changed simulated timing: on %s, off \
       %s\n"
      (Printf.sprintf "(stache %d, dirnnb %d)" (fst on) (snd on))
      (Printf.sprintf "(stache %d, dirnnb %d)" (fst off) (snd off));
    exit 1
  end;
  Printf.printf
    "fastpath timing parity: OK (stache round trip %d cycles, dirnnb %d, \
     identical with TT_FASTPATH=0)\n\n%!"
    (fst on) (snd on)

(* Finite buffering must be free when buffers are ample: with the default
   credit pools (which the reliable transport's send window can never
   exhaust) the flow-control layer is pure integer bookkeeping, so the
   pinned round trips must cost bit-identical cycles with the layer on and
   off (scripts/check_flowcontrol.sh runs the whole test suite the same
   way). *)
let flowcontrol_timing_parity () =
  let was = Tt_net.Flow.enabled () in
  let run on =
    Tt_net.Flow.set_enabled on;
    Fun.protect
      ~finally:(fun () -> Tt_net.Flow.set_enabled was)
      (fun () ->
        let stache =
          (fetch_round_trip (fun p -> H.Machine.typhoon_stache p)).H.Run.cycles
        in
        let dirnnb =
          (fetch_round_trip (fun p -> H.Machine.dirnnb p)).H.Run.cycles
        in
        (stache, dirnnb))
  in
  let on = run true and off = run false in
  if on <> off then begin
    Printf.eprintf
      "FATAL: flow control changed simulated timing under ample credits: on \
       %s, off %s\n"
      (Printf.sprintf "(stache %d, dirnnb %d)" (fst on) (snd on))
      (Printf.sprintf "(stache %d, dirnnb %d)" (fst off) (snd off));
    exit 1
  end;
  Printf.printf
    "flowcontrol timing parity: OK (stache round trip %d cycles, dirnnb %d, \
     identical with TT_FLOW=0)\n\n%!"
    (fst on) (snd on)

(* Crash-stop recovery support must be free when nobody crashes: with no
   crash schedule configured, the liveness hooks and window checks on the
   transport's send/retransmit paths are dead branches, so the pinned
   round trips — including the reliable-transport one, where those
   branches live — must cost bit-identical cycles with recovery support
   on and off (scripts/check_recovery.sh runs the whole suite and the
   recover grid the same way). *)
let recovery_timing_parity () =
  let was = Tt_net.Faults.recovery_enabled () in
  let cfg =
    Tt_net.Faults.uniform ~seed:2026 ~drop:0.05 ~dup:0.0125 ~reorder:0.025 ()
  in
  let run on =
    Tt_net.Faults.set_recovery on;
    Fun.protect
      ~finally:(fun () -> Tt_net.Faults.set_recovery was)
      (fun () ->
        let stache =
          (fetch_round_trip
             (H.Machine.typhoon_stache
                ~reliability:(Tt_net.Reliable.Flaky cfg)))
            .H.Run.cycles
        in
        let dirnnb =
          (fetch_round_trip
             (H.Machine.dirnnb ~reliability:(Tt_net.Reliable.Flaky cfg)))
            .H.Run.cycles
        in
        (stache, dirnnb))
  in
  let on = run true and off = run false in
  if on <> off then begin
    Printf.eprintf
      "FATAL: crash-recovery support changed simulated timing with no crash \
       scheduled: on %s, off %s\n"
      (Printf.sprintf "(stache %d, dirnnb %d)" (fst on) (snd on))
      (Printf.sprintf "(stache %d, dirnnb %d)" (fst off) (snd off));
    exit 1
  end;
  Printf.printf
    "recovery timing parity: OK (reliable stache round trip %d cycles, \
     dirnnb %d, identical with TT_RECOVERY=0)\n\n%!"
    (fst on) (snd on)

(* The domains-parallel engine must be deterministic: the same PHOLD
   schedule, partitioned four ways, must produce bit-identical
   per-partition event-log hashes whether one domain drives all four
   partitions or four domains drive one each
   (scripts/check_parallel.sh gates the full sweeps the same way). *)
let pdes_parity () =
  let go domains =
    H.Pdes.run ~nodes:32 ~partitions:4 ~horizon:20_000 ~domains ()
  in
  let seq = go 1 and par = go 4 in
  if
    seq.H.Pdes.log_hashes <> par.H.Pdes.log_hashes
    || seq.H.Pdes.counts <> par.H.Pdes.counts
  then begin
    Printf.eprintf
      "FATAL: domains-parallel PHOLD diverged from the 1-domain oracle\n";
    exit 1
  end;
  Printf.printf
    "pdes determinism parity: OK (%d events over %d windows, identical \
     per-partition logs on 1 and 4 domains)\n\n%!"
    seq.H.Pdes.total seq.H.Pdes.epochs

(* The adaptive layer must be free when killed: with TT_ADAPT=0 the
   observer still counts traffic but nothing ever switches, so a run on
   the adaptive machine must cost bit-identical simulated cycles to the
   plain zoo machine with every page left on the default invalidate
   protocol (scripts/check_protocols.sh gates the full suite the same
   way). *)
let adaptive_parity () =
  let cycles machine_of =
    let params = { Params.default with Params.nodes = 8 } in
    let inst =
      H.Catalog.make ~name:"synthpc" ~size:H.Catalog.Small ~scale:0.25
        ~nprocs:8
    in
    (H.Run.spmd (machine_of params) ~name:"synthpc" inst.H.Catalog.body)
      .H.Run.cycles
  in
  let was = Sys.getenv_opt "TT_ADAPT" in
  Unix.putenv "TT_ADAPT" "0";
  let killed =
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv "TT_ADAPT" (Option.value was ~default:"1"))
      (fun () -> cycles H.Machine.typhoon_adaptive)
  in
  let base =
    cycles (H.Machine.typhoon_zoo ~policy:Tt_custom.Proto.Stachelike)
  in
  if killed <> base then begin
    Printf.eprintf
      "FATAL: TT_ADAPT=0 is not free: adaptive machine %d cycles, plain zoo \
       machine %d\n"
      killed base;
    exit 1
  end;
  Printf.printf
    "adaptive kill-switch parity: OK (synthpc %d cycles, identical with \
     TT_ADAPT=0 and on the plain zoo machine)\n\n%!"
    killed

(* Wall-clock face of the same workload: the conservative windowed engine
   on one domain vs four.  Speedup only appears with >= 4 host cores; the
   interesting single-core number is the windowing overhead vs the
   sequential oracle. *)
let bench_pdes domains =
  Test.make ~name:(Printf.sprintf "pdes_phold_%d_domains" domains)
    (Staged.stage (fun () ->
         ignore
           (H.Pdes.run ~nodes:64 ~partitions:4 ~horizon:10_000 ~domains ())))

let bench_pdes_1 = bench_pdes 1

let bench_pdes_4 = bench_pdes 4

(* Figure 4's unit: a tiny EM3D run under the update protocol. *)
let em3d_tiny_cfg =
  { Tt_app.Em3d.total_nodes = 256; degree = 3; pct_remote = 30; iters = 1;
    seed = 5;
    software_prefetch = false }

let bench_fig4 =
  Test.make ~name:"fig4_em3d_update_tiny"
    (Staged.stage (fun () ->
         let params = { Params.default with Params.nodes = 4 } in
         let machine = H.Machine.typhoon_em3d params in
         let inst = Tt_app.Em3d.make em3d_tiny_cfg ~nprocs:4 in
         ignore (H.Run.spmd machine ~name:"em3d" inst.Tt_app.Em3d.body)))

(* Ablations: the protocol zoo.  The migratory synthetic under the generic
   migratory protocol, and the Figure 4 EM3D unit under the zoo's generic
   update protocol (widerep) — compare against fig4_em3d_update_tiny's
   hand-written EM3D protocol for the cost of generality. *)
let bench_ablation_protocol_migratory =
  Test.make ~name:"ablation_protocol_migratory"
    (Staged.stage (fun () ->
         let params = { Params.default with Params.nodes = 4 } in
         let machine =
           H.Machine.typhoon_zoo ~policy:Tt_custom.Proto.Migratory params
         in
         let inst =
           H.Catalog.make ~name:"synthmig" ~size:H.Catalog.Small ~scale:0.25
             ~nprocs:4
         in
         ignore (H.Run.spmd machine ~name:"synthmig" inst.H.Catalog.body)))

let bench_ablation_protocol_update =
  Test.make ~name:"ablation_protocol_update"
    (Staged.stage (fun () ->
         let params = { Params.default with Params.nodes = 4 } in
         let machine =
           H.Machine.typhoon_zoo ~policy:Tt_custom.Proto.Widerep params
         in
         let inst = Tt_app.Em3d.make em3d_tiny_cfg ~nprocs:4 in
         ignore (H.Run.spmd machine ~name:"em3d" inst.Tt_app.Em3d.body)))

(* Ablation: thread suspend/resume through the poll/continuation slot
   (DESIGN.md §5c).  The wake fires during registration, so with the fast
   path on (the default) the common case completes inline without capturing
   a continuation; the _fast/_slow variants pin both modes explicitly. *)
let suspend_resume_loop () =
  let engine = Tt_sim.Engine.create () in
  let th =
    Tt_sim.Thread.spawn engine ~name:"t" (fun th ->
        for _ = 1 to 100 do
          Tt_sim.Thread.await_unit th (fun wake -> wake ())
        done)
  in
  Tt_sim.Engine.run engine;
  assert (Tt_sim.Thread.finished th)

let suspend_resume_with_fastpath on () =
  let was = Tt_sim.Thread.fastpath_enabled () in
  Tt_sim.Thread.set_fastpath on;
  Fun.protect
    ~finally:(fun () -> Tt_sim.Thread.set_fastpath was)
    suspend_resume_loop

let bench_ablation_effects =
  Test.make ~name:"ablation_effect_suspend_resume"
    (Staged.stage suspend_resume_loop)

let bench_ablation_effects_fast =
  Test.make ~name:"ablation_effect_suspend_resume_fast"
    (Staged.stage (suspend_resume_with_fastpath true))

let bench_ablation_effects_slow =
  Test.make ~name:"ablation_effect_suspend_resume_slow"
    (Staged.stage (suspend_resume_with_fastpath false))

(* Ablation: the paper's 6-pointer representation vs its bit-vector
   overflow form. *)
let bench_ablation_sharers_pointers =
  Test.make ~name:"ablation_sharers_pointer_repr"
    (Staged.stage (fun () ->
         let s = Tt_stache.Sharers.create ~nodes:32 in
         for n = 0 to 5 do
           Tt_stache.Sharers.add s n
         done;
         ignore (Tt_stache.Sharers.to_list s);
         Tt_stache.Sharers.clear s))

let bench_ablation_sharers_overflow =
  Test.make ~name:"ablation_sharers_bitvector_overflow"
    (Staged.stage (fun () ->
         let s = Tt_stache.Sharers.create ~nodes:32 in
         for n = 0 to 31 do
           Tt_stache.Sharers.add s n
         done;
         ignore (Tt_stache.Sharers.to_list s);
         Tt_stache.Sharers.clear s))

(* Ablation: event-queue throughput (the simulator's hot path).  Both
   queue implementations behind Eventq — the binary heap and the
   calendar/ladder queue — under the two key distributions that matter:

   - clustered: the engine's steady state, measured as the classic hold
     model.  A persistent queue holds 256 packed (time lsl 20 lor seq)
     keys near an advancing now; each step pops the minimum and
     reschedules one event a short varying distance ahead, exactly like a
     simulation in flight.  The queue lives across benchmark runs — an
     engine creates its queue once and then runs millions of events
     through it, so steady-state throughput is the number that matters.
     This is the distribution the calendar queue turns into O(1) per
     operation.
   - uniform: keys scattered over a ~16M-cycle range, batch-pushed into a
     fresh queue and drained — sparse, unclustered and cold, the heap's
     home turf and the calendar's resize/ladder stress case.

   [ablation_event_queue] keeps the seed benchmark's shape (heap, dense
   small keys, batch push then drain) so the historical BENCH_RESULTS.json
   row stays comparable. *)
module Evq = Tt_sim.Eventq

let evq_nop () = ()

(* 256 hold steps (256 pops + 256 pushes, matching the seed benchmark's
   operation count) on a queue primed once with one event per cycle. *)
let evq_clustered impl =
  let q = Evq.create impl in
  for i = 0 to 255 do
    Evq.push q ((i lsl 20) lor i) evq_nop
  done;
  let i = ref 0 in
  fun () ->
    for _ = 1 to 256 do
      incr i;
      let k = Evq.min_key q in
      let (_ : unit -> unit) = Evq.pop_exn q in
      let time = (k asr 20) + 1 + (!i land 7) in
      Evq.push q ((time lsl 20) lor (!i land 0xFFFFF)) evq_nop
    done

let evq_uniform impl () =
  let q = Evq.create impl in
  for i = 0 to 255 do
    let time = (i * 2654435761) land 0xFFFFFF in
    Evq.push q ((time lsl 20) lor i) evq_nop
  done;
  while not (Evq.is_empty q) do
    let (_ : unit -> unit) = Evq.pop_exn q in ()
  done

let bench_ablation_event_queue =
  let nop () = () in
  Test.make ~name:"ablation_event_queue"
    (Staged.stage (fun () ->
         let h = Tt_util.Intheap.create ~dummy:nop () in
         for i = 0 to 255 do
           Tt_util.Intheap.push h ((i * 7919) land 1023) nop
         done;
         while not (Tt_util.Intheap.is_empty h) do
           let (_ : unit -> unit) = Tt_util.Intheap.pop_exn h in
           ()
         done))

let bench_ablation_event_queue_heap_clustered =
  Test.make ~name:"ablation_event_queue_heap_clustered"
    (Staged.stage (evq_clustered Evq.Heap))

let bench_ablation_event_queue_cal_clustered =
  Test.make ~name:"ablation_event_queue_cal_clustered"
    (Staged.stage (evq_clustered Evq.Calendar))

let bench_ablation_event_queue_heap_uniform =
  Test.make ~name:"ablation_event_queue_heap_uniform"
    (Staged.stage (evq_uniform Evq.Heap))

let bench_ablation_event_queue_cal_uniform =
  Test.make ~name:"ablation_event_queue_cal_uniform"
    (Staged.stage (evq_uniform Evq.Calendar))

let benchmarks =
  [ bench_table1; bench_table2; bench_table3; bench_fig3_stache;
    bench_fig3_dirnnb; bench_fig3_stache_reliable;
    bench_ablation_message_pool; bench_fig4; bench_ablation_protocol_migratory;
    bench_ablation_protocol_update; bench_pdes_1; bench_pdes_4;
    bench_ablation_effects; bench_ablation_effects_fast;
    bench_ablation_effects_slow;
    bench_ablation_sharers_pointers; bench_ablation_sharers_overflow;
    bench_ablation_event_queue; bench_ablation_event_queue_heap_clustered;
    bench_ablation_event_queue_cal_clustered;
    bench_ablation_event_queue_heap_uniform;
    bench_ablation_event_queue_cal_uniform ]

let write_json path rows =
  let oc = open_out path in
  output_string oc "{\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i (name, est) ->
      Printf.fprintf oc "  %S: %.1f%s\n" name est (if i < last then "," else ""))
    rows;
  output_string oc "}\n";
  close_out oc;
  Printf.printf "(wrote ns/run estimates to %s)\n%!" path

let run_bechamel () =
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let instances = Instance.[ monotonic_clock ] in
  print_endline "== Bechamel micro-benchmarks (ns/run) ==";
  let collected = ref [] in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances test
        |> Analyze.all
             (Analyze.ols ~bootstrap:0 ~r_square:true
                ~predictors:[| Measure.run |])
             Instance.monotonic_clock
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] ->
              collected := (name, est) :: !collected;
              Printf.printf "  %-40s %12.1f ns\n%!" name est
          | Some _ | None -> Printf.printf "  %-40s (no estimate)\n%!" name)
        results)
    benchmarks;
  match Sys.getenv_opt "TT_BENCH_JSON" with
  | Some path -> write_json path (List.rev !collected)
  | None -> ()

let () =
  print_endline "=== Tempest & Typhoon: benchmark harness ===";
  pool_timing_parity ();
  fastpath_timing_parity ();
  flowcontrol_timing_parity ();
  recovery_timing_parity ();
  pdes_parity ();
  adaptive_parity ();
  if not fast then reproduce_figures ()
  else print_endline "(TT_BENCH_FAST=1: skipping figure reproduction)\n";
  ablation_summary ();
  run_bechamel ()
