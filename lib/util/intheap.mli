(** Monomorphic int-keyed binary min-heap.

    The specialized event queue backing {!Tt_sim.Engine}: keys are immediate
    ints compared with inline [<]/[>] (no comparator closure, no polymorphic
    compare), and key/payload live in parallel flat arrays so pushing or
    popping allocates nothing.  Keep using {!Heap} for keys that are not
    ints or for call sites off the hot path. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] builds an empty heap.  [dummy] fills unused payload
    slots (and is returned by nothing); [capacity] preallocates the backing
    arrays (default 256). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> int -> 'a -> unit
(** [push t key v] inserts [v] with priority [key] (minimum first). *)

val min_key : 'a t -> int
(** Key of the minimum element without removing it.
    @raise Invalid_argument on an empty heap. *)

val pop_exn : 'a t -> 'a
(** Remove the minimum element and return its payload.  Use {!min_key}
    first when the key is also needed.
    @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit
(** Empty the heap, releasing payload references but keeping capacity. *)
