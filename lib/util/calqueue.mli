(** Monomorphic int-keyed calendar/ladder queue.

    An amortized-O(1) priority queue for the event-time distributions the
    simulation engine actually produces: keys heavily clustered within a
    small window above the current minimum.  Keys are the same packed
    [(time, salt, seq)] immediate ints {!Tt_sim.Engine} builds for
    {!Intheap}; the queue never inspects the packing beyond treating the
    key as a totally ordered int.

    Structure: an array of [nbuckets] day-buckets, each a sorted run of
    [(key, payload)] slots behind a deque start offset, where bucket
    index is [(key lsr wshift) land (nbuckets - 1)] — i.e. each bucket
    covers a [1 lsl wshift]-wide slice of key space, recurring every
    [nbuckets lsl wshift] keys (one "day").  Dequeue takes the front of
    the bucket under the current window (the bucket minimum, since runs
    are sorted) and advances window by window; enqueue is an O(1) append
    when per-bucket arrival is monotone — the steady state — and a
    binary search plus one blit otherwise.  Far-future events (beyond
    the rolling [horizon], one day ahead) sit in an overflow "year"
    ladder (an {!Intheap}) and migrate into buckets as the horizon
    slides over them, so bucket fronts never hide events that cannot be
    next.

    The bucket count resizes lazily on occupancy thresholds (x2 above two
    events per bucket, /2 below one per four buckets — the gap between
    the two thresholds is the hysteresis that keeps a queue hovering at a
    boundary from thrashing) and each resize
    re-estimates the bucket width from the live key span, so the queue
    tracks the workload's clustering without tuning.

    Ordering: pops are in exact non-decreasing key order.  Among {e equal}
    keys, pops are FIFO in insertion order (sorted insertion is
    upper-bound, so an equal key lands behind its elders, and popping
    takes the front) — strictly stronger than {!Intheap}'s unspecified
    equal-key order.

    Adaptive fallback: distributions a calendar queue handles badly —
    e.g. thousands of coexisting events with identical keys (the torture
    grid's same-timestamp storms under salt collisions) — are detected
    two ways: a resize that finds a degenerate key span, or a rolling
    work-per-pop ratio above threshold.  A costly window first retunes
    the bucket width (re-estimate, then force narrower in case the
    estimator is fooled); only a degenerate span or a full ladder of
    consecutive costly windows drains the whole structure into a private
    {!Intheap}, permanently degrading to plain heap behaviour
    ({!fell_back} reports it).  Key order across the switch is preserved
    exactly. *)

type 'a t

val create : ?capacity:int -> ?wshift:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] builds an empty queue.  [dummy] fills unused
    payload slots; [capacity] sizes the initial bucket array (default 16,
    rounded up to a power of two); [wshift] is the initial
    log2 bucket width in key units (default 0) — callers that know the
    key packing pass the time shift so the first buckets each cover one
    simulated cycle.  Width re-estimates itself at every resize. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> int -> 'a -> unit
(** [push t key v] inserts [v] with priority [key] (minimum first).
    Amortized O(1). *)

val min_key : 'a t -> int
(** Key of the minimum element without removing it.  The located position
    is cached, so a [min_key]-then-[pop_exn] pair costs one scan.
    @raise Invalid_argument on an empty queue. *)

val pop_exn : 'a t -> 'a
(** Remove the minimum element and return its payload.
    @raise Invalid_argument on an empty queue. *)

val clear : 'a t -> unit
(** Empty the queue, releasing payload references but keeping capacity
    (and any fallback state). *)

val fell_back : 'a t -> bool
(** [true] once the adaptive fallback has drained the calendar into its
    private binary heap (see the module docs); the queue keeps working,
    just at O(log n). *)

val resizes : 'a t -> int
(** Number of bucket-array resizes so far (diagnostic). *)
