(** Per-block protocol event tracing.

    Set the environment variable [TT_DEBUG_BLOCK] to a block identifier
    (for DirNNB a global block number, for Stache a block-base virtual
    address; decimal or 0x-prefixed) and every protocol event touching that
    block is streamed to stderr.  Zero cost when unset. *)

val target : int option
(** The requested block key, parsed once at startup. *)

val log : key:int -> ('a, unit, string, unit) format4 -> 'a
(** [log ~key fmt …] prints to stderr iff [key] matches [target]. *)

(** {2 Buffer-pool debugging} *)

val set_pool_debug : bool -> unit
(** Enable/disable pool debugging at runtime (the test suite turns it on).
    Initial value comes from the [TT_POOL_DEBUG] environment variable
    ([1] or [true] enables it). *)

val pool_debug : unit -> bool
(** When true, released pool buffers are poisoned (filled with [0xDE]) so
    use-after-release reads garbage deterministically, and releasing the
    same buffer twice is rejected with [Invalid_argument] instead of
    silently aliasing one buffer under two owners.  Released pooled
    messages likewise get their mutable fields poisoned. *)
