type 'a t = {
  dummy : 'a;
  mutable keys : int array;  (* valid in [0, size) *)
  mutable data : 'a array;
  mutable size : int;
}

let create ?(capacity = 256) ~dummy () =
  let cap = max capacity 1 in
  { dummy; keys = Array.make cap 0; data = Array.make cap dummy; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let grow t =
  let cap = Array.length t.keys in
  let ncap = cap * 2 in
  let nkeys = Array.make ncap 0 and ndata = Array.make ncap t.dummy in
  Array.blit t.keys 0 nkeys 0 t.size;
  Array.blit t.data 0 ndata 0 t.size;
  t.keys <- nkeys;
  t.data <- ndata

(* Hole-based sifting: carry the inserted (key, value) in locals and move
   only the displaced slots, i.e. one array write per level instead of a
   three-write swap. *)
let push t key v =
  if t.size = Array.length t.keys then grow t;
  let keys = t.keys and data = t.data in
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if Array.unsafe_get keys parent > key then begin
      Array.unsafe_set keys !i (Array.unsafe_get keys parent);
      Array.unsafe_set data !i (Array.unsafe_get data parent);
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set keys !i key;
  Array.unsafe_set data !i v

let min_key t =
  if t.size = 0 then invalid_arg "Intheap.min_key: empty heap";
  Array.unsafe_get t.keys 0

let pop_exn t =
  if t.size = 0 then invalid_arg "Intheap.pop_exn: empty heap";
  let keys = t.keys and data = t.data in
  let top = Array.unsafe_get data 0 in
  let n = t.size - 1 in
  t.size <- n;
  if n = 0 then Array.unsafe_set data 0 t.dummy
  else begin
    let key = Array.unsafe_get keys n and v = Array.unsafe_get data n in
    Array.unsafe_set data n t.dummy (* drop the payload reference *);
    let i = ref 0 and continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= n then continue := false
      else begin
        let r = l + 1 in
        let c =
          if r < n && Array.unsafe_get keys r < Array.unsafe_get keys l then r
          else l
        in
        if Array.unsafe_get keys c < key then begin
          Array.unsafe_set keys !i (Array.unsafe_get keys c);
          Array.unsafe_set data !i (Array.unsafe_get data c);
          i := c
        end
        else continue := false
      end
    done;
    Array.unsafe_set keys !i key;
    Array.unsafe_set data !i v
  end;
  top

let clear t =
  Array.fill t.data 0 t.size t.dummy;
  t.size <- 0
