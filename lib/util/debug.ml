let target =
  match Sys.getenv_opt "TT_DEBUG_BLOCK" with
  | Some s -> int_of_string_opt s
  | None -> None

let log ~key fmt =
  Printf.ksprintf (fun msg -> if target = Some key then prerr_endline msg) fmt

let pool_debug_flag =
  ref
    (match Sys.getenv_opt "TT_POOL_DEBUG" with
    | Some ("1" | "true") -> true
    | Some _ | None -> false)

let set_pool_debug b = pool_debug_flag := b

let pool_debug () = !pool_debug_flag
