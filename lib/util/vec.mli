(** Growable array (OCaml 5.1 predates [Dynarray]). *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the last element. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_list : 'a t -> 'a list

val to_array : 'a t -> 'a array

val of_list : 'a list -> 'a t

val clear : 'a t -> unit
(** Empty the vector and drop its storage. *)

val reset : 'a t -> unit
(** Empty the vector but keep its storage for reuse (no allocation on the
    next pushes).  The retained array still references the old elements;
    use only where that retention is harmless (e.g. waiter lists holding
    run-lifetime threads). *)

val truncate : 'a t -> int -> unit
(** Shrink the vector to its first [n] elements, keeping storage (same
    retention caveat as {!reset}).  @raise Invalid_argument if [n] is
    negative or larger than the current length. *)
