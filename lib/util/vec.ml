type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let check t i =
  if i < 0 || i >= t.size then invalid_arg "Vec: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let push t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 8 else cap * 2 in
    let nd = Array.make ncap x in
    Array.blit t.data 0 nd 0 t.size;
    t.data <- nd
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1

let pop t =
  if t.size = 0 then None
  else begin
    t.size <- t.size - 1;
    Some t.data.(t.size)
  end

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.size - 1 do
    f i t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t =
  let rec build i acc = if i < 0 then acc else build (i - 1) (t.data.(i) :: acc) in
  build (t.size - 1) []

let to_array t = Array.sub t.data 0 t.size

let of_list xs =
  let t = create () in
  List.iter (push t) xs;
  t

let clear t =
  t.data <- [||];
  t.size <- 0

let reset t = t.size <- 0

let truncate t n =
  if n < 0 || n > t.size then invalid_arg "Vec.truncate";
  t.size <- n
