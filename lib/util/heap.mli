(** Resizable binary min-heap.

    A plain array-backed heap with no per-node allocation beyond the stored
    elements.  (The simulator's event queue uses the specialized int-keyed
    {!Intheap}; this generic variant serves everything else.) *)

type 'a t

val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
(** [create ~cmp ()] builds an empty heap ordered by [cmp] (minimum first).
    [capacity] (default 64) sizes the initial backing array, allocated on
    the first push.
    @raise Invalid_argument if [capacity <= 0]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a list
(** Non-destructively list the contents in ascending order (test helper;
    costs a heap copy). *)
