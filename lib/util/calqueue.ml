(* Calendar/ladder queue — see calqueue.mli for the design overview.

   Invariants maintained throughout (referenced as I1..I5 below):

   I1. every bucket item's key is < horizon and every overflow item's key
       is >= horizon at all times, so whenever the calendar holds any
       item at all its minimum is the global minimum;
   I2. wstart is aligned to the bucket width and wstart <= every bucket
       item's key (a push below wstart rewinds the window first);
   I3. every horizon increase drains the overflow ladder below the new
       horizon into the buckets, so I1 survives the slide;
   I4. the cached minimum, when valid, names the front slot of the bucket
       holding the global minimum key (pushes either keep it minimal or
       replace it; any removal or restructure invalidates it);
   I5. each bucket's live slots [bstart, blen) are sorted ascending by
       key, equal keys in insertion order — so the bucket's front is its
       minimum and popping the minimum never shifts.

   Keys must be non-negative: bucket indexing uses logical shifts. *)

type 'a t = {
  dummy : 'a;
  mutable bkeys : int array array;  (* per-bucket key slabs *)
  mutable bdata : 'a array array;
  mutable bstart : int array;  (* live slots are [bstart, blen), sorted *)
  mutable blen : int array;
  mutable nbuckets : int;  (* power of two *)
  mutable bmask : int;
  mutable wshift : int;  (* bucket width = 1 lsl wshift key units *)
  mutable cal_size : int;  (* items in buckets (ladder excluded) *)
  mutable wstart : int;  (* aligned floor of the scan window *)
  mutable cur : int;  (* bucket under the scan window *)
  mutable horizon : int;  (* keys >= horizon ride the overflow ladder *)
  overflow : 'a Intheap.t;
  mutable heap : 'a Intheap.t option;  (* Some = adaptive fallback taken *)
  (* cached location of the minimum (I4) *)
  mutable cmin_valid : bool;
  mutable cmin_bucket : int;
  mutable cmin_index : int;
  mutable cmin_key : int;
  (* adaptive bookkeeping *)
  mutable scan_work : int;  (* slots touched since the window opened *)
  mutable pop_count : int;
  mutable retunes : int;  (* consecutive costly windows, each one a retune *)
  mutable nresizes : int;
}

let min_buckets = 4

let max_buckets = 1 lsl 22

(* Fallback trigger: average locate/insert-shift/migration work per pop,
   evaluated every [fallback_window] pops.  Healthy steady states run at
   ~2-4. *)
let fallback_window = 128

let fallback_scan_per_pop = 32

(* Costly windows trigger a width retune: the first re-estimates from the
   live keys, later ones force buckets 4x narrower in case the estimator
   is being fooled.  Only after [retune_limit] consecutive costly windows
   is the distribution declared calendar-hostile for good. *)
let retune_limit = 4

(* Key-spacing sample for the width estimate: the head-most keys only.
   Scan cost is set by the density right at the minimum, and hold-model
   steady states concentrate events just above it — a sample reaching
   deep into the queue smears that spike flat. *)
let head_sample = 16

(* Degenerate-span trigger: at resize time, [n] keys spanning fewer than
   [n] distinct values are duplicate-dominated (pigeonhole) — the one
   distribution bucketing cannot spread.  Only trusted given evidence. *)
let degenerate_min_size = 64

let sat_add a b = if a > max_int - b then max_int else a + b

let log2_ge n =
  (* smallest s with 1 lsl s >= n *)
  let s = ref 0 in
  while 1 lsl !s < n do
    incr s
  done;
  !s

let create ?(capacity = 16) ?(wshift = 0) ~dummy () =
  let nb =
    min max_buckets (1 lsl log2_ge (max min_buckets capacity))
  in
  let wshift = max 0 (min wshift (60 - log2_ge nb)) in
  {
    dummy;
    bkeys = Array.make nb [||];
    bdata = Array.make nb [||];
    bstart = Array.make nb 0;
    blen = Array.make nb 0;
    nbuckets = nb;
    bmask = nb - 1;
    wshift;
    cal_size = 0;
    wstart = 0;
    cur = 0;
    horizon = sat_add 0 (nb lsl wshift);
    overflow = Intheap.create ~capacity:16 ~dummy ();
    heap = None;
    cmin_valid = false;
    cmin_bucket = 0;
    cmin_index = 0;
    cmin_key = 0;
    scan_work = 0;
    pop_count = 0;
    retunes = 0;
    nresizes = 0;
  }

let length t =
  match t.heap with
  | Some h -> Intheap.length h
  | None -> t.cal_size + Intheap.length t.overflow

let is_empty t = length t = 0

let fell_back t = match t.heap with Some _ -> true | None -> false

let resizes t = t.nresizes

let set_window t key =
  t.wstart <- (key lsr t.wshift) lsl t.wshift;
  t.cur <- (key lsr t.wshift) land t.bmask

let slab_grow t b =
  let ok = t.bkeys.(b) and od = t.bdata.(b) in
  let cap = Array.length ok in
  let ncap = if cap = 0 then 4 else cap * 2 in
  let nk = Array.make ncap 0 and nd = Array.make ncap t.dummy in
  Array.blit ok 0 nk 0 cap;
  Array.blit od 0 nd 0 cap;
  t.bkeys.(b) <- nk;
  t.bdata.(b) <- nd

(* Slide the live run back to slot 0, reclaiming popped front space. *)
let compact_left t b =
  let s = t.bstart.(b) and e = t.blen.(b) in
  Array.blit t.bkeys.(b) s t.bkeys.(b) 0 (e - s);
  let data = t.bdata.(b) in
  Array.blit data s data 0 (e - s);
  Array.fill data (e - s) s t.dummy;
  t.bstart.(b) <- 0;
  t.blen.(b) <- e - s;
  if t.cmin_valid && t.cmin_bucket = b then t.cmin_index <- t.cmin_index - s

(* Sorted insert (I5) into the key's bucket; no horizon test, no cache
   upkeep.  Upper-bound position keeps equal keys FIFO; the common cases
   — append at the back (monotone per-bucket arrival) and prepend into
   reclaimed front space — are O(1). *)
let insert_bucket t key v =
  let b = (key lsr t.wshift) land t.bmask in
  if
    Array.unsafe_get t.blen b = Array.length (Array.unsafe_get t.bkeys b)
  then begin
    if Array.unsafe_get t.bstart b > 0 then compact_left t b
    else slab_grow t b
  end;
  let s = Array.unsafe_get t.bstart b and e = Array.unsafe_get t.blen b in
  let keys = Array.unsafe_get t.bkeys b
  and data = Array.unsafe_get t.bdata b in
  let pos =
    (* monotone per-bucket arrival is the steady state: append without
       searching when the key is >= the current back (FIFO-safe: equal
       keys belong at the back anyway) *)
    if e = s || key >= Array.unsafe_get keys (e - 1) then e
    else begin
      let lo = ref s and hi = ref e in
      while !lo < !hi do
        let mid = (!lo + !hi) lsr 1 in
        if Array.unsafe_get keys mid <= key then lo := mid + 1 else hi := mid
      done;
      !lo
    end
  in
  if pos = s && s > 0 then begin
    (* new global front of the bucket: use the popped slot to its left *)
    Array.unsafe_set keys (s - 1) key;
    Array.unsafe_set data (s - 1) v;
    Array.unsafe_set t.bstart b (s - 1)
  end
  else begin
    Array.blit keys pos keys (pos + 1) (e - pos);
    Array.blit data pos data (pos + 1) (e - pos);
    Array.unsafe_set keys pos key;
    Array.unsafe_set data pos v;
    Array.unsafe_set t.blen b (e + 1);
    (* mid-run shifts are the sorted representation's real cost; count
       them so a hostile arrival order still trips the retune ladder *)
    t.scan_work <- t.scan_work + (e - pos)
  end;
  t.cal_size <- t.cal_size + 1;
  b

let drain_overflow_below t limit =
  while
    (not (Intheap.is_empty t.overflow)) && Intheap.min_key t.overflow < limit
  do
    let k = Intheap.min_key t.overflow in
    let v = Intheap.pop_exn t.overflow in
    ignore (insert_bucket t k v);
    (* migrations are real work: a too-narrow day that funnels everything
       through the ladder must register as scan cost, or it would evade
       the retune trigger forever *)
    t.scan_work <- t.scan_work + 1
  done

(* Drain everything into a private heap and degrade permanently. *)
let fallback t =
  let h = Intheap.create ~capacity:(max 16 (length t)) ~dummy:t.dummy () in
  for b = 0 to t.nbuckets - 1 do
    let keys = t.bkeys.(b) and data = t.bdata.(b) in
    for i = t.bstart.(b) to t.blen.(b) - 1 do
      Intheap.push h keys.(i) data.(i);
      data.(i) <- t.dummy
    done;
    t.bstart.(b) <- 0;
    t.blen.(b) <- 0
  done;
  while not (Intheap.is_empty t.overflow) do
    let k = Intheap.min_key t.overflow in
    Intheap.push h k (Intheap.pop_exn t.overflow)
  done;
  t.cal_size <- 0;
  t.cmin_valid <- false;
  t.heap <- Some h

(* Rebuild with [nb'] buckets, re-estimating the width from the live key
   span (target: ~2 events per bucket) unless [wshift] forces one.  Items
   are re-split against the new horizon, so compressing the day pushes
   far items back onto the ladder and widening it pulls them in (I1/I3). *)
let resize ?wshift:wov t nb' =
  t.nresizes <- t.nresizes + 1;
  let n = t.cal_size in
  let keys = Array.make (max n 1) 0 and data = Array.make (max n 1) t.dummy in
  let j = ref 0 in
  for b = 0 to t.nbuckets - 1 do
    let bk = t.bkeys.(b) and bd = t.bdata.(b) in
    for i = t.bstart.(b) to t.blen.(b) - 1 do
      keys.(!j) <- bk.(i);
      data.(!j) <- bd.(i);
      incr j
    done
  done;
  (* stable order statistics: equal keys keep their gather order (= FIFO
     insertion order, since equal keys share a sorted bucket run), and
     the head of the sorted sequence drives the width estimate below *)
  let idx = Array.init n (fun i -> i) in
  if n > 1 then Array.stable_sort (fun a b -> compare keys.(a) keys.(b)) idx;
  let kmin = ref max_int and kmax = ref 0 in
  if n > 0 then begin
    kmin := keys.(idx.(0));
    kmax := keys.(idx.(n - 1))
  end;
  if n >= degenerate_min_size && !kmax - !kmin < n - 1 then begin
    (* duplicate-dominated keys: bucketing cannot spread them *)
    for i = 0 to n - 1 do
      Intheap.push t.overflow keys.(i) data.(i)
    done;
    t.cal_size <- 0;
    (* live runs already summed into [keys]; reset the slabs *)
    Array.fill t.bstart 0 t.nbuckets 0;
    Array.fill t.blen 0 t.nbuckets 0;
    Array.iter (fun d -> Array.fill d 0 (Array.length d) t.dummy) t.bdata;
    fallback t
  end
  else begin
    (* Width from the mean key spacing near the HEAD of the queue, not
       over the whole span: scan cost is set by the density right at the
       minimum, where pops happen.  A global mean misreads skewed
       distributions — a dense cluster crawling through a sparse tail
       reads as sparse and keeps buckets far too wide (the tail then
       simply rides the ladder until the window reaches it, which is
       what the ladder is for).  With fewer than two keys there is no
       spacing evidence; keep the width already learned. *)
    let wshift =
      match wov with
      | Some w -> min w (60 - log2_ge nb')
      | None ->
          if n < 2 then t.wshift
          else begin
            let m = min n head_sample in
            let gap = (keys.(idx.(m - 1)) - !kmin) / (m - 1) in
            min (log2_ge (max 1 (2 * gap))) (60 - log2_ge nb')
          end
    in
    t.bkeys <- Array.make nb' [||];
    t.bdata <- Array.make nb' [||];
    t.bstart <- Array.make nb' 0;
    t.blen <- Array.make nb' 0;
    t.nbuckets <- nb';
    t.bmask <- nb' - 1;
    t.wshift <- wshift;
    t.cal_size <- 0;
    t.cmin_valid <- false;
    set_window t (if n = 0 then 0 else !kmin);
    t.horizon <- sat_add t.wstart (nb' lsl wshift);
    for j = 0 to n - 1 do
      let i = idx.(j) in
      if keys.(i) >= t.horizon then Intheap.push t.overflow keys.(i) data.(i)
      else ignore (insert_bucket t keys.(i) data.(i))
    done;
    drain_overflow_below t t.horizon
  end

let push t key v =
  if key < 0 then invalid_arg "Calqueue.push: negative key";
  match t.heap with
  | Some h -> Intheap.push h key v
  | None ->
      if t.cal_size = 0 && Intheap.is_empty t.overflow then begin
        (* empty: re-anchor the window and horizon around the new key *)
        set_window t key;
        t.horizon <- sat_add t.wstart (t.nbuckets lsl t.wshift);
        let b = insert_bucket t key v in
        t.cmin_valid <- true;
        t.cmin_bucket <- b;
        t.cmin_index <- t.bstart.(b);
        t.cmin_key <- key
      end
      else if key >= t.horizon then Intheap.push t.overflow key v
      else begin
        let b = insert_bucket t key v in
        if key < t.wstart then set_window t key;
        if t.cal_size = 1 || (t.cmin_valid && key < t.cmin_key) then begin
          (* a sole bucket item beats the whole ladder by I1; a key
             strictly below the cached minimum is below every bucket key,
             so it sits at its bucket's front (I5).  Strict <: an equal
             key keeps the older item first (FIFO). *)
          t.cmin_valid <- true;
          t.cmin_bucket <- b;
          t.cmin_index <- t.bstart.(b);
          t.cmin_key <- key
        end;
        if t.cal_size > 2 * t.nbuckets && t.nbuckets < max_buckets then
          resize t (t.nbuckets * 2)
      end

(* Jump an empty calendar to the ladder's first populated day (I3). *)
let migrate t =
  set_window t (Intheap.min_key t.overflow);
  let nh = sat_add t.wstart (t.nbuckets lsl t.wshift) in
  drain_overflow_below t nh;
  if nh > t.horizon then t.horizon <- nh

(* Step the window one bucket forward, sliding the horizon with it. *)
let advance t =
  t.wstart <- t.wstart + (1 lsl t.wshift);
  t.cur <- (t.cur + 1) land t.bmask;
  let nh = sat_add t.wstart (t.nbuckets lsl t.wshift) in
  if nh > t.horizon then begin
    drain_overflow_below t nh;
    t.horizon <- nh
  end

(* Last resort after a fruitless full lap (sparse queue after a rewind,
   or a saturated horizon): compare every bucket's front — the bucket
   minimum by I5 — and park the window on the smallest. *)
let direct_search t =
  let bb = ref (-1) and bk = ref 0 in
  for b = 0 to t.nbuckets - 1 do
    let s = Array.unsafe_get t.bstart b in
    if s < Array.unsafe_get t.blen b then begin
      let k = Array.unsafe_get (Array.unsafe_get t.bkeys b) s in
      if !bb < 0 || k < !bk then begin
        bb := b;
        bk := k
      end
    end
  done;
  t.scan_work <- t.scan_work + t.nbuckets;
  set_window t !bk;
  t.cmin_valid <- true;
  t.cmin_bucket <- !bb;
  t.cmin_index <- t.bstart.(!bb);
  t.cmin_key <- !bk

(* Ensure the cached minimum is valid.  PRE: not fallen back, non-empty.
   Only bucket fronts are inspected (I5): a front inside the window is
   the global minimum, because any smaller key would land in this same
   bucket and sort ahead of it. *)
let locate t =
  if not t.cmin_valid then begin
    if t.cal_size = 0 then migrate t;
    let width = 1 lsl t.wshift in
    let laps = ref 0 in
    while not t.cmin_valid do
      let s = Array.unsafe_get t.bstart t.cur in
      t.scan_work <- t.scan_work + 1;
      if s < Array.unsafe_get t.blen t.cur then begin
        let k = Array.unsafe_get (Array.unsafe_get t.bkeys t.cur) s in
        (* window membership via subtraction: k >= wstart by I2 *)
        if k - t.wstart < width then begin
          t.cmin_valid <- true;
          t.cmin_bucket <- t.cur;
          t.cmin_index <- s;
          t.cmin_key <- k
        end
      end;
      if not t.cmin_valid then begin
        incr laps;
        if !laps >= t.nbuckets then direct_search t else advance t
      end
    done
  end

let min_key t =
  match t.heap with
  | Some h ->
      if Intheap.is_empty h then invalid_arg "Calqueue.min_key: empty queue";
      Intheap.min_key h
  | None ->
      (* a valid cache proves non-emptiness, skipping the ladder length *)
      if not t.cmin_valid then begin
        if length t = 0 then invalid_arg "Calqueue.min_key: empty queue";
        locate t
      end;
      t.cmin_key

let pop_exn t =
  match t.heap with
  | Some h ->
      if Intheap.is_empty h then invalid_arg "Calqueue.pop_exn: empty queue";
      Intheap.pop_exn h
  | None ->
      if not t.cmin_valid then begin
        if length t = 0 then invalid_arg "Calqueue.pop_exn: empty queue";
        locate t
      end;
      let b = t.cmin_bucket in
      (* the minimum is its bucket's front (I4/I5): pop by advancing
         bstart, no shifting, so equal keys stay FIFO for free *)
      let s = Array.unsafe_get t.bstart b in
      let data = Array.unsafe_get t.bdata b in
      let v = Array.unsafe_get data s in
      Array.unsafe_set data s t.dummy;
      (if s + 1 = Array.unsafe_get t.blen b then begin
         Array.unsafe_set t.bstart b 0;
         Array.unsafe_set t.blen b 0;
         t.cmin_valid <- false
       end
       else begin
         let s' = s + 1 in
         Array.unsafe_set t.bstart b s';
         (* keep the cache warm: the new front is still the global
            minimum while it sits inside the current window — the same
            argument as [locate], any smaller key would sort ahead of it
            in this same bucket *)
         let k = Array.unsafe_get (Array.unsafe_get t.bkeys b) s' in
         if k - t.wstart < 1 lsl t.wshift then begin
           t.cmin_index <- s';
           t.cmin_key <- k
         end
         else t.cmin_valid <- false
       end);
      t.cal_size <- t.cal_size - 1;
      t.pop_count <- t.pop_count + 1;
      if t.pop_count land (fallback_window - 1) = 0 then begin
        (if t.scan_work > fallback_scan_per_pop * fallback_window then begin
           if t.retunes >= retune_limit then fallback t
           else begin
             (* costly scans often just mean the key clustering drifted
                away from the current bucket width (size-triggered resizes
                cannot see that).  The first retune re-estimates from the
                live keys; if a window is still costly the estimator is
                being fooled, so force progressively narrower buckets.
                Only a full ladder of costly windows abandons the
                calendar for the heap. *)
             t.retunes <- t.retunes + 1;
             if t.retunes = 1 then resize t t.nbuckets
             else resize ~wshift:(max 0 (t.wshift - 2)) t t.nbuckets
           end
         end
         else t.retunes <- 0);
        t.scan_work <- 0
      end;
      (* shrink with hysteresis: halving at <1/4 occupancy lands at ~1/2,
         comfortably clear of both the shrink and grow (>2) triggers, so a
         queue oscillating around a boundary never thrashes resizes.
         Re-match on [heap]: the window check just above may have taken
         the fallback. *)
      (match t.heap with
      | None when 4 * t.cal_size < t.nbuckets && t.nbuckets > min_buckets ->
          resize t (t.nbuckets / 2)
      | _ -> ());
      v

let clear t =
  (match t.heap with Some h -> Intheap.clear h | None -> ());
  for b = 0 to t.nbuckets - 1 do
    Array.fill t.bdata.(b) t.bstart.(b) (t.blen.(b) - t.bstart.(b)) t.dummy;
    t.bstart.(b) <- 0;
    t.blen.(b) <- 0
  done;
  Intheap.clear t.overflow;
  t.cal_size <- 0;
  t.cmin_valid <- false;
  t.scan_work <- 0;
  t.pop_count <- 0;
  t.retunes <- 0
