(* Counters are interned cells: each key maps to one mutable record that
   callers may pre-resolve once ([counter]) and bump in O(1) with no string
   hashing on the hot path.  A cell only becomes visible in [counters] /
   [merge_into] / [pp] once it has been written ([touched]), so
   pre-resolving a counter that never fires leaves reports unchanged. *)

type counter = { mutable v : int; mutable touched : bool }

type t = {
  label : string;
  cells : (string, counter) Hashtbl.t;
  maxima : (string, unit) Hashtbl.t; (* keys merged with [max] rather than [+] *)
}

let create label = { label; cells = Hashtbl.create 32; maxima = Hashtbl.create 4 }

let name t = t.label

let counter t key =
  match Hashtbl.find_opt t.cells key with
  | Some c -> c
  | None ->
      let c = { v = 0; touched = false } in
      Hashtbl.add t.cells key c;
      c

module Counter = struct
  let incr c =
    c.v <- c.v + 1;
    c.touched <- true

  let add c n =
    c.v <- c.v + n;
    c.touched <- true

  let set c v =
    c.v <- v;
    c.touched <- true

  let get c = c.v
end

let get t key =
  match Hashtbl.find_opt t.cells key with Some c -> c.v | None -> 0

let add t key n = Counter.add (counter t key) n

let incr t key = Counter.incr (counter t key)

let set_max t key v =
  Hashtbl.replace t.maxima key ();
  let c = counter t key in
  if v > c.v then Counter.set c v

let observe t key v =
  incr t (key ^ ".count");
  add t (key ^ ".sum") v;
  let kmin = key ^ ".min" and kmax = key ^ ".max" in
  Hashtbl.replace t.maxima kmax ();
  let cmin = counter t kmin in
  if not cmin.touched || v < cmin.v then Counter.set cmin v;
  let cmax = counter t kmax in
  if v > cmax.v then Counter.set cmax v

let mean t key =
  let count = get t (key ^ ".count") in
  if count = 0 then 0.0 else float_of_int (get t (key ^ ".sum")) /. float_of_int count

let counters t =
  Hashtbl.fold (fun k c acc -> if c.touched then (k, c.v) :: acc else acc)
    t.cells []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge_into ~dst src =
  Hashtbl.iter
    (fun k c ->
      if c.touched then
        if Hashtbl.mem src.maxima k then set_max dst k c.v else add dst k c.v)
    src.cells

let reset t =
  (* interned cells stay valid across a reset: zero them in place *)
  Hashtbl.iter
    (fun _ c ->
      c.v <- 0;
      c.touched <- false)
    t.cells;
  Hashtbl.reset t.maxima

let pp ppf t =
  Format.fprintf ppf "@[<v2>%s:" t.label;
  List.iter (fun (k, v) -> Format.fprintf ppf "@,%-40s %d" k v) (counters t);
  Format.fprintf ppf "@]"
