(** Named counters and simple distributions.

    Every subsystem (caches, network, NP, protocols) owns a [Stats.t] group;
    the harness merges and reports them per run.  Hot callers should resolve
    a {!counter} cell once at install time and bump it through {!Counter} —
    an O(1) field update with no string hashing per event.  The string-keyed
    functions remain for cold paths and reporting. *)

type t

type counter
(** An interned counter cell: one mutable int bound to a key of its group.
    Cells stay valid across {!reset} (they read as 0 again). *)

val create : string -> t
(** [create name] is an empty counter group labelled [name]. *)

val name : t -> string

val counter : t -> string -> counter
(** [counter t key] interns [key] and returns its cell.  Until first written
    through {!Counter}, the cell is invisible to {!counters}, {!merge_into}
    and {!pp}, so pre-resolving counters never changes reports. *)

module Counter : sig
  val incr : counter -> unit

  val add : counter -> int -> unit

  val set : counter -> int -> unit

  val get : counter -> int
end

val incr : t -> string -> unit

val add : t -> string -> int -> unit

val get : t -> string -> int
(** Missing counters read as 0. *)

val set_max : t -> string -> int -> unit
(** Keep the maximum of the current value and the argument. *)

val observe : t -> string -> int -> unit
(** Record one sample of a distribution: tracks count, sum, min and max under
    [key ^ ".count"], [".sum"], [".min"], [".max"]. *)

val mean : t -> string -> float
(** Mean of a distribution recorded with {!observe}; 0 if empty. *)

val counters : t -> (string * int) list
(** All counters, sorted by key. *)

val merge_into : dst:t -> t -> unit
(** Add every counter of the source into [dst] (maxima are max-merged). *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit
