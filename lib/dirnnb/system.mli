(** The DirNNB baseline machine (§6): a conventional all-hardware,
    directory-based, invalidation cache-coherence system over the same
    nodes, caches and network as Typhoon.

    Shared pages live at their home node's memory; every node can access
    every shared page (hardware DSM — there are no page faults and no
    access tags).  Cache misses that a clean local access cannot satisfy
    become directory transactions, charged with Table 2's DirNNB cost
    formulas: a remote miss costs [23 + (5..16 if replacement) +
    network/directory cost + 34]; a directory operation costs [16 + 11 if a
    block is received + 5 per message sent + 11 if a block is sent]; a
    remote cache invalidation costs [8 + 5..16 if replacement]. *)

type t

val create :
  ?reliability:Tt_net.Reliable.policy -> Tt_sim.Engine.t -> Params.t -> t

val engine : t -> Tt_sim.Engine.t

val params : t -> Params.t

val nnodes : t -> int

val fabric : t -> Tt_net.Fabric.t

val net : t -> Tt_net.Reliable.t

val map_shared_page : t -> vpage:int -> home:int -> unit
(** Allocate the backing page at [home] and record the global translation.
    Pages are placed by the allocator (round-robin by default, matching the
    paper's "no careful data placement" setup). *)

val page_home : t -> vpage:int -> int
(** @raise Invalid_argument for an unallocated page. *)

val alloc :
  t -> th:Tt_sim.Thread.t -> node:int -> ?home:int -> ?align:int ->
  bytes:int -> unit -> int
(** Bump allocator over the shared segment with round-robin page placement —
    the same placement policy as Stache's allocator, so both systems see
    identical data layouts for identical allocation sequences. *)

val home_mem : t -> int -> Tt_mem.Pagemem.t

val cpu_cache : t -> int -> Tt_cache.Cache.t

val directory : t -> int -> Directory.t
(** Home directory of a node (for tests and invariant checks). *)

val node_stats : t -> int -> Tt_util.Stats.t
(** Counters: [accesses], [local_misses], [remote_misses], [upgrades],
    [invals_received], [writebacks], [recalls]. *)

val merged_stats : t -> Tt_util.Stats.t

val delivered : t -> int
(** Protocol messages executed across all directory controllers — the
    delivery-progress metric the {!Tt_harness.Watchdog} no-progress budget
    watches. *)

val queue_summary : t -> string
(** One-line controller-inbox occupancy summary for watchdog
    diagnostics. *)

val cpu_access :
  t -> node:int -> Tt_sim.Thread.t -> Tt_mem.Tag.access -> int -> unit

val cpu_read_f64 : t -> node:int -> Tt_sim.Thread.t -> int -> float

val cpu_write_f64 : t -> node:int -> Tt_sim.Thread.t -> int -> float -> unit

val cpu_read_int : t -> node:int -> Tt_sim.Thread.t -> int -> int

val cpu_write_int : t -> node:int -> Tt_sim.Thread.t -> int -> int -> unit

val check_invariants : t -> (unit, string) result
(** Protocol invariants over all directories and caches: at most one owner,
    owner excludes sharers, an exclusively-cached line is registered at the
    directory, no transaction left pending.  Intended for quiescent points
    (barriers, end of run). *)

(** {2 Crash-stop recovery}

    The hardware-protocol counterpart of {!Tt_stache}'s recovery entry
    points, driven by the same {!Tt_harness.Recovery} layer.  DirNNB's
    write-through-for-values model makes the split simple: a dead sharer
    or owner loses only directory bookkeeping (values are canonical at
    home memory); only pages homed on the victim lose content and need
    the checkpoint. *)

val set_is_dead : t -> (int -> bool) -> unit
(** Install the liveness verdict.  Besides the repair passes, the grant
    path consults it: a transaction whose requester died completes to an
    idle state instead of granting ownership into the void. *)

val set_on_dirty : t -> (vpage:int -> unit) option -> unit
(** Write observer for checkpoint dirty tracking, fired on every CPU
    store (all of which land in home memory).  Pure bookkeeping: charges
    no simulated cycles. *)

val noop_handler : int
(** Handler id of the recovery no-op sink — the rewrite target for
    {!Tt_net.Reliable.scrub_unacked}. *)

val snapshot_page : t -> vpage:int -> Bytes.t option
(** Checkpoint assist: a copy of [vpage]'s canonical content from home
    memory (always authoritative on DirNNB — every store lands there), or
    [None] for an unallocated page.  Zero simulated cost. *)

val on_node_death :
  t -> dead:int -> new_home:int -> restore:(vpage:int -> Bytes.t option) ->
  unit
(** Repair after [dead]'s confirmed crash: drop its cache lines, re-home
    its pages to [new_home] (content from [restore ~vpage], which must be
    [None] unless the page is provably clean since its last snapshot;
    directory rebuilt from the survivors' cache states), purge it from
    surviving directories (sharer bits, owed acks, stuck recalls, parked
    requests), and re-issue survivors' outstanding misses whose home
    died.
    @raise Tt_net.Faults.Unrecoverable when a re-homed page has no clean
    checkpoint — the caller must roll back. *)

val on_node_rejoin : t -> node:int -> unit
(** The victim resumed heartbeating: clear its stale writeback
    bookkeeping and re-send its outstanding misses to each block's
    current home.  Call after the transport scrub and replay
    ({!Tt_net.Reliable.on_peer_alive}). *)
