(** The DirNNB baseline machine (§6): a conventional all-hardware,
    directory-based, invalidation cache-coherence system over the same
    nodes, caches and network as Typhoon.

    Shared pages live at their home node's memory; every node can access
    every shared page (hardware DSM — there are no page faults and no
    access tags).  Cache misses that a clean local access cannot satisfy
    become directory transactions, charged with Table 2's DirNNB cost
    formulas: a remote miss costs [23 + (5..16 if replacement) +
    network/directory cost + 34]; a directory operation costs [16 + 11 if a
    block is received + 5 per message sent + 11 if a block is sent]; a
    remote cache invalidation costs [8 + 5..16 if replacement]. *)

type t

val create :
  ?reliability:Tt_net.Reliable.policy -> Tt_sim.Engine.t -> Params.t -> t

val engine : t -> Tt_sim.Engine.t

val params : t -> Params.t

val nnodes : t -> int

val fabric : t -> Tt_net.Fabric.t

val net : t -> Tt_net.Reliable.t

val map_shared_page : t -> vpage:int -> home:int -> unit
(** Allocate the backing page at [home] and record the global translation.
    Pages are placed by the allocator (round-robin by default, matching the
    paper's "no careful data placement" setup). *)

val page_home : t -> vpage:int -> int
(** @raise Invalid_argument for an unallocated page. *)

val alloc :
  t -> th:Tt_sim.Thread.t -> node:int -> ?home:int -> ?align:int ->
  bytes:int -> unit -> int
(** Bump allocator over the shared segment with round-robin page placement —
    the same placement policy as Stache's allocator, so both systems see
    identical data layouts for identical allocation sequences. *)

val home_mem : t -> int -> Tt_mem.Pagemem.t

val cpu_cache : t -> int -> Tt_cache.Cache.t

val directory : t -> int -> Directory.t
(** Home directory of a node (for tests and invariant checks). *)

val node_stats : t -> int -> Tt_util.Stats.t
(** Counters: [accesses], [local_misses], [remote_misses], [upgrades],
    [invals_received], [writebacks], [recalls]. *)

val merged_stats : t -> Tt_util.Stats.t

val delivered : t -> int
(** Protocol messages executed across all directory controllers — the
    delivery-progress metric the {!Tt_harness.Watchdog} no-progress budget
    watches. *)

val queue_summary : t -> string
(** One-line controller-inbox occupancy summary for watchdog
    diagnostics. *)

val cpu_access :
  t -> node:int -> Tt_sim.Thread.t -> Tt_mem.Tag.access -> int -> unit

val cpu_read_f64 : t -> node:int -> Tt_sim.Thread.t -> int -> float

val cpu_write_f64 : t -> node:int -> Tt_sim.Thread.t -> int -> float -> unit

val cpu_read_int : t -> node:int -> Tt_sim.Thread.t -> int -> int

val cpu_write_int : t -> node:int -> Tt_sim.Thread.t -> int -> int -> unit

val check_invariants : t -> (unit, string) result
(** Protocol invariants over all directories and caches: at most one owner,
    owner excludes sharers, an exclusively-cached line is registered at the
    directory, no transaction left pending.  Intended for quiescent points
    (barriers, end of run). *)
