module Engine = Tt_sim.Engine
module Thread = Tt_sim.Thread
module Addr = Tt_mem.Addr
module Tag = Tt_mem.Tag
module Pagemem = Tt_mem.Pagemem
module Tlb = Tt_mem.Tlb
module Cache = Tt_cache.Cache
module Message = Tt_net.Message
module Fabric = Tt_net.Fabric
module Reliable = Tt_net.Reliable
module Stats = Tt_util.Stats
module Bitset = Tt_util.Bitset

(* Per-block protocol trace (TT_DEBUG_BLOCK = global block number). *)
let dbg block fmt = Tt_util.Debug.log ~key:block fmt

(* Message vocabulary of the hardware protocol. *)
let h_read = 0 (* requester -> home: read miss          args [block]        *)

let h_readex = 1 (* requester -> home: write miss       args [block]        *)

let h_upgrade = 2 (* requester -> home: upgrade          args [block]        *)

let h_recall = 3 (* home -> owner                       args [block; ex?]   *)

let h_inval = 4 (* home -> sharer                       args [block]        *)

let h_recall_data = 5 (* owner -> home                  args [block] + data *)

let h_inval_ack = 6 (* sharer -> home                   args [block]        *)

let h_data = 7 (* home -> requester                     args [block; ex?] + data *)

let h_upgrade_ok = 8 (* home -> requester               args [block]        *)

let h_writeback = 9 (* evictor -> home                  args [block] + data *)

let h_noop = 10 (* recovery sink: scrub target for crash-era held messages *)

(* Fill grants delivered back to a stalled CPU. *)
let grant_shared = 0

let grant_exclusive = 1

let grant_upgrade = 2

(* A minimal run-to-completion controller: the hardware directory engine of
   one node.  Same sequencing discipline as the Typhoon NP but fixed
   function. *)
module Ctrl = struct
  (* The inbox is a circular ring (power-of-two capacity) and the dispatch
     event is one preallocated closure, so accepting and draining protocol
     messages allocates nothing.  Messages are released back to their pool
     after the handler runs — protocol handlers may not retain them. *)
  type t = {
    engine : Engine.t;
    mutable clock : int;
    mutable busy : bool;
    mutable ring : Message.t array;
    mutable head : int;
    mutable count : int;
    mutable handled : int;
    mutable exec : Message.t -> unit;
    mutable self : unit -> unit;
  }

  let charge t n = t.clock <- t.clock + n

  let grow t =
    let cap = Array.length t.ring in
    let ncap = if cap = 0 then 16 else 2 * cap in
    let ring = Array.make ncap Message.dummy in
    for i = 0 to t.count - 1 do
      ring.(i) <- t.ring.((t.head + i) land (cap - 1))
    done;
    t.ring <- ring;
    t.head <- 0

  let rec dispatch t () =
    if t.count = 0 then t.busy <- false
    else begin
      let msg = t.ring.(t.head) in
      t.ring.(t.head) <- Message.dummy;
      t.head <- (t.head + 1) land (Array.length t.ring - 1);
      t.count <- t.count - 1;
      t.handled <- t.handled + 1;
      t.exec msg;
      Message.Pool.release msg;
      (* keep draining inline while no engine event is due at or before the
         controller clock; [skip_to] makes this observably identical to
         rescheduling one event per message (see Np.dispatch) *)
      if Engine.next_event_time t.engine > t.clock then begin
        Engine.skip_to t.engine t.clock;
        dispatch t ()
      end
      else Engine.at t.engine t.clock t.self
    end

  let create engine =
    let t =
      { engine; clock = 0; busy = false; ring = [||]; head = 0; count = 0;
        handled = 0;
        exec = (fun _ -> invalid_arg "Ctrl: exec not installed");
        self = (fun () -> ()) }
    in
    t.self <- dispatch t;
    t

  let post t msg =
    if t.count = Array.length t.ring then grow t;
    t.ring.((t.head + t.count) land (Array.length t.ring - 1)) <- msg;
    t.count <- t.count + 1;
    if not t.busy then begin
      t.busy <- true;
      t.clock <- max t.clock (Engine.now t.engine);
      Engine.at t.engine t.clock t.self
    end
end

type node = {
  id : int;
  mem : Pagemem.t; (* backing store for pages homed here *)
  tlb : Tlb.t;
  cache : Cache.t;
  ctrl : Ctrl.t;
  dir : Directory.t;
  stats : Stats.t;
  (* hot-path counters, pre-resolved from [stats] at create time *)
  c_accesses : Stats.counter;
  c_upgrades : Stats.counter;
  c_local_misses : Stats.counter;
  c_remote_misses : Stats.counter;
  c_local_protocol_misses : Stats.counter;
  c_invals_received : Stats.counter;
  c_writebacks : Stats.counter;
  c_recalls : Stats.counter;
  (* blocks with an outstanding miss: wake the CPU, passing the replacement
     cycles the fill incurred *)
  pending : (int, int -> unit) Hashtbl.t;
  (* which request handler each outstanding miss used, so crash recovery
     can re-issue a request whose home (or response) died with a node *)
  pending_kind : (int, int) Hashtbl.t;
  (* writebacks of ours the home has not yet processed; the CPU must not
     take the directory fast path for such a block or a stale writeback
     would clear ownership it just re-acquired *)
  wb_inflight : (int, int) Hashtbl.t;
}

type t = {
  engine : Engine.t;
  params : Params.t;
  fabric : Fabric.t;
  net : Reliable.t;
  nodes : node array;
  homes : (int, int) Hashtbl.t; (* vpage -> home node *)
  mutable alloc_cursor : int;
  mutable next_home : int;
  (* crash-stop recovery: the liveness verdict, and the write observer for
     checkpoint dirty tracking (every store lands in home memory, so one
     callback site per typed store covers all value mutation) *)
  mutable is_dead : int -> bool;
  mutable on_dirty : (vpage:int -> unit) option;
}

let engine t = t.engine

let params t = t.params

let nnodes t = Array.length t.nodes

let fabric t = t.fabric

let net t = t.net

let home_mem t i = t.nodes.(i).mem

let cpu_cache t i = t.nodes.(i).cache

let directory t i = t.nodes.(i).dir

let node_stats t i = t.nodes.(i).stats

let page_home t ~vpage =
  match Hashtbl.find_opt t.homes vpage with
  | Some h -> h
  | None ->
      invalid_arg (Printf.sprintf "Dirnnb: vpage 0x%x is not allocated" vpage)

let map_shared_page t ~vpage ~home =
  if Hashtbl.mem t.homes vpage then
    invalid_arg (Printf.sprintf "Dirnnb: vpage 0x%x already allocated" vpage);
  Hashtbl.replace t.homes vpage home;
  ignore
    (Pagemem.map t.nodes.(home).mem ~vpage ~home ~mode:0
       ~init_tag:Tag.Read_write)

let block_data = Bytes.make Addr.block_size '\000'
(* Data payloads are pure word accounting in DirNNB: values are canonical at
   the home memory (write-through-for-values model, DESIGN.md §4). *)

let send t ~src ~at ~dst ~vnet ~handler ~args ~with_data =
  let data = if with_data then block_data else Bytes.empty in
  Reliable.send t.net ~at
    (Message.Pool.acquire_raw ~src ~dst ~vnet ~handler ~args ~data)

(* Arity-specific wrappers filling a shared scratch array, so protocol
   sends build no [| ... |] literal per message ([Pool.acquire] copies the
   scratch synchronously). *)
let send1 t ~src ~at ~dst ~vnet ~handler ~with_data a0 =
  let args = Message.Pool.scratch 1 in
  args.(0) <- a0;
  send t ~src ~at ~dst ~vnet ~handler ~args ~with_data

let send2 t ~src ~at ~dst ~vnet ~handler ~with_data a0 a1 =
  let args = Message.Pool.scratch 2 in
  args.(0) <- a0;
  args.(1) <- a1;
  send t ~src ~at ~dst ~vnet ~handler ~args ~with_data

(* Eviction of an exclusively-held line: hardware writeback to home. *)
let writeback t node ~at block =
  dbg block "t=%d writeback from node=%d" at node.id;
  Stats.Counter.incr node.c_writebacks;
  Hashtbl.replace node.wb_inflight block
    (1 + Option.value ~default:0 (Hashtbl.find_opt node.wb_inflight block));
  let home = page_home t ~vpage:(block * Addr.block_size / Addr.page_size) in
  send1 t ~src:node.id ~at ~dst:home ~vnet:Message.Request
    ~handler:h_writeback ~with_data:true block

(* Fill a granted line at the requesting node's controller; returns the
   replacement cost (charged to the CPU when it resumes). *)
let ctrl_fill t node block grant =
  dbg block "t=%d fill node=%d grant=%d" node.ctrl.Ctrl.clock node.id grant;
  let state =
    if grant = grant_shared then Cache.Shared else Cache.Exclusive
  in
  if grant = grant_upgrade && Cache.probe node.cache ~block <> None then begin
    Cache.set_state node.cache ~block Cache.Exclusive;
    0
  end
  else
    match Cache.insert node.cache ~block ~state with
    | None -> 0
    | Some (victim, Cache.Shared) ->
        ignore victim;
        t.params.Params.repl_shared
    | Some (victim, Cache.Exclusive) ->
        writeback t node ~at:node.ctrl.Ctrl.clock victim;
        t.params.Params.repl_exclusive

(* Deliver a fill grant to the requester.  When the requester is the home
   node itself the grant is applied synchronously (the local cache fills as
   part of the bus transaction); a self-message would leave a window in
   which a drained queued request sees a cache state older than the
   directory state. *)
let deliver_grant t home ~requester block grant =
  let p = t.params in
  let ctrl = home.ctrl in
  let with_data = grant <> grant_upgrade in
  Ctrl.charge ctrl
    (p.Params.dir_per_msg + if with_data then p.Params.dir_block_send else 0);
  if requester = home.id then begin
    match Hashtbl.find_opt home.pending block with
    | Some wake ->
        Hashtbl.remove home.pending block;
        Hashtbl.remove home.pending_kind block;
        let repl = ctrl_fill t home block grant in
        wake repl
    | None ->
        invalid_arg
          (Printf.sprintf "Dirnnb: home %d self-grant for 0x%x with no miss"
             home.id block)
  end
  else if grant = grant_upgrade then
    send1 t ~src:home.id ~at:ctrl.Ctrl.clock ~dst:requester
      ~vnet:Message.Response ~handler:h_upgrade_ok ~with_data:false block
  else
    send2 t ~src:home.id ~at:ctrl.Ctrl.clock ~dst:requester
      ~vnet:Message.Response ~handler:h_data ~with_data:true block
      (if grant = grant_exclusive then 1 else 0)

(* Register a sharer, honouring the limited-pointer ablation: past the
   pointer limit the entry degrades to "broadcast on invalidation". *)
let note_sharer t home (entry : Directory.entry) requester =
  Bitset.add entry.Directory.sharers requester;
  match t.params.Params.dir_limited_pointers with
  | Some limit when Bitset.cardinal entry.Directory.sharers > limit ->
      if not entry.Directory.overflowed then begin
        entry.Directory.overflowed <- true;
        Stats.incr home.stats "dir_overflows"
      end
  | Some _ | None -> ()

(* The nodes an exclusive grant must invalidate: the precise sharer list,
   or everybody when pointer overflow lost the information. *)
let inval_victims t home (entry : Directory.entry) ~requester =
  if entry.Directory.overflowed then begin
    Stats.incr home.stats "broadcast_invals";
    let all = ref [] in
    for n = Array.length t.nodes - 1 downto 0 do
      if n <> requester && n <> home.id then all := n :: !all
    done;
    !all
  end
  else
    List.filter (fun s -> s <> requester)
      (Bitset.to_list entry.Directory.sharers)

let clear_sharers (entry : Directory.entry) =
  Bitset.clear entry.Directory.sharers;
  entry.Directory.overflowed <- false

(* --- home-side directory transaction engine (runs in ctrl context) --- *)

let rec start_txn t home kind requester block =
  dbg block "t=%d start_txn home=%d kind=%s req=%d" home.ctrl.Ctrl.clock
    home.id
    (match kind with
    | Directory.Read -> "read"
    | Directory.Read_ex -> "readex"
    | Directory.Upgrade -> "upgrade")
    requester;
  let p = t.params in
  let ctrl = home.ctrl in
  let entry = Directory.entry home.dir ~block in
  match entry.Directory.busy with
  | Some _ -> Queue.add (kind, requester) entry.Directory.waiting
  | None -> (
      let reply_data ~ex =
        deliver_grant t home ~requester block
          (if ex then grant_exclusive else grant_shared)
      in
      (* A node requesting a block it nominally owns has lost its copy (the
         writeback is ordered ahead of this request); drop the stale
         registration. *)
      (if entry.Directory.owner = Some requester then
         entry.Directory.owner <- None);
      (* Copies in the home node's own cache are flushed by a local bus
         transaction (cache-to-cache / snoop), not by network messages. *)
      (if entry.Directory.owner = Some home.id && requester <> home.id then begin
         Ctrl.charge ctrl (p.Params.remote_inval + p.Params.repl_exclusive);
         (match kind with
         | Directory.Read ->
             Cache.downgrade home.cache ~block;
             Bitset.add entry.Directory.sharers home.id
         | Directory.Read_ex | Directory.Upgrade ->
             ignore (Cache.invalidate home.cache ~block));
         entry.Directory.owner <- None
       end);
      (match kind with
      | Directory.Read_ex | Directory.Upgrade ->
          if
            requester <> home.id
            && Bitset.mem entry.Directory.sharers home.id
          then begin
            Ctrl.charge ctrl (p.Params.remote_inval + p.Params.repl_shared);
            ignore (Cache.invalidate home.cache ~block);
            Bitset.remove entry.Directory.sharers home.id
          end
      | Directory.Read -> ());
      match kind with
      | Directory.Read -> (
          match entry.Directory.owner with
          | Some o when o <> requester ->
              Stats.Counter.incr home.c_recalls;
              entry.Directory.busy <-
                Some { Directory.kind; requester; acks_left = 1 };
              Ctrl.charge ctrl p.Params.dir_per_msg;
              send2 t ~src:home.id ~at:ctrl.Ctrl.clock ~dst:o
                ~vnet:Message.Request ~handler:h_recall ~with_data:false block
                0
          | Some _ | None ->
              note_sharer t home entry requester;
              reply_data ~ex:false)
      | Directory.Read_ex -> (
          match entry.Directory.owner with
          | Some o when o <> requester ->
              Stats.Counter.incr home.c_recalls;
              entry.Directory.busy <-
                Some { Directory.kind; requester; acks_left = 1 };
              Ctrl.charge ctrl p.Params.dir_per_msg;
              send2 t ~src:home.id ~at:ctrl.Ctrl.clock ~dst:o
                ~vnet:Message.Request ~handler:h_recall ~with_data:false block
                1
          | Some _ | None ->
              let victims = inval_victims t home entry ~requester in
              if victims = [] then begin
                entry.Directory.owner <- Some requester;
                clear_sharers entry;
                reply_data ~ex:true
              end
              else begin
                entry.Directory.busy <-
                  Some
                    { Directory.kind; requester;
                      acks_left = List.length victims };
                List.iter
                  (fun s ->
                    Ctrl.charge ctrl p.Params.dir_per_msg;
                    send1 t ~src:home.id ~at:ctrl.Ctrl.clock ~dst:s
                      ~vnet:Message.Request ~handler:h_inval
                      ~with_data:false block)
                  victims
              end)
      | Directory.Upgrade ->
          if
            (not (Bitset.mem entry.Directory.sharers requester))
            && not entry.Directory.overflowed
          then
            (* stale upgrade (our copy was invalidated or silently evicted
               while the request was in flight): serve a full write miss *)
            start_txn t home Directory.Read_ex requester block
          else begin
            let victims = inval_victims t home entry ~requester in
            if victims = [] then begin
              entry.Directory.owner <- Some requester;
              clear_sharers entry;
              deliver_grant t home ~requester block grant_upgrade
            end
            else begin
              entry.Directory.busy <-
                Some
                  { Directory.kind; requester; acks_left = List.length victims };
              List.iter
                (fun s ->
                  Ctrl.charge ctrl p.Params.dir_per_msg;
                  send1 t ~src:home.id ~at:ctrl.Ctrl.clock ~dst:s
                    ~vnet:Message.Request ~handler:h_inval ~with_data:false
                    block)
                victims
            end
          end)

let complete_txn t home block =
  let entry = Directory.entry home.dir ~block in
  entry.Directory.busy <- None;
  (* Drain queued requests: each may be granted immediately (leaving the
     entry idle) or start a new recall/invalidation round (re-setting busy,
     which stops the loop). *)
  let rec drain () =
    if entry.Directory.busy = None then
      match Queue.take_opt entry.Directory.waiting with
      | None -> ()
      | Some (kind, requester) ->
          Ctrl.charge home.ctrl t.params.Params.dir_op;
          start_txn t home kind requester block;
          drain ()
  in
  drain ()

let finish_txn t home block (txn : Directory.txn) =
  dbg block "t=%d finish_txn home=%d req=%d" home.ctrl.Ctrl.clock home.id
    txn.Directory.requester;
  let entry = Directory.entry home.dir ~block in
  if t.is_dead txn.Directory.requester then begin
    (* the requester died mid-transaction: the conflicting copies are gone
       (or going), so complete to a quiescent idle state instead of
       granting ownership into the void *)
    (match txn.Directory.kind with
    | Directory.Read ->
        (match entry.Directory.owner with
        | Some o when not (t.is_dead o) -> Bitset.add entry.Directory.sharers o
        | Some _ | None -> ());
        entry.Directory.owner <- None
    | Directory.Read_ex | Directory.Upgrade ->
        entry.Directory.owner <- None;
        clear_sharers entry);
    complete_txn t home block
  end
  else begin
  (match txn.Directory.kind with
  | Directory.Read ->
      (* old owner (if any) keeps a shared copy; requester joins *)
      (match entry.Directory.owner with
      | Some o -> Bitset.add entry.Directory.sharers o
      | None -> ());
      entry.Directory.owner <- None;
      note_sharer t home entry txn.Directory.requester;
      deliver_grant t home ~requester:txn.Directory.requester block
        grant_shared
  | Directory.Read_ex ->
      entry.Directory.owner <- Some txn.Directory.requester;
      clear_sharers entry;
      deliver_grant t home ~requester:txn.Directory.requester block
        grant_exclusive
  | Directory.Upgrade ->
      entry.Directory.owner <- Some txn.Directory.requester;
      clear_sharers entry;
      deliver_grant t home ~requester:txn.Directory.requester block
        grant_upgrade);
  complete_txn t home block
  end

let ctrl_exec t node msg =
  let p = t.params in
  let ctrl = node.ctrl in
  let args = msg.Message.args in
  let block = args.(0) in
  let handler = msg.Message.handler in
  dbg block "t=%d ctrl%d handler=%d src=%d" ctrl.Ctrl.clock node.id handler
    msg.Message.src;
  if handler = h_read || handler = h_readex || handler = h_upgrade then begin
    Ctrl.charge ctrl p.Params.dir_op;
    let kind =
      if handler = h_read then Directory.Read
      else if handler = h_readex then Directory.Read_ex
      else Directory.Upgrade
    in
    start_txn t node kind msg.Message.src block
  end
  else if handler = h_recall then begin
    (* we are the (former) owner: flush our copy and answer home *)
    Stats.Counter.incr node.c_invals_received;
    let ex = args.(1) = 1 in
    let present = Cache.probe node.cache ~block <> None in
    Ctrl.charge ctrl
      (p.Params.remote_inval
      + (if present then p.Params.repl_exclusive else 0));
    if present then
      if ex then ignore (Cache.invalidate node.cache ~block)
      else Cache.downgrade node.cache ~block;
    Ctrl.charge ctrl p.Params.dir_per_msg;
    send1 t ~src:node.id ~at:ctrl.Ctrl.clock ~dst:msg.Message.src
      ~vnet:Message.Response ~handler:h_recall_data ~with_data:present block
  end
  else if handler = h_inval then begin
    Stats.Counter.incr node.c_invals_received;
    let present = Cache.probe node.cache ~block <> None in
    Ctrl.charge ctrl
      (p.Params.remote_inval + (if present then p.Params.repl_shared else 0));
    ignore (Cache.invalidate node.cache ~block);
    Ctrl.charge ctrl p.Params.dir_per_msg;
    send1 t ~src:node.id ~at:ctrl.Ctrl.clock ~dst:msg.Message.src
      ~vnet:Message.Response ~handler:h_inval_ack ~with_data:false block
  end
  else if handler = h_recall_data then begin
    Ctrl.charge ctrl (p.Params.dir_op + p.Params.dir_block_recv);
    let entry = Directory.entry node.dir ~block in
    match entry.Directory.busy with
    | Some txn -> finish_txn t node block txn
    | None -> () (* stale recall answer after a writeback raced it *)
  end
  else if handler = h_inval_ack then begin
    Ctrl.charge ctrl p.Params.dir_op;
    let entry = Directory.entry node.dir ~block in
    match entry.Directory.busy with
    | Some txn ->
        txn.Directory.acks_left <- txn.Directory.acks_left - 1;
        if txn.Directory.acks_left = 0 then finish_txn t node block txn
    | None -> ()
  end
  else if handler = h_writeback then begin
    Ctrl.charge ctrl (p.Params.dir_op + p.Params.dir_block_recv);
    let src_node = t.nodes.(msg.Message.src) in
    (match Hashtbl.find_opt src_node.wb_inflight block with
    | Some 1 -> Hashtbl.remove src_node.wb_inflight block
    | Some n -> Hashtbl.replace src_node.wb_inflight block (n - 1)
    | None -> ());
    let entry = Directory.entry node.dir ~block in
    match entry.Directory.owner with
    | Some o when o = msg.Message.src -> entry.Directory.owner <- None
    | Some _ | None -> ()
  end
  else if handler = h_data || handler = h_upgrade_ok then begin
    (* Response to our stalled CPU.  The cache controller fills the line
       here, when the reply lands — not when the CPU resumes — so a
       subsequent invalidate or recall can never slip between grant and
       fill. *)
    Ctrl.charge ctrl 1;
    match Hashtbl.find_opt node.pending block with
    | Some wake ->
        Hashtbl.remove node.pending block;
        Hashtbl.remove node.pending_kind block;
        let grant =
          if handler = h_upgrade_ok then grant_upgrade
          else if args.(1) = 1 then grant_exclusive
          else grant_shared
        in
        let repl = ctrl_fill t node block grant in
        wake repl
    | None ->
        invalid_arg
          (Printf.sprintf "Dirnnb: node %d got a fill for 0x%x with no miss"
             node.id block)
  end
  else if handler = h_noop then
    (* a crash-era message neutralized by the recovery scrub
       (Reliable.scrub_unacked): consume and discard *)
    Ctrl.charge ctrl 1
  else invalid_arg (Printf.sprintf "Dirnnb: unknown handler %d" handler)

let create ?(reliability = Reliable.Perfect) engine (p : Params.t) =
  (match Params.validate p with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Dirnnb.System.create: " ^ msg));
  let prng = Tt_util.Prng.create ~seed:p.Params.seed in
  let fabric =
    Fabric.create engine ~nodes:p.Params.nodes ~latency:p.Params.net_latency
      ?words_per_cycle:p.Params.link_words_per_cycle ()
  in
  let net = Reliable.create engine fabric reliability in
  let nodes =
    Array.init p.Params.nodes (fun id ->
        let stats = Stats.create (Printf.sprintf "node%d" id) in
        {
          id;
          mem = Pagemem.create ~node:id ();
          tlb =
            Tlb.create ~entries:p.Params.cpu_tlb_entries
              ~miss_penalty:p.Params.tlb_miss ();
          cache =
            Cache.create ~name:(Printf.sprintf "cpu%d.cache" id)
              ~size_bytes:p.Params.cpu_cache_bytes
              ~assoc:p.Params.cpu_cache_assoc
              ~prng:(Tt_util.Prng.split prng) ();
          ctrl = Ctrl.create engine;
          dir = Directory.create ~nodes:p.Params.nodes;
          stats;
          c_accesses = Stats.counter stats "accesses";
          c_upgrades = Stats.counter stats "upgrades";
          c_local_misses = Stats.counter stats "local_misses";
          c_remote_misses = Stats.counter stats "remote_misses";
          c_local_protocol_misses = Stats.counter stats "local_protocol_misses";
          c_invals_received = Stats.counter stats "invals_received";
          c_writebacks = Stats.counter stats "writebacks";
          c_recalls = Stats.counter stats "recalls";
          pending = Hashtbl.create 4;
          pending_kind = Hashtbl.create 4;
          wb_inflight = Hashtbl.create 4;
        })
  in
  let t =
    { engine; params = p; fabric; net; nodes; homes = Hashtbl.create 4096;
      alloc_cursor = 0x1000_0000; next_home = 0;
      is_dead = (fun _ -> false); on_dirty = None }
  in
  Array.iter
    (fun node ->
      node.ctrl.Ctrl.exec <- ctrl_exec t node;
      Reliable.set_receiver net ~node:node.id (fun msg ->
          Ctrl.post node.ctrl msg))
    nodes;
  t

let alloc t ~th ~node ?home ?(align = 8) ~bytes () =
  ignore node;
  if bytes <= 0 then invalid_arg "Dirnnb.alloc: non-positive size";
  if align <= 0 || align land (align - 1) <> 0 then
    invalid_arg "Dirnnb.alloc: alignment must be a power of two";
  Thread.advance th 10;
  let round_up v a = (v + a - 1) land lnot (a - 1) in
  let start = round_up t.alloc_cursor align in
  let start =
    match home, Hashtbl.find_opt t.homes (Addr.page_of start) with
    | Some h, Some existing when existing <> h ->
        round_up start Addr.page_size
    | (Some _ | None), _ -> start
  in
  let first = Addr.page_of start and last = Addr.page_of (start + bytes - 1) in
  for vpage = first to last do
    if not (Hashtbl.mem t.homes vpage) then begin
      let h =
        match home with
        | Some h -> h
        | None ->
            let h = t.next_home in
            t.next_home <- (t.next_home + 1) mod Array.length t.nodes;
            h
      in
      Thread.advance th 50;
      map_shared_page t ~vpage ~home:h
    end
  done;
  t.alloc_cursor <- start + bytes;
  start

(* ------------------------------------------------------------------ *)
(* CPU access path                                                     *)
(* ------------------------------------------------------------------ *)

let fill_after_miss t node th block state =
  match Cache.insert node.cache ~block ~state with
  | None -> ()
  | Some (victim, vstate) -> (
      match vstate with
      | Cache.Shared -> Thread.advance th t.params.Params.repl_shared
      | Cache.Exclusive ->
          Thread.advance th t.params.Params.repl_exclusive;
          writeback t node ~at:(Thread.clock th) victim)

(* Send a miss/upgrade to the home directory and stall until the fill
   grant returns.  A local-home miss that needs directory work (conflicting
   remote copies) pays the local bus cost, not the remote-miss constants. *)
let miss_via_directory t node th ~home ~handler block =
  let local = home = node.id in
  if local then begin
    Stats.Counter.incr node.c_local_protocol_misses;
    Thread.advance th 5
  end
  else begin
    Stats.Counter.incr node.c_remote_misses;
    Thread.advance th t.params.Params.remote_miss_base
  end;
  let margs = Message.Pool.scratch 1 in
  margs.(0) <- block;
  let msg =
    Message.Pool.acquire_raw ~src:node.id ~dst:home ~vnet:Message.Request
      ~handler ~args:margs ~data:Bytes.empty
  in
  let repl =
    Thread.await th (fun wake ->
        Hashtbl.replace node.pending block (fun repl ->
            Thread.set_clock th
              (max (Thread.clock th) node.ctrl.Ctrl.clock);
            wake repl);
        Hashtbl.replace node.pending_kind block handler;
        Reliable.send t.net ~at:(Thread.clock th) msg)
  in
  Thread.advance th
    ((if local then t.params.Params.local_miss
      else t.params.Params.remote_miss_finish)
    + repl)

let cpu_access t ~node th access vaddr =
  let n = t.nodes.(node) in
  Stats.Counter.incr n.c_accesses;
  Thread.maybe_yield th;
  Thread.advance th 1;
  let vpage = Addr.page_of vaddr in
  Thread.advance th (Tlb.access n.tlb vpage);
  let home_id = page_home t ~vpage in
  let home = t.nodes.(home_id) in
  let block = Addr.block_of vaddr in
  let local = home_id = node in
  let entry_free entry =
    entry.Directory.busy = None && not (Hashtbl.mem n.wb_inflight block)
  in
  match Cache.lookup n.cache ~block with
  | Some Cache.Exclusive -> ()
  | Some Cache.Shared when access = Tag.Load -> ()
  | Some Cache.Shared ->
      (* upgrade *)
      Stats.Counter.incr n.c_upgrades;
      let entry = Directory.entry home.dir ~block in
      let others =
        List.filter (fun s -> s <> node) (Bitset.to_list entry.Directory.sharers)
      in
      if
        local && entry_free entry && others = []
        && entry.Directory.owner = None
        && not entry.Directory.overflowed
      then begin
        dbg block "t=%d cpu%d fastpath-upgrade" (Thread.clock th) node;
        Thread.advance th t.params.Params.upgrade;
        entry.Directory.owner <- Some node;
        Bitset.clear entry.Directory.sharers;
        Cache.set_state n.cache ~block Cache.Exclusive
      end
      else miss_via_directory t n th ~home:home_id ~handler:h_upgrade block
  | None -> (
      let entry = Directory.entry home.dir ~block in
      match access with
      | Tag.Load ->
          let conflict =
            match entry.Directory.owner with
            | Some o -> o <> node
            | None -> false
          in
          if local && entry_free entry && not conflict then begin
            dbg block "t=%d cpu%d fastpath-load" (Thread.clock th) node;
            Stats.Counter.incr n.c_local_misses;
            Thread.advance th t.params.Params.local_miss;
            let others =
              List.filter (fun s -> s <> node)
                (Bitset.to_list entry.Directory.sharers)
            in
            let state =
              if
                others = [] && entry.Directory.owner = None
                && not entry.Directory.overflowed
              then Cache.Exclusive
              else Cache.Shared
            in
            if state = Cache.Exclusive then begin
              entry.Directory.owner <- Some node;
              Bitset.clear entry.Directory.sharers
            end
            else note_sharer t n entry node;
            fill_after_miss t n th block state
          end
          else miss_via_directory t n th ~home:home_id ~handler:h_read block
      | Tag.Store ->
          let others =
            List.filter (fun s -> s <> node)
              (Bitset.to_list entry.Directory.sharers)
          in
          let conflict =
            others <> [] || entry.Directory.overflowed
            ||
            match entry.Directory.owner with
            | Some o -> o <> node
            | None -> false
          in
          if local && entry_free entry && not conflict then begin
            dbg block "t=%d cpu%d fastpath-store" (Thread.clock th) node;
            Stats.Counter.incr n.c_local_misses;
            Thread.advance th t.params.Params.local_miss;
            entry.Directory.owner <- Some node;
            clear_sharers entry;
            fill_after_miss t n th block Cache.Exclusive
          end
          else miss_via_directory t n th ~home:home_id ~handler:h_readex block)

let cpu_read_f64 t ~node th vaddr =
  cpu_access t ~node th Tag.Load vaddr;
  Pagemem.read_f64 t.nodes.(page_home t ~vpage:(Addr.page_of vaddr)).mem ~vaddr

let cpu_write_f64 t ~node th vaddr v =
  cpu_access t ~node th Tag.Store vaddr;
  (match t.on_dirty with
  | Some f -> f ~vpage:(Addr.page_of vaddr)
  | None -> ());
  Pagemem.write_f64 t.nodes.(page_home t ~vpage:(Addr.page_of vaddr)).mem ~vaddr
    v

let cpu_read_int t ~node th vaddr =
  cpu_access t ~node th Tag.Load vaddr;
  Pagemem.read_int t.nodes.(page_home t ~vpage:(Addr.page_of vaddr)).mem ~vaddr

let cpu_write_int t ~node th vaddr v =
  cpu_access t ~node th Tag.Store vaddr;
  (match t.on_dirty with
  | Some f -> f ~vpage:(Addr.page_of vaddr)
  | None -> ());
  Pagemem.write_int t.nodes.(page_home t ~vpage:(Addr.page_of vaddr)).mem ~vaddr
    v

(* ------------------------------------------------------------------ *)
(* Crash-stop recovery                                                 *)
(* ------------------------------------------------------------------ *)

let set_is_dead t f = t.is_dead <- f

let set_on_dirty t f = t.on_dirty <- f

let noop_handler = h_noop

(* Checkpoint assist: a copy of [vpage]'s canonical content.  Home memory
   is always authoritative on DirNNB (every store lands there), so this
   only fails for unallocated pages.  Zero simulated cost — the
   checkpoint copy is modeled as overlapped with the barrier. *)
let snapshot_page t ~vpage =
  match Hashtbl.find_opt t.homes vpage with
  | None -> None
  | Some home -> (
      match Pagemem.find_page t.nodes.(home).mem ~vpage with
      | None -> None
      | Some page -> Some (Bytes.copy page.Pagemem.data))

(* Repair the machine after [dead]'s confirmed crash.  DirNNB's
   write-through-for-values model shapes the split: every store already
   landed in the home node's memory, so a dead sharer or owner loses
   nothing but directory bookkeeping — only pages *homed* on the victim
   lose their canonical content, and those come back from the caller's
   checkpoint ([restore ~vpage], [None] unless provably clean since the
   snapshot) or force a rollback upstream.

   Runs synchronously at the liveness verdict (the recovery daemon is
   modeled off the critical path); repair-triggered protocol messages are
   sent at the current cycle and pay normal network and directory costs. *)
let on_node_death t ~dead ~new_home ~restore =
  let nnodes = Array.length t.nodes in
  if dead < 0 || dead >= nnodes then
    invalid_arg "Dirnnb.on_node_death: bad victim";
  if new_home = dead || new_home < 0 || new_home >= nnodes
     || t.is_dead new_home
  then invalid_arg "Dirnnb.on_node_death: bad new home";
  let live n = n <> dead && not (t.is_dead n) in
  let now = Engine.now t.engine in
  (* repair work sends messages from controller context: pull every live
     controller's clock up to the verdict so nothing is sent in the past *)
  Array.iter
    (fun n ->
      if live n.id then n.ctrl.Ctrl.clock <- max n.ctrl.Ctrl.clock now)
    t.nodes;
  let deadn = t.nodes.(dead) in

  (* --- the victim's cache contents are gone ------------------------- *)
  let dead_blocks = ref [] in
  Cache.iter deadn.cache (fun block _ -> dead_blocks := block :: !dead_blocks);
  List.iter
    (fun block -> ignore (Cache.invalidate deadn.cache ~block))
    (List.sort compare !dead_blocks);
  Hashtbl.reset deadn.wb_inflight;

  (* --- re-home pages homed on the victim ---------------------------- *)
  let dead_pages =
    List.sort compare
      (Hashtbl.fold
         (fun vpage home acc -> if home = dead then vpage :: acc else acc)
         t.homes [])
  in
  let rehomed = Hashtbl.create 16 in
  List.iter
    (fun vpage ->
      (match restore ~vpage with
      | None ->
          raise
            (Tt_net.Faults.Unrecoverable
               (Printf.sprintf
                  "dirnnb recovery: page 0x%x was homed on crashed node %d \
                   and no clean checkpoint covers it"
                  vpage dead))
      | Some bytes ->
          let page =
            Pagemem.map t.nodes.(new_home).mem ~vpage ~home:new_home ~mode:0
              ~init_tag:Tag.Read_write
          in
          Bytes.blit bytes 0 page.Tt_mem.Pagemem.data 0 Addr.page_size;
          Stats.add t.nodes.(new_home).stats "recovery.blocks_restored"
            Addr.blocks_per_page);
      Pagemem.unmap deadn.mem ~vpage;
      Hashtbl.replace t.homes vpage new_home;
      Hashtbl.replace rehomed vpage ();
      Stats.incr t.nodes.(new_home).stats "recovery.pages_rehomed";
      (* rebuild the directory from the survivors' cache states — the
         user-level equivalent of polling every live node for its copies.
         Caches hold state only (values are canonical at home memory), so
         this loses no data. *)
      for index = 0 to Addr.blocks_per_page - 1 do
        let block = (vpage * Addr.blocks_per_page) + index in
        let entry = Directory.entry t.nodes.(new_home).dir ~block in
        entry.Directory.busy <- None;
        entry.Directory.owner <- None;
        clear_sharers entry;
        Queue.clear entry.Directory.waiting;
        for n = 0 to nnodes - 1 do
          if live n then
            match Cache.probe t.nodes.(n).cache ~block with
            | Some Cache.Exclusive -> entry.Directory.owner <- Some n
            | Some Cache.Shared -> Bitset.add entry.Directory.sharers n
            | None -> ()
        done;
        (* an owner and leftover sharers cannot coexist in a rebuilt
           entry — exclusivity is cache-enforced — but a lone exclusive
           holder found here keeps ownership, which is exactly what the
           old directory knew *)
        if entry.Directory.owner <> None then clear_sharers entry
      done)
    dead_pages;

  (* --- purge the victim from surviving directories ------------------ *)
  Array.iter
    (fun home ->
      if live home.id then begin
        let entries = ref [] in
        Directory.iter home.dir (fun block entry ->
            entries := (block, entry) :: !entries);
        List.iter
          (fun (block, (entry : Directory.entry)) ->
            (* requests the victim parked behind a busy transaction *)
            let keep = Queue.create () in
            Queue.iter
              (fun (kind, r) -> if r <> dead then Queue.add (kind, r) keep)
              entry.Directory.waiting;
            Queue.clear entry.Directory.waiting;
            Queue.transfer keep entry.Directory.waiting;
            match entry.Directory.busy with
            | Some txn ->
                if entry.Directory.owner = Some dead then begin
                  (* the recall target died: its recall_data will never
                     arrive, but home memory already holds current values
                     (write-through), so the transaction just finishes *)
                  entry.Directory.owner <- None;
                  finish_txn t home block txn
                end
                else begin
                  (* the victim may owe an invalidation ack: it was a
                     target iff it was a (possibly broadcast) sharer and
                     not the requester *)
                  let was_target =
                    dead <> txn.Directory.requester
                    && (Bitset.mem entry.Directory.sharers dead
                       || (entry.Directory.overflowed && dead <> home.id))
                  in
                  Bitset.remove entry.Directory.sharers dead;
                  if was_target then begin
                    txn.Directory.acks_left <- txn.Directory.acks_left - 1;
                    if txn.Directory.acks_left = 0 then
                      finish_txn t home block txn
                  end
                end
            | None ->
                Bitset.remove entry.Directory.sharers dead;
                if entry.Directory.owner = Some dead then
                  entry.Directory.owner <- None)
          (List.sort (fun (a, _) (b, _) -> compare a b) !entries)
      end)
    t.nodes;

  (* --- re-issue survivors' requests lost with the old home ---------- *)
  (* The stalled CPU's wake continuation stays registered in [pending];
     only the request (or its response) died with the victim, so re-send
     the same request — recorded in [pending_kind] — to the new home. *)
  Array.iter
    (fun n ->
      if live n.id then
        List.iter
          (fun (block, handler) ->
            if
              Hashtbl.mem rehomed (block * Addr.block_size / Addr.page_size)
            then
              send1 t ~src:n.id ~at:now ~dst:new_home ~vnet:Message.Request
                ~handler ~with_data:false block)
          (List.sort compare
             (Hashtbl.fold
                (fun block handler acc -> (block, handler) :: acc)
                n.pending_kind [])))
    t.nodes

(* The victim resumed heartbeating: its cache was emptied and every page
   it homed has moved, so the only stale state is transport bookkeeping
   (scrubbed by the caller) and its own outstanding misses — re-send each
   to the block's current home and let the pending wake fire normally. *)
let on_node_rejoin t ~node =
  let n = t.nodes.(node) in
  Hashtbl.reset n.wb_inflight;
  n.ctrl.Ctrl.clock <- max n.ctrl.Ctrl.clock (Engine.now t.engine);
  let now = Engine.now t.engine in
  List.iter
    (fun (block, handler) ->
      let home =
        page_home t ~vpage:(block * Addr.block_size / Addr.page_size)
      in
      send1 t ~src:node ~at:now ~dst:home ~vnet:Message.Request ~handler
        ~with_data:false block)
    (List.sort compare
       (Hashtbl.fold
          (fun block handler acc -> (block, handler) :: acc)
          n.pending_kind []))

(* Protocol messages executed across all directory controllers: the
   machine's delivery-progress metric for the watchdog (see Np.handled). *)
let delivered t =
  Array.fold_left (fun acc n -> acc + n.ctrl.Ctrl.handled) 0 t.nodes

let queue_summary t =
  let b = Buffer.create 64 in
  Array.iter
    (fun n ->
      if n.ctrl.Ctrl.count > 0 then
        Buffer.add_string b
          (Printf.sprintf "ctrl%d depth=%d; " n.id n.ctrl.Ctrl.count))
    t.nodes;
  if Buffer.length b = 0 then "all queues empty" else Buffer.contents b

let merged_stats t =
  let out = Stats.create "dirnnb" in
  Array.iter (fun n -> Stats.merge_into ~dst:out n.stats) t.nodes;
  Stats.merge_into ~dst:out (Fabric.stats t.fabric);
  Stats.merge_into ~dst:out (Reliable.stats t.net);
  (match Reliable.fault_stats t.net with
  | Some s -> Stats.merge_into ~dst:out s
  | None -> ());
  out

let check_invariants t =
  let problem = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt in
  Array.iter
    (fun home ->
      Directory.iter home.dir (fun block entry ->
          (match entry.Directory.busy with
          | Some _ -> fail "home %d block 0x%x: transaction left pending" home.id block
          | None -> ());
          if not (Queue.is_empty entry.Directory.waiting) then
            fail "home %d block 0x%x: waiters left queued" home.id block;
          match entry.Directory.owner with
          | Some o ->
              if Bitset.mem entry.Directory.sharers o then
                fail "home %d block 0x%x: owner %d also listed as sharer"
                  home.id block o;
              if not (Bitset.is_empty entry.Directory.sharers) then
                fail "home %d block 0x%x: owner and sharers coexist" home.id
                  block
          | None -> ()))
    t.nodes;
  (* Exclusively cached lines must be registered as owner at the home. *)
  Array.iter
    (fun node ->
      Cache.iter node.cache (fun block state ->
          if state = Cache.Exclusive then begin
            let vpage = block * Addr.block_size / Addr.page_size in
            match Hashtbl.find_opt t.homes vpage with
            | None -> ()
            | Some home_id -> (
                let entry = Directory.entry t.nodes.(home_id).dir ~block in
                match entry.Directory.owner with
                | Some o when o = node.id -> ()
                | Some o ->
                    fail
                      "block 0x%x cached exclusive at %d but owned by %d"
                      block node.id o
                | None ->
                    fail "block 0x%x cached exclusive at %d but unowned"
                      block node.id)
          end))
    t.nodes;
  (* Cross-node audit: a writable (Exclusive) copy excludes every other
     cached copy of the block, machine-wide. *)
  let copies = Hashtbl.create 64 in
  Array.iter
    (fun node ->
      Cache.iter node.cache (fun block state ->
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt copies block)
          in
          Hashtbl.replace copies block ((node.id, state) :: prev)))
    t.nodes;
  Hashtbl.iter
    (fun block holders ->
      match List.filter (fun (_, s) -> s = Cache.Exclusive) holders with
      | [] -> ()
      | [ (owner, _) ] ->
          if List.length holders > 1 then
            fail "block 0x%x: exclusive at %d but also cached at %s" block
              owner
              (String.concat ", "
                 (List.filter_map
                    (fun (n, _) ->
                      if n = owner then None else Some (string_of_int n))
                    holders))
      | ex ->
          fail "block 0x%x: multiple exclusive copies (%s)" block
            (String.concat ", " (List.map (fun (n, _) -> string_of_int n) ex)))
    copies;
  (* Cross-node audit: every cached shared copy appears in its home
     directory's sharer set (unless precise identity was lost to the
     limited-pointer overflow, in which case invals broadcast anyway).
     The converse — a listed sharer without a copy — is legal: shared
     lines are evicted silently. *)
  Array.iter
    (fun node ->
      Cache.iter node.cache (fun block state ->
          if state = Cache.Shared then begin
            let vpage = block * Addr.block_size / Addr.page_size in
            match Hashtbl.find_opt t.homes vpage with
            | None -> ()
            | Some home_id -> (
                match Directory.find t.nodes.(home_id).dir ~block with
                | None ->
                    fail
                      "block 0x%x: cached shared at %d but home %d has no \
                       directory entry"
                      block node.id home_id
                | Some entry ->
                    if
                      (not entry.Directory.overflowed)
                      && (not (Bitset.mem entry.Directory.sharers node.id))
                      && entry.Directory.owner <> Some node.id
                    then
                      fail
                        "block 0x%x: cached shared at %d but absent from \
                         home %d's sharer set"
                        block node.id home_id)
          end))
    t.nodes;
  match !problem with None -> Ok () | Some msg -> Error msg
