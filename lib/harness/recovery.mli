(** Crash-stop node failures: user-level detection, re-homing, and
    checkpointed recovery, end to end.

    Tempest's thesis — policy in user software — extends to availability:
    nothing below the user level detects or repairs a node failure.  This
    module is the harness that closes the loop over the pieces the lower
    layers provide:

    - {e injection}: a seeded {!Tt_net.Faults.crash} schedule silences the
      victim's fabric endpoint (sends and receives) for its crash window,
      drawn from private PRNG streams so the pinned main-stream fault
      patterns are untouched;
    - {e detection}: the {!Tt_net.Liveness} lease/heartbeat protocol turns
      the silence into a deterministic death verdict, and back into a
      revival verdict if heartbeats resume;
    - {e repair}: at the verdict the transport parks and scrubs channels
      ({!Tt_net.Reliable.on_peer_death} / [scrub_unacked]) and the
      protocol re-homes the victim's pages onto the lowest live rank and
      purges its tracks ({!Tt_stache.Stache.on_node_death} /
      {!Tt_dirnnb.System.on_node_death});
    - {e checkpoint}: this module snapshots shared pages at barriers
      (installed through {!Machine.t.on_barrier}) and answers the repair
      pass's [restore] lookups — a snapshot is handed out only when it
      provably equals the page's current content, so a re-homed page is
      never silently wrong;
    - {e classification}: each run either completes in place and passes
      the application's own verify oracle ({!Masked} when the outage
      stayed under the detection lease, {!Rehomed} when recovery ran), or
      aborts with a diagnosis and is {e rolled back} — re-executed from a
      clean boot — and verified there ({!Rolled_back}); {!Unrecoverable}
      is reserved for a re-execution that itself fails.  Never silence,
      never corruption.

    The [TT_RECOVERY=0] kill switch ({!Tt_net.Faults.set_recovery})
    disables crash injection entirely, keeping every pinned regression row
    bit-identical to a build without crash support. *)

type outcome =
  | Masked  (** outage below the detection lease; retransmission hid it *)
  | Rehomed  (** death verdict fired, recovery ran, run completed in place *)
  | Rolled_back of { depth : int; added_cycles : int }
      (** diagnosed abort, then verified re-execution; [depth] counts the
          barrier-checkpoint epochs of lost work, [added_cycles] the
          simulated cycles the aborted attempt burned *)
  | Unrecoverable of string  (** even the re-execution failed *)

val outcome_label : outcome -> string

type rejoin = Never | Quick | Late
(** Crash-window axis: permanent crash-stop; a window below the detection
    lease (expected {!Masked}); a window well past it (expected
    {!Rehomed} or {!Rolled_back}). *)

val rejoin_label : rejoin -> string

val machines : string list
(** Accepted machine names: ["stache"], ["dirnnb"].  (The custom
    ["update"] protocol keeps per-node state outside the recovery entry
    points and is not covered.) *)

type exec_result = {
  label : string;
  cycles : int;
  outcome : outcome;
  detail : string option;
  deaths : int;
  revivals : int;
  scrubbed : int;
  epochs : int;
  cell_stats : Tt_util.Stats.t;
  failed : string option;
}
(** One fully-classified crash run: [cycles] belongs to the run whose
    results stand (the re-execution when rolled back), [cell_stats] to
    the crash run itself, [detail] is the diagnosed abort reason behind a
    rollback, and [failed] is non-[None] only when the cell could not be
    brought to verified results at all. *)

val exec :
  machine:string -> name:string -> size:Catalog.size -> scale:float ->
  nodes:int -> config:Tt_net.Faults.config -> base:Run.result ->
  base_msgs:int -> unit -> exec_result
(** Run one app under [config] (crash schedule and/or message faults)
    with the full recovery stack wired, against the fault-free baseline
    [base] (watchdog budgets and oracle yardstick; [base_msgs] its
    request+response message total).  Also the entry point
    {!Faultsweep}'s crash cells reuse. *)

type point = {
  app : string;
  machine_label : string;
  victim : int;
  crash_at : int;
  rejoin : rejoin;
  seed : int;
  base_cycles : int;
  cycles : int;
  deaths : int;
  revivals : int;
  scrubbed : int;
  epochs : int;
  pages_rehomed : int;
  blocks_restored : int;
  outcome : outcome;
  detail : string option;
  failed : string option;
}

val run :
  ?apps:string list -> ?machine:string -> ?victims:int list ->
  ?crash_fracs:float list -> ?rejoins:rejoin list -> ?seeds:int list ->
  ?size:Catalog.size -> ?scale:float -> ?nodes:int -> ?domains:int ->
  unit -> point list
(** The crash-time × victim × rejoin (× seed) grid over the Fig. 3 apps.
    Each app first takes a fault-free baseline (the oracle and the
    watchdog yardstick), then every cell crashes [victim] at
    [crash_frac × baseline cycles] with the chosen rejoin window and must
    end in verified results or a diagnosed abort.  Defaults: all catalog
    apps, machine ["stache"], victims [[0; 3]], crash_fracs [[0.4]], all
    three rejoin modes, seed [1], small data sets at scale 0.25 on
    8 nodes.  [domains > 1] fans the per-app bundles out over worker
    domains with bit-identical points ({!Tt_sim.Domains.map}). *)

val all_passed : point list -> bool

val render : point list -> string
