(* Protocol-zoo shootout: app x protocol x node-count grid. *)

type cell = {
  app : string;
  proto : string;
  nodes : int;
  cycles : int;
  msgs : int; (* sequenced sends, request + response vnets *)
  switches : int; (* adaptive policy switches (0 off the adaptive machine) *)
  cpu_s : float;
}

let default_nodes = [ 8; 16 ]

let default_protos = Catalog.protocols

(* The EM3D hand-written update protocol rides along as a reference row so
   the shootout table holds the Figure 4 headline (update vs invalidate on
   EM3D) next to the zoo's generic policies. *)
let machine_for ~proto params =
  if proto = "update" then Machine.typhoon_em3d params
  else Catalog.machine_of_proto ~proto params

let run_one ~app ~proto ~nodes ~scale ~cache_kb =
  let t0 = Sys.time () in
  let params =
    Params.with_cache { Params.default with Params.nodes } (cache_kb * 1024)
  in
  let machine = machine_for ~proto params in
  let inst = Catalog.make ~name:app ~size:Catalog.Small ~scale ~nprocs:nodes in
  let r = Run.spmd machine ~name:app inst.Catalog.body in
  (* every cell is verified against the app's sequential oracle *)
  ignore
    (Run.spmd machine ~name:(app ^ "-verify") ~check:false inst.Catalog.verify);
  let s = r.Run.run_stats in
  {
    app;
    proto;
    nodes;
    cycles = r.Run.cycles;
    msgs = Tt_util.Stats.get s "msgs.request" + Tt_util.Stats.get s "msgs.response";
    switches = Tt_util.Stats.get s "switches";
    cpu_s = Sys.time () -. t0;
  }

let run ?(apps = Catalog.all_names) ?(protos = default_protos)
    ?(nodes = default_nodes) ?(scale = 0.25) ?(cache_kb = 256) ?(domains = 0)
    () =
  List.iter
    (fun p ->
      if p <> "update" && not (List.mem p Catalog.protocols) then
        ignore (Catalog.machine_of_proto ~proto:p Params.default))
    protos;
  let grid =
    List.concat_map
      (fun app ->
        List.concat_map
          (fun n ->
            let protos =
              (* the hand-written update protocol only makes sense where its
                 allocator kinds exist *)
              if app = "em3d" && not (List.mem "update" protos) then
                protos @ [ "update" ]
              else protos
            in
            List.map (fun proto -> (app, proto, n)) protos)
          nodes)
      apps
  in
  (* cells are self-contained simulations, so they fan out over worker
     domains bit-identically (same guarantee as the scaling sweep) *)
  Tt_sim.Domains.map ~domains
    (fun (app, proto, n) -> run_one ~app ~proto ~nodes:n ~scale ~cache_kb)
    grid

(* --- analysis --- *)

let cell_of cells ~app ~nodes ~proto =
  List.find_opt
    (fun c -> c.app = app && c.nodes = nodes && c.proto = proto)
    cells

(* Best static protocol for one (app, nodes) point: the zoo plus the
   transparent default, excluding adaptive itself (and the EM3D reference
   row, which is not a generic policy). *)
let best_static cells ~app ~nodes =
  List.fold_left
    (fun best c ->
      if
        c.app = app && c.nodes = nodes && c.proto <> "adaptive"
        && c.proto <> "update"
      then
        match best with
        | Some b when b.cycles <= c.cycles -> best
        | _ -> Some c
      else best)
    None cells

(* Adaptive-vs-best-static gate: for every (app, nodes) point that has both
   rows, adaptive must be within [tolerance] of the best static protocol.
   Returns the offending descriptions (empty = pass). *)
let adaptive_regressions ?(tolerance = 0.05) cells =
  let points =
    List.sort_uniq compare (List.map (fun c -> (c.app, c.nodes)) cells)
  in
  List.filter_map
    (fun (app, nodes) ->
      match cell_of cells ~app ~nodes ~proto:"adaptive", best_static cells ~app ~nodes with
      | Some a, Some b ->
          let limit =
            int_of_float (ceil (float_of_int b.cycles *. (1.0 +. tolerance)))
          in
          if a.cycles > limit then
            Some
              (Printf.sprintf
                 "%s at %d nodes: adaptive %d cycles > %.0f%% over best \
                  static (%s, %d cycles)"
                 app nodes a.cycles (tolerance *. 100.0) b.proto b.cycles)
          else None
      | _ -> None)
    points

(* EM3D headline: cycles saved by the update protocol over the invalidate
   baseline, in percent, per node count (Figure 4's point). *)
let em3d_update_wins cells =
  List.filter_map
    (fun c ->
      if c.app = "em3d" && c.proto = "update" then
        match cell_of cells ~app:"em3d" ~nodes:c.nodes ~proto:"stache" with
        | Some base when base.cycles > 0 ->
            Some
              ( c.nodes,
                100.0
                *. (1.0 -. (float_of_int c.cycles /. float_of_int base.cycles))
              )
        | _ -> None
      else None)
    cells

let render cells =
  let table =
    Tt_util.Tablefmt.create
      ~title:
        "protocol shootout: simulated cycles and messages per app x \
         protocol x nodes"
      ~columns:
        [ ("app", Tt_util.Tablefmt.Left); ("nodes", Tt_util.Tablefmt.Right);
          ("protocol", Tt_util.Tablefmt.Left);
          ("cycles", Tt_util.Tablefmt.Right);
          ("msgs", Tt_util.Tablefmt.Right);
          ("switches", Tt_util.Tablefmt.Right);
          ("vs stache", Tt_util.Tablefmt.Right) ]
  in
  List.iter
    (fun c ->
      let vs =
        match cell_of cells ~app:c.app ~nodes:c.nodes ~proto:"stache" with
        | Some base when base.cycles > 0 && c.proto <> "stache" ->
            Printf.sprintf "%.2f"
              (float_of_int c.cycles /. float_of_int base.cycles)
        | _ -> "-"
      in
      Tt_util.Tablefmt.add_row table
        [ c.app; string_of_int c.nodes; c.proto; string_of_int c.cycles;
          string_of_int c.msgs;
          (if c.proto = "adaptive" then string_of_int c.switches else "-");
          vs ])
    cells;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Tt_util.Tablefmt.render table);
  let points =
    List.sort_uniq compare (List.map (fun c -> (c.app, c.nodes)) cells)
  in
  List.iter
    (fun (app, nodes) ->
      match
        cell_of cells ~app ~nodes ~proto:"adaptive", best_static cells ~app ~nodes
      with
      | Some a, Some b ->
          Buffer.add_string buf
            (Printf.sprintf
               "%s at %d nodes: best static %s (%d cycles), adaptive %d \
                cycles (%+.1f%%)\n"
               app nodes b.proto b.cycles a.cycles
               (100.0
               *. ((float_of_int a.cycles /. float_of_int b.cycles) -. 1.0)))
      | _ -> ())
    points;
  List.iter
    (fun (nodes, win) ->
      Buffer.add_string buf
        (Printf.sprintf
           "em3d at %d nodes: update protocol saves %.1f%% of cycles vs the \
            invalidate baseline\n"
           nodes win))
    (em3d_update_wins cells);
  Buffer.contents buf

let total_cpu_s cells = List.fold_left (fun a c -> a +. c.cpu_s) 0.0 cells

let to_json cells =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"cells\": [\n";
  let last = List.length cells - 1 in
  List.iteri
    (fun i c ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"app\": %S, \"proto\": %S, \"nodes\": %d, \"cycles\": %d, \
            \"msgs\": %d, \"switches\": %d}%s\n"
           c.app c.proto c.nodes c.cycles c.msgs c.switches
           (if i < last then "," else "")))
    cells;
  Buffer.add_string buf "  ],\n";
  (let wins = em3d_update_wins cells in
   Buffer.add_string buf "  \"em3d_update_win_pct\": {";
   List.iteri
     (fun i (nodes, win) ->
       Buffer.add_string buf
         (Printf.sprintf "%s\"%d\": %.1f" (if i > 0 then ", " else "") nodes
            win))
     wins;
   Buffer.add_string buf "},\n");
  let worst = ref 0.0 in
  let points =
    List.sort_uniq compare (List.map (fun c -> (c.app, c.nodes)) cells)
  in
  List.iter
    (fun (app, nodes) ->
      match
        cell_of cells ~app ~nodes ~proto:"adaptive", best_static cells ~app ~nodes
      with
      | Some a, Some b ->
          let over =
            (float_of_int a.cycles /. float_of_int b.cycles) -. 1.0
          in
          if over > !worst then worst := over
      | _ -> ())
    points;
  Buffer.add_string buf
    (Printf.sprintf "  \"adaptive_max_over_best_static_pct\": %.1f\n}\n"
       (100.0 *. !worst));
  Buffer.contents buf
