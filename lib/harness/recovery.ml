module Engine = Tt_sim.Engine
module Thread = Tt_sim.Thread
module Stats = Tt_util.Stats
module Addr = Tt_mem.Addr
module Reliable = Tt_net.Reliable
module Faults = Tt_net.Faults
module Liveness = Tt_net.Liveness
module Typhoon = Tt_typhoon.System
module Dirnnb = Tt_dirnnb.System
module Stache = Tt_stache.Stache

type outcome =
  | Masked
  | Rehomed
  | Rolled_back of { depth : int; added_cycles : int }
  | Unrecoverable of string

let outcome_label = function
  | Masked -> "masked"
  | Rehomed -> "rehomed"
  | Rolled_back { depth; added_cycles } ->
      Printf.sprintf "rolled-back(ckpt %d, +%d cyc)" depth added_cycles
  | Unrecoverable msg -> "UNRECOVERABLE: " ^ msg

type rejoin = Never | Quick | Late

let rejoin_label = function
  | Never -> "never"
  | Quick -> "quick"
  | Late -> "late"

(* ------------------------------------------------------------------ *)
(* Protocol dispatch: the two machines' recovery entry points           *)
(* ------------------------------------------------------------------ *)

type proto = St of Typhoon.t * Stache.t | Dn of Dirnnb.t

let machines = [ "stache"; "dirnnb" ]

let make_machine ~machine ?reliability params =
  match machine with
  | "stache" ->
      let m, sys, st = Machine.typhoon_stache_full ?reliability params in
      (m, St (sys, st))
  | "dirnnb" ->
      let m, sys = Machine.dirnnb_full ?reliability params in
      (m, Dn sys)
  | other ->
      invalid_arg
        (Printf.sprintf "Recovery: unknown machine %S (expected %s)" other
           (String.concat "|" machines))

let proto_set_is_dead proto f =
  match proto with
  | St (_, st) -> Stache.set_is_dead st f
  | Dn sys -> Dirnnb.set_is_dead sys f

(* Dirty tracking for checkpoint validity.  Only CPU stores change a
   page's logical content; NP [forced] writes (fills, writeback arrivals)
   materialize already-tracked values, so they are ignored — a snapshot
   is only taken when home memory is authoritative ([snapshot_page]), so
   a pending writeback keeps the dirty bit set until it lands. *)
let proto_set_on_dirty proto mark =
  match proto with
  | St (sys, _) ->
      Typhoon.set_on_dirty sys
        (Some (fun ~node:_ ~vpage ~forced -> if not forced then mark ~vpage))
  | Dn sys -> Dirnnb.set_on_dirty sys (Some (fun ~vpage -> mark ~vpage))

let proto_noop_handler = function
  | St (_, st) -> Stache.noop_handler st
  | Dn _ -> Dirnnb.noop_handler

let proto_snapshot_page proto ~vpage =
  match proto with
  | St (_, st) -> Stache.snapshot_page st ~vpage
  | Dn sys -> Dirnnb.snapshot_page sys ~vpage

let proto_on_node_death proto ~dead ~new_home ~restore =
  match proto with
  | St (_, st) -> Stache.on_node_death st ~dead ~new_home ~restore
  | Dn sys -> Dirnnb.on_node_death sys ~dead ~new_home ~restore

let proto_on_node_rejoin proto ~node =
  match proto with
  | St (_, st) -> Stache.on_node_rejoin st ~node
  | Dn sys -> Dirnnb.on_node_rejoin sys ~node

(* ------------------------------------------------------------------ *)
(* Barrier checkpoints                                                  *)
(* ------------------------------------------------------------------ *)

(* One snapshot per shared page, refreshed at barriers while the page's
   home copy is authoritative.  [dirty] is "content changed since the
   last good snapshot": set by every CPU store, cleared only when a new
   snapshot actually lands — so [restore] can hand out a snapshot exactly
   when it provably equals the page's current content, the only case
   where in-place re-homing of a lost page is sound. *)
type checkpoint = {
  pages : (int, unit) Hashtbl.t;  (* every allocated shared vpage *)
  dirty : (int, unit) Hashtbl.t;
  snaps : (int, Bytes.t) Hashtbl.t;
  mutable epochs : int;  (* completed barrier checkpoint points *)
}

let checkpoint_create () =
  {
    pages = Hashtbl.create 256;
    dirty = Hashtbl.create 256;
    snaps = Hashtbl.create 256;
    epochs = 0;
  }

let mark_dirty ck ~vpage = Hashtbl.replace ck.dirty vpage ()

let track_alloc ck ~vaddr ~bytes =
  if bytes > 0 then
    for vpage = Addr.page_of vaddr to Addr.page_of (vaddr + bytes - 1) do
      if not (Hashtbl.mem ck.pages vpage) then begin
        Hashtbl.replace ck.pages vpage ();
        (* allocation-time initialization happens before the first
           barrier; until a snapshot lands the page is unrestorable *)
        Hashtbl.replace ck.dirty vpage ()
      end
    done

let snapshot_epoch ck proto =
  let todo =
    List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) ck.dirty [])
  in
  List.iter
    (fun vpage ->
      match proto_snapshot_page proto ~vpage with
      | Some bytes ->
          Hashtbl.replace ck.snaps vpage bytes;
          Hashtbl.remove ck.dirty vpage
      | None -> () (* home copy stale (remote dirty): keep the dirty bit *))
    todo;
  ck.epochs <- ck.epochs + 1

let restore ck ~vpage =
  if Hashtbl.mem ck.dirty vpage then None
  else Option.map Bytes.copy (Hashtbl.find_opt ck.snaps vpage)

(* ------------------------------------------------------------------ *)
(* Wiring one machine instance for crash-stop runs                      *)
(* ------------------------------------------------------------------ *)

type wired = {
  m : Machine.t;  (* the guarded machine to run on *)
  lv : Liveness.t;
  ck : checkpoint;
  scrubbed : int ref;
  nprocs : int;
}

let wire ~machine ~params ~config () =
  let reliability = Reliable.Flaky config in
  let m0, proto = make_machine ~machine ~reliability params in
  let engine = m0.Machine.engine in
  let net = m0.Machine.net in
  let nprocs = params.Params.nodes in
  let faults =
    match Reliable.faults net with
    | Some f -> f
    | None -> invalid_arg "Recovery.wire: flaky transport without an injector"
  in
  let lv = Liveness.create engine net in
  let ck = checkpoint_create () in
  proto_set_on_dirty proto (fun ~vpage -> mark_dirty ck ~vpage);
  proto_set_is_dead proto (fun n -> Liveness.is_dead lv n);
  let declared_dead = Array.make nprocs false in
  let revived = Array.make nprocs false in
  let frozen = Array.make nprocs [] in
  let rejoin_scheduled = Array.make nprocs false in
  let scrubbed = ref 0 in
  let fire_frozen node =
    let wakes = frozen.(node) in
    frozen.(node) <- [];
    List.iter (fun wake -> wake ()) (List.rev wakes)
  in
  (* Death verdict: park and scrub the transport toward the victim, then
     repair the protocol synchronously (new home = deterministic lowest
     live rank; content losses answered by the checkpoint). *)
  Reliable.set_death_notice net (Some (fun ~src:_ ~dst:_ -> ()));
  Liveness.set_on_dead lv (fun dead ->
      declared_dead.(dead) <- true;
      Reliable.on_peer_death net ~node:dead;
      scrubbed :=
        !scrubbed
        + Reliable.scrub_unacked net ~node:dead
            ~handler:(proto_noop_handler proto);
      let new_home = Liveness.lowest_live lv in
      proto_on_node_death proto ~dead ~new_home
        ~restore:(fun ~vpage -> restore ck ~vpage));
  (* Rejoin verdict: scrub the victim's own held pre-crash-era queues,
     replay the parked channels, drop its stale protocol bookkeeping,
     then release its frozen CPUs — in that order, so nothing the victim
     does on waking can race the repair. *)
  Liveness.set_on_alive lv (fun node ->
      scrubbed :=
        !scrubbed
        + Reliable.scrub_unacked net ~node ~handler:(proto_noop_handler proto);
      Reliable.on_peer_alive net ~node;
      proto_on_node_rejoin proto ~node;
      revived.(node) <- true;
      fire_frozen node);
  (* Crash-era execution guard: a victim CPU that touches shared memory
     inside its crash window freezes.  If the death verdict fired, only
     the rejoin verdict (after scrub + replay + protocol repair) releases
     it; if the crash stayed under the detection lease, a plain timer at
     the physical rejoin cycle does — the access then resumes against
     untouched state and the transport's retransmissions mask the outage
     entirely.  A permanent crash parks forever and the watchdog converts
     the survivors' stall into a diagnosed abort. *)
  let rec guard ~node th =
    if declared_dead.(node) && not revived.(node) then begin
      Thread.await_unit th (fun wake -> frozen.(node) <- wake :: frozen.(node));
      Thread.set_clock th (max (Thread.clock th) (Engine.now engine));
      guard ~node th
    end
    else
      match Faults.crash_window faults ~node with
      | Some (down, rejoin_at)
        when (not revived.(node)) && Thread.clock th >= down -> (
          match rejoin_at with
          | Some r when Thread.clock th < r ->
              if not rejoin_scheduled.(node) then begin
                rejoin_scheduled.(node) <- true;
                (* spurious-wake safe: woken threads re-check the guard *)
                Engine.at engine
                  (max r (Engine.now engine + 1))
                  (fun () -> fire_frozen node)
              end;
              Thread.await_unit th (fun wake ->
                  frozen.(node) <- wake :: frozen.(node));
              Thread.set_clock th (max (Thread.clock th) (Engine.now engine));
              guard ~node th
          | Some _ -> () (* past its rejoin, never declared dead *)
          | None ->
              Thread.await_unit th (fun wake ->
                  frozen.(node) <- wake :: frozen.(node));
              Thread.set_clock th (max (Thread.clock th) (Engine.now engine));
              guard ~node th)
      | _ -> ()
  in
  let m =
    {
      m0 with
      Machine.read = (fun ~node th a -> guard ~node th; m0.Machine.read ~node th a);
      write = (fun ~node th a v -> guard ~node th; m0.Machine.write ~node th a v);
      read_int = (fun ~node th a -> guard ~node th; m0.Machine.read_int ~node th a);
      write_int =
        (fun ~node th a v -> guard ~node th; m0.Machine.write_int ~node th a v);
      mprefetch =
        (fun ~node th va -> guard ~node th; m0.Machine.mprefetch ~node th va);
      alloc =
        (fun ~node th ?home bytes ->
          guard ~node th;
          let va = m0.Machine.alloc ~node th ?home bytes in
          track_alloc ck ~vaddr:va ~bytes;
          va);
    }
  in
  (* chain behind any machine-level post-barrier hook (the adaptive
     machine reclassifies pages there) rather than clobbering it *)
  let prev_on_barrier = m.Machine.on_barrier in
  m.Machine.on_barrier <-
    Some
      (fun ~proc th ->
        (match prev_on_barrier with Some f -> f ~proc th | None -> ());
        if proc = 0 then snapshot_epoch ck proto);
  m.Machine.liveness <- Some (fun () -> Liveness.summary lv);
  { m; lv; ck; scrubbed; nprocs }

(* ------------------------------------------------------------------ *)
(* One grid cell: run, classify, roll back if needed                    *)
(* ------------------------------------------------------------------ *)

type exec_result = {
  label : string;
  cycles : int;  (** of the run whose results stand (re-execution if rolled back) *)
  outcome : outcome;
  detail : string option;  (** diagnosed abort reason behind a rollback *)
  deaths : int;
  revivals : int;
  scrubbed : int;
  epochs : int;
  cell_stats : Stats.t;  (** merged stats of the (possibly aborted) crash run *)
  failed : string option;
}

let total_msgs stats =
  Stats.get stats "msgs.request" + Stats.get stats "msgs.response"

let exec ~machine ~name ~size ~scale ~nodes ~config ~base ~base_msgs () =
  let params = { Params.default with Params.nodes } in
  let w = wire ~machine ~params ~config () in
  let app = Catalog.make ~name ~size ~scale ~nprocs:nodes in
  let watchdog =
    Watchdog.create
      ~max_cycles:((base.Run.cycles * 100) + 5_000_000)
      ~max_retransmits:((base_msgs * 10) + 100_000)
      ~max_stall:((base.Run.cycles * 10) + 1_000_000)
      ()
  in
  let engine = w.m.Machine.engine in
  (* the last proc to finish stops the liveness loops so the event queue
     can drain *)
  let finished = ref 0 in
  let body env =
    app.Catalog.body env;
    incr finished;
    if !finished = w.nprocs then Liveness.stop w.lv
  in
  let finish ~cycles ~outcome ~detail ~failed =
    {
      label = w.m.Machine.label;
      cycles;
      outcome;
      detail;
      deaths = Liveness.deaths w.lv;
      revivals = Liveness.revivals w.lv;
      scrubbed = !(w.scrubbed);
      epochs = w.ck.epochs;
      cell_stats = w.m.Machine.merged_stats ();
      failed;
    }
  in
  match
    let r = Run.spmd w.m ~name ~watchdog body in
    ignore
      (Run.spmd w.m ~name:(name ^ "-verify") ~check:false ~watchdog
         app.Catalog.verify);
    r
  with
  | r ->
      (* completed in place; the verify pass already matched the final
         data against the app's sequential oracle *)
      let outcome = if Liveness.deaths w.lv > 0 then Rehomed else Masked in
      finish ~cycles:r.Run.cycles ~outcome ~detail:None ~failed:None
  | exception e ->
      let reason =
        match e with
        | Faults.Unrecoverable msg -> "Unrecoverable: " ^ msg
        | Watchdog.Expired msg -> "Watchdog: " ^ msg
        | Run.Stuck msg -> "Stuck: " ^ msg
        | Reliable.Link_failed msg -> "Link_failed: " ^ msg
        | Reliable.Peer_dead msg -> "Peer_dead: " ^ msg
        | Tt_net.Overload.Overload msg -> "Overload: " ^ msg
        | Failure msg -> "Failure: " ^ msg
        | Invalid_argument msg -> "Invalid_argument: " ^ msg
        | e -> raise e
      in
      (* diagnosed abort: roll back — discard the damaged instance and
         re-execute from the last consistent cut (modeled as a clean
         re-execution; [depth] counts the checkpoint epochs of lost work,
         [added_cycles] the cycles the aborted attempt burned) *)
      let depth = w.ck.epochs in
      let added_cycles = Engine.now engine in
      (match
         let m2, _ = make_machine ~machine params in
         let app2 = Catalog.make ~name ~size ~scale ~nprocs:nodes in
         let r2 = Run.spmd m2 ~name app2.Catalog.body in
         ignore
           (Run.spmd m2 ~name:(name ^ "-verify") ~check:false
              app2.Catalog.verify);
         r2
       with
      | r2 ->
          finish ~cycles:r2.Run.cycles
            ~outcome:(Rolled_back { depth; added_cycles })
            ~detail:(Some reason) ~failed:None
      | exception e2 ->
          let msg =
            Printf.sprintf "%s; re-execution failed: %s" reason
              (Printexc.to_string e2)
          in
          finish ~cycles:0 ~outcome:(Unrecoverable msg) ~detail:(Some reason)
            ~failed:(Some msg))

(* ------------------------------------------------------------------ *)
(* The sweep                                                            *)
(* ------------------------------------------------------------------ *)

type point = {
  app : string;
  machine_label : string;
  victim : int;
  crash_at : int;
  rejoin : rejoin;
  seed : int;
  base_cycles : int;
  cycles : int;
  deaths : int;
  revivals : int;
  scrubbed : int;
  epochs : int;
  pages_rehomed : int;
  blocks_restored : int;
  outcome : outcome;
  detail : string option;
  failed : string option;
}

let run ?(apps = Catalog.names) ?(machine = "stache") ?(victims = [ 0; 3 ])
    ?(crash_fracs = [ 0.4 ]) ?(rejoins = [ Never; Quick; Late ])
    ?(seeds = [ 1 ]) ?(size = Catalog.Small) ?(scale = 0.25) ?(nodes = 8)
    ?(domains = 0) () =
  List.iter
    (fun v ->
      if v < 0 || v >= nodes then
        invalid_arg (Printf.sprintf "Recovery.run: victim %d of %d nodes" v nodes))
    victims;
  (* parallel unit is the app: each crash cell compares against its app's
     fault-free baseline, so the (baseline, grid) bundle stays together *)
  Tt_sim.Domains.map ~domains
    (fun name ->
      let params = { Params.default with Params.nodes } in
      let base, base_msgs, latency =
        let m, _ = make_machine ~machine params in
        let app = Catalog.make ~name ~size ~scale ~nprocs:nodes in
        let r = Run.spmd m ~name app.Catalog.body in
        ignore
          (Run.spmd m ~name:(name ^ "-verify") ~check:false app.Catalog.verify);
        (r, total_msgs r.Run.run_stats, Reliable.latency m.Machine.net)
      in
      (* detection lease with Liveness defaults: 4 missed periods of
         32 fabric latencies each *)
      let lease = 4 * (32 * latency) in
      List.concat_map
        (fun victim ->
          List.concat_map
            (fun frac ->
              List.concat_map
                (fun rj ->
                  List.map
                    (fun seed ->
                      let crash_at =
                        max 1
                          (int_of_float
                             (frac *. float_of_int base.Run.cycles))
                      in
                      let rejoin_at =
                        match rj with
                        | Never -> None
                        | Quick -> Some (crash_at + (lease / 2))
                        | Late -> Some (crash_at + (4 * lease))
                      in
                      let config =
                        Faults.uniform ~seed
                          ~crashes:
                            [ Faults.crash ?rejoin:rejoin_at ~victim
                                ~at:crash_at () ]
                          ()
                      in
                      let er =
                        exec ~machine ~name ~size ~scale ~nodes ~config ~base
                          ~base_msgs ()
                      in
                      {
                        app = name;
                        machine_label = er.label;
                        victim;
                        crash_at;
                        rejoin = rj;
                        seed;
                        base_cycles = base.Run.cycles;
                        cycles = er.cycles;
                        deaths = er.deaths;
                        revivals = er.revivals;
                        scrubbed = er.scrubbed;
                        epochs = er.epochs;
                        pages_rehomed =
                          Stats.get er.cell_stats "recovery.pages_rehomed";
                        blocks_restored =
                          Stats.get er.cell_stats "recovery.blocks_restored";
                        outcome = er.outcome;
                        detail = er.detail;
                        failed = er.failed;
                      })
                    seeds)
                rejoins)
            crash_fracs)
        victims)
    apps
  |> List.concat

let all_passed points = List.for_all (fun p -> p.failed = None) points

let render points =
  let t =
    Tt_util.Tablefmt.create
      ~title:
        "Crash-stop recovery sweep: Fig. 3 apps with a crashing node \
         (results verified against the fault-free oracle)"
      ~columns:
        [ ("app", Tt_util.Tablefmt.Left);
          ("machine", Tt_util.Tablefmt.Left);
          ("victim", Tt_util.Tablefmt.Right);
          ("crash@", Tt_util.Tablefmt.Right);
          ("rejoin", Tt_util.Tablefmt.Left);
          ("seed", Tt_util.Tablefmt.Right);
          ("cycles", Tt_util.Tablefmt.Right);
          ("xbase", Tt_util.Tablefmt.Right);
          ("deaths", Tt_util.Tablefmt.Right);
          ("reviv", Tt_util.Tablefmt.Right);
          ("scrub", Tt_util.Tablefmt.Right);
          ("ckpts", Tt_util.Tablefmt.Right);
          ("rehomed", Tt_util.Tablefmt.Right);
          ("restored", Tt_util.Tablefmt.Right);
          ("outcome", Tt_util.Tablefmt.Left) ]
  in
  List.iter
    (fun p ->
      Tt_util.Tablefmt.add_row t
        [ p.app; p.machine_label; string_of_int p.victim;
          string_of_int p.crash_at; rejoin_label p.rejoin;
          string_of_int p.seed; string_of_int p.cycles;
          (if p.cycles = 0 then "-"
           else
             Printf.sprintf "%.2f"
               (float_of_int p.cycles /. float_of_int p.base_cycles));
          string_of_int p.deaths; string_of_int p.revivals;
          string_of_int p.scrubbed; string_of_int p.epochs;
          string_of_int p.pages_rehomed; string_of_int p.blocks_restored;
          (let truncate s =
             if String.length s <= 48 then s else String.sub s 0 45 ^ "..."
           in
           match p.failed with
          | Some msg -> "FAIL: " ^ truncate msg
          | None -> (
              outcome_label p.outcome
              ^
              match p.detail with
              | Some d -> " [" ^ truncate d ^ "]"
              | None -> "")) ])
    points;
  Tt_util.Tablefmt.render t
