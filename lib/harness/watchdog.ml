module Engine = Tt_sim.Engine

type t = {
  max_cycles : int option;
  max_retransmits : int option;
  check_interval : int;
}

exception Expired of string

let create ?max_cycles ?max_retransmits ?(check_interval = 10_000) () =
  (match max_cycles with
  | Some c when c <= 0 -> invalid_arg "Watchdog.create: bad cycle budget"
  | Some _ | None -> ());
  (match max_retransmits with
  | Some r when r < 0 -> invalid_arg "Watchdog.create: bad retransmit budget"
  | Some _ | None -> ());
  if check_interval <= 0 then invalid_arg "Watchdog.create: bad interval";
  if max_cycles = None && max_retransmits = None then
    invalid_arg "Watchdog.create: no budget given";
  { max_cycles; max_retransmits; check_interval }

let drive t engine ~retransmits =
  let check_retransmits ~completed =
    match t.max_retransmits with
    | Some budget ->
        let r = retransmits () in
        if r > budget then
          raise
            (Expired
               (Printf.sprintf
                  "watchdog: retransmission budget exceeded (%d > %d) at \
                   cycle %d with %d events pending%s — livelocked link?"
                  r budget (Engine.now engine) (Engine.pending engine)
                  (if completed then " (run completed)" else "")))
    | None -> ()
  in
  let rec loop target =
    let target =
      match t.max_cycles with
      | Some budget -> min target budget
      | None -> target
    in
    let drained = Engine.run_until engine ~limit:target in
    if drained then
      (* final drain-time check: a budget blown during the last partial
         slice of a completed run must still be reported *)
      check_retransmits ~completed:true
    else begin
      check_retransmits ~completed:false;
      (match t.max_cycles with
      | Some budget when target >= budget ->
          raise
            (Expired
               (Printf.sprintf
                  "watchdog: simulated-cycle budget %d exceeded with %d \
                   events still pending and %d retransmissions so far"
                  budget (Engine.pending engine) (retransmits ())))
      | Some _ | None -> ());
      loop (target + t.check_interval)
    end
  in
  loop (Engine.now engine + t.check_interval)
