module Engine = Tt_sim.Engine

type t = {
  max_cycles : int option;
  max_retransmits : int option;
  max_stall : int option;
  check_interval : int;
}

exception Expired of string

let create ?max_cycles ?max_retransmits ?max_stall ?(check_interval = 10_000)
    () =
  (match max_cycles with
  | Some c when c <= 0 -> invalid_arg "Watchdog.create: bad cycle budget"
  | Some _ | None -> ());
  (match max_retransmits with
  | Some r when r < 0 -> invalid_arg "Watchdog.create: bad retransmit budget"
  | Some _ | None -> ());
  (match max_stall with
  | Some s when s <= 0 -> invalid_arg "Watchdog.create: bad stall budget"
  | Some _ | None -> ());
  if check_interval <= 0 then invalid_arg "Watchdog.create: bad interval";
  if max_cycles = None && max_retransmits = None && max_stall = None then
    invalid_arg "Watchdog.create: no budget given";
  { max_cycles; max_retransmits; max_stall; check_interval }

let drive ?progress ?queues ?deadlock ?liveness t engine ~retransmits =
  let occupancy () =
    let q = match queues with Some q -> "; queues: " ^ q () | None -> "" in
    (* the liveness census distinguishes a crash-induced stall from a
       livelock: every Expired message names who is alive/suspected/dead *)
    let l =
      match liveness with Some l -> "; liveness: " ^ l () | None -> ""
    in
    q ^ l
  in
  let check_retransmits ~completed =
    match t.max_retransmits with
    | Some budget ->
        let r = retransmits () in
        if r > budget then
          raise
            (Expired
               (Printf.sprintf
                  "watchdog: retransmission budget exceeded (%d > %d) at \
                   cycle %d with %d events pending%s — livelocked link?%s"
                  r budget (Engine.now engine) (Engine.pending engine)
                  (if completed then " (run completed)" else "")
                  (occupancy ())))
    | None -> ()
  in
  (* Delivery-progress budget: [progress] is a monotone delivered-work
     counter; if it sits still for [max_stall] simulated cycles while
     events are pending, the machine is wedged — blocked senders waiting on
     credits nobody will return, or a protocol spinning without delivering.
     The [deadlock] probe (a waits-for-graph check) is consulted only on
     stalled slices, so a transient cycle that in-flight credit returns
     are about to break is never reported. *)
  let last_progress = ref (match progress with Some p -> p () | None -> 0) in
  let last_progress_at = ref (Engine.now engine) in
  let check_progress () =
    match (t.max_stall, progress) with
    | Some budget, Some p ->
        let now_progress = p () in
        if now_progress > !last_progress then begin
          last_progress := now_progress;
          last_progress_at := Engine.now engine
        end
        else begin
          (match deadlock with
          | Some probe -> (
              match probe () with
              | Some diag ->
                  raise
                    (Expired
                       (Printf.sprintf
                          "watchdog: deadlock detected at cycle %d — %s; %d \
                           retransmissions, %d events pending%s"
                          (Engine.now engine) diag (retransmits ())
                          (Engine.pending engine) (occupancy ())))
              | None -> ())
          | None -> ());
          if Engine.now engine - !last_progress_at > budget then
            raise
              (Expired
                 (Printf.sprintf
                    "watchdog: no delivery progress for %d cycles (stuck at \
                     %d delivered since cycle %d) with %d events pending and \
                     %d retransmissions%s"
                    (Engine.now engine - !last_progress_at)
                    !last_progress !last_progress_at (Engine.pending engine)
                    (retransmits ()) (occupancy ())))
        end
    | _ -> ()
  in
  let rec loop target =
    let target =
      match t.max_cycles with
      | Some budget -> min target budget
      | None -> target
    in
    let drained = Engine.run_until engine ~limit:target in
    if drained then
      (* final drain-time check: a budget blown during the last partial
         slice of a completed run must still be reported *)
      check_retransmits ~completed:true
    else begin
      check_retransmits ~completed:false;
      check_progress ();
      (match t.max_cycles with
      | Some budget when target >= budget ->
          raise
            (Expired
               (Printf.sprintf
                  "watchdog: simulated-cycle budget %d exceeded with %d \
                   events still pending and %d retransmissions so far%s"
                  budget (Engine.pending engine) (retransmits ())
                  (occupancy ())))
      | Some _ | None -> ());
      loop (target + t.check_interval)
    end
  in
  loop (Engine.now engine + t.check_interval)
