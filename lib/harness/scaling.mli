(** Node-count scaling sweeps past the paper's 32-node machine.

    The paper evaluates a fixed 32-node CM-5; this sweep re-runs the
    Figure 3 applications on both systems at 64, 128 and 256 nodes to
    check that the simulation (and the calendar event queue feeding it)
    sustains the larger machines, and how the Typhoon/Stache-to-DirNNB
    ratio moves as the same data set is cut ever finer.

    Simulated cycle counts are deterministic — independent of host, of
    wall-clock and of the queue implementation ([TT_EVQ]) — so the
    rendered table is diff-stable and gates [scripts/check_scaling.sh].
    Host CPU seconds are reported separately per point and never appear
    in {!render} or {!to_json}. *)

type point = {
  app : string;
  nodes : int;
  dirnnb_cycles : int;
  stache_cycles : int;
  cpu_s : float;  (** host CPU seconds for the pair of runs (not rendered) *)
}

val default_nodes : int list
(** [[64; 128; 256]] *)

val run :
  ?apps:string list -> ?proto:string -> ?nodes:int list -> ?scale:float ->
  ?cache_kb:int -> ?domains:int -> unit -> point list
(** Defaults: all five Figure 3 apps, {!default_nodes}, scale 0.25 of the
    small data set, 256 KB CPU caches.  [proto] (default ["stache"])
    selects the Typhoon-side protocol for the [stache_cycles] column, any
    of {!Catalog.protocols}.  Points come out app-major in the
    order given.  [domains > 1] fans the (app, nodes) grid cells out over
    that many worker domains ({!Tt_sim.Domains.map}); cycle counts and
    point order are bit-identical to the sequential sweep.  Note [cpu_s]
    is process CPU time: with concurrent cells the per-point deltas
    overlap and overcount — compare wall-clock, not their sum. *)

val ratio : point -> float
(** [stache_cycles / dirnnb_cycles] — below 1.0 means Typhoon/Stache wins. *)

val render : ?proto:string -> point list -> string
(** Deterministic ASCII table (simulated cycles and ratios only); pass the
    same [proto] as {!run} to label the Typhoon column (the default
    ["stache"] renders the historical header). *)

val total_cpu_s : point list -> float

val to_json : point list -> string
(** Deterministic JSON: [{"points": [{app, nodes, dirnnb_cycles,
    stache_cycles}, ...]}] — for [TT_BENCH_JSON] capture into
    BENCH_RESULTS.json. *)
