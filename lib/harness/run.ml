module Engine = Tt_sim.Engine
module Thread = Tt_sim.Thread
module Barrier = Tt_sim.Barrier
module Lock = Tt_sim.Lock
module Stats = Tt_util.Stats
module Env = Tt_app.Env

type result = {
  app_name : string;
  machine_label : string;
  cycles : int;
  proc_cycles : int array;
  run_stats : Stats.t;
}

exception Stuck of string

let make_env (machine : Machine.t) ~barrier ~locks ~locks_mu ~proc th =
  (* The lock table is lazily populated on first acquire.  All of one
     machine's threads run on one domain, but under the domains-parallel
     harness a hook or probe on another domain may look a lock up
     concurrently, and an unsynchronized Hashtbl resize is memory-unsafe —
     so find-or-create holds a mutex.  [Lock.create] only allocates (no
     engine interaction), so which caller wins the race never changes
     simulated behavior: everyone proceeds with the single winner. *)
  let lock_of i =
    Mutex.lock locks_mu;
    let l =
      match Hashtbl.find_opt locks i with
      | Some l -> l
      | None ->
          let l = Lock.create machine.Machine.engine () in
          Hashtbl.replace locks i l;
          l
    in
    Mutex.unlock locks_mu;
    l
  in
  {
    Env.proc;
    nprocs = machine.Machine.mparams.Params.nodes;
    read = (fun a -> machine.Machine.read ~node:proc th a);
    write = (fun a v -> machine.Machine.write ~node:proc th a v);
    read_int = (fun a -> machine.Machine.read_int ~node:proc th a);
    write_int = (fun a v -> machine.Machine.write_int ~node:proc th a v);
    work =
      (fun n ->
        Thread.advance th n;
        Thread.maybe_yield th);
    prefetch = (fun vaddr -> machine.Machine.mprefetch ~node:proc th vaddr);
    barrier =
      (fun () ->
        (* release-consistency: flush this proc's dirty updates (and await
           their acks) before anyone can leave the barrier and read them *)
        (match machine.Machine.pre_barrier with
        | Some f -> f ~proc th
        | None -> ());
        Barrier.wait barrier th;
        match machine.Machine.on_barrier with
        | Some f -> f ~proc th
        | None -> ());
    lock = (fun i -> Lock.acquire (lock_of i) th);
    unlock =
      (fun i ->
        (match machine.Machine.pre_release with
        | Some f -> f ~proc th
        | None -> ());
        Lock.release (lock_of i) th);
    alloc = (fun ?home bytes -> machine.Machine.alloc ~node:proc th ?home bytes);
    alloc_kind =
      (fun kind ?home bytes ->
        match Hashtbl.find_opt machine.Machine.special_allocs kind with
        | Some f -> f ~node:proc th ?home bytes
        | None -> machine.Machine.alloc ~node:proc th ?home bytes);
    hook =
      (fun name ->
        match Hashtbl.find_opt machine.Machine.hooks name with
        | Some f -> f ~node:proc th
        | None -> ());
    has_hook = (fun name -> Hashtbl.mem machine.Machine.hooks name);
  }

let spmd (machine : Machine.t) ~name ?(check = true) ?watchdog body =
  let nprocs = machine.Machine.mparams.Params.nodes in
  let barrier =
    Barrier.create machine.Machine.engine ~participants:nprocs
      ~latency:machine.Machine.mparams.Params.barrier_latency
  in
  let locks = Hashtbl.create 16 in
  let locks_mu = Mutex.create () in
  let threads =
    Array.init nprocs (fun proc ->
        let th =
          Thread.spawn machine.Machine.engine
            ~quantum:machine.Machine.mparams.Params.quantum
            ~name:(Printf.sprintf "%s.cpu%d" name proc)
            (fun th -> body (make_env machine ~barrier ~locks ~locks_mu ~proc th))
        in
        (* per-node fast-path observability: every full fiber suspension
           vs every inline (elided) completion *)
        let ns = machine.Machine.node_stats proc in
        Thread.set_suspend_counters th
          ~taken:(Stats.counter ns "suspensions_taken")
          ~elided:(Stats.counter ns "suspensions_elided");
        th)
  in
  (match watchdog with
  | None -> Engine.run machine.Machine.engine
  | Some w ->
      Watchdog.drive w machine.Machine.engine
        ~progress:machine.Machine.delivered ~queues:machine.Machine.queues
        ~deadlock:machine.Machine.deadlock
        ?liveness:machine.Machine.liveness
        ~retransmits:(fun () ->
          Tt_net.Reliable.retransmits machine.Machine.net));
  Array.iteri
    (fun i th ->
      if not (Thread.finished th) then
        raise
          (Stuck
             (Printf.sprintf
                "%s on %s: processor %d never finished (blocked=%b, clock=%d)"
                name machine.Machine.label i (Thread.blocked th)
                (Thread.clock th))))
    threads;
  if check then begin
    match machine.Machine.check_invariants () with
    | Ok () -> ()
    | Error msg ->
        raise
          (Stuck
             (Printf.sprintf "%s on %s: invariant violation: %s" name
                machine.Machine.label msg))
  end;
  let proc_cycles = Array.map Thread.clock threads in
  {
    app_name = name;
    machine_label = machine.Machine.label;
    cycles = Array.fold_left max 0 proc_cycles;
    proc_cycles;
    run_stats = machine.Machine.merged_stats ();
  }

let pp_result ppf r =
  Format.fprintf ppf "%s on %s: %d cycles" r.app_name r.machine_label r.cycles
