module Stats = Tt_util.Stats
module Reliable = Tt_net.Reliable
module Faults = Tt_net.Faults

type outcome = Passed | Failed of string

type point = {
  app : string;
  machine_label : string;
  drop : float;
  crash : Recovery.rejoin option;
  recovery : Recovery.outcome option;
  seed : int;
  cycles : int;
  base_cycles : int;
  data_sent : int;
  retransmits : int;
  acks : int;
  dropped : int;
  duplicated : int;
  reordered : int;
  spilled : int;
  blocked : int;
  outcome : outcome;
}

let machines =
  [ "stache"; "dirnnb"; "update"; "migratory"; "prodcons"; "widerep";
    "delayed"; "adaptive" ]

let make_machine ~machine ?reliability params =
  match machine with
  | "stache" -> Machine.typhoon_stache ?reliability params
  | "dirnnb" -> Machine.dirnnb ?reliability params
  | "update" -> Machine.typhoon_em3d ?reliability params
  | "migratory" | "prodcons" | "widerep" | "delayed" | "adaptive" ->
      Catalog.machine_of_proto ?reliability ~proto:machine params
  | other ->
      invalid_arg
        (Printf.sprintf "Faultsweep: unknown machine %S (expected %s)" other
           (String.concat "|" machines))

(* A drop rate implies correlated dup/reorder rates so one sweep axis
   exercises the whole fault taxonomy.  Per-vnet overrides replace the
   axis rate for that vnet only; the taxonomy still follows each vnet's
   effective drop rate, so an asymmetric grid cell (lossy requests under
   clean responses, or vice versa) keeps the same fault mix per vnet. *)
let config_of ?request_drop ?response_drop ?burst ?crashes ~drop ~seed () =
  let rates d =
    { Faults.drop = d; dup = d /. 4.0; reorder = d /. 2.0 }
  in
  let req = Option.value request_drop ~default:drop in
  let resp = Option.value response_drop ~default:drop in
  Faults.per_vnet ~seed ?burst ?crashes ~request:(rates req)
    ~response:(rates resp) ()

let total_msgs stats =
  Stats.get stats "msgs.request" + Stats.get stats "msgs.response"

let run_app ?request_drop ?response_drop ?burst ?credits ?spill
    ?(crashes = [ None ]) ~machine ~name ~size ~scale ~nodes ~drops ~seeds () =
  (* fault-free baseline under ample default capacities: the oracle every
     faulty run must match, and the yardstick for the watchdog budgets —
     never the overload configuration itself *)
  let base_params = { Params.default with Params.nodes } in
  (* grid cells may additionally squeeze the flow-control capacities, so a
     fault storm meets real backpressure (spills, blocked senders) instead
     of unbounded parking *)
  let params =
    let p = base_params in
    let p =
      match credits with
      | Some c ->
          { p with Params.flow_request_credits = c; flow_response_credits = c }
      | None -> p
    in
    match spill with
    | Some s -> { p with Params.flow_spill_capacity = s }
    | None -> p
  in
  let base, base_msgs, latency =
    let m = make_machine ~machine base_params in
    let app = Catalog.make ~name ~size ~scale ~nprocs:nodes in
    let r = Run.spmd m ~name app.Catalog.body in
    ignore
      (Run.spmd m ~name:(name ^ "-verify") ~check:false app.Catalog.verify);
    (r, total_msgs r.Run.run_stats, Reliable.latency m.Machine.net)
  in
  (* crash cells share {!Recovery.run}'s geometry: victim 0 goes down at
     40% of the fault-free runtime, and the rejoin windows sit against the
     same detection lease (heartbeat period 32 fabric latencies, budget 4) *)
  let crash_at = max 1 (int_of_float (0.4 *. float_of_int base.Run.cycles)) in
  let lease = 4 * (32 * latency) in
  List.concat_map
    (fun crash ->
      List.concat_map
        (fun drop ->
          List.map (fun seed -> (crash, drop, seed)) seeds)
        drops)
    crashes
  |> List.map (fun (crash, drop, seed) ->
         match crash with
         | Some rj ->
             let rejoin =
               match rj with
               | Recovery.Never -> None
               | Recovery.Quick -> Some (crash_at + (lease / 2))
               | Recovery.Late -> Some (crash_at + (4 * lease))
             in
             let config =
               config_of ?request_drop ?response_drop ?burst
                 ~crashes:[ Faults.crash ?rejoin ~victim:0 ~at:crash_at () ]
                 ~drop ~seed ()
             in
             (* the recovery harness owns the whole cell: liveness wiring,
                checkpoints, rollback, and oracle verification.  Capacity
                squeezes ([credits]/[spill]) don't apply to crash cells. *)
             let er =
               Recovery.exec ~machine ~name ~size ~scale ~nodes ~config ~base
                 ~base_msgs ()
             in
             let s = er.Recovery.cell_stats in
             {
               app = name;
               machine_label = er.Recovery.label;
               drop;
               crash;
               recovery = Some er.Recovery.outcome;
               seed;
               cycles = er.Recovery.cycles;
               base_cycles = base.Run.cycles;
               data_sent = Stats.get s "reliable.data_sent";
               retransmits = Stats.get s "reliable.retransmits";
               acks = Stats.get s "reliable.acks_sent";
               dropped = Stats.get s "faults.dropped";
               duplicated = Stats.get s "faults.duplicated";
               reordered = Stats.get s "faults.reordered";
               spilled = Stats.get s "flow.spilled";
               blocked = Stats.get s "flow.blocked";
               outcome =
                 (match er.Recovery.failed with
                 | None -> Passed
                 | Some msg -> Failed msg);
             }
         | None ->
          let reliability =
            Reliable.Flaky
              (config_of ?request_drop ?response_drop ?burst ~drop ~seed ())
          in
          let m = make_machine ~machine ~reliability params in
          let watchdog =
            Watchdog.create
              ~max_cycles:((base.Run.cycles * 100) + 5_000_000)
              ~max_retransmits:((base_msgs * 10) + 100_000)
              ~max_stall:((base.Run.cycles * 10) + 1_000_000)
              ()
          in
          let app = Catalog.make ~name ~size ~scale ~nprocs:nodes in
          let finish outcome cycles =
            let s = m.Machine.merged_stats () in
            {
              app = name;
              machine_label = m.Machine.label;
              drop;
              crash = None;
              recovery = None;
              seed;
              cycles;
              base_cycles = base.Run.cycles;
              data_sent = Stats.get s "reliable.data_sent";
              retransmits = Stats.get s "reliable.retransmits";
              acks = Stats.get s "reliable.acks_sent";
              dropped = Stats.get s "faults.dropped";
              duplicated = Stats.get s "faults.duplicated";
              reordered = Stats.get s "faults.reordered";
              spilled = Stats.get s "flow.spilled";
              blocked = Stats.get s "flow.blocked";
              outcome;
            }
          in
          match
            let r = Run.spmd m ~name ~watchdog app.Catalog.body in
            (* the app's own verify checks the final data against its
               sequential oracle — "results identical to fault-free" *)
            ignore
              (Run.spmd m ~name:(name ^ "-verify") ~check:false ~watchdog
                 app.Catalog.verify);
            r
          with
          | r -> finish Passed r.Run.cycles
          | exception Reliable.Link_failed msg ->
              finish (Failed ("Link_failed: " ^ msg)) 0
          | exception Tt_net.Overload.Overload msg ->
              finish (Failed ("Overload: " ^ msg)) 0
          | exception Watchdog.Expired msg -> finish (Failed msg) 0
          | exception Run.Stuck msg -> finish (Failed msg) 0
          | exception Failure msg -> finish (Failed msg) 0
          | exception Invalid_argument msg ->
              finish (Failed ("Invalid_argument: " ^ msg)) 0)

let run ?(apps = Catalog.names) ?(machine = "stache")
    ?(drops = [ 0.01; 0.05 ]) ?(seeds = [ 1; 2; 3 ]) ?(crashes = [ None ])
    ?request_drop ?response_drop ?burst ?credits ?spill ?(size = Catalog.Small)
    ?(scale = 0.25) ?(nodes = 8) ?(domains = 0) () =
  if
    machine <> "stache" && machine <> "dirnnb"
    && List.exists Option.is_some crashes
  then
    invalid_arg
      "Faultsweep: custom protocols do not implement the crash-recovery \
       entry points; use --machine stache or dirnnb with --crash";
  (* parallel unit is the app, not the cell: every faulty cell compares
     against its app's fault-free baseline, so the (baseline, grid) bundle
     stays on one domain and the whole bundle fans out *)
  Tt_sim.Domains.map ~domains
    (fun name ->
      run_app ?request_drop ?response_drop ?burst ?credits ?spill ~crashes
        ~machine ~name ~size ~scale ~nodes ~drops ~seeds ())
    apps
  |> List.concat

let all_passed points =
  List.for_all (fun p -> p.outcome = Passed) points

let render points =
  let t =
    Tt_util.Tablefmt.create
      ~title:
        "Fault sweep: Fig. 3 apps over an unreliable fabric (results \
         verified against the fault-free oracle)"
      ~columns:
        [ ("app", Tt_util.Tablefmt.Left); ("machine", Tt_util.Tablefmt.Left);
          ("drop%", Tt_util.Tablefmt.Right);
          ("crash", Tt_util.Tablefmt.Left); ("seed", Tt_util.Tablefmt.Right);
          ("cycles", Tt_util.Tablefmt.Right);
          ("xbase", Tt_util.Tablefmt.Right);
          ("sent", Tt_util.Tablefmt.Right); ("retx", Tt_util.Tablefmt.Right);
          ("acks", Tt_util.Tablefmt.Right);
          ("dropped", Tt_util.Tablefmt.Right);
          ("dup", Tt_util.Tablefmt.Right); ("reord", Tt_util.Tablefmt.Right);
          ("spill", Tt_util.Tablefmt.Right); ("blk", Tt_util.Tablefmt.Right);
          ("result", Tt_util.Tablefmt.Left) ]
  in
  List.iter
    (fun p ->
      Tt_util.Tablefmt.add_row t
        [ p.app; p.machine_label;
          Printf.sprintf "%.1f" (100.0 *. p.drop);
          (match p.crash with
          | None -> "-"
          | Some rj -> Recovery.rejoin_label rj);
          string_of_int p.seed; string_of_int p.cycles;
          (if p.cycles = 0 then "-"
           else
             Printf.sprintf "%.2f"
               (float_of_int p.cycles /. float_of_int p.base_cycles));
          string_of_int p.data_sent; string_of_int p.retransmits;
          string_of_int p.acks; string_of_int p.dropped;
          string_of_int p.duplicated; string_of_int p.reordered;
          string_of_int p.spilled; string_of_int p.blocked;
          (match (p.outcome, p.recovery) with
          | Failed m, _ -> "FAIL: " ^ m
          | Passed, None -> "ok"
          | Passed, Some o -> "ok: " ^ Recovery.outcome_label o) ])
    points;
  Tt_util.Tablefmt.render t
