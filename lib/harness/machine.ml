module Engine = Tt_sim.Engine
module Thread = Tt_sim.Thread
module Stats = Tt_util.Stats
module Typhoon = Tt_typhoon.System
module Dirnnb = Tt_dirnnb.System
module Stache = Tt_stache.Stache

type t = {
  label : string;
  engine : Engine.t;
  mparams : Params.t;
  net : Tt_net.Reliable.t;
  read : node:int -> Thread.t -> int -> float;
  write : node:int -> Thread.t -> int -> float -> unit;
  read_int : node:int -> Thread.t -> int -> int;
  write_int : node:int -> Thread.t -> int -> int -> unit;
  alloc : node:int -> Thread.t -> ?home:int -> int -> int;
  mprefetch : node:int -> Thread.t -> int -> unit;
  node_stats : int -> Stats.t;
  merged_stats : unit -> Stats.t;
  check_invariants : unit -> (unit, string) result;
  (* watchdog probes: delivered-work progress counter, queue-occupancy
     renderer, and waits-for-graph deadlock check *)
  delivered : unit -> int;
  queues : unit -> string;
  deadlock : unit -> string option;
  hooks : (string, node:int -> Thread.t -> unit) Hashtbl.t;
  special_allocs :
    (string, node:int -> Thread.t -> ?home:int -> int -> int) Hashtbl.t;
  (* recovery-layer attachment points, None unless a recovery harness is
     driving this machine: a post-barrier callback (checkpoint snapshots)
     and a liveness census for watchdog diagnostics *)
  mutable on_barrier : (proc:int -> Thread.t -> unit) option;
  mutable liveness : (unit -> string) option;
  (* release-consistency attachment points for update-family protocols:
     called by Run's environment before entering a barrier and before
     releasing a lock, so dirty blocks are flushed (and acks awaited)
     before any other processor can synchronize past the release point *)
  mutable pre_barrier : (proc:int -> Thread.t -> unit) option;
  mutable pre_release : (proc:int -> Thread.t -> unit) option;
}

let typhoon_stache_full ?reliability ?max_stache_pages params =
  let engine = Engine.create () in
  let sys = Typhoon.create ?reliability engine params in
  let max_stache_pages =
    match max_stache_pages with
    | Some _ as v -> v
    | None -> params.Params.stache_max_pages
  in
  let stache = Stache.install sys ?max_stache_pages () in
  let machine =
    {
      label = "typhoon/stache";
      engine;
      mparams = params;
      net = Typhoon.net sys;
      read = (fun ~node th a -> Typhoon.cpu_read_f64 sys ~node th a);
      write = (fun ~node th a v -> Typhoon.cpu_write_f64 sys ~node th a v);
      read_int = (fun ~node th a -> Typhoon.cpu_read_int sys ~node th a);
      write_int = (fun ~node th a v -> Typhoon.cpu_write_int sys ~node th a v);
      alloc =
        (fun ~node th ?home bytes ->
          Stache.alloc stache ~th ~node ?home ~bytes ());
      mprefetch =
        (fun ~node th vaddr -> Stache.prefetch stache ~th ~node ~vaddr `Ro);
      node_stats = (fun node -> Typhoon.node_stats sys node);
      merged_stats =
        (fun () ->
          let out = Stats.create "typhoon/stache" in
          Stats.merge_into ~dst:out (Typhoon.merged_stats sys);
          Stats.merge_into ~dst:out (Stache.stats stache);
          out);
      check_invariants = (fun () -> Stache.check_invariants stache);
      delivered = (fun () -> Typhoon.delivered sys);
      queues = (fun () -> Typhoon.queue_summary sys);
      deadlock = (fun () -> Typhoon.deadlock_probe sys);
      hooks = Hashtbl.create 4;
      special_allocs = Hashtbl.create 4;
      on_barrier = None;
      liveness = None;
      pre_barrier = None;
      pre_release = None;
    }
  in
  machine, sys, stache

let typhoon_stache ?reliability ?max_stache_pages params =
  let m, _, _ = typhoon_stache_full ?reliability ?max_stache_pages params in
  m

let dirnnb_full ?reliability params =
  let engine = Engine.create () in
  let sys = Dirnnb.create ?reliability engine params in
  let machine =
    {
      label = "dirnnb";
      engine;
      mparams = params;
      net = Dirnnb.net sys;
      read = (fun ~node th a -> Dirnnb.cpu_read_f64 sys ~node th a);
      write = (fun ~node th a v -> Dirnnb.cpu_write_f64 sys ~node th a v);
      read_int = (fun ~node th a -> Dirnnb.cpu_read_int sys ~node th a);
      write_int = (fun ~node th a v -> Dirnnb.cpu_write_int sys ~node th a v);
      alloc =
        (fun ~node th ?home bytes -> Dirnnb.alloc sys ~th ~node ?home ~bytes ());
      mprefetch = (fun ~node:_ _th _vaddr -> ());
      node_stats = (fun node -> Dirnnb.node_stats sys node);
      merged_stats = (fun () -> Dirnnb.merged_stats sys);
      check_invariants = (fun () -> Dirnnb.check_invariants sys);
      delivered = (fun () -> Dirnnb.delivered sys);
      queues = (fun () -> Dirnnb.queue_summary sys);
      deadlock = (fun () -> None);
      hooks = Hashtbl.create 4;
      special_allocs = Hashtbl.create 4;
      on_barrier = None;
      liveness = None;
      pre_barrier = None;
      pre_release = None;
    }
  in
  machine, sys

let dirnnb ?reliability params =
  let m, _ = dirnnb_full ?reliability params in
  m

let typhoon_em3d_full ?reliability ?max_stache_pages params =
  let machine, sys, stache =
    typhoon_stache_full ?reliability ?max_stache_pages params
  in
  let proto = Tt_custom.Em3d_proto.install sys stache in
  let machine =
    { machine with
      label = "typhoon/update";
      merged_stats =
        (fun () ->
          let out = machine.merged_stats () in
          Stats.merge_into ~dst:out (Tt_custom.Em3d_proto.stats proto);
          out) }
  in
  List.iter
    (fun kind ->
      Hashtbl.replace machine.hooks ("em3d.sync:" ^ kind) (fun ~node th ->
          Tt_custom.Em3d_proto.flush_and_wait proto ~th ~node ~kind);
      Hashtbl.replace machine.special_allocs ("em3d:" ^ kind)
        (fun ~node th ?home bytes ->
          Tt_custom.Em3d_proto.alloc proto ~th ~node ~kind ?home ~bytes ()))
    [ "e"; "h" ];
  machine, sys, stache, proto

let typhoon_em3d ?reliability ?max_stache_pages params =
  let m, _, _, _ = typhoon_em3d_full ?reliability ?max_stache_pages params in
  m

module Proto = Tt_custom.Proto

let typhoon_zoo_full ?reliability ?max_stache_pages ~policy params =
  let machine, sys, stache =
    typhoon_stache_full ?reliability ?max_stache_pages params
  in
  let proto = Proto.install sys stache in
  let machine =
    { machine with
      label = "typhoon/" ^ Proto.name_of_pol policy;
      alloc =
        (fun ~node th ?home bytes ->
          (* page-aligned so adopted pages never share with other data *)
          let vaddr =
            Stache.alloc stache ~th ~node ?home ~align:Tt_mem.Addr.page_size
              ~bytes ()
          in
          Proto.adopt proto ~th ~node ~vaddr ~bytes policy;
          vaddr);
      merged_stats =
        (fun () ->
          let out = machine.merged_stats () in
          Stats.merge_into ~dst:out (Proto.stats proto);
          out) }
  in
  let flush ~proc th = Proto.flush_release proto ~th ~node:proc in
  machine.pre_barrier <- Some flush;
  machine.pre_release <- Some flush;
  machine, sys, stache, proto

let typhoon_zoo ?reliability ?max_stache_pages ~policy params =
  let m, _, _, _ =
    typhoon_zoo_full ?reliability ?max_stache_pages ~policy params
  in
  m

let typhoon_adaptive_full ?reliability ?max_stache_pages params =
  let machine, sys, stache =
    typhoon_stache_full ?reliability ?max_stache_pages params
  in
  let proto = Proto.install sys stache in
  let adapt = Tt_custom.Adaptive.install sys stache proto in
  let machine =
    { machine with
      label = "typhoon/adaptive";
      alloc =
        (fun ~node th ?home bytes ->
          (* page-aligned like the static zoo machines, so a retyped page
             never drags unrelated data (or another allocation's straddling
             block) under its policy *)
          Stache.alloc stache ~th ~node ?home ~align:Tt_mem.Addr.page_size
            ~bytes ());
      merged_stats =
        (fun () ->
          let out = machine.merged_stats () in
          Stats.merge_into ~dst:out (Proto.stats proto);
          Stats.merge_into ~dst:out (Tt_custom.Adaptive.stats adapt);
          out) }
  in
  (* pages start on the default protocol; the barrier hook flushes this
     node's un-flushed zoo state, then lets the adaptive layer reclassify
     and switch the pages it homes *)
  machine.pre_barrier <-
    Some
      (fun ~proc th ->
        Proto.flush_release proto ~th ~node:proc;
        Tt_custom.Adaptive.on_sync adapt ~node:proc th);
  (* a second decision point after the barrier completes: remote fetches
     served by this node's NP while its CPU sat waiting (evidence that
     landed after the pre-barrier pass) are classified now instead of a
     whole phase later *)
  machine.on_barrier <-
    Some (fun ~proc th -> Tt_custom.Adaptive.on_sync adapt ~node:proc th);
  machine.pre_release <-
    Some
      (fun ~proc th ->
        Proto.flush_release proto ~th ~node:proc;
        Tt_custom.Adaptive.on_release adapt ~node:proc th);
  machine, sys, stache, proto, adapt

let typhoon_adaptive ?reliability ?max_stache_pages params =
  let m, _, _, _, _ =
    typhoon_adaptive_full ?reliability ?max_stache_pages params
  in
  m
