(** Protocol-zoo shootout: the app x protocol x node-count grid behind
    [tt proto].

    Every cell runs one catalog app ({!Catalog.all_names} — the Figure 3/4
    apps plus the synthetic migratory and producer-consumer companions) on
    one protocol machine ({!Catalog.protocols}, plus the hand-written EM3D
    ["update"] reference row on the EM3D app) and verifies the results
    against the app's sequential oracle.  Simulated cycles, message counts
    and adaptive switch counts are deterministic, so the rendered table and
    JSON are diff-stable across hosts and [--domains] values. *)

type cell = {
  app : string;
  proto : string;
  nodes : int;
  cycles : int;
  msgs : int;  (** sequenced sends, request + response vnets *)
  switches : int;  (** adaptive policy switches (0 off the adaptive machine) *)
  cpu_s : float;  (** host CPU seconds (not rendered) *)
}

val default_nodes : int list
(** [[8; 16]] *)

val default_protos : string list
(** {!Catalog.protocols} *)

val run :
  ?apps:string list -> ?protos:string list -> ?nodes:int list ->
  ?scale:float -> ?cache_kb:int -> ?domains:int -> unit -> cell list
(** Run the grid (small data sets, default scale 0.25).  When the apps
    include ["em3d"] and [protos] is the default, an ["update"] reference
    row is added for it.  [domains > 1] fans the cells out bit-identically
    ({!Tt_sim.Domains.map}). *)

val best_static :
  cell list -> app:string -> nodes:int -> cell option
(** The cheapest non-adaptive generic protocol at one grid point
    (excludes the EM3D ["update"] reference row). *)

val adaptive_regressions : ?tolerance:float -> cell list -> string list
(** Grid points where adaptive exceeds the best static protocol by more
    than [tolerance] (default 5%); empty means the adaptive gate passes. *)

val em3d_update_wins : cell list -> (int * float) list
(** Per node count: percent of cycles the EM3D update protocol saves over
    the invalidate baseline (the Figure 4 headline). *)

val render : cell list -> string
(** Deterministic table plus per-point adaptive-vs-best-static and EM3D
    headline summary lines. *)

val total_cpu_s : cell list -> float

val to_json : cell list -> string
(** Deterministic JSON for the ["protozoo"] key of BENCH_RESULTS.json:
    [{"cells": [...], "em3d_update_win_pct": {...},
    "adaptive_max_over_best_static_pct": ...}]. *)
