(** Fault-tolerance sweep: the Fig. 3 applications on an unreliable fabric.

    For each app the sweep first takes a fault-free baseline (whose verify
    pass establishes the oracle results), then re-runs under
    [Reliable.Flaky] across a drop-rate × seed grid.  Each faulty run must
    finish under a {!Watchdog} budget derived from the baseline, pass the
    machine's global coherence audit, and reproduce the application's
    results exactly (the app's own verify body checks final data against
    its sequential oracle).  Failures are captured per point rather than
    raised, so one bad cell doesn't abort the sweep. *)

type outcome = Passed | Failed of string

type point = {
  app : string;
  machine_label : string;
  drop : float;  (** per-message drop probability, both vnets *)
  crash : Recovery.rejoin option;
      (** [Some _] marks a crash cell: victim 0 crash-stops at 40% of the
          baseline runtime with the given rejoin window, on top of the
          cell's message faults *)
  recovery : Recovery.outcome option;
      (** how a crash cell's run was brought to verified results *)
  seed : int;
  cycles : int;  (** 0 when the run failed *)
  base_cycles : int;
  data_sent : int;  (** sequenced sends, incl. the baseline's traffic *)
  retransmits : int;
  acks : int;  (** standalone (non-piggybacked) acks *)
  dropped : int;
  duplicated : int;
  reordered : int;
  spilled : int;  (** handler sends redirected to the §5.1 overflow buffer *)
  blocked : int;  (** CPU sends that parked on exhausted credits *)
  outcome : outcome;
}

val machines : string list
(** Accepted machine names: ["stache"], ["dirnnb"], ["update"], plus the
    protocol zoo (["migratory"], ["prodcons"], ["widerep"], ["delayed"])
    and ["adaptive"]. *)

val config_of :
  ?request_drop:float -> ?response_drop:float -> ?burst:Tt_net.Faults.burst ->
  ?crashes:Tt_net.Faults.crash list -> drop:float -> seed:int -> unit ->
  Tt_net.Faults.config
(** The sweep's fault taxonomy for one grid cell: drop at the given rate,
    duplicate at a quarter of it, reorder at half of it, on both vnets.
    [request_drop]/[response_drop] override the drop rate for that vnet
    only (the per-vnet dup/reorder rates follow the vnet's effective drop
    rate), giving asymmetric cells such as a lossy request network under a
    clean response network.  [burst] turns the rates into Gilbert–Elliott
    bursty loss (see {!Tt_net.Faults.bursty}). *)

val run :
  ?apps:string list -> ?machine:string -> ?drops:float list ->
  ?seeds:int list -> ?crashes:Recovery.rejoin option list ->
  ?request_drop:float -> ?response_drop:float ->
  ?burst:Tt_net.Faults.burst -> ?credits:int -> ?spill:int ->
  ?size:Catalog.size -> ?scale:float -> ?nodes:int -> ?domains:int ->
  unit -> point list
(** Defaults: all catalog apps, machine ["stache"], drops [[0.01; 0.05]],
    seeds [[1; 2; 3]], no crashes, small data sets at scale 0.25 on
    8 nodes.  [request_drop]/[response_drop] apply the same per-vnet
    override to every grid cell (the [drops] axis still sets the other
    vnet's rate).  [crashes] adds a crash axis to the grid
    (crashes × drops × seeds): [None] is the ordinary message-faults-only
    cell, [Some rejoin] additionally crash-stops victim 0 at 40% of the
    baseline runtime and hands the cell to {!Recovery.exec}, which reports
    how it was brought to verified results (masked / rehomed /
    rolled-back) in {!point.recovery}.  Crash cells ignore the
    [credits]/[spill] squeezes and raise [Invalid_argument] on the
    ["update"] machine (no recovery entry points).
    [credits]/[spill] squeeze the flow-control capacities for the faulty
    runs (the baseline always uses the ample defaults), so cells exercise
    real backpressure: spilled handler sends, blocked CPU senders, and —
    when the spill capacity is small enough — a graceful [Overload] abort
    instead of unbounded buffering.  [domains > 1] fans the per-app
    (baseline + grid) bundles out over worker domains with bit-identical
    points ({!Tt_sim.Domains.map}). *)

val all_passed : point list -> bool

val render : point list -> string
