(** PHOLD workload for the domains-parallel engine.

    The standard PDES benchmark: [nodes] logical processes exchange
    self-reproducing events with random targets and delays, partitioned
    over [partitions] private engines advanced in lookahead windows by
    {!Tt_sim.Domains}.  Used three ways: as the determinism witness in
    test_parallel.ml (per-partition event-key logs bit-identical across
    [domains] counts; per-node event counts and final time invariant
    across [partitions] counts), as the parallel-speedup micro-benchmark
    in bench/, and as the [tt pdes] demo. *)

type result = {
  counts : int array;  (** events fired per node *)
  total : int;
  final_time : int;  (** max partition-engine clock at drain *)
  epochs : int;  (** lookahead windows stepped through *)
  log_hashes : int array;
      (** per-partition hash folded over the packed (time, salt, seq) key
          of every fired event, in drain order *)
  drained : bool;  (** [true] — the population always drains at horizon *)
}

val run :
  ?seed:int ->
  ?initial:int ->
  ?mean_step:int ->
  ?lookahead:int ->
  nodes:int ->
  partitions:int ->
  horizon:int ->
  domains:int ->
  unit ->
  result
(** Defaults: seed 42, [initial] 4 events per node, mean inter-event step
    40 cycles, lookahead [Params.default.net_latency].  Events fired at or
    past [horizon] stop reproducing, so the run drains.  [partitions] is
    clamped to [nodes]; [domains <= 1] runs every partition on the calling
    domain (the oracle the parallel runs are compared against). *)
