(** SPMD experiment runner.

    Spawns one CPU thread per node running the same application body,
    provides it the {!Tt_app.Env.t} for its processor, drives the simulation
    to completion and reports execution time (the paper's metric: maximum
    processor cycle count) plus merged statistics. *)

type result = {
  app_name : string;
  machine_label : string;
  cycles : int;  (** execution time: max over processors *)
  proc_cycles : int array;
  run_stats : Tt_util.Stats.t;
}

exception Stuck of string
(** Raised when the event queue drains with unfinished processors (protocol
    deadlock or a lost wakeup — always a bug). *)

val spmd :
  Machine.t -> name:string -> ?check:bool -> ?watchdog:Watchdog.t ->
  (Tt_app.Env.t -> unit) -> result
(** [check] (default true) verifies machine invariants after the run.
    [watchdog] (default none) drives the engine under cycle/retransmission
    budgets and raises {!Watchdog.Expired} on livelock. *)

val pp_result : Format.formatter -> result -> unit
