open Tt_app

type app = {
  app_name : string;
  body : Env.t -> unit;
  verify : Env.t -> unit;
  work_items : int;
}

type size = Small | Large

let size_label = function Small -> "small" | Large -> "large"

let names = [ "appbt"; "barnes"; "mp3d"; "ocean"; "em3d" ]

let all_names = names @ [ "synthmig"; "synthpc" ]

(* Synthetic shootout companions: a migratory locked-counter stress and a
   phase-structured producer-consumer channel (the patterns the zoo's
   Migratory and Prodcons/Delayed policies target). *)
let synthmig_config ~size ~scale =
  let words, ops = match size with Small -> 64, 400 | Large -> 256, 2000 in
  let ops = max 50 (int_of_float (float_of_int ops *. scale)) in
  { Tt_app.Synth.default with
    Tt_app.Synth.words_per_proc = words;
    ops_per_proc = ops;
    write_pct = 50;
    remote_pct = 80;
    run_length = 2;
    sharing = Tt_app.Synth.Locked_counters;
    seed = 7 }

let synthpc_config ~size ~scale =
  let words, epochs = match size with Small -> 64, 32 | Large -> 256, 12 in
  let words = max 16 (int_of_float (float_of_int words *. scale)) in
  { Tt_app.Synth.default with
    Tt_app.Synth.words_per_proc = words;
    sharing = Tt_app.Synth.Producer_consumer;
    epochs;
    seed = 11 }

let make ~name ~size ~scale ~nprocs =
  match name with
  | "synthmig" ->
      let cfg = synthmig_config ~size ~scale in
      let i = Tt_app.Synth.make cfg ~nprocs in
      { app_name = name; body = i.Tt_app.Synth.body;
        verify = i.Tt_app.Synth.verify;
        work_items = cfg.Tt_app.Synth.ops_per_proc * nprocs }
  | "synthpc" ->
      let cfg = synthpc_config ~size ~scale in
      let i = Tt_app.Synth.make cfg ~nprocs in
      { app_name = name; body = i.Tt_app.Synth.body;
        verify = i.Tt_app.Synth.verify;
        work_items =
          cfg.Tt_app.Synth.words_per_proc * cfg.Tt_app.Synth.epochs * nprocs }
  | "appbt" ->
      let base = match size with Small -> Appbt.small | Large -> Appbt.large in
      let cfg = if scale = 1.0 then base else Appbt.scale base scale in
      let i = Appbt.make cfg ~nprocs in
      { app_name = name; body = i.Appbt.body; verify = i.Appbt.verify;
        work_items = cfg.Appbt.n * cfg.Appbt.n * cfg.Appbt.n }
  | "barnes" ->
      let base = match size with Small -> Barnes.small | Large -> Barnes.large in
      let cfg = if scale = 1.0 then base else Barnes.scale base scale in
      let i = Barnes.make cfg ~nprocs in
      { app_name = name; body = i.Barnes.body; verify = i.Barnes.verify;
        work_items = cfg.Barnes.bodies }
  | "mp3d" ->
      let base = match size with Small -> Mp3d.small | Large -> Mp3d.large in
      let cfg = if scale = 1.0 then base else Mp3d.scale base scale in
      let i = Mp3d.make cfg ~nprocs in
      { app_name = name; body = i.Mp3d.body; verify = i.Mp3d.verify;
        work_items = cfg.Mp3d.molecules }
  | "ocean" ->
      let base = match size with Small -> Ocean.small | Large -> Ocean.large in
      let cfg = if scale = 1.0 then base else Ocean.scale base scale in
      let i = Ocean.make cfg ~nprocs in
      { app_name = name; body = i.Ocean.body; verify = i.Ocean.verify;
        work_items = cfg.Ocean.n * cfg.Ocean.n }
  | "em3d" ->
      let base = match size with Small -> Em3d.small | Large -> Em3d.large in
      let cfg = if scale = 1.0 then base else Em3d.scale base scale in
      let i = Em3d.make cfg ~nprocs in
      { app_name = name; body = i.Em3d.body; verify = i.Em3d.verify;
        work_items = i.Em3d.edges }
  | other -> invalid_arg (Printf.sprintf "Catalog.make: unknown app %S" other)

let data_set_description ~name ~size ~scale =
  let suffix = if scale = 1.0 then "" else Printf.sprintf " (x%.2f)" scale in
  let pick small large = match size with Small -> small | Large -> large in
  (match name with
  | "synthmig" ->
      let cfg = synthmig_config ~size ~scale in
      Printf.sprintf "%d locked words/proc, %d ops"
        cfg.Tt_app.Synth.words_per_proc cfg.Tt_app.Synth.ops_per_proc
  | "synthpc" ->
      let cfg = synthpc_config ~size ~scale in
      Printf.sprintf "%d words/proc, %d epochs" cfg.Tt_app.Synth.words_per_proc
        cfg.Tt_app.Synth.epochs
  | "appbt" ->
      let base = pick Appbt.small Appbt.large in
      let cfg = if scale = 1.0 then base else Appbt.scale base scale in
      Printf.sprintf "%dx%dx%d" cfg.Appbt.n cfg.Appbt.n cfg.Appbt.n
  | "barnes" ->
      let base = pick Barnes.small Barnes.large in
      let cfg = if scale = 1.0 then base else Barnes.scale base scale in
      Printf.sprintf "%d bodies" cfg.Barnes.bodies
  | "mp3d" ->
      let base = pick Mp3d.small Mp3d.large in
      let cfg = if scale = 1.0 then base else Mp3d.scale base scale in
      Printf.sprintf "%d mols" cfg.Mp3d.molecules
  | "ocean" ->
      let base = pick Ocean.small Ocean.large in
      let cfg = if scale = 1.0 then base else Ocean.scale base scale in
      Printf.sprintf "%dx%d grid" cfg.Ocean.n cfg.Ocean.n
  | "em3d" ->
      let base = pick Em3d.small Em3d.large in
      let cfg = if scale = 1.0 then base else Em3d.scale base scale in
      Printf.sprintf "%d nodes, degree %d" cfg.Em3d.total_nodes cfg.Em3d.degree
  | other -> invalid_arg (Printf.sprintf "Catalog: unknown app %S" other))
  ^ suffix

(* --- the protocol registry (the zoo + the two fixed machines) --- *)

let protocols =
  [ "stache"; "migratory"; "prodcons"; "widerep"; "delayed"; "adaptive" ]

let unknown_protocol other =
  invalid_arg
    (Printf.sprintf "Catalog: unknown protocol %S (valid: %s)" other
       (String.concat ", " protocols))

let machine_of_proto ?reliability ?max_stache_pages ~proto params =
  match proto with
  | "stache" -> Machine.typhoon_stache ?reliability ?max_stache_pages params
  | "adaptive" ->
      Machine.typhoon_adaptive ?reliability ?max_stache_pages params
  | "migratory" | "prodcons" | "widerep" | "delayed" ->
      Machine.typhoon_zoo ?reliability ?max_stache_pages
        ~policy:(Tt_custom.Proto.pol_of_name proto) params
  | other -> unknown_protocol other
