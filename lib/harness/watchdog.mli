(** Global progress oracle: livelock detection for simulation runs.

    The quiescence check in {!Run} catches deadlock (the event queue drains
    with processors unfinished), but a livelocked run — retransmission
    storms, a protocol ping-ponging forever — keeps the queue busy and
    never returns.  The watchdog drives the engine in bounded slices and
    aborts with {!Expired} once a simulated-cycle or retransmission budget
    is exceeded. *)

type t

exception Expired of string

val create :
  ?max_cycles:int -> ?max_retransmits:int -> ?check_interval:int -> unit -> t
(** [max_cycles]: abort once simulated time passes this with events still
    pending.  [max_retransmits]: abort once the reliable transport has
    retransmitted more than this many messages.  [check_interval] (default
    10k cycles): how often budgets are re-checked.  Either budget may be
    omitted, but not both — a watchdog with nothing to enforce is rejected
    with [Invalid_argument]. *)

val drive : t -> Tt_sim.Engine.t -> retransmits:(unit -> int) -> unit
(** Run the engine to completion in [check_interval]-sized slices,
    re-checking budgets between slices and once more when the engine
    drains, so a retransmit budget blown during the final partial slice
    of a completed run is still reported.  Both {!Expired} messages
    include the current retransmit count and the number of pending
    events.  @raise Expired on a blown budget. *)
