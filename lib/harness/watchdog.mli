(** Global progress oracle: livelock and deadlock detection for runs.

    The quiescence check in {!Run} catches one deadlock shape (the event
    queue drains with processors unfinished), but a livelocked run —
    retransmission storms, a protocol ping-ponging forever — keeps the
    queue busy and never returns, and a flow-control deadlock (senders
    parked on credits nobody will return) can idle along on retransmission
    traffic alone.  The watchdog drives the engine in bounded slices and
    aborts with {!Expired} once a simulated-cycle, retransmission, or
    delivery-stall budget is exceeded — never a silent hang. *)

type t

exception Expired of string

val create :
  ?max_cycles:int ->
  ?max_retransmits:int ->
  ?max_stall:int ->
  ?check_interval:int ->
  unit ->
  t
(** [max_cycles]: abort once simulated time passes this with events still
    pending.  [max_retransmits]: abort once the reliable transport has
    retransmitted more than this many messages.  [max_stall]: abort once
    the delivered-work counter (the [progress] callback of {!drive}) sits
    still for this many simulated cycles with events pending.
    [check_interval] (default 10k cycles): how often budgets are
    re-checked.  Budgets may be omitted, but not all — a watchdog with
    nothing to enforce is rejected with [Invalid_argument]. *)

val drive :
  ?progress:(unit -> int) ->
  ?queues:(unit -> string) ->
  ?deadlock:(unit -> string option) ->
  ?liveness:(unit -> string) ->
  t ->
  Tt_sim.Engine.t ->
  retransmits:(unit -> int) ->
  unit
(** Run the engine to completion in [check_interval]-sized slices,
    re-checking budgets between slices and once more when the engine
    drains, so a retransmit budget blown during the final partial slice of
    a completed run is still reported.

    [progress] is the machine's monotone delivered-work counter (e.g.
    {!Tt_typhoon.System.delivered}); required for [max_stall] to have any
    effect.  [queues] renders a queue-occupancy summary appended to every
    {!Expired} message.  [deadlock] is a waits-for-graph probe (e.g.
    {!Tt_typhoon.System.deadlock_probe}) consulted only on slices with
    zero progress — a reported cycle aborts immediately with the probe's
    diagnostic naming the blocked nodes.  [liveness] renders the failure
    detector's census (e.g. {!Tt_net.Liveness.summary}), appended to every
    {!Expired} message so a crash-induced stall is distinguishable from a
    livelock.  All {!Expired} messages include the current retransmit
    count and the number of pending events.
    @raise Expired on a blown budget or a detected deadlock. *)
