(** Uniform access to the five benchmarks (Table 3). *)

type app = {
  app_name : string;
  body : Tt_app.Env.t -> unit;
  verify : Tt_app.Env.t -> unit;
  work_items : int;
      (** app-specific unit count (edges for em3d, cells, bodies …) for
          per-item metrics *)
}

type size = Small | Large

val size_label : size -> string

val names : string list
(** ["appbt"; "barnes"; "mp3d"; "ocean"; "em3d"] — Figure 3's order. *)

val make :
  name:string -> size:size -> scale:float -> nprocs:int -> app
(** [scale] < 1.0 shrinks the Table 3 data set for wall-clock-bounded runs
    (recorded in run output).  @raise Invalid_argument for unknown names. *)

val data_set_description : name:string -> size:size -> scale:float -> string
(** e.g. "12x12x12" — the Table 3 cell, adjusted for scale. *)

val all_names : string list
(** {!names} plus the synthetic shootout companions ["synthmig"] (migratory
    locked counters) and ["synthpc"] (phase-structured producer-consumer
    channel). *)

val protocols : string list
(** Protocol names accepted by {!machine_of_proto}: ["stache"] (the
    transparent default), the zoo (["migratory"], ["prodcons"],
    ["widerep"], ["delayed"]) and ["adaptive"] (per-page runtime
    switching). *)

val machine_of_proto :
  ?reliability:Tt_net.Reliable.policy -> ?max_stache_pages:int ->
  proto:string -> Params.t -> Machine.t
(** The Typhoon machine running the named protocol.
    @raise Invalid_argument for unknown names, listing the valid ones. *)
