type point = {
  app : string;
  nodes : int;
  dirnnb_cycles : int;
  stache_cycles : int;
  cpu_s : float;
}

let default_nodes = [ 64; 128; 256 ]

let ratio p = float_of_int p.stache_cycles /. float_of_int p.dirnnb_cycles

let run_one ~app ~proto ~nodes ~scale ~cache_kb =
  let t0 = Sys.time () in
  let params =
    Params.with_cache { Params.default with Params.nodes } (cache_kb * 1024)
  in
  let measure machine =
    let inst =
      Catalog.make ~name:app ~size:Catalog.Small ~scale ~nprocs:nodes
    in
    (Run.spmd machine ~name:inst.Catalog.app_name inst.Catalog.body)
      .Run.cycles
  in
  let dirnnb_cycles = measure (Machine.dirnnb params) in
  let stache_cycles = measure (Catalog.machine_of_proto ~proto params) in
  { app; nodes; dirnnb_cycles; stache_cycles; cpu_s = Sys.time () -. t0 }

let run ?(apps = Catalog.names) ?(proto = "stache") ?(nodes = default_nodes)
    ?(scale = 0.25) ?(cache_kb = 256) ?(domains = 0) () =
  (* Each grid cell is a self-contained pair of simulations — machines,
     fabrics, threads all private to the cell — so the cells fan out over
     worker domains untouched and the cycle columns are bit-identical to
     the sequential sweep; only wall-clock changes. *)
  List.concat_map (fun app -> List.map (fun n -> (app, n)) nodes) apps
  |> Tt_sim.Domains.map ~domains (fun (app, n) ->
         run_one ~app ~proto ~nodes:n ~scale ~cache_kb)

let render ?(proto = "stache") points =
  let typhoon_col =
    if proto = "stache" then "Typhoon/Stache" else "Typhoon/" ^ proto
  in
  let table =
    Tt_util.Tablefmt.create
      ~title:
        (Printf.sprintf
           "scaling sweep: simulated cycles per node count (ratio < 1 means \
            %s is faster)"
           typhoon_col)
      ~columns:
        [ ("benchmark", Tt_util.Tablefmt.Left);
          ("nodes", Tt_util.Tablefmt.Right);
          ("DirNNB", Tt_util.Tablefmt.Right);
          (typhoon_col, Tt_util.Tablefmt.Right);
          ("ratio", Tt_util.Tablefmt.Right) ]
  in
  List.iter
    (fun p ->
      Tt_util.Tablefmt.add_row table
        [ p.app; string_of_int p.nodes; string_of_int p.dirnnb_cycles;
          string_of_int p.stache_cycles; Printf.sprintf "%.2f" (ratio p) ])
    points;
  Tt_util.Tablefmt.render table

let total_cpu_s points = List.fold_left (fun a p -> a +. p.cpu_s) 0.0 points

let to_json points =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n  \"points\": [\n";
  let last = List.length points - 1 in
  List.iteri
    (fun i p ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"app\": %S, \"nodes\": %d, \"dirnnb_cycles\": %d, \
            \"stache_cycles\": %d}%s\n"
           p.app p.nodes p.dirnnb_cycles p.stache_cycles
           (if i < last then "," else "")))
    points;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf
