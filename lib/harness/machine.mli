(** Uniform facade over the two target machines.

    The experiment runner and the benchmarks program against this record, so
    the same application binary (an {!Tt_app.Env.t} consumer) runs on
    DirNNB, Typhoon/Stache, or Typhoon with a custom protocol installed. *)

type t = {
  label : string;
  engine : Tt_sim.Engine.t;
  mparams : Params.t;
  net : Tt_net.Reliable.t;
      (** the machine's transport layer; [Tt_net.Reliable.Perfect] unless a
          [reliability] knob was passed at construction *)
  read : node:int -> Tt_sim.Thread.t -> int -> float;
  write : node:int -> Tt_sim.Thread.t -> int -> float -> unit;
  read_int : node:int -> Tt_sim.Thread.t -> int -> int;
  write_int : node:int -> Tt_sim.Thread.t -> int -> int -> unit;
  alloc :
    node:int -> Tt_sim.Thread.t -> ?home:int -> int -> int;
      (** bytes → shared virtual address *)
  mprefetch : node:int -> Tt_sim.Thread.t -> int -> unit;
      (** nonbinding prefetch hint (no-op on DirNNB) *)
  node_stats : int -> Tt_util.Stats.t;
      (** the per-node counter group (merged into {!merged_stats}); the
          runner interns the per-CPU suspension counters here *)
  merged_stats : unit -> Tt_util.Stats.t;
  check_invariants : unit -> (unit, string) result;
  delivered : unit -> int;
      (** monotone delivered-work counter — {!Watchdog}'s progress probe *)
  queues : unit -> string;
      (** queue-occupancy summary for watchdog diagnostics *)
  deadlock : unit -> string option;
      (** flow-control waits-for-cycle probe (always [None] on DirNNB,
          whose hardware protocol has no finite-credit layer) *)
  hooks : (string, node:int -> Tt_sim.Thread.t -> unit) Hashtbl.t;
      (** protocol-specific operations exposed to applications *)
  special_allocs :
    (string, node:int -> Tt_sim.Thread.t -> ?home:int -> int -> int) Hashtbl.t;
      (** named allocators for custom-protocol memory; applications reach
          them through {!Tt_app.Env.t.alloc_kind} *)
  mutable on_barrier : (proc:int -> Tt_sim.Thread.t -> unit) option;
      (** recovery attachment point: called by {!Run.spmd}'s environment
          after every barrier release, on every participant — the
          checkpoint layer snapshots shared pages here.  [None] (never
          called) unless a recovery harness installs it. *)
  mutable liveness : (unit -> string) option;
      (** liveness census (e.g. {!Tt_net.Liveness.summary}) appended to
          watchdog expiry diagnostics; [None] outside recovery runs. *)
  mutable pre_barrier : (proc:int -> Tt_sim.Thread.t -> unit) option;
      (** release-consistency attachment point: called by {!Run.spmd}'s
          environment {e before} entering every barrier, so update-family
          protocols flush dirty blocks and await acks before any other
          processor can pass the barrier and read them.  [None] (never
          called) unless a protocol layer installs it. *)
  mutable pre_release : (proc:int -> Tt_sim.Thread.t -> unit) option;
      (** like {!pre_barrier} but called before every lock release. *)
}

val typhoon_stache :
  ?reliability:Tt_net.Reliable.policy -> ?max_stache_pages:int -> Params.t -> t
(** A fresh Typhoon machine with the Stache library installed.
    [reliability] (default [Perfect]) selects the transport policy: under
    [Flaky cfg] all remote traffic crosses a {!Tt_net.Faults} injector and
    the user-level {!Tt_net.Reliable} transport. *)

val typhoon_stache_full :
  ?reliability:Tt_net.Reliable.policy -> ?max_stache_pages:int -> Params.t ->
  t * Tt_typhoon.System.t * Tt_stache.Stache.t
(** Like {!typhoon_stache} but also returns the underlying system and
    protocol handles (used by tests and by custom-protocol setups). *)

val dirnnb : ?reliability:Tt_net.Reliable.policy -> Params.t -> t

val dirnnb_full :
  ?reliability:Tt_net.Reliable.policy -> Params.t -> t * Tt_dirnnb.System.t

val typhoon_em3d :
  ?reliability:Tt_net.Reliable.policy -> ?max_stache_pages:int -> Params.t -> t
(** Typhoon with Stache plus the EM3D delayed-update protocol installed
    ("Typhoon/Update" in Figure 4).  Exposes hooks ["em3d.sync:<kind>"] and
    the allocator kind ["em3d:<kind>"] for the value arrays. *)

val typhoon_em3d_full :
  ?reliability:Tt_net.Reliable.policy -> ?max_stache_pages:int -> Params.t ->
  t * Tt_typhoon.System.t * Tt_stache.Stache.t * Tt_custom.Em3d_proto.t

val typhoon_zoo :
  ?reliability:Tt_net.Reliable.policy -> ?max_stache_pages:int ->
  policy:Tt_custom.Proto.pol -> Params.t -> t
(** Typhoon with Stache plus the protocol zoo installed, every application
    allocation adopted under [policy] (labelled ["typhoon/<policy>"]).
    Allocations are page-aligned; release-consistency flushes are wired to
    the pre-barrier and pre-release hooks. *)

val typhoon_zoo_full :
  ?reliability:Tt_net.Reliable.policy -> ?max_stache_pages:int ->
  policy:Tt_custom.Proto.pol -> Params.t ->
  t * Tt_typhoon.System.t * Tt_stache.Stache.t * Tt_custom.Proto.t

val typhoon_adaptive :
  ?reliability:Tt_net.Reliable.policy -> ?max_stache_pages:int -> Params.t -> t
(** Typhoon with the zoo plus per-page adaptive policy switching: pages
    start on the default invalidate protocol and {!Tt_custom.Adaptive}
    reclassifies them around every barrier and every 8th lock release.
    Allocations are page-aligned like the static zoo machines.  With
    [TT_ADAPT=0] nothing ever switches: every page keeps the default
    invalidate protocol for the whole run. *)

val typhoon_adaptive_full :
  ?reliability:Tt_net.Reliable.policy -> ?max_stache_pages:int -> Params.t ->
  t * Tt_typhoon.System.t * Tt_stache.Stache.t * Tt_custom.Proto.t
  * Tt_custom.Adaptive.t
