module Engine = Tt_sim.Engine
module Domains = Tt_sim.Domains
module Prng = Tt_util.Prng

(* PHOLD — the classic parallel-simulation benchmark workload — on the
   domains-parallel engine.  [nodes] logical processes are partitioned
   round-robin over [partitions] engines; every event at a node draws a
   uniformly random target node and a random extra delay from the node's
   private splitmix64 stream and schedules the successor event at
   [now + lookahead + delay].  Events stop reproducing at the [horizon],
   so the event population (initially [initial] per node) drains and the
   run terminates.

   Determinism claims, each pinned by test_parallel.ml:

   - For a fixed [partitions], every per-partition event-key log — hashed
     below via [Engine.set_trace] — is bit-identical for every [domains]
     count: partitioning decides the schedule, domains only decide who
     executes it.

   - Across different [partitions] counts, the per-node event counts and
     the final simulated time are identical: a node's events depend only
     on its own PRNG stream, and simultaneous events at one node are
     interchangeable (each consumes the next draws relative to the same
     [now]), so the multiset of scheduled events is partition-invariant
     even where tie order is not. *)

type result = {
  counts : int array; (* events fired per node *)
  total : int;
  final_time : int; (* max Engine.now over partitions *)
  epochs : int; (* lookahead windows the group stepped through *)
  log_hashes : int array; (* per-partition FNV-style hash of the key log *)
  drained : bool;
}

let run ?(seed = 42) ?(initial = 4) ?(mean_step = 40)
    ?(lookahead = Params.default.Params.net_latency) ~nodes ~partitions
    ~horizon ~domains () =
  if nodes <= 0 then invalid_arg "Pdes.run: nodes must be positive";
  if initial <= 0 then invalid_arg "Pdes.run: initial must be positive";
  if mean_step <= 0 then invalid_arg "Pdes.run: mean_step must be positive";
  if horizon <= 0 then invalid_arg "Pdes.run: horizon must be positive";
  let partitions = min partitions nodes in
  let t = Domains.create ~partitions ~lookahead () in
  let part_of node = node mod partitions in
  let prngs = Array.init nodes (fun n -> Prng.create ~seed:(seed + n)) in
  let counts = Array.make nodes 0 in
  let hashes = Array.make partitions 0 in
  for p = 0 to partitions - 1 do
    Engine.set_trace (Domains.engine t p)
      (Some
         (fun key ->
           hashes.(p) <- ((hashes.(p) lxor key) * 0x100000001b3) land max_int))
  done;
  (* one closure per event: PHOLD is the harness's workload, not a hot
     path, and the allocation keeps the event self-describing *)
  let rec event node () =
    counts.(node) <- counts.(node) + 1;
    let src = part_of node in
    let now = Engine.now (Domains.engine t src) in
    if now < horizon then begin
      let g = prngs.(node) in
      let target = Prng.int g nodes in
      let delay = 1 + Prng.int g mean_step in
      Domains.post t ~src ~dst:(part_of target) (now + lookahead + delay)
        (event target)
    end
  in
  for node = 0 to nodes - 1 do
    let g = prngs.(node) in
    for _ = 1 to initial do
      (* seed events keep clear of t=0 so the first window is non-trivial *)
      Engine.at
        (Domains.engine t (part_of node))
        (1 + Prng.int g mean_step)
        (event node)
    done
  done;
  let drained = Domains.run ~domains t in
  let final_time =
    Array.fold_left
      (fun acc p -> max acc (Engine.now (Domains.engine t p)))
      0
      (Array.init partitions Fun.id)
  in
  {
    counts;
    total = Array.fold_left ( + ) 0 counts;
    final_time;
    epochs = Domains.epochs t;
    log_hashes = hashes;
    drained;
  }
