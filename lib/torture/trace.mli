(** Compact per-event journal of a torture run's non-neutral decisions.

    A torture schedule is fully determined by two decision streams, both
    indexed by a monotonically increasing {e site} counter: the engine's
    same-timestamp tie-break salts ({!Tt_sim.Engine.set_tiebreak}) and the
    fault injector's applied per-send decisions ({!Tt_net.Faults.set_tap}).
    The journal records only the {e active} sites — nonzero salts,
    non-[deliver] fault decisions; every other site is neutral.  Replaying
    a journal (site → recorded value, absent → neutral) re-executes the
    recorded schedule exactly: the simulation is deterministic, both hooks
    consume their underlying PRNG streams identically whether a decision is
    natural, masked, or journal-fed, and the recorded run's applied
    decisions are by construction the journal's values at those same
    sites.  After shrinking, the journal is a handful of lines — a minimal
    reproducer small enough to read. *)

type t

val create : unit -> t

val add_salt : t -> site:int -> int -> unit
(** Record a tie-break salt; salt 0 (neutral) is not stored. *)

val salt : t -> site:int -> int
(** Recorded salt at a site, 0 when absent. *)

val add_decision : t -> site:int -> Tt_net.Faults.decision -> unit
(** Record an applied fault decision; {!Tt_net.Faults.deliver} is not
    stored. *)

val decision : t -> site:int -> Tt_net.Faults.decision
(** Recorded decision at a site, [deliver] when absent. *)

val salt_sites : t -> int list
(** Active tie-break sites, ascending. *)

val fault_sites : t -> int list
(** Active fault sites, ascending. *)

val n_salts : t -> int

val n_decisions : t -> int

val to_lines : t -> string list
(** Serialize: [P <site> <salt>], [F <site> drop],
    [F <site> jitter <reorder> <dup>]. *)

val parse_line : t -> string -> bool
(** Parse one serialized line into the journal; [false] if the line is not
    a journal entry (lets a caller interleave journal lines with its own
    header fields). *)
