module Engine = Tt_sim.Engine
module Prng = Tt_util.Prng
module Faults = Tt_net.Faults
module Reliable = Tt_net.Reliable
module Machine = Tt_harness.Machine
module Run = Tt_harness.Run
module Watchdog = Tt_harness.Watchdog
module Faultsweep = Tt_harness.Faultsweep
module Env = Tt_app.Env
module Stache = Tt_stache.Stache
module Addr = Tt_mem.Addr

type case = {
  litmus : string;
  machine : string;
  drop : float;  (* 0.0 = Perfect transport, no injector *)
  fault_seed : int;
  perturb_rate : float;  (* 0.0 = tie-break hook not installed *)
  perturb_seed : int;
  iters : int;
  sabotage : bool;
}

type kind = Sc | Stale | Hang | Link | Invariant | Crash

type violation = { kind : kind; iter : int; detail : string }

type outcome = Pass | Fail of violation

type result = {
  outcome : outcome;
  cycles : int;
  perturb_sites : int;
  fault_sites : int;
  trace : Trace.t;
}

type mode =
  | Generate
  | Masked of { perturb_keep : int list; fault_keep : int list }
  | Replay of Trace.t

let machines = [ "stache"; "dirnnb" ]

(* The protocol zoo's machines (and the adaptive switcher) can also be
   tortured; the default grid stays the two fixed machines. *)
let zoo_machines =
  List.filter (fun n -> n <> "stache") Tt_harness.Catalog.protocols

let all_machines = machines @ zoo_machines

let kind_to_string = function
  | Sc -> "sc"
  | Stale -> "stale"
  | Hang -> "hang"
  | Link -> "link"
  | Invariant -> "invariant"
  | Crash -> "crash"

let kind_of_string = function
  | "sc" -> Sc
  | "stale" -> Stale
  | "hang" -> Hang
  | "link" -> Link
  | "invariant" -> Invariant
  | "crash" -> Crash
  | s -> invalid_arg (Printf.sprintf "Torture: unknown violation kind %S" s)

(* Natural tie-break salt: a pure function of (seed, site), so a masked or
   journal-replayed run never shifts any other site's salt — unlike a
   sequential stream, site i's value is independent of how sites < i were
   treated.  Each site gets its own single-use splitmix stream. *)
let natural_salt ~seed ~rate site =
  let p = Prng.create ~seed:(seed lxor (site * 0x2545F4914F6CDD1)) in
  if Prng.chance p rate then 1 + Prng.int p 255 else 0

let membership sites =
  let tbl = Hashtbl.create (List.length sites * 2) in
  List.iter (fun s -> Hashtbl.replace tbl s ()) sites;
  fun site -> Hashtbl.mem tbl site

(* Per-iteration concrete value encoding.  Iteration [i] writes abstract
   value [v] as [(i+1)*16 + v] and resets locations to 0, so any concrete
   value other than 0 or the current iteration's band decodes to None: a
   copy that survived an invalidation from an earlier iteration is caught
   as soon as it is read, even when the stale value happens to produce an
   outcome vector SC would allow. *)
let base_of iter = (iter + 1) * 16

let decode ~base c =
  if c = 0 then Some 0
  else if c > base && c <= base + Litmus.max_value then Some (c - base)
  else None

let make_machine case params =
  let reliability =
    if case.drop > 0.0 then
      Some
        (Reliable.Flaky
           (Faultsweep.config_of ~drop:case.drop ~seed:case.fault_seed ()))
    else None
  in
  match case.machine with
  | "stache" -> Machine.typhoon_stache ?reliability params
  | "dirnnb" -> Machine.dirnnb ?reliability params
  | proto when List.mem proto zoo_machines ->
      Tt_harness.Catalog.machine_of_proto ?reliability ~proto params
  | other ->
      invalid_arg
        (Printf.sprintf "Torture: unknown machine %S (expected %s)" other
           (String.concat "|" all_machines))

let run ?(mode = Generate) ?(tweak_params = fun p -> p) case =
  let lit = Litmus.by_name case.litmus in
  let params =
    tweak_params { Params.default with Params.nodes = lit.Litmus.nprocs }
  in
  let machine = make_machine case params in
  let trace = Trace.create () in
  (* tie-break perturbation: installed exactly when the case's rate is
     positive, in every mode, so neutral-salt packing is identical between
     a generate run, its masked shrinking probes, and a journal replay *)
  if case.perturb_rate > 0.0 then begin
    let salt_of =
      match mode with
      | Replay tr -> fun site -> Trace.salt tr ~site
      | Generate ->
          fun site ->
            natural_salt ~seed:case.perturb_seed ~rate:case.perturb_rate site
      | Masked { perturb_keep; _ } ->
          let keep = membership perturb_keep in
          fun site ->
            if keep site then
              natural_salt ~seed:case.perturb_seed ~rate:case.perturb_rate site
            else 0
    in
    Engine.set_tiebreak machine.Machine.engine
      (Some
         (fun site ->
           let s = salt_of site in
           Trace.add_salt trace ~site s;
           s))
  end;
  (match Reliable.faults machine.Machine.net with
  | None -> ()
  | Some f ->
      let decide =
        match mode with
        | Replay tr -> fun ~site _natural -> Trace.decision tr ~site
        | Generate -> fun ~site:_ natural -> natural
        | Masked { fault_keep; _ } ->
            let keep = membership fault_keep in
            fun ~site natural -> if keep site then natural else Faults.deliver
      in
      Faults.set_tap f
        (Some
           (fun ~site natural ->
             let d = decide ~site natural in
             Trace.add_decision trace ~site d;
             d)));
  (* observables, shared host-side between the per-processor closures *)
  let nprocs = lit.Litmus.nprocs
  and nlocs = lit.Litmus.nlocs
  and nregs = lit.Litmus.nregs in
  let addrs = Array.make nlocs 0 in
  let reg_obs = Array.init case.iters (fun _ -> Array.make (max nregs 1) 0) in
  let loc_obs = Array.init case.iters (fun _ -> Array.make nlocs 0) in
  let stales = ref [] in
  let completed = ref 0 in
  let stale ~iter ~what c =
    stales :=
      (iter,
       Printf.sprintf "stale value %d observed by %s at iteration %d" c what
         iter)
      :: !stales
  in
  let body (e : Env.t) =
    if e.Env.proc = 0 then
      for l = 0 to nlocs - 1 do
        addrs.(l) <- e.Env.alloc ~home:(l mod nprocs) Addr.page_size
      done;
    e.Env.barrier ();
    for iter = 0 to case.iters - 1 do
      let base = base_of iter in
      if e.Env.proc = 0 then
        for l = 0 to nlocs - 1 do
          e.Env.write_int addrs.(l) 0
        done;
      e.Env.barrier ();
      Array.iter
        (fun op ->
          e.Env.work 5;
          match op with
          | Litmus.Write { loc; v } -> e.Env.write_int addrs.(loc) (base + v)
          | Litmus.Read { loc; reg } -> (
              let c = e.Env.read_int addrs.(loc) in
              match decode ~base c with
              | Some a -> reg_obs.(iter).(reg) <- a
              | None ->
                  stale ~iter ~what:(Printf.sprintf "proc %d read" e.Env.proc)
                    c;
                  reg_obs.(iter).(reg) <- min_int)
          | Litmus.Incr { loc; reg } -> (
              let c = e.Env.read_int addrs.(loc) in
              match decode ~base c with
              | Some a ->
                  reg_obs.(iter).(reg) <- a;
                  e.Env.work 3;
                  e.Env.write_int addrs.(loc) (base + a + 1)
              | None ->
                  stale ~iter ~what:(Printf.sprintf "proc %d incr" e.Env.proc)
                    c;
                  reg_obs.(iter).(reg) <- min_int;
                  e.Env.work 3;
                  e.Env.write_int addrs.(loc) (base + Litmus.max_value))
          | Litmus.Lock l -> e.Env.lock l
          | Litmus.Unlock l -> e.Env.unlock l)
        lit.Litmus.progs.(e.Env.proc);
      e.Env.barrier ();
      if e.Env.proc = 0 then begin
        for l = 0 to nlocs - 1 do
          let c = e.Env.read_int addrs.(l) in
          match decode ~base c with
          | Some a -> loc_obs.(iter).(l) <- a
          | None ->
              stale ~iter ~what:"final state" c;
              loc_obs.(iter).(l) <- min_int
        done;
        completed := iter + 1
      end
    done
  in
  (* A violating observable beats whatever exception the run may have died
     with: the observables are hard evidence, recorded before the crash,
     and keying the shrinker on them keeps the violation kind stable while
     masking perturbs how the run ends. *)
  let check_outcomes () =
    let stale_at i =
      List.fold_left
        (fun acc (iter, d) -> if iter = i && acc = None then Some d else acc)
        None (List.rev !stales)
    in
    let rec scan i =
      if i >= case.iters then None
      else
        match stale_at i with
        | Some d -> Some { kind = Stale; iter = i; detail = d }
        | None ->
            if
              i < !completed
              && not
                   (Litmus.check lit
                      ~regs:(Array.sub reg_obs.(i) 0 nregs)
                      ~locs:loc_obs.(i))
            then
              Some
                {
                  kind = Sc;
                  iter = i;
                  detail =
                    Format.asprintf
                      "iteration %d observed %a: not one of the %d \
                       SC-allowed outcomes"
                      i Litmus.pp_obs
                      (Array.sub reg_obs.(i) 0 nregs, loc_obs.(i))
                      (Litmus.allowed_count lit);
                }
            else scan (i + 1)
    in
    scan 0
  in
  let watchdog =
    Watchdog.create
      ~max_cycles:(2_000_000 + (case.iters * 1_000_000))
      ~max_retransmits:200_000 ~max_stall:500_000 ()
  in
  let name = Printf.sprintf "torture-%s" lit.Litmus.name in
  let was_sabotaged = Stache.sabotage_enabled () in
  Stache.set_sabotage case.sabotage;
  let finish outcome cycles =
    {
      outcome;
      cycles;
      perturb_sites = Engine.tiebreak_sites machine.Machine.engine;
      fault_sites =
        (match Reliable.faults machine.Machine.net with
        | None -> 0
        | Some f -> Faults.sites f);
      trace;
    }
  in
  Fun.protect
    ~finally:(fun () -> Stache.set_sabotage was_sabotaged)
    (fun () ->
      match Run.spmd machine ~name ~check:false ~watchdog body with
      | r -> (
          match check_outcomes () with
          | Some v -> finish (Fail v) r.Run.cycles
          | None -> (
              match machine.Machine.check_invariants () with
              | Ok () -> finish Pass r.Run.cycles
              | Error msg ->
                  finish (Fail { kind = Invariant; iter = -1; detail = msg })
                    r.Run.cycles))
      | exception exn ->
          let from_exn kind msg =
            match check_outcomes () with
            | Some v -> finish (Fail v) 0
            | None -> finish (Fail { kind; iter = -1; detail = msg }) 0
          in
          (match exn with
          | Watchdog.Expired msg -> from_exn Hang msg
          | Run.Stuck msg -> from_exn Hang msg
          (* a full overflow buffer is the diagnosed form of the hang it
             prevents: classify with the wedged runs, not the crashes *)
          | Tt_net.Overload.Overload msg -> from_exn Hang msg
          | Reliable.Link_failed msg -> from_exn Link msg
          | Failure msg -> from_exn Crash msg
          | Invalid_argument msg -> from_exn Crash msg
          | exn -> raise exn))

(* --- grid --- *)

let default_drops = [ 0.0; 0.05 ]

let default_seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let grid ?(litmus = Litmus.names) ?(machines = machines)
    ?(drops = default_drops) ?(seeds = default_seeds) ?(iters = 4)
    ?(perturb_rate = 0.25) ?(sabotage = Stache.sabotage_enabled ()) () =
  List.concat_map
    (fun l ->
      List.concat_map
        (fun m ->
          List.concat_map
            (fun drop ->
              List.map
                (fun seed ->
                  {
                    litmus = l;
                    machine = m;
                    drop;
                    fault_seed = seed;
                    perturb_rate;
                    perturb_seed = 0x5EED + (7919 * seed);
                    iters;
                    sabotage;
                  })
                seeds)
            drops)
        machines)
    litmus

let run_grid ?(domains = 0) cases =
  (* every case builds its own machine and PRNGs; cases are independent,
     so the grid fans out over worker domains with identical results *)
  Tt_sim.Domains.map ~domains (fun c -> (c, run c)) cases

let failures results =
  List.filter (fun (_, r) -> r.outcome <> Pass) results

let render results =
  let t =
    Tt_util.Tablefmt.create
      ~title:
        "Torture grid: litmus outcomes vs the SC oracle under fault \
         injection and schedule perturbation"
      ~columns:
        [ ("litmus", Tt_util.Tablefmt.Left);
          ("machine", Tt_util.Tablefmt.Left);
          ("drop%", Tt_util.Tablefmt.Right);
          ("seed", Tt_util.Tablefmt.Right);
          ("iters", Tt_util.Tablefmt.Right);
          ("cycles", Tt_util.Tablefmt.Right);
          ("salted", Tt_util.Tablefmt.Right);
          ("faulted", Tt_util.Tablefmt.Right);
          ("result", Tt_util.Tablefmt.Left) ]
  in
  List.iter
    (fun (c, r) ->
      Tt_util.Tablefmt.add_row t
        [ c.litmus; c.machine;
          Printf.sprintf "%.1f" (100.0 *. c.drop);
          string_of_int c.fault_seed; string_of_int c.iters;
          string_of_int r.cycles;
          string_of_int (Trace.n_salts r.trace);
          string_of_int (Trace.n_decisions r.trace);
          (match r.outcome with
          | Pass -> "ok"
          | Fail v ->
              Printf.sprintf "FAIL[%s]: %s" (kind_to_string v.kind) v.detail)
        ])
    results;
  Tt_util.Tablefmt.render t

(* --- shrinking --- *)

type shrunk = {
  s_case : case;
  s_trace : Trace.t;
  s_violation : violation;
  s_perturb_before : int;  (* active sites before/after shrinking *)
  s_perturb_after : int;
  s_fault_before : int;
  s_fault_after : int;
  s_iters_before : int;
}

let shrink ?probe_budget case =
  let r0 = run case in
  match r0.outcome with
  | Pass -> Error "case does not fail; nothing to shrink"
  | Fail v0 ->
      let kind = v0.kind in
      let reproduces ~iters ~perturb_keep ~fault_keep =
        let c = { case with iters } in
        match (run ~mode:(Masked { perturb_keep; fault_keep }) c).outcome with
        | Fail v -> v.kind = kind
        | Pass -> false
      in
      let p0 = Trace.salt_sites r0.trace in
      let f0 = Trace.fault_sites r0.trace in
      let fmin =
        Shrink.ddmin ?probe_budget
          ~test:(fun keep ->
            reproduces ~iters:case.iters ~perturb_keep:p0 ~fault_keep:keep)
          f0
      in
      let pmin =
        Shrink.ddmin ?probe_budget
          ~test:(fun keep ->
            reproduces ~iters:case.iters ~perturb_keep:keep ~fault_keep:fmin)
          p0
      in
      (* Iterations execute as a simulation prefix — iteration k's events
         are all scheduled before any of iteration k+1's — so truncating
         the iteration count leaves every surviving site index intact and
         the keep-sets stay meaningful. *)
      let rec find_iters i =
        if i >= case.iters then case.iters
        else if reproduces ~iters:i ~perturb_keep:pmin ~fault_keep:fmin then i
        else find_iters (i + 1)
      in
      let iters = find_iters 1 in
      let case' = { case with iters } in
      let rf =
        run ~mode:(Masked { perturb_keep = pmin; fault_keep = fmin }) case'
      in
      (match rf.outcome with
      | Fail v when v.kind = kind ->
          Ok
            {
              s_case = case';
              s_trace = rf.trace;
              s_violation = v;
              s_perturb_before = List.length p0;
              s_perturb_after = Trace.n_salts rf.trace;
              s_fault_before = List.length f0;
              s_fault_after = Trace.n_decisions rf.trace;
              s_iters_before = case.iters;
            }
      | _ ->
          Error
            "shrunk reproducer diverged from the original violation \
             (nondeterministic case?)")

(* --- replay artifacts --- *)

let write_artifact path (s : shrunk) =
  let c = s.s_case in
  let oc = open_out path in
  let line fmt = Printf.ksprintf (fun l -> output_string oc (l ^ "\n")) fmt in
  line "tt-torture v1";
  line "litmus %s" c.litmus;
  line "machine %s" c.machine;
  line "drop %h" c.drop;
  line "fault-seed %d" c.fault_seed;
  line "perturb-rate %h" c.perturb_rate;
  line "perturb-seed %d" c.perturb_seed;
  line "iters %d" c.iters;
  line "sabotage %d" (if c.sabotage then 1 else 0);
  line "kind %s" (kind_to_string s.s_violation.kind);
  line "detail %s"
    (String.map (fun ch -> if ch = '\n' then ' ' else ch) s.s_violation.detail);
  List.iter (fun l -> output_string oc (l ^ "\n")) (Trace.to_lines s.s_trace);
  line "end";
  close_out oc

let read_artifact path =
  let ic = open_in path in
  let trace = Trace.create () in
  let case =
    ref
      {
        litmus = ""; machine = ""; drop = 0.0; fault_seed = 0;
        perturb_rate = 0.0; perturb_seed = 0; iters = 1; sabotage = false;
      }
  in
  let kind = ref None in
  let bad line = invalid_arg ("Torture.read_artifact: bad line: " ^ line) in
  (try
     let header = input_line ic in
     if String.trim header <> "tt-torture v1" then
       invalid_arg "Torture.read_artifact: not a tt-torture v1 file";
     let rec loop () =
       let l = input_line ic in
       let l' = String.trim l in
       if l' = "end" || l' = "" then (if l' <> "end" then loop ())
       else if Trace.parse_line trace l' then loop ()
       else begin
         (match String.index_opt l' ' ' with
         | None -> bad l
         | Some i ->
             let key = String.sub l' 0 i in
             let v = String.sub l' (i + 1) (String.length l' - i - 1) in
             (match key with
             | "litmus" -> case := { !case with litmus = v }
             | "machine" -> case := { !case with machine = v }
             | "drop" -> case := { !case with drop = float_of_string v }
             | "fault-seed" ->
                 case := { !case with fault_seed = int_of_string v }
             | "perturb-rate" ->
                 case := { !case with perturb_rate = float_of_string v }
             | "perturb-seed" ->
                 case := { !case with perturb_seed = int_of_string v }
             | "iters" -> case := { !case with iters = int_of_string v }
             | "sabotage" -> case := { !case with sabotage = v = "1" }
             | "kind" -> kind := Some (kind_of_string v)
             | "detail" -> ()
             | _ -> bad l));
         loop ()
       end
     in
     loop ()
   with End_of_file -> ());
  close_in ic;
  match !kind with
  | None -> invalid_arg "Torture.read_artifact: missing violation kind"
  | Some k -> (!case, trace, k)

let replay path =
  let case, trace, expected = read_artifact path in
  let r = run ~mode:(Replay trace) case in
  (case, expected, r)
