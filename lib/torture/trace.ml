module Faults = Tt_net.Faults

type t = {
  salts : (int, int) Hashtbl.t;
  decisions : (int, Faults.decision) Hashtbl.t;
}

let create () = { salts = Hashtbl.create 32; decisions = Hashtbl.create 32 }

let add_salt t ~site salt =
  if salt <> 0 then Hashtbl.replace t.salts site salt

let salt t ~site = match Hashtbl.find_opt t.salts site with
  | Some s -> s
  | None -> 0

let add_decision t ~site d =
  if d <> Faults.deliver then Hashtbl.replace t.decisions site d

let decision t ~site =
  match Hashtbl.find_opt t.decisions site with
  | Some d -> d
  | None -> Faults.deliver

let salt_sites t = List.sort compare (Hashtbl.fold (fun k _ l -> k :: l) t.salts [])

let fault_sites t =
  List.sort compare (Hashtbl.fold (fun k _ l -> k :: l) t.decisions [])

let n_salts t = Hashtbl.length t.salts

let n_decisions t = Hashtbl.length t.decisions

(* One line per active site:
     P <site> <salt>
     F <site> drop
     F <site> jitter <reorder> <dup>
   Sites absent from the journal replay as neutral (FIFO salt 0 / deliver),
   which is exactly what a masked shrinking run applied at them. *)
let to_lines t =
  List.map
    (fun site -> Printf.sprintf "P %d %d" site (salt t ~site))
    (salt_sites t)
  @ List.map
      (fun site ->
        let d = decision t ~site in
        if d.Faults.dropped then Printf.sprintf "F %d drop" site
        else
          Printf.sprintf "F %d jitter %d %d" site d.Faults.reorder_jitter
            d.Faults.dup_jitter)
      (fault_sites t)

let parse_line t line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "P"; site; salt ] ->
      add_salt t ~site:(int_of_string site) (int_of_string salt);
      true
  | [ "F"; site; "drop" ] ->
      add_decision t ~site:(int_of_string site)
        { Faults.dropped = true; reorder_jitter = 0; dup_jitter = 0 };
      true
  | [ "F"; site; "jitter"; reorder; dup ] ->
      add_decision t ~site:(int_of_string site)
        { Faults.dropped = false;
          reorder_jitter = int_of_string reorder;
          dup_jitter = int_of_string dup };
      true
  | _ -> false
