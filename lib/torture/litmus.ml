type op =
  | Write of { loc : int; v : int }
  | Read of { loc : int; reg : int }
  | Incr of { loc : int; reg : int }
  | Lock of int
  | Unlock of int

type t = {
  name : string;
  doc : string;
  nprocs : int;
  nlocs : int;
  nregs : int;
  nlocks : int;
  progs : op array array;
  allowed : (int array, unit) Hashtbl.t Lazy.t;
}

let max_value = 15

(* Exhaustive SC interleaving enumeration: depth-first over every order of
   the per-processor op streams, mutating one (mem, regs, locks) state in
   place and undoing on backtrack.  [Lock l] is enabled only while [l] is
   free, which prunes lock-guarded sections to their serializations; [Incr]
   is a single atomic step, which is faithful *because* every shape guards
   it with a lock — an unguarded Incr would make the oracle blind to lost
   updates.  The shapes are tiny (≤ 6 ops total unlocked, ≤ 4 procs), so
   the worst case (IRIW: 6!/(2!2!) = 180 orders) is trivial. *)
let enumerate ~nprocs ~nlocs ~nregs ~nlocks progs =
  let tbl = Hashtbl.create 64 in
  let mem = Array.make (max nlocs 1) 0 in
  let regs = Array.make (max nregs 1) 0 in
  let locks = Array.make (max nlocks 1) (-1) in
  let pc = Array.make nprocs 0 in
  let total = Array.fold_left (fun n p -> n + Array.length p) 0 progs in
  let rec go remaining =
    if remaining = 0 then begin
      let obs = Array.append (Array.sub regs 0 nregs) (Array.sub mem 0 nlocs) in
      if not (Hashtbl.mem tbl obs) then Hashtbl.replace tbl obs ()
    end
    else
      for p = 0 to nprocs - 1 do
        if pc.(p) < Array.length progs.(p) then begin
          let step () =
            pc.(p) <- pc.(p) + 1;
            go (remaining - 1);
            pc.(p) <- pc.(p) - 1
          in
          match progs.(p).(pc.(p)) with
          | Write { loc; v } ->
              let old = mem.(loc) in
              mem.(loc) <- v;
              step ();
              mem.(loc) <- old
          | Read { loc; reg } ->
              let old = regs.(reg) in
              regs.(reg) <- mem.(loc);
              step ();
              regs.(reg) <- old
          | Incr { loc; reg } ->
              let oldr = regs.(reg) and oldm = mem.(loc) in
              regs.(reg) <- oldm;
              mem.(loc) <- oldm + 1;
              step ();
              mem.(loc) <- oldm;
              regs.(reg) <- oldr
          | Lock l ->
              if locks.(l) < 0 then begin
                locks.(l) <- p;
                step ();
                locks.(l) <- -1
              end
          | Unlock l ->
              let old = locks.(l) in
              locks.(l) <- -1;
              step ();
              locks.(l) <- old
        end
      done
  in
  go total;
  tbl

let make ~name ~doc ?(nlocks = 0) ~nlocs ~nregs progs =
  let progs = Array.of_list (List.map Array.of_list progs) in
  let nprocs = Array.length progs in
  Array.iter
    (Array.iter (function
      | Write { v; _ } when v < 1 || v > max_value ->
          invalid_arg "Litmus.make: write value out of the 1..15 encoding"
      | Incr _ when nprocs > max_value - 1 ->
          invalid_arg "Litmus.make: increment chain exceeds the encoding"
      | _ -> ()))
    progs;
  {
    name; doc; nprocs; nlocs; nregs; nlocks; progs;
    allowed = lazy (enumerate ~nprocs ~nlocs ~nregs ~nlocks progs);
  }

let allowed t = Lazy.force t.allowed

let allowed_count t = Hashtbl.length (allowed t)

let check t ~regs ~locs =
  if Array.length regs <> t.nregs || Array.length locs <> t.nlocs then
    invalid_arg "Litmus.check: observable arity mismatch";
  Hashtbl.mem (allowed t) (Array.append regs locs)

(* --- the classic shapes, in the 1..15 abstract-value alphabet --- *)

let sb =
  make ~name:"SB" ~doc:"store buffering: both readers seeing 0 is forbidden"
    ~nlocs:2 ~nregs:2
    [ [ Write { loc = 0; v = 1 }; Read { loc = 1; reg = 0 } ];
      [ Write { loc = 1; v = 1 }; Read { loc = 0; reg = 1 } ] ]

let mp =
  make ~name:"MP" ~doc:"message passing: flag set but payload stale forbidden"
    ~nlocs:2 ~nregs:2
    [ [ Write { loc = 0; v = 1 }; Write { loc = 1; v = 1 } ];
      [ Read { loc = 1; reg = 0 }; Read { loc = 0; reg = 1 } ] ]

let lb =
  make ~name:"LB" ~doc:"load buffering: both loads seeing the other's \
                        program-later store forbidden"
    ~nlocs:2 ~nregs:2
    [ [ Read { loc = 0; reg = 0 }; Write { loc = 1; v = 1 } ];
      [ Read { loc = 1; reg = 1 }; Write { loc = 0; v = 1 } ] ]

let corr =
  make ~name:"CoRR" ~doc:"read-read coherence: new then old value of one \
                          location forbidden"
    ~nlocs:1 ~nregs:2
    [ [ Write { loc = 0; v = 1 } ];
      [ Read { loc = 0; reg = 0 }; Read { loc = 0; reg = 1 } ] ]

let coww =
  make ~name:"CoWW" ~doc:"write-write coherence: final value must be a \
                          coherence-order maximum (never the overwritten 1)"
    ~nlocs:1 ~nregs:0
    [ [ Write { loc = 0; v = 1 }; Write { loc = 0; v = 2 } ];
      [ Write { loc = 0; v = 3 } ] ]

let iriw =
  make ~name:"IRIW" ~doc:"independent reads of independent writes: the two \
                          readers disagreeing on the write order is forbidden"
    ~nlocs:2 ~nregs:4
    [ [ Write { loc = 0; v = 1 } ];
      [ Write { loc = 1; v = 1 } ];
      [ Read { loc = 0; reg = 0 }; Read { loc = 1; reg = 1 } ];
      [ Read { loc = 1; reg = 2 }; Read { loc = 0; reg = 3 } ] ]

let lock_atomic =
  let prog p = [ Lock 0; Incr { loc = 0; reg = p }; Unlock 0 ] in
  make ~name:"LOCK" ~doc:"lock atomicity: counter increments under a lock \
                          must not lose updates (regs a permutation, final \
                          count = nprocs)"
    ~nlocks:1 ~nlocs:1 ~nregs:4
    [ prog 0; prog 1; prog 2; prog 3 ]

let all = [ sb; mp; lb; corr; coww; iriw; lock_atomic ]

let names = List.map (fun t -> t.name) all

let by_name name =
  match List.find_opt (fun t -> String.lowercase_ascii t.name
                                = String.lowercase_ascii name) all with
  | Some t -> t
  | None ->
      invalid_arg
        (Printf.sprintf "Litmus.by_name: unknown shape %S (expected %s)" name
           (String.concat "|" names))

let pp_obs ppf (regs, locs) =
  Format.fprintf ppf "regs=[%s] mem=[%s]"
    (String.concat ";" (List.map string_of_int (Array.to_list regs)))
    (String.concat ";" (List.map string_of_int (Array.to_list locs)))
