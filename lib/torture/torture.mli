(** Consistency torture harness: litmus grids, perturbed schedules,
    fault injection, and shrinking of failing cases.

    One torture case is a point
    [(litmus, machine, reliability, perturb-seed, fault-seed)]: a
    {!Litmus} shape run for [iters] iterations on a freshly built Stache
    or DirNNB machine, optionally behind the {!Tt_net.Faults} injector
    (drop/dup/reorder at the {!Tt_harness.Faultsweep} taxonomy), with the
    engine's same-timestamp tie-breaking perturbed by seeded salts.  Every
    iteration's observables are checked against the shape's SC oracle, and
    values are encoded per-iteration so a stale copy that survived an
    invalidation is caught by decoding even when its outcome vector looks
    SC-legal.

    Determinism: a case is a pure function of its fields.  Tie-break salts
    are a pure hash of (perturb-seed, site); fault decisions come from the
    injector's sequential PRNG but are intercepted by a tap that consumes
    the stream identically whether decisions are applied, masked, or
    replayed from a {!Trace} journal.  Masked runs are how the {!shrink}
    driver probes: ddmin over the recorded active fault sites, then over
    the active perturbation sites, then the iteration count (iterations
    are a simulation prefix, so truncation preserves site indices).  The
    shrunk reproducer is written as a small text artifact that
    [tt torture --replay] re-executes decision-for-decision. *)

type case = {
  litmus : string;  (** {!Litmus.by_name} key *)
  machine : string;  (** ["stache"] or ["dirnnb"] *)
  drop : float;  (** 0.0 = Perfect transport; otherwise the
                     {!Tt_harness.Faultsweep.config_of} taxonomy *)
  fault_seed : int;
  perturb_rate : float;  (** fraction of scheduling decisions salted;
                             0.0 = tie-break hook not installed *)
  perturb_seed : int;
  iters : int;
  sabotage : bool;  (** run with the Stache sabotage knob on *)
}

type kind =
  | Sc  (** observable vector outside the SC-allowed set *)
  | Stale  (** concrete value from another iteration's encoding band *)
  | Hang  (** watchdog expiry or deadlock *)
  | Link  (** reliable transport gave up *)
  | Invariant  (** post-run directory/tag audit failed *)
  | Crash  (** protocol code raised *)

type violation = { kind : kind; iter : int; detail : string }
(** [iter] is [-1] for violations not tied to one iteration. *)

type outcome = Pass | Fail of violation

type result = {
  outcome : outcome;
  cycles : int;  (** 0 when the run raised *)
  perturb_sites : int;  (** total tie-break decisions drawn *)
  fault_sites : int;  (** total fault decisions drawn *)
  trace : Trace.t;  (** applied non-neutral decisions, always recorded *)
}

type mode =
  | Generate  (** natural decisions from the case's seeds *)
  | Masked of { perturb_keep : int list; fault_keep : int list }
      (** natural decisions only at the kept sites, neutral elsewhere;
          [Masked] with every active site kept is identical to [Generate] *)
  | Replay of Trace.t  (** journal decisions, neutral at absent sites *)

val machines : string list
(** The default grid machines: ["stache"; "dirnnb"]. *)

val zoo_machines : string list
(** The custom-protocol machines ({!Tt_harness.Catalog.protocols} minus
    the transparent default, plus ["adaptive"]) — accepted by {!run} and
    {!grid} but not part of the default grid.  [Delayed] relies on
    data-race freedom, so racy litmus shapes may legitimately fail with
    [Sc]/[Stale] there (diagnosed staleness, never silent corruption). *)

val all_machines : string list
(** [machines @ zoo_machines] — every name {!run} accepts. *)

val kind_to_string : kind -> string

val kind_of_string : string -> kind

val run : ?mode:mode -> ?tweak_params:(Params.t -> Params.t) -> case -> result
(** Execute one case.  Observable (SC/stale) violations recorded before a
    crash take priority over the crash itself, so the shrinker keys on
    stable evidence.  The Stache sabotage global is set from [case] for
    the duration of the run and restored afterwards.

    [tweak_params] adjusts the machine parameters after the litmus shape
    sets the node count — overload tests use it to shrink flow-control
    credits and queue capacities without widening the [case] record (whose
    encoding is a stable artifact format).  A run wedged by exhausted
    capacities surfaces as [Fail Hang] carrying the watchdog's or the
    overflow path's diagnostic, never as a silent hang. *)

val default_drops : float list
(** [[0.0; 0.05]] — a perfect and a faulty transport column. *)

val default_seeds : int list
(** [[1..8]]. *)

val grid :
  ?litmus:string list -> ?machines:string list -> ?drops:float list ->
  ?seeds:int list -> ?iters:int -> ?perturb_rate:float -> ?sabotage:bool ->
  unit -> case list
(** The default smoke grid: every litmus shape × {stache, dirnnb} ×
    {perfect, drop 5%} × 8 seeds, 4 iterations, perturbation rate 0.25.
    [sabotage] defaults to the current global knob (i.e. [TT_SABOTAGE]). *)

val run_grid : ?domains:int -> case list -> (case * result) list
(** [domains > 1] fans the independent cases out over worker domains
    ({!Tt_sim.Domains.map}); results and their order are bit-identical to
    the sequential grid. *)

val failures : (case * result) list -> (case * result) list

val render : (case * result) list -> string

type shrunk = {
  s_case : case;  (** iteration count minimized *)
  s_trace : Trace.t;  (** the reproducer's journal *)
  s_violation : violation;
  s_perturb_before : int;
  s_perturb_after : int;
  s_fault_before : int;
  s_fault_after : int;
  s_iters_before : int;
}

val shrink : ?probe_budget:int -> case -> (shrunk, string) Stdlib.result
(** Minimize a failing case: ddmin the active fault sites, then the active
    perturbation sites, then the iteration count, preserving the original
    violation {e kind} at every step.  [Error] when the case passes or the
    final reproducer diverges. *)

val write_artifact : string -> shrunk -> unit
(** Write a runnable reproducer (text: case fields, expected violation
    kind, and the {!Trace} journal) for [tt torture --replay]. *)

val read_artifact : string -> case * Trace.t * kind

val replay : string -> case * kind * result
(** Load an artifact and re-execute it in [Replay] mode; compare the
    returned result's outcome against the expected kind. *)
