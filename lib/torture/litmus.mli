(** Litmus shapes and their sequential-consistency outcome oracle.

    A litmus test is a tiny SPMD program — a few reads, writes, and
    lock-guarded increments per processor over one or two shared locations
    — together with the {e exact} set of observable outcomes sequential
    consistency allows.  Stache and DirNNB both implement an SC memory
    system (single-writer/multi-reader invalidation protocols over a
    reliable transport), so {e every} run, under any fault pattern and any
    same-timestamp schedule perturbation, must land its observables inside
    the allowed set; one outcome outside it is a protocol bug.  This is the
    TransForm/litmus methodology aimed at user-level protocol code, where
    Tempest turns coherence bugs into application bugs.

    Abstract values are small ints: locations start at [0], writes store
    constants in [1..15], and a lock-guarded increment extends a [0,1,2,…]
    chain.  The torture runner maps these to per-iteration concrete
    encodings so a value leaked across iterations (a stale copy surviving
    an invalidation) is detected by decoding, not just by outcome shape —
    see {!Torture}. *)

type op =
  | Write of { loc : int; v : int }  (** store abstract constant [v] ∈ 1..15 *)
  | Read of { loc : int; reg : int }  (** load into observable register *)
  | Incr of { loc : int; reg : int }
      (** load into [reg] then store [reg+1].  Atomic in the oracle, so it
          must always be lock-guarded in a shape: the real execution is a
          separate read and write, and the oracle's atomicity is exactly
          the mutual exclusion the lock is supposed to provide. *)
  | Lock of int
  | Unlock of int

type t = {
  name : string;
  doc : string;
  nprocs : int;
  nlocs : int;
  nregs : int;
  nlocks : int;
  progs : op array array;
  allowed : (int array, unit) Hashtbl.t Lazy.t;
      (** allowed observable vectors, [regs ++ final mem], memoized *)
}

val max_value : int
(** Largest abstract value the concrete encoding can carry (15). *)

val make :
  name:string -> doc:string -> ?nlocks:int -> nlocs:int -> nregs:int ->
  op list list -> t
(** One [op list] per processor.  Rejects writes outside the 1..15
    encoding. *)

val allowed : t -> (int array, unit) Hashtbl.t
(** The SC oracle: every observable vector reachable by {e some} total
    interleaving of the processors' op streams that respects program order,
    reads-last-write, and lock mutual exclusion — i.e. exhaustive
    enumeration of sequentially consistent executions. *)

val allowed_count : t -> int

val check : t -> regs:int array -> locs:int array -> bool
(** Is this run's observable vector (final register values, final memory
    values, both in abstract form) sequentially consistent? *)

(** The shapes: store buffering, message passing, load buffering, coherence
    read-read and write-write, independent reads of independent writes, and
    lock atomicity (4-processor lock-guarded counter). *)

val sb : t
val mp : t
val lb : t
val corr : t
val coww : t
val iriw : t
val lock_atomic : t

val all : t list

val names : string list

val by_name : string -> t
(** Case-insensitive; raises [Invalid_argument] on unknown names. *)

val pp_obs : Format.formatter -> int array * int array -> unit
(** Render an observable vector as [regs=[..] mem=[..]]. *)
