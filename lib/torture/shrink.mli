(** Delta debugging (ddmin) over decision-site sets.

    Given a failing torture case, the set of {e active} fault/perturbation
    sites recorded in its {!Trace} is the candidate cause; [ddmin] finds a
    small subset that still reproduces the failure, probing with masked
    re-runs.  The classic algorithm: try each of [n] chunks alone, then
    each complement, doubling granularity when nothing reproduces, until
    the kept set is 1-minimal or the probe budget is spent. *)

val ddmin : ?probe_budget:int -> test:(int list -> bool) -> int list -> int list
(** [ddmin ~test items] returns a subset of [items] on which [test] holds
    (or [items] itself when [test items] is false — an irreproducible
    failure is returned unshrunk).  [test] must be deterministic; it is
    called at most [probe_budget] (default 200) times, after which
    remaining probes are assumed to fail and the best subset so far is
    returned. *)
