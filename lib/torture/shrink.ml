(* Zeller-Hildebrandt ddmin over a list of items (for us: active decision
   sites).  [test kept] must return true when the failure of interest still
   reproduces with only [kept] active; it is assumed deterministic.  The
   probe budget bounds total [test] calls — when it runs out every further
   probe reports false, so the algorithm walks itself to a fixpoint on the
   best subset found so far rather than aborting. *)

let split_chunks items n =
  let len = List.length items in
  let arr = Array.of_list items in
  let chunks = ref [] in
  let start = ref 0 in
  for i = 0 to n - 1 do
    let size = (len - !start + (n - 1 - i)) / (n - i) in
    chunks := Array.to_list (Array.sub arr !start size) :: !chunks;
    start := !start + size
  done;
  List.rev (List.filter (fun c -> c <> []) !chunks)

let diff a b = List.filter (fun x -> not (List.mem x b)) a

let ddmin ?(probe_budget = 200) ~test items =
  let probes = ref 0 in
  let test kept =
    if !probes >= probe_budget then false
    else begin
      incr probes;
      test kept
    end
  in
  let rec go items n =
    let len = List.length items in
    if len <= 1 then items
    else begin
      let n = min n len in
      let chunks = split_chunks items n in
      (* reduce to a single chunk *)
      match List.find_opt test chunks with
      | Some c -> go c 2
      | None -> begin
          (* reduce to a complement *)
          let comp =
            if n <= 2 then None
            else List.find_opt (fun c -> test (diff items c)) chunks
          in
          match comp with
          | Some c -> go (diff items c) (max (n - 1) 2)
          | None -> if n < len then go items (min len (2 * n)) else items
        end
    end
  in
  if items = [] then []
  else if not (test items) then items (* not reproducible: nothing to do *)
  else if test [] then [] (* classic ddmin never probes the empty set *)
  else go items 2
