module System = Tt_typhoon.System
module Np = Tt_typhoon.Np
module Thread = Tt_sim.Thread
module Message = Tt_net.Message
module Stats = Tt_util.Stats
module Vec = Tt_util.Vec

type counter = { c_home : int; c_id : int }

type barrier = { b_home : int; b_id : int; b_participants : int }

type counter_cell = { mutable value : int }

type barrier_cell = {
  mutable arrived : int;
  waiters : int Vec.t; (* nodes to release *)
}

(* one blocked CPU per node per primitive kind is enough for SPMD code *)
type node_state = {
  mutable fa_wake : (int -> unit) option;
  mutable bar_wake : (unit -> unit) option;
}

type t = {
  sys : System.t;
  counters : counter_cell Vec.t array; (* per home node *)
  barriers : barrier_cell Vec.t array;
  node_states : node_state array;
  counters_stats : Stats.t;
  mutable h_fa_req : int;
  mutable h_fa_resp : int;
  mutable h_bar_arrive : int;
  mutable h_bar_release : int;
}

let stats t = t.counters_stats

(* scratch argument builders (see Tt_net.Message.Pool.scratch): the
   endpoint's [send] copies them into the pooled message synchronously *)
let scratch1 a0 =
  let s = Message.Pool.scratch 1 in
  s.(0) <- a0;
  s

let scratch2 a0 a1 =
  let s = Message.Pool.scratch 2 in
  s.(0) <- a0;
  s.(1) <- a1;
  s

(* resume helper: align the CPU clock with the local NP before waking *)
let wake_cpu sys ~node th wake =
  Thread.set_clock th
    (max (Thread.clock th) (Np.clock (System.node_np sys node)));
  wake ()

let on_fa_req t (ep : Tempest.t) ~src ~args ~data:_ =
  let id = args.(0) and delta = args.(1) in
  let cell = Vec.get t.counters.(ep.Tempest.node) id in
  Stats.incr t.counters_stats "fetch_adds";
  ep.Tempest.charge 4;
  let old = cell.value in
  cell.value <- old + delta;
  ep.Tempest.send_raw ~dst:src ~vnet:Message.Response ~handler:t.h_fa_resp
    ~args:(scratch1 old) ~data:Bytes.empty

let on_fa_resp t (ep : Tempest.t) ~src:_ ~args ~data:_ =
  let node = ep.Tempest.node in
  ep.Tempest.charge 2;
  match t.node_states.(node).fa_wake with
  | Some wake ->
      t.node_states.(node).fa_wake <- None;
      wake args.(0)
  | None -> invalid_arg "Msg_sync: fetch-add response with no waiter"

let on_bar_arrive t (ep : Tempest.t) ~src ~args ~data:_ =
  let id = args.(0) in
  let cell = Vec.get t.barriers.(ep.Tempest.node) id in
  ep.Tempest.charge 4;
  cell.arrived <- cell.arrived + 1;
  Vec.push cell.waiters src;
  let participants = args.(1) in
  if cell.arrived = participants then begin
    Stats.incr t.counters_stats "barrier_episodes";
    (* release everybody; the cell resets for the next episode
       (sense reversal is implicit: a new episode cannot start before all
       waiters of this one were released, because they are blocked) *)
    let waiters = Vec.to_list cell.waiters
    and release = t.h_bar_release in
    cell.arrived <- 0;
    Vec.clear cell.waiters;
    List.iter
      (fun node ->
        ep.Tempest.send_raw ~dst:node ~vnet:Message.Response ~handler:release
          ~args:(scratch1 id) ~data:Bytes.empty)
      waiters
  end

let on_bar_release t (ep : Tempest.t) ~src:_ ~args:_ ~data:_ =
  let node = ep.Tempest.node in
  ep.Tempest.charge 2;
  match t.node_states.(node).bar_wake with
  | Some wake ->
      t.node_states.(node).bar_wake <- None;
      wake ()
  | None -> invalid_arg "Msg_sync: barrier release with no waiter"

let install sys =
  let n = System.nnodes sys in
  let t =
    {
      sys;
      counters = Array.init n (fun _ -> Vec.create ());
      barriers = Array.init n (fun _ -> Vec.create ());
      node_states = Array.init n (fun _ -> { fa_wake = None; bar_wake = None });
      counters_stats = Stats.create "msg_sync";
      h_fa_req = -1; h_fa_resp = -1; h_bar_arrive = -1; h_bar_release = -1;
    }
  in
  let tables = System.handlers sys in
  let reg name f = Tempest.Handlers.register_message tables ~name (f t) in
  t.h_fa_req <- reg "sync.fa_req" on_fa_req;
  t.h_fa_resp <- reg "sync.fa_resp" on_fa_resp;
  t.h_bar_arrive <- reg "sync.bar_arrive" on_bar_arrive;
  t.h_bar_release <- reg "sync.bar_release" on_bar_release;
  t

let alloc_counter t ~th ~node ~home ~init =
  ignore node;
  Thread.advance th 5;
  let cells = t.counters.(home) in
  Vec.push cells { value = init };
  { c_home = home; c_id = Vec.length cells - 1 }

let fetch_add t ~th ~node counter delta =
  let ns = t.node_states.(node) in
  if ns.fa_wake <> None then
    invalid_arg "Msg_sync.fetch_add: already one outstanding on this node";
  let ep = System.endpoint t.sys node in
  System.with_cpu_context t.sys ~node th (fun () ->
      ep.Tempest.send_raw ~dst:counter.c_home ~vnet:Message.Request
        ~handler:t.h_fa_req
        ~args:(scratch2 counter.c_id delta) ~data:Bytes.empty);
  Thread.await th (fun wake ->
      ns.fa_wake <- Some (fun v -> wake_cpu t.sys ~node th (fun () -> wake v)))

let read_counter t ~th ~node counter = fetch_add t ~th ~node counter 0

let alloc_barrier t ~th ~node ~home ~participants =
  ignore node;
  if participants <= 0 then invalid_arg "Msg_sync.alloc_barrier";
  Thread.advance th 5;
  let cells = t.barriers.(home) in
  Vec.push cells { arrived = 0; waiters = Vec.create () };
  { b_home = home; b_id = Vec.length cells - 1; b_participants = participants }

let barrier_wait t ~th ~node barrier =
  let ns = t.node_states.(node) in
  if ns.bar_wake <> None then
    invalid_arg "Msg_sync.barrier_wait: already waiting on this node";
  let ep = System.endpoint t.sys node in
  System.with_cpu_context t.sys ~node th (fun () ->
      ep.Tempest.send_raw ~dst:barrier.b_home ~vnet:Message.Request
        ~handler:t.h_bar_arrive
        ~args:(scratch2 barrier.b_id barrier.b_participants) ~data:Bytes.empty);
  Thread.await_unit th (fun wake ->
      ns.bar_wake <- Some (fun () -> wake_cpu t.sys ~node th wake))
