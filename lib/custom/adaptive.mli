(** Per-page adaptive policy switching over the protocol zoo.

    Watches the zoo's observation stream ({!Proto.event}) in per-page
    counters and, at decision points (before and after every barrier,
    plus every 8th lock release per node), retypes pages whose traffic
    pattern says the default invalidate protocol is the wrong one:
    write-after-write migration switches to {!Proto.pol.Migratory},
    home-writer / remote-readers or read-mostly traffic switches to
    {!Proto.pol.Widerep}.  Pages that later show contrary evidence
    (remote writes) revert to {!Proto.pol.Stachelike}.

    Counters accumulate until a decision point yields enough evidence to
    classify — quiet stretches neither advance nor reset the hysteresis
    streak, so phase-alternating apps (write burst / read burst per
    barrier) don't flip-flop.  Switching is hysteretic (two consecutive
    consistent classifications; promotion to [Widerep] needs one),
    happens only at quiesce points ({!Proto.page_quiescent}), and
    charges simulated remap + translation shootdown cost.

    Correctness contract: [Stachelike] and [Migratory] are sequentially
    consistent under any access pattern; [Widerep] is release-consistent,
    so data-race-free programs observe nothing weaker than SC while racy
    programs may read diagnosably stale copies (see {!Proto}).  [Delayed]
    and [Prodcons] are never chosen at runtime.

    Kill switch: with [TT_ADAPT=0] in the environment nothing ever
    switches (every page stays on the default invalidate protocol). *)

type t

val install : Tt_typhoon.System.t -> Tt_stache.Stache.t -> Proto.t -> t
(** Install the observation callback into [proto].  Reads [TT_ADAPT] once,
    at construction. *)

val on_sync : t -> node:int -> Tt_sim.Thread.t -> unit
(** Barrier hook: reclassify every page [node] homes and switch the
    stable misfits.  Wire after {!Proto.flush_release} in the machine's
    [pre_barrier]. *)

val on_release : t -> node:int -> Tt_sim.Thread.t -> unit
(** Sampled decision point for lock-structured phases: every 8th call
    per node runs {!on_sync}.  Wire after {!Proto.flush_release} in the
    machine's [pre_release]. *)

val switches : t -> int
(** Total policy switches so far (the shootout records this). *)

val stats : t -> Tt_util.Stats.t
(** [windows], [switches]. *)
