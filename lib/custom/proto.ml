module System = Tt_typhoon.System
module Np = Tt_typhoon.Np
module Stache = Tt_stache.Stache
module Dir = Tt_stache.Dir
module Sharers = Tt_stache.Sharers
module Thread = Tt_sim.Thread
module Addr = Tt_mem.Addr
module Tag = Tt_mem.Tag
module Pagemem = Tt_mem.Pagemem
module Message = Tt_net.Message
module Stats = Tt_util.Stats
module Vec = Tt_util.Vec

(* Scratch argument builders (same discipline as Stache's): the endpoint
   copies args into a pooled message before returning, so no array literal
   is allocated per send. *)
let scratch1 a0 =
  let s = Message.Pool.scratch 1 in
  s.(0) <- a0;
  s

let scratch2 a0 a1 =
  let s = Message.Pool.scratch 2 in
  s.(0) <- a0;
  s.(1) <- a1;
  s

(* ------------------------------------------------------------------ *)
(* Shared custom-protocol plumbing (extracted from the EM3D protocol)  *)
(* ------------------------------------------------------------------ *)

(* Wake a blocked CPU thread from an NP handler: the wake runs on the NP
   after protocol work, so the CPU clock must first catch up to the NP's. *)
let np_wake sys ~node th wake () =
  Thread.set_clock th (max (Thread.clock th) (Np.clock (System.node_np sys node)));
  wake ()

(* Registry of pages owned by a custom protocol, with the page-fault
   wrapper and the retyping allocator every custom protocol needs.  Each
   registered page carries an uninterpreted [id] (an array kind for EM3D, a
   policy for the zoo). *)
module Pages = struct
  type t = {
    sys : System.t;
    stache : Stache.t;
    table : (int, int) Hashtbl.t; (* vpage -> id *)
  }

  let create sys stache = { sys; stache; table = Hashtbl.create 1024 }

  let registered t ~vpage = Hashtbl.mem t.table vpage

  let id_of t ~what vaddr =
    match Hashtbl.find_opt t.table (Addr.page_of vaddr) with
    | Some k -> k
    | None ->
        invalid_arg
          (Printf.sprintf "%s: 0x%x is not on a custom page" what vaddr)

  (* Allocate page-aligned shared memory (so custom pages are never shared
     with transparent stache data) and retype the freshly created home
     pages, registering each under [id]. *)
  let alloc t ~th ~node ~id ~home_mode ?home ~bytes () =
    let vaddr =
      Stache.alloc t.stache ~th ~node ?home ~align:Addr.page_size ~bytes ()
    in
    let first = Addr.page_of vaddr
    and last = Addr.page_of (vaddr + bytes - 1) in
    let home_node = Stache.home_of t.stache ~vaddr in
    let ep = System.endpoint t.sys home_node in
    System.with_cpu_context t.sys ~node th (fun () ->
        for vpage = first to last do
          Hashtbl.replace t.table vpage id;
          (* retype the freshly created home page *)
          ep.Tempest.set_page_mode ~vpage ~mode:home_mode
        done);
    vaddr

  (* Wrap Stache's page-fault handler: registered pages map as
     [remote_mode] custom pages; everything else keeps the transparent
     behaviour. *)
  let wrap_page_fault t ~remote_mode =
    let tables = System.handlers t.sys in
    let stache_page_fault =
      match Tempest.Handlers.page_fault tables with
      | Some h -> h
      | None -> invalid_arg "Proto.Pages.wrap_page_fault: install Stache first"
    in
    Tempest.Handlers.set_page_fault tables (fun ep ~vaddr access resumption ->
        let vpage = Addr.page_of vaddr in
        if Hashtbl.mem t.table vpage then begin
          ep.Tempest.charge 10;
          ep.Tempest.map_page ~vpage
            ~home:(Stache.home_of t.stache ~vaddr)
            ~mode:remote_mode ~init_tag:Tag.Invalid;
          ep.Tempest.resume resumption
        end
        else stache_page_fault ep ~vaddr access resumption)
end

(* ------------------------------------------------------------------ *)
(* The protocol zoo: per-page policies over the Stache home engine      *)
(* ------------------------------------------------------------------ *)

type pol = Stachelike | Migratory | Prodcons | Widerep | Delayed

let pol_names = [ "migratory"; "prodcons"; "widerep"; "delayed" ]

let pol_of_name = function
  | "stache" -> Stachelike
  | "migratory" -> Migratory
  | "prodcons" -> Prodcons
  | "widerep" -> Widerep
  | "delayed" -> Delayed
  | s ->
      invalid_arg
        (Printf.sprintf "Proto: unknown protocol %S (valid: stache, %s)" s
           (String.concat ", " pol_names))

let name_of_pol = function
  | Stachelike -> "stache"
  | Migratory -> "migratory"
  | Prodcons -> "prodcons"
  | Widerep -> "widerep"
  | Delayed -> "delayed"

(* Adaptive-layer observation stream: one event per home-side protocol
   decision point, keyed by block address (home resolution is the
   observer's business). *)
type event =
  | Ev_get of [ `Ro | `Rw | `Up ] * int (* remote fetch: kind, requester *)
  | Ev_recall (* exclusive copy recalled *)
  | Ev_invals of int * bool (* invalidation round: #targets, home-store? *)
  | Ev_update_grant (* home store served update-style *)

(* Handler charge constants (beyond endpoint primitives), matching the
   spirit of Stache's and the EM3D protocol's. *)
let c_update_grant_extra = 4

let c_update_extra = 4

let c_apply_extra = 4

let c_ack_extra = 2

let c_harvest_extra = 3

let c_flush_per_block = 2

let c_flush_post = 5

(* Contiguous prodcons pushes to one consumer batch into a bulk transfer
   from this run length up. *)
let bulk_min_blocks = 2

type t = {
  sys : System.t;
  stache : Stache.t;
  counters : Stats.t;
  page_pol : (int, pol) Hashtbl.t; (* vpage -> policy (absent = stache) *)
  (* update-family write-collection state, per home node *)
  dirty : (int, unit) Hashtbl.t array; (* block vaddr set *)
  dirty_order : int Vec.t array; (* first-dirtied order *)
  (* producer-consumer channel state, per home node *)
  readers : (int, Sharers.t) Hashtbl.t array; (* block vaddr -> past readers *)
  reader_order : int Vec.t array;
  (* release-flush bookkeeping, per node *)
  outstanding : int array; (* un-acked update messages + unconfirmed bulks *)
  flush_done : bool array;
  waiter : (unit -> unit) option array;
  (* blocks shipped by an in-flight bulk push that no home-side serve has
     touched since the flush posted them; a serve (get / invalidation /
     recall) evicts its block, marking the bulk's raw packet data
     potentially stale at the consumer *)
  bulk_clean : (int, unit) Hashtbl.t array;
  mutable observer : (vaddr:int -> event -> unit) option;
  mutable h_update : int;
  mutable h_ack : int;
  mutable h_push : int;
  mutable h_flush : int;
  mutable h_harvest : int;
  mutable h_bulk_confirm : int;
  mutable h_bulk_adopt : int;
  c_update_grants : Stats.counter;
  c_updates_sent : Stats.counter;
  c_updates_applied : Stats.counter;
  c_updates_stale : Stats.counter;
  c_handoffs : Stats.counter;
  c_pushes_sent : Stats.counter;
  c_pushes_applied : Stats.counter;
  c_pushes_stale : Stats.counter;
  c_bulk_pushes : Stats.counter;
  c_harvests : Stats.counter;
  c_flushes : Stats.counter;
}

let stats t = t.counters

let set_observer t f = t.observer <- f

let pol_of_page t ~vpage =
  match Hashtbl.find_opt t.page_pol vpage with
  | Some p -> p
  | None -> Stachelike

let pol_of_vaddr t vaddr = pol_of_page t ~vpage:(Addr.page_of vaddr)

let observe t ~vaddr ev =
  match t.observer with Some f -> f ~vaddr ev | None -> ()

let mark_dirty t ~home vaddr =
  if not (Hashtbl.mem t.dirty.(home) vaddr) then begin
    Hashtbl.replace t.dirty.(home) vaddr ();
    Vec.push t.dirty_order.(home) vaddr
  end

let record_readers t ~home vaddr targets =
  let sh =
    match Hashtbl.find_opt t.readers.(home) vaddr with
    | Some sh -> sh
    | None ->
        let sh = Sharers.create ~nodes:(System.nnodes t.sys) in
        Hashtbl.replace t.readers.(home) vaddr sh;
        Vec.push t.reader_order.(home) vaddr;
        sh
  in
  List.iter (Sharers.add sh) targets

let maybe_wake t node =
  if t.outstanding.(node) = 0 && t.flush_done.(node) then
    match t.waiter.(node) with
    | Some wake ->
        t.waiter.(node) <- None;
        wake ()
    | None -> ()

(* Push the home's current copy of [vaddr] to every registered sharer,
   expecting one ack each (release flushes wait on those acks). *)
let push_update_to_sharers t (ep : Tempest.t) ~vaddr (bd : Dir.block_dir) =
  let home = ep.Tempest.node in
  let data = ep.Tempest.force_read_block ~vaddr in
  List.iter
    (fun s ->
      Stats.Counter.incr t.c_updates_sent;
      ep.Tempest.charge c_update_extra;
      t.outstanding.(home) <- t.outstanding.(home) + 1;
      ep.Tempest.send_raw ~dst:s ~vnet:Message.Request ~handler:t.h_update
        ~args:(scratch1 vaddr) ~data)
    (Sharers.to_list bd.Dir.sharers)

(* --- message handlers (run on the NP) --- *)

(* sharer <- home: refreshed copy of a block the sharer already holds
   read-only.  A copy that vanished meanwhile (page replaced, block
   invalidated, or a fetch in flight that will deliver fresher data) is
   simply not updated; the ack flows back regardless so the home's release
   flush can complete. *)
let on_update t (ep : Tempest.t) ~src ~args ~data =
  let vaddr = args.(0) in
  ep.Tempest.charge c_apply_extra;
  (if
     ep.Tempest.page_mapped ~vpage:(Addr.page_of vaddr)
     && Tag.equal (ep.Tempest.read_tag ~vaddr) Tag.Read_only
   then begin
     ep.Tempest.force_write_block ~vaddr data;
     Stats.Counter.incr t.c_updates_applied
   end
   else Stats.Counter.incr t.c_updates_stale);
  ep.Tempest.charge c_ack_extra;
  ep.Tempest.send_raw ~dst:src ~vnet:Message.Response ~handler:t.h_ack
    ~args:(scratch1 vaddr) ~data:Bytes.empty

(* home <- sharer: update acknowledged *)
let on_ack t (ep : Tempest.t) ~src:_ ~args:_ ~data:_ =
  let home = ep.Tempest.node in
  ep.Tempest.charge c_ack_extra;
  t.outstanding.(home) <- t.outstanding.(home) - 1;
  if t.outstanding.(home) < 0 then
    invalid_arg "Proto: update ack underflow";
  maybe_wake t home

(* consumer <- home: unsolicited clean copy (producer-consumer channel).
   Applied only onto an Invalid block of a mapped page — any other state
   means a fresher copy exists or is in flight.  No ack: the push carries
   committed data and registers the consumer as an ordinary sharer, so SC
   is preserved whether or not it lands. *)
let on_push t (ep : Tempest.t) ~src:_ ~args ~data =
  let vaddr = args.(0) in
  ep.Tempest.charge c_apply_extra;
  if
    ep.Tempest.page_mapped ~vpage:(Addr.page_of vaddr)
    && Tag.equal (ep.Tempest.read_tag ~vaddr) Tag.Invalid
  then begin
    ep.Tempest.force_write_block ~vaddr data;
    ep.Tempest.set_ro ~vaddr;
    Stats.Counter.incr t.c_pushes_applied
  end
  else Stats.Counter.incr t.c_pushes_stale

(* home NP <- home CPU (widerep): re-read the block after the store that
   faulted has committed and push the fresh value to all sharers, then
   demote the home copy so the next store faults (and harvests) again. *)
let on_harvest t (ep : Tempest.t) ~src:_ ~args ~data:_ =
  let vaddr = args.(0) in
  let home = ep.Tempest.node in
  ep.Tempest.charge c_harvest_extra;
  if Hashtbl.mem t.dirty.(home) vaddr then begin
    let bd = Dir.block_of ep ~vaddr in
    match bd.Dir.state with
    | Dir.Shared when Tag.equal (ep.Tempest.read_tag ~vaddr) Tag.Read_write ->
        Stats.Counter.incr t.c_harvests;
        if not (Sharers.is_empty bd.Dir.sharers) then
          push_update_to_sharers t ep ~vaddr bd;
        ep.Tempest.set_ro ~vaddr;
        ep.Tempest.downgrade ~vaddr;
        Hashtbl.remove t.dirty.(home) vaddr
    | _ ->
        (* granted away or already flushed since the harvest was posted *)
        ()
  end

(* consumer NP -> home NP -> consumer NP: bulk-push confirmation round.

   A bulk transfer delivers raw packet bytes outside the sequenced message
   channel, so — unlike single pushes, which per-pair FIFO orders before
   any later invalidation — its data can race a concurrent serve: an
   invalidation or re-fetch between packets leaves the consumer holding
   bytes of unknown vintage.  The consumer therefore adopts nothing on its
   own.  When the last packet lands it asks the home which blocks are
   still clean (no serve since the flush posted them, still Shared, and
   the consumer still registered); the home's verdict travels back FIFO
   behind any invalidation it sent meanwhile, so the consumer acts on
   directory state at least as new as every conflicting message:

   - [adopt]: packet bytes are the block's committed value; set RO.
   - [poison]: a serve touched the block mid-flight.  A read-only copy may
     sit over overwritten bytes — discard it (the next read re-fetches);
     an exclusive dirty copy cannot be repaired, which only arises when
     the application breaks the producer-consumer contract with a
     concurrent writer — fail loudly rather than corrupt silently.

   The confirmation also acks the bulk (one [outstanding] unit), so a
   release flush is not complete until every consumer's verdict is in —
   flushes never overlap their own bulk deliveries. *)
let on_bulk_confirm t (ep : Tempest.t) ~src ~args ~data:_ =
  let first = args.(0) and count = args.(1) in
  let home = ep.Tempest.node in
  ep.Tempest.charge c_ack_extra;
  (* verdicts pack 2 bits per block (0 skip / 1 adopt / 2 poison) so a
     full-page run fits the packet word limit *)
  let bm = Bytes.make ((count + 3) / 4) '\000' in
  let set_verdict i v =
    let b = Char.code (Bytes.get bm (i / 4)) in
    Bytes.set bm (i / 4) (Char.chr (b lor (v lsl (2 * (i mod 4)))))
  in
  for i = 0 to count - 1 do
    let v = first + (i * Addr.block_size) in
    let clean = Hashtbl.mem t.bulk_clean.(home) v in
    Hashtbl.remove t.bulk_clean.(home) v;
    if clean then begin
      let bd = Dir.block_of ep ~vaddr:v in
      if bd.Dir.state = Dir.Shared && Sharers.mem bd.Dir.sharers src then
        set_verdict i 1
      (* else: untouched by any serve yet no longer registered (e.g. the
         page was retyped) — skip: don't adopt, nothing to repair *)
    end
    else set_verdict i 2
  done;
  ep.Tempest.send_raw ~dst:src ~vnet:Message.Response ~handler:t.h_bulk_adopt
    ~args:(scratch2 first count) ~data:bm;
  t.outstanding.(home) <- t.outstanding.(home) - 1;
  if t.outstanding.(home) < 0 then invalid_arg "Proto: bulk confirm underflow";
  maybe_wake t home

let on_bulk_adopt t (ep : Tempest.t) ~src:_ ~args ~data =
  let first = args.(0) and count = args.(1) in
  ep.Tempest.charge c_apply_extra;
  if ep.Tempest.page_mapped ~vpage:(Addr.page_of first) then
    for i = 0 to count - 1 do
      let v = first + (i * Addr.block_size) in
      match (Char.code (Bytes.get data (i / 4)) lsr (2 * (i mod 4))) land 3 with
      | 1 ->
          if Tag.equal (ep.Tempest.read_tag ~vaddr:v) Tag.Invalid then begin
            ep.Tempest.set_ro ~vaddr:v;
            Stats.Counter.incr t.c_pushes_applied
          end
          else Stats.Counter.incr t.c_pushes_stale
      | 2 ->
          let tag = ep.Tempest.read_tag ~vaddr:v in
          if Tag.equal tag Tag.Read_write then
            failwith
              (Printf.sprintf
                 "Proto: bulk push raced a concurrent writer on 0x%x \
                  (producer-consumer contract violated)"
                 v)
          else if Tag.equal tag Tag.Read_only then begin
            ep.Tempest.invalidate ~vaddr:v;
            Stats.Counter.incr t.c_pushes_stale
          end
      | _ -> ()
    done

(* Producer-consumer flush half: push committed data of previously
   invalidated blocks back to their recorded past readers, re-registering
   them as sharers.  Only blocks the home holds exclusively (state Idle,
   tag ReadWrite) are pushed; others stay recorded for a later flush. *)
let flush_prodcons t (ep : Tempest.t) ~home =
  if Vec.length t.reader_order.(home) > 0 then begin
    (* deterministic sorted walk; contiguous runs batch into bulk pushes *)
    let blocks =
      List.sort_uniq compare
        (Vec.fold_left
           (fun acc v -> if Hashtbl.mem t.readers.(home) v then v :: acc else acc)
           [] t.reader_order.(home))
    in
    let pushable =
      List.filter
        (fun vaddr ->
          ep.Tempest.charge c_flush_per_block;
          let bd = Dir.block_of ep ~vaddr in
          bd.Dir.state = Dir.Idle
          && Tag.equal (ep.Tempest.read_tag ~vaddr) Tag.Read_write)
        blocks
    in
    (* flip home state first: Shared, recorded readers become sharers *)
    List.iter
      (fun vaddr ->
        let bd = Dir.block_of ep ~vaddr in
        let sh = Hashtbl.find t.readers.(home) vaddr in
        ep.Tempest.set_ro ~vaddr;
        ep.Tempest.downgrade ~vaddr;
        bd.Dir.state <- Dir.Shared;
        List.iter (fun r -> Sharers.add bd.Dir.sharers r) (Sharers.to_list sh))
      pushable;
    (* then deliver: per consumer, contiguous runs go as one bulk transfer
       when the consumer has the page mapped, singles as push messages *)
    let nnodes = System.nnodes t.sys in
    for r = 0 to nnodes - 1 do
      let mine =
        List.filter
          (fun v -> Sharers.mem (Hashtbl.find t.readers.(home) v) r)
          pushable
      in
      let send_single vaddr =
        Stats.Counter.incr t.c_pushes_sent;
        ep.Tempest.charge c_update_extra;
        let data = ep.Tempest.force_read_block ~vaddr in
        ep.Tempest.send_raw ~dst:r ~vnet:Message.Request ~handler:t.h_push
          ~args:(scratch1 vaddr) ~data
      in
      let flush_run first count =
        if count = 0 then ()
        else if
          count >= bulk_min_blocks
          && Tt_mem.Pagemem.is_mapped
               (System.node_mem t.sys r)
               ~vpage:(Addr.page_of first)
        then begin
          Stats.Counter.incr t.c_bulk_pushes;
          t.outstanding.(home) <- t.outstanding.(home) + 1;
          for i = 0 to count - 1 do
            Hashtbl.replace t.bulk_clean.(home)
              (first + (i * Addr.block_size))
              ()
          done;
          let dep = System.endpoint t.sys r in
          let len = count * Addr.block_size in
          ep.Tempest.bulk_transfer ~dst:r ~src_va:first ~dst_va:first ~len
            ~on_complete:(fun () ->
              (* runs at the consumer: nothing is adopted until the home
                 confirms which blocks stayed clean in flight (see
                 [on_bulk_confirm]) *)
              dep.Tempest.charge c_apply_extra;
              dep.Tempest.send_raw ~dst:home ~vnet:Message.Request
                ~handler:t.h_bulk_confirm ~args:(scratch2 first count)
                ~data:Bytes.empty)
        end
        else
          for i = 0 to count - 1 do
            send_single (first + (i * Addr.block_size))
          done
      in
      let rec runs = function
        | [] -> ()
        | v :: _ as l ->
            let rec span count = function
              | x :: rest
                when x = v + (count * Addr.block_size)
                     && Addr.page_of x = Addr.page_of v ->
                  span (count + 1) rest
              | rest -> count, rest
            in
            let count, rest = span 0 l in
            flush_run v count;
            runs rest
      in
      runs mine
    done;
    List.iter (fun v -> Hashtbl.remove t.readers.(home) v) pushable;
    (* rebuild the order vector with whatever stayed recorded *)
    Vec.clear t.reader_order.(home);
    List.iter
      (fun v ->
        if Hashtbl.mem t.readers.(home) v then Vec.push t.reader_order.(home) v)
      blocks
  end

(* home NP <- home CPU: release-point flush.  Walk the dirty set (delayed /
   widerep leftovers): blocks still Shared push refreshed copies to their
   sharers and the home demotes itself so later stores fault again; blocks
   granted away or with no sharers are simply forgotten.  Then the
   producer-consumer push pass runs.  The flush is complete when posted;
   the CPU additionally waits for all update acks ([outstanding] = 0). *)
let on_flush t (ep : Tempest.t) ~src:_ ~args:_ ~data:_ =
  let home = ep.Tempest.node in
  Stats.Counter.incr t.c_flushes;
  Vec.iter
    (fun vaddr ->
      ep.Tempest.charge c_flush_per_block;
      if Hashtbl.mem t.dirty.(home) vaddr then begin
        Hashtbl.remove t.dirty.(home) vaddr;
        let bd = Dir.block_of ep ~vaddr in
        match bd.Dir.state with
        | Dir.Shared ->
            if not (Sharers.is_empty bd.Dir.sharers) then
              push_update_to_sharers t ep ~vaddr bd;
            if Tag.equal (ep.Tempest.read_tag ~vaddr) Tag.Read_write then begin
              ep.Tempest.set_ro ~vaddr;
              ep.Tempest.downgrade ~vaddr
            end
        | Dir.Idle | Dir.Remote_excl _ ->
            (* no sharers left, or the block was granted away (fresh data
               went with the grant) *)
            ()
      end)
    t.dirty_order.(home);
  Vec.clear t.dirty_order.(home);
  flush_prodcons t ep ~home;
  t.flush_done.(home) <- true;
  maybe_wake t home

(* --- the policy hooks installed into Stache --- *)

let hooks t =
  {
    Stache.ph_grant_kind =
      (fun ~vaddr ~requester:_ ~state k ->
        match pol_of_vaddr t vaddr, k, state with
        | Migratory, `Ro, Dir.Remote_excl _ ->
            (* exclusive ownership follows the accessor *)
            Stats.Counter.incr t.c_handoffs;
            `Rw
        | (Widerep | Delayed), `Up, Dir.Shared
          when
            (let home = Stache.home_of t.stache ~vaddr in
             Hashtbl.mem t.dirty.(home) vaddr || t.outstanding.(home) > 0) ->
            (* the upgrader's copy may be stale: either against un-flushed
               home writes (block still dirty) or against update pushes
               still in flight (flush posted, acks outstanding — the
               upgrader may not have received its refresh yet).  Serve as a
               full write miss so fresh data is sent. *)
            `Rw
        | _ -> k);
    ph_home_store =
      (fun ep ~vaddr bd res ->
        match pol_of_vaddr t vaddr with
        | (Widerep | Delayed) when
            (match bd.Dir.state with
             | Dir.Remote_excl _ -> true
             | Dir.Idle | Dir.Shared -> false) ->
            (* the authoritative copy is a remote exclusive cache, not home
               memory: granting in place would write over stale data.  Fall
               back to the normal recall path. *)
            false
        | (Widerep | Delayed) as p ->
            let home = ep.Tempest.node in
            Stats.Counter.incr t.c_update_grants;
            observe t ~vaddr Ev_update_grant;
            ep.Tempest.charge c_update_grant_extra;
            ep.Tempest.set_rw ~vaddr;
            mark_dirty t ~home vaddr;
            if p = Widerep then begin
              (* eager update: harvest the block once the store commits *)
              ep.Tempest.charge 1;
              ep.Tempest.send_raw ~dst:home ~vnet:Message.Request
                ~handler:t.h_harvest ~args:(scratch1 vaddr) ~data:Bytes.empty
            end;
            ep.Tempest.resume res;
            true
        | Stachelike | Migratory | Prodcons -> false);
    ph_note_get =
      (fun ~vaddr ~requester ~kind ->
        Hashtbl.remove t.bulk_clean.(Stache.home_of t.stache ~vaddr) vaddr;
        observe t ~vaddr (Ev_get (kind, requester)));
    ph_note_invals =
      (fun ~vaddr ~targets ~home_store ->
        Hashtbl.remove t.bulk_clean.(Stache.home_of t.stache ~vaddr) vaddr;
        (if home_store && targets <> [] && pol_of_vaddr t vaddr = Prodcons then
           record_readers t ~home:(Stache.home_of t.stache ~vaddr) vaddr
             targets);
        observe t ~vaddr (Ev_invals (List.length targets, home_store)));
    ph_note_recall =
      (fun ~vaddr ->
        Hashtbl.remove t.bulk_clean.(Stache.home_of t.stache ~vaddr) vaddr;
        observe t ~vaddr Ev_recall);
  }

let install sys stache =
  let nnodes = System.nnodes sys in
  let counters = Stats.create "proto" in
  let t =
    {
      sys;
      stache;
      counters;
      page_pol = Hashtbl.create 1024;
      dirty = Array.init nnodes (fun _ -> Hashtbl.create 64);
      dirty_order = Array.init nnodes (fun _ -> Vec.create ());
      readers = Array.init nnodes (fun _ -> Hashtbl.create 64);
      reader_order = Array.init nnodes (fun _ -> Vec.create ());
      outstanding = Array.make nnodes 0;
      flush_done = Array.make nnodes true;
      waiter = Array.make nnodes None;
      bulk_clean = Array.init nnodes (fun _ -> Hashtbl.create 64);
      observer = None;
      h_update = -1;
      h_ack = -1;
      h_push = -1;
      h_flush = -1;
      h_harvest = -1;
      h_bulk_confirm = -1;
      h_bulk_adopt = -1;
      c_update_grants = Stats.counter counters "update_grants";
      c_updates_sent = Stats.counter counters "updates_sent";
      c_updates_applied = Stats.counter counters "updates_applied";
      c_updates_stale = Stats.counter counters "updates_stale";
      c_handoffs = Stats.counter counters "migratory_handoffs";
      c_pushes_sent = Stats.counter counters "pushes_sent";
      c_pushes_applied = Stats.counter counters "pushes_applied";
      c_pushes_stale = Stats.counter counters "pushes_stale";
      c_bulk_pushes = Stats.counter counters "bulk_pushes";
      c_harvests = Stats.counter counters "harvests";
      c_flushes = Stats.counter counters "flushes";
    }
  in
  let tables = System.handlers sys in
  let reg name f = Tempest.Handlers.register_message tables ~name (f t) in
  t.h_update <- reg "proto.update" on_update;
  t.h_ack <- reg "proto.update_ack" on_ack;
  t.h_push <- reg "proto.push" on_push;
  t.h_flush <- reg "proto.flush" on_flush;
  t.h_harvest <- reg "proto.harvest" on_harvest;
  t.h_bulk_confirm <- reg "proto.bulk_confirm" on_bulk_confirm;
  t.h_bulk_adopt <- reg "proto.bulk_adopt" on_bulk_adopt;
  Stache.set_policy stache (Some (hooks t));
  t

(* --- page policy management --- *)

(* Retype [vpage] in place at its home and record its policy.  The page
   must be quiescent (see {!page_quiescent}); freshly allocated pages
   always are.  Charged by the caller. *)
let set_page_pol t ~vpage pol =
  let home = Stache.home_of t.stache ~vaddr:(vpage * Addr.page_size) in
  let mem = System.node_mem t.sys home in
  let page = Pagemem.get_page mem ~vpage in
  page.Pagemem.mode <-
    (if pol = Stachelike then Stache.mode_home else Stache.mode_proto_home);
  (* no access may ride a cached translation past the retype *)
  Pagemem.invalidate_translation mem;
  Tt_mem.Tlb.flush_entry (System.cpu_tlb t.sys home) vpage;
  if pol = Stachelike then Hashtbl.remove t.page_pol vpage
  else Hashtbl.replace t.page_pol vpage pol

let iter_pages t f = Hashtbl.iter (fun vpage pol -> f ~vpage pol) t.page_pol

(* Adopt every page of a fresh allocation under [pol] (zoo machines route
   all application allocations here). *)
let adopt t ~th ~node ~vaddr ~bytes pol =
  if pol <> Stachelike then begin
    let first = Addr.page_of vaddr
    and last = Addr.page_of (vaddr + bytes - 1) in
    System.with_cpu_context t.sys ~node th (fun () ->
        for vpage = first to last do
          if not (Hashtbl.mem t.page_pol vpage) then begin
            Thread.advance th 2;
            set_page_pol t ~vpage pol
          end
        done)
  end

(* Safe-switch probe: no block of the page is mid-transaction, has queued
   waiters, or carries un-flushed dirty state. *)
let page_quiescent t ~vpage =
  match
    Pagemem.find_page
      (System.node_mem t.sys
         (Stache.home_of t.stache ~vaddr:(vpage * Addr.page_size)))
      ~vpage
  with
  | None -> false
  | Some page -> (
      match page.Pagemem.user with
      | Dir.Home_dir dir ->
          let home = Stache.home_of t.stache ~vaddr:(vpage * Addr.page_size) in
          let base = vpage * Addr.page_size in
          Array.for_all
            (fun bd -> bd.Dir.pending = None && Queue.is_empty bd.Dir.waiters)
            dir
          && (let clean = ref true in
              for i = 0 to Addr.blocks_per_page - 1 do
                let v = base + (i * Addr.block_size) in
                if
                  Hashtbl.mem t.dirty.(home) v
                  || Hashtbl.mem t.readers.(home) v
                then clean := false
              done;
              !clean)
      | _ -> false)

(* --- release-point flush (CPU side) --- *)

(* Flush this node's un-flushed protocol state and wait until every update
   it ever sent has been acknowledged.  Free when there is nothing to do —
   machines without update-family pages never pay for the hook. *)
let flush_release t ~th ~node =
  if
    Hashtbl.length t.dirty.(node) > 0
    || Vec.length t.reader_order.(node) > 0
    || t.outstanding.(node) > 0
  then begin
    let ep = System.endpoint t.sys node in
    System.with_cpu_context t.sys ~node th (fun () ->
        Thread.advance th c_flush_post;
        t.flush_done.(node) <- false;
        ep.Tempest.send_raw ~dst:node ~vnet:Message.Request ~handler:t.h_flush
          ~args:(scratch1 0) ~data:Bytes.empty);
    Thread.await_unit th (fun wake ->
        t.waiter.(node) <- Some (np_wake t.sys ~node th wake))
  end
