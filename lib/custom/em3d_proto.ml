module System = Tt_typhoon.System
module Np = Tt_typhoon.Np
module Stache = Tt_stache.Stache
module Sharers = Tt_stache.Sharers
module Thread = Tt_sim.Thread
module Addr = Tt_mem.Addr
module Tag = Tt_mem.Tag
module Message = Tt_net.Message
module Stats = Tt_util.Stats
module Vec = Tt_util.Vec

let mode_custom_home = 3

let mode_custom_remote = 4

(* Handler charge constants (beyond endpoint primitives), in the same spirit
   as Stache's: the update path is deliberately lean. *)
let c_get_extra = 4

let c_data_extra = 6

let c_update_extra = 4

let c_flush_per_block = 2

(* Per-node, per-array-kind protocol state.  One record covers both roles: a
   node is *home* for its own chunk of the array (home_blocks, sharers) and
   *consumer* of remote chunks (expected, buffers, waiter). *)
type kind_state = {
  mutable expected : int;  (* # blocks of this kind stached locally *)
  mutable wait_step : int;  (* next wait episode (starts at 1) *)
  mutable flush_step : int;  (* next flush episode (starts at 1) *)
  buffers : (int, (int * Bytes.t) Vec.t) Hashtbl.t;  (* step -> updates *)
  mutable waiter : (int * (unit -> unit)) option;
  home_blocks : int Vec.t;  (* block base addresses homed here, fetch order *)
  sharers : (int, Sharers.t) Hashtbl.t;  (* block vaddr -> consumers *)
}

type t = {
  sys : System.t;
  stache : Stache.t;
  counters : Stats.t;
  kind_ids : (string, int) Hashtbl.t;
  mutable kind_names : string array;
  custom_pages : Proto.Pages.t;  (* vpage -> kind id *)
  states : (int, kind_state) Hashtbl.t array;  (* per node: kind id -> state *)
  pending : (int, Tempest.resumption) Hashtbl.t array; (* per node fetches *)
  mutable h_get : int;
  mutable h_data : int;
  mutable h_update : int;
  mutable h_flush : int;
}

let stats t = t.counters

let kind_id t name =
  match Hashtbl.find_opt t.kind_ids name with
  | Some id -> id
  | None ->
      let id = Hashtbl.length t.kind_ids in
      Hashtbl.replace t.kind_ids name id;
      t.kind_names <- Array.append t.kind_names [| name |];
      id

let state t ~node ~kind =
  let table = t.states.(node) in
  match Hashtbl.find_opt table kind with
  | Some ks -> ks
  | None ->
      let ks =
        { expected = 0; wait_step = 1; flush_step = 1;
          buffers = Hashtbl.create 4; waiter = None; home_blocks = Vec.create ();
          sharers = Hashtbl.create 64 }
      in
      Hashtbl.replace table kind ks;
      ks

let kind_of_vaddr t vaddr =
  Proto.Pages.id_of t.custom_pages ~what:"Em3d_proto" vaddr

let buffer_of ks step =
  match Hashtbl.find_opt ks.buffers step with
  | Some v -> v
  | None ->
      let v = Vec.create () in
      Hashtbl.replace ks.buffers step v;
      v

(* Apply all buffered updates of [step]: forced coherent writes into the
   stached copies (tags stay ReadOnly; stale CPU lines are invalidated by
   the block-transfer unit). *)
let apply_step (ep : Tempest.t) ks step =
  let buf = buffer_of ks step in
  Vec.iter
    (fun (vaddr, data) ->
      ep.Tempest.charge c_update_extra;
      ep.Tempest.force_write_block ~vaddr data)
    buf;
  Hashtbl.remove ks.buffers step

(* --- message handlers (run on the NP) --- *)

(* home <- consumer: first touch of a block *)
let on_get t (ep : Tempest.t) ~src ~args ~data:_ =
  let vaddr = args.(0) in
  Stats.incr t.counters "fetches";
  let kind = kind_of_vaddr t vaddr in
  let ks = state t ~node:ep.Tempest.node ~kind in
  let sh =
    match Hashtbl.find_opt ks.sharers vaddr with
    | Some sh -> sh
    | None ->
        let sh = Sharers.create ~nodes:ep.Tempest.nnodes in
        Hashtbl.replace ks.sharers vaddr sh;
        Vec.push ks.home_blocks vaddr;
        sh
  in
  Sharers.add sh src;
  ep.Tempest.charge c_get_extra;
  let data = ep.Tempest.force_read_block ~vaddr in
  ep.Tempest.send_raw ~dst:src ~vnet:Message.Response ~handler:t.h_data
    ~args:[| vaddr |] ~data

(* consumer <- home: fetched data *)
let on_data t (ep : Tempest.t) ~src:_ ~args ~data =
  let vaddr = args.(0) in
  let node = ep.Tempest.node in
  match Hashtbl.find_opt t.pending.(node) vaddr with
  | None ->
      invalid_arg
        (Printf.sprintf "Em3d_proto: node %d: data for 0x%x with no fetch"
           node vaddr)
  | Some resumption ->
      Hashtbl.remove t.pending.(node) vaddr;
      ep.Tempest.force_write_block ~vaddr data;
      ep.Tempest.set_ro ~vaddr;
      let kind = kind_of_vaddr t vaddr in
      let ks = state t ~node ~kind in
      ks.expected <- ks.expected + 1;
      ep.Tempest.charge c_data_extra;
      ep.Tempest.resume resumption

(* consumer <- home: end-of-step value update (no acknowledgment) *)
let on_update t (ep : Tempest.t) ~src:_ ~args ~data =
  let vaddr = args.(0) and step = args.(1) in
  let node = ep.Tempest.node in
  let kind = kind_of_vaddr t vaddr in
  let ks = state t ~node ~kind in
  let buf = buffer_of ks step in
  Vec.push buf (vaddr, Bytes.copy data);
  Stats.incr t.counters "updates_buffered";
  ep.Tempest.charge 2;
  match ks.waiter with
  | Some (wstep, wake) when wstep = step && Vec.length buf >= ks.expected ->
      ks.waiter <- None;
      apply_step ep ks step;
      wake ()
  | Some _ | None -> ()

(* home NP <- home CPU: walk the outstanding-copy list and push updates *)
let on_flush t (ep : Tempest.t) ~src:_ ~args ~data:_ =
  let kind = args.(0) and step = args.(1) in
  let ks = state t ~node:ep.Tempest.node ~kind in
  Vec.iter
    (fun vaddr ->
      ep.Tempest.charge c_flush_per_block;
      match Hashtbl.find_opt ks.sharers vaddr with
      | None -> ()
      | Some sh ->
          if not (Sharers.is_empty sh) then begin
            let data = ep.Tempest.force_read_block ~vaddr in
            List.iter
              (fun consumer ->
                Stats.incr t.counters "updates_sent";
                ep.Tempest.send_raw ~dst:consumer ~vnet:Message.Request
                  ~handler:t.h_update ~args:[| vaddr; step |] ~data)
              (Sharers.to_list sh)
          end)
    ks.home_blocks

(* --- fault handlers --- *)

let remote_block_fault t (ep : Tempest.t) (fault : Tempest.fault) =
  let vaddr = Addr.block_base fault.Tempest.fault_vaddr in
  (match fault.Tempest.fault_access with
  | Tag.Store ->
      invalid_arg
        (Printf.sprintf
           "Em3d_proto: node %d wrote remote custom block 0x%x — the update \
            protocol requires owners-compute"
           ep.Tempest.node vaddr)
  | Tag.Load -> ());
  let node = ep.Tempest.node in
  ep.Tempest.set_busy ~vaddr;
  Hashtbl.replace t.pending.(node) vaddr fault.Tempest.fault_resumption;
  ep.Tempest.charge 4;
  let home = Stache.home_of t.stache ~vaddr in
  ep.Tempest.send_raw ~dst:home ~vnet:Message.Request ~handler:t.h_get
    ~args:[| vaddr |] ~data:Bytes.empty

let home_block_fault _t (_ep : Tempest.t) (fault : Tempest.fault) =
  invalid_arg
    (Printf.sprintf
       "Em3d_proto: home fault at 0x%x — custom home pages stay ReadWrite"
       fault.Tempest.fault_vaddr)

let install sys stache =
  let nnodes = System.nnodes sys in
  let t =
    {
      sys; stache;
      counters = Stats.create "em3d_proto";
      kind_ids = Hashtbl.create 4;
      kind_names = [||];
      custom_pages = Proto.Pages.create sys stache;
      states = Array.init nnodes (fun _ -> Hashtbl.create 4);
      pending = Array.init nnodes (fun _ -> Hashtbl.create 8);
      h_get = -1; h_data = -1; h_update = -1; h_flush = -1;
    }
  in
  let tables = System.handlers sys in
  let reg name f = Tempest.Handlers.register_message tables ~name (f t) in
  t.h_get <- reg "em3d.get" on_get;
  t.h_data <- reg "em3d.data" on_data;
  t.h_update <- reg "em3d.update" on_update;
  t.h_flush <- reg "em3d.flush" on_flush;
  Tempest.Handlers.set_block_fault tables ~mode:mode_custom_home
    (home_block_fault t);
  Tempest.Handlers.set_block_fault tables ~mode:mode_custom_remote
    (remote_block_fault t);
  (* Custom pages map as custom stache pages on fault; everything else
     keeps the transparent behaviour (shared plumbing, see Proto.Pages). *)
  Proto.Pages.wrap_page_fault t.custom_pages ~remote_mode:mode_custom_remote;
  t

let alloc t ~th ~node ~kind ?home ~bytes () =
  let kid = kind_id t kind in
  (* page-aligned so custom pages are never shared with stache data *)
  Proto.Pages.alloc t.custom_pages ~th ~node ~id:kid
    ~home_mode:mode_custom_home ?home ~bytes ()

let flush_and_wait t ~th ~node ~kind =
  let kid = kind_id t kind in
  let ks = state t ~node ~kind:kid in
  let ep = System.endpoint t.sys node in
  (* 1. post the flush of our outstanding copies to our own NP *)
  System.with_cpu_context t.sys ~node th (fun () ->
      let step = ks.flush_step in
      ks.flush_step <- ks.flush_step + 1;
      Thread.advance th 5;
      ep.Tempest.send_raw ~dst:node ~vnet:Message.Request ~handler:t.h_flush
        ~args:[| kid; step |] ~data:Bytes.empty);
  (* 2. fuzzy barrier: wait until all updates we are owed this step arrived *)
  let step = ks.wait_step in
  ks.wait_step <- ks.wait_step + 1;
  let arrived = Vec.length (buffer_of ks step) in
  if arrived >= ks.expected then
    System.with_cpu_context t.sys ~node th (fun () ->
        apply_step ep ks step)
  else
    Thread.await_unit th (fun wake ->
        (* the wake runs on the NP after apply_step; sync the CPU clock *)
        ks.waiter <- Some (step, Proto.np_wake t.sys ~node th wake))
