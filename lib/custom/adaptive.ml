module System = Tt_typhoon.System
module Stache = Tt_stache.Stache
module Thread = Tt_sim.Thread
module Addr = Tt_mem.Addr
module Stats = Tt_util.Stats
module Vec = Tt_util.Vec

(* Per-page policy selection over the protocol zoo.

   The zoo's observer stream feeds per-page counters that accumulate
   until a decision point — every barrier, plus every 8th lock release
   per node (lock-structured phases can run thousands of operations
   between barriers) — yields enough evidence to classify.  Each node
   classifies the pages it homes against two reference sharing patterns
   and, with hysteresis, retypes pages whose traffic says the default
   invalidate protocol is the wrong one:

   - migratory: exclusive copies keep getting recalled and re-fetched for
     writing (write-after-write migration) -> [Migratory] serves read
     misses on exclusive blocks as ownership handoffs.
   - home-writer / remote-readers: home stores keep triggering invalidation
     rounds while remote traffic is read-only -> [Widerep] grants home
     stores in place and eagerly pushes refreshed values to the sharers.

   Only [Stachelike], [Migratory] and [Widerep] are chosen at runtime.
   [Stachelike] and [Migratory] are sequentially consistent under ANY
   access pattern, so misclassifying a page onto them is merely slow,
   never incorrect.  [Widerep] is release-consistent: every release point
   flushes the home's update pushes and awaits their acks, so
   data-race-free programs (all the harness apps) observe nothing weaker
   than SC — but a racy program can read a stale copy in the window
   between an in-place home grant and the harvest push landing.  That
   staleness is bounded (one push latency) and loudly diagnosed by the
   torture oracle's per-iteration value encoding, never silent
   corruption; the read-mostly evidence gating the switch means a page
   has to look write-free from remote before [Widerep] is considered.
   [Delayed] and [Prodcons] stay allocation-time (static) choices:
   [Prodcons] needs the allocation-time promise that consumers re-read
   whole regions each phase, which traffic counters cannot verify, and
   [Delayed] carries batched un-pushed state between releases (much wider
   staleness windows) while being dominated by [Widerep] on every app in
   the shootout grid, so runtime switching has nothing to gain from it.

   Switches happen only at quiesce points ({!Proto.page_quiescent}) and
   charge [c_switch] simulated cycles: the retype flushes the home's
   translation MRU and TLB entry, so the cost models a remap + shootdown.

   Kill switch: TT_ADAPT=0 keeps every page on the default protocol (the
   observer still counts, nothing ever switches). *)

type page = {
  vpage : int;
  (* traffic accumulated since the page's last classification *)
  mutable reads : int;  (* remote read fetches *)
  mutable writes : int;  (* remote write/upgrade fetches *)
  mutable recalls : int;  (* exclusive-copy recalls *)
  mutable inv_home : int;  (* invalidation rounds from home stores *)
  mutable grants : int;  (* update-style home store grants *)
  mutable cand : Proto.pol;  (* last classification *)
  mutable streak : int;  (* consecutive identical classifications *)
}

type t = {
  sys : System.t;
  stache : Stache.t;
  proto : Proto.t;
  enabled : bool;
  counters : Stats.t;
  pages : (int, page) Hashtbl.t; (* vpage -> window state *)
  homed : int Vec.t array; (* per home node: vpages in first-event order *)
  release_tick : int array; (* per node: unlocks seen, for sampled windows *)
  c_windows : Stats.counter;
  c_switches : Stats.counter;
}

(* Hysteresis: a page must classify the same way for this many consecutive
   windows before it is switched.  Promotion from the default protocol to
   [Widerep] is exempt (one window suffices): the evidence gating it is
   already conservative (zero remote writes or recalls), it is cheap to
   revert, and on read-mostly/producer-consumer apps the first window
   holds the whole signature — waiting costs a phase of
   invalidate-and-refetch. *)
let streak_to_switch = 2

(* Simulated cost of one policy switch (remap + MRU/TLB shootdown). *)
let c_switch = 25

let stats t = t.counters

let switches t = Stats.Counter.get t.c_switches

let page_of t vpage =
  match Hashtbl.find_opt t.pages vpage with
  | Some p -> p
  | None ->
      let p =
        { vpage; reads = 0; writes = 0; recalls = 0; inv_home = 0;
          grants = 0; cand = Proto.Stachelike; streak = 0 }
      in
      Hashtbl.replace t.pages vpage p;
      let home = Stache.home_of t.stache ~vaddr:(vpage * Addr.page_size) in
      Vec.push t.homed.(home) vpage;
      p

let on_event t ~vaddr ev =
  let p = page_of t (Addr.page_of vaddr) in
  match ev with
  | Proto.Ev_get (`Ro, _) -> p.reads <- p.reads + 1
  | Proto.Ev_get ((`Rw | `Up), _) -> p.writes <- p.writes + 1
  | Proto.Ev_recall -> p.recalls <- p.recalls + 1
  | Proto.Ev_invals (targets, home_store) ->
      if home_store && targets > 0 then p.inv_home <- p.inv_home + 1
  | Proto.Ev_update_grant -> p.grants <- p.grants + 1

(* Classify the traffic accumulated since the last decision.  [None] means
   not enough evidence either way (a quiet or read-only stretch — reads
   alone are consistent with every policy): counters keep accumulating and
   the streak is left alone, so phase-alternating apps (write burst /
   read burst per barrier) don't flip-flop. *)
let classify p =
  if p.recalls >= 1 && p.writes + p.recalls >= 2 then Some Proto.Migratory
  else if p.inv_home + p.grants >= 1 && p.writes = 0 && p.recalls = 0 then
    Some Proto.Widerep
  else if p.reads >= 1 && p.writes = 0 && p.recalls = 0 then
    (* read-mostly with no remote writes: also [Widerep].  If the home
       never stores the choice is a free no-op (no grants, no harvests);
       if it does, the eager value pushes beat invalidate-and-refetch.
       Counting this arm lets producer-consumer pages promote one phase
       earlier (consumers' first fetches are evidence before the home's
       first invalidation round). *)
    Some Proto.Widerep
  else if p.writes + p.recalls >= 2 then
    (* remote writes without the migratory recall signature: the default
       invalidate protocol is the right tool *)
    Some Proto.Stachelike
  else None

(* Synchronization hook for [node]: reclassify every page it homes and
   switch the stable misfits.  Runs after the node's own release flush, so
   pages this node dirtied are already clean; pages with other traffic
   still in flight fail the quiescence probe and simply wait for the next
   window (the streak is kept). *)
let on_sync t ~node th =
  if t.enabled && Vec.length t.homed.(node) > 0 then begin
    Stats.Counter.incr t.c_windows;
    Vec.iter
      (fun vpage ->
        let p = Hashtbl.find t.pages vpage in
        match classify p with
        | None -> ()
        | Some cand ->
            if cand = p.cand then p.streak <- p.streak + 1
            else begin
              p.cand <- cand;
              p.streak <- 1
            end;
            p.reads <- 0;
            p.writes <- 0;
            p.recalls <- 0;
            p.inv_home <- 0;
            p.grants <- 0;
            let current = Proto.pol_of_page t.proto ~vpage in
            let need =
              if cand = Proto.Widerep && current = Proto.Stachelike then 1
              else streak_to_switch
            in
            if
              p.streak >= need && cand <> current
              && Proto.page_quiescent t.proto ~vpage
            then begin
              Stats.Counter.incr t.c_switches;
              System.with_cpu_context t.sys ~node th (fun () ->
                  Thread.advance th c_switch;
                  Proto.set_page_pol t.proto ~vpage cand)
            end)
      t.homed.(node)
  end

(* Lock-structured apps can run thousands of operations between barriers,
   so a sampled decision point also rides the release hook: every
   [release_sample]th unlock by a node reclassifies the pages it homes.
   Deterministic (a per-node counter of simulated events). *)
let release_sample = 8

let on_release t ~node th =
  if t.enabled then begin
    t.release_tick.(node) <- t.release_tick.(node) + 1;
    if t.release_tick.(node) mod release_sample = 0 then on_sync t ~node th
  end

let install sys stache proto =
  let enabled =
    match Sys.getenv_opt "TT_ADAPT" with Some "0" -> false | _ -> true
  in
  let counters = Stats.create "adaptive" in
  let t =
    {
      sys;
      stache;
      proto;
      enabled;
      counters;
      pages = Hashtbl.create 1024;
      homed = Array.init (System.nnodes sys) (fun _ -> Vec.create ());
      release_tick = Array.make (System.nnodes sys) 0;
      c_windows = Stats.counter counters "windows";
      c_switches = Stats.counter counters "switches";
    }
  in
  Proto.set_observer proto (Some (on_event t));
  t
