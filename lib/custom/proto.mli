(** The protocol zoo: a family of reusable custom coherence policies over
    the Tempest interface, factored so each protocol is a policy module on
    the Stache home engine rather than a fork of it.

    Pages adopted by the zoo are retyped in place to
    {!Tt_stache.Stache.mode_proto_home} at their home; remote copies stay
    ordinary stached pages, so page faults, fetches and replacement all keep
    their transparent behaviour.  The policies ({!pol}) are:

    - [Migratory] — exclusive ownership follows the accessor: a read miss on
      a remotely-owned block is served as an ownership handoff
      (invalidate-on-handoff), halving the recall traffic of
      write-after-write migration patterns.  Sequentially consistent.
    - [Prodcons] — producer-consumer channel: invalidation rounds triggered
      by home (producer) stores record the invalidated readers; at the next
      release point the home pushes committed copies back to that reader
      set, contiguous runs as one bulk transfer.  Consumers then read
      without a single fetch.  Sequentially consistent (only clean data is
      pushed, and pushed blocks are re-registered as ordinary sharers).
    - [Widerep] — read-mostly wide replication: a home store on a Shared
      block is granted in place (no invalidations); a harvest message
      re-reads the block after the store commits and eagerly pushes the new
      value to all sharers, demoting the home copy so the next store
      harvests again.
    - [Delayed] — delayed write-update: like [Widerep] but with no eager
      harvest; dirty blocks are pushed once per release point (batched).

    [Widerep]/[Delayed] relax consistency between synchronization points:
    stale read-only copies may be observed until the writer's next release.
    Data-race-free programs stay correct because {!flush_release} — wired to
    the harness's pre-barrier and pre-release hooks — pushes all dirty data
    and awaits acknowledgments before the releasing processor can pass the
    synchronization point.  Racy programs may observe staleness, which the
    torture oracle diagnoses (never silent corruption: updates carry
    committed data and every transition stays within the MSI state space).

    {!Adaptive} layers per-page runtime policy selection on top. *)

type t

type pol = Stachelike | Migratory | Prodcons | Widerep | Delayed

val pol_names : string list
(** The zoo policies' CLI names: ["migratory"; "prodcons"; "widerep";
    "delayed"] (excluding ["stache"], the transparent default). *)

val pol_of_name : string -> pol
(** @raise Invalid_argument on unknown names, listing the valid ones. *)

val name_of_pol : pol -> string

(** Observation stream consumed by the adaptive layer: one event per
    home-side protocol decision point. *)
type event =
  | Ev_get of [ `Ro | `Rw | `Up ] * int  (** remote fetch: kind, requester *)
  | Ev_recall  (** exclusive copy recalled *)
  | Ev_invals of int * bool  (** invalidation round: #targets, home-store? *)
  | Ev_update_grant  (** home store served update-style *)

val install : Tt_typhoon.System.t -> Tt_stache.Stache.t -> t
(** Register the zoo's message handlers and install its policy hooks into
    Stache's policy slot.  Pages keep transparent behaviour until adopted
    ({!adopt} / {!set_page_pol}). *)

val adopt :
  t -> th:Tt_sim.Thread.t -> node:int -> vaddr:int -> bytes:int -> pol -> unit
(** Place every page of a fresh allocation under [pol] (retyping each at its
    home).  Zoo machines route all application allocations through this. *)

val set_page_pol : t -> vpage:int -> pol -> unit
(** Retype one page in place at its home and record its policy
    ([Stachelike] reverts it to a transparent page).  Flushes the home's
    translation MRU and TLB entry.  The page must be quiescent
    ({!page_quiescent}); the caller charges simulated switch cost. *)

val pol_of_page : t -> vpage:int -> pol

val iter_pages : t -> (vpage:int -> pol -> unit) -> unit
(** Iterate the pages currently holding a non-default policy (order
    unspecified — sort before depending on it). *)

val page_quiescent : t -> vpage:int -> bool
(** Safe-switch probe: the page is mapped at its home and no block is
    mid-transaction, has queued waiters, or carries un-flushed zoo state. *)

val flush_release : t -> th:Tt_sim.Thread.t -> node:int -> unit
(** Release-point flush for [node]: post the flush walk to its NP (dirty
    update pushes, prodcons reader pushes) and block the CPU until every
    update sent from this node has been acknowledged.  Free when the node
    has no un-flushed state.  Wire to {!Tt_harness.Machine.t.pre_barrier}
    and [pre_release]. *)

val set_observer : t -> (vaddr:int -> event -> unit) option -> unit
(** Install the adaptive layer's observation callback (host-side, free). *)

val stats : t -> Tt_util.Stats.t
(** [update_grants], [updates_sent], [updates_applied], [updates_stale],
    [migratory_handoffs], [pushes_sent], [pushes_applied], [pushes_stale],
    [bulk_pushes], [harvests], [flushes]. *)

(** {2 Shared custom-protocol plumbing}

    Extracted from the EM3D protocol so every custom protocol reuses the
    same page registry, page-fault wrapper and allocator. *)

module Pages : sig
  type t

  val create : Tt_typhoon.System.t -> Tt_stache.Stache.t -> t

  val registered : t -> vpage:int -> bool

  val id_of : t -> what:string -> int -> int
  (** The id a page was registered under.
      @raise Invalid_argument (prefixed [what]) off custom pages. *)

  val alloc :
    t -> th:Tt_sim.Thread.t -> node:int -> id:int -> home_mode:int ->
    ?home:int -> bytes:int -> unit -> int
  (** Page-aligned {!Tt_stache.Stache.alloc} plus per-page registration
      under [id] and home-side retyping to [home_mode]. *)

  val wrap_page_fault : t -> remote_mode:int -> unit
  (** Wrap Stache's installed page-fault handler: registered pages map as
      [remote_mode] custom pages with Invalid tags; everything else keeps
      the transparent behaviour.
      @raise Invalid_argument if Stache is not installed. *)
end

val np_wake :
  Tt_typhoon.System.t -> node:int -> Tt_sim.Thread.t -> (unit -> unit) ->
  unit -> unit
(** Wake a blocked CPU thread from an NP handler, first syncing the CPU
    clock to the NP's (the standard custom-protocol wait pattern). *)
