module System = Tt_typhoon.System
module Thread = Tt_sim.Thread
module Addr = Tt_mem.Addr
module Tag = Tt_mem.Tag
module Message = Tt_net.Message
module Stats = Tt_util.Stats

(* Per-block protocol trace (TT_DEBUG_BLOCK = block-base virtual address). *)
let dbg vaddr fmt = Tt_util.Debug.log ~key:(Tt_mem.Addr.block_base vaddr) fmt

(* Shared scratch argument builders: protocol sends pass these to the
   endpoint's [send], which copies them into a pooled message before
   returning, so no [| ... |] literal is allocated per message. *)
let scratch1 a0 =
  let s = Message.Pool.scratch 1 in
  s.(0) <- a0;
  s

let scratch2 a0 a1 =
  let s = Message.Pool.scratch 2 in
  s.(0) <- a0;
  s.(1) <- a1;
  s

let scratch3 a0 a1 a2 =
  let s = Message.Pool.scratch 3 in
  s.(0) <- a0;
  s.(1) <- a1;
  s.(2) <- a2;
  s

(* Guarded protocol-sabotage knob: when on, [on_inval] acknowledges the
   home node's invalidation without actually dropping the read-only copy,
   so subsequent reads on the sharer can return stale data — the seeded
   coherence bug the torture harness (Tt_torture) must catch and shrink.
   Off unless TT_SABOTAGE is set in the environment or {!set_sabotage} is
   called; never enabled by any production code path. *)
let sabotage =
  ref
    (match Sys.getenv_opt "TT_SABOTAGE" with
    | Some ("1" | "true" | "yes") -> true
    | Some _ | None -> false)

let set_sabotage on = sabotage := on

let sabotage_enabled () = !sabotage

let mode_home = 1

let mode_remote = 2

(* Pages whose home-side service is modulated by an installed policy
   (protocol zoo, see Tt_custom.Proto).  Remote copies of such pages stay
   ordinary [mode_remote] stached pages; only the home end is retyped, so
   the invariant auditor knows the page plays by its policy's rules. *)
let mode_proto_home = 5

(* Shared heap segment: a large user-reserved address range (§2.3). *)
let heap_base = 0x1000_0000

(* Handler instruction counts beyond the endpoint primitives' built-in
   costs, tuned so the common paths match §6: 14 NP instructions to request
   a block, 30 to respond with data, 20 at data arrival. *)
let c_req_extra = 5

let c_resp_extra = 9

let c_arrival_extra = 9

let c_inval_extra = 3

let c_ack_extra = 3

let c_recall_extra = 5

let c_page_fault_extra = 25

let c_writeback_extra = 5

let c_registry_lookup = 5

type node_state = {
  pending_remote : (int, Tempest.resumption option) Hashtbl.t;
      (* block base va -> suspended CPU waiting for data, or [None] for an
         outstanding nonbinding prefetch (the Busy tag's purpose, §5.4) *)
  local_homes : (int, int) Hashtbl.t; (* vpage -> home (local cache) *)
  stache_fifo : int Queue.t; (* stached vpages in mapping order *)
}

(* Hooks by which a user-level policy layer (the protocol zoo) modulates
   home-side service without forking the engine.  All hooks run at the
   block's home, inside the home's NP handlers; cost is charged by the hook
   implementation, never here, so an absent policy is exactly free. *)
type policy_hooks = {
  ph_grant_kind :
    vaddr:int ->
    requester:int ->
    state:Dir.bstate ->
    [ `Ro | `Rw | `Up ] ->
    [ `Ro | `Rw | `Up ];
      (* may strengthen a remote request before service: migratory turns a
         read miss on a remotely-owned block into an ownership handoff;
         update policies turn an upgrade on a home-dirty block into a full
         write miss so fresh data is sent *)
  ph_home_store :
    Tempest.t -> vaddr:int -> Dir.block_dir -> Tempest.resumption -> bool;
      (* a home store fault hit a Shared block: return [true] after handling
         it update-style (grant write permission in place, keep the sharers,
         remember the block dirty) — the invalidation round is skipped.
         Return [false] to fall through to normal invalidate service. *)
  ph_note_get : vaddr:int -> requester:int -> kind:[ `Ro | `Rw | `Up ] -> unit;
  ph_note_invals : vaddr:int -> targets:int list -> home_store:bool -> unit;
  ph_note_recall : vaddr:int -> unit;
}

type t = {
  sys : System.t;
  mutable policy : policy_hooks option;
  registry : (int, int) Hashtbl.t; (* vpage -> home: distributed mapping table *)
  node_states : node_state array;
  max_stache_pages : int option;
  counters : Stats.t;
  (* hot-path counters, pre-resolved from [counters] at install time so the
     protocol handlers never hash key strings per message *)
  c_inval : Stats.counter;
  c_recall : Stats.counter;
  c_forwarded : Stats.counter;
  c_get_ro : Stats.counter;
  c_get_rw : Stats.counter;
  c_upgrade : Stats.counter;
  c_prefetch_completed : Stats.counter;
  c_prefetch_issued : Stats.counter;
  c_home_faults : Stats.counter;
  c_writeback : Stats.counter;
  c_page_replacements : Stats.counter;
  c_sabotaged_invals : Stats.counter;
  mutable alloc_cursor : int;
  mutable next_home : int; (* round-robin cursor *)
  (* message handler ids, assigned at install *)
  mutable h_get : int;
  mutable h_data : int;
  mutable h_upgrade_ok : int;
  mutable h_inval : int;
  mutable h_inval_ack : int;
  mutable h_recall : int;
  mutable h_recall_data : int;
  mutable h_writeback : int;
  mutable h_noop : int;
  (* crash-stop recovery state: the liveness verdict consulted when
     repairing directories, and the victim's own suspended CPUs collected
     at the death verdict to be re-fired if the node rejoins *)
  mutable is_dead : int -> bool;
  mutable stranded : (int * Tempest.resumption) list;
  c_rehomed : Stats.counter;
  c_restored : Stats.counter;
  c_repaired : Stats.counter;
  c_reissued : Stats.counter;
  c_stranded : Stats.counter;
}

let system t = t.sys

let stats t = t.counters

let set_policy t p = t.policy <- p

let kind_code = function `Ro -> 0 | `Rw -> 1 | `Up -> 2

let kind_of_code = function
  | 0 -> `Ro
  | 1 -> `Rw
  | 2 -> `Up
  | n -> invalid_arg (Printf.sprintf "Stache: bad request kind %d" n)

let node_state t i = t.node_states.(i)

let home_of t ~vaddr =
  match Hashtbl.find_opt t.registry (Addr.page_of vaddr) with
  | Some h -> h
  | None ->
      invalid_arg
        (Printf.sprintf "Stache.home_of: 0x%x is not an allocated shared \
                         address" vaddr)

(* ------------------------------------------------------------------ *)
(* Home-side protocol engine                                           *)
(* ------------------------------------------------------------------ *)

let touch_dir (ep : Tempest.t) ~vaddr = ep.touch (Dir.dir_key ~vaddr)

let send_data t (ep : Tempest.t) ~vaddr ~dst ~rw =
  let data = ep.Tempest.force_read_block ~vaddr in
  ep.Tempest.charge c_resp_extra;
  ep.Tempest.send_raw ~dst ~vnet:Message.Response ~handler:t.h_data
    ~args:(scratch2 vaddr (if rw then 1 else 0))
    ~data

let send_upgrade_ok t (ep : Tempest.t) ~vaddr ~dst =
  ep.Tempest.charge c_resp_extra;
  ep.Tempest.send_raw ~dst ~vnet:Message.Response ~handler:t.h_upgrade_ok
    ~args:(scratch1 vaddr) ~data:Bytes.empty

(* Grant the block to [client] assuming all conflicting copies are gone and
   the directory reflects the post-grant state change made by the caller. *)
let grant t ep ~vaddr (bd : Dir.block_dir) client =
  match client with
  | Dir.Remote (r, `Ro) ->
      Sharers.add bd.Dir.sharers r;
      bd.Dir.state <- Dir.Shared;
      ep.Tempest.set_ro ~vaddr;
      ep.Tempest.downgrade ~vaddr;
      send_data t ep ~vaddr ~dst:r ~rw:false
  | Dir.Remote (r, `Rw) ->
      (* data must leave before the home copy is stamped Invalid *)
      send_data t ep ~vaddr ~dst:r ~rw:true;
      Sharers.clear bd.Dir.sharers;
      bd.Dir.state <- Dir.Remote_excl r;
      ep.Tempest.invalidate ~vaddr
  | Dir.Remote (r, `Up) ->
      Sharers.clear bd.Dir.sharers;
      bd.Dir.state <- Dir.Remote_excl r;
      ep.Tempest.invalidate ~vaddr;
      send_upgrade_ok t ep ~vaddr ~dst:r
  | Dir.Home (res, Tag.Load) ->
      (* home regains readability; state set by the caller *)
      ep.Tempest.set_ro ~vaddr;
      ep.Tempest.resume res
  | Dir.Home (res, Tag.Store) ->
      Sharers.clear bd.Dir.sharers;
      bd.Dir.state <- Dir.Idle;
      ep.Tempest.set_rw ~vaddr;
      ep.Tempest.resume res

(* Serve one request at the home node; queues behind pending transactions. *)
let rec serve t (ep : Tempest.t) ~vaddr (bd : Dir.block_dir) client =
  dbg vaddr "serve home=%d client=%s state=%s pending=%b waiters=%d"
    ep.Tempest.node
    (match client with
    | Dir.Remote (r, k) ->
        Printf.sprintf "R%d:%s" r
          (match k with `Ro -> "ro" | `Rw -> "rw" | `Up -> "up")
    | Dir.Home (_, a) ->
        Printf.sprintf "H:%s" (match a with Tag.Load -> "ld" | Tag.Store -> "st"))
    (match bd.Dir.state with
    | Dir.Idle -> "idle"
    | Dir.Shared -> "shared"
    | Dir.Remote_excl o -> Printf.sprintf "excl%d" o)
    (bd.Dir.pending <> None)
    (Queue.length bd.Dir.waiters);
  touch_dir ep ~vaddr;
  if bd.Dir.pending <> None then Queue.add client bd.Dir.waiters
  else
    (* a policy may strengthen the request kind before service (re-applied
       when a queued waiter is drained — the directory state it depends on
       may have changed while the client waited) *)
    let client =
      match t.policy, client with
      | Some ph, Dir.Remote (r, k) ->
          let k' =
            ph.ph_grant_kind ~vaddr ~requester:r ~state:bd.Dir.state k
          in
          if k' = k then client else Dir.Remote (r, k')
      | (Some _ | None), _ -> client
    in
    match bd.Dir.state, client with
    (* ---- no conflicting copies: grant immediately ---- *)
    | Dir.Idle, Dir.Remote (_, `Up) ->
        (* stale upgrade: requester's copy vanished; serve as a write miss *)
        (match client with
        | Dir.Remote (r, _) -> grant t ep ~vaddr bd (Dir.Remote (r, `Rw))
        | Dir.Home _ -> assert false)
    | Dir.Idle, _ -> grant t ep ~vaddr bd client
    | Dir.Shared, Dir.Remote (_, `Ro) -> grant t ep ~vaddr bd client
    | Dir.Shared, Dir.Home (res, Tag.Load) ->
        (* spurious: ReadOnly home tag already permits loads *)
        ep.Tempest.resume res
    (* ---- update-style home store: policy keeps the sharers ---- *)
    | Dir.Shared, Dir.Home (res, Tag.Store)
      when (match t.policy with
           | Some ph -> ph.ph_home_store ep ~vaddr bd res
           | None -> false) ->
        (* the policy granted write permission in place and recorded the
           block dirty; stale read-only copies are refreshed at the next
           release point (or eagerly, per policy) *)
        ()
    (* ---- sharers must be invalidated first ---- *)
    | Dir.Shared, (Dir.Remote (_, (`Rw | `Up)) | Dir.Home (_, Tag.Store)) ->
        let requester =
          match client with Dir.Remote (r, _) -> Some r | Dir.Home _ -> None
        in
        let client =
          (* an upgrader that lost its copy needs data after all *)
          match client with
          | Dir.Remote (r, `Up) when not (Sharers.mem bd.Dir.sharers r) ->
              Dir.Remote (r, `Rw)
          | c -> c
        in
        let targets =
          List.filter
            (fun s -> Some s <> requester)
            (Sharers.to_list bd.Dir.sharers)
        in
        (match t.policy with
        | Some ph ->
            ph.ph_note_invals ~vaddr ~targets ~home_store:(requester = None)
        | None -> ());
        (* the home's own readable copy goes too *)
        ep.Tempest.invalidate ~vaddr;
        if targets = [] then begin
          Sharers.clear bd.Dir.sharers;
          grant t ep ~vaddr bd client
        end
        else begin
          bd.Dir.pending <-
            Some
              { Dir.client; acks_left = List.length targets; prev_owner = None };
          List.iter
            (fun s ->
              Stats.Counter.incr t.c_inval;
              ep.Tempest.charge c_inval_extra;
              ep.Tempest.send_raw ~dst:s ~vnet:Message.Request ~handler:t.h_inval
                ~args:(scratch1 vaddr) ~data:Bytes.empty)
            targets
        end
    (* ---- a remote exclusive copy must be recalled first ---- *)
    | Dir.Remote_excl o, _ ->
        let ex =
          match client with
          | Dir.Remote (_, (`Rw | `Up)) | Dir.Home (_, Tag.Store) -> true
          | Dir.Remote (_, `Ro) | Dir.Home (_, Tag.Load) -> false
        in
        (match t.policy with
        | Some ph -> ph.ph_note_recall ~vaddr
        | None -> ());
        Stats.Counter.incr t.c_recall;
        bd.Dir.pending <- Some { Dir.client; acks_left = 1; prev_owner = Some o };
        ep.Tempest.charge c_recall_extra;
        ep.Tempest.send_raw ~dst:o ~vnet:Message.Request ~handler:t.h_recall
          ~args:(scratch2 vaddr (if ex then 1 else 0)) ~data:Bytes.empty

and finish_pending t ep ~vaddr (bd : Dir.block_dir) =
  let pending = Option.get bd.Dir.pending in
  bd.Dir.pending <- None;
  (match pending.Dir.client with
  | Dir.Remote (_, _) | Dir.Home _ -> grant t ep ~vaddr bd pending.Dir.client);
  drain_waiters t ep ~vaddr bd

and drain_waiters t ep ~vaddr bd =
  if bd.Dir.pending = None then
    match Queue.take_opt bd.Dir.waiters with
    | Some client ->
        ep.Tempest.charge 2;
        serve t ep ~vaddr bd client;
        drain_waiters t ep ~vaddr bd
    | None -> ()

(* ------------------------------------------------------------------ *)
(* Message handlers                                                    *)
(* ------------------------------------------------------------------ *)

(* home <- requester: get a block.  After a page migration, stale local
   home caches still aim requests at the old home, which forwards them to
   the page's current home (preserving the original requester in the
   arguments). *)
let on_get t (ep : Tempest.t) ~src ~args ~data:_ =
  let vaddr = args.(0) and kind = kind_of_code args.(1) in
  let requester = if Array.length args > 2 then args.(2) else src in
  let current_home = home_of t ~vaddr in
  if current_home <> ep.Tempest.node then begin
    Stats.Counter.incr t.c_forwarded;
    ep.Tempest.charge 4;
    ep.Tempest.send_raw ~dst:current_home ~vnet:Message.Request ~handler:t.h_get
      ~args:(scratch3 vaddr args.(1) requester) ~data:Bytes.empty
  end
  else begin
    Stats.Counter.incr
      (match kind with `Ro -> t.c_get_ro | `Rw -> t.c_get_rw | `Up -> t.c_upgrade);
    (match t.policy with
    | Some ph -> ph.ph_note_get ~vaddr ~requester ~kind
    | None -> ());
    let bd = Dir.block_of ep ~vaddr in
    serve t ep ~vaddr bd (Dir.Remote (requester, kind))
  end

(* requester <- home: block data *)
let on_data t (ep : Tempest.t) ~src:_ ~args ~data =
  let vaddr = args.(0) and rw = args.(1) = 1 in
  dbg vaddr "data at node=%d rw=%b" ep.Tempest.node rw;
  let ns = node_state t ep.Tempest.node in
  match Hashtbl.find_opt ns.pending_remote vaddr with
  | None ->
      invalid_arg
        (Printf.sprintf "Stache: node %d got data for 0x%x with no request"
           ep.Tempest.node vaddr)
  | Some pending ->
      Hashtbl.remove ns.pending_remote vaddr;
      ep.Tempest.force_write_block ~vaddr data;
      ep.Tempest.recycle_block data;
      (if rw then ep.Tempest.set_rw ~vaddr else ep.Tempest.set_ro ~vaddr);
      ep.Tempest.charge c_arrival_extra;
      (match pending with
      | Some resumption -> ep.Tempest.resume resumption
      | None -> Stats.Counter.incr t.c_prefetch_completed)

(* requester <- home: upgrade granted without data *)
let on_upgrade_ok t (ep : Tempest.t) ~src:_ ~args ~data:_ =
  let vaddr = args.(0) in
  let ns = node_state t ep.Tempest.node in
  match Hashtbl.find_opt ns.pending_remote vaddr with
  | None ->
      invalid_arg
        (Printf.sprintf
           "Stache: node %d got upgrade-ok for 0x%x with no request"
           ep.Tempest.node vaddr)
  | Some pending ->
      Hashtbl.remove ns.pending_remote vaddr;
      ep.Tempest.set_rw ~vaddr;
      ep.Tempest.charge c_arrival_extra;
      (match pending with
      | Some resumption -> ep.Tempest.resume resumption
      | None -> Stats.Counter.incr t.c_prefetch_completed)

(* sharer <- home: drop your read-only copy *)
let on_inval t (ep : Tempest.t) ~src ~args ~data:_ =
  let vaddr = args.(0) in
  if !sabotage then
    (* seeded bug: ack without invalidating, keeping a stale RO copy *)
    Stats.Counter.incr t.c_sabotaged_invals
  else if ep.Tempest.page_mapped ~vpage:(Addr.page_of vaddr) then
    ep.Tempest.invalidate ~vaddr;
  ep.Tempest.charge c_inval_extra;
  ep.Tempest.send_raw ~dst:src ~vnet:Message.Response ~handler:t.h_inval_ack
    ~args:(scratch1 vaddr) ~data:Bytes.empty

(* home <- sharer *)
let on_inval_ack t (ep : Tempest.t) ~src:_ ~args ~data:_ =
  let vaddr = args.(0) in
  dbg vaddr "inval_ack at home=%d" ep.Tempest.node;
  let bd = Dir.block_of ep ~vaddr in
  touch_dir ep ~vaddr;
  ep.Tempest.charge c_ack_extra;
  match bd.Dir.pending with
  | None -> () (* ack for a transaction a racing writeback already closed *)
  | Some pending ->
      pending.Dir.acks_left <- pending.Dir.acks_left - 1;
      if pending.Dir.acks_left = 0 then begin
        Sharers.clear bd.Dir.sharers;
        finish_pending t ep ~vaddr bd
      end

(* owner <- home: give the block back (ex=1 also relinquish it) *)
let on_recall t (ep : Tempest.t) ~src ~args ~data:_ =
  let vaddr = args.(0) and ex = args.(1) = 1 in
  dbg vaddr "recall at owner=%d ex=%b" ep.Tempest.node ex;
  ep.Tempest.charge c_recall_extra;
  let mapped = ep.Tempest.page_mapped ~vpage:(Addr.page_of vaddr) in
  let have = mapped && Tag.equal (ep.Tempest.read_tag ~vaddr) Tag.Read_write in
  if have then begin
    let data = ep.Tempest.force_read_block ~vaddr in
    if ex then ep.Tempest.invalidate ~vaddr
    else begin
      ep.Tempest.set_ro ~vaddr;
      ep.Tempest.downgrade ~vaddr
    end;
    ep.Tempest.send_raw ~dst:src ~vnet:Message.Response ~handler:t.h_recall_data
      ~args:(scratch3 vaddr 1 (if ex then 1 else 0))
      ~data
  end
  else
    (* our copy is gone (page replaced; the writeback is ahead of this nack
       in FIFO order, so home memory is already current) *)
    ep.Tempest.send_raw ~dst:src ~vnet:Message.Response ~handler:t.h_recall_data
      ~args:(scratch3 vaddr 0 (if ex then 1 else 0)) ~data:Bytes.empty

(* home <- former owner *)
let on_recall_data t (ep : Tempest.t) ~src ~args ~data =
  let vaddr = args.(0) and present = args.(1) = 1 in
  dbg vaddr "recall_data from=%d present=%b" src present;
  let bd = Dir.block_of ep ~vaddr in
  touch_dir ep ~vaddr;
  ep.Tempest.charge c_ack_extra;
  if present then begin
    ep.Tempest.force_write_block ~vaddr data;
    ep.Tempest.recycle_block data
  end;
  match bd.Dir.pending with
  | None -> ()
  | Some pending ->
      bd.Dir.pending <- None;
      (match pending.Dir.client with
      | Dir.Remote (r, `Ro) ->
          Sharers.clear bd.Dir.sharers;
          if present then Sharers.add bd.Dir.sharers src;
          Sharers.add bd.Dir.sharers r;
          bd.Dir.state <- Dir.Shared;
          ep.Tempest.set_ro ~vaddr;
          ep.Tempest.downgrade ~vaddr;
          send_data t ep ~vaddr ~dst:r ~rw:false
      | Dir.Remote (r, (`Rw | `Up)) ->
          send_data t ep ~vaddr ~dst:r ~rw:true;
          Sharers.clear bd.Dir.sharers;
          bd.Dir.state <- Dir.Remote_excl r;
          ep.Tempest.invalidate ~vaddr
      | Dir.Home (res, Tag.Load) ->
          Sharers.clear bd.Dir.sharers;
          if present then Sharers.add bd.Dir.sharers src;
          bd.Dir.state <- Dir.Shared;
          ep.Tempest.set_ro ~vaddr;
          ep.Tempest.resume res
      | Dir.Home (res, Tag.Store) ->
          Sharers.clear bd.Dir.sharers;
          bd.Dir.state <- Dir.Idle;
          ep.Tempest.set_rw ~vaddr;
          ep.Tempest.resume res);
      drain_waiters t ep ~vaddr bd

(* home <- replacing node: modified block flushed during page replacement *)
let on_writeback t (ep : Tempest.t) ~src ~args ~data =
  let vaddr = args.(0) in
  let src = if Array.length args > 1 then args.(1) else src in
  let current_home = home_of t ~vaddr in
  if current_home <> ep.Tempest.node then begin
    Stats.Counter.incr t.c_forwarded;
    ep.Tempest.charge 4;
    (* NB: no recycle here — [data] is forwarded in the new message *)
    ep.Tempest.send_raw ~dst:current_home ~vnet:Message.Request
      ~handler:t.h_writeback
      ~args:(scratch2 vaddr src)
      ~data
  end
  else begin
  Stats.Counter.incr t.c_writeback;
  let bd = Dir.block_of ep ~vaddr in
  touch_dir ep ~vaddr;
  ep.Tempest.charge c_writeback_extra;
  ep.Tempest.force_write_block ~vaddr data;
  ep.Tempest.recycle_block data;
  match bd.Dir.state with
  | Dir.Remote_excl o when o = src ->
      bd.Dir.state <- Dir.Idle;
      ep.Tempest.set_rw ~vaddr
  | Dir.Remote_excl _ | Dir.Idle | Dir.Shared -> ()
  end

(* Recovery sink: the scrub ({!Tt_net.Reliable.scrub_unacked}) rewrites
   held crash-era messages to this handler, so replayed queues keep their
   sequence numbers but land harmlessly.  Data payloads are pooled blocks
   and must go back to the pool. *)
let on_noop _t (ep : Tempest.t) ~src:_ ~args:_ ~data =
  ep.Tempest.charge 1;
  if Bytes.length data = Addr.block_size then ep.Tempest.recycle_block data

(* ------------------------------------------------------------------ *)
(* Fault handlers                                                      *)
(* ------------------------------------------------------------------ *)

(* Block fault on a stached (remote) page: request the block from home. *)
let remote_block_fault t (ep : Tempest.t) (fault : Tempest.fault) =
  let vaddr = Addr.block_base fault.Tempest.fault_vaddr in
  dbg vaddr "fault node=%d access=%s tag=%s" ep.Tempest.node
    (match fault.Tempest.fault_access with Tag.Load -> "ld" | Tag.Store -> "st")
    (Tag.to_string fault.Tempest.fault_tag);
  let kind =
    match fault.Tempest.fault_access, fault.Tempest.fault_tag with
    | Tag.Load, _ -> `Ro
    | Tag.Store, Tag.Read_only -> `Up
    | Tag.Store, _ -> `Rw
  in
  let ns = node_state t ep.Tempest.node in
  if Hashtbl.mem ns.pending_remote vaddr then begin
    (* a nonbinding prefetch is already in flight: just wait for it *)
    ep.Tempest.charge 2;
    Hashtbl.replace ns.pending_remote vaddr
      (Some fault.Tempest.fault_resumption)
  end
  else begin
    let home =
      match Hashtbl.find_opt ns.local_homes (Addr.page_of vaddr) with
      | Some h ->
          ep.Tempest.touch (Addr.page_of vaddr);
          h
      | None -> home_of t ~vaddr
    in
    ep.Tempest.set_busy ~vaddr;
    Hashtbl.replace ns.pending_remote vaddr
      (Some fault.Tempest.fault_resumption);
    ep.Tempest.charge c_req_extra;
    ep.Tempest.send_raw ~dst:home ~vnet:Message.Request ~handler:t.h_get
      ~args:(scratch2 vaddr (kind_code kind)) ~data:Bytes.empty
  end

(* Block fault on a home page: operate on the directory directly (§3). *)
let home_block_fault t (ep : Tempest.t) (fault : Tempest.fault) =
  Stats.Counter.incr t.c_home_faults;
  let vaddr = Addr.block_base fault.Tempest.fault_vaddr in
  let bd = Dir.block_of ep ~vaddr in
  ep.Tempest.charge c_req_extra;
  serve t ep ~vaddr bd
    (Dir.Home (fault.Tempest.fault_resumption, fault.Tempest.fault_access))

(* Flush one stached page back to its home and unmap it (FIFO victim). *)
let replace_page t (ep : Tempest.t) ~vpage =
  Stats.Counter.incr t.c_page_replacements;
  let base = vpage * Addr.page_size in
  for index = 0 to Addr.blocks_per_page - 1 do
    let vaddr = base + (index * Addr.block_size) in
    ep.Tempest.charge 2;
    match ep.Tempest.read_tag ~vaddr with
    | Tag.Read_write ->
        (* the only up-to-date copy: send it home *)
        let data = ep.Tempest.force_read_block ~vaddr in
        ep.Tempest.charge c_writeback_extra;
        ep.Tempest.send_raw ~dst:(ep.Tempest.page_home ~vpage)
          ~vnet:Message.Request ~handler:t.h_writeback ~args:(scratch1 vaddr)
          ~data
    | Tag.Read_only | Tag.Invalid ->
        (* read-only copies are dropped silently; the home directory keeps a
           stale sharer entry and future invalidations are simply acked *)
        ()
    | Tag.Busy ->
        invalid_arg
          (Printf.sprintf
             "Stache: replacing page 0x%x with an outstanding request at 0x%x"
             vpage vaddr)
  done;
  ep.Tempest.unmap_page ~vpage

(* Page fault: first access to a shared page from a non-home node. *)
let page_fault t (ep : Tempest.t) ~vaddr (_ : Tag.access) resumption =
  let vpage = Addr.page_of vaddr in
  let home =
    match Hashtbl.find_opt t.registry vpage with
    | Some h -> h
    | None ->
        invalid_arg
          (Printf.sprintf
             "Stache: page fault at 0x%x outside the shared heap (node %d)"
             vaddr ep.Tempest.node)
  in
  if home = ep.Tempest.node then
    invalid_arg
      (Printf.sprintf "Stache: home page 0x%x faulted unmapped on its own node"
         vpage);
  let ns = node_state t ep.Tempest.node in
  ep.Tempest.charge (c_page_fault_extra + c_registry_lookup);
  Hashtbl.replace ns.local_homes vpage home;
  (match t.max_stache_pages with
  | Some cap ->
      (* the FIFO may hold stale entries (pages unmapped by migration);
         drop those until a real victim is replaced or capacity is fine *)
      let rec make_room () =
        if Queue.length ns.stache_fifo >= cap then begin
          let victim = Queue.pop ns.stache_fifo in
          let mem = System.node_mem t.sys ep.Tempest.node in
          if
            Tt_mem.Pagemem.is_mapped mem ~vpage:victim
            && (Tt_mem.Pagemem.get_page mem ~vpage:victim).Tt_mem.Pagemem.mode
               = mode_remote
          then replace_page t ep ~vpage:victim
          else make_room ()
        end
      in
      make_room ()
  | None -> ());
  ep.Tempest.map_page ~vpage ~home ~mode:mode_remote ~init_tag:Tag.Invalid;
  Queue.add vpage ns.stache_fifo;
  ep.Tempest.resume resumption

(* ------------------------------------------------------------------ *)
(* Installation and allocation                                         *)
(* ------------------------------------------------------------------ *)

let install sys ?max_stache_pages () =
  let counters = Stats.create "stache" in
  let t =
    {
      sys;
      policy = None;
      registry = Hashtbl.create 4096;
      node_states =
        Array.init (System.nnodes sys) (fun _ ->
            { pending_remote = Hashtbl.create 8;
              local_homes = Hashtbl.create 256;
              stache_fifo = Queue.create () });
      max_stache_pages;
      counters;
      c_inval = Stats.counter counters "inval";
      c_recall = Stats.counter counters "recall";
      c_forwarded = Stats.counter counters "forwarded";
      c_get_ro = Stats.counter counters "get_ro";
      c_get_rw = Stats.counter counters "get_rw";
      c_upgrade = Stats.counter counters "upgrade";
      c_prefetch_completed = Stats.counter counters "prefetch_completed";
      c_prefetch_issued = Stats.counter counters "prefetch_issued";
      c_home_faults = Stats.counter counters "home_faults";
      c_writeback = Stats.counter counters "writeback";
      c_page_replacements = Stats.counter counters "page_replacements";
      c_sabotaged_invals = Stats.counter counters "sabotaged_invals";
      alloc_cursor = heap_base;
      next_home = 0;
      h_get = -1; h_data = -1; h_upgrade_ok = -1; h_inval = -1;
      h_inval_ack = -1; h_recall = -1; h_recall_data = -1; h_writeback = -1;
      h_noop = -1;
      is_dead = (fun _ -> false);
      stranded = [];
      c_rehomed = Stats.counter counters "recovery.pages_rehomed";
      c_restored = Stats.counter counters "recovery.blocks_restored";
      c_repaired = Stats.counter counters "recovery.txns_repaired";
      c_reissued = Stats.counter counters "recovery.reissued";
      c_stranded = Stats.counter counters "recovery.stranded_resumes";
    }
  in
  let tables = System.handlers sys in
  let reg name f = Tempest.Handlers.register_message tables ~name (f t) in
  t.h_get <- reg "stache.get" on_get;
  t.h_data <- reg "stache.data" on_data;
  t.h_upgrade_ok <- reg "stache.upgrade_ok" on_upgrade_ok;
  t.h_inval <- reg "stache.inval" on_inval;
  t.h_inval_ack <- reg "stache.inval_ack" on_inval_ack;
  t.h_recall <- reg "stache.recall" on_recall;
  t.h_recall_data <- reg "stache.recall_data" on_recall_data;
  t.h_writeback <- reg "stache.writeback" on_writeback;
  t.h_noop <- reg "stache.noop" on_noop;
  Tempest.Handlers.set_block_fault tables ~mode:mode_home (home_block_fault t);
  (* policy-retyped home pages fault into the same engine; the installed
     policy hooks modulate service per page *)
  Tempest.Handlers.set_block_fault tables ~mode:mode_proto_home
    (home_block_fault t);
  Tempest.Handlers.set_block_fault tables ~mode:mode_remote
    (remote_block_fault t);
  Tempest.Handlers.set_page_fault tables (page_fault t);
  t

(* Create a shared home page: map it at the home node with ReadWrite tags
   and a fresh directory, and record it in the distributed mapping table. *)
let create_home_page t ~vpage ~home =
  Hashtbl.replace t.registry vpage home;
  let ep = System.endpoint t.sys home in
  ep.Tempest.map_page ~vpage ~home ~mode:mode_home ~init_tag:Tag.Read_write;
  ep.Tempest.set_page_user ~vpage
    (Dir.Home_dir (Dir.create_page_dir ~nodes:(System.nnodes t.sys)))

let alloc t ~th ~node ?home ?(align = 8) ~bytes () =
  if bytes <= 0 then invalid_arg "Stache.alloc: non-positive size";
  if align <= 0 || align land (align - 1) <> 0 then
    invalid_arg "Stache.alloc: alignment must be a power of two";
  System.with_cpu_context t.sys ~node th (fun () ->
      Thread.advance th 10;
      let round_up v a = (v + a - 1) land lnot (a - 1) in
      let start = round_up t.alloc_cursor align in
      (* a pinned allocation never shares a page homed elsewhere *)
      let desired_home = home in
      let start =
        match desired_home, Hashtbl.find_opt t.registry (Addr.page_of start) with
        | Some h, Some existing when existing <> h ->
            round_up start Addr.page_size
        | (Some _ | None), _ -> start
      in
      let page_start = Addr.page_of start in
      let last_page = Addr.page_of (start + bytes - 1) in
      for vpage = page_start to last_page do
        if not (Hashtbl.mem t.registry vpage) then begin
          let h =
            match desired_home with
            | Some h -> h
            | None ->
                let h = t.next_home in
                t.next_home <- (t.next_home + 1) mod System.nnodes t.sys;
                h
          in
          Thread.advance th 50;
          create_home_page t ~vpage ~home:h
        end
      done;
      t.alloc_cursor <- start + bytes;
      start)

(* ------------------------------------------------------------------ *)
(* Prefetch and page migration                                         *)
(* ------------------------------------------------------------------ *)

let prefetch t ~th ~node ~vaddr kind =
  let vaddr = Addr.block_base vaddr in
  let vpage = Addr.page_of vaddr in
  let mem = System.node_mem t.sys node in
  let ns = node_state t node in
  System.with_cpu_context t.sys ~node th (fun () ->
      Thread.advance th 3;
      let eligible =
        Tt_mem.Pagemem.is_mapped mem ~vpage
        && (Tt_mem.Pagemem.get_page mem ~vpage).Tt_mem.Pagemem.mode
           = mode_remote
        && Tag.equal (Tt_mem.Pagemem.get_tag mem ~vaddr) Tag.Invalid
        && not (Hashtbl.mem ns.pending_remote vaddr)
      in
      if eligible then begin
        Stats.Counter.incr t.c_prefetch_issued;
        let ep = System.endpoint t.sys node in
        ep.Tempest.set_busy ~vaddr;
        Hashtbl.replace ns.pending_remote vaddr None;
        let code = match kind with `Ro -> 0 | `Rw -> 1 in
        ep.Tempest.send_raw ~dst:(home_of t ~vaddr) ~vnet:Message.Request
          ~handler:t.h_get ~args:(scratch2 vaddr code) ~data:Bytes.empty
      end)

let migrate_page t ~th ~node ~vpage ~new_home =
  let old_home = home_of t ~vaddr:(vpage * Addr.page_size) in
  if old_home = new_home then ()
  else begin
    let old_mem = System.node_mem t.sys old_home in
    let old_page = Tt_mem.Pagemem.get_page old_mem ~vpage in
    if old_page.Tt_mem.Pagemem.mode <> mode_home then
      invalid_arg "Stache.migrate_page: not a stache home page";
    let dir =
      match old_page.Tt_mem.Pagemem.user with
      | Dir.Home_dir d -> d
      | _ -> invalid_arg "Stache.migrate_page: home page without directory"
    in
    (* quiescence: no remote owner, no transaction in flight *)
    Array.iteri
      (fun index bd ->
        match bd.Dir.state, bd.Dir.pending with
        | Dir.Remote_excl _, _ ->
            invalid_arg
              (Printf.sprintf
                 "Stache.migrate_page: block %d is remotely owned" index)
        | _, Some _ ->
            invalid_arg
              (Printf.sprintf
                 "Stache.migrate_page: block %d mid-transaction" index)
        | (Dir.Idle | Dir.Shared), None ->
            if not (Queue.is_empty bd.Dir.waiters) then
              invalid_arg "Stache.migrate_page: waiters queued")
      dir;
    Stats.incr t.counters "page_migrations";
    (* the copy itself: one page of bulk traffic, charged to the caller *)
    Thread.advance th (Addr.page_size / 64 * 20);
    let new_mem = System.node_mem t.sys new_home in
    (* the new home may hold a stached copy of this page: discard it (the
       quiescence check guarantees it has no modified blocks).  Its FIFO
       entry goes stale and is skipped at replacement time. *)
    if Tt_mem.Pagemem.is_mapped new_mem ~vpage then begin
      let new_ep = System.endpoint t.sys new_home in
      System.with_cpu_context t.sys ~node th (fun () ->
          new_ep.Tempest.unmap_page ~vpage);
      (* drop the stale sharer registration *)
      Array.iter (fun bd -> Sharers.remove bd.Dir.sharers new_home) dir
    end;
    let new_page =
      Tt_mem.Pagemem.map new_mem ~vpage ~home:new_home ~mode:mode_home
        ~init_tag:Tag.Read_only
    in
    Bytes.blit old_page.Tt_mem.Pagemem.data 0 new_page.Tt_mem.Pagemem.data 0
      Addr.page_size;
    (* the new directory: every block Shared, old sharers plus the old home
       (which keeps a ReadOnly stached copy) *)
    let new_dir = Dir.create_page_dir ~nodes:(System.nnodes t.sys) in
    Array.iteri
      (fun index bd ->
        let nbd = new_dir.(index) in
        nbd.Dir.state <- Dir.Shared;
        List.iter (Sharers.add nbd.Dir.sharers) (Sharers.to_list bd.Dir.sharers);
        Sharers.add nbd.Dir.sharers old_home)
      dir;
    new_page.Tt_mem.Pagemem.user <- Dir.Home_dir new_dir;
    (* retype the old page as an ordinary stached copy: all blocks become
       ReadOnly, CPU-cached lines are downgraded *)
    let old_ep = System.endpoint t.sys old_home in
    System.with_cpu_context t.sys ~node th (fun () ->
        for index = 0 to Addr.blocks_per_page - 1 do
          let va = Addr.block_addr ~page:vpage ~index in
          Tt_mem.Pagemem.set_tag old_mem ~vaddr:va Tag.Read_only;
          old_ep.Tempest.downgrade ~vaddr:va
        done);
    old_page.Tt_mem.Pagemem.mode <- mode_remote;
    old_page.Tt_mem.Pagemem.home <- new_home;
    old_page.Tt_mem.Pagemem.user <- Tt_mem.Pagemem.No_info;
    (* the page was retyped in place: no access may ride a cached
       translation past the mode change *)
    Tt_mem.Pagemem.invalidate_translation old_mem;
    Tt_mem.Pagemem.invalidate_translation new_mem;
    Queue.add vpage (node_state t old_home).stache_fifo;
    (* the distributed mapping table and the two nodes' local caches *)
    Hashtbl.replace t.registry vpage new_home;
    Hashtbl.replace (node_state t old_home).local_homes vpage new_home;
    Hashtbl.remove (node_state t new_home).local_homes vpage
  end

(* ------------------------------------------------------------------ *)
(* Crash-stop recovery (re-homing and rejoin)                          *)
(* ------------------------------------------------------------------ *)

let set_is_dead t f = t.is_dead <- f

let noop_handler t =
  if t.h_noop < 0 then invalid_arg "Stache.noop_handler: not installed";
  t.h_noop

(* Checkpoint assist: the authoritative content of [vpage] as seen from
   its home, or [None] when home memory cannot be trusted (a block is
   dirty at a remote owner or mid-transaction).  The checkpoint layer
   calls this at barriers; a [None] simply leaves the page's previous
   snapshot stale, which the restore-validity bookkeeping already
   handles.  Zero simulated cost: the checkpoint copy is modeled as
   overlapped with the barrier. *)
let snapshot_page t ~vpage =
  match Hashtbl.find_opt t.registry vpage with
  | None -> None
  | Some home -> (
      let mem = System.node_mem t.sys home in
      match Tt_mem.Pagemem.find_page mem ~vpage with
      | None -> None
      | Some page -> (
          match page.Tt_mem.Pagemem.user with
          | Dir.Home_dir dir ->
              let clean =
                Array.for_all
                  (fun bd ->
                    bd.Dir.pending = None
                    &&
                    match bd.Dir.state with
                    | Dir.Idle | Dir.Shared -> true
                    | Dir.Remote_excl _ -> false)
                  dir
              in
              if clean then Some (Bytes.copy page.Tt_mem.Pagemem.data)
              else None
          | _ -> None))

(* Raw VM surgery used only by the recovery paths.  It mirrors the
   endpoint's unmap but runs outside any charging context: the verdict
   fires in a bare engine event, and recovery's metadata surgery is
   modeled at zero simulated cost — the recovery daemon runs off the
   critical path.  Protocol-visible actions (grants, re-issued requests,
   resumption fires) still go through NP chores and pay normally. *)
let raw_unmap t ~node ~vpage =
  let mem = System.node_mem t.sys node in
  if Tt_mem.Pagemem.is_mapped mem ~vpage then begin
    Tt_mem.Pagemem.unmap mem ~vpage;
    Tt_mem.Pagemem.invalidate_translation mem;
    Tt_cache.Cache.flush_page (System.cpu_cache t.sys node) ~vpage;
    Tt_mem.Tlb.flush_entry (System.cpu_tlb t.sys node) vpage;
    Tt_mem.Tlb.flush_entry (Tt_typhoon.Np.rtlb (System.node_np t.sys node))
      vpage
  end

(* Schedule protocol work on [node]'s NP, charged and serialized like any
   other deferred NP work item. *)
let post_chore t ~node f =
  let np = System.node_np t.sys node in
  let engine = System.engine t.sys in
  Tt_typhoon.Np.post_deferred np
    ~at:(max (Tt_sim.Engine.now engine) (Tt_typhoon.Np.clock np))
    f

(* Complete a recall transaction whose recall_data will never arrive (the
   recalled owner died; home memory has been restored from a checkpoint).
   This is [on_recall_data]'s pending branch minus the former owner's
   bookkeeping — the former owner has no copy at all now. *)
let complete_dead_recall t (ep : Tempest.t) ~vaddr (bd : Dir.block_dir) =
  match bd.Dir.pending with
  | None -> ()
  | Some pending ->
      bd.Dir.pending <- None;
      (match pending.Dir.client with
      | Dir.Remote (r, `Ro) ->
          Sharers.clear bd.Dir.sharers;
          Sharers.add bd.Dir.sharers r;
          bd.Dir.state <- Dir.Shared;
          ep.Tempest.set_ro ~vaddr;
          ep.Tempest.downgrade ~vaddr;
          send_data t ep ~vaddr ~dst:r ~rw:false
      | Dir.Remote (r, (`Rw | `Up)) ->
          send_data t ep ~vaddr ~dst:r ~rw:true;
          Sharers.clear bd.Dir.sharers;
          bd.Dir.state <- Dir.Remote_excl r;
          ep.Tempest.invalidate ~vaddr
      | Dir.Home (res, Tag.Load) ->
          Sharers.clear bd.Dir.sharers;
          bd.Dir.state <- Dir.Shared;
          ep.Tempest.set_ro ~vaddr;
          ep.Tempest.resume res
      | Dir.Home (res, Tag.Store) ->
          Sharers.clear bd.Dir.sharers;
          bd.Dir.state <- Dir.Idle;
          ep.Tempest.set_rw ~vaddr;
          ep.Tempest.resume res);
      drain_waiters t ep ~vaddr bd

(* Re-home every page whose home died and repair every surviving
   directory that references the victim.  Runs synchronously inside the
   liveness verdict; by the lease arithmetic (lease >> max in-flight
   delay) all pre-crash traffic has already resolved, so the survivors'
   tags and directories are quiescent with respect to the victim — the
   only loose ends are transactions waiting forever on it.

   [restore ~vpage] must return the page's last checkpoint image only if
   no write has dirtied the page since that checkpoint was taken;
   otherwise [None], which makes the loss unrecoverable in place
   ({!Tt_net.Faults.Unrecoverable}) and forces a rollback upstream. *)
let on_node_death t ~dead ~new_home ~restore =
  let nnodes = System.nnodes t.sys in
  if dead < 0 || dead >= nnodes then
    invalid_arg "Stache.on_node_death: bad victim";
  if new_home = dead || new_home < 0 || new_home >= nnodes
     || t.is_dead new_home
  then invalid_arg "Stache.on_node_death: bad new home";
  let live n = n <> dead && not (t.is_dead n) in
  let dead_mem = System.node_mem t.sys dead in
  let unrecoverable fmt =
    Printf.ksprintf
      (fun s -> raise (Tt_net.Faults.Unrecoverable ("stache recovery: " ^ s)))
      fmt
  in
  (* checkpoint lookups, memoized so each page is fetched at most once *)
  let snapshots = Hashtbl.create 8 in
  let restore_block ~vpage ~vaddr ~into_mem ~why =
    let snap =
      match Hashtbl.find_opt snapshots vpage with
      | Some s -> s
      | None ->
          let s = restore ~vpage in
          Hashtbl.replace snapshots vpage s;
          s
    in
    match snap with
    | None ->
        unrecoverable
          "block 0x%x: %s and no clean checkpoint covers page 0x%x" vaddr why
          vpage
    | Some bytes ->
        let off = vaddr - (vpage * Addr.page_size) in
        Tt_mem.Pagemem.write_block_from into_mem ~vaddr ~src:bytes
          ~src_pos:off;
        Stats.Counter.incr t.c_restored
  in
  (* a deterministic, sorted view of the mapping table *)
  let all_pages =
    List.sort compare
      (Hashtbl.fold (fun vpage home acc -> (vpage, home) :: acc) t.registry [])
  in
  let dead_pages =
    List.filter_map
      (fun (vpage, home) -> if home = dead then Some vpage else None)
      all_pages
  in
  let rehomed = Hashtbl.create 16 in
  List.iter (fun vpage -> Hashtbl.replace rehomed vpage ()) dead_pages;

  (* --- Phase A: neutralize the victim ------------------------------- *)
  (* Every copy it holds is gone as far as survivors are concerned.  Its
     local bookkeeping (pending_remote, suspended CPUs in its own
     directories) is kept only for the victim's own rejoin — it is never
     read to reconstruct survivor state. *)
  let victim_pages = ref [] in
  Tt_mem.Pagemem.iter_pages dead_mem (fun vpage page ->
      victim_pages := (vpage, page) :: !victim_pages);
  List.iter
    (fun (vpage, page) ->
      (match page.Tt_mem.Pagemem.user with
      | Dir.Home_dir dir when page.Tt_mem.Pagemem.mode = mode_home ->
          (* the victim's own CPUs suspended inside its directories: stash
             their resumptions for a possible rejoin *)
          Array.iter
            (fun bd ->
              (match bd.Dir.pending with
              | Some { Dir.client = Dir.Home (res, _); _ } ->
                  t.stranded <- (dead, res) :: t.stranded;
                  Stats.Counter.incr t.c_stranded
              | Some _ | None -> ());
              Queue.iter
                (function
                  | Dir.Home (res, _) ->
                      t.stranded <- (dead, res) :: t.stranded;
                      Stats.Counter.incr t.c_stranded
                  | Dir.Remote _ -> ())
                bd.Dir.waiters;
              Queue.clear bd.Dir.waiters;
              bd.Dir.pending <- None)
            dir
      | _ -> ());
      Tt_mem.Pagemem.set_all_tags page Tag.Invalid;
      Tt_cache.Cache.flush_page (System.cpu_cache t.sys dead) ~vpage)
    (List.sort (fun (a, _) (b, _) -> compare a b) !victim_pages);

  (* --- Phase B: re-home the victim's pages -------------------------- *)
  let new_mem = System.node_mem t.sys new_home in
  List.iter
    (fun vpage ->
      let old_page = Tt_mem.Pagemem.get_page dead_mem ~vpage in
      (* the victim's directory dies with it; reconstruction below uses
         only the survivors' tags — the honest user-level equivalent of
         polling every live node for its copies *)
      let captured =
        (* the new home may hold a stached copy: capture its content and
           tags, then raw-drop the mapping so the page can be re-created
           as a home page *)
        if Tt_mem.Pagemem.is_mapped new_mem ~vpage then begin
          let p = Tt_mem.Pagemem.get_page new_mem ~vpage in
          let tags =
            Array.init Addr.blocks_per_page (fun index ->
                Tt_mem.Pagemem.get_tag new_mem
                  ~vaddr:(Addr.block_addr ~page:vpage ~index))
          in
          let data = Bytes.copy p.Tt_mem.Pagemem.data in
          raw_unmap t ~node:new_home ~vpage;
          Some (tags, data)
        end
        else None
      in
      let new_page =
        Tt_mem.Pagemem.map new_mem ~vpage ~home:new_home ~mode:mode_home
          ~init_tag:Tag.Invalid
      in
      let new_dir = Dir.create_page_dir ~nodes:nnodes in
      for index = 0 to Addr.blocks_per_page - 1 do
        let vaddr = Addr.block_addr ~page:vpage ~index in
        let bd = new_dir.(index) in
        let cap_tag =
          match captured with
          | Some (tags, _) -> tags.(index)
          | None -> Tag.Invalid
        in
        let blit_captured () =
          match captured with
          | Some (_, data) ->
              Bytes.blit data (index * Addr.block_size)
                new_page.Tt_mem.Pagemem.data (index * Addr.block_size)
                Addr.block_size
          | None -> assert false
        in
        (* survivors' copies of this block, excluding the new home *)
        let owner = ref None and ros = ref [] in
        for n = nnodes - 1 downto 0 do
          if live n && n <> new_home then begin
            let mem = System.node_mem t.sys n in
            if Tt_mem.Pagemem.is_mapped mem ~vpage then
              match Tt_mem.Pagemem.get_tag mem ~vaddr with
              | Tag.Read_write -> owner := Some n
              | Tag.Read_only -> ros := n :: !ros
              | Tag.Invalid | Tag.Busy -> ()
          end
        done;
        (match cap_tag, !owner with
        | Tag.Read_write, _ ->
            (* the new home itself held the modified copy: it simply
               becomes the home copy *)
            blit_captured ();
            Tt_mem.Pagemem.set_tag new_mem ~vaddr Tag.Read_write;
            bd.Dir.state <- Dir.Idle
        | _, Some o ->
            (* a survivor owns it exclusively: point the directory there;
               the home copy stays Invalid until a recall or writeback *)
            bd.Dir.state <- Dir.Remote_excl o
        | Tag.Read_only, _ ->
            blit_captured ();
            Tt_mem.Pagemem.set_tag new_mem ~vaddr Tag.Read_only;
            List.iter (Sharers.add bd.Dir.sharers) !ros;
            bd.Dir.state <- Dir.Shared
        | _, None when !ros <> [] ->
            (* copy content from the lowest-ranked read-only holder *)
            let src_mem = System.node_mem t.sys (List.hd !ros) in
            Tt_mem.Pagemem.read_block_into src_mem ~vaddr
              ~dst:new_page.Tt_mem.Pagemem.data
              ~dst_pos:(index * Addr.block_size);
            Tt_mem.Pagemem.set_tag new_mem ~vaddr Tag.Read_only;
            List.iter (Sharers.add bd.Dir.sharers) !ros;
            bd.Dir.state <- Dir.Shared
        | _, None ->
            (* no live copy anywhere: checkpoint or abort *)
            restore_block ~vpage ~vaddr ~into_mem:new_mem
              ~why:"the crashed home held the only copy";
            Tt_mem.Pagemem.set_tag new_mem ~vaddr Tag.Read_write;
            bd.Dir.state <- Dir.Idle)
      done;
      new_page.Tt_mem.Pagemem.user <- Dir.Home_dir new_dir;
      (* re-point the world: the mapping table, every live node's local
         home cache, and the victim's former home page (retyped as an
         ordinary — dead — stached copy so its rejoin treats it like any
         other invalidated page) *)
      Hashtbl.replace t.registry vpage new_home;
      for n = 0 to nnodes - 1 do
        if n <> new_home && Hashtbl.mem (node_state t n).local_homes vpage
        then Hashtbl.replace (node_state t n).local_homes vpage new_home
      done;
      Hashtbl.remove (node_state t new_home).local_homes vpage;
      old_page.Tt_mem.Pagemem.mode <- mode_remote;
      old_page.Tt_mem.Pagemem.home <- new_home;
      old_page.Tt_mem.Pagemem.user <- Tt_mem.Pagemem.No_info;
      Hashtbl.replace (node_state t dead).local_homes vpage new_home;
      Queue.add vpage (node_state t dead).stache_fifo;
      Stats.Counter.incr t.c_rehomed)
    dead_pages;

  (* --- Phase C: repair surviving directories ------------------------ *)
  let noop_res = Tempest.make_resumption (fun () -> ()) in
  List.iter
    (fun (vpage, home) ->
      if live home && not (Hashtbl.mem rehomed vpage) then begin
        let hmem = System.node_mem t.sys home in
        let page = Tt_mem.Pagemem.get_page hmem ~vpage in
        if page.Tt_mem.Pagemem.mode = mode_home then
          match page.Tt_mem.Pagemem.user with
          | Dir.Home_dir dir ->
              Array.iteri
                (fun index bd ->
                  let vaddr = Addr.block_addr ~page:vpage ~index in
                  (* requests the dead node parked behind a transaction *)
                  let keep = Queue.create () in
                  Queue.iter
                    (function
                      | Dir.Remote (r, _) when r = dead ->
                          Stats.Counter.incr t.c_repaired
                      | c -> Queue.add c keep)
                    bd.Dir.waiters;
                  Queue.clear bd.Dir.waiters;
                  Queue.transfer keep bd.Dir.waiters;
                  match bd.Dir.pending with
                  | None -> (
                      Sharers.remove bd.Dir.sharers dead;
                      match bd.Dir.state with
                      | Dir.Remote_excl o when o = dead ->
                          (* the crashed owner held the only copy *)
                          restore_block ~vpage ~vaddr ~into_mem:hmem
                            ~why:"the crashed owner held the only copy";
                          bd.Dir.state <- Dir.Idle;
                          Tt_mem.Pagemem.set_tag hmem ~vaddr Tag.Read_write;
                          Stats.Counter.incr t.c_repaired
                      | Dir.Remote_excl _ | Dir.Idle | Dir.Shared -> ())
                  | Some p ->
                      let requester_was_dead =
                        match p.Dir.client with
                        | Dir.Remote (r, _) -> r = dead
                        | Dir.Home _ -> false
                      in
                      let p =
                        if requester_was_dead then begin
                          (* the requester died mid-transaction: finish the
                             transaction as a home store, which reverts the
                             block to home ownership and fires a no-op
                             (the client field is immutable by design, so
                             the rewrite builds a fresh pending record) *)
                          let np =
                            { Dir.client = Dir.Home (noop_res, Tag.Store);
                              acks_left = p.Dir.acks_left;
                              prev_owner = p.Dir.prev_owner }
                          in
                          bd.Dir.pending <- Some np;
                          Stats.Counter.incr t.c_repaired;
                          np
                        end
                        else p
                      in
                      (match p.Dir.prev_owner with
                      | Some o when o = dead ->
                          (* the recalled owner died with the only
                             up-to-date copy: restore the home copy, then
                             complete as if recall_data had arrived *)
                          restore_block ~vpage ~vaddr ~into_mem:hmem
                            ~why:"the recalled owner died holding the \
                                  modified copy";
                          p.Dir.prev_owner <- None;
                          Stats.Counter.incr t.c_repaired;
                          post_chore t ~node:home (fun () ->
                              let ep = System.endpoint t.sys home in
                              complete_dead_recall t ep ~vaddr bd)
                      | Some _ | None ->
                          (* the dead node may owe an invalidation ack:
                             inval targets are exactly the sharers minus
                             the requester *)
                          if Sharers.mem bd.Dir.sharers dead then begin
                            Sharers.remove bd.Dir.sharers dead;
                            if not requester_was_dead then begin
                              p.Dir.acks_left <- p.Dir.acks_left - 1;
                              Stats.Counter.incr t.c_repaired;
                              if p.Dir.acks_left = 0 then begin
                                Sharers.clear bd.Dir.sharers;
                                post_chore t ~node:home (fun () ->
                                    let ep = System.endpoint t.sys home in
                                    if bd.Dir.pending <> None then
                                      finish_pending t ep ~vaddr bd)
                              end
                            end
                          end))
                dir
          | _ -> ()
      end)
    all_pages;

  (* --- Phase D: re-issue survivors' requests to re-homed pages ------ *)
  (* A request (or its response) to the old home died with it.  The
     pending_remote resumption is the suspended CPU's retry continuation:
     firing it re-attempts the access against the current tags, which
     faults cleanly through to the new home. *)
  for n = 0 to nnodes - 1 do
    if live n then begin
      let ns = node_state t n in
      let mem = System.node_mem t.sys n in
      let entries =
        List.sort
          (fun (a, _) (b, _) -> compare a b)
          (Hashtbl.fold
             (fun vaddr p acc -> (vaddr, p) :: acc)
             ns.pending_remote [])
      in
      List.iter
        (fun (vaddr, p) ->
          let vpage = Addr.page_of vaddr in
          if Hashtbl.mem rehomed vpage then begin
            Hashtbl.remove ns.pending_remote vaddr;
            if
              Tt_mem.Pagemem.is_mapped mem ~vpage
              && (Tt_mem.Pagemem.get_page mem ~vpage).Tt_mem.Pagemem.mode
                 = mode_remote
            then Tt_mem.Pagemem.set_tag mem ~vaddr Tag.Invalid;
            match p with
            | Some res ->
                Stats.Counter.incr t.c_reissued;
                post_chore t ~node:n (fun () ->
                    let ep = System.endpoint t.sys n in
                    ep.Tempest.resume res)
            | None -> () (* nonbinding prefetch: simply dropped *)
          end)
        entries
    end
  done

(* A crashed node resumed heartbeating: its memory survives but every
   copy was invalidated at the death verdict, and any pre-crash request
   it had outstanding was either never sent, scrubbed in a parked queue,
   or answered with a response that was scrubbed.  Drop the stale
   bookkeeping and re-fire the suspended CPUs — each retry re-faults
   cleanly against the current (possibly re-homed) mapping. *)
let on_node_rejoin t ~node =
  let ns = node_state t node in
  let mem = System.node_mem t.sys node in
  (* pages may have been re-homed (retyped in place) while the node was
     dark: drop the crash-era cached translation before any retry runs *)
  Tt_mem.Pagemem.invalidate_translation mem;
  let entries =
    List.sort
      (fun (a, _) (b, _) -> compare a b)
      (Hashtbl.fold (fun vaddr p acc -> (vaddr, p) :: acc) ns.pending_remote [])
  in
  Hashtbl.reset ns.pending_remote;
  List.iter
    (fun (vaddr, p) ->
      (if Tt_mem.Pagemem.is_mapped mem ~vpage:(Addr.page_of vaddr) then
         match Tt_mem.Pagemem.get_tag mem ~vaddr with
         | Tag.Busy -> Tt_mem.Pagemem.set_tag mem ~vaddr Tag.Invalid
         | Tag.Read_write | Tag.Read_only | Tag.Invalid -> ());
      match p with
      | Some res ->
          Stats.Counter.incr t.c_reissued;
          post_chore t ~node (fun () ->
              let ep = System.endpoint t.sys node in
              ep.Tempest.resume res)
      | None -> ())
    entries;
  (* CPUs that were suspended inside the victim's own (now re-homed)
     directories when it died *)
  let mine, others = List.partition (fun (n, _) -> n = node) t.stranded in
  t.stranded <- others;
  List.iter
    (fun (_, res) ->
      Stats.Counter.incr t.c_reissued;
      post_chore t ~node (fun () ->
          let ep = System.endpoint t.sys node in
          ep.Tempest.resume res))
    (List.rev mine)

(* ------------------------------------------------------------------ *)
(* Invariant checking                                                  *)
(* ------------------------------------------------------------------ *)

let check_invariants t =
  let problem = ref None in
  let fail fmt =
    Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt
  in
  let nnodes = System.nnodes t.sys in
  Hashtbl.iter
    (fun vpage home ->
      let home_mem = System.node_mem t.sys home in
      let page = Tt_mem.Pagemem.get_page home_mem ~vpage in
      (* pages retyped by a custom protocol play by that protocol's rules *)
      if page.Tt_mem.Pagemem.mode = mode_home then begin
      let dir =
        match page.Tt_mem.Pagemem.user with
        | Dir.Home_dir d -> d
        | _ -> invalid_arg "Stache invariants: home page without directory"
      in
      Array.iteri
        (fun index bd ->
          let vaddr = Addr.block_addr ~page:vpage ~index in
          let home_tag = Tt_mem.Pagemem.get_tag home_mem ~vaddr in
          (match bd.Dir.pending with
          | Some _ -> fail "block 0x%x: pending transaction at quiescence" vaddr
          | None -> ());
          if not (Queue.is_empty bd.Dir.waiters) then
            fail "block 0x%x: queued waiters at quiescence" vaddr;
          (* collect remote copies *)
          let remote_tag n =
            if n = home then None
            else
              let mem = System.node_mem t.sys n in
              if Tt_mem.Pagemem.is_mapped mem ~vpage then
                Some (Tt_mem.Pagemem.get_tag mem ~vaddr)
              else None
          in
          (* cross-node audit: at most one writable copy of any shared
             block machine-wide, counting the home's own tag *)
          let writers = ref [] in
          if Tag.equal home_tag Tag.Read_write then writers := [ home ];
          for n = 0 to nnodes - 1 do
            match remote_tag n with
            | Some Tag.Read_write -> writers := n :: !writers
            | None | Some _ -> ()
          done;
          (match !writers with
          | [] | [ _ ] -> ()
          | ws ->
              fail "block 0x%x: writable copies at multiple nodes (%s)" vaddr
                (String.concat ", "
                   (List.rev_map string_of_int ws)));
          for n = 0 to nnodes - 1 do
            match remote_tag n with
            | None | Some Tag.Invalid -> ()
            | Some Tag.Busy -> fail "block 0x%x: node %d stuck Busy" vaddr n
            | Some Tag.Read_only ->
                (match bd.Dir.state with
                | Dir.Shared ->
                    if not (Sharers.mem bd.Dir.sharers n) then
                      fail "block 0x%x: node %d has RO copy but is not a \
                            sharer" vaddr n
                | Dir.Idle | Dir.Remote_excl _ ->
                    fail "block 0x%x: node %d has RO copy in state %s" vaddr n
                      (match bd.Dir.state with
                      | Dir.Idle -> "Idle"
                      | Dir.Remote_excl _ -> "Remote_excl"
                      | Dir.Shared -> "Shared"))
            | Some Tag.Read_write -> (
                match bd.Dir.state with
                | Dir.Remote_excl o when o = n -> ()
                | _ -> fail "block 0x%x: node %d has RW copy but is not the \
                             registered owner" vaddr n)
          done;
          match bd.Dir.state with
          | Dir.Idle ->
              if not (Tag.equal home_tag Tag.Read_write) then
                fail "block 0x%x: Idle but home tag %s" vaddr
                  (Tag.to_string home_tag)
          | Dir.Shared ->
              if not (Tag.equal home_tag Tag.Read_only) then
                fail "block 0x%x: Shared but home tag %s" vaddr
                  (Tag.to_string home_tag)
          | Dir.Remote_excl o ->
              if not (Tag.equal home_tag Tag.Invalid) then
                fail "block 0x%x: Remote_excl but home tag %s" vaddr
                  (Tag.to_string home_tag);
              let mem = System.node_mem t.sys o in
              if
                not
                  (Tt_mem.Pagemem.is_mapped mem ~vpage
                  && Tag.equal (Tt_mem.Pagemem.get_tag mem ~vaddr)
                       Tag.Read_write)
              then
                fail "block 0x%x: owner %d does not hold a RW copy" vaddr o)
        dir
      end)
    t.registry;
  match !problem with None -> Ok () | Some msg -> Error msg
