(** Stache: user-level transparent shared memory over Tempest (§3).

    Stache turns part of each node's local memory into a large,
    fully-associative cache for remote data: shared virtual pages are
    *homed* on one node and faulted in page-at-a-time on other nodes, but
    coherence is maintained block-at-a-time with an invalidation protocol
    whose directory is plain software (see {!Dir}).

    Everything here is ordinary user-level protocol code written against the
    {!Tempest} endpoint — a page-fault handler, block-access-fault handlers
    for home and stached pages, and a set of active-message handlers.  The
    machine model never peeks inside.

    Protocol summary:
    - first access to a remote page → page fault → map a local stache page
      with all blocks Invalid (FIFO replacement when the stache is full,
      flushing modified blocks home);
    - access to an Invalid block → block fault → [get] request to home;
    - home serves requests from the per-block directory, recalling or
      invalidating conflicting copies first; the handler for the final
      invalidation acknowledgment sends the data;
    - home-node faults bypass messages and operate on the directory
      directly. *)

type t

val mode_home : int
(** Page mode of Stache home pages. *)

val mode_remote : int
(** Page mode of stached (remote copy) pages. *)

val mode_proto_home : int
(** Page mode of home pages retyped by a policy layer (protocol zoo): block
    faults dispatch into the same home engine, but the installed
    {!policy_hooks} modulate service and the invariant auditor leaves the
    page to its policy's rules.  Remote copies of such pages stay ordinary
    [mode_remote] pages. *)

(** {2 Policy hooks (protocol zoo)}

    A policy layer ({!Tt_custom.Proto}, {!Tt_custom.Adaptive}) customizes
    home-side service per page without forking the directory engine.  All
    hooks run at the block's home inside NP handlers; simulated cost is
    charged by the hook implementation, so machines without a policy are
    bit-identical to before the slot existed. *)

type policy_hooks = {
  ph_grant_kind :
    vaddr:int ->
    requester:int ->
    state:Dir.bstate ->
    [ `Ro | `Rw | `Up ] ->
    [ `Ro | `Rw | `Up ];
      (** May strengthen a remote request before service (e.g. migratory
          turns [`Ro] on a remotely-owned block into [`Rw] so ownership
          follows the accessor; update policies turn [`Up] on a home-dirty
          block into [`Rw] so fresh data is sent).  Re-applied when queued
          waiters are drained. *)
  ph_home_store :
    Tempest.t -> vaddr:int -> Dir.block_dir -> Tempest.resumption -> bool;
      (** Home store fault on a Shared block.  Returning [true] means the
          policy granted write permission in place (keeping the sharer set,
          recording the block dirty, resuming the CPU) and the invalidation
          round is skipped; [false] falls through to normal service. *)
  ph_note_get : vaddr:int -> requester:int -> kind:[ `Ro | `Rw | `Up ] -> unit;
  ph_note_invals : vaddr:int -> targets:int list -> home_store:bool -> unit;
  ph_note_recall : vaddr:int -> unit;
}

val set_policy : t -> policy_hooks option -> unit
(** Install (or clear) the policy hook set.  One slot machine-wide; per-page
    behaviour is the policy layer's business. *)

val install : Tt_typhoon.System.t -> ?max_stache_pages:int -> unit -> t
(** Register all Stache handlers on the system.  [max_stache_pages] bounds
    the per-node stache size in pages (page replacement kicks in beyond
    it); default unbounded, as when an application lets Stache use all of
    local memory. *)

val system : t -> Tt_typhoon.System.t

val alloc :
  t -> th:Tt_sim.Thread.t -> node:int -> ?home:int -> ?align:int ->
  bytes:int -> unit -> int
(** Allocate shared memory from the shared heap segment; returns the
    virtual address.  Pages are homed round-robin unless [home] pins them
    (the paper: "Stache also allows pages to be allocated on specific
    nodes").  Runs as CPU-side library code on [node]'s thread. *)

val home_of : t -> vaddr:int -> int
(** Home node of an allocated address (the distributed mapping table). *)

val prefetch :
  t -> th:Tt_sim.Thread.t -> node:int -> vaddr:int -> [ `Ro | `Rw ] -> unit
(** Nonbinding prefetch: if [vaddr]'s block is Invalid on an already-stached
    page and no request is outstanding, tag it Busy and issue the fetch
    without blocking — the Busy state's stated purpose (§5.4).  A real
    access that arrives before the data simply joins the outstanding
    request.  No-op in every other situation (unmapped page, block already
    valid, request already in flight). *)

val migrate_page :
  t -> th:Tt_sim.Thread.t -> node:int -> vpage:int -> new_home:int -> unit
(** Explicit page migration (§7: Stache "provides support to allow explicit
    page migration").  Must be called at a quiescent point where no block
    of the page is remotely owned or mid-transaction (typically right after
    a barrier); raises [Invalid_argument] otherwise.  The page's data and
    directory move to [new_home]; the old home keeps a ReadOnly stached
    copy; stale requests aimed at the old home are forwarded. *)

val stats : t -> Tt_util.Stats.t
(** Protocol event counters: [get_ro], [get_rw], [upgrade], [inval],
    [recall], [writeback], [page_replacements], [home_faults]; recovery
    adds [recovery.pages_rehomed], [recovery.blocks_restored],
    [recovery.txns_repaired], [recovery.reissued],
    [recovery.stranded_resumes]. *)

(** {2 Crash-stop recovery}

    User-level recovery from crash-stop node failures
    ({!Tt_net.Faults.crash}): when the liveness protocol
    ({!Tt_net.Liveness}) confirms a death, the recovery layer
    ({!Tt_harness.Recovery}) calls {!on_node_death} to re-home the
    victim's pages and repair surviving directories, and {!on_node_rejoin}
    if the victim later resumes heartbeating.  Both run synchronously at
    the verdict — the recovery daemon is modeled off the critical path —
    but every protocol-visible action (re-issued requests, grants,
    resumption fires) is scheduled as charged NP work. *)

val set_is_dead : t -> (int -> bool) -> unit
(** Install the liveness verdict consulted by the repair passes (which
    nodes count as live when electing copy sources and purging sharers).
    Default: everyone is alive. *)

val noop_handler : t -> int
(** Handler id of the registered recovery no-op sink ([stache.noop]) —
    the rewrite target for {!Tt_net.Reliable.scrub_unacked}.  It charges
    one NP instruction and recycles pooled data payloads.
    @raise Invalid_argument before {!install}. *)

val snapshot_page : t -> vpage:int -> Bytes.t option
(** Checkpoint assist: a copy of [vpage]'s authoritative content, read
    from its home, or [None] when home memory is stale (some block is
    remotely owned or mid-transaction) or the page is unallocated.  The
    checkpoint layer ({!Tt_harness.Recovery}) calls this at barriers;
    zero simulated cost — the copy is modeled as overlapped with the
    barrier. *)

val on_node_death :
  t -> dead:int -> new_home:int -> restore:(vpage:int -> Bytes.t option) ->
  unit
(** Repair the protocol after [dead]'s confirmed crash.  Pages homed on
    the victim are re-homed to [new_home] (deterministically the lowest
    live rank, chosen by the caller): the new directory is reconstructed
    from the survivors' block tags, block content comes from the new
    home's own stached copy, a surviving read-only holder, or — when the
    victim held the only copy — [restore ~vpage], the caller's checkpoint
    lookup, which must return [None] unless the page is provably clean
    since its last snapshot.  Surviving directories are purged of the
    victim (sharer entries, owed acks, recalled-owner and dead-requester
    transactions), and survivors' requests lost with the old home are
    re-issued by firing their retry resumptions.
    @raise Tt_net.Faults.Unrecoverable when a lost dirty copy has no
    clean checkpoint — the caller must roll back. *)

val on_node_rejoin : t -> node:int -> unit
(** The victim resumed heartbeating: drop its stale crash-era
    bookkeeping (outstanding-request table, Busy tags) and re-fire its
    suspended CPUs; every retry re-faults cleanly against the current,
    possibly re-homed, mapping.  Call after the transport scrub and
    replay ({!Tt_net.Reliable.on_peer_alive}). *)

val check_invariants : t -> (unit, string) result
(** Directory/tag consistency at a quiescent point: no pending
    transactions; Idle ⇒ home tag ReadWrite and no remote copy;
    Shared ⇒ home tag ReadOnly, every remote copy ReadOnly and registered;
    Remote_excl o ⇒ home tag Invalid and node o's copy ReadWrite. *)

val set_sabotage : bool -> unit
(** Guarded protocol-sabotage knob (global): when on, {e invalidation
    handlers acknowledge without invalidating}, leaving stale read-only
    copies behind — a seeded coherence bug for validating the torture
    harness's oracle and shrinker.  Initialized from the [TT_SABOTAGE]
    environment variable (["1"]/["true"]/["yes"]); counted under
    [sabotaged_invals] in {!stats}.  Never enabled by production code. *)

val sabotage_enabled : unit -> bool
