module Vec = Tt_util.Vec

type t = {
  engine : Engine.t;
  participants : int;
  latency : int;
  mutable arrived : int;
  mutable release_time : int;
  (* arrival-ordered waiter list, reset in place each episode (preallocated,
     reused — no per-wait cons cell or (thread, wake) tuple) *)
  waiters : Thread.t Vec.t;
  mutable episodes : int;
}

let create engine ~participants ~latency =
  if participants <= 0 then invalid_arg "Barrier.create";
  { engine; participants; latency; arrived = 0; release_time = 0;
    waiters = Vec.create (); episodes = 0 }

let episodes t = t.episodes

let wait t th =
  Thread.park th (fun () ->
      t.arrived <- t.arrived + 1;
      t.release_time <- max t.release_time (Thread.clock th + t.latency);
      Vec.push t.waiters th;
      if t.arrived = t.participants then begin
        let release_time = t.release_time in
        t.arrived <- 0;
        t.release_time <- 0;
        t.episodes <- t.episodes + 1;
        (* Release in the order the former cons-list produced: the last
           arriver (ourselves) first, then earlier arrivers in reverse
           arrival order.  Our own unpark fires mid-registration, so when
           nothing else is queued at the release time we continue inline
           without suspending at all. *)
        for i = Vec.length t.waiters - 1 downto 0 do
          let w = Vec.get t.waiters i in
          Thread.set_clock w release_time;
          Thread.unpark w
        done;
        Vec.reset t.waiters
      end)
