(** Bounded single-producer/single-consumer mailbox.

    The cross-partition event handoff ring of the domains-parallel engine
    ({!Domains}): exactly one domain may push and exactly one domain may
    pop.  Push and pop sides may run concurrently — slot contents are
    published through the atomic [tail]/[head] counters following the OCaml
    memory model's SPSC pattern — but neither side may itself be shared
    between domains.

    Capacity is fixed at creation (rounded up to a power of two); a full
    mailbox refuses the push so the caller can surface a diagnostic rather
    than buffer without bound. *)

type 'a t

val create : capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills empty slots so popped elements don't linger for the GC. *)

val capacity : 'a t -> int
(** Actual capacity after rounding up to a power of two. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val try_push : 'a t -> 'a -> bool
(** [false] when the mailbox is full.  Producer side only. *)

val pop_exn : 'a t -> 'a
(** Remove the oldest element; raises [Failure] when empty.  Consumer side
    only. *)
