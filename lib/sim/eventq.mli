(** The engine's replaceable event-queue boundary.

    {!Engine} schedules on packed [(time, salt, seq)] int keys (built
    with {!seq_bits}/{!salt_bits} below) and only ever needs the five
    operations of {!EVENT_QUEUE}.  Two implementations satisfy it:

    - {!Heap_queue} — the monomorphic binary heap ({!Tt_util.Intheap}),
      O(log n) per event, insensitive to the key distribution;
    - {!Cal_queue} — the calendar/ladder queue ({!Tt_util.Calqueue}),
      amortized O(1) on the clustered event times simulation runs
      actually produce, with automatic fallback to a private heap on
      degenerate distributions.

    Selection happens once, at {!create}: explicitly via the [impl]
    argument, or from the [TT_EVQ] environment variable
    ([heap] | [cal]/[calendar]) for A/B runs, defaulting to the calendar
    queue.  Both implementations drain in the exact same total key
    order, so simulated results are bit-identical whichever is active
    (pinned by the regression suite and the heap/calendar equivalence
    property; [scripts/check_scaling.sh] runs the whole suite both
    ways). *)

val seq_bits : int
(** Low bits of every packed key holding the FIFO tie-break sequence
    (20); time occupies the bits above.  Owned here because queue
    implementations use it as the initial calendar bucket-width hint. *)

val salt_bits : int
(** High bits of the seq field used for tie-break perturbation salts
    (8); see {!Engine.set_tiebreak}. *)

module type EVENT_QUEUE = sig
  type t

  val create : unit -> t

  val push : t -> int -> (unit -> unit) -> unit
  (** [push t key fn] inserts [fn] at priority [key] (minimum first). *)

  val min_key : t -> int
  (** Key of the minimum event without removing it.
      @raise Invalid_argument when empty. *)

  val pop_exn : t -> unit -> unit
  (** Remove the minimum event and return its callback.
      @raise Invalid_argument when empty. *)

  val length : t -> int

  val is_empty : t -> bool

  val clear : t -> unit

  val fell_back : t -> bool
  (** [true] once an adaptive implementation has degraded to its
      fallback structure; always [false] for {!Heap_queue}. *)
end

module Heap_queue : EVENT_QUEUE

module Cal_queue : EVENT_QUEUE

type impl = Heap | Calendar

val impl_of_env : unit -> impl
(** [TT_EVQ=heap] or [TT_EVQ=cal|calendar]; unset defaults to
    {!Calendar}.  @raise Invalid_argument on any other value. *)

val impl_label : impl -> string

type t
(** A queue tagged with its implementation. *)

val create : impl -> t

val impl : t -> impl

val push : t -> int -> (unit -> unit) -> unit

val min_key : t -> int

val pop_exn : t -> unit -> unit

val length : t -> int

val is_empty : t -> bool

val clear : t -> unit

val fell_back : t -> bool
