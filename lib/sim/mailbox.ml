(* Bounded single-producer/single-consumer ring buffer.

   This is the cross-partition handoff primitive of the domains-parallel
   engine (see Domains): during a window each partition pushes into its
   private (src, dst) mailbox, and the destination partition drains it at
   the window-edge barrier.  One domain pushes, one domain pops, and the
   two phases are separated by a barrier, so the design only needs the
   classic SPSC publication protocol under the OCaml memory model:

   - the producer writes the slot with a plain store, then publishes it by
     an [Atomic.set] of [tail] — the atomic write orders the slot write
     before it;
   - the consumer reads [tail] with [Atomic.get] before reading the slot —
     the atomic read establishes happens-before with the matching set, so
     the slot read can never observe a stale value;
   - symmetrically, the consumer clears the slot (dropping the reference
     for the GC) before bumping [head], and the producer re-checks [head]
     before overwriting a slot.

   [head]/[tail] are monotone counters; the ring index is [land mask].
   Capacity is rounded up to a power of two. *)

type 'a t = {
  slots : 'a array;
  mask : int;
  dummy : 'a;
  head : int Atomic.t; (* next slot to pop; only the consumer writes *)
  tail : int Atomic.t; (* next slot to push; only the producer writes *)
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ~capacity ~dummy () =
  if capacity <= 0 then invalid_arg "Mailbox.create: capacity must be positive";
  let cap = pow2 capacity 1 in
  { slots = Array.make cap dummy; mask = cap - 1; dummy;
    head = Atomic.make 0; tail = Atomic.make 0 }

let capacity t = t.mask + 1

let length t = Atomic.get t.tail - Atomic.get t.head

let is_empty t = length t = 0

let try_push t v =
  let tail = Atomic.get t.tail in
  if tail - Atomic.get t.head > t.mask then false
  else begin
    t.slots.(tail land t.mask) <- v;
    Atomic.set t.tail (tail + 1);
    true
  end

let pop_exn t =
  let head = Atomic.get t.head in
  if Atomic.get t.tail = head then failwith "Mailbox.pop_exn: empty";
  let v = t.slots.(head land t.mask) in
  t.slots.(head land t.mask) <- t.dummy;
  Atomic.set t.head (head + 1);
  v
