(** Simulated computation threads (one per simulated CPU).

    A thread is an OCaml-5 effect fiber with a private cycle clock.  Code
    running inside the fiber charges cycles with {!advance} and blocks
    through a reusable per-thread {e poll/continuation slot}: a blocking
    operation ({!await}, {!await_unit}, {!park}) first runs its registration
    closure, and if the wake has already fired by the time registration
    returns — lock uncontended, barrier last-arriver, data already local —
    the thread continues {e inline}, without capturing a continuation.  Only
    a genuine cross-event wait (a wake that arrives from a later engine
    event, e.g. a protocol handler on the network processor) performs the
    full [Effect.perform] fiber suspension.  The memory system uses this to
    implement Tempest's suspend-handle-resume semantics for block access
    faults.

    The inline fast path is timing-neutral: it is taken only when
    {!Engine.elidable_at} proves that continuing inline is indistinguishable
    from scheduling the resume event and letting the queue fire it.
    [TT_FASTPATH=0] (or {!set_fastpath}) disables it, forcing every blocking
    operation through the full suspension — simulated results are
    bit-identical either way (asserted by tests and
    [scripts/check_fastpath.sh]).

    A thread's clock may run ahead of global time by at most [quantum]
    cycles between yields, mirroring the Wind Tunnel's quantum-based
    conservative synchronization. *)

type t

exception Failure_in of string * exn
(** Raised out of {!Engine.run} when a thread body raises: carries the thread
    name and the original exception. *)

val spawn :
  Engine.t -> ?quantum:int -> ?start:int -> name:string -> (t -> unit) -> t
(** [spawn engine ~name body] creates a thread and schedules its first step
    at time [start] (default: now).  [quantum] (default 200 cycles) bounds
    how far the local clock may run ahead before {!maybe_yield} reinserts the
    thread into the event queue. *)

val name : t -> string

val clock : t -> int
(** Local cycle count. *)

val set_clock : t -> int -> unit
(** Used by protocol completion paths: set the local clock to the simulated
    completion time before calling the thread's wake function. *)

val advance : t -> int -> unit
(** Charge [n] cycles to the local clock. *)

val finished : t -> bool

val blocked : t -> bool

val await : t -> ((int -> unit) -> unit) -> int
(** [await t register] must be called from inside the thread's own body.
    [register] runs immediately and receives [wake]; calling [wake v]
    (exactly once, now or later) resumes the thread at [max (clock t) now]
    and makes [await] return [v].

    If [wake] fires before [register] returns and no queued engine event
    would run at or before the resume time, [await] returns inline — no
    continuation is captured and no engine event is scheduled (the engine
    clock still advances to the resume time, via {!Engine.skip_to}).
    Otherwise the thread suspends and the wake's resume event runs the
    captured continuation.  A second call of the same [wake], or a call
    after the await completed, raises [Invalid_argument]. *)

val await_unit : t -> ((unit -> unit) -> unit) -> unit
(** {!await} for waits that carry no value. *)

val park : t -> (unit -> unit) -> unit
(** [park t enqueue] blocks like {!await_unit}, but the registration takes
    no wake closure: [enqueue] records the thread itself somewhere (e.g. a
    waiter list) and a later {!unpark} fires the slot directly.  Use only
    where the waker provably targets the wait the thread is currently
    blocked in — the closure-free counterpart for the sim-internal lock and
    barrier waiter lists. *)

val unpark : t -> unit
(** Fire the wake of [t]'s wait in flight (registered via {!park} or any
    await).  Raises [Invalid_argument] if the thread is not waiting. *)

val yield : t -> unit
(** Re-enter the event queue at the current local clock, letting events with
    earlier timestamps run first.  When no queued event would fire at or
    before the local clock this is a cheap inline re-enqueue: no effect, no
    continuation capture, no engine event. *)

val maybe_yield : t -> unit
(** {!yield} only if the local clock has outrun the last yield by more than
    the quantum.  Call this on every simulated memory access. *)

val set_fastpath : bool -> unit
(** Enable/disable the inline fast path at runtime (initial value from
    [TT_FASTPATH], default enabled).  For ablation and equivalence tests. *)

val fastpath_enabled : unit -> bool

val set_suspend_counters :
  t -> taken:Tt_util.Stats.counter -> elided:Tt_util.Stats.counter -> unit
(** Wire the per-node statistics cells bumped on every full suspension
    ([taken]) and every inline completion ([elided]). *)
