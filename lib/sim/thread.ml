module Stats = Tt_util.Stats

type state = Runnable | Blocked | Finished

(* Poll/continuation slot states (see DESIGN.md §5c).  Every blocking
   operation goes through one reusable per-thread slot:

     w_idle --- await runs [register] ---> w_registering
     w_registering -- wake fired, inline safe ------------> w_fired
     w_registering -- wake fired, resume event scheduled -> w_deferred
     w_registering -- register returned unfired ----------> w_suspended
     w_suspended --- wake fired, resume event scheduled --> w_woken

   [w_fired] returns inline without capturing a continuation; the other
   fired states resume through a preallocated engine event that runs the
   captured continuation. *)
let w_idle = 0

let w_registering = 1

let w_fired = 2

let w_deferred = 3

let w_suspended = 4

let w_woken = 5

type t = {
  engine : Engine.t;
  thread_name : string;
  quantum : int;
  mutable clock : int;
  mutable last_yield : int;
  mutable state : state;
  mutable wait : int;  (* slot state, one of the [w_*] values above *)
  mutable wait_gen : int;
      (* bumped when an await completes; a wake closure carries the
         generation it was created under, so late calls are rejected *)
  mutable slot_value : int;  (* value passed to the wake, for the resume *)
  mutable resume_k : int -> unit;
      (* runner for the captured continuation of the await in flight *)
  mutable resume_event : unit -> unit;
      (* preallocated engine callback: [resume_k slot_value] *)
  mutable elide_streak : int;
  mutable c_taken : Stats.counter option;
  mutable c_elided : Stats.counter option;
}

exception Failure_in of string * exn

(* Continuation capture for a genuine suspension: performed by [await]
   after [register] returned (or after a mid-registration wake found it
   could not elide).  The handler only stores the continuation runner; the
   resume event (scheduled by the wake, with the wake's FIFO seq) invokes
   it. *)
type _ Effect.t += Capture : int Effect.t

(* TT_FASTPATH=0 forces every blocking operation through the full
   effect suspension (mirrors TT_POOL_DISABLE): the proof knob that the
   inline fast path is timing-neutral. *)
let fastpath =
  ref
    (match Sys.getenv_opt "TT_FASTPATH" with
    | Some ("0" | "false" | "no") -> false
    | Some _ | None -> true)

let set_fastpath on = fastpath := on

let fastpath_enabled () = !fastpath

(* Bound on consecutive inline continuations.  Eliding a resume keeps the
   thread running inside the current engine event; an unbounded streak
   would keep a compute-heavy thread from ever returning control to
   [Engine.run_until] (watchdog slices).  Forcing one real suspension per
   [max_elide_streak] elisions bounds inline run-ahead without changing
   simulated timing (elided and scheduled resumes are equivalent either
   way). *)
let max_elide_streak = 64

let name t = t.thread_name

let clock t = t.clock

let set_clock t c = t.clock <- c

let advance t n = t.clock <- t.clock + n

let finished t = t.state = Finished

let blocked t = t.state = Blocked

let wake_time t = max t.clock (Engine.now t.engine)

let incr_opt = function Some c -> Stats.Counter.incr c | None -> ()

let set_suspend_counters t ~taken ~elided =
  t.c_taken <- Some taken;
  t.c_elided <- Some elided

let can_elide t time =
  !fastpath && t.elide_streak < max_elide_streak
  && Engine.elidable_at t.engine time

(* Wake the slot.  For a wake that fires while [register] is still running,
   decide *now* whether the thread may continue inline: if any queued event
   would fire at or before the resume time — or the fast path is off — a
   resume event is scheduled immediately, so it carries the same FIFO seq
   the old direct [Engine.at] wake did (this matters when the rest of
   [register] schedules more same-time events, e.g. a barrier releasing the
   other waiters). *)
let fire t gen v =
  if gen <> t.wait_gen then
    invalid_arg (Printf.sprintf "Thread %s woken twice" t.thread_name);
  if t.wait = w_registering then begin
    t.slot_value <- v;
    t.state <- Runnable;
    t.clock <- wake_time t;
    t.last_yield <- t.clock;
    if can_elide t t.clock then t.wait <- w_fired
    else begin
      t.wait <- w_deferred;
      Engine.at t.engine t.clock t.resume_event
    end
  end
  else if t.wait = w_suspended then begin
    t.slot_value <- v;
    t.state <- Runnable;
    t.clock <- wake_time t;
    (* blocking re-synchronized us with global time: reset the run-ahead
       bookkeeping so the continuation is not immediately preempted by
       maybe_yield.  This is what lets a CPU's retried access win against
       a queued invalidation after a fill — the hardware's
       forward-progress guarantee. *)
    t.last_yield <- t.clock;
    t.wait <- w_woken;
    Engine.at t.engine t.clock t.resume_event
  end
  else if t.wait = w_idle then
    (* a matching generation with an idle slot means no await/park is in
       flight at all — e.g. [unpark] on a thread that never parked.  Distinct
       from a double wake, which finds the slot in a fired state. *)
    invalid_arg
      (Printf.sprintf
         "Thread %s: woken with no blocking operation in flight (slot idle)"
         t.thread_name)
  else invalid_arg (Printf.sprintf "Thread %s woken twice" t.thread_name)

let complete t v =
  t.wait <- w_idle;
  t.wait_gen <- t.wait_gen + 1;
  v

(* Second half of every await, after [register] returned. *)
let await_end t =
  if t.wait = w_fired then begin
    incr_opt t.c_elided;
    t.elide_streak <- t.elide_streak + 1;
    (* the resume event would have been the next to fire: advance [now]
       exactly as its firing would, then continue inline.  If [register]
       scheduled an event *before* the resume time after waking us, this
       skip_to raises — such a site must not be elided. *)
    Engine.skip_to t.engine t.clock;
    complete t t.slot_value
  end
  else if t.wait = w_registering then begin
    incr_opt t.c_taken;
    t.elide_streak <- 0;
    t.wait <- w_suspended;
    complete t (Effect.perform Capture)
  end
  else if t.wait = w_deferred then begin
    incr_opt t.c_taken;
    t.elide_streak <- 0;
    complete t (Effect.perform Capture)
  end
  else assert false

let begin_wait t =
  if t.wait <> w_idle then
    invalid_arg
      (Printf.sprintf "Thread %s: blocking operation while one is in flight"
         t.thread_name);
  t.wait <- w_registering

let await t register =
  begin_wait t;
  let gen = t.wait_gen in
  register (fun v -> fire t gen v);
  await_end t

let await_unit t register =
  begin_wait t;
  let gen = t.wait_gen in
  register (fun () -> fire t gen 0);
  ignore (await_end t)

let park t enqueue =
  begin_wait t;
  enqueue ();
  ignore (await_end t)

let unpark t = fire t t.wait_gen 0

let spawn engine ?(quantum = 200) ?start ~name body =
  let start = match start with Some s -> s | None -> Engine.now engine in
  let t =
    { engine; thread_name = name; quantum; clock = start; last_yield = start;
      state = Runnable; wait = w_idle; wait_gen = 0; slot_value = 0;
      resume_k = (fun _ -> ()); resume_event = (fun () -> ());
      elide_streak = 0; c_taken = None; c_elided = None }
  in
  t.resume_k <-
    (fun _ ->
      invalid_arg
        (Printf.sprintf "Thread %s: resume with no captured continuation"
           t.thread_name));
  t.resume_event <- (fun () -> t.resume_k t.slot_value);
  let handler =
    {
      Effect.Deep.retc = (fun () -> t.state <- Finished);
      exnc =
        (fun exn ->
          let bt = Printexc.get_raw_backtrace () in
          t.state <- Finished;
          Printexc.raise_with_backtrace (Failure_in (t.thread_name, exn)) bt);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Capture ->
              Some
                (fun (k : (a, _) Effect.Deep.continuation) ->
                  t.resume_k <- (fun v -> Effect.Deep.continue k v);
                  (* a deferred wake already marked us runnable and queued
                     the resume event; only an unfired registration is a
                     real block *)
                  if t.wait = w_suspended then t.state <- Blocked)
          | _ -> None);
    }
  in
  Engine.at engine start (fun () -> Effect.Deep.match_with body t handler);
  t

let yield t =
  let c = wake_time t in
  if can_elide t c then begin
    incr_opt t.c_elided;
    t.elide_streak <- t.elide_streak + 1;
    t.clock <- c;
    t.last_yield <- c;
    Engine.skip_to t.engine c
  end
  else begin
    (* equivalent to the pre-slot yield: one engine event at [c] scheduled
       from this point in the instruction stream, then a full suspension *)
    begin_wait t;
    unpark t;
    ignore (await_end t)
  end

let maybe_yield t =
  if t.clock - t.last_yield >= t.quantum then begin
    t.last_yield <- t.clock;
    yield t
  end
