(* Conservative (lookahead-window) parallel discrete-event simulation
   across OCaml 5 domains.

   The machine model is a set of deterministic actors behind the
   Eventq/Engine boundary, and every cross-actor interaction rides a
   network link with a fixed minimum latency.  That latency is *lookahead*
   in PDES terms: an event executing at time [t] can only affect another
   partition at [t + lookahead] or later.  So events in the half-open
   window [floor, floor + lookahead) are causally independent across
   partitions and may be drained concurrently.

   Each partition owns a private sequential {!Engine}; the group advances
   in window-sized epochs:

     1. every partition drains its inboxes — posts buffered before [run]
        or during the previous window — in a fixed (source-partition,
        FIFO) order, re-scheduling them into its own engine;
     2. a coordinator computes the next window floor — the minimum queued
        event time across all partitions, every handed-over event now
        visible — and checks termination;
     3. every partition drains its own queue through the window with
        [Engine.run_until]; cross-partition schedules made by its events
        are buffered in bounded SPSC {!Mailbox}es (one per directed
        partition pair) rather than touching the peer's engine.

   Because each engine's entire operation sequence — run_until horizon,
   then inbox pushes in deterministic order — is independent of how
   partitions are mapped onto domains, the packed (time, salt, seq) event
   keys each engine assigns and drains are bit-identical whether the group
   runs on one domain or many.  [Engine.set_trace] logs are the proof
   hook; test_parallel.ml's properties compare full logs across domain
   counts, and against the one-engine sequential oracle for
   state/timing equivalence.

   Synchronization is intentionally boring: a reusable phase-counting
   barrier built on Mutex/Condition.  All shared mutable fields ([floor],
   [stop], engine internals read by the coordinator) are written strictly
   on one side of a barrier and read on the other; the barrier's mutex
   establishes the happens-before edges, so no further atomics are needed
   (the SPSC mailboxes carry their own). *)

exception Mailbox_full of string

type post = { p_time : int; p_fn : unit -> unit }

let nop_post = { p_time = 0; p_fn = (fun () -> ()) }

type stop = Running | Drained | Hit_limit | Failed

type t = {
  lookahead : int;
  engines : Engine.t array;
  boxes : post Mailbox.t array array; (* boxes.(dst).(src); unused diagonal *)
  mutable floor : int; (* current window start *)
  mutable stop : stop;
  mutable epochs : int;
}

let create ?queue ?(mailbox_capacity = 8192) ~partitions ~lookahead () =
  if partitions <= 0 then
    invalid_arg "Domains.create: partitions must be positive";
  if lookahead <= 0 then invalid_arg "Domains.create: lookahead must be positive";
  if mailbox_capacity <= 0 then
    invalid_arg "Domains.create: mailbox_capacity must be positive";
  {
    lookahead;
    engines = Array.init partitions (fun _ -> Engine.create ?queue ());
    boxes =
      Array.init partitions (fun _ ->
          Array.init partitions (fun _ ->
              Mailbox.create ~capacity:mailbox_capacity ~dummy:nop_post ()));
    floor = 0;
    stop = Running;
    epochs = 0;
  }

let partitions t = Array.length t.engines

let engine t p = t.engines.(p)

let lookahead t = t.lookahead

let epochs t = t.epochs

let floor t = t.floor

let post t ~src ~dst time fn =
  if src = dst then Engine.at t.engines.(src) time fn
  else begin
    let now = Engine.now t.engines.(src) in
    if time < now + t.lookahead then
      invalid_arg
        (Printf.sprintf
           "Domains.post: time %d from partition %d (now=%d) violates the \
            lookahead window (now + %d)"
           time src now t.lookahead);
    if not (Mailbox.try_push t.boxes.(dst).(src) { p_time = time; p_fn = fn })
    then
      raise
        (Mailbox_full
           (Printf.sprintf
              "Domains.post: mailbox %d->%d full (capacity %d); raise \
               ~mailbox_capacity"
              src dst
              (Mailbox.capacity t.boxes.(dst).(src))))
  end

(* Window-edge inbox drain for partition [dst]: fixed source order, FIFO
   within a source, so the engine's seq assignment is deterministic. *)
let drain_inboxes t dst =
  let e = t.engines.(dst) in
  let row = t.boxes.(dst) in
  for src = 0 to Array.length row - 1 do
    if src <> dst then begin
      let box = row.(src) in
      while not (Mailbox.is_empty box) do
        let p = Mailbox.pop_exn box in
        Engine.at e p.p_time p.p_fn
      done
    end
  done

(* Reusable phase-counting barrier.  The arriving mutex section orders each
   party's pre-barrier writes before every party's post-barrier reads. *)
module Sync = struct
  type b = {
    m : Mutex.t;
    c : Condition.t;
    parties : int;
    mutable count : int;
    mutable phase : int;
  }

  let create parties =
    { m = Mutex.create (); c = Condition.create (); parties; count = 0;
      phase = 0 }

  let wait b =
    if b.parties > 1 then begin
      Mutex.lock b.m;
      let ph = b.phase in
      b.count <- b.count + 1;
      if b.count = b.parties then begin
        b.count <- 0;
        b.phase <- ph + 1;
        Condition.broadcast b.c
      end
      else
        while b.phase = ph do
          Condition.wait b.c b.m
        done;
      Mutex.unlock b.m
    end
end

(* One worker's share of every epoch.  Only steps that execute user events
   (window drain, inbox drain, the per-window callback) can raise; they are
   fenced so every worker keeps reaching the barriers and the coordinator
   shuts the group down at the next window edge instead of deadlocking. *)
let worker_loop t ~bar ~limit ~on_window ~failed ~errors ~idx ~is_coord
    ~my_parts =
  let guard f =
    try f ()
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      if errors.(idx) = None then errors.(idx) <- Some (e, bt);
      Atomic.set failed true
  in
  let continue = ref true in
  while !continue do
    (* inboxes first — they may hold posts made before [run] or during the
       previous window, and the floor/termination check below must see
       every handed-over event in its destination engine (a group whose
       only pending work sits in a mailbox is not drained) *)
    guard (fun () -> List.iter (drain_inboxes t) my_parts);
    Sync.wait bar;
    if is_coord then begin
      if Atomic.get failed then t.stop <- Failed
      else begin
        let f = ref max_int in
        Array.iter
          (fun e -> f := min !f (Engine.next_event_time e))
          t.engines;
        if !f = max_int then t.stop <- Drained
        else if !f > limit then t.stop <- Hit_limit
        else begin
          t.floor <- !f;
          guard (fun () -> on_window ~floor:!f ~epoch:t.epochs);
          if Atomic.get failed then t.stop <- Failed
        end
      end
    end;
    Sync.wait bar;
    match t.stop with
    | Drained | Hit_limit | Failed -> continue := false
    | Running ->
        let window_end = min (t.floor + t.lookahead - 1) limit in
        guard (fun () ->
            List.iter
              (fun p ->
                ignore (Engine.run_until t.engines.(p) ~limit:window_end))
              my_parts);
        Sync.wait bar;
        if is_coord then t.epochs <- t.epochs + 1
  done

let default_on_window ~floor:_ ~epoch:_ = ()

let run ?(domains = 1) ?(limit = max_int) ?(on_window = default_on_window) t =
  let p = partitions t in
  let d = max 1 (min domains p) in
  let failed = Atomic.make false in
  let errors = Array.make d None in
  t.stop <- Running;
  let bar = Sync.create d in
  (* partition p runs on worker (p mod d): a deterministic map, though any
     map yields the same engine logs — that is the point of the design *)
  let parts_of idx =
    List.init p Fun.id |> List.filter (fun q -> q mod d = idx)
  in
  let worker idx () =
    worker_loop t ~bar ~limit ~on_window ~failed ~errors ~idx
      ~is_coord:(idx = 0) ~my_parts:(parts_of idx)
  in
  let spawned = Array.init (d - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  worker 0 ();
  Array.iter Domain.join spawned;
  (match Array.find_opt (fun e -> e <> None) errors with
  | Some (Some (e, bt)) -> Printexc.raise_with_backtrace e bt
  | _ -> ());
  t.stop = Drained

(* ------------------------------------------------------------------ *)
(* Generic deterministic fan-out over independent work items            *)
(* ------------------------------------------------------------------ *)

(* Used by the harness sweeps (scaling grids, fault grids, torture grids):
   every item is an independent sequential simulation, so running them on
   worker domains changes wall-clock only.  Results land by input index;
   on failure the earliest item's exception is re-raised, matching what a
   sequential left-to-right map would have surfaced. *)
let map ~domains f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if domains <= 1 || n <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    let rec work () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match f arr.(i) with
        | v -> results.(i) <- Some v
        | exception e ->
            errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
        work ()
      end
    in
    let spawned =
      Array.init (min domains n - 1) (fun _ -> Domain.spawn work)
    in
    work ();
    Array.iter Domain.join spawned;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
  end
