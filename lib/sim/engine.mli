(** Discrete-event simulation engine.

    Time is a global cycle count.  Events are closures executed in
    non-decreasing time order; ties are broken FIFO so runs are
    deterministic.  This is our stand-in for the Wisconsin Wind Tunnel's
    quantum-synchronized direct execution: simulated processors (see
    {!Thread}) insert themselves here whenever they interact with shared
    state.

    The queue compares packed [(time, seq)] priorities —
    [time lsl 20 lor seq] — so scheduling and stepping allocate nothing
    beyond the caller's callback closure.  Times are limited to
    [max_int asr 20] cycles (~4.4e12 on 64-bit); {!at} raises past that.

    The queue implementation itself sits behind {!Eventq.EVENT_QUEUE}: a
    binary heap ({!Tt_util.Intheap}) or a calendar/ladder queue
    ({!Tt_util.Calqueue}), selected per engine at {!create}.  Both drain
    in the exact same total key order, so simulated results are
    bit-identical whichever is active. *)

type t

val create : ?queue:Eventq.impl -> unit -> t
(** [create ()] picks the queue implementation from [TT_EVQ]
    ([heap] | [cal]); unset defaults to the calendar queue.  [?queue]
    overrides the environment (used by the heap/calendar equivalence
    property tests). *)

val queue_impl : t -> Eventq.impl

val queue_fell_back : t -> bool
(** [true] once an adaptive queue implementation degraded to its
    fallback (see {!Tt_util.Calqueue}); always [false] for {!Eventq.Heap}. *)

val now : t -> int
(** Timestamp of the event currently executing (0 before the first). *)

val at : t -> int -> (unit -> unit) -> unit
(** [at t time fn] schedules [fn] at absolute [time].  Scheduling in the past
    (time < now) is an error. *)

val after : t -> int -> (unit -> unit) -> unit
(** [after t delay fn] schedules [fn] at [now t + delay]. *)

val pending : t -> int
(** Number of scheduled events not yet run. *)

val set_tiebreak : t -> (int -> int) option -> unit
(** Install (or remove) a deterministic same-timestamp tie-break perturber.

    With [None] (the default) ties are broken strictly FIFO and scheduling
    is bit-identical to the unperturbed engine.  With [Some salt_of], every
    {!at} call obtains a {e salt} — [salt_of site land 0xff], where [site]
    is a counter of perturbed scheduling decisions so far — and events that
    coexist at equal times sort by salt first, FIFO among equal salts.
    Salt [0] is the neutral value: an all-zero salt stream reproduces pure
    FIFO order among the salted events.  Perturbation never reorders events
    across distinct timestamps.

    The salt source is called exactly once per scheduling decision with
    consecutive site indices, so a seeded generator yields reproducible
    perturbed schedules and a recorded [site -> salt] journal replays one
    exactly (see [Tt_torture.Trace]). *)

val tiebreak_sites : t -> int
(** Number of tie-break decisions drawn so far (0 when no perturber has
    ever been installed). *)

val set_trace : t -> (int -> unit) option -> unit
(** Install (or remove) a drain observer: [f key] is called with each fired
    event's packed [(time, salt, seq)] key, after [now] has advanced but
    before the callback runs.  [None] (the default) keeps the drain path
    free of the extra call.  Decode keys with {!key_time}, {!key_salt} and
    {!key_seq}.  This is the probe behind the sequential-vs-parallel
    event-log equivalence checks (see {!Domains}). *)

val key_time : int -> int
(** Simulated timestamp of a packed event key. *)

val key_seq : int -> int
(** Full 20-bit tie-break field of a packed key.  Without a {!set_tiebreak}
    perturber this is the plain FIFO sequence number. *)

val key_salt : int -> int
(** High 8 bits of the tie-break field.  Meaningful as perturbation salt
    only while a {!set_tiebreak} perturber is installed; otherwise these are
    simply the FIFO counter's high bits. *)

val next_event_time : t -> int
(** Timestamp of the earliest queued event, or [max_int] when the queue is
    empty.  Lets a dispatcher decide whether it may keep draining its own
    work inline (see {!skip_to}) without perturbing event order. *)

val elidable_at : t -> int -> bool
(** [elidable_at t time] is [true] when advancing [now] to [time] with
    {!skip_to} and continuing execution inline is indistinguishable from
    scheduling a callback at [time] and letting the queue fire it: no queued
    event at or before [time] (strictly — a coexisting same-time event has
    an earlier FIFO seq and must run first), [time] within an active
    {!run_until} horizon, and no {!set_tiebreak} perturber installed
    (eliding an {!at} call would shift every later perturbation site).
    This is the guard behind {!Thread}'s suspension-free fast path. *)

val skip_to : t -> int -> unit
(** [skip_to t time] advances [now] to [time] without running any event.
    Only valid while no queued event would fire at or before [time]
    (i.e. [time <= next_event_time t] and [time >= now t]); this keeps the
    clock monotone and the event order identical to scheduling a callback
    at [time] and letting it fire.  Used by batched NP dispatch to drain
    same-timestamp work items in one engine event. *)

val run : t -> unit
(** Execute events until none remain. *)

val run_until : t -> limit:int -> bool
(** Execute events with time ≤ [limit].  Returns [true] if the queue drained
    (simulation finished), [false] if it stopped at the limit. *)
