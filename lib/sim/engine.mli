(** Discrete-event simulation engine.

    Time is a global cycle count.  Events are closures executed in
    non-decreasing time order; ties are broken FIFO so runs are
    deterministic.  This is our stand-in for the Wisconsin Wind Tunnel's
    quantum-synchronized direct execution: simulated processors (see
    {!Thread}) insert themselves here whenever they interact with shared
    state.

    The queue is a monomorphic int-keyed heap ({!Tt_util.Intheap}) over a
    packed [(time, seq)] priority — [time lsl 20 lor seq] — so scheduling
    and stepping allocate nothing beyond the caller's callback closure.
    Times are limited to [max_int asr 20] cycles (~4.4e12 on 64-bit);
    {!at} raises past that. *)

type t

val create : unit -> t

val now : t -> int
(** Timestamp of the event currently executing (0 before the first). *)

val at : t -> int -> (unit -> unit) -> unit
(** [at t time fn] schedules [fn] at absolute [time].  Scheduling in the past
    (time < now) is an error. *)

val after : t -> int -> (unit -> unit) -> unit
(** [after t delay fn] schedules [fn] at [now t + delay]. *)

val pending : t -> int
(** Number of scheduled events not yet run. *)

val run : t -> unit
(** Execute events until none remain. *)

val run_until : t -> limit:int -> bool
(** Execute events with time ≤ [limit].  Returns [true] if the queue drained
    (simulation finished), [false] if it stopped at the limit. *)
