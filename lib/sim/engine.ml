(* The event queue packs each event's (time, seq) priority into one
   immediate int — [time lsl seq_bits lor seq] — so the queue compares
   plain ints and stores the callback directly: no per-event record, no
   comparator closure.  See DESIGN.md "Performance" for the bit budget.

   The queue itself sits behind the Eventq.EVENT_QUEUE boundary: a binary
   heap or a calendar/ladder queue, chosen at [create] (TT_EVQ=heap|cal
   overrides; default calendar).  Both drain in the exact same total key
   order, so everything below is implementation-agnostic.

   [seq] breaks ties FIFO among events that coexist at equal times.  It
   resets to 0 whenever the queue drains (FIFO order only matters among
   coexisting events), and in the rare case that [seq_limit] events are
   scheduled without the queue ever draining, the live queue is renumbered
   in place ([rebase]), preserving order. *)

let seq_bits = Eventq.seq_bits

let seq_limit = 1 lsl seq_bits

let max_time = max_int asr seq_bits

(* With a tie-break perturber installed, the seq field is split into a salt
   (high bits, from the perturber) and a FIFO counter (low bits): events at
   equal times sort by salt first, FIFO among equal salts.  Salt 0 is the
   neutral value — an all-zero salt stream reproduces pure FIFO order. *)
let salt_bits = Eventq.salt_bits

let salt_limit = 1 lsl salt_bits

let counter_bits = seq_bits - salt_bits

let counter_mask = (1 lsl counter_bits) - 1

type t = {
  events : Eventq.t;
  mutable now : int;
  mutable seq : int;
  mutable tiebreak : (int -> int) option;
  mutable tiebreak_sites : int;
  mutable run_limit : int;
      (* horizon of an in-progress [run_until]; [max_int] otherwise.  Inline
         continuations ([elidable_at]) must not advance [now] past it, or a
         watchdog-sliced run would observe different slice boundaries than
         the equivalent one-event-per-resume schedule. *)
  mutable trace : (int -> unit) option;
      (* drain observer: called with each fired event's packed key, before
         the callback runs.  Powers the sequential-vs-parallel event-log
         cross-checks (see Domains); [None] keeps [fire] branch-predicted
         and allocation-free. *)
}

let nop () = ()

let create ?queue () =
  let impl = match queue with Some i -> i | None -> Eventq.impl_of_env () in
  { events = Eventq.create impl; now = 0; seq = 0; tiebreak = None;
    tiebreak_sites = 0; run_limit = max_int; trace = None }

let queue_impl t = Eventq.impl t.events

let queue_fell_back t = Eventq.fell_back t.events

let set_tiebreak t f = t.tiebreak <- f

let tiebreak_sites t = t.tiebreak_sites

let set_trace t f = t.trace <- f

(* Packed-key field decoders, for event-log cross-checks and diagnostics. *)
let key_time key = key asr seq_bits

let key_seq key = key land (seq_limit - 1)

let key_salt key = (key asr counter_bits) land (salt_limit - 1)

let now t = t.now

let pending t = Eventq.length t.events

(* Renumber queued events with consecutive seqs starting from 0.  Draining
   the queue yields ascending (time, seq) order, so reassigning seq by drain
   position preserves the relative order exactly.

   With a tie-break perturber installed the seq field is split: the high
   [salt_bits] are ordering salt, not FIFO position, and a later same-time
   push will carry its own salt.  Renumbering across the full field would
   clobber the salt with drain position, so a rebased event would compare
   against that later push by position instead of by salt.  Preserve the
   time and salt bits and renumber only the FIFO counter, restarting it at
   each (time, salt) boundary — same-(time, salt) events are contiguous in
   drain order, so relative order is preserved, and every renumbered
   counter stays below the fresh [t.seq = n] that later pushes truncate
   from. *)
let rebase t =
  let n = Eventq.length t.events in
  let keys = Array.make n 0 and fns = Array.make n nop in
  for i = 0 to n - 1 do
    keys.(i) <- Eventq.min_key t.events;
    fns.(i) <- Eventq.pop_exn t.events
  done;
  (match t.tiebreak with
  | None ->
      (* pure-FIFO keys: the whole [seq_bits] field is drain position *)
      for i = 0 to n - 1 do
        Eventq.push t.events
          (((keys.(i) asr seq_bits) lsl seq_bits) lor i)
          fns.(i)
      done
  | Some _ ->
      let counter = ref 0 in
      for i = 0 to n - 1 do
        (* [time lsl salt_bits lor salt]: everything above the counter *)
        let ts = keys.(i) asr counter_bits in
        if i > 0 && keys.(i - 1) asr counter_bits <> ts then counter := 0;
        Eventq.push t.events
          ((ts lsl counter_bits) lor (!counter land counter_mask))
          fns.(i);
        incr counter
      done);
  t.seq <- n

let at t time fn =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.at: scheduling at %d which is before now=%d" time
         t.now);
  if time > max_time then
    invalid_arg
      (Printf.sprintf "Engine.at: time %d exceeds the %d-bit budget" time
         (Sys.int_size - 1 - seq_bits));
  if t.seq >= seq_limit then rebase t;
  (match t.tiebreak with
  | None -> Eventq.push t.events ((time lsl seq_bits) lor t.seq) fn
  | Some salt_of ->
      (* perturbed tie-breaking: same-time events sort by salt, then FIFO.
         The counter is truncated to its bit budget; a collision between
         far-apart coexisting events merely makes their order salt-driven,
         which is exactly what perturbation permits. *)
      let salt = salt_of t.tiebreak_sites land (salt_limit - 1) in
      t.tiebreak_sites <- t.tiebreak_sites + 1;
      Eventq.push t.events
        ((time lsl seq_bits) lor (salt lsl counter_bits)
        lor (t.seq land counter_mask))
        fn);
  t.seq <- t.seq + 1

let after t delay fn =
  (* [t.now + delay] silently wraps past max_int for huge delays, landing
     either negative (caught by [at] with a misleading "before now") or,
     for delays past 2*max_int - now, back among valid times; reject the
     overflow here with both operands named.  [max_time < max_int], so
     every non-wrapping overflow is also caught. *)
  if delay > max_time - t.now then
    invalid_arg
      (Printf.sprintf
         "Engine.after: delay %d from now=%d overflows the schedulable time \
          budget (max %d)"
         delay t.now max_time);
  at t (t.now + delay) fn

let next_event_time t =
  if Eventq.is_empty t.events then max_int
  else Eventq.min_key t.events asr seq_bits

(* [elidable_at t time] decides whether a caller may advance [now] to
   [time] with {!skip_to} and keep executing inline instead of scheduling a
   callback at [time] and letting the queue fire it.  The two are
   indistinguishable iff no queued event would fire at or before [time]
   (strict: an already-queued same-time event has a smaller FIFO seq and
   must run first), [time] is within any active [run_until] horizon, and no
   tie-break perturber is installed — eliding an [at] call would shift every
   later perturbation site index and break salt-journal replay. *)
let elidable_at t time =
  time >= t.now && time <= t.run_limit
  && (match t.tiebreak with None -> true | Some _ -> false)
  && (Eventq.is_empty t.events || Eventq.min_key t.events asr seq_bits > time)

let skip_to t time =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.skip_to: target %d is before now=%d" time t.now);
  if time > next_event_time t then
    invalid_arg
      (Printf.sprintf
         "Engine.skip_to: target %d is past the next queued event at %d" time
         (next_event_time t));
  t.now <- time

(* Shared fast path for step/run/run_until: fire the minimum event whose
   key the caller already peeked — the single queue read both entry
   points used to duplicate. *)
let fire t key =
  t.now <- key asr seq_bits;
  (match t.trace with None -> () | Some f -> f key);
  let fn = Eventq.pop_exn t.events in
  (* FIFO order only matters among coexisting events: restart the tie
     counter whenever the queue drains so it can never overflow in
     steady-state workloads. *)
  if Eventq.is_empty t.events then t.seq <- 0;
  fn ()

let step t =
  if Eventq.is_empty t.events then false
  else begin
    fire t (Eventq.min_key t.events);
    true
  end

let run t = while step t do () done

let run_until t ~limit =
  let rec go () =
    if Eventq.is_empty t.events then true
    else begin
      let key = Eventq.min_key t.events in
      if key asr seq_bits > limit then false
      else begin
        fire t key;
        go ()
      end
    end
  in
  t.run_limit <- limit;
  Fun.protect ~finally:(fun () -> t.run_limit <- max_int) go
