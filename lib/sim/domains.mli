(** Conservative (lookahead-window) parallel discrete-event simulation
    across OCaml 5 domains.

    A group partitions the simulated machine's actors over [partitions]
    private sequential {!Engine}s and advances them in lockstep windows of
    [lookahead] simulated cycles — the fabric's minimum cross-node latency
    ([Params.net_latency] for the Typhoon machines).  Within a window,
    partitions drain their queues concurrently; cross-partition schedules
    must go through {!post}, which buffers them in bounded SPSC
    {!Mailbox}es drained at the window-edge barrier in a fixed
    (source, FIFO) order.

    Determinism: each partition engine's drain order — and therefore its
    packed (time, salt, seq) event-key log, its [Engine.now], and all
    simulated state — is bit-identical for every [domains] count,
    including 1.  {!run} with [domains = 1] on the calling domain is the
    oracle the parallel run is checked against (see test_parallel.ml).

    Validity contract: an event executing on partition [p] may mutate only
    [p]-owned state, and may schedule onto partition [q <> p] only via
    {!post} at [now + lookahead] or later.  {!post} enforces the time
    bound; state ownership is the caller's discipline (the partitioned
    {!Tt_net.Fabric} routing upholds it for fabric messages). *)

exception Mailbox_full of string
(** A cross-partition mailbox hit its capacity bound; the message names the
    (src, dst) pair and the capacity knob. *)

type t

val create :
  ?queue:Eventq.impl ->
  ?mailbox_capacity:int ->
  partitions:int ->
  lookahead:int ->
  unit ->
  t
(** [mailbox_capacity] bounds each directed partition-pair mailbox
    (default 8192 posts, rounded up to a power of two). *)

val partitions : t -> int

val engine : t -> int -> Engine.t
(** The partition's private engine.  Only the domain currently running the
    partition may touch it (always true inside event callbacks). *)

val lookahead : t -> int

val post : t -> src:int -> dst:int -> int -> (unit -> unit) -> unit
(** [post t ~src ~dst time fn] schedules [fn] at absolute [time] on
    partition [dst], called from an event executing on partition [src].
    Same-partition posts are plain [Engine.at]; cross-partition posts must
    satisfy [time >= now src + lookahead] (raises [Invalid_argument]
    otherwise) and are handed over at the next window edge.  Raises
    {!Mailbox_full} when the pair's mailbox is at capacity. *)

val run :
  ?domains:int ->
  ?limit:int ->
  ?on_window:(floor:int -> epoch:int -> unit) ->
  t ->
  bool
(** Advance the group window by window until every engine and mailbox is
    empty ([true]) or the next window would start past [limit] ([false],
    mirroring [Engine.run_until]).  [domains = 1] (default) drives every
    partition on the calling domain; [domains = n] spawns [n - 1] extra
    domains (clamped to [partitions]).  [on_window] runs on the
    coordinator before each window — the per-window watchdog slicing hook:
    raise from it to abort the run with that exception.  If any partition's
    event raises, the group shuts down at the next window edge and the
    exception is re-raised here. *)

val epochs : t -> int
(** Windows completed so far. *)

val floor : t -> int
(** Start time of the current (or last) window. *)

val map : domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** Deterministic parallel map over independent work items (the harness
    sweep grids): results are in input order, and a failure re-raises the
    earliest item's exception.  [domains <= 1] degrades to [List.map] on
    the calling domain.  Items must not share mutable state. *)
