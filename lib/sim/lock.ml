module Vec = Tt_util.Vec

type t = {
  engine : Engine.t;
  uncontended_cost : int;
  transfer_cost : int;
  mutable held : bool;
  mutable holder_release_clock : int;
  (* FIFO waiter list: a preallocated Vec walked by a head cursor and reset
     in place once drained, reused across acquisitions — no per-blocked-
     thread queue cell or (thread, wake) tuple. *)
  waiters : Thread.t Vec.t;
  mutable waiters_head : int;
  mutable acquires : int;
  mutable contended : int;
}

let create engine ?(uncontended_cost = 2) ?(transfer_cost = 11) () =
  { engine; uncontended_cost; transfer_cost; held = false;
    holder_release_clock = 0; waiters = Vec.create (); waiters_head = 0;
    acquires = 0; contended = 0 }

let acquires t = t.acquires

let contended_acquires t = t.contended

let acquire t th =
  t.acquires <- t.acquires + 1;
  Thread.advance th t.uncontended_cost;
  if not t.held then t.held <- true
  else begin
    t.contended <- t.contended + 1;
    Thread.park th (fun () -> Vec.push t.waiters th)
  end

let release t th =
  if not t.held then invalid_arg "Lock.release: lock not held";
  t.holder_release_clock <- Thread.clock th;
  if t.waiters_head >= Vec.length t.waiters then begin
    t.held <- false;
    Vec.reset t.waiters;
    t.waiters_head <- 0
  end
  else begin
    let waiter = Vec.get t.waiters t.waiters_head in
    t.waiters_head <- t.waiters_head + 1;
    if t.waiters_head = Vec.length t.waiters then begin
      Vec.reset t.waiters;
      t.waiters_head <- 0
    end;
    (* Hand off: the waiter resumes after the holder's release plus a
       transfer latency, or at its own arrival time if that is later. *)
    let resume_at =
      max (Thread.clock waiter) (t.holder_release_clock + t.transfer_cost)
    in
    Thread.set_clock waiter resume_at;
    Thread.unpark waiter
  end

let with_lock t th f =
  acquire t th;
  match f () with
  | v ->
      release t th;
      v
  | exception e ->
      release t th;
      raise e
