(* The engine's replaceable event-queue boundary: one signature, two
   implementations, selected once at creation (TT_EVQ=heap|cal for A/B
   runs; default calendar).  See eventq.mli. *)

let seq_bits = 20

let salt_bits = 8

module type EVENT_QUEUE = sig
  type t

  val create : unit -> t

  val push : t -> int -> (unit -> unit) -> unit

  val min_key : t -> int

  val pop_exn : t -> unit -> unit

  val length : t -> int

  val is_empty : t -> bool

  val clear : t -> unit

  val fell_back : t -> bool
end

let nop () = ()

module Heap_queue : EVENT_QUEUE with type t = (unit -> unit) Tt_util.Intheap.t =
struct
  type t = (unit -> unit) Tt_util.Intheap.t

  let create () = Tt_util.Intheap.create ~capacity:256 ~dummy:nop ()

  let push = Tt_util.Intheap.push

  let min_key = Tt_util.Intheap.min_key

  let pop_exn = Tt_util.Intheap.pop_exn

  let length = Tt_util.Intheap.length

  let is_empty = Tt_util.Intheap.is_empty

  let clear = Tt_util.Intheap.clear

  let fell_back _ = false
end

module Cal_queue : EVENT_QUEUE with type t = (unit -> unit) Tt_util.Calqueue.t =
struct
  type t = (unit -> unit) Tt_util.Calqueue.t

  (* wshift = seq_bits: the first buckets each cover one simulated cycle
     of packed key space; resizes re-estimate from the live span. *)
  let create () =
    Tt_util.Calqueue.create ~capacity:256 ~wshift:seq_bits ~dummy:nop ()

  let push = Tt_util.Calqueue.push

  let min_key = Tt_util.Calqueue.min_key

  let pop_exn = Tt_util.Calqueue.pop_exn

  let length = Tt_util.Calqueue.length

  let is_empty = Tt_util.Calqueue.is_empty

  let clear = Tt_util.Calqueue.clear

  let fell_back = Tt_util.Calqueue.fell_back
end

type impl = Heap | Calendar

let impl_of_env () =
  match Sys.getenv_opt "TT_EVQ" with
  | None -> Calendar
  | Some "heap" -> Heap
  | Some ("cal" | "calendar") -> Calendar
  | Some other ->
      invalid_arg
        (Printf.sprintf "TT_EVQ=%s: expected \"heap\" or \"cal\"" other)

let impl_label = function Heap -> "heap" | Calendar -> "calendar"

(* Closed two-arm variant rather than a first-class module: the
   implementation set is fixed, and a predicted branch + static call is
   measurably cheaper per event than unpacking an existential.  The
   EVENT_QUEUE signature above stays the documented boundary both
   implementations are checked against. *)
type t = Hq of Heap_queue.t | Cq of Cal_queue.t

let create = function
  | Heap -> Hq (Heap_queue.create ())
  | Calendar -> Cq (Cal_queue.create ())

let impl = function Hq _ -> Heap | Cq _ -> Calendar

let push q key fn =
  match q with
  | Hq h -> Heap_queue.push h key fn
  | Cq c -> Cal_queue.push c key fn

let min_key = function
  | Hq h -> Heap_queue.min_key h
  | Cq c -> Cal_queue.min_key c

let pop_exn = function
  | Hq h -> Heap_queue.pop_exn h
  | Cq c -> Cal_queue.pop_exn c

let length = function
  | Hq h -> Heap_queue.length h
  | Cq c -> Cal_queue.length c

let is_empty = function
  | Hq h -> Heap_queue.is_empty h
  | Cq c -> Cal_queue.is_empty c

let clear = function Hq h -> Heap_queue.clear h | Cq c -> Cal_queue.clear c

let fell_back = function
  | Hq h -> Heap_queue.fell_back h
  | Cq c -> Cal_queue.fell_back c
