type user_info = ..

type user_info += No_info

type page = {
  data : Bytes.t;
  tags : Bytes.t;
  mutable mode : int;
  mutable home : int;
  mutable user : user_info;
}

type t = {
  node_id : int;
  capacity : int option;
  pages : (int, page) Hashtbl.t;
  (* 1-entry MRU translation cache: memory access streams are heavily
     same-page, so the common case skips the Hashtbl entirely.  [mru_vpage]
     is a sentinel (-1) when invalid; [mru_page] then points at a shared
     dummy page that no vpage can reach. *)
  mutable mru_vpage : int;
  mutable mru_page : page;
}

let dummy_page =
  { data = Bytes.empty; tags = Bytes.empty; mode = -1; home = -1;
    user = No_info }

let create ?max_pages ~node () =
  { node_id = node; capacity = max_pages; pages = Hashtbl.create 256;
    mru_vpage = -1; mru_page = dummy_page }

let node t = t.node_id

let page_count t = Hashtbl.length t.pages

let max_pages t = t.capacity

let is_mapped t ~vpage =
  vpage = t.mru_vpage || Hashtbl.mem t.pages vpage

let find_page t ~vpage =
  if vpage = t.mru_vpage then Some t.mru_page
  else
    match Hashtbl.find_opt t.pages vpage with
    | Some p as r ->
        t.mru_vpage <- vpage;
        t.mru_page <- p;
        r
    | None -> None

let get_page t ~vpage =
  if vpage = t.mru_vpage then t.mru_page
  else
    match Hashtbl.find_opt t.pages vpage with
    | Some p ->
        t.mru_vpage <- vpage;
        t.mru_page <- p;
        p
    | None ->
        invalid_arg
          (Printf.sprintf "Pagemem: node %d, vpage 0x%x is not mapped"
             t.node_id vpage)

let set_all_tags page tag =
  Bytes.fill page.tags 0 (Bytes.length page.tags) (Char.chr (Tag.to_bits tag))

let map t ~vpage ~home ~mode ~init_tag =
  if is_mapped t ~vpage then
    invalid_arg
      (Printf.sprintf "Pagemem.map: node %d, vpage 0x%x already mapped"
         t.node_id vpage);
  (match t.capacity with
  | Some cap when page_count t >= cap ->
      invalid_arg
        (Printf.sprintf "Pagemem.map: node %d out of physical pages (%d)"
           t.node_id cap)
  | Some _ | None -> ());
  let page =
    { data = Bytes.make Addr.page_size '\000';
      tags = Bytes.make Addr.blocks_per_page '\000';
      mode; home; user = No_info }
  in
  set_all_tags page init_tag;
  Hashtbl.replace t.pages vpage page;
  (* a freshly mapped page is about to be accessed: warm the MRU slot *)
  t.mru_vpage <- vpage;
  t.mru_page <- page;
  page

let invalidate_translation t =
  t.mru_vpage <- -1;
  t.mru_page <- dummy_page

let translation_cached t ~vpage = vpage = t.mru_vpage

let unmap t ~vpage =
  if not (is_mapped t ~vpage) then
    invalid_arg
      (Printf.sprintf "Pagemem.unmap: node %d, vpage 0x%x not mapped" t.node_id
         vpage);
  if vpage = t.mru_vpage then begin
    t.mru_vpage <- -1;
    t.mru_page <- dummy_page
  end;
  Hashtbl.remove t.pages vpage

let iter_pages t f = Hashtbl.iter f t.pages

let page_of_addr t vaddr = get_page t ~vpage:(Addr.page_of vaddr)

let get_tag t ~vaddr =
  let page = page_of_addr t vaddr in
  Tag.of_bits (Char.code (Bytes.get page.tags (Addr.block_index vaddr)))

let set_tag t ~vaddr tag =
  let page = page_of_addr t vaddr in
  Bytes.set page.tags (Addr.block_index vaddr) (Char.chr (Tag.to_bits tag))

let check_word_aligned vaddr =
  if not (Addr.is_word_aligned vaddr) then
    invalid_arg (Printf.sprintf "Pagemem: unaligned word access at 0x%x" vaddr)

let read_i64 t ~vaddr =
  check_word_aligned vaddr;
  let page = page_of_addr t vaddr in
  Bytes.get_int64_le page.data (Addr.page_offset vaddr)

let write_i64 t ~vaddr v =
  check_word_aligned vaddr;
  let page = page_of_addr t vaddr in
  Bytes.set_int64_le page.data (Addr.page_offset vaddr) v

let read_f64 t ~vaddr = Int64.float_of_bits (read_i64 t ~vaddr)

let write_f64 t ~vaddr v = write_i64 t ~vaddr (Int64.bits_of_float v)

let read_int t ~vaddr = Int64.to_int (read_i64 t ~vaddr)

let write_int t ~vaddr v = write_i64 t ~vaddr (Int64.of_int v)

let read_u8 t ~vaddr =
  let page = page_of_addr t vaddr in
  Char.code (Bytes.get page.data (Addr.page_offset vaddr))

let write_u8 t ~vaddr v =
  let page = page_of_addr t vaddr in
  Bytes.set page.data (Addr.page_offset vaddr) (Char.chr (v land 0xff))

let read_block t ~vaddr =
  let base = Addr.block_base vaddr in
  let page = page_of_addr t base in
  Bytes.sub page.data (Addr.page_offset base) Addr.block_size

let read_block_into t ~vaddr ~dst ~dst_pos =
  let base = Addr.block_base vaddr in
  let page = page_of_addr t base in
  Bytes.blit page.data (Addr.page_offset base) dst dst_pos Addr.block_size

let write_block t ~vaddr src =
  if Bytes.length src <> Addr.block_size then
    invalid_arg "Pagemem.write_block: block must be 32 bytes";
  let base = Addr.block_base vaddr in
  let page = page_of_addr t base in
  Bytes.blit src 0 page.data (Addr.page_offset base) Addr.block_size

let write_block_from t ~vaddr ~src ~src_pos =
  let base = Addr.block_base vaddr in
  let page = page_of_addr t base in
  Bytes.blit src src_pos page.data (Addr.page_offset base) Addr.block_size

let read_bytes t ~vaddr ~len =
  let out = Bytes.create len in
  let rec copy pos =
    if pos < len then begin
      let a = vaddr + pos in
      let page = page_of_addr t a in
      let off = Addr.page_offset a in
      let chunk = min (len - pos) (Addr.page_size - off) in
      Bytes.blit page.data off out pos chunk;
      copy (pos + chunk)
    end
  in
  copy 0;
  out

let read_bytes_into t ~vaddr ~dst ~dst_pos ~len =
  let rec copy pos =
    if pos < len then begin
      let a = vaddr + pos in
      let page = page_of_addr t a in
      let off = Addr.page_offset a in
      let chunk = min (len - pos) (Addr.page_size - off) in
      Bytes.blit page.data off dst (dst_pos + pos) chunk;
      copy (pos + chunk)
    end
  in
  copy 0

let write_bytes t ~vaddr src =
  let len = Bytes.length src in
  let rec copy pos =
    if pos < len then begin
      let a = vaddr + pos in
      let page = page_of_addr t a in
      let off = Addr.page_offset a in
      let chunk = min (len - pos) (Addr.page_size - off) in
      Bytes.blit src pos page.data off chunk;
      copy (pos + chunk)
    end
  in
  copy 0
