(** Per-node paged memory with per-block access tags.

    One [Pagemem.t] models a node's local DRAM plus the authoritative backing
    store of the RTLB: each mapped virtual page owns 4 KB of data, 128 block
    tags, a 4-bit page mode (selects the user fault handler), a home-node
    field and an uninterpreted user word (§5.4's "48 bits of uninterpreted
    state", here an extensible OCaml value so protocols can hang real
    structures off it).

    Modelling note (see DESIGN.md §5): the paper's RTLB is indexed by
    *physical* page; because every node maps a virtual page to at most one
    frame at a time, indexing by virtual page is behaviourally identical, so
    we key everything by virtual page and dispense with explicit frames.  A
    page-count ceiling stands in for physical-memory capacity.

    Lookups go through a 1-entry MRU translation cache (invalidated on
    {!unmap}): same-page access streaks — the overwhelmingly common case —
    skip the page table entirely. *)

type user_info = ..
(** Protocols extend this with their per-page state (e.g. Stache home-page
    directories). *)

type user_info += No_info

type page = {
  data : Bytes.t;  (** 4096 bytes *)
  tags : Bytes.t;  (** 128 tag bytes, one per 32-byte block *)
  mutable mode : int;  (** 4-bit page mode, selects fault handlers *)
  mutable home : int;  (** home node id *)
  mutable user : user_info;
}

type t

val create : ?max_pages:int -> node:int -> unit -> t
(** [max_pages] bounds the number of simultaneously mapped pages (physical
    capacity); default unbounded. *)

val node : t -> int

val page_count : t -> int

val max_pages : t -> int option

val is_mapped : t -> vpage:int -> bool

val find_page : t -> vpage:int -> page option

val get_page : t -> vpage:int -> page
(** @raise Invalid_argument if unmapped. *)

val map : t -> vpage:int -> home:int -> mode:int -> init_tag:Tag.t -> page
(** Allocate and map a zeroed page.
    @raise Invalid_argument if already mapped or out of capacity. *)

val unmap : t -> vpage:int -> unit
(** @raise Invalid_argument if not mapped. *)

val invalidate_translation : t -> unit
(** Drop the 1-entry MRU translation cache.  Protocols must call this when a
    page is retyped in place (policy switch, re-homing) so that no access can
    ride a stale cached translation past the mode change. *)

val translation_cached : t -> vpage:int -> bool
(** Whether [vpage] currently occupies the MRU translation slot (test
    observability for the invalidation paths). *)

val iter_pages : t -> (int -> page -> unit) -> unit

(** {2 Tags} *)

val get_tag : t -> vaddr:int -> Tag.t
(** Tag of the block containing [vaddr].
    @raise Invalid_argument if the page is unmapped. *)

val set_tag : t -> vaddr:int -> Tag.t -> unit

val set_all_tags : page -> Tag.t -> unit

(** {2 Data access (bypasses tags — Tempest [force-read]/[force-write] are
    built on these; tag checking lives in the machine models)} *)

val read_f64 : t -> vaddr:int -> float
(** @raise Invalid_argument if unmapped or not 8-byte aligned. *)

val write_f64 : t -> vaddr:int -> float -> unit

val read_i64 : t -> vaddr:int -> int64

val write_i64 : t -> vaddr:int -> int64 -> unit

val read_int : t -> vaddr:int -> int
(** 63-bit int stored as i64. *)

val write_int : t -> vaddr:int -> int -> unit

val read_u8 : t -> vaddr:int -> int

val write_u8 : t -> vaddr:int -> int -> unit

val read_block : t -> vaddr:int -> Bytes.t
(** Fresh 32-byte copy of the block containing [vaddr]. *)

val read_block_into : t -> vaddr:int -> dst:Bytes.t -> dst_pos:int -> unit
(** Copy the block containing [vaddr] into [dst] at [dst_pos] without
    allocating. *)

val write_block : t -> vaddr:int -> Bytes.t -> unit
(** Store 32 bytes at the block containing [vaddr]. *)

val write_block_from : t -> vaddr:int -> src:Bytes.t -> src_pos:int -> unit
(** Store the 32 bytes at [src_pos] of [src] into the block containing
    [vaddr] without allocating. *)

val read_bytes : t -> vaddr:int -> len:int -> Bytes.t
(** Copy an arbitrary byte range; must not cross an unmapped page. *)

val read_bytes_into :
  t -> vaddr:int -> dst:Bytes.t -> dst_pos:int -> len:int -> unit
(** Like {!read_bytes} but into a caller-supplied buffer, without
    allocating. *)

val write_bytes : t -> vaddr:int -> Bytes.t -> unit
