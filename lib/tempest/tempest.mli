(** Tempest: the user-level shared-memory interface (§2 of the paper).

    Tempest exposes four mechanism families to user-level code:

    + low-overhead active messages (§2.1),
    + bulk node-to-node data transfer (§2.2),
    + virtual-memory management (§2.3),
    + fine-grain access control over tagged 32-byte blocks (§2.4, Table 1).

    User protocol code (the Stache library, the EM3D update protocol, or any
    custom protocol an application ships) is written against the values in
    this module only; the Typhoon machine model provides the implementation
    and charges simulated cost for every operation.  Of Table 1's nine
    operations, [read] and [write] are the CPU's ordinary tag-checked loads
    and stores (they live on the machine's CPU access path); the remaining
    seven appear here on the per-node endpoint.

    Handlers run on the node's network-interface processor, non-preemptively
    and to completion (§5.1): a message handler or fault handler is an OCaml
    closure that may use every endpoint operation and must not block. *)

type resumption
(** Capability to restart thread(s) suspended by a block access fault or
    page fault — Table 1's [resume] operand.  Handlers may stash it and fire
    it from a later handler (e.g. when response data arrives). *)

val make_resumption : (unit -> unit) -> resumption
(** Machine-model constructor (not for protocol code). *)

type fault = {
  fault_vaddr : int;  (** faulting address *)
  fault_access : Tt_mem.Tag.access;
  fault_tag : Tt_mem.Tag.t;  (** tag observed at fault time *)
  fault_mode : int;  (** 4-bit mode of the faulting page *)
  fault_resumption : resumption;
}
(** Block-access-fault descriptor: the contents of Typhoon's BAF buffer
    entry plus the RTLB fields used for dispatch (§5.4). *)

type t = {
  node : int;
  nnodes : int;
  charge : int -> unit;
      (** charge NP instruction cycles (handler bodies use this to model
          their computation; endpoint operations charge their own cost) *)
  touch : int -> unit;
      (** model one NP data-cache reference to a protocol structure
          identified by an arbitrary stable key *)
  (* --- §2.1 messaging --- *)
  send :
    dst:int -> vnet:Tt_net.Message.vnet -> handler:int ->
    ?args:int array -> ?data:Bytes.t -> unit -> unit;
      (** inject an active message; at the destination the registered handler
          runs on the NP.  Requests must use [vnet:Request], responses
          [vnet:Response] (deadlock avoidance, §5.1). *)
  send_raw :
    dst:int -> vnet:Tt_net.Message.vnet -> handler:int ->
    args:int array -> data:Bytes.t -> unit;
      (** [send] without the optional-argument sugar: supplying an optional
          argument boxes it in [Some] at the call site, so protocol hot
          paths use this form (with a {!Tt_net.Message.Pool.scratch} args
          array and [Bytes.empty] for no data) to send without allocating
          a single word. *)
  (* --- §2.2 bulk transfer --- *)
  bulk_transfer :
    dst:int -> src_va:int -> dst_va:int -> len:int ->
    on_complete:(unit -> unit) -> unit;
      (** asynchronous DMA-style copy between this node's [src_va] and
          [dst]'s [dst_va]; [on_complete] fires on the *destination* when the
          last packet lands. *)
  (* --- §2.3 virtual-memory management --- *)
  map_page : vpage:int -> home:int -> mode:int -> init_tag:Tt_mem.Tag.t -> unit;
  unmap_page : vpage:int -> unit;
      (** also flushes the page from the local CPU cache and TLB *)
  page_mapped : vpage:int -> bool;
  page_mode : vpage:int -> int;
  set_page_mode : vpage:int -> mode:int -> unit;
  page_home : vpage:int -> int;
  page_user : vpage:int -> Tt_mem.Pagemem.user_info;
  set_page_user : vpage:int -> Tt_mem.Pagemem.user_info -> unit;
  page_count : unit -> int;
  page_capacity : unit -> int option;
  (* --- §2.4 fine-grain access control (Table 1) --- *)
  read_tag : vaddr:int -> Tt_mem.Tag.t;
  set_rw : vaddr:int -> unit;
  set_ro : vaddr:int -> unit;
  set_busy : vaddr:int -> unit;
  invalidate : vaddr:int -> unit;
      (** tag := Invalid and invalidate any local CPU-cached copy *)
  downgrade : vaddr:int -> unit;
      (** demote any local CPU-cached copy of the block to an unowned
          (Shared) line, so a later store raises a bus transaction that the
          tag check can deny; used together with [set_ro] *)
  force_read_block : vaddr:int -> Bytes.t;
      (** 32-byte load without tag check *)
  force_write_block : vaddr:int -> Bytes.t -> unit;
  recycle_block : Bytes.t -> unit;
      (** hand a consumed 32-byte message buffer back to the endpoint's
          block-buffer pool so a later [force_read_block] can reuse it.
          Only call this when the handler is done with the buffer AND the
          buffer is not being forwarded in another message. *)
  force_read_i64 : vaddr:int -> int64;
  force_write_i64 : vaddr:int -> int64 -> unit;
  force_read_f64 : vaddr:int -> float;
  force_write_f64 : vaddr:int -> float -> unit;
  resume : resumption -> unit;
  overflow_pending : unit -> int;
      (** messages parked in this node's §5.1 overflow buffer (spilled
          handler sends plus blocked CPU sends awaiting credits); [0] when
          the machine runs without the {!Tt_net.Flow} layer *)
}
(** A per-node Tempest endpoint.  Protocol handlers receive the endpoint of
    the node they execute on. *)

type message_handler = t -> src:int -> args:int array -> data:Bytes.t -> unit

type block_fault_handler = t -> fault -> unit

type page_fault_handler =
  t -> vaddr:int -> Tt_mem.Tag.access -> resumption -> unit

type status_handler = t -> pending:int -> unit
(** §5.1 overflow status handler: dispatched (second-level, slower than
    the hardware-assisted message dispatch) after the system drains the
    node's overflow buffer, with the number of messages still parked.
    Protocol code may use it to throttle or account; registration is
    optional — draining happens regardless. *)

(** System-wide handler tables (the same protocol code is linked on every
    node, so registration is global).  Machines own one of these and
    dispatch into it. *)
module Handlers : sig
  type tables

  val create : unit -> tables

  val register_message : tables -> name:string -> message_handler -> int
  (** Returns the handler id used in {!t.send}. *)

  val message : tables -> int -> message_handler
  (** @raise Invalid_argument for an unregistered id. *)

  val message_name : tables -> int -> string

  val set_block_fault : tables -> mode:int -> block_fault_handler -> unit
  (** One handler per 4-bit page mode (the RTLB dispatch of §5.4). *)

  val block_fault : tables -> mode:int -> block_fault_handler option

  val set_page_fault : tables -> page_fault_handler -> unit

  val page_fault : tables -> page_fault_handler option

  val set_status : tables -> status_handler -> unit

  val status : tables -> status_handler option
end

val fire : resumption -> unit
(** Machine-model accessor: run the resumption's wake action. *)
