type resumption = { wake : unit -> unit }

let make_resumption wake = { wake }

let fire r = r.wake ()

type fault = {
  fault_vaddr : int;
  fault_access : Tt_mem.Tag.access;
  fault_tag : Tt_mem.Tag.t;
  fault_mode : int;
  fault_resumption : resumption;
}

type t = {
  node : int;
  nnodes : int;
  charge : int -> unit;
  touch : int -> unit;
  send :
    dst:int -> vnet:Tt_net.Message.vnet -> handler:int ->
    ?args:int array -> ?data:Bytes.t -> unit -> unit;
  send_raw :
    dst:int -> vnet:Tt_net.Message.vnet -> handler:int ->
    args:int array -> data:Bytes.t -> unit;
  bulk_transfer :
    dst:int -> src_va:int -> dst_va:int -> len:int ->
    on_complete:(unit -> unit) -> unit;
  map_page : vpage:int -> home:int -> mode:int -> init_tag:Tt_mem.Tag.t -> unit;
  unmap_page : vpage:int -> unit;
  page_mapped : vpage:int -> bool;
  page_mode : vpage:int -> int;
  set_page_mode : vpage:int -> mode:int -> unit;
  page_home : vpage:int -> int;
  page_user : vpage:int -> Tt_mem.Pagemem.user_info;
  set_page_user : vpage:int -> Tt_mem.Pagemem.user_info -> unit;
  page_count : unit -> int;
  page_capacity : unit -> int option;
  read_tag : vaddr:int -> Tt_mem.Tag.t;
  set_rw : vaddr:int -> unit;
  set_ro : vaddr:int -> unit;
  set_busy : vaddr:int -> unit;
  invalidate : vaddr:int -> unit;
  downgrade : vaddr:int -> unit;
  force_read_block : vaddr:int -> Bytes.t;
  force_write_block : vaddr:int -> Bytes.t -> unit;
  recycle_block : Bytes.t -> unit;
  force_read_i64 : vaddr:int -> int64;
  force_write_i64 : vaddr:int -> int64 -> unit;
  force_read_f64 : vaddr:int -> float;
  force_write_f64 : vaddr:int -> float -> unit;
  resume : resumption -> unit;
  overflow_pending : unit -> int;
}

type message_handler = t -> src:int -> args:int array -> data:Bytes.t -> unit

type block_fault_handler = t -> fault -> unit

type page_fault_handler =
  t -> vaddr:int -> Tt_mem.Tag.access -> resumption -> unit

type status_handler = t -> pending:int -> unit

module Handlers = struct
  type tables = {
    messages : (string * message_handler) Tt_util.Vec.t;
    block_faults : (int, block_fault_handler) Hashtbl.t;
    mutable page_faults : page_fault_handler option;
    mutable status : status_handler option;
  }

  let create () =
    { messages = Tt_util.Vec.create (); block_faults = Hashtbl.create 16;
      page_faults = None; status = None }

  let register_message t ~name handler =
    Tt_util.Vec.push t.messages (name, handler);
    Tt_util.Vec.length t.messages - 1

  let message t id =
    if id < 0 || id >= Tt_util.Vec.length t.messages then
      invalid_arg (Printf.sprintf "Tempest.Handlers.message: bad id %d" id);
    snd (Tt_util.Vec.get t.messages id)

  let message_name t id = fst (Tt_util.Vec.get t.messages id)

  let set_block_fault t ~mode handler =
    Hashtbl.replace t.block_faults mode handler

  let block_fault t ~mode = Hashtbl.find_opt t.block_faults mode

  let set_page_fault t handler = t.page_faults <- Some handler

  let page_fault t = t.page_faults

  let set_status t handler = t.status <- Some handler

  let status t = t.status
end
