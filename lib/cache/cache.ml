type state = Shared | Exclusive

(* Lines live in flat parallel arrays rather than per-line records: [tags]
   holds the block number and [meta] one byte per line (0 = invalid,
   1 = Shared, 2 = Exclusive).  Line [w] of set [s] is slot [s * assoc + w].
   Construction is three allocations regardless of geometry, and a set scan
   touches adjacent bytes. *)

type t = {
  label : string;
  nsets : int;
  set_mask : int; (* nsets - 1 when nsets is a power of two, else -1 *)
  assoc : int;
  tags : int array; (* nsets * assoc *)
  meta : Bytes.t; (* nsets * assoc *)
  prng : Tt_util.Prng.t;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable evict_shared : int;
  mutable evict_exclusive : int;
}

let m_invalid = '\000'

let m_shared = '\001'

let m_exclusive = '\002'

let meta_of_state = function Shared -> m_shared | Exclusive -> m_exclusive

let state_of_meta = function
  | '\001' -> Shared
  | '\002' -> Exclusive
  | _ -> invalid_arg "Cache: invalid line"

let create ?(name = "cache") ~size_bytes ~assoc ~prng () =
  let block = Tt_mem.Addr.block_size in
  if size_bytes <= 0 || assoc <= 0 || size_bytes mod (assoc * block) <> 0 then
    invalid_arg "Cache.create: size must be a positive multiple of assoc*32";
  let nsets = size_bytes / (assoc * block) in
  let set_mask = if nsets land (nsets - 1) = 0 then nsets - 1 else -1 in
  { label = name; nsets; set_mask; assoc;
    tags = Array.make (nsets * assoc) 0;
    meta = Bytes.make (nsets * assoc) m_invalid;
    prng; hit_count = 0; miss_count = 0; evict_shared = 0; evict_exclusive = 0 }

let sets t = t.nsets

let name t = t.label

let base_of t block =
  (* the common power-of-two geometry indexes with a mask, not a division *)
  let index =
    if t.set_mask >= 0 then block land t.set_mask else block mod t.nsets
  in
  index * t.assoc

(* Slot of [block] if cached, else -1. *)
let find_slot t block =
  let base = base_of t block in
  let rec go i =
    if i >= t.assoc then -1
    else
      let slot = base + i in
      if
        Bytes.unsafe_get t.meta slot <> m_invalid
        && Array.unsafe_get t.tags slot = block
      then slot
      else go (i + 1)
  in
  go 0

let probe t ~block =
  let slot = find_slot t block in
  if slot < 0 then None else Some (state_of_meta (Bytes.unsafe_get t.meta slot))

let lookup t ~block =
  let slot = find_slot t block in
  if slot < 0 then begin
    t.miss_count <- t.miss_count + 1;
    None
  end
  else begin
    t.hit_count <- t.hit_count + 1;
    Some (state_of_meta (Bytes.unsafe_get t.meta slot))
  end

let insert t ~block ~state =
  let slot = find_slot t block in
  if slot >= 0 then begin
    Bytes.unsafe_set t.meta slot (meta_of_state state);
    None
  end
  else begin
    let base = base_of t block in
    let slot =
      let rec free i =
        if i >= t.assoc then -1
        else if Bytes.unsafe_get t.meta (base + i) = m_invalid then base + i
        else free (i + 1)
      in
      match free 0 with
      | -1 -> base + Tt_util.Prng.int t.prng t.assoc
      | s -> s
    in
    let evicted =
      match Bytes.unsafe_get t.meta slot with
      | '\000' -> None
      | m ->
          let st = state_of_meta m in
          (match st with
          | Shared -> t.evict_shared <- t.evict_shared + 1
          | Exclusive -> t.evict_exclusive <- t.evict_exclusive + 1);
          Some (Array.unsafe_get t.tags slot, st)
    in
    Array.unsafe_set t.tags slot block;
    Bytes.unsafe_set t.meta slot (meta_of_state state);
    evicted
  end

let set_state t ~block state =
  let slot = find_slot t block in
  if slot < 0 then invalid_arg "Cache.set_state: block not cached";
  Bytes.unsafe_set t.meta slot (meta_of_state state)

let invalidate t ~block =
  let slot = find_slot t block in
  if slot < 0 then false
  else begin
    Bytes.unsafe_set t.meta slot m_invalid;
    true
  end

let downgrade t ~block =
  let slot = find_slot t block in
  if slot >= 0 && Bytes.unsafe_get t.meta slot = m_exclusive then
    Bytes.unsafe_set t.meta slot m_shared

let iter t f =
  for slot = 0 to (t.nsets * t.assoc) - 1 do
    match Bytes.unsafe_get t.meta slot with
    | '\000' -> ()
    | m -> f (Array.unsafe_get t.tags slot) (state_of_meta m)
  done

let flush_page t ~vpage =
  let lo = vpage * Tt_mem.Addr.blocks_per_page in
  let hi = lo + Tt_mem.Addr.blocks_per_page - 1 in
  for slot = 0 to (t.nsets * t.assoc) - 1 do
    if Bytes.unsafe_get t.meta slot <> m_invalid then begin
      let tag = Array.unsafe_get t.tags slot in
      if tag >= lo && tag <= hi then Bytes.unsafe_set t.meta slot m_invalid
    end
  done

let occupancy t =
  let n = ref 0 in
  iter t (fun _ _ -> incr n);
  !n

let hits t = t.hit_count

let misses t = t.miss_count

let evictions_shared t = t.evict_shared

let evictions_exclusive t = t.evict_exclusive
