module Engine = Tt_sim.Engine
module Thread = Tt_sim.Thread
module Addr = Tt_mem.Addr
module Tag = Tt_mem.Tag
module Pagemem = Tt_mem.Pagemem
module Tlb = Tt_mem.Tlb
module Cache = Tt_cache.Cache
module Message = Tt_net.Message
module Fabric = Tt_net.Fabric
module Reliable = Tt_net.Reliable
module Flow = Tt_net.Flow
(* Params is exposed unwrapped by tt_params *)
module Stats = Tt_util.Stats

type executor = Np_ctx | Cpu_ctx of Thread.t

(* Fixed-size stack of recycled buffers of one length (32-byte cache
   blocks, 64-byte bulk packets).  An array stack, not a list: pushing a
   cons cell would allocate on every recycle and defeat the point. *)
type bufpool = { bufs : Bytes.t array; mutable n : int }

let pool_make cap = { bufs = Array.make cap Bytes.empty; n = 0 }

let pool_take p size =
  if p.n > 0 then begin
    p.n <- p.n - 1;
    let b = p.bufs.(p.n) in
    p.bufs.(p.n) <- Bytes.empty;
    b
  end
  else Bytes.create size

let pool_put p b =
  if Tt_util.Debug.pool_debug () then begin
    (* a buffer released twice would be handed to two owners and silently
       corrupt one of them; scan the pool and fail loudly instead *)
    for i = 0 to p.n - 1 do
      if p.bufs.(i) == b then
        invalid_arg "recycle_block: buffer released twice"
    done;
    Bytes.fill b 0 (Bytes.length b) '\xde'
  end;
  if p.n < Array.length p.bufs then begin
    p.bufs.(p.n) <- b;
    p.n <- p.n + 1
  end

type node = {
  id : int;
  mem : Pagemem.t;
  tlb : Tlb.t;
  cache : Cache.t;
  np : Np.t;
  stats : Stats.t;
  (* hot-path counters, pre-resolved from [stats] at create time *)
  c_accesses : Stats.counter;
  c_upgrades : Stats.counter;
  c_local_misses : Stats.counter;
  c_block_faults : Stats.counter;
  c_page_faults : Stats.counter;
  (* recycled 32-byte block buffers so [force_read_block] does not
     allocate per block transfer, and recycled 64-byte packet buffers for
     [bulk_transfer] chunks *)
  block_pool : bufpool;
  bulk_pool : bufpool;
  mutable ctx : executor;
  mutable endpoint : Tempest.t option;
}

let block_pool_cap = 64

let bulk_pool_cap = 64

let bulk_chunk_size = 64

type t = {
  engine : Engine.t;
  params : Params.t;
  fabric : Fabric.t;
  net : Reliable.t;
  flow : Flow.t option; (* [None] when the TT_FLOW kill switch is off *)
  tables : Tempest.Handlers.tables;
  nodes : node array;
  mutable bulk_token : int;
  bulk_completions : (int, unit -> unit) Hashtbl.t;
  mutable bulk_handler_id : int;
  (* write observer for the recovery layer's checkpoint dirty tracking:
     fired on every CPU store ([forced:false]) and every NP forced write
     ([forced:true]).  Pure bookkeeping — it charges no simulated cycles,
     so installing it never perturbs timing. *)
  mutable on_dirty : (node:int -> vpage:int -> forced:bool -> unit) option;
}

let engine t = t.engine

let params t = t.params

let nnodes t = Array.length t.nodes

let handlers t = t.tables

let fabric t = t.fabric

let net t = t.net

let node_of t i = t.nodes.(i)

let node_mem t i = (node_of t i).mem

let node_np t i = (node_of t i).np

let cpu_cache t i = (node_of t i).cache

let cpu_tlb t i = (node_of t i).tlb

let node_stats t i = (node_of t i).stats

let endpoint t i =
  match (node_of t i).endpoint with
  | Some e -> e
  | None -> invalid_arg "System.endpoint: node not initialized"

(* Charge cycles to whoever is currently executing on this node: the NP
   (handler context) or a CPU thread (library context). *)
let charge node n =
  match node.ctx with
  | Np_ctx -> Np.charge node.np n
  | Cpu_ctx th -> Thread.advance th n

let exec_clock node =
  match node.ctx with Np_ctx -> Np.clock node.np | Cpu_ctx th -> Thread.clock th

(* RTLB timing: charge the translation-cache penalty for touching a page's
   tag metadata. *)
let rtlb_access node vaddr =
  charge node (Tlb.access (Np.rtlb node.np) (Addr.page_of vaddr))

(* Reject a bulk source/destination range that is (partly) unmapped now,
   at the call site, instead of cycles later inside a deferred chore with a
   baffling backtrace. *)
let check_bulk_range mem ~what ~va ~len =
  if va < 0 then
    invalid_arg (Printf.sprintf "bulk_transfer: negative %s 0x%x" what va);
  for vpage = Addr.page_of va to Addr.page_of (va + len - 1) do
    if not (Pagemem.is_mapped mem ~vpage) then
      invalid_arg
        (Printf.sprintf
           "bulk_transfer: %s range [0x%x,0x%x) crosses unmapped page %d"
           what va (va + len) vpage)
  done

let make_endpoint t node =
  (* Route a message onto the network through the flow-control layer when
     it is on: a handler-context send may spill into the node's §5.1
     overflow buffer, a CPU-context send may block the thread until
     credits return.  With ample credits both reduce to pure integer
     bookkeeping around [Reliable.send]. *)
  let net_send ~at msg =
    match t.flow with
    | None -> Reliable.send t.net ~at msg
    | Some fl -> (
        match node.ctx with
        | Np_ctx -> Flow.send_from_handler fl ~at msg
        | Cpu_ctx th -> Flow.send_from_cpu fl ~at th msg)
  in
  let send_raw ~dst ~vnet ~handler ~args ~data =
    let msg =
      Message.Pool.acquire_raw ~src:node.id ~dst ~vnet ~handler ~args ~data
    in
    charge node (Costs.send_base + (Costs.send_per_word * Message.words msg));
    net_send ~at:(exec_clock node) msg
  in
  let send ~dst ~vnet ~handler ?(args = [||]) ?(data = Bytes.empty) () =
    send_raw ~dst ~vnet ~handler ~args ~data
  in
  let touch key =
    match Cache.lookup (Np.dcache node.np) ~block:key with
    | Some _ -> charge node 1
    | None ->
        ignore (Cache.insert (Np.dcache node.np) ~block:key ~state:Tt_cache.Cache.Exclusive);
        charge node t.params.Params.np_dcache_miss
  in
  let map_page ~vpage ~home ~mode ~init_tag =
    charge node Costs.map_page;
    ignore (Pagemem.map node.mem ~vpage ~home ~mode ~init_tag)
  in
  let unmap_page ~vpage =
    charge node Costs.unmap_page;
    Pagemem.unmap node.mem ~vpage;
    Cache.flush_page node.cache ~vpage;
    Tlb.flush_entry node.tlb vpage;
    Tlb.flush_entry (Np.rtlb node.np) vpage
  in
  let page_mapped ~vpage = Pagemem.is_mapped node.mem ~vpage in
  let with_page ~vpage f = f (Pagemem.get_page node.mem ~vpage) in
  let set_tag ~vaddr tag =
    rtlb_access node vaddr;
    charge node Costs.tag_op;
    Pagemem.set_tag node.mem ~vaddr tag
  in
  let bulk_transfer ~dst ~src_va ~dst_va ~len ~on_complete =
    if len <= 0 then invalid_arg "bulk_transfer: non-positive length";
    if dst < 0 || dst >= Array.length t.nodes then
      invalid_arg
        (Printf.sprintf "bulk_transfer: bad destination node %d (%d nodes)"
           dst (Array.length t.nodes));
    check_bulk_range node.mem ~what:"src_va" ~va:src_va ~len;
    check_bulk_range t.nodes.(dst).mem ~what:"dst_va" ~va:dst_va ~len;
    let token = t.bulk_token in
    t.bulk_token <- t.bulk_token + 1;
    Hashtbl.replace t.bulk_completions token on_complete;
    (* Packetize [bulk_chunk_size] bytes at a time; packets are generated
       as deferred NP work so the transfer overlaps computation and yields
       to message handling (§5.2).  One chore closure carries the whole
       transfer, re-posting itself per packet; full-size chunks draw their
       buffer from the node's bulk pool (the receive handler recycles
       them), short tails are allocated at their exact size so the packet's
       word count — and thus its timing — is unchanged. *)
    let off = ref 0 in
    let rec chore () =
      try
        let chunk = min bulk_chunk_size (len - !off) in
        let data =
          if chunk = bulk_chunk_size then pool_take node.bulk_pool chunk
          else Bytes.create chunk
        in
        Pagemem.read_bytes_into node.mem ~vaddr:(src_va + !off) ~dst:data
          ~dst_pos:0 ~len:chunk;
        let last = if !off + chunk >= len then 1 else 0 in
        let args = Message.Pool.scratch 3 in
        args.(0) <- dst_va + !off;
        args.(1) <- token;
        args.(2) <- last;
        let msg =
          Message.Pool.acquire_raw ~src:node.id ~dst ~vnet:Message.Request
            ~handler:t.bulk_handler_id ~args ~data
        in
        Np.charge node.np
          (Costs.bulk_packet_overhead
          + Costs.send_base
          + (Costs.send_per_word * Message.words msg));
        (* the chore runs on the NP, so this is a handler-context send *)
        net_send ~at:(Np.clock node.np) msg;
        off := !off + chunk;
        if !off < len then Np.post_deferred node.np ~at:(Np.clock node.np) chore
      with e ->
        (* a failed transfer must not leave its completion behind: nothing
           would ever fire or drop it *)
        Hashtbl.remove t.bulk_completions token;
        raise e
    in
    Np.post_deferred node.np ~at:(exec_clock node) chore
  in
  {
    Tempest.node = node.id;
    nnodes = Array.length t.nodes;
    charge = (fun n -> charge node n);
    touch;
    send;
    send_raw;
    bulk_transfer;
    map_page;
    unmap_page;
    page_mapped;
    page_mode = (fun ~vpage -> with_page ~vpage (fun p -> p.Pagemem.mode));
    set_page_mode =
      (fun ~vpage ~mode -> with_page ~vpage (fun p -> p.Pagemem.mode <- mode));
    page_home = (fun ~vpage -> with_page ~vpage (fun p -> p.Pagemem.home));
    page_user = (fun ~vpage -> with_page ~vpage (fun p -> p.Pagemem.user));
    set_page_user =
      (fun ~vpage user -> with_page ~vpage (fun p -> p.Pagemem.user <- user));
    page_count = (fun () -> Pagemem.page_count node.mem);
    page_capacity = (fun () -> Pagemem.max_pages node.mem);
    read_tag =
      (fun ~vaddr ->
        rtlb_access node vaddr;
        charge node Costs.tag_op;
        Pagemem.get_tag node.mem ~vaddr);
    set_rw = (fun ~vaddr -> set_tag ~vaddr Tag.Read_write);
    set_ro = (fun ~vaddr -> set_tag ~vaddr Tag.Read_only);
    set_busy = (fun ~vaddr -> set_tag ~vaddr Tag.Busy);
    invalidate =
      (fun ~vaddr ->
        set_tag ~vaddr Tag.Invalid;
        (* invalidate any local CPU-cached copy via the bus (Table 1) *)
        charge node 2;
        ignore (Cache.invalidate node.cache ~block:(Addr.block_of vaddr)));
    downgrade =
      (fun ~vaddr ->
        charge node 2;
        Cache.downgrade node.cache ~block:(Addr.block_of vaddr));
    force_read_block =
      (fun ~vaddr ->
        rtlb_access node vaddr;
        charge node Costs.force_block;
        let buf = pool_take node.block_pool Addr.block_size in
        Pagemem.read_block_into node.mem ~vaddr ~dst:buf ~dst_pos:0;
        buf);
    force_write_block =
      (fun ~vaddr data ->
        rtlb_access node vaddr;
        charge node Costs.force_block;
        (* the block-transfer buffer keeps the CPU cache coherent (§5.1):
           a forced write invalidates any stale CPU-cached copy *)
        ignore (Cache.invalidate node.cache ~block:(Addr.block_of vaddr));
        (match t.on_dirty with
        | Some f -> f ~node:node.id ~vpage:(Addr.page_of vaddr) ~forced:true
        | None -> ());
        Pagemem.write_block node.mem ~vaddr data);
    recycle_block =
      (fun b ->
        let len = Bytes.length b in
        if len = Addr.block_size then pool_put node.block_pool b
        else if len = bulk_chunk_size then pool_put node.bulk_pool b);
    force_read_i64 =
      (fun ~vaddr ->
        rtlb_access node vaddr;
        charge node Costs.force_word;
        Pagemem.read_i64 node.mem ~vaddr);
    force_write_i64 =
      (fun ~vaddr v ->
        rtlb_access node vaddr;
        charge node Costs.force_word;
        ignore (Cache.invalidate node.cache ~block:(Addr.block_of vaddr));
        (match t.on_dirty with
        | Some f -> f ~node:node.id ~vpage:(Addr.page_of vaddr) ~forced:true
        | None -> ());
        Pagemem.write_i64 node.mem ~vaddr v);
    force_read_f64 =
      (fun ~vaddr ->
        rtlb_access node vaddr;
        charge node Costs.force_word;
        Pagemem.read_f64 node.mem ~vaddr);
    force_write_f64 =
      (fun ~vaddr v ->
        rtlb_access node vaddr;
        charge node Costs.force_word;
        ignore (Cache.invalidate node.cache ~block:(Addr.block_of vaddr));
        (match t.on_dirty with
        | Some f -> f ~node:node.id ~vpage:(Addr.page_of vaddr) ~forced:true
        | None -> ());
        Pagemem.write_f64 node.mem ~vaddr v);
    resume =
      (fun r ->
        charge node Costs.resume_op;
        Tempest.fire r);
    overflow_pending =
      (fun () ->
        match t.flow with
        | Some fl -> Flow.node_queued fl node.id
        | None -> 0);
  }

let np_prologue node =
  node.ctx <- Np_ctx;
  Np.charge node.np Costs.dispatch

(* Execute one delivered message: dispatch to the registered user handler,
   then return the message to its pool — a handler may read the message
   only for the duration of the call. *)
(* End-to-end credit return: the sender's credit comes back when the
   receiving NP has *executed* the message's handler, not on mere arrival —
   finite NP queues are covered by the same credits as the wire. *)
let return_credit t (msg : Message.t) =
  match t.flow with
  | None -> ()
  | Some fl ->
      Flow.credit_return fl ~src:msg.Message.src ~dst:msg.Message.dst
        msg.Message.vnet

let np_msg_exec t node (msg : Message.t) =
  np_prologue node;
  let ep = Option.get node.endpoint in
  let handler = Tempest.Handlers.message t.tables msg.Message.handler in
  handler ep ~src:msg.Message.src ~args:msg.Message.args
    ~data:msg.Message.data;
  return_credit t msg;
  Message.Pool.release msg

let np_deferred_exec node f =
  np_prologue node;
  f ()

(* Execute one NP work item: dispatch to the registered user handler. *)
let np_exec t node work =
  np_prologue node;
  let ep = Option.get node.endpoint in
  (match work with
  | Np.Message msg ->
      let handler = Tempest.Handlers.message t.tables msg.Message.handler in
      handler ep ~src:msg.Message.src ~args:msg.Message.args
        ~data:msg.Message.data;
      return_credit t msg;
      Message.Pool.release msg
  | Np.Block_fault fault ->
      Stats.Counter.incr node.c_block_faults;
      (match
         Tempest.Handlers.block_fault t.tables ~mode:fault.Tempest.fault_mode
       with
      | Some handler -> handler ep fault
      | None ->
          invalid_arg
            (Printf.sprintf
               "Typhoon: block fault at 0x%x on node %d, mode %d, but no \
                handler registered"
               fault.Tempest.fault_vaddr node.id fault.Tempest.fault_mode))
  | Np.Page_fault { vaddr; access; resumption } ->
      Stats.Counter.incr node.c_page_faults;
      (match Tempest.Handlers.page_fault t.tables with
      | Some handler -> handler ep ~vaddr access resumption
      | None ->
          invalid_arg
            (Printf.sprintf
               "Typhoon: page fault at 0x%x on node %d but no handler \
                registered"
               vaddr node.id))
  | Np.Deferred f -> f ())

let create ?(reliability = Reliable.Perfect) engine (p : Params.t) =
  (match Params.validate p with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Typhoon.System.create: " ^ msg));
  let prng = Tt_util.Prng.create ~seed:p.Params.seed in
  let fabric = Fabric.create engine ~nodes:p.Params.nodes ~latency:p.Params.net_latency
      ?words_per_cycle:p.Params.link_words_per_cycle
      ~capacity:p.Params.fabric_capacity () in
  let net = Reliable.create engine fabric reliability in
  let flow =
    if Flow.enabled () then
      Some
        (Flow.create net ~nodes:p.Params.nodes
           ~request_credits:p.Params.flow_request_credits
           ~response_credits:p.Params.flow_response_credits
           ~spill_capacity:p.Params.flow_spill_capacity
           ~spill_cost:Costs.spill_store ~drain_cost:Costs.spill_drain
           ~status_cost:Costs.status_dispatch ())
    else None
  in
  let tables = Tempest.Handlers.create () in
  let nodes =
    Array.init p.Params.nodes (fun id ->
        let rtlb =
          Tlb.create ~entries:p.Params.np_tlb_entries
            ~miss_penalty:p.Params.np_tlb_miss ()
        in
        let dcache =
          Cache.create ~name:(Printf.sprintf "np%d.dcache" id)
            ~size_bytes:p.Params.np_dcache_bytes ~assoc:p.Params.np_dcache_assoc
            ~prng:(Tt_util.Prng.split prng) ()
        in
        let stats = Stats.create (Printf.sprintf "node%d" id) in
        {
          id;
          mem = Pagemem.create ?max_pages:None ~node:id ();
          tlb =
            Tlb.create ~entries:p.Params.cpu_tlb_entries
              ~miss_penalty:p.Params.tlb_miss ();
          cache =
            Cache.create ~name:(Printf.sprintf "cpu%d.cache" id)
              ~size_bytes:p.Params.cpu_cache_bytes ~assoc:p.Params.cpu_cache_assoc
              ~prng:(Tt_util.Prng.split prng) ();
          np =
            Np.create engine ~rtlb ~dcache
              ~capacity:p.Params.np_queue_capacity
              ~name:(Printf.sprintf "np%d" id) ();
          stats;
          c_accesses = Stats.counter stats "accesses";
          c_upgrades = Stats.counter stats "upgrades";
          c_local_misses = Stats.counter stats "local_misses";
          c_block_faults = Stats.counter stats "block_faults";
          c_page_faults = Stats.counter stats "page_faults";
          block_pool = pool_make block_pool_cap;
          bulk_pool = pool_make bulk_pool_cap;
          ctx = Np_ctx;
          endpoint = None;
        })
  in
  let t =
    { engine; params = p; fabric; net; flow; tables; nodes; bulk_token = 0;
      bulk_completions = Hashtbl.create 16; bulk_handler_id = -1;
      on_dirty = None }
  in
  Array.iter
    (fun node ->
      node.endpoint <- Some (make_endpoint t node);
      Np.set_exec node.np (np_exec t node);
      Np.set_msg_exec node.np (np_msg_exec t node);
      Np.set_deferred_exec node.np (np_deferred_exec node);
      Reliable.set_receiver net ~node:node.id (fun msg ->
          Np.post_message node.np ~at:(Engine.now engine) msg))
    nodes;
  (match flow with
  | None -> ()
  | Some fl ->
      (* Drain chores are §5.1's second-level status dispatch: they run on
         the parked sender's NP, a wire delay after the credit returned.
         [post_deferred] requires monotone ready times per ring, and
         [Np.clock] can run ahead of engine time mid-drain, so clamp to
         whichever is later — the max is monotone because both operands
         are. *)
      Flow.set_hooks fl
        ~post:(fun nid chore ->
          let np = nodes.(nid).np in
          Np.post_deferred np
            ~at:(max (Engine.now engine + p.Params.net_latency) (Np.clock np))
            chore)
        ~clock:(fun nid -> Np.clock nodes.(nid).np)
        ~charge:(fun nid c -> Np.charge nodes.(nid).np c)
        ~status:(fun nid ~pending ->
          match Tempest.Handlers.status t.tables with
          | Some h -> h (Option.get nodes.(nid).endpoint) ~pending
          | None -> ()));
  (* Built-in receive handler for bulk-transfer packets: force-write the
     data at the destination address; the last packet fires the completion
     callback. *)
  let bulk_handler ep ~src:_ ~args ~data =
    let dst_va = args.(0) and token = args.(1) and last = args.(2) in
    ep.Tempest.charge 2;
    let rec write off =
      if off < Bytes.length data then begin
        let word =
          Bytes.get_int64_le data off
        in
        ep.Tempest.force_write_i64 ~vaddr:(dst_va + off) word;
        write (off + 8)
      end
    in
    if Bytes.length data mod 8 = 0 && Addr.is_word_aligned dst_va then write 0
    else begin
      (* unaligned tail: byte path through the page store *)
      ep.Tempest.charge (Bytes.length data / 4);
      Pagemem.write_bytes (node_mem t ep.Tempest.node) ~vaddr:dst_va data
    end;
    (* the packet's payload buffer is fully consumed: recycle it into this
       node's bulk pool for outgoing transfers *)
    ep.Tempest.recycle_block data;
    if last = 1 then begin
      match Hashtbl.find_opt t.bulk_completions token with
      | Some complete ->
          Hashtbl.remove t.bulk_completions token;
          complete ()
      | None -> ()
    end
  in
  t.bulk_handler_id <-
    Tempest.Handlers.register_message tables ~name:"__bulk" bulk_handler;
  t

let with_cpu_context t ~node th f =
  let n = node_of t node in
  let saved = n.ctx in
  n.ctx <- Cpu_ctx th;
  Fun.protect ~finally:(fun () -> n.ctx <- saved) f

(* ------------------------------------------------------------------ *)
(* CPU tag-checked access path (Table 1 read/write; §5.4)             *)
(* ------------------------------------------------------------------ *)

let suspend_on_fault node th post_fault =
  Thread.await_unit th (fun wake ->
      let resumption =
        Tempest.make_resumption (fun () ->
            (* the CPU retries once the NP unmasks its bus request *)
            Thread.set_clock th (max (Thread.clock th) (Np.clock node.np));
            wake ())
      in
      post_fault resumption)

let rec cpu_access t ~node th access vaddr =
  let n = node_of t node in
  Stats.Counter.incr n.c_accesses;
  Thread.maybe_yield th;
  Thread.advance th 1;
  let vpage = Addr.page_of vaddr in
  Thread.advance th (Tlb.access n.tlb vpage);
  match Pagemem.find_page n.mem ~vpage with
  | None ->
      Thread.advance th t.params.Params.fault_detect;
      suspend_on_fault n th (fun resumption ->
          Np.post n.np ~at:(Thread.clock th)
            (Np.Page_fault { vaddr; access; resumption }));
      (* retry after the user page-fault handler resumes us *)
      cpu_access t ~node th access vaddr
  | Some page -> (
      let block = Addr.block_of vaddr in
      let block_fault () =
        (* the denied bus transaction: inhibit + relinquish-and-retry *)
        Thread.advance th t.params.Params.fault_detect;
        let tag = Pagemem.get_tag n.mem ~vaddr in
        let fault =
          {
            Tempest.fault_vaddr = vaddr;
            fault_access = access;
            fault_tag = tag;
            fault_mode = page.Pagemem.mode;
            fault_resumption = Tempest.make_resumption (fun () -> ());
          }
        in
        suspend_on_fault n th (fun resumption ->
            Np.post n.np ~at:(Thread.clock th)
              (Np.Block_fault
                 { fault with Tempest.fault_resumption = resumption }));
        cpu_access t ~node th access vaddr
      in
      match Cache.lookup n.cache ~block with
      | Some Tt_cache.Cache.Exclusive -> ()
      | Some Tt_cache.Cache.Shared when access = Tag.Load -> ()
      | Some Tt_cache.Cache.Shared ->
          (* write hit on an unowned line: bus Invalidate transaction,
             snooped against the tag *)
          let tag = Pagemem.get_tag n.mem ~vaddr in
          if Tag.permits tag Tag.Store then begin
            Stats.Counter.incr n.c_upgrades;
            Thread.advance th t.params.Params.upgrade;
            Cache.set_state n.cache ~block Tt_cache.Cache.Exclusive
          end
          else block_fault ()
      | None ->
          (* miss: bus Read / Read-invalidate transaction *)
          let tag = Pagemem.get_tag n.mem ~vaddr in
          if Tag.permits tag access then begin
            Stats.Counter.incr n.c_local_misses;
            Thread.advance th t.params.Params.local_miss;
            (* the NP asserts "shared" for ReadOnly blocks so the CPU cannot
               own its copy *)
            let state =
              if Tag.equal tag Tag.Read_only then Tt_cache.Cache.Shared
              else Tt_cache.Cache.Exclusive
            in
            (* evictions are silent: values are written through to local
               memory and the perfect write buffer makes writebacks free *)
            ignore (Cache.insert n.cache ~block ~state)
          end
          else block_fault ())

let cpu_read_f64 t ~node th vaddr =
  cpu_access t ~node th Tag.Load vaddr;
  Pagemem.read_f64 (node_of t node).mem ~vaddr

let cpu_write_f64 t ~node th vaddr v =
  cpu_access t ~node th Tag.Store vaddr;
  (match t.on_dirty with
  | Some f -> f ~node ~vpage:(Addr.page_of vaddr) ~forced:false
  | None -> ());
  Pagemem.write_f64 (node_of t node).mem ~vaddr v

let cpu_read_int t ~node th vaddr =
  cpu_access t ~node th Tag.Load vaddr;
  Pagemem.read_int (node_of t node).mem ~vaddr

let cpu_write_int t ~node th vaddr v =
  cpu_access t ~node th Tag.Store vaddr;
  (match t.on_dirty with
  | Some f -> f ~node ~vpage:(Addr.page_of vaddr) ~forced:false
  | None -> ());
  Pagemem.write_int (node_of t node).mem ~vaddr v

let merged_stats t =
  let out = Stats.create "typhoon" in
  Array.iter (fun n -> Stats.merge_into ~dst:out n.stats) t.nodes;
  Stats.merge_into ~dst:out (Fabric.stats t.fabric);
  Stats.merge_into ~dst:out (Reliable.stats t.net);
  (match Reliable.fault_stats t.net with
  | Some s -> Stats.merge_into ~dst:out s
  | None -> ());
  (match t.flow with
  | Some fl -> Stats.merge_into ~dst:out (Flow.stats fl)
  | None -> ());
  out

(* ------------------------------------------------------------------ *)
(* Progress and occupancy probes (watchdog integration)               *)
(* ------------------------------------------------------------------ *)

let flow t = t.flow

let set_on_dirty t f = t.on_dirty <- f

(* Total work items executed across all NPs: the machine's delivery
   progress metric.  Any live computation keeps increasing it, so a
   stationary value across a watchdog window means the machine is wedged. *)
let delivered t =
  Array.fold_left (fun acc n -> acc + Np.handled n.np) 0 t.nodes

let queue_summary t =
  let b = Buffer.create 64 in
  Array.iter
    (fun n ->
      let d = Np.depth n.np in
      if d > 0 then
        Buffer.add_string b (Printf.sprintf "np%d depth=%d; " n.id d))
    t.nodes;
  (match t.flow with
  | Some fl -> Buffer.add_string b (Flow.describe fl)
  | None -> ());
  if Buffer.length b = 0 then "all queues empty" else Buffer.contents b

let deadlock_probe t =
  match t.flow with None -> None | Some fl -> Flow.deadlock fl
