(** Network-interface processor (§5, Figure 2).

    The NP is a run-to-completion, non-preemptive handler engine with its
    own cycle clock.  Work arrives as incoming messages (two virtual
    networks), block-access faults from the snooped bus (the BAF buffer),
    page faults, and deferred chores (bulk-transfer packetization).  The
    dispatch loop drains work in priority order: response messages first
    (so request handlers can never starve responses — §5.1's deadlock rule),
    then faults, then request messages, then deferred work.

    Handler semantics are supplied by the machine model through [exec];
    the NP itself only sequences work and accounts time. *)

type work =
  | Message of Tt_net.Message.t
  | Block_fault of Tempest.fault
  | Page_fault of {
      vaddr : int;
      access : Tt_mem.Tag.access;
      resumption : Tempest.resumption;
    }
  | Deferred of (unit -> unit)
      (** lowest priority; runs when both send queues would be idle (used by
          the block-transfer unit, §5.2) *)

type t

val create :
  Tt_sim.Engine.t ->
  rtlb:Tt_mem.Tlb.t ->
  dcache:Tt_cache.Cache.t ->
  ?capacity:int ->
  ?name:string ->
  unit ->
  t
(** [capacity] (default unbounded) caps each of the four work rings; a
    post beyond it raises {!Tt_net.Overload.Overload} naming the ring, its
    occupancies, and [name] (default ["np"] — machines pass ["np<id>"] so
    the diagnostic identifies the node).  With the {!Tt_net.Flow} credit
    layer above, an ample capacity is a safety net that credits keep
    unreachable. *)

val set_exec : t -> (work -> unit) -> unit
(** Install the handler-execution function (must be done before any
    {!post}).  Separate from {!create} to break the node/NP knot. *)

val set_msg_exec : t -> (Tt_net.Message.t -> unit) -> unit
(** Install a direct message executor, bypassing the [work] variant box
    that the default (routing through [set_exec]'s function) would
    allocate per message.  The executor owns the delivered message and
    must release it (see {!Tt_net.Message.Pool}) after the handler
    returns. *)

val set_deferred_exec : t -> ((unit -> unit) -> unit) -> unit
(** Same, for deferred chores. *)

val post : t -> at:int -> work -> unit
(** Enqueue work that becomes visible to the dispatch loop at time [at]
    (the causing bus transaction or message arrival), and start the loop if
    the NP is idle.  Ready times must be monotone per work class.

    Work items sharing a timestamp drain in a single engine event: after
    each handler the loop continues inline whenever no other engine event
    is due at or before the NP clock (via {!Tt_sim.Engine.skip_to}), which
    is observably identical to the one-event-per-item schedule. *)

val post_message : t -> at:int -> Tt_net.Message.t -> unit
(** [post t ~at (Message m)] without allocating the variant box; the
    message lands on the ring matching its virtual network. *)

val post_deferred : t -> at:int -> (unit -> unit) -> unit
(** [post t ~at (Deferred f)] without allocating the variant box. *)

val clock : t -> int

val charge : t -> int -> unit
(** Charge instruction cycles to the NP clock (only meaningful while a
    handler is executing). *)

val rtlb : t -> Tt_mem.Tlb.t

val dcache : t -> Tt_cache.Cache.t

val busy : t -> bool

val handled : t -> int
(** Total work items executed. *)

val busy_cycles : t -> int
(** Cycles spent executing handlers (NP utilization). *)

val depth : t -> int
(** Items currently queued across all four rings (occupancy probe for
    watchdog diagnostics). *)
