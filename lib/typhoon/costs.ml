let dispatch = 3

let send_base = 2

let send_per_word = 1

let tag_op = 1

let force_block = 4

let force_word = 1

let map_page = 20

let unmap_page = 20

let resume_op = 1

let bulk_packet_overhead = 4

let spill_store = 3

let spill_drain = 4

let status_dispatch = 10
