(** NP instruction-cost model for built-in Tempest operations.

    The paper charges one cycle per NP instruction plus memory-system
    delays (§6).  These constants are the per-operation instruction counts
    we charge automatically inside the endpoint, chosen so that the Stache
    handlers land on the paper's reported path lengths (14 instructions to
    request a block, 30 to respond, 20 at data arrival) once their own
    [charge] calls are added. *)

val dispatch : int
(** hardware-assisted dispatch: read the dispatch register and jump (§5.1) *)

val send_base : int
(** store destination-node register + end-of-message store *)

val send_per_word : int
(** one single-cycle store per payload word *)

val tag_op : int
(** memory-mapped RTLB tag read/write *)

val force_block : int
(** 32-byte force read/write through the block-transfer buffer *)

val force_word : int

val map_page : int

val unmap_page : int

val resume_op : int
(** unmask the CPU's bus-request line *)

val bulk_packet_overhead : int
(** packetization work per bulk-transfer packet beyond the send stores *)

val spill_store : int
(** redirect a blocked handler-side send into the overflow buffer (§5.1):
    store the message body to the user-level spill queue *)

val spill_drain : int
(** release one parked message from the overflow buffer onto the network *)

val status_dispatch : int
(** second-level dispatch of the overflow status handler (§5.1 notes this
    path is slower than the hardware-assisted first-level dispatch) *)
